// Reproduces figure 18 (a/b): scalability of the twig query QA3
// (/site/regions/asia/item[shipping]/description) over the replicated
// Auction corpus, twig engine.
//
// Expected shape: Push-up outperforms Split (more selective subqueries,
// fewer visited elements); both outperform D-labeling; differences grow
// with file size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace blas;
  const int max_repl = bench::EnvInt("BLAS_SCAL_MAX_REPLICATE", 60);
  const std::string xpath =
      StripValuePredicates(Figure10Queries('A')[2].xpath);  // QA3
  for (int repl = 10; repl <= max_repl; repl += 10) {
    for (Translator t : bench::kTwigTranslators) {
      bench::RegisterQuery(
          "Fig18/QA3/x" + std::to_string(repl) + "/" + TranslatorName(t),
          'A', repl, xpath, t, Engine::kTwig);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

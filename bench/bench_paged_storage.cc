// Demand-paged storage: cold-open latency of OpenPaged (O(1) in document
// size) vs the materializing FromIndexFile, cold-open + first-scan wall
// time per storage backend (the pread-vs-mmap read-path comparison), and
// query cost under a real memory budget — page misses that are actual
// disk reads — vs the in-memory store's simulated misses.
//
// Every paged benchmark runs on a backend={inmem,pread,mmap} axis: the
// backend appears in the benchmark name and as the `backend` user
// counter in BENCH_paged_storage.json (0 = inmem, 1 = pread, 2 = mmap),
// so the perf trajectory tracks the backend split.
//
// Knobs: BLAS_BENCH_REPLICATE (corpus scale, default 4),
//        BLAS_BENCH_FRAMES (paged frames per shard, default 16).

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "storage/page_source.h"
#include "storage/persist.h"

namespace blas {
namespace bench {
namespace {

struct Corpus {
  std::shared_ptr<BlasSystem> memory;
  std::string blas1_path;
  std::string blas2_path;
};

/// Builds the auction corpus once and persists it in both formats.
const Corpus& GetCorpus() {
  static const Corpus* corpus = [] {
    auto* c = new Corpus();
    c->memory = GetSystem('A', EnvInt("BLAS_BENCH_REPLICATE", 4));
    c->blas1_path = "/tmp/blas_bench_paged.idx";
    c->blas2_path = "/tmp/blas_bench_paged.idx2";
    Status s1 = c->memory->SaveIndex(c->blas1_path);
    Status s2 = c->memory->SavePagedIndex(c->blas2_path);
    if (!s1.ok() || !s2.ok()) {
      std::fprintf(stderr, "snapshot save failed\n");
      std::abort();
    }
    return c;
  }();
  return *corpus;
}

double BackendCounter(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kInMemory:
      return 0;
    case StorageBackend::kPread:
      return 1;
    case StorageBackend::kMmap:
      return 2;
    default:
      return -1;
  }
}

/// Query benchmarks run under real frame pressure.
StorageOptions BenchStorage(StorageBackend backend) {
  StorageOptions storage;
  storage.frames_per_shard =
      static_cast<size_t>(EnvInt("BLAS_BENCH_FRAMES", 16));
  storage.shards = 1;
  storage.backend = backend;
  return storage;
}

/// First-scan benchmarks run with an ample budget: the comparison is the
/// raw read path (syscall + copy per page vs minor fault, zero-copy),
/// not eviction policy.
StorageOptions ScanStorage(StorageBackend backend) {
  StorageOptions storage;
  storage.backend = backend;
  return storage;
}

/// Cold open: header + schema segments only. Document size does not
/// enter the loop body.
void BM_ColdOpenPaged(benchmark::State& state, StorageBackend backend) {
  const Corpus& corpus = GetCorpus();
  for (auto _ : state) {
    Result<BlasSystem> sys =
        BlasSystem::OpenPaged(corpus.blas2_path, BenchStorage(backend));
    if (!sys.ok()) {
      state.SkipWithError(sys.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sys->doc_stats().tags);
  }
  state.counters["backend"] = BackendCounter(backend);
  state.counters["index_pages"] =
      static_cast<double>(GetCorpus().memory->doc_stats().pages);
}

/// Cold open of the materializing path: every record is parsed and all
/// four trees rebuilt before the first query can run.
void BM_ColdOpenMaterialized(benchmark::State& state) {
  const Corpus& corpus = GetCorpus();
  for (auto _ : state) {
    Result<BlasSystem> sys = BlasSystem::FromIndexFile(corpus.blas1_path);
    if (!sys.ok()) {
      state.SkipWithError(sys.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sys->doc_stats().tags);
  }
  state.counters["backend"] = BackendCounter(StorageBackend::kInMemory);
  state.counters["index_pages"] =
      static_cast<double>(GetCorpus().memory->doc_stats().pages);
}

/// Touches every pool page once, in order, through the pool's read path.
uint64_t ScanAllPages(const BufferPool& pool) {
  const size_t pages = pool.page_count();
  pool.Readahead(0, pages);  // one ranged cold-start readahead batch
  uint64_t sum = 0;
  for (size_t id = 0; id < pages; ++id) {
    PageRef ref = pool.Fetch(static_cast<PageId>(id));
    if (!ref) break;
    sum += static_cast<uint64_t>(ref->bytes[0]);
  }
  return sum;
}

/// The acceptance benchmark: open the snapshot cold and stream every
/// index page once — the startup cost a replica or cache-warming pass
/// pays. pread pays one syscall + 8 KiB copy per page; mmap pays a page
/// fault on a prefetched mapping, zero-copy.
void BM_ColdOpenFirstScan(benchmark::State& state, StorageBackend backend) {
  const Corpus& corpus = GetCorpus();
  size_t pages = 0;
  for (auto _ : state) {
    uint64_t sum = 0;
    if (backend == StorageBackend::kInMemory) {
      // The in-memory "backend" has no paged open: its cold start is the
      // materializing load.
      Result<BlasSystem> sys = BlasSystem::FromIndexFile(corpus.blas1_path);
      if (!sys.ok()) {
        state.SkipWithError(sys.status().ToString().c_str());
        return;
      }
      sum = ScanAllPages(sys->store().pool());
      pages = sys->store().pool().page_count();
    } else {
      Result<BlasSystem> sys =
          BlasSystem::OpenPaged(corpus.blas2_path, ScanStorage(backend));
      if (!sys.ok()) {
        state.SkipWithError(sys.status().ToString().c_str());
        return;
      }
      sum = ScanAllPages(sys->store().pool());
      pages = sys->store().pool().page_count();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["backend"] = BackendCounter(backend);
  state.counters["pool_pages"] = static_cast<double>(pages);
}

void RunColdQuery(benchmark::State& state, const BlasSystem& sys,
                  const std::string& xpath, StorageBackend backend) {
  QueryResult last;
  for (auto _ : state) {
    state.PauseTiming();
    const_cast<BlasSystem&>(sys).ResetCounters();
    state.ResumeTiming();
    Result<QueryResult> result = sys.Execute(xpath, QueryOptions{});
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = std::move(result).value();
    benchmark::DoNotOptimize(last.starts.data());
  }
  state.counters["backend"] = BackendCounter(backend);
  state.counters["elements"] = static_cast<double>(last.stats.elements);
  state.counters["pages"] = static_cast<double>(last.stats.page_fetches);
  state.counters["misses"] = static_cast<double>(last.stats.page_misses);
  state.counters["io_reads"] = static_cast<double>(last.stats.io_reads);
  state.counters["results"] = static_cast<double>(last.stats.output_rows);
}

/// Cold-cache query, paged backends: misses are real disk reads.
void BM_ColdQueryPaged(benchmark::State& state, const std::string& xpath,
                       StorageBackend backend) {
  const Corpus& corpus = GetCorpus();
  Result<BlasSystem> sys =
      BlasSystem::OpenPaged(corpus.blas2_path, BenchStorage(backend));
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  RunColdQuery(state, *sys, xpath, backend);
}

/// Cold-cache query over the in-memory store: misses are simulated.
void BM_ColdQueryMemory(benchmark::State& state, const std::string& xpath) {
  RunColdQuery(state, *GetCorpus().memory, xpath,
               StorageBackend::kInMemory);
}

}  // namespace
}  // namespace bench
}  // namespace blas

int main(int argc, char** argv) {
  using blas::StorageBackend;
  using blas::bench::BM_ColdOpenFirstScan;
  using blas::bench::BM_ColdOpenMaterialized;
  using blas::bench::BM_ColdOpenPaged;
  using blas::bench::BM_ColdQueryMemory;
  using blas::bench::BM_ColdQueryPaged;

  const std::pair<const char*, StorageBackend> backends[] = {
      {"pread", StorageBackend::kPread},
      {"mmap", StorageBackend::kMmap},
  };
  for (const auto& [name, backend] : backends) {
    benchmark::RegisterBenchmark(
        (std::string("ColdOpenPaged/") + name).c_str(),
        [backend = backend](benchmark::State& state) {
          BM_ColdOpenPaged(state, backend);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("ColdOpenMaterialized",
                               BM_ColdOpenMaterialized)
      ->Unit(benchmark::kMillisecond);

  const std::pair<const char*, StorageBackend> scan_backends[] = {
      {"inmem", StorageBackend::kInMemory},
      {"pread", StorageBackend::kPread},
      {"mmap", StorageBackend::kMmap},
  };
  for (const auto& [name, backend] : scan_backends) {
    benchmark::RegisterBenchmark(
        (std::string("ColdOpenFirstScan/") + name).c_str(),
        [backend = backend](benchmark::State& state) {
          BM_ColdOpenFirstScan(state, backend);
        })
        ->Unit(benchmark::kMillisecond);
  }

  const char* queries[][2] = {
      {"item_name", "//item/name"},
      {"asia_desc", "/site/regions/asia/item[shipping]/description"},
      {"keywords", "/site//keyword"},
  };
  for (const auto& q : queries) {
    for (const auto& [name, backend] : backends) {
      benchmark::RegisterBenchmark(
          (std::string("ColdQuery/") + name + "/" + q[0]).c_str(),
          [xpath = std::string(q[1]),
           backend = backend](benchmark::State& state) {
            BM_ColdQueryPaged(state, xpath, backend);
          })
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        (std::string("ColdQuery/inmem/") + q[0]).c_str(),
        [xpath = std::string(q[1])](benchmark::State& state) {
          BM_ColdQueryMemory(state, xpath);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  blas::bench::RunBenchmarksToJson("paged_storage");
  return 0;
}

// Demand-paged storage: cold-open latency of OpenPaged (O(1) in document
// size) vs the materializing FromIndexFile, and query cost under a real
// memory budget — page misses that are actual disk reads — vs the
// in-memory store's simulated misses.
//
// Knobs: BLAS_BENCH_REPLICATE (corpus scale, default 4),
//        BLAS_BENCH_FRAMES (paged frames per shard, default 16).

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "storage/persist.h"

namespace blas {
namespace bench {
namespace {

struct Corpus {
  std::shared_ptr<BlasSystem> memory;
  std::string blas1_path;
  std::string blas2_path;
};

/// Builds the auction corpus once and persists it in both formats.
const Corpus& GetCorpus() {
  static const Corpus* corpus = [] {
    auto* c = new Corpus();
    c->memory = GetSystem('A', EnvInt("BLAS_BENCH_REPLICATE", 4));
    c->blas1_path = "/tmp/blas_bench_paged.idx";
    c->blas2_path = "/tmp/blas_bench_paged.idx2";
    Status s1 = c->memory->SaveIndex(c->blas1_path);
    Status s2 = c->memory->SavePagedIndex(c->blas2_path);
    if (!s1.ok() || !s2.ok()) {
      std::fprintf(stderr, "snapshot save failed\n");
      std::abort();
    }
    return c;
  }();
  return *corpus;
}

StorageOptions BenchStorage() {
  StorageOptions storage;
  storage.frames_per_shard =
      static_cast<size_t>(EnvInt("BLAS_BENCH_FRAMES", 16));
  storage.shards = 1;
  return storage;
}

/// Cold open: header + schema segments only. Document size does not
/// enter the loop body.
void BM_ColdOpenPaged(benchmark::State& state) {
  const Corpus& corpus = GetCorpus();
  for (auto _ : state) {
    Result<BlasSystem> sys = BlasSystem::OpenPaged(corpus.blas2_path,
                                                   BenchStorage());
    if (!sys.ok()) {
      state.SkipWithError(sys.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sys->doc_stats().tags);
  }
  state.counters["index_pages"] =
      static_cast<double>(GetCorpus().memory->doc_stats().pages);
}
BENCHMARK(BM_ColdOpenPaged)->Unit(benchmark::kMillisecond);

/// Cold open of the materializing path: every record is parsed and all
/// four trees rebuilt before the first query can run.
void BM_ColdOpenMaterialized(benchmark::State& state) {
  const Corpus& corpus = GetCorpus();
  for (auto _ : state) {
    Result<BlasSystem> sys = BlasSystem::FromIndexFile(corpus.blas1_path);
    if (!sys.ok()) {
      state.SkipWithError(sys.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sys->doc_stats().tags);
  }
}
BENCHMARK(BM_ColdOpenMaterialized)->Unit(benchmark::kMillisecond);

void RunColdQuery(benchmark::State& state, const BlasSystem& sys,
                  const std::string& xpath) {
  QueryResult last;
  for (auto _ : state) {
    state.PauseTiming();
    const_cast<BlasSystem&>(sys).ResetCounters();
    state.ResumeTiming();
    Result<QueryResult> result = sys.Execute(xpath, QueryOptions{});
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = std::move(result).value();
    benchmark::DoNotOptimize(last.starts.data());
  }
  state.counters["pages"] = static_cast<double>(last.stats.page_fetches);
  state.counters["misses"] = static_cast<double>(last.stats.page_misses);
  state.counters["io_reads"] = static_cast<double>(last.stats.io_reads);
  state.counters["results"] = static_cast<double>(last.stats.output_rows);
}

/// Cold-cache query over the paged store: misses are real preads.
void BM_ColdQueryPaged(benchmark::State& state, const std::string& xpath) {
  const Corpus& corpus = GetCorpus();
  Result<BlasSystem> sys = BlasSystem::OpenPaged(corpus.blas2_path,
                                                 BenchStorage());
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  RunColdQuery(state, *sys, xpath);
}

/// Cold-cache query over the in-memory store: misses are simulated.
void BM_ColdQueryMemory(benchmark::State& state, const std::string& xpath) {
  RunColdQuery(state, *GetCorpus().memory, xpath);
}

}  // namespace
}  // namespace bench
}  // namespace blas

int main(int argc, char** argv) {
  using blas::bench::BM_ColdQueryMemory;
  using blas::bench::BM_ColdQueryPaged;
  const char* queries[][2] = {
      {"item_name", "//item/name"},
      {"asia_desc", "/site/regions/asia/item[shipping]/description"},
      {"keywords", "/site//keyword"},
  };
  for (const auto& q : queries) {
    benchmark::RegisterBenchmark(
        (std::string("ColdQuery/paged/") + q[0]).c_str(),
        [xpath = std::string(q[1])](benchmark::State& state) {
          BM_ColdQueryPaged(state, xpath);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("ColdQuery/memory/") + q[0]).c_str(),
        [xpath = std::string(q[1])](benchmark::State& state) {
          BM_ColdQueryMemory(state, xpath);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Reproduces figure 17 (a/b): scalability of the path query QA2
// (/site/regions//item/description) over the replicated Auction corpus,
// twig engine.
//
// Expected shape: Split/Push-up outperform D-labeling (fewer joins, up to
// ~4x fewer elements), with a widening gap as the file grows.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace blas;
  const int max_repl = bench::EnvInt("BLAS_SCAL_MAX_REPLICATE", 60);
  const std::string xpath = Figure10Queries('A')[1].xpath;  // QA2
  for (int repl = 10; repl <= max_repl; repl += 10) {
    for (Translator t : bench::kTwigTranslators) {
      bench::RegisterQuery(
          "Fig17/QA2/x" + std::to_string(repl) + "/" + TranslatorName(t),
          'A', repl, xpath, t, Engine::kTwig);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

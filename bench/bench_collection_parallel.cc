// Scatter-gather collection execution vs. the sequential per-document
// loop on an 8-document auction corpus: wall-time speedup at 1/2/4/8
// worker threads, and limit-k early termination across documents (page
// counts plus how many documents were cancelled before they ever ran).

#include <cstdio>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "blas/collection.h"
#include "service/thread_pool.h"

namespace blas {
namespace {

/// The 8-document auction corpus (distinct seeds, so distinct documents).
/// Built once and shared across benchmarks.
const BlasCollection& GetCollection() {
  static const BlasCollection* corpus = [] {
    const int docs = bench::EnvInt("BLAS_BENCH_COLL_DOCS", 8);
    auto* coll = new BlasCollection();
    for (int i = 0; i < docs; ++i) {
      GenOptions gen;
      gen.seed = 42 + static_cast<uint64_t>(i);
      Status s = coll->AddEvents("doc" + std::to_string(i),
                                 [gen](SaxHandler* h) {
                                   GenerateAuction(gen, h);
                                 });
      if (!s.ok()) {
        std::fprintf(stderr, "corpus build failed: %s\n",
                     s.ToString().c_str());
        std::abort();
      }
    }
    return coll;
  }();
  return *corpus;
}

struct CollCase {
  const char* name;
  const char* xpath;
};

const CollCase kCases[] = {
    {"path", "//item/name"},
    {"internal", "/site/regions//item/description"},
    {"value", "//closed_auction[price < \"100\"]/date"},
};

/// threads == 0: the legacy sequential loop (no pool, lazy, name order).
void BM_Collection(benchmark::State& state, const CollCase& c,
                   size_t threads) {
  const BlasCollection& coll = GetCollection();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads, 256);
  ScatterOptions scatter;
  scatter.pool = pool.get();
  size_t total = 0;
  ExecStats last;
  for (auto _ : state) {
    Result<CollectionCursor> cursor = coll.OpenCursor(c.xpath, {}, scatter);
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    Result<BlasCollection::CollectionResult> result = cursor->Drain();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->total_matches);
    total = result->total_matches;
    last = result->stats;
  }
  state.counters["matches"] = static_cast<double>(total);
  state.counters["pages"] = static_cast<double>(last.page_fetches);
  state.counters["elements"] = static_cast<double>(last.elements);
}

/// Bounded collection query: the merge cancels still-queued documents
/// once `limit` answers are out. Reports how far the scatter actually got.
void BM_CollectionLimit(benchmark::State& state, const CollCase& c,
                        uint64_t limit, size_t threads) {
  const BlasCollection& coll = GetCollection();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads, 256);
  ScatterOptions scatter;
  scatter.pool = pool.get();
  QueryOptions options;
  options.limit = limit;
  ExecStats last;
  CollectionCursor::ScatterStats scatter_stats;
  for (auto _ : state) {
    Result<CollectionCursor> cursor =
        coll.OpenCursor(c.xpath, options, scatter);
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    Result<BlasCollection::CollectionResult> result = cursor->Drain();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->total_matches);
    last = result->stats;
    scatter_stats = cursor->scatter_stats();
  }
  state.counters["pages"] = static_cast<double>(last.page_fetches);
  state.counters["docs_run"] =
      static_cast<double>(scatter_stats.docs_executed);
  state.counters["docs_cancelled"] =
      static_cast<double>(scatter_stats.docs_cancelled);
}

void Register() {
  const size_t kThreads[] = {0, 1, 2, 4, 8};  // 0 = sequential loop
  for (const CollCase& c : kCases) {
    for (size_t threads : kThreads) {
      std::string label =
          std::string("BM_Collection/") + c.name + "/" +
          (threads == 0 ? "sequential" : std::to_string(threads) + "t");
      benchmark::RegisterBenchmark(label.c_str(),
                                   [&c, threads](benchmark::State& s) {
                                     BM_Collection(s, c, threads);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
  for (const CollCase& c : kCases) {
    for (uint64_t limit : {uint64_t{10}, uint64_t{100}}) {
      for (size_t threads : {size_t{0}, size_t{4}}) {
        std::string label =
            std::string("BM_CollectionLimit/") + c.name + "/limit" +
            std::to_string(limit) + "/" +
            (threads == 0 ? "sequential" : std::to_string(threads) + "t");
        benchmark::RegisterBenchmark(
            label.c_str(),
            [&c, limit, threads](benchmark::State& s) {
              BM_CollectionLimit(s, c, limit, threads);
            })
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime();
      }
    }
  }
}

}  // namespace
}  // namespace blas

int main(int argc, char** argv) {
  std::printf(
      "Scatter-gather collection queries on an 8-doc auction corpus.\n"
      "BM_Collection compares the sequential per-document loop against\n"
      "the parallel merge cursor at 1/2/4/8 worker threads (same answers,\n"
      "same order). BM_CollectionLimit shows cross-document early\n"
      "termination: bounded queries cancel still-queued documents, so\n"
      "compare `pages` and `docs_run`/`docs_cancelled` with the\n"
      "unbounded rows.\n\n");
  blas::Register();
  benchmark::Initialize(&argc, argv);
  blas::bench::RunBenchmarksToJson("collection_parallel");
  return 0;
}

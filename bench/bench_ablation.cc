// Ablation benchmarks for the design choices DESIGN.md calls out:
//   1. Engine ablation: relational (materializing) executor vs holistic
//      twig join on identical plans.
//   2. Access-path ablation: P-label clustering (SP) vs tag clustering
//      (SD) for the same logical query -- the core of the paper's
//      disk-access argument (section 4.2, claim 2).
//   3. Buffer-cache sensitivity: simulated disk accesses (LRU misses) for
//      a twig query across cache sizes.
//   4. Join-order optimization: decomposition order vs statistics-driven
//      greedy ordering (intermediate-result sizes shrink).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace blas {
namespace {

void BM_JoinOrder(benchmark::State& state, char dataset,
                  const std::string& xpath, bool optimize) {
  std::shared_ptr<BlasSystem> sys = bench::GetSystem(dataset, 4);
  ExecOptions options;
  options.optimize_join_order = optimize;
  QueryResult last;
  for (auto _ : state) {
    state.PauseTiming();
    sys->ResetCounters();
    state.ResumeTiming();
    Result<QueryResult> r = sys->Execute(xpath, Translator::kPushUp,
                                         Engine::kRelational, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = std::move(r).value();
  }
  state.counters["interm_rows"] =
      static_cast<double>(last.stats.intermediate_rows);
  state.counters["results"] = static_cast<double>(last.stats.output_rows);
}

void BM_CacheSweep(benchmark::State& state) {
  const size_t cache_pages = static_cast<size_t>(state.range(0));
  GenOptions options;
  options.replicate = 4;
  BlasOptions bopt;
  bopt.cache_pages = cache_pages;
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [&](SaxHandler* h) { GenerateAuction(options, h); }, bopt);
  if (!sys.ok()) {
    state.SkipWithError(sys.status().ToString().c_str());
    return;
  }
  const std::string xpath = Figure10Queries('A')[2].xpath;  // QA3
  QueryResult last;
  for (auto _ : state) {
    state.PauseTiming();
    sys->ResetCounters();
    state.ResumeTiming();
    Result<QueryResult> r =
        sys->Execute(xpath, Translator::kPushUp, Engine::kRelational);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = std::move(r).value();
  }
  state.counters["disk"] = static_cast<double>(last.stats.page_misses);
  state.counters["pages"] = static_cast<double>(last.stats.page_fetches);
}

}  // namespace
}  // namespace blas

int main(int argc, char** argv) {
  using namespace blas;

  // 1. Engine ablation on the paper's tree queries.
  for (char dataset : {'S', 'P', 'A'}) {
    const BenchQuery q = Figure10Queries(dataset)[2];  // tree query
    std::string xpath = StripValuePredicates(q.xpath);
    for (Engine engine : {Engine::kRelational, Engine::kTwig}) {
      bench::RegisterQuery(
          "Ablation/Engine/" + q.name + "/" + EngineName(engine), dataset,
          /*replicate=*/4, xpath, Translator::kPushUp, engine);
    }
  }

  // 2. Access-path ablation: same suffix path query, P-label selection
  // (Split) vs tag scans + joins (D-labeling), relational engine.
  for (char dataset : {'S', 'P', 'A'}) {
    const BenchQuery q = Figure10Queries(dataset)[0];  // suffix path
    bench::RegisterQuery("Ablation/AccessPath/" + q.name + "/plabel-cluster",
                         dataset, 4, q.xpath, Translator::kSplit,
                         Engine::kRelational);
    bench::RegisterQuery("Ablation/AccessPath/" + q.name + "/tag-cluster",
                         dataset, 4, q.xpath, Translator::kDLabel,
                         Engine::kRelational);
  }

  // 3. Join-order optimization on the paper's tree queries.
  for (char dataset : {'P', 'A'}) {
    const BenchQuery q = Figure10Queries(dataset)[2];
    for (bool optimize : {false, true}) {
      std::string name = std::string("Ablation/JoinOrder/") + q.name + "/" +
                         (optimize ? "optimized" : "decomposition-order");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dataset, q, optimize](benchmark::State& s) {
            blas::BM_JoinOrder(s, dataset, q.xpath, optimize);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }

  // 4. Cache sensitivity.
  benchmark::RegisterBenchmark("Ablation/CacheSweep/QA3",
                               blas::BM_CacheSweep)
      ->Arg(64)
      ->Arg(256)
      ->Arg(1024)
      ->Arg(4096)
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

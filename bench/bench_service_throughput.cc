// Service-layer throughput: queries/sec through QueryService at 1, 2, 4
// and 8 worker threads, with and without the plan cache, plus the
// cold-vs-warm planning comparison behind the plan cache's raison d'être.
//
// Same harness and JSON shape as the other benches:
//   ./build/bench_service_throughput --benchmark_format=json
//
// Counters: qps (queries/sec through the service), cache_hits/cache_miss
// (plan cache accounting for the run), elements (visited elements rolled
// up service-wide).

#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "service/query_service.h"

namespace blas {
namespace bench {
namespace {

std::vector<std::string> ServiceQuerySuite() {
  std::vector<std::string> suite;
  for (const BenchQuery& q : Figure10Queries('A')) suite.push_back(q.xpath);
  for (const BenchQuery& q : XMarkBenchmarkQueries()) suite.push_back(q.xpath);
  return suite;
}

/// Structural pattern probes: wildcard paths the P-label algebra resolves
/// (mostly to provably-empty scans) without touching node data. Planning
/// — Unfold's schema expansion — dominates execution for these, so they
/// are where the plan cache pays off; the scan-heavy suite above is
/// execution-bound and the cache is a wash there.
std::vector<std::string> SelectiveProbeSuite() {
  return {
      "//item//*/shipping",         "//item//*//privacy",
      "//closed_auction//*/price",  "//open_auction//*/reserve",
      "//parlist//*//itemref",      "//description//*/incategory",
      "//profile//*/age",
  };
}

/// One iteration = the whole suite submitted kRepeats times through the
/// bounded queue; throughput counts completed queries per wall second.
void RunServiceThroughput(benchmark::State& state, bool with_plan_cache) {
  const size_t workers = static_cast<size_t>(state.range(0));
  std::shared_ptr<BlasSystem> sys = GetSystem('A', 1);
  const std::vector<std::string> suite = ServiceQuerySuite();
  constexpr int kRepeats = 4;

  ServiceOptions options;
  options.worker_threads = workers;
  options.queue_capacity = 1024;
  options.plan_cache_capacity = with_plan_cache ? 256 : 0;
  QueryService service(sys.get(), options);

  uint64_t queries = 0;
  for (auto _ : state) {
    std::vector<QueryRequest> batch;
    batch.reserve(suite.size() * kRepeats);
    for (int r = 0; r < kRepeats; ++r) {
      for (const std::string& xpath : suite) {
        QueryRequest request;
        request.xpath = xpath;
        request.options.engine = Engine::kRelational;
        batch.push_back(std::move(request));
      }
    }
    for (auto& future : service.SubmitBatch(std::move(batch))) {
      Result<QueryResult> result = future.get();
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      ++queries;
    }
  }

  ServiceStats stats = service.stats();
  state.SetItemsProcessed(static_cast<int64_t>(queries));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
  state.counters["cache_hits"] = static_cast<double>(stats.plan_cache_hits);
  state.counters["cache_miss"] = static_cast<double>(stats.plan_cache_misses);
  state.counters["elements"] = static_cast<double>(stats.exec.elements);
}

/// End-to-end latency of the pattern-probe workload with a cold plan
/// cache (full parse / decompose / Unfold schema expansion per query)
/// versus a warm one (one normalized-key lookup). Warm repeats run well
/// over 5x faster than cold — the whole point of the plan cache.
void RunPlanColdVsWarm(benchmark::State& state, bool warm) {
  std::shared_ptr<BlasSystem> sys = GetSystem('A', 1);
  const std::vector<std::string> suite = SelectiveProbeSuite();

  ServiceOptions options;
  options.worker_threads = 1;
  options.plan_cache_capacity = 256;
  QueryService service(sys.get(), options);
  if (warm) {
    for (const std::string& xpath : suite) {
      QueryRequest request;
      request.xpath = xpath;
      request.options.translator = Translator::kUnfold;
      benchmark::DoNotOptimize(service.Execute(request));
    }
  }

  for (auto _ : state) {
    for (const std::string& xpath : suite) {
      QueryRequest request;
      request.xpath = xpath;
      request.options.translator = Translator::kUnfold;
      request.bypass_plan_cache = !warm;
      Result<QueryResult> result = service.Execute(request);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result->starts.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(suite.size()));
  ServiceStats stats = service.stats();
  state.counters["cache_hits"] = static_cast<double>(stats.plan_cache_hits);
  state.counters["cache_miss"] = static_cast<double>(stats.plan_cache_misses);
}

}  // namespace
}  // namespace bench
}  // namespace blas

int main(int argc, char** argv) {
  using namespace blas::bench;
  for (bool cached : {false, true}) {
    auto* b = benchmark::RegisterBenchmark(
        cached ? "ServiceThroughput/PlanCache" : "ServiceThroughput/NoCache",
        [cached](benchmark::State& state) {
          RunServiceThroughput(state, cached);
        });
    for (int workers : {1, 2, 4, 8}) b->Arg(workers);
    b->Unit(benchmark::kMillisecond)->UseRealTime();
  }
  benchmark::RegisterBenchmark("ServicePlan/Cold",
                               [](benchmark::State& state) {
                                 RunPlanColdVsWarm(state, false);
                               })
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("ServicePlan/Warm",
                               [](benchmark::State& state) {
                                 RunPlanColdVsWarm(state, true);
                               })
      ->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  RunBenchmarksToJson("service_throughput");
  return 0;
}

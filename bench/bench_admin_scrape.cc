// Admin-surface scrape latency: GET /metrics, /varz and /healthz over
// loopback against a live service, single-client round-trip time plus an
// 8-scraper run during ingest churn (the Prometheus-fleet shape).
//
// Same harness and JSON shape as the other benches:
//   ./build/bench_admin_scrape --benchmark_format=json
//
// Counters: bytes (response body size), scrapes_per_s and p50/p99
// microseconds for the concurrent run. The concurrent benchmark asserts
// its p99 stays under the serving budget (5 ms; relaxed under
// sanitizers) and fails the binary when it does not.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ingest/live_collection.h"
#include "server/admin_handlers.h"
#include "server/admin_server.h"
#include "service/query_service.h"
#include "xml/xml_writer.h"

namespace blas {
namespace bench {
namespace {

// ------------------------------------------------ minimal scrape client ---

int DialAdmin(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One keep-alive GET; returns the response body size, or -1 on any
/// transport/status failure.
long ScrapeOnce(int fd, const char* target) {
  char request[128];
  const int request_len = std::snprintf(
      request, sizeof(request), "GET %s HTTP/1.1\r\nHost: b\r\n\r\n", target);
  size_t off = 0;
  while (off < static_cast<size_t>(request_len)) {
    const ssize_t n = ::send(fd, request + off,
                             static_cast<size_t>(request_len) - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return -1;
    off += static_cast<size_t>(n);
  }

  std::string buf;
  size_t head_end;
  char chunk[8192];
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return -1;
    buf.append(chunk, static_cast<size_t>(n));
  }
  if (buf.rfind("HTTP/1.1 200", 0) != 0) return -1;
  const size_t cl = buf.find("Content-Length: ");
  if (cl == std::string::npos || cl > head_end) return -1;
  const size_t want =
      static_cast<size_t>(std::atoll(buf.c_str() + cl + 16));
  size_t have = buf.size() - head_end - 4;
  while (have < want) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return -1;
    have += static_cast<size_t>(n);
  }
  return static_cast<long>(want);
}

// --------------------------------------------------------------- stack ---

std::string AuctionShard(uint64_t seed) {
  XmlTextSink sink;
  GenOptions gen;
  gen.seed = seed;
  GenerateAuction(gen, &sink);
  return sink.TakeText();
}

/// Live collection + service + admin server, built once for the whole
/// binary (benchmarks run sequentially) and torn down in main.
struct AdminBenchStack {
  std::string dir;
  std::unique_ptr<LiveCollection> live;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<server::AdminServer> admin;
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter;

  AdminBenchStack() {
    dir = "/tmp/blas_bench_admin_" + std::to_string(::getpid());
    std::string cleanup = "rm -rf '" + dir + "'";
    (void)std::system(cleanup.c_str());
    ::mkdir(dir.c_str(), 0755);

    LiveOptions live_options;
    live_options.storage.memory_budget = size_t{16} << 20;
    auto opened = LiveCollection::Open(dir, live_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      std::abort();
    }
    live = std::move(*opened);
    ServiceOptions service_options;
    service_options.worker_threads = 4;
    service = std::make_unique<QueryService>(live.get(), service_options);
    for (int i = 0; i < 4; ++i) {
      Status s = service
                     ->SubmitAddDocument("auction-" + std::to_string(i),
                                         AuctionShard(100 + i))
                     .get();
      if (!s.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
        std::abort();
      }
    }
    // Exercise the query path so /metrics has real histograms to render.
    QueryRequest request;
    request.xpath = "//item/name";
    request.options.projection = Projection::kValue;
    for (int i = 0; i < 20; ++i) {
      (void)service->SubmitCollection(request).get();
    }

    admin = std::make_unique<server::AdminServer>();
    server::AdminEndpointsOptions endpoints;
    endpoints.snapshotter.interval_ms = 100;
    snapshotter =
        server::InstallAdminEndpoints(admin.get(), service.get(), endpoints);
    Status s = admin->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "admin start failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }

  void TearDown() {
    if (admin != nullptr) admin->Stop();
    snapshotter.reset();
    if (service != nullptr) service->Shutdown();
    service.reset();
    live.reset();
    std::string cleanup = "rm -rf '" + dir + "'";
    (void)std::system(cleanup.c_str());
  }
};

AdminBenchStack* g_stack = nullptr;
bool g_budget_failed = false;

// ---------------------------------------------------------- benchmarks ---

/// One keep-alive scrape per iteration: wall time is the full HTTP
/// round-trip including exposition rendering.
void RunScrape(benchmark::State& state, const char* target) {
  const int fd = DialAdmin(g_stack->admin->port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  long bytes = 0;
  for (auto _ : state) {
    bytes = ScrapeOnce(fd, target);
    if (bytes < 0) {
      state.SkipWithError("scrape failed");
      ::close(fd);
      return;
    }
  }
  ::close(fd);
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["scrapes_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_ScrapeHealthz(benchmark::State& state) {
  RunScrape(state, "/healthz");
}
void BM_ScrapeMetrics(benchmark::State& state) {
  RunScrape(state, "/metrics");
}
void BM_ScrapeVarz(benchmark::State& state) { RunScrape(state, "/varz"); }
void BM_ScrapeTimez(benchmark::State& state) { RunScrape(state, "/timez"); }

/// The acceptance shape: 8 concurrent scrapers (each its own keep-alive
/// connection, alternating /metrics and /varz) while a writer replaces
/// documents — epoch churn — and a reader keeps query traffic flowing.
/// Reports scrape p50/p99 and asserts the p99 budget.
void BM_ConcurrentScrapeChurn(benchmark::State& state) {
  const int kScrapers = 8;
  const int kPerScraper = 50;
  const int port = g_stack->admin->port();

  std::vector<double> all_micros;
  for (auto _ : state) {
    std::atomic<bool> done{false};
    std::atomic<bool> failed{false};
    // The churn threads are background load, not a saturation test:
    // paced like live traffic (bench_ingest_churn owns the saturated
    // shape) so scrape latency measures the server, not the scheduler.
    std::thread writer([&] {
      uint64_t round = 0;
      while (!done.load(std::memory_order_acquire)) {
        Status s = g_stack->service
                       ->SubmitReplaceDocument(
                           "auction-" + std::to_string(round % 4),
                           AuctionShard(900 + round))
                       .get();
        if (!s.ok()) failed.store(true, std::memory_order_relaxed);
        ++round;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    std::thread reader([&] {
      QueryRequest request;
      request.xpath = "//item/name";
      request.options.projection = Projection::kValue;
      while (!done.load(std::memory_order_acquire)) {
        if (!g_stack->service->SubmitCollection(request).get().ok()) {
          failed.store(true, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });

    std::vector<std::vector<double>> per_thread(kScrapers);
    std::vector<std::thread> scrapers;
    for (int t = 0; t < kScrapers; ++t) {
      scrapers.emplace_back([&, t] {
        const int fd = DialAdmin(port);
        if (fd < 0) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        per_thread[t].reserve(kPerScraper);
        for (int i = 0; i < kPerScraper; ++i) {
          const char* target = (i % 2 == 0) ? "/metrics" : "/varz";
          const auto t0 = std::chrono::steady_clock::now();
          if (ScrapeOnce(fd, target) < 0) {
            failed.store(true, std::memory_order_relaxed);
            break;
          }
          per_thread[t].push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        }
        ::close(fd);
      });
    }
    for (std::thread& t : scrapers) t.join();
    done.store(true, std::memory_order_release);
    writer.join();
    reader.join();
    if (failed.load()) {
      state.SkipWithError("scrape or churn failure");
      return;
    }
    for (const auto& v : per_thread) {
      all_micros.insert(all_micros.end(), v.begin(), v.end());
    }
  }

  if (all_micros.empty()) return;
  std::sort(all_micros.begin(), all_micros.end());
  auto at = [&](double q) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(
                                              all_micros.size()));
    if (rank >= all_micros.size()) rank = all_micros.size() - 1;
    return all_micros[rank];
  };
  const double p50 = at(0.50);
  const double p99 = at(0.99);
  state.counters["scrapes"] = static_cast<double>(all_micros.size());
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;

// Sanitizers multiply every syscall + allocation; keep the budget
// meaningful without flaking their builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  double budget_us = 50000.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  double budget_us = 50000.0;
#else
  double budget_us = 5000.0;
#endif
#else
  double budget_us = 5000.0;
#endif
  // 8 scrapers + churn + service workers need real parallelism; with
  // too few cores the p99 measures scheduler queueing, not the server.
  // Keep asserting — a 10x bound still catches event-loop stalls and
  // Nagle-shaped regressions — and say so instead of silently passing.
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores != 0 && cores < 4 && budget_us < 50000.0) {
    budget_us = 50000.0;
    std::fprintf(stderr,
                 "note: only %u hardware thread(s); relaxing scrape p99 "
                 "budget to %.0f us\n",
                 cores, budget_us);
  }
  if (p99 > budget_us) {
    std::fprintf(stderr,
                 "FAIL: admin scrape p99 %.0f us exceeds %.0f us budget "
                 "under %d concurrent scrapers during churn\n",
                 p99, budget_us, kScrapers);
    g_budget_failed = true;
  }
}

void Register() {
  benchmark::RegisterBenchmark("BM_ScrapeHealthz", BM_ScrapeHealthz)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_ScrapeMetrics", BM_ScrapeMetrics)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_ScrapeVarz", BM_ScrapeVarz)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_ScrapeTimez", BM_ScrapeTimez)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_ConcurrentScrapeChurn",
                               BM_ConcurrentScrapeChurn)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(2);
}

}  // namespace
}  // namespace bench
}  // namespace blas

int main(int argc, char** argv) {
  std::printf("Admin scrape latency: HTTP round-trips against a live\n"
              "service over loopback. The concurrent run drives 8 scrapers\n"
              "during document-replacement churn and enforces the p99\n"
              "serving budget.\n\n");
  blas::bench::AdminBenchStack stack;
  blas::bench::g_stack = &stack;
  blas::bench::Register();
  benchmark::Initialize(&argc, argv);
  blas::bench::RunBenchmarksToJson("admin_scrape");
  stack.TearDown();
  blas::bench::g_stack = nullptr;
  if (blas::bench::g_budget_failed) return 1;
  return 0;
}

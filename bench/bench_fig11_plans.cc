// Reproduces figure 11: the relational algebra / SQL expressions generated
// for QS3 by D-labeling, Split, Push-up and Unfold, plus the section 5.2.2
// plan-shape analysis (join and selection counts). Also times the query
// translator itself.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "translate/sql_render.h"
#include "xpath/parser.h"

namespace blas {
namespace {

constexpr char kQS3[] =
    "/PLAYS/PLAY/ACT/SCENE[TITLE ='SCENE III. A public place.']//LINE";

void PrintPlans() {
  std::shared_ptr<BlasSystem> sys = bench::GetSystem('S', 1);
  std::printf("=== Figure 11: plans generated for QS3 ===\n%s\n\n", kQS3);
  for (Translator t : bench::kAllTranslators) {
    Result<ExecPlan> plan = sys->Plan(kQS3, t);
    if (!plan.ok()) {
      std::printf("-- %s: %s\n", TranslatorName(t),
                  plan.status().ToString().c_str());
      continue;
    }
    ExecPlan::Shape shape = plan->AnalyzeShape();
    std::printf("-- %s: %d D-joins, %d equality selections, "
                "%d range selections, %d tag scans, %d union arms\n",
                TranslatorName(t), shape.d_joins, shape.equality_selections,
                shape.range_selections, shape.tag_scans, shape.union_arms);
    std::printf("%s\n\nSQL:\n%s\n\n",
                RenderAlgebra(*plan, sys->tags()).c_str(),
                RenderSql(*plan, sys->tags()).c_str());
  }
  std::printf("Paper check (fig. 11): D-labeling needs 5 D-joins; Split, "
              "Push-up and Unfold need 2.\nSplit: 2 range + 1 equality "
              "selections; Push-up: 1 range + 2 equality; Unfold: 3 "
              "equality.\n\n");
}

void BM_Translate(benchmark::State& state, Translator translator) {
  std::shared_ptr<BlasSystem> sys = bench::GetSystem('S', 1);
  Result<Query> query = ParseXPath(kQS3);
  for (auto _ : state) {
    Result<ExecPlan> plan = sys->Plan(*query, translator);
    benchmark::DoNotOptimize(&plan);
  }
}

}  // namespace
}  // namespace blas

int main(int argc, char** argv) {
  blas::PrintPlans();
  for (blas::Translator t : blas::bench::kAllTranslators) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Translate/QS3/") + blas::TranslatorName(t)).c_str(),
        [t](benchmark::State& s) { blas::BM_Translate(s, t); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#ifndef BLAS_BENCH_BENCH_UTIL_H_
#define BLAS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "blas/blas.h"
#include "gen/generator.h"
#include "gen/queries.h"

namespace blas {
namespace bench {

/// Builds one of the paper's corpora ('S' / 'P' / 'A') at the given
/// replication factor. Caches the most recent system so consecutive
/// benchmarks on the same corpus reuse it (benchmarks run in registration
/// order; only one corpus is resident at a time).
inline std::shared_ptr<BlasSystem> GetSystem(char dataset, int replicate) {
  static char cached_dataset = 0;
  static int cached_replicate = 0;
  static std::shared_ptr<BlasSystem> cached;
  if (cached && cached_dataset == dataset &&
      cached_replicate == replicate) {
    return cached;
  }
  cached.reset();
  GenOptions options;
  options.replicate = replicate;
  auto gen = dataset == 'S'   ? GenerateShakespeare
             : dataset == 'P' ? GenerateProtein
                              : GenerateAuction;
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [&](SaxHandler* h) { gen(options, h); });
  if (!sys.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 sys.status().ToString().c_str());
    std::abort();
  }
  cached = std::make_shared<BlasSystem>(std::move(sys).value());
  cached_dataset = dataset;
  cached_replicate = replicate;
  return cached;
}

/// Runs one query repeatedly under google-benchmark, reporting the paper's
/// metrics as counters: visited elements, page fetches/misses (disk
/// accesses), executed D-joins and result cardinality. Every iteration
/// runs cold-cache, as in the paper's setup (section 5.1).
inline void RunQueryBenchmark(benchmark::State& state,
                              std::shared_ptr<BlasSystem> sys,
                              const std::string& xpath,
                              Translator translator, Engine engine) {
  Result<ExecPlan> plan = sys->Plan(xpath, translator);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  QueryResult last;
  for (auto _ : state) {
    state.PauseTiming();
    sys->ResetCounters();
    state.ResumeTiming();
    Result<QueryResult> result = sys->Execute(xpath, translator, engine);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = std::move(result).value();
    benchmark::DoNotOptimize(last.starts.data());
  }
  state.counters["elements"] = static_cast<double>(last.stats.elements);
  state.counters["pages"] = static_cast<double>(last.stats.page_fetches);
  state.counters["disk"] = static_cast<double>(last.stats.page_misses);
  state.counters["djoins"] = static_cast<double>(last.stats.d_joins);
  state.counters["results"] = static_cast<double>(last.stats.output_rows);
}

/// Registers one (query, translator, engine) benchmark.
inline void RegisterQuery(const std::string& label, char dataset,
                          int replicate, const std::string& xpath,
                          Translator translator, Engine engine) {
  benchmark::RegisterBenchmark(
      label.c_str(),
      [=](benchmark::State& state) {
        std::shared_ptr<BlasSystem> sys = GetSystem(dataset, replicate);
        RunQueryBenchmark(state, sys, xpath, translator, engine);
      })
      ->Unit(benchmark::kMillisecond);
}

/// Reads an integer knob from the environment (benchmark scaling).
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

/// \brief Console reporter that additionally tees every run into a
/// machine-readable JSON file.
///
/// `BENCH_<suite>.json` holds one array with an object per run: benchmark
/// name, adjusted real/cpu time in the run's own unit, iteration count,
/// repetitions and every user counter. CI uploads these files as
/// artifacts, so perf numbers are diffable across commits without
/// scraping console output.
class BenchReporter : public benchmark::ConsoleReporter {
 public:
  explicit BenchReporter(std::string suite) : suite_(std::move(suite)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      std::string entry;
      char buf[256];
      entry += "{\"name\":\"" + run.benchmark_name() + "\"";
      std::snprintf(buf, sizeof(buf),
                    ",\"real_time\":%.6g,\"cpu_time\":%.6g,\"unit\":\"%s\""
                    ",\"iterations\":%lld,\"repetitions\":%lld",
                    run.GetAdjustedRealTime(), run.GetAdjustedCPUTime(),
                    benchmark::GetTimeUnitString(run.time_unit),
                    static_cast<long long>(run.iterations),
                    static_cast<long long>(run.repetitions));
      entry += buf;
      for (const auto& [name, counter] : run.counters) {
        std::snprintf(buf, sizeof(buf), ",\"%s\":%.6g", name.c_str(),
                      static_cast<double>(counter.value));
        entry += buf;
      }
      entry += "}";
      runs_.push_back(std::move(entry));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    const std::string path = "BENCH_" + suite_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < runs_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", runs_[i].c_str(),
                   i + 1 < runs_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu runs)\n", path.c_str(),
                 runs_.size());
  }

 private:
  std::string suite_;
  std::vector<std::string> runs_;
};

/// Shared tail of every bench main(): run with the JSON-teeing reporter.
inline void RunBenchmarksToJson(const std::string& suite) {
  BenchReporter reporter(suite);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
}

inline const Translator kAllTranslators[] = {
    Translator::kDLabel, Translator::kSplit, Translator::kPushUp,
    Translator::kUnfold};
/// Section 5.3 compares D-labeling, Split and Push-up only (Unfold's
/// unions are outside the twig-join prototype's scope).
inline const Translator kTwigTranslators[] = {
    Translator::kDLabel, Translator::kSplit, Translator::kPushUp};

}  // namespace bench
}  // namespace blas

#endif  // BLAS_BENCH_BENCH_UTIL_H_

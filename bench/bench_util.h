#ifndef BLAS_BENCH_BENCH_UTIL_H_
#define BLAS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "blas/blas.h"
#include "gen/generator.h"
#include "gen/queries.h"

namespace blas {
namespace bench {

/// Builds one of the paper's corpora ('S' / 'P' / 'A') at the given
/// replication factor. Caches the most recent system so consecutive
/// benchmarks on the same corpus reuse it (benchmarks run in registration
/// order; only one corpus is resident at a time).
inline std::shared_ptr<BlasSystem> GetSystem(char dataset, int replicate) {
  static char cached_dataset = 0;
  static int cached_replicate = 0;
  static std::shared_ptr<BlasSystem> cached;
  if (cached && cached_dataset == dataset &&
      cached_replicate == replicate) {
    return cached;
  }
  cached.reset();
  GenOptions options;
  options.replicate = replicate;
  auto gen = dataset == 'S'   ? GenerateShakespeare
             : dataset == 'P' ? GenerateProtein
                              : GenerateAuction;
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [&](SaxHandler* h) { gen(options, h); });
  if (!sys.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 sys.status().ToString().c_str());
    std::abort();
  }
  cached = std::make_shared<BlasSystem>(std::move(sys).value());
  cached_dataset = dataset;
  cached_replicate = replicate;
  return cached;
}

/// Runs one query repeatedly under google-benchmark, reporting the paper's
/// metrics as counters: visited elements, page fetches/misses (disk
/// accesses), executed D-joins and result cardinality. Every iteration
/// runs cold-cache, as in the paper's setup (section 5.1).
inline void RunQueryBenchmark(benchmark::State& state,
                              std::shared_ptr<BlasSystem> sys,
                              const std::string& xpath,
                              Translator translator, Engine engine) {
  Result<ExecPlan> plan = sys->Plan(xpath, translator);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  QueryResult last;
  for (auto _ : state) {
    state.PauseTiming();
    sys->ResetCounters();
    state.ResumeTiming();
    Result<QueryResult> result = sys->Execute(xpath, translator, engine);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = std::move(result).value();
    benchmark::DoNotOptimize(last.starts.data());
  }
  state.counters["elements"] = static_cast<double>(last.stats.elements);
  state.counters["pages"] = static_cast<double>(last.stats.page_fetches);
  state.counters["disk"] = static_cast<double>(last.stats.page_misses);
  state.counters["djoins"] = static_cast<double>(last.stats.d_joins);
  state.counters["results"] = static_cast<double>(last.stats.output_rows);
}

/// Registers one (query, translator, engine) benchmark.
inline void RegisterQuery(const std::string& label, char dataset,
                          int replicate, const std::string& xpath,
                          Translator translator, Engine engine) {
  benchmark::RegisterBenchmark(
      label.c_str(),
      [=](benchmark::State& state) {
        std::shared_ptr<BlasSystem> sys = GetSystem(dataset, replicate);
        RunQueryBenchmark(state, sys, xpath, translator, engine);
      })
      ->Unit(benchmark::kMillisecond);
}

/// Reads an integer knob from the environment (benchmark scaling).
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

inline const Translator kAllTranslators[] = {
    Translator::kDLabel, Translator::kSplit, Translator::kPushUp,
    Translator::kUnfold};
/// Section 5.3 compares D-labeling, Split and Push-up only (Unfold's
/// unions are outside the twig-join prototype's scope).
inline const Translator kTwigTranslators[] = {
    Translator::kDLabel, Translator::kSplit, Translator::kPushUp};

}  // namespace bench
}  // namespace blas

#endif  // BLAS_BENCH_BENCH_UTIL_H_

// Reproduces figure 15 (a/b): the XMark benchmark queries (Q1, Q2, Q4, Q5,
// Q6 analogues; twig versions per section 5.3.1) on the replicated Auction
// corpus (the paper uses the 69.7MB ~ 20x corpus), holistic twig join
// engine, D-labeling vs Split vs Push-up.
//
// Expected shape: Push-up <= Split < D-labeling on every query.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace blas;
  const int replicate = bench::EnvInt("BLAS_FIG15_REPLICATE", 20);
  for (const BenchQuery& q : XMarkBenchmarkQueries()) {
    for (Translator t : bench::kTwigTranslators) {
      bench::RegisterQuery("Fig15/" + q.name + "/" + TranslatorName(t), 'A',
                           replicate, q.xpath, t, Engine::kTwig);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Reproduces figure 12: the data set characteristics table (size, nodes,
// tags, depth), plus index-generation throughput for each corpus.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "xml/xml_writer.h"

namespace blas {
namespace {

struct Corpus {
  char key;
  const char* name;
  void (*gen)(const GenOptions&, SaxHandler*);
};

constexpr Corpus kCorpora[] = {
    {'S', "Shakespeare", GenerateShakespeare},
    {'P', "Protein", GenerateProtein},
    {'A', "Auction", GenerateAuction},
};

void PrintTable() {
  std::printf("=== Figure 12: XML data sets ===\n");
  std::printf("%-12s %10s %10s %6s %6s %8s %8s\n", "Dataset", "XML bytes",
              "Nodes", "Tags", "Depth", "Paths", "Pages");
  for (const Corpus& c : kCorpora) {
    // Serialize once to report the equivalent XML text size.
    XmlTextSink sink;
    c.gen(GenOptions{}, &sink);
    std::shared_ptr<BlasSystem> sys = bench::GetSystem(c.key, 1);
    BlasSystem::DocStats s = sys->doc_stats();
    std::printf("%-12s %10zu %10zu %6zu %6d %8zu %8zu\n", c.name,
                sink.text().size(), s.nodes, s.tags, s.depth,
                s.distinct_paths, s.pages);
  }
  std::printf("Paper (fig. 12): Shakespeare 1.3MB/31975/19/7, Protein "
              "3.5MB/113831/66/7, Auction 3.4MB/61890/77/12.\n\n");
}

void BM_IndexGeneration(benchmark::State& state, const Corpus& corpus) {
  for (auto _ : state) {
    Result<BlasSystem> sys = BlasSystem::FromEvents(
        [&](SaxHandler* h) { corpus.gen(GenOptions{}, h); });
    if (!sys.ok()) {
      state.SkipWithError(sys.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&sys);
    state.counters["nodes"] =
        static_cast<double>(sys->doc_stats().nodes);
  }
}

}  // namespace
}  // namespace blas

int main(int argc, char** argv) {
  blas::PrintTable();
  for (const auto& corpus : blas::kCorpora) {
    benchmark::RegisterBenchmark(
        (std::string("BM_IndexGeneration/") + corpus.name).c_str(),
        [&corpus](benchmark::State& s) {
          blas::BM_IndexGeneration(s, corpus);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

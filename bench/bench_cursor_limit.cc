// Limit-k early termination vs. full materialization across the figure-11
// plan shapes, on the XMark-auction corpus: how many pages a bounded
// cursor fetches (and how long it runs) compared with the legacy
// scan-everything execution. The streaming producers pay for the pattern
// prefix plus k delivered answers; the full run pays for every answer
// that exists.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace blas {
namespace {

struct CursorCase {
  const char* name;
  const char* xpath;
};

// The figure-11 shape ladder on the auction corpus: suffix path, path
// with internal descendant axis, tree query with a value predicate.
const CursorCase kCases[] = {
    {"suffix", "//item/description"},
    {"internal", "/site/regions//item/name"},
    {"tree", "//item[location ='United States']/name"},
};

void BM_Cursor(benchmark::State& state, const CursorCase& c,
               Translator translator, Engine engine, uint64_t limit) {
  std::shared_ptr<BlasSystem> sys = bench::GetSystem('A', 1);
  QueryOptions options;
  options.translator = translator;
  options.engine = engine;
  options.limit = limit;
  ExecStats last;
  uint64_t delivered = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sys->ResetCounters();
    state.ResumeTiming();
    Result<ResultCursor> cursor = sys->Open(c.xpath, options);
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    QueryResult result = cursor->Drain();
    benchmark::DoNotOptimize(result.starts.data());
    last = result.stats;
    delivered = result.starts.size();
  }
  state.counters["pages"] = static_cast<double>(last.page_fetches);
  state.counters["disk"] = static_cast<double>(last.page_misses);
  state.counters["elements"] = static_cast<double>(last.elements);
  state.counters["delivered"] = static_cast<double>(delivered);
}

void Register() {
  const uint64_t kLimits[] = {0, 10, 100};  // 0 = full materialization
  for (const CursorCase& c : kCases) {
    for (Translator t : {Translator::kPushUp, Translator::kDLabel}) {
      for (Engine e : {Engine::kRelational, Engine::kTwig}) {
        for (uint64_t limit : kLimits) {
          std::string label = std::string("BM_Cursor/") + c.name + "/" +
                              TranslatorName(t) + "/" + EngineName(e) +
                              (limit == 0 ? "/full"
                                          : "/limit" + std::to_string(limit));
          benchmark::RegisterBenchmark(
              label.c_str(),
              [&c, t, e, limit](benchmark::State& s) {
                BM_Cursor(s, c, t, e, limit);
              })
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

}  // namespace
}  // namespace blas

int main(int argc, char** argv) {
  std::printf("Limit-k early termination: bounded cursors stream return\n"
              "candidates from the SD index and stop after k answers; the\n"
              "full runs materialize every answer. Compare the `pages` and\n"
              "wall-time columns between /full and /limit rows.\n\n");
  blas::Register();
  benchmark::Initialize(&argc, argv);
  blas::bench::RunBenchmarksToJson("cursor_limit");
  return 0;
}

// Reproduces figure 13 (a/b/c): query processing time on the RDBMS-style
// engine for the figure-10 queries over Shakespeare, Protein and Auction,
// comparing D-labeling, Split, Push-up and Unfold.
//
// Expected shape (section 5.2.3): suffix path queries ~100x faster under
// BLAS than D-labeling; path queries: Unfold fastest; tree queries: Unfold
// 3-7x faster than D-labeling; Unfold >= Push-up >= Split >= D-labeling.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace blas;
  for (char dataset : {'S', 'P', 'A'}) {
    for (const BenchQuery& q : Figure10Queries(dataset)) {
      for (Translator t : bench::kAllTranslators) {
        bench::RegisterQuery(
            "Fig13/" + q.name + "/" + TranslatorName(t), dataset,
            /*replicate=*/1, q.xpath, t, Engine::kRelational);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

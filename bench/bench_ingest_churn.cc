// Query latency under live ingestion: p50/p99 of a collection query
// while a background writer replaces auction shards at a fixed rate,
// compared with the same corpus served static. Also reports the raw
// ingestion pipeline rate (prepare + durable publish per document).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ingest/live_collection.h"
#include "xml/xml_writer.h"

namespace blas {
namespace {

constexpr char kQuery[] = "//item/name";

std::string AuctionShardXml(uint64_t seed) {
  XmlTextSink sink;
  GenOptions gen;
  gen.seed = seed;
  GenerateAuction(gen, &sink);
  return sink.TakeText();
}

/// Shard texts are expensive to generate; build once. Layout is two
/// generation blocks: texts[i] is shard i's generation A, texts[shards
/// + i] its generation B (the churn writer alternates the two).
const std::vector<std::string>& ShardTexts() {
  static const std::vector<std::string>* texts = [] {
    auto* v = new std::vector<std::string>();
    const int shards = bench::EnvInt("BLAS_BENCH_CHURN_DOCS", 4);
    for (int i = 0; i < shards; ++i) {
      v->push_back(AuctionShardXml(42 + static_cast<uint64_t>(i)));
    }
    for (int i = 0; i < shards; ++i) {
      v->push_back(AuctionShardXml(742 + static_cast<uint64_t>(i)));
    }
    return v;
  }();
  return *texts;
}

std::unique_ptr<LiveCollection> FreshCollection(const char* tag) {
  std::string dir = std::string("/tmp/blas_bench_churn_") + tag;
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  LiveOptions options;
  options.storage.memory_budget = size_t{32} << 20;
  auto opened = LiveCollection::Open(dir, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  const std::vector<std::string>& texts = ShardTexts();
  const size_t shards = texts.size() / 2;
  for (size_t i = 0; i < shards; ++i) {
    Status s = (*opened)->AddDocument("shard" + std::to_string(i), texts[i]);
    if (!s.ok()) {
      std::fprintf(stderr, "add failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  return std::move(opened).value();
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size()));
  return samples[std::min(idx, samples.size() - 1)];
}

/// docs_per_sec == 0 means a static corpus (the baseline).
void BM_QueryUnderChurn(benchmark::State& state) {
  const int docs_per_sec = static_cast<int>(state.range(0));
  std::unique_ptr<LiveCollection> live =
      FreshCollection(docs_per_sec == 0 ? "static" : "churn");
  const std::vector<std::string>& texts = ShardTexts();
  const size_t shards = texts.size() / 2;

  std::atomic<bool> stop{false};
  std::thread writer;
  if (docs_per_sec > 0) {
    writer = std::thread([&] {
      const auto interval =
          std::chrono::microseconds(1000000 / docs_per_sec);
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::string name = "shard" + std::to_string(i % shards);
        // Alternate each shard between its A and B generation.
        const std::string& xml =
            texts[(i % shards) + (i / shards % 2 == 0 ? shards : 0)];
        (void)live->ReplaceDocument(name, xml);
        ++i;
        std::this_thread::sleep_for(interval);
      }
    });
  }

  QueryOptions options;
  std::vector<double> latencies_ms;
  uint64_t matches = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    Result<BlasCollection::CollectionResult> r =
        live->Execute(kQuery, options);
    auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    matches += r->total_matches;
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();

  state.counters["p50_ms"] = Percentile(latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
  state.counters["epochs"] =
      static_cast<double>(live->stats().epochs_published);
  state.counters["matches_per_query"] =
      state.iterations() > 0
          ? static_cast<double>(matches) /
                static_cast<double>(state.iterations())
          : 0.0;
}

/// The ingestion pipeline itself: parse -> label -> paged snapshot ->
/// fsync'ed manifest publish, per document.
void BM_IngestPipeline(benchmark::State& state) {
  std::unique_ptr<LiveCollection> live = FreshCollection("pipeline");
  const std::vector<std::string>& texts = ShardTexts();
  const size_t shards = texts.size() / 2;
  uint64_t i = 0;
  for (auto _ : state) {
    std::string name = "shard" + std::to_string(i % shards);
    const std::string& xml =
        texts[(i % shards) + (i / shards % 2 == 0 ? shards : 0)];
    Status s = live->ReplaceDocument(name, xml);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["manifest_bytes"] =
      static_cast<double>(live->stats().manifest_bytes);
}

BENCHMARK(BM_QueryUnderChurn)
    ->Arg(0)    // static baseline
    ->Arg(5)    // 5 docs/s
    ->Arg(20)   // 20 docs/s
    ->Arg(100)  // 100 docs/s
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_IngestPipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace blas

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  blas::bench::RunBenchmarksToJson("ingest_churn");
  return 0;
}

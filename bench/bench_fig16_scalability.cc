// Reproduces figure 16 (a/b): scalability of the suffix path query QA1
// (//category/description/parlist/listitem) as the Auction corpus is
// replicated 10x..60x (the paper's 34.8MB..174MB sweep), twig engine.
//
// Expected shape: Split/Push-up nearly constant (selection only, identical
// plans); D-labeling time and visited elements grow linearly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace blas;
  const int max_repl = bench::EnvInt("BLAS_SCAL_MAX_REPLICATE", 60);
  const std::string xpath = Figure10Queries('A')[0].xpath;  // QA1
  for (int repl = 10; repl <= max_repl; repl += 10) {
    for (Translator t : bench::kTwigTranslators) {
      bench::RegisterQuery(
          "Fig16/QA1/x" + std::to_string(repl) + "/" + TranslatorName(t),
          'A', repl, xpath, t, Engine::kTwig);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

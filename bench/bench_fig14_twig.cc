// Reproduces figure 14 (a/b): execution time and visited elements on the
// holistic twig join engine for all nine figure-10 queries, with every
// data set replicated 20x (section 5.3.2). Value predicates are removed
// (section 5.3.1) and Unfold is excluded (it relies on unions).
//
// Expected shape: Split and Push-up beat D-labeling on every query, with
// element counts up to ~4x smaller.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace blas;
  const int replicate = bench::EnvInt("BLAS_FIG14_REPLICATE", 20);
  for (char dataset : {'A', 'P', 'S'}) {  // paper's figure lists QA first
    for (const BenchQuery& q : Figure10Queries(dataset)) {
      std::string xpath = StripValuePredicates(q.xpath);
      for (Translator t : bench::kTwigTranslators) {
        bench::RegisterQuery("Fig14/" + q.name + "/" + TranslatorName(t),
                             dataset, replicate, xpath, t, Engine::kTwig);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#ifndef BLAS_FUZZ_FUZZ_UTIL_H_
#define BLAS_FUZZ_FUZZ_UTIL_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>

namespace blas_fuzz {

/// Writes the fuzzer input to a per-process scratch file and returns its
/// path. Both fuzz targets parse *files* (ReplayManifest and
/// OpenPagedSnapshot take paths — they are crash-recovery codepaths, the
/// file is the interface), so each iteration round-trips through one. The
/// same path is reused across iterations; libFuzzer is single-threaded per
/// process.
inline const std::string& WriteInput(const uint8_t* data, size_t size,
                                     const char* tag) {
  static thread_local std::string path;
  if (path.empty()) {
    path = std::string("/tmp/blas_fuzz_") + tag + "_" +
           std::to_string(::getpid()) + ".bin";
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f != nullptr) {
    if (size != 0) (void)std::fwrite(data, 1, size, f);
    (void)std::fclose(f);
  }
  return path;
}

}  // namespace blas_fuzz

#endif  // BLAS_FUZZ_FUZZ_UTIL_H_

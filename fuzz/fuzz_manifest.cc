// Fuzz target: MANIFEST log replay (the crash-recovery parser).
//
// ReplayManifest consumes a file that survived an arbitrary crash — by
// definition attacker-shaped input: torn tails, bit rot, hostile lengths.
// The contract under fuzzing: any byte string either replays to a state or
// returns a non-OK Status; it never crashes, hangs, or over-allocates.

#include <cstddef>
#include <cstdint>

#include "fuzz/fuzz_util.h"
#include "ingest/manifest.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string& path = blas_fuzz::WriteInput(data, size, "manifest");
  blas::Result<blas::ManifestState> replayed = blas::ReplayManifest(path);
  if (replayed.ok()) {
    // Exercise the invariants replay promises: boundaries line up with the
    // durable-prefix byte count and records applied.
    const blas::ManifestState& state = replayed.value();
    if (state.record_boundaries.empty() ||
        state.record_boundaries.back() != state.bytes) {
      __builtin_trap();
    }
    if (state.record_boundaries.size() != state.records + 1) {
      __builtin_trap();
    }
  }
  return 0;
}

// Regenerates the checked-in seed corpora under fuzz/corpus/. Run from
// the repo root after changing either on-disk format:
//
//   ./build/fuzz_make_corpus fuzz/corpus
//
// Seeds are the *interesting shapes*, not random bytes: a valid file, a
// crash-torn tail, flipped CRC/magic bits — the states recovery actually
// encounters — so the fuzzer starts at the format's edge cases instead of
// rediscovering the magic number one byte at a time.

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "blas/blas.h"
#include "ingest/manifest.h"

namespace {

void Mkdir(const std::string& p) { (void)::mkdir(p.c_str(), 0755); }

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  (void)std::fwrite(bytes.data(), 1, bytes.size(), f);
  (void)std::fclose(f);
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  (void)std::fclose(f);
  return out;
}

std::string ManifestHeader() {
  std::string h("BLASMAN1", 8);
  uint32_t version = 1;
  h.append(reinterpret_cast<const char*>(&version), 4);
  return h;
}

blas::ManifestRecord Record(uint64_t epoch, bool checkpoint,
                            std::initializer_list<blas::ManifestOp> ops) {
  blas::ManifestRecord r;
  r.epoch = epoch;
  r.checkpoint = checkpoint;
  r.ops = ops;
  return r;
}

void MakeManifestCorpus(const std::string& dir) {
  Mkdir(dir);
  using Kind = blas::ManifestOp::Kind;
  const std::string header = ManifestHeader();
  WriteFile(dir + "/empty_log.bin", header);

  std::string log = header;
  log += blas::EncodeManifestRecord(
      Record(1, false, {{Kind::kAdd, "a", "seg-000001.blasidx"}}));
  log += blas::EncodeManifestRecord(
      Record(2, false, {{Kind::kReplace, "a", "seg-000002.blasidx"},
                        {Kind::kAdd, "b", "seg-000003.blasidx"}}));
  WriteFile(dir + "/two_records.bin", log);

  std::string checkpointed = log;
  checkpointed += blas::EncodeManifestRecord(
      Record(3, true, {{Kind::kAdd, "a", "seg-000002.blasidx"},
                       {Kind::kAdd, "b", "seg-000003.blasidx"}}));
  checkpointed += blas::EncodeManifestRecord(Record(4, false, {{Kind::kRemove, "b", ""}}));
  WriteFile(dir + "/checkpoint_then_remove.bin", checkpointed);

  // Crash-torn tail: recovery must land on the previous record boundary.
  WriteFile(dir + "/torn_tail.bin", log.substr(0, log.size() - 7));

  // Length-complete record with bit rot: CRC must reject, not skip.
  std::string rotten = log;
  rotten[rotten.size() - 3] ^= 0x40;
  WriteFile(dir + "/crc_mismatch.bin", rotten);

  std::string bad_magic = log;
  bad_magic[0] ^= 0xFF;
  WriteFile(dir + "/bad_magic.bin", bad_magic);
}

void MakeBlasidx2Corpus(const std::string& dir) {
  Mkdir(dir);
  const char* xml =
      "<site><people><person id=\"p0\"><name>alice</name></person>"
      "<person id=\"p1\"><name>bob</name></person></people>"
      "<regions><asia><item id=\"i0\"/></asia></regions></site>";
  blas::Result<blas::BlasSystem> sys = blas::BlasSystem::FromXml(xml, {});
  if (!sys.ok()) {
    std::fprintf(stderr, "FromXml: %s\n", sys.status().ToString().c_str());
    std::exit(1);
  }
  const std::string valid_path = dir + "/valid_snapshot.bin";
  blas::Status saved = sys.value().SavePagedIndex(valid_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "SavePagedIndex: %s\n", saved.ToString().c_str());
    std::exit(1);
  }
  const std::string valid = ReadFile(valid_path);

  WriteFile(dir + "/header_only.bin", valid.substr(0, 64));
  WriteFile(dir + "/truncated_directory.bin",
            valid.substr(0, valid.size() / 2));

  std::string bad_magic = valid;
  bad_magic[0] ^= 0xFF;
  WriteFile(dir + "/bad_magic.bin", bad_magic);

  // Flip a byte inside the segment directory region (just past the fixed
  // header) so directory validation, not the magic check, does the work.
  std::string bad_directory = valid;
  bad_directory[80] ^= 0x55;
  WriteFile(dir + "/bad_directory.bin", bad_directory);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "fuzz/corpus";
  Mkdir(root);
  MakeManifestCorpus(root + "/manifest");
  MakeBlasidx2Corpus(root + "/blasidx2");
  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}

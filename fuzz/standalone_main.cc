// Standalone driver for the fuzz targets when libFuzzer is unavailable
// (GCC builds, the local ctest smoke). Feeds each argv file — typically
// the checked-in seed corpus — through LLVMFuzzerTestOneInput once.
// With -fsanitize=fuzzer (Clang CI) this file is not compiled; libFuzzer
// provides main().

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(len > 0 ? static_cast<size_t>(len) : 0);
    if (!bytes.empty() && std::fread(bytes.data(), 1, bytes.size(), f) !=
                              bytes.size()) {
      std::fclose(f);
      std::fprintf(stderr, "short read on %s\n", argv[i]);
      return 2;
    }
    std::fclose(f);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++ran;
  }
  std::printf("ran %d corpus input(s)\n", ran);
  return 0;
}

// Fuzz target: BLASIDX2 snapshot preflight (header + segment directory).
//
// OpenPagedSnapshot validates the fixed header, tree metadata, and segment
// directory before anything sized by untrusted bytes is allocated — this
// target hammers exactly that boundary. The contract: any byte string
// either opens (and the eager-loaded schema is self-consistent) or returns
// a non-OK Status; never a crash or unbounded allocation.

#include <cstddef>
#include <cstdint>

#include "fuzz/fuzz_util.h"
#include "storage/persist.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string& path = blas_fuzz::WriteInput(data, size, "blasidx2");
  blas::Result<blas::PagedIndex> opened = blas::OpenPagedSnapshot(path);
  (void)opened.ok();  // either outcome is fine; surviving is the test
  return 0;
}

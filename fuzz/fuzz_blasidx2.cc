// Fuzz target: BLASIDX2 snapshot preflight (header + segment directory),
// then the paged open itself under the mmap backend.
//
// OpenPagedSnapshot validates the fixed header, tree metadata, and segment
// directory before anything sized by untrusted bytes is allocated — this
// target hammers exactly that boundary. When the directory does validate,
// the target goes one step further and opens the pool through the mmap
// backend: PagedFile::Open's size preflight must reject a file too short
// for its claimed pool pages (a truncated file behind a valid header)
// BEFORE any mapping is established — failing with a Status, never a
// SIGBUS on an unbacked mapped page. The contract: any byte string either
// opens or returns a non-OK Status; never a crash or unbounded allocation.

#include <cstddef>
#include <cstdint>

#include "fuzz/fuzz_util.h"
#include "storage/page.h"
#include "storage/persist.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string& path = blas_fuzz::WriteInput(data, size, "blasidx2");
  blas::Result<blas::PagedIndex> opened = blas::OpenPagedSnapshot(path);
  if (!opened.ok()) return 0;

  // Valid directory: open the pool mmap'ed and touch the first page, so a
  // header that overstates pool_pages against the file's real size must
  // die in the preflight, not fault through the mapping.
  blas::Result<blas::PagedFile> file = opened->OpenPool();
  if (!file.ok()) return 0;
  blas::StorageOptions storage;
  storage.backend = blas::StorageBackend::kMmap;
  storage.frames_per_shard = 4;
  storage.shards = 1;
  blas::BufferPool pool(std::move(file).value(), storage);
  if (pool.page_count() > 0) {
    blas::PageRef ref = pool.Fetch(0);
    (void)static_cast<bool>(ref);  // empty ref == end-of-data, also fine
  }
  return 0;
}

// Tests for the live ingestion subsystem: durable manifest log,
// epoch-snapshot publishes, crash recovery, reader/churn isolation, and
// the epoch-tagged collection plan cache.

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/ingest_queue.h"
#include "ingest/live_collection.h"
#include "ingest/manifest.h"
#include "service/query_service.h"
#include "service/thread_pool.h"

namespace blas {
namespace {

// ------------------------------------------------------- filesystem ---

std::string UniqueDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::string dir = "/tmp/blas_live_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveTree(const std::string& dir) {
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Byte-copies every regular file of `src` into a fresh `dst` — the
/// "crash image" the recovery tests reopen.
void CopyDir(const std::string& src, const std::string& dst) {
  ::mkdir(dst.c_str(), 0755);
  std::string cmd = "cp '" + src + "'/* '" + dst + "'/ 2>/dev/null";
  (void)std::system(cmd.c_str());
}

/// RAII cleanup of every directory a test creates.
class TempDirs {
 public:
  ~TempDirs() {
    for (const std::string& dir : dirs_) RemoveTree(dir);
  }
  std::string Make(const std::string& tag) {
    dirs_.push_back(UniqueDir(tag));
    return dirs_.back();
  }
  std::string Track(std::string dir) {
    dirs_.push_back(std::move(dir));
    return dirs_.back();
  }

 private:
  std::vector<std::string> dirs_;
};

// --------------------------------------------------------- documents ---

std::string ShardXml(const std::string& tag, int items, int salt = 0) {
  std::ostringstream xml;
  xml << "<shard>";
  for (int i = 0; i < items; ++i) {
    xml << "<item><name>" << tag << "-" << (i + salt) << "</name><price>"
        << (10 * (i + 1) + salt) << "</price></item>";
  }
  xml << "</shard>";
  return xml.str();
}

/// Canonical serialization of a collection answer — the "byte-identical
/// to some published epoch" comparand.
std::string Serialize(const BlasCollection::CollectionResult& r) {
  std::ostringstream out;
  for (const auto& doc : r.docs) {
    out << doc.name << ":";
    for (uint32_t s : doc.starts) out << s << ",";
    for (const Match& m : doc.matches) out << m.content << ";";
    out << "|";
  }
  return out.str();
}

QueryOptions ValueQuery() {
  QueryOptions options;
  options.projection = Projection::kValue;
  return options;
}

std::string Drained(const LiveCollection& live, const std::string& xpath) {
  Result<BlasCollection::CollectionResult> r =
      live.Execute(xpath, ValueQuery());
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? Serialize(*r) : std::string("<error>");
}

// ------------------------------------------------------------- tests ---

TEST(LiveCollectionTest, AddReplaceRemoveAndReopen) {
  TempDirs dirs;
  std::string dir = dirs.Make("basic");
  uint64_t final_epoch = 0;
  std::string final_answer;
  {
    Result<std::unique_ptr<LiveCollection>> open = LiveCollection::Open(dir);
    ASSERT_TRUE(open.ok()) << open.status();
    LiveCollection& live = **open;
    EXPECT_EQ(live.epoch(), 0u);
    EXPECT_EQ(live.size(), 0u);

    ASSERT_TRUE(live.AddDocument("a", ShardXml("a", 2)).ok());
    ASSERT_TRUE(live.AddDocument("b", ShardXml("b", 3)).ok());
    EXPECT_EQ(live.epoch(), 2u);
    EXPECT_EQ(live.size(), 2u);

    // Duplicate add / missing replace / missing remove all refuse.
    EXPECT_EQ(live.AddDocument("a", ShardXml("a", 1)).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(live.ReplaceDocument("zzz", ShardXml("z", 1)).code(),
              StatusCode::kNotFound);
    EXPECT_EQ(live.RemoveDocument("zzz").code(), StatusCode::kNotFound);
    EXPECT_EQ(live.epoch(), 2u);  // failed publishes do not bump

    Result<BlasCollection::CollectionResult> r =
        live.Execute("//item/name", ValueQuery());
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->total_matches, 5u);

    ASSERT_TRUE(live.ReplaceDocument("a", ShardXml("a", 4, 100)).ok());
    ASSERT_TRUE(live.RemoveDocument("b").ok());
    EXPECT_EQ(live.epoch(), 4u);
    EXPECT_EQ(live.size(), 1u);

    r = live.Execute("//item/name", ValueQuery());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->total_matches, 4u);
    final_epoch = live.epoch();
    final_answer = Drained(live, "//item/name");

    LiveCollection::Stats stats = live.stats();
    EXPECT_EQ(stats.epochs_published, 4u);
    EXPECT_EQ(stats.docs_ingested, 3u);  // a, b, a-replacement
    EXPECT_EQ(stats.docs_removed, 1u);
    EXPECT_GT(stats.manifest_bytes, 0u);
  }
  // Reopen: the manifest replays to exactly the last published epoch.
  Result<std::unique_ptr<LiveCollection>> reopened =
      LiveCollection::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->epoch(), final_epoch);
  EXPECT_EQ(Drained(**reopened, "//item/name"), final_answer);
}

TEST(LiveCollectionTest, BatchPublishesAsOneEpoch) {
  TempDirs dirs;
  Result<std::unique_ptr<LiveCollection>> open =
      LiveCollection::Open(dirs.Make("batch"));
  ASSERT_TRUE(open.ok()) << open.status();
  LiveCollection& live = **open;

  ThreadPool pool(2, 64);
  IngestQueue queue(&live, &pool);
  std::vector<IngestQueue::DocOp> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(IngestQueue::DocOp{ManifestOp::Kind::kAdd,
                                       "doc" + std::to_string(i),
                                       ShardXml("d" + std::to_string(i), 2)});
  }
  std::future<Status> published = queue.SubmitBatch(std::move(batch));
  ASSERT_TRUE(published.get().ok());
  EXPECT_EQ(live.epoch(), 1u);  // three documents, ONE epoch
  EXPECT_EQ(live.size(), 3u);

  // A batch with one bad op publishes nothing.
  std::vector<IngestQueue::DocOp> bad;
  bad.push_back(
      IngestQueue::DocOp{ManifestOp::Kind::kAdd, "doc9", ShardXml("x", 1)});
  bad.push_back(IngestQueue::DocOp{ManifestOp::Kind::kRemove, "absent", ""});
  EXPECT_FALSE(queue.SubmitBatch(std::move(bad)).get().ok());
  EXPECT_EQ(live.epoch(), 1u);
  EXPECT_EQ(live.size(), 3u);
  queue.Drain();
  EXPECT_EQ(queue.stats().published, 1u);
  EXPECT_EQ(queue.stats().failed, 1u);
  EXPECT_EQ(queue.stats().pending, 0u);
}

TEST(LiveCollectionTest, CrashAtEveryRecordBoundaryRecoversThatEpoch) {
  TempDirs dirs;
  std::string dir = dirs.Make("crash");
  LiveOptions options;
  options.checkpoint_every = 0;  // keep the pure delta log
  Result<std::unique_ptr<LiveCollection>> open =
      LiveCollection::Open(dir, options);
  ASSERT_TRUE(open.ok()) << open.status();
  LiveCollection& live = **open;

  // Each publish = one record = one crash image, copied before the next
  // publish can reclaim any file the image still references.
  std::vector<std::string> images;
  std::vector<std::string> expected;
  auto snapshot_image = [&]() {
    std::string image =
        dirs.Track(dir + "_crash" + std::to_string(images.size()));
    CopyDir(dir, image);
    images.push_back(image);
    expected.push_back(Drained(live, "//item/name"));
  };

  snapshot_image();  // epoch 0: empty collection
  ASSERT_TRUE(live.AddDocument("a", ShardXml("a", 2)).ok());
  snapshot_image();
  ASSERT_TRUE(live.AddDocument("b", ShardXml("b", 3)).ok());
  snapshot_image();
  ASSERT_TRUE(live.ReplaceDocument("a", ShardXml("a", 1, 50)).ok());
  snapshot_image();
  ASSERT_TRUE(live.RemoveDocument("b").ok());
  snapshot_image();
  ASSERT_TRUE(live.AddDocument("c", ShardXml("c", 2, 7)).ok());
  snapshot_image();
  ASSERT_TRUE(live.ReplaceDocument("c", ShardXml("c", 3, 9)).ok());
  snapshot_image();

  // The images' manifests must end exactly on ascending record
  // boundaries (crash points).
  Result<ManifestState> full = ReplayManifest(dir + "/MANIFEST");
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(full->record_boundaries.size(), images.size());
  for (size_t i = 0; i < images.size(); ++i) {
    std::string manifest = ReadFile(images[i] + "/MANIFEST");
    EXPECT_EQ(manifest.size(), full->record_boundaries[i]) << "image " << i;

    Result<std::unique_ptr<LiveCollection>> recovered =
        LiveCollection::Open(images[i], options);
    ASSERT_TRUE(recovered.ok()) << "image " << i << ": "
                                << recovered.status();
    EXPECT_EQ((*recovered)->epoch(), i) << "image " << i;
    EXPECT_EQ(Drained(**recovered, "//item/name"), expected[i])
        << "image " << i;
  }
}

TEST(LiveCollectionTest, TornTailRecordIsDroppedOnRecovery) {
  TempDirs dirs;
  std::string dir = dirs.Make("torn");
  Result<std::unique_ptr<LiveCollection>> open = LiveCollection::Open(dir);
  ASSERT_TRUE(open.ok()) << open.status();
  ASSERT_TRUE((*open)->AddDocument("a", ShardXml("a", 2)).ok());
  ASSERT_TRUE((*open)->AddDocument("b", ShardXml("b", 2)).ok());
  std::string answer = Drained(**open, "//item/name");
  open->reset();

  const std::string manifest_path = dir + "/MANIFEST";
  const std::string intact = ReadFile(manifest_path);

  // Crash mid-append: header-only fragment, then header + partial
  // payload of a would-be third record. Both recover to epoch 2.
  ManifestRecord torn;
  torn.epoch = 3;
  torn.ops.push_back(ManifestOp{ManifestOp::Kind::kRemove, "a", ""});
  std::string encoded = EncodeManifestRecord(torn);
  for (size_t cut : {size_t{5}, encoded.size() - 3}) {
    WriteFile(manifest_path, intact + encoded.substr(0, cut));
    Result<ManifestState> replay = ReplayManifest(manifest_path);
    ASSERT_TRUE(replay.ok()) << replay.status();
    EXPECT_TRUE(replay->dropped_partial_tail);
    EXPECT_EQ(replay->epoch, 2u);

    Result<std::unique_ptr<LiveCollection>> recovered =
        LiveCollection::Open(dir);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ((*recovered)->epoch(), 2u);
    EXPECT_EQ(Drained(**recovered, "//item/name"), answer);
    // Reopening truncated the torn tail; the next append starts clean.
    // (An add keeps a/b's files live for the restored manifest below;
    // the new segment becomes an orphan the next Open sweeps.)
    ASSERT_TRUE((*recovered)->AddDocument("c", ShardXml("c", 1)).ok());
    EXPECT_EQ((*recovered)->epoch(), 3u);
    recovered->reset();
    WriteFile(manifest_path, intact);  // rebuild for the next cut
  }
}

TEST(LiveCollectionTest, CorruptManifestIsRejected) {
  TempDirs dirs;
  std::string dir = dirs.Make("corrupt");
  Result<std::unique_ptr<LiveCollection>> open = LiveCollection::Open(dir);
  ASSERT_TRUE(open.ok()) << open.status();
  ASSERT_TRUE((*open)->AddDocument("a", ShardXml("a", 2)).ok());
  ASSERT_TRUE((*open)->AddDocument("b", ShardXml("b", 2)).ok());
  open->reset();

  const std::string manifest_path = dir + "/MANIFEST";
  const std::string intact = ReadFile(manifest_path);
  Result<ManifestState> replay = ReplayManifest(manifest_path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->record_boundaries.size(), 3u);

  LiveOptions no_create;
  no_create.create_if_missing = false;

  // Flipped byte inside the FIRST record's checksummed payload.
  std::string corrupt = intact;
  corrupt[replay->record_boundaries[0] + 12 + 2] ^= 0x5A;
  WriteFile(manifest_path, corrupt);
  Result<std::unique_ptr<LiveCollection>> r =
      LiveCollection::Open(dir, no_create);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);

  // Bad file magic.
  corrupt = intact;
  corrupt[0] = 'X';
  WriteFile(manifest_path, corrupt);
  r = LiveCollection::Open(dir, no_create);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);

  // Bad record magic on the second record.
  corrupt = intact;
  corrupt[replay->record_boundaries[1]] ^= 0xFF;
  WriteFile(manifest_path, corrupt);
  r = LiveCollection::Open(dir, no_create);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);

  // Missing manifest without create_if_missing.
  ASSERT_EQ(std::remove(manifest_path.c_str()), 0);
  r = LiveCollection::Open(dir, no_create);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(LiveCollectionTest, RemoveWhileQueryDrainsThenReclaimsFile) {
  TempDirs dirs;
  Result<std::unique_ptr<LiveCollection>> open =
      LiveCollection::Open(dirs.Make("reclaim"));
  ASSERT_TRUE(open.ok()) << open.status();
  LiveCollection& live = **open;
  ASSERT_TRUE(live.AddDocument("a", ShardXml("a", 3)).ok());
  ASSERT_TRUE(live.AddDocument("b", ShardXml("b", 2)).ok());
  const std::string a_file =
      live.dir() + "/" + live.Snapshot()->files.at("a");
  ASSERT_TRUE(FileExists(a_file));

  {
    Result<CollectionCursor> cursor =
        live.OpenCursor("//item/name", ValueQuery());
    ASSERT_TRUE(cursor.ok()) << cursor.status();

    // The document disappears from the published state mid-drain...
    ASSERT_TRUE(live.RemoveDocument("a").ok());
    EXPECT_EQ(live.size(), 1u);
    EXPECT_TRUE(FileExists(a_file));  // ...but the cursor still pins it.

    Result<BlasCollection::CollectionResult> drained = cursor->Drain();
    ASSERT_TRUE(drained.ok());
    EXPECT_EQ(drained->total_matches, 5u);  // snapshot semantics: a included
    ASSERT_EQ(drained->docs.size(), 2u);
    EXPECT_EQ(drained->docs[0].name, "a");
  }
  // Last pin dropped with the cursor: the obsolete snapshot file is gone.
  EXPECT_FALSE(FileExists(a_file));
  EXPECT_EQ(live.stats().files_reclaimed, 1u);

  // New queries see the post-remove epoch.
  Result<BlasCollection::CollectionResult> fresh =
      live.Execute("//item/name", ValueQuery());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->total_matches, 2u);
}

TEST(LiveCollectionTest, OrphanedSnapshotFilesAreSweptAtOpen) {
  TempDirs dirs;
  std::string dir = dirs.Make("sweep");
  {
    Result<std::unique_ptr<LiveCollection>> open = LiveCollection::Open(dir);
    ASSERT_TRUE(open.ok()) << open.status();
    ASSERT_TRUE((*open)->AddDocument("a", ShardXml("a", 2)).ok());
  }
  // Crash leftovers: an unreferenced snapshot and a torn temp file.
  WriteFile(dir + "/seg-777.blasidx", "leftover");
  WriteFile(dir + "/seg-778.blasidx.tmp", "torn");

  Result<std::unique_ptr<LiveCollection>> reopened =
      LiveCollection::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE(FileExists(dir + "/seg-777.blasidx"));
  EXPECT_FALSE(FileExists(dir + "/seg-778.blasidx.tmp"));
  EXPECT_EQ((*reopened)->stats().files_swept, 2u);
  EXPECT_EQ((*reopened)->size(), 1u);
}

TEST(LiveCollectionTest, CheckpointCompactionKeepsLogSmallAndCorrect) {
  TempDirs dirs;
  std::string dir = dirs.Make("ckpt");
  LiveOptions options;
  options.checkpoint_every = 4;
  Result<std::unique_ptr<LiveCollection>> open =
      LiveCollection::Open(dir, options);
  ASSERT_TRUE(open.ok()) << open.status();
  LiveCollection& live = **open;

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        live.AddDocument("doc" + std::to_string(i),
                         ShardXml("d" + std::to_string(i), 1 + i % 3))
            .ok());
  }
  ASSERT_TRUE(live.RemoveDocument("doc3").ok());
  EXPECT_EQ(live.epoch(), 11u);
  EXPECT_GE(live.stats().checkpoints, 2u);
  std::string answer = Drained(live, "//item/name");

  // The compacted log replays to few records but the full state.
  Result<ManifestState> replay = ReplayManifest(dir + "/MANIFEST");
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_LE(replay->records, 4u);
  EXPECT_EQ(replay->epoch, 11u);
  EXPECT_EQ(replay->files.size(), 9u);

  open->reset();
  Result<std::unique_ptr<LiveCollection>> reopened =
      LiveCollection::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->epoch(), 11u);
  EXPECT_EQ(Drained(**reopened, "//item/name"), answer);
}

// Readers x churn equivalence: concurrent readers each drain a snapshot
// while a writer publishes 100+ add/replace/remove epochs; every drained
// result must be byte-identical to the answer of SOME published epoch —
// never a half-state. (TSan hunts the races.)
TEST(LiveCollectionTest, ReadersDrainConsistentEpochsDuringChurn) {
  TempDirs dirs;
  Result<std::unique_ptr<LiveCollection>> open =
      LiveCollection::Open(dirs.Make("churn"));
  ASSERT_TRUE(open.ok()) << open.status();
  LiveCollection& live = **open;
  const std::string xpath = "//item/name";

  std::mutex expected_mu;
  std::map<uint64_t, std::string> expected;  // epoch -> serialized answer
  {
    std::lock_guard<std::mutex> lock(expected_mu);
    expected[0] = Drained(live, xpath);
  }

  ThreadPool scatter_pool(3, 128);
  std::atomic<bool> done{false};
  struct Observation {
    uint64_t epoch;
    std::string answer;
  };
  constexpr int kReaders = 4;
  std::vector<std::vector<Observation>> observations(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const CollectionState> state = live.Snapshot();
        ScatterOptions scatter;
        if (r % 2 == 1) scatter.pool = &scatter_pool;  // parallel readers
        Result<CollectionCursor> cursor =
            state->collection.OpenCursor(xpath, ValueQuery(), scatter);
        ASSERT_TRUE(cursor.ok()) << cursor.status();
        Result<BlasCollection::CollectionResult> drained = cursor->Drain();
        ASSERT_TRUE(drained.ok()) << drained.status();
        observations[r].push_back(
            Observation{state->epoch, Serialize(*drained)});
      }
    });
  }

  // The writer: 120 publishes of mixed shape, recording each epoch's
  // ground-truth answer right after publishing it (only this thread
  // publishes, so Snapshot() is exactly the epoch it just made).
  constexpr int kOps = 120;
  int added = 0;
  for (int i = 0; i < kOps; ++i) {
    std::string name = "doc" + std::to_string(i % 8);
    Status status;
    if (i % 8 == 5 && live.Snapshot()->files.count(name) != 0) {
      status = live.RemoveDocument(name);
    } else if (live.Snapshot()->files.count(name) != 0) {
      status = live.ReplaceDocument(name, ShardXml(name, 1 + i % 3, i));
    } else {
      status = live.AddDocument(name, ShardXml(name, 1 + i % 3, i));
      ++added;
    }
    ASSERT_TRUE(status.ok()) << status;
    std::shared_ptr<const CollectionState> state = live.Snapshot();
    std::lock_guard<std::mutex> lock(expected_mu);
    expected[state->epoch] = Drained(live, xpath);
  }
  ASSERT_GE(added, 8);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(live.epoch(), static_cast<uint64_t>(kOps));
  size_t total_reads = 0;
  for (int r = 0; r < kReaders; ++r) {
    total_reads += observations[r].size();
    for (const Observation& obs : observations[r]) {
      auto it = expected.find(obs.epoch);
      ASSERT_NE(it, expected.end()) << "unknown epoch " << obs.epoch;
      EXPECT_EQ(obs.answer, it->second)
          << "reader " << r << " drained a state not matching epoch "
          << obs.epoch;
    }
  }
  EXPECT_GT(total_reads, 0u);
}

TEST(LiveCollectionTest, SharedFrameBudgetHoldsUnderChurn) {
  TempDirs dirs;
  LiveOptions options;
  options.storage.memory_budget = size_t{48} << 10;  // a handful of frames
  Result<std::unique_ptr<LiveCollection>> open =
      LiveCollection::Open(dirs.Make("budget"), options);
  ASSERT_TRUE(open.ok()) << open.status();
  LiveCollection& live = **open;

  for (int round = 0; round < 3; ++round) {
    for (int d = 0; d < 4; ++d) {
      std::string name = "doc" + std::to_string(d);
      std::string xml = ShardXml(name, 40, round * 100);
      Status status = round == 0 ? live.AddDocument(name, xml)
                                 : live.ReplaceDocument(name, xml);
      ASSERT_TRUE(status.ok()) << status;
    }
    Result<BlasCollection::CollectionResult> r =
        live.Execute("//item/price", ValueQuery());
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->total_matches, 160u);
  }
  EXPECT_LE(live.budget()->peak_used(), live.budget()->limit());
  EXPECT_GT(live.budget()->peak_used(), 0u);
}

// ------------------------------------------------- service + ingest ---

TEST(LiveCollectionTest, ServiceAdminFuturesAndChurnCounters) {
  TempDirs dirs;
  Result<std::unique_ptr<LiveCollection>> open =
      LiveCollection::Open(dirs.Make("svc"));
  ASSERT_TRUE(open.ok()) << open.status();
  LiveCollection& live = **open;
  QueryService service(&live, ServiceOptions{.worker_threads = 4});

  std::vector<std::future<Status>> admin;
  for (int i = 0; i < 6; ++i) {
    admin.push_back(service.SubmitAddDocument(
        "doc" + std::to_string(i), ShardXml("d" + std::to_string(i), 2)));
  }
  for (std::future<Status>& f : admin) {
    Status status = f.get();
    EXPECT_TRUE(status.ok()) << status;
  }
  service.DrainIngest();
  EXPECT_EQ(live.epoch(), 6u);

  QueryRequest request;
  request.xpath = "//item/name";
  request.options.projection = Projection::kValue;
  Result<BlasCollection::CollectionResult> r =
      service.SubmitCollection(request).get();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->total_matches, 12u);

  // A query that overlaps a publish counts as served-during-churn: the
  // stream callback itself publishes an epoch after the first match.
  std::atomic<bool> replaced{false};
  Result<StreamSummary> summary =
      service
          .SubmitCollection(request,
                            [&](const CollectionMatch&) {
                              if (!replaced.exchange(true)) {
                                EXPECT_TRUE(live.ReplaceDocument(
                                                    "doc0",
                                                    ShardXml("d0", 1, 9))
                                                .ok());
                              }
                              return true;
                            })
          .get();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->delivered, 12u);  // drained the pinned epoch in full

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.docs_ingested, 7u);
  EXPECT_EQ(stats.epochs_published, 7u);
  EXPECT_GT(stats.manifest_bytes, 0u);
  EXPECT_EQ(stats.queries_served_during_churn, 1u);

  // Admin on a non-live service refuses.
  BlasCollection static_coll;
  QueryService static_service(&static_coll);
  EXPECT_EQ(static_service.SubmitAddDocument("x", "<x/>").get().code(),
            StatusCode::kInvalidArgument);
}

// The plan-cache staleness regression: a replaced document must never be
// served through the plan translated against its previous incarnation.
TEST(LiveCollectionTest, ReplacedDocumentNeverServesStalePlan) {
  TempDirs dirs;
  Result<std::unique_ptr<LiveCollection>> open =
      LiveCollection::Open(dirs.Make("stale"));
  ASSERT_TRUE(open.ok()) << open.status();
  LiveCollection& live = **open;
  // Two structurally different generations: the tag alphabet, codec
  // widths and path summary all change across the replace.
  ASSERT_TRUE(live.AddDocument(
                      "doc",
                      "<shard><item><name>old</name></item></shard>")
                  .ok());
  QueryService service(&live, ServiceOptions{.worker_threads = 2});

  QueryRequest request;
  request.xpath = "//item/name";
  request.options.projection = Projection::kValue;
  Result<BlasCollection::CollectionResult> r =
      service.ExecuteCollection(request);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->total_matches, 1u);
  EXPECT_EQ(r->docs[0].matches[0].content, "old");
  uint64_t misses_before = service.stats().doc_plan_misses;

  // Warm repeat: pure per-document plan hit.
  r = service.ExecuteCollection(request);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(service.stats().doc_plan_misses, misses_before);
  EXPECT_GT(service.stats().doc_plan_hits, 0u);

  ASSERT_TRUE(
      live.ReplaceDocument("doc",
                           "<shard><extra/><item><name>new</name>"
                           "<name>new2</name></item></shard>")
          .ok());

  // Same query text, same cached entry — but the document's epoch moved,
  // so the per-document plan retranslates against the new generation.
  r = service.ExecuteCollection(request);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->total_matches, 2u);
  EXPECT_EQ(r->docs[0].matches[0].content, "new");
  EXPECT_EQ(r->docs[0].matches[1].content, "new2");
  EXPECT_EQ(service.stats().doc_plan_misses, misses_before + 1);
}

// Manifest primitives round-trip (unit coverage for the log format).
TEST(LiveCollectionTest, ManifestEncodeReplayRoundTrip) {
  TempDirs dirs;
  std::string path = dirs.Make("manifest") + "/MANIFEST";
  Result<ManifestWriter> created = ManifestWriter::Create(path);
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ(ManifestWriter::Create(path).status().code(),
            StatusCode::kInvalidArgument);  // refuses to clobber

  ManifestWriter writer = std::move(created).value();
  ManifestRecord r1;
  r1.epoch = 1;
  r1.ops.push_back(
      ManifestOp{ManifestOp::Kind::kAdd, "a", "seg-0.blasidx"});
  r1.ops.push_back(
      ManifestOp{ManifestOp::Kind::kAdd, "b", "seg-1.blasidx"});
  ASSERT_TRUE(writer.Append(r1).ok());
  ManifestRecord r2;
  r2.epoch = 2;
  r2.ops.push_back(
      ManifestOp{ManifestOp::Kind::kReplace, "a", "seg-2.blasidx"});
  r2.ops.push_back(ManifestOp{ManifestOp::Kind::kRemove, "b", ""});
  ASSERT_TRUE(writer.Append(r2).ok());

  Result<ManifestState> replay = ReplayManifest(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->epoch, 2u);
  EXPECT_EQ(replay->records, 2u);
  EXPECT_FALSE(replay->dropped_partial_tail);
  ASSERT_EQ(replay->files.size(), 1u);
  EXPECT_EQ(replay->files.at("a"), "seg-2.blasidx");
  EXPECT_EQ(replay->doc_epochs.at("a"), 2u);
  EXPECT_EQ(replay->bytes, writer.bytes());

  // Epoch regression and inconsistent ops are corruption.
  ManifestRecord stale;
  stale.epoch = 2;  // must ascend
  stale.ops.push_back(
      ManifestOp{ManifestOp::Kind::kAdd, "c", "seg-3.blasidx"});
  ASSERT_TRUE(writer.Append(stale).ok());
  EXPECT_EQ(ReplayManifest(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace blas

// Cross-cutting invariants the scalability figures (16-18) rely on:
// replicating the corpus R times multiplies every query's result count by
// exactly R, suffix-path plans are replication-invariant, and element
// counts grow as the paper's analysis predicts.

#include <gtest/gtest.h>

#include "blas/blas.h"
#include "gen/generator.h"
#include "gen/queries.h"

namespace blas {
namespace {

struct Ctx {
  std::unique_ptr<BlasSystem> x1;
  std::unique_ptr<BlasSystem> x3;
};

Ctx BuildAuctionPair() {
  Ctx ctx;
  for (int repl : {1, 3}) {
    GenOptions gen;
    gen.replicate = repl;
    Result<BlasSystem> sys = BlasSystem::FromEvents(
        [&](SaxHandler* h) { GenerateAuction(gen, h); });
    EXPECT_TRUE(sys.ok());
    auto holder = std::make_unique<BlasSystem>(std::move(sys).value());
    (repl == 1 ? ctx.x1 : ctx.x3) = std::move(holder);
  }
  return ctx;
}

TEST(ScalingTest, ResultCountsScaleWithReplication) {
  Ctx ctx = BuildAuctionPair();
  std::vector<BenchQuery> queries = Figure10Queries('A');
  for (const BenchQuery& bq : XMarkBenchmarkQueries()) queries.push_back(bq);
  for (const BenchQuery& q : queries) {
    Result<QueryResult> r1 = ctx.x1->Execute(q.xpath, Translator::kPushUp,
                                             Engine::kTwig);
    Result<QueryResult> r3 = ctx.x3->Execute(q.xpath, Translator::kPushUp,
                                             Engine::kTwig);
    ASSERT_TRUE(r1.ok()) << q.name;
    ASSERT_TRUE(r3.ok()) << q.name;
    EXPECT_EQ(r3->starts.size(), r1->starts.size() * 3) << q.name;
  }
}

TEST(ScalingTest, SuffixPathElementsEqualResults) {
  // QA1 under Split visits exactly its matches (the figure-16 flat line).
  Ctx ctx = BuildAuctionPair();
  const std::string qa1 = Figure10Queries('A')[0].xpath;
  for (BlasSystem* sys : {ctx.x1.get(), ctx.x3.get()}) {
    sys->ResetCounters();
    Result<QueryResult> r =
        sys->Execute(qa1, Translator::kSplit, Engine::kTwig);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.elements, r->starts.size());
    EXPECT_EQ(r->stats.d_joins, 0);
  }
}

TEST(ScalingTest, DLabelElementsScaleLinearly) {
  // The same query under D-labeling visits all tag occurrences, which
  // scale with the corpus (the figure-16 rising line).
  Ctx ctx = BuildAuctionPair();
  const std::string qa1 = Figure10Queries('A')[0].xpath;
  ExecStats s1;
  ExecStats s3;
  ctx.x1->ResetCounters();
  Result<QueryResult> r1 =
      ctx.x1->Execute(qa1, Translator::kDLabel, Engine::kTwig);
  ASSERT_TRUE(r1.ok());
  ctx.x3->ResetCounters();
  Result<QueryResult> r3 =
      ctx.x3->Execute(qa1, Translator::kDLabel, Engine::kTwig);
  ASSERT_TRUE(r3.ok());
  // Within one element of exactly 3x (the root element is shared).
  EXPECT_NEAR(static_cast<double>(r3->stats.elements),
              static_cast<double>(r1->stats.elements) * 3.0, 3.0);
  EXPECT_GT(r1->stats.elements, r1->starts.size() * 10);
}

TEST(ScalingTest, PlansAreReplicationInvariant) {
  // Translation depends only on the alphabet/schema, not corpus size.
  Ctx ctx = BuildAuctionPair();
  for (const BenchQuery& q : Figure10Queries('A')) {
    for (Translator t : {Translator::kSplit, Translator::kPushUp,
                         Translator::kUnfold}) {
      Result<ExecPlan> p1 = ctx.x1->Plan(q.xpath, t);
      Result<ExecPlan> p3 = ctx.x3->Plan(q.xpath, t);
      ASSERT_TRUE(p1.ok());
      ASSERT_TRUE(p3.ok());
      ASSERT_EQ(p1->parts.size(), p3->parts.size()) << q.name;
      for (size_t i = 0; i < p1->parts.size(); ++i) {
        EXPECT_EQ(p1->parts[i].alts.size(), p3->parts[i].alts.size());
        for (size_t a = 0; a < p1->parts[i].alts.size(); ++a) {
          EXPECT_TRUE(p1->parts[i].alts[a].range ==
                      p3->parts[i].alts[a].range);
        }
      }
    }
  }
}

TEST(ScalingTest, ElementsReadNeverExceedDLabel) {
  // BLAS translators never visit more elements than the D-labeling
  // baseline on any paper query (section 4.2, claim 2).
  Ctx ctx = BuildAuctionPair();
  for (const BenchQuery& q : Figure10Queries('A')) {
    ctx.x3->ResetCounters();
    Result<QueryResult> base =
        ctx.x3->Execute(q.xpath, Translator::kDLabel, Engine::kTwig);
    ASSERT_TRUE(base.ok());
    for (Translator t : {Translator::kSplit, Translator::kPushUp,
                         Translator::kUnfold}) {
      ctx.x3->ResetCounters();
      Result<QueryResult> r = ctx.x3->Execute(q.xpath, t, Engine::kTwig);
      ASSERT_TRUE(r.ok());
      EXPECT_LE(r->stats.elements, base->stats.elements)
          << q.name << " " << TranslatorName(t);
      EXPECT_EQ(r->starts, base->starts);
    }
  }
}

}  // namespace
}  // namespace blas

// MUST NOT COMPILE under -Werror=thread-safety (see CMakeLists.txt: the
// ctest wrapper inverts the build result). Reading a guarded member
// without its mutex is the canonical race this PR's annotations exist to
// reject at compile time.

#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    blas::MutexLock lock(mu_);
    ++value_;
  }
  // BUG under test: reads value_ with no lock held.
  long Peek() const { return value_; }

 private:
  mutable blas::Mutex mu_;
  long value_ BLAS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return static_cast<int>(c.Peek());
}

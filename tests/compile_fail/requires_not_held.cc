// MUST NOT COMPILE under -Werror=thread-safety. Calling a
// BLAS_REQUIRES(mu) function without holding mu is how lock protocols
// decay — a helper written for "latch already held" leaks into an
// unlatched path (exactly the BufferPool::EvictDownTo contract).

#include "common/thread_annotations.h"

namespace {

class Shard {
 public:
  void EvictLocked() BLAS_REQUIRES(mu_) { --frames_; }

  // BUG under test: calls the REQUIRES helper without acquiring mu_.
  void EvictUnlocked() { EvictLocked(); }

 private:
  blas::Mutex mu_;
  long frames_ BLAS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Shard s;
  s.EvictUnlocked();
  return 0;
}

// MUST NOT COMPILE under -Werror=thread-safety-beta. The declared
// acquisition order (publish before state, the PR-7 manifest protocol)
// is violated by taking the locks in the reverse nesting — with a
// second thread doing it the declared way round, that is an AB/BA
// deadlock. Clang checks BLAS_ACQUIRED_BEFORE only under the -beta
// flag, which the compile_fail harness enables; blas-analyze's
// lock-order check catches the same contradiction from the nesting
// graph without needing the declaration.

#include "common/thread_annotations.h"

namespace {

class Publisher {
 public:
  // BUG under test: acquires state_mu_ first, then publish_mu_ —
  // the reverse of the declared order.
  void PublishBackwards() {
    blas::MutexLock state(state_mu_);
    blas::MutexLock publish(publish_mu_);
    ++generation_;
  }

 private:
  blas::Mutex publish_mu_ BLAS_ACQUIRED_BEFORE(state_mu_);
  blas::Mutex state_mu_;
  long generation_ BLAS_GUARDED_BY(publish_mu_) = 0;
};

}  // namespace

int main() {
  Publisher p;
  p.PublishBackwards();
  return 0;
}

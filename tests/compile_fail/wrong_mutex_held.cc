// MUST NOT COMPILE under -Werror=thread-safety. Holding *a* lock is not
// holding *the* lock: writing a state_mu_-guarded field under publish_mu_
// alone must be rejected (the LiveCollection protocol nests state_mu_
// inside publish_mu_ for exactly this reason).

#include "common/thread_annotations.h"

namespace {

class TwoPhase {
 public:
  void Publish(int next) {
    blas::MutexLock publish_lock(publish_mu_);
    // BUG under test: state_ is guarded by state_mu_, not publish_mu_.
    state_ = next;
  }

 private:
  blas::Mutex publish_mu_ BLAS_ACQUIRED_BEFORE(state_mu_);
  blas::Mutex state_mu_;
  int state_ BLAS_GUARDED_BY(state_mu_) = 0;
};

}  // namespace

int main() {
  TwoPhase t;
  t.Publish(1);
  return 0;
}

// Demand-paged storage: BLASIDX2 round trips (byte-identical answers under
// a 4-frame budget vs unlimited memory, across translators and engines),
// real-I/O accounting, eviction bounds, BLAS1 <-> BLASIDX2 equivalence,
// corrupt-directory preflight rejection, atomic snapshot replacement, and
// DropCache/ResetStats vs concurrent readers (runs under the TSan CI job).
//
// The cache-pressure CI job re-runs this binary with BLAS_PAGED_FRAMES=2
// to shrink every paged pool to the minimum that still makes progress.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blas/collection.h"
#include "gen/generator.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "storage/persist.h"
#include "tests/test_util.h"

namespace blas {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Frames per shard for pressure tests; the CI cache-pressure job
/// overrides the default via BLAS_PAGED_FRAMES.
size_t PressureFrames(size_t def) {
  const char* env = std::getenv("BLAS_PAGED_FRAMES");
  if (env == nullptr) return def;
  int v = std::atoi(env);
  return v < 2 ? 2 : static_cast<size_t>(v);
}

StorageOptions TinyBudget(size_t frames = 4) {
  StorageOptions storage;
  storage.frames_per_shard = PressureFrames(frames);
  storage.shards = 1;
  return storage;
}

BlasSystem BuildAuction(int scale = 1) {
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [scale](SaxHandler* h) {
        GenOptions gen;
        gen.scale = scale;
        GenerateAuction(gen, h);
      },
      BlasOptions{});
  EXPECT_TRUE(sys.ok()) << sys.status();
  if (!sys.ok()) std::abort();
  return std::move(sys).value();
}

BlasSystem BuildRandom(uint64_t seed) {
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [seed](SaxHandler* h) {
        GenerateRandomDoc(seed, /*approx_nodes=*/1500, /*num_tags=*/10,
                          /*max_depth=*/6, /*num_values=*/40, h);
      },
      BlasOptions{});
  EXPECT_TRUE(sys.ok()) << sys.status();
  if (!sys.ok()) std::abort();
  return std::move(sys).value();
}

const char* kAuctionQueries[] = {
    "//item/name",
    "/site/regions/asia/item[shipping]/description",
    "/site//keyword",
    "//parlist/listitem",
    "/site/people/person/name",
    "//nosuchtag",
};

// ----------------------------------------------- answers are identical ---

TEST(PagedStorageTest, RoundTripAnswersIdenticallyUnderTinyBudget) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("paged_auction.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  for (const StorageOptions& storage :
       {TinyBudget(4), StorageOptions{}}) {
    Result<BlasSystem> paged = BlasSystem::OpenPaged(path, storage);
    ASSERT_TRUE(paged.ok()) << paged.status();
    for (const char* q : kAuctionQueries) {
      for (Translator t : {Translator::kDLabel, Translator::kSplit,
                           Translator::kPushUp, Translator::kUnfold}) {
        for (Engine e : {Engine::kRelational, Engine::kTwig}) {
          Result<QueryResult> a = original.Execute(q, t, e);
          Result<QueryResult> b = paged->Execute(q, t, e);
          if (!a.ok()) {
            EXPECT_EQ(a.status().code(), b.status().code()) << q;
            continue;
          }
          ASSERT_TRUE(b.ok()) << q << " " << b.status();
          EXPECT_EQ(a->starts, b->starts)
              << q << " [" << TranslatorName(t) << "/" << EngineName(e)
              << "] frames=" << storage.frames_per_shard;
        }
      }
    }
  }
}

TEST(PagedStorageTest, ProjectionAndLimitKReadThePagedDictionary) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("paged_projection.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());
  Result<BlasSystem> paged = BlasSystem::OpenPaged(path, TinyBudget(4));
  ASSERT_TRUE(paged.ok()) << paged.status();

  for (Projection projection :
       {Projection::kTag, Projection::kPath, Projection::kValue,
        Projection::kSubtree}) {
    for (uint64_t limit : {uint64_t{0}, uint64_t{10}}) {
      QueryOptions options;
      options.projection = projection;
      options.limit = limit;
      Result<QueryResult> a = original.Execute("//item/description", options);
      Result<QueryResult> b = paged->Execute("//item/description", options);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_EQ(a->starts, b->starts);
      ASSERT_EQ(a->matches.size(), b->matches.size());
      for (size_t i = 0; i < a->matches.size(); ++i) {
        EXPECT_EQ(a->matches[i].content, b->matches[i].content)
            << ProjectionName(projection) << " limit=" << limit;
      }
    }
  }
}

TEST(PagedStorageTest, ValuePredicatesUseThePagedFindPath) {
  BlasSystem original = BuildRandom(7);
  std::string path = TempPath("paged_values.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());
  Result<BlasSystem> paged = BlasSystem::OpenPaged(path, TinyBudget(4));
  ASSERT_TRUE(paged.ok()) << paged.status();

  for (const char* q : {"//t0[t1=\"v7\"]", "//t1=\"v3\"", "//t2[t4=\"v99\"]",
                        "//t0[t1<\"20\"]"}) {
    for (Translator t : {Translator::kDLabel, Translator::kPushUp}) {
      Result<QueryResult> a = original.Execute(q, t, Engine::kRelational);
      Result<QueryResult> b = paged->Execute(q, t, Engine::kRelational);
      ASSERT_TRUE(a.ok()) << q << a.status();
      ASSERT_TRUE(b.ok()) << q << b.status();
      EXPECT_EQ(a->starts, b->starts) << q;
    }
  }
}

// ----------------------------------------------------- real I/O + O(1) ---

TEST(PagedStorageTest, OpenIsLazyAndMissesAreRealReads) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("paged_io.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  Result<BlasSystem> paged = BlasSystem::OpenPaged(path, TinyBudget(8));
  ASSERT_TRUE(paged.ok()) << paged.status();
  // Opening read only the header and the schema-sized segments: no data
  // page is resident and no I/O is on the books.
  EXPECT_EQ(paged->store().pool().frames_in_use(), 0u);
  EXPECT_EQ(paged->store().stats().io_reads, 0u);

  QueryOptions options;
  Result<QueryResult> r = paged->Execute("//item/name", options);
  ASSERT_TRUE(r.ok());
  // Every miss was a real pread, and the per-query stats surface it.
  EXPECT_GT(r->stats.io_reads, 0u);
  EXPECT_EQ(r->stats.io_reads, r->stats.page_misses);
  StorageStats store_stats = paged->store().stats();
  EXPECT_EQ(store_stats.io_reads, store_stats.page_misses);
  EXPECT_GT(store_stats.io_reads, 0u);

  // The in-memory system never touches the disk.
  Result<QueryResult> mem = original.Execute("//item/name", options);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->stats.io_reads, 0u);
}

TEST(PagedStorageTest, EvictionKeepsResidentFramesWithinBudget) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("paged_evict.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  const size_t frames = PressureFrames(4);
  Result<BlasSystem> paged = BlasSystem::OpenPaged(path, TinyBudget(4));
  ASSERT_TRUE(paged.ok()) << paged.status();
  ASSERT_GT(paged->store().pool().page_count(), frames)
      << "corpus must exceed the budget for this test to bite";

  for (const char* q : kAuctionQueries) {
    ASSERT_TRUE(paged->Execute(q, QueryOptions{}).ok());
  }
  const BufferPool& pool = paged->store().pool();
  EXPECT_LE(pool.peak_frames(), frames);
  EXPECT_LE(pool.frames_in_use(), frames);
  EXPECT_GT(pool.stats().evictions, 0u);
  // Rerunning after a cache drop does cold I/O again.
  BufferPool::Stats before = pool.stats();
  const_cast<BlasSystem&>(*paged).ResetCounters();
  ASSERT_TRUE(paged->Execute("//item/name", QueryOptions{}).ok());
  EXPECT_GT(pool.stats().io_reads, 0u);
  (void)before;
}

// ------------------------------------------- format interoperability ---

TEST(PagedStorageTest, Blas1AndBlas2SnapshotsAreEquivalent) {
  BlasSystem original = BuildRandom(11);
  std::string blas1 = TempPath("equiv.idx");
  std::string blas2 = TempPath("equiv.idx2");
  ASSERT_TRUE(original.SaveIndex(blas1).ok());
  ASSERT_TRUE(original.SavePagedIndex(blas2).ok());

  // LoadSnapshot materializes both formats into identical snapshots
  // (SaveIndex exports in (plabel, start) order; the BLASIDX2 walk reads
  // the SP leaf chain, which is the same order).
  Result<IndexSnapshot> s1 = LoadSnapshot(blas1);
  Result<IndexSnapshot> s2 = LoadSnapshot(blas2);
  ASSERT_TRUE(s1.ok()) << s1.status();
  ASSERT_TRUE(s2.ok()) << s2.status();
  EXPECT_EQ(s1->tags, s2->tags);
  EXPECT_EQ(s1->max_depth, s2->max_depth);
  EXPECT_EQ(s1->values, s2->values);
  ASSERT_EQ(s1->records.size(), s2->records.size());
  for (size_t i = 0; i < s1->records.size(); ++i) {
    EXPECT_EQ(s1->records[i].plabel, s2->records[i].plabel) << i;
    EXPECT_EQ(s1->records[i].start, s2->records[i].start) << i;
    EXPECT_EQ(s1->records[i].end, s2->records[i].end) << i;
    EXPECT_EQ(s1->records[i].tag, s2->records[i].tag) << i;
    EXPECT_EQ(s1->records[i].level, s2->records[i].level) << i;
    EXPECT_EQ(s1->records[i].data, s2->records[i].data) << i;
  }

  // The BLAS1 -> BLASIDX2 round trip: materialize the old format, save
  // paged, reopen paged — answers agree with the original system.
  Result<BlasSystem> from1 = BlasSystem::FromIndexFile(blas1);
  ASSERT_TRUE(from1.ok()) << from1.status();
  std::string blas2b = TempPath("equiv_rt.idx2");
  ASSERT_TRUE(from1->SavePagedIndex(blas2b).ok());
  Result<BlasSystem> paged = BlasSystem::OpenPaged(blas2b, TinyBudget(4));
  ASSERT_TRUE(paged.ok()) << paged.status();
  // FromIndexFile accepts the paged format too (full materialization).
  Result<BlasSystem> from2 = BlasSystem::FromIndexFile(blas2);
  ASSERT_TRUE(from2.ok()) << from2.status();
  for (const char* q : {"//t3", "/root/t1", "//t1//t4", "//t0[t1=\"v7\"]"}) {
    Result<QueryResult> a = original.Execute(q, QueryOptions{});
    Result<QueryResult> b = paged->Execute(q, QueryOptions{});
    Result<QueryResult> c = from2->Execute(q, QueryOptions{});
    ASSERT_TRUE(a.ok() && b.ok() && c.ok()) << q;
    EXPECT_EQ(a->starts, b->starts) << q;
    EXPECT_EQ(a->starts, c->starts) << q;
  }

  BlasSystem::DocStats da = original.doc_stats();
  BlasSystem::DocStats db = paged->doc_stats();
  EXPECT_EQ(da.nodes, db.nodes);
  EXPECT_EQ(da.tags, db.tags);
  EXPECT_EQ(da.depth, db.depth);
  EXPECT_EQ(da.distinct_paths, db.distinct_paths);
  EXPECT_EQ(da.distinct_values, db.distinct_values);
  EXPECT_EQ(da.pages, db.pages);
}

// --------------------------------------------- corruption preflight ---

/// Byte offsets inside the BLASIDX2 header (see persist.h): fixed fields
/// first (magic 0, version 8, endian 12, page size 16, record size 20,
/// key sizes 24..36, depth 36, counts 40..80), then four 32-byte tree
/// metas (80..208), the dictionary placement (208..224) and the tail
/// directory (224..296).
constexpr size_t kOffRecordSize = 20;
constexpr size_t kOffPoolPages = 64;
constexpr size_t kOffSpRoot = 80;
constexpr size_t kOffFirstValuePage = 208;
constexpr size_t kOffTagBytes = 240;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void PatchU32(std::string* bytes, size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[off + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void PatchU64(std::string* bytes, size_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[off + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

class PagedCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BlasSystem sys = BuildRandom(23);
    path_ = TempPath("corrupt_base.idx2");
    ASSERT_TRUE(sys.SavePagedIndex(path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), kPageSize);
  }

  void ExpectRejected(const std::string& bytes, const std::string& what) {
    std::string path = TempPath("corrupt_case.idx2");
    WriteFile(path, bytes);
    Result<BlasSystem> paged = BlasSystem::OpenPaged(path);
    EXPECT_FALSE(paged.ok()) << what;
    if (!paged.ok()) {
      EXPECT_EQ(paged.status().code(), StatusCode::kCorruption) << what;
    }
    // The materializing loader applies the same preflight.
    Result<IndexSnapshot> snap = LoadSnapshot(path);
    EXPECT_FALSE(snap.ok()) << what;
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(PagedCorruptionTest, TruncatedFileRejected) {
  ExpectRejected(bytes_.substr(0, kPageSize / 2), "half a header");
  ExpectRejected(bytes_.substr(0, bytes_.size() / 2), "half the pages");
  ExpectRejected(bytes_.substr(0, bytes_.size() - kPageSize),
                 "missing tail segment");
}

TEST_F(PagedCorruptionTest, BadMagicRejected) {
  std::string bad = bytes_;
  bad[7] = '9';
  ExpectRejected(bad, "magic");
}

TEST_F(PagedCorruptionTest, RecordLayoutMismatchRejected) {
  std::string bad = bytes_;
  PatchU32(&bad, kOffRecordSize, 36);  // claims a different ABI
  ExpectRejected(bad, "record size");
}

TEST_F(PagedCorruptionTest, OverstatedPoolPagesRejectedBeforeAllocation) {
  std::string bad = bytes_;
  PatchU64(&bad, kOffPoolPages, uint64_t{1} << 40);  // ~8 PiB of pages
  ExpectRejected(bad, "pool pages");
}

TEST_F(PagedCorruptionTest, TreeRootOutsideItsSegmentRejected) {
  std::string bad = bytes_;
  PatchU32(&bad, kOffSpRoot, 0xFFFFFF00u);
  ExpectRejected(bad, "sp root");
}

TEST_F(PagedCorruptionTest, OverflowingSegmentLengthRejected) {
  // byte_length near 2^64 must not wrap the page arithmetic into a
  // passing check (and must never reach a resize()).
  std::string bad = bytes_;
  PatchU64(&bad, kOffTagBytes, 0xFFFFFFFFFFFFFFFFull);
  ExpectRejected(bad, "tag byte length");
  bad = bytes_;
  PatchU64(&bad, 48, uint64_t{1} << 62);  // tag_count: 4x wraps to 0
  ExpectRejected(bad, "tag count");
}

TEST_F(PagedCorruptionTest, CorruptValuePagePayloadIsContained) {
  // The directory validates at open; page payloads are untrusted until
  // decode. A hostile count/offset array must not cause OOB reads.
  std::string bad = bytes_;
  uint32_t first_value_page = 0;
  for (int i = 3; i >= 0; --i) {
    first_value_page = (first_value_page << 8) |
                       static_cast<uint8_t>(bad[kOffFirstValuePage + i]);
  }
  const size_t page_off = (1 + size_t{first_value_page}) * kPageSize;
  ASSERT_LT(page_off, bad.size());
  PatchU32(&bad, page_off, 0xFFFFFFFFu);  // count
  PatchU32(&bad, page_off + 8, 0xFFFFFFFFu);  // first offset
  std::string path = TempPath("corrupt_value_page.idx2");
  WriteFile(path, bad);

  // The materializing loader rejects it outright.
  Result<IndexSnapshot> snap = LoadSnapshot(path);
  EXPECT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kCorruption);

#ifdef NDEBUG
  // The paged dictionary refuses the page at decode time: projections
  // come back empty instead of reading out of bounds.
  Result<BlasSystem> paged = BlasSystem::OpenPaged(path);
  ASSERT_TRUE(paged.ok()) << paged.status();
  QueryOptions options;
  options.projection = Projection::kValue;
  Result<QueryResult> r = paged->Execute("//t1", options);
  ASSERT_TRUE(r.ok());
  for (const Match& m : r->matches) EXPECT_TRUE(m.content.empty());
#endif
}

// ------------------------------------------------------- atomic saves ---

TEST(PagedStorageTest, SavesAreAtomicReplacements) {
  BlasSystem sys = BuildRandom(31);
  std::string p1 = TempPath("atomic.idx");
  std::string p2 = TempPath("atomic.idx2");
  ASSERT_TRUE(sys.SaveIndex(p1).ok());
  ASSERT_TRUE(sys.SavePagedIndex(p2).ok());
  // No temp litter once the save committed.
  EXPECT_FALSE(std::ifstream(p1 + ".tmp").good());
  EXPECT_FALSE(std::ifstream(p2 + ".tmp").good());

  // Overwriting an existing snapshot goes through the same tmp + rename;
  // the result is the fresh file, not a torn mix.
  ASSERT_TRUE(sys.SaveIndex(p1).ok());
  ASSERT_TRUE(sys.SavePagedIndex(p2).ok());
  EXPECT_TRUE(BlasSystem::FromIndexFile(p1).ok());
  EXPECT_TRUE(BlasSystem::OpenPaged(p2).ok());

  // An unwritable target fails up front and leaves the old file intact.
  std::string good = ReadFile(p2);
  Status s = sys.SavePagedIndex("/nonexistent-dir/nope.idx2");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ReadFile(p2), good);
}

// ----------------------------------- concurrency: DropCache vs Fetch ---

TEST(PagedStorageTest, DropCacheKeepsPinnedPagesReadable) {
  BlasSystem sys = BuildAuction();
  std::string path = TempPath("paged_pin.idx2");
  ASSERT_TRUE(sys.SavePagedIndex(path).ok());
  Result<BlasSystem> paged = BlasSystem::OpenPaged(path, TinyBudget(4));
  ASSERT_TRUE(paged.ok());

  const BufferPool& pool = paged->store().pool();
  PageRef pinned = pool.Fetch(0);
  ASSERT_TRUE(static_cast<bool>(pinned));
  Page copy = *pinned.get();
  // A concurrent cache drop must not free the pinned frame.
  // blas-analyze: allow(pin-escape) -- pin-survives-DropCache under test
  paged->store().DropCache();
  EXPECT_EQ(std::memcmp(copy.bytes.data(), pinned->bytes.data(), kPageSize),
            0);
  // Once released, refetching rereads the same bytes from disk.
  pinned = PageRef();
  paged->store().DropCache();
  PageRef again = pool.Fetch(0);
  ASSERT_TRUE(static_cast<bool>(again));
  EXPECT_EQ(std::memcmp(copy.bytes.data(), again->bytes.data(), kPageSize),
            0);
}

TEST(PagedStorageTest, DropCacheAndResetStatsRaceCleanlyWithQueries) {
  BlasSystem sys = BuildAuction();
  std::string path = TempPath("paged_race.idx2");
  ASSERT_TRUE(sys.SavePagedIndex(path).ok());
  Result<BlasSystem> opened = BlasSystem::OpenPaged(path, TinyBudget(4));
  ASSERT_TRUE(opened.ok());
  BlasSystem& paged = *opened;

  Result<QueryResult> expected = sys.Execute("//item/name", QueryOptions{});
  ASSERT_TRUE(expected.ok());

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&paged, &expected] {
      for (int i = 0; i < 20; ++i) {
        Result<QueryResult> r = paged.Execute("//item/name", QueryOptions{});
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r->starts, expected->starts);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    paged.ResetCounters();  // DropCache + ResetStats under fire
    std::this_thread::yield();
  }
  for (std::thread& t : readers) t.join();
}

// ----------------------------------- collections on one shared budget ---

struct Budget {
  uint64_t limit;
  uint64_t offset;
};

TEST(PagedStorageTest, CollectionLargerThanSharedBudgetAnswersEverything) {
  // Eight auction shards, all paged against ONE 48-frame budget that is
  // far smaller than the summed index size.
  BlasCollection memory_coll;
  auto budget = std::make_shared<FrameBudget>(48 * kPageSize);
  BlasCollection paged_coll;
  uint64_t total_pages = 0;
  for (int i = 0; i < 8; ++i) {
    std::string name = "shard" + std::to_string(i);
    Result<BlasSystem> sys = BlasSystem::FromEvents(
        [i](SaxHandler* h) {
          GenOptions gen;
          gen.seed = 100 + i;
          GenerateAuction(gen, h);
        },
        BlasOptions{});
    ASSERT_TRUE(sys.ok());
    total_pages += sys->doc_stats().pages;
    std::string path = TempPath("shard" + std::to_string(i) + ".idx2");
    ASSERT_TRUE(sys->SavePagedIndex(path).ok());
    ASSERT_TRUE(memory_coll
                    .AddEvents(name,
                               [i](SaxHandler* h) {
                                 GenOptions gen;
                                 gen.seed = 100 + i;
                                 GenerateAuction(gen, h);
                               })
                    .ok());
    StorageOptions storage;
    storage.frames_per_shard = PressureFrames(8);
    storage.shards = 1;
    storage.shared_budget = budget;
    ASSERT_TRUE(paged_coll.AddPagedIndexFile(name, path, storage).ok());
  }
  ASSERT_GT(total_pages * kPageSize, budget->limit())
      << "corpus must exceed the shared budget for this test to bite";

  ThreadPool pool(4, 64);
  uint64_t total_io = 0;
  const Budget budgets[] = {{0, 0}, {10, 0}, {25, 5}};
  for (const char* q :
       {"//item/name", "/site//keyword", "//parlist/listitem",
        "/site/people/person/name"}) {
    for (const Budget& b : budgets) {
      QueryOptions options;
      options.limit = b.limit;
      options.offset = b.offset;
      Result<BlasCollection::CollectionResult> expected =
          memory_coll.Execute(q, options);
      ASSERT_TRUE(expected.ok()) << q;

      Result<CollectionCursor> cursor =
          paged_coll.OpenCursor(q, options, {.pool = &pool});
      ASSERT_TRUE(cursor.ok()) << q;
      Result<BlasCollection::CollectionResult> got = cursor->Drain();
      ASSERT_TRUE(got.ok()) << q << got.status();

      EXPECT_EQ(got->total_matches, expected->total_matches) << q;
      ASSERT_EQ(got->docs.size(), expected->docs.size()) << q;
      for (size_t d = 0; d < got->docs.size(); ++d) {
        EXPECT_EQ(got->docs[d].name, expected->docs[d].name) << q;
        EXPECT_EQ(got->docs[d].starts, expected->docs[d].starts)
            << q << " doc " << got->docs[d].name;
      }
      // A bounded rerun may be served entirely from resident frames, so
      // real I/O is asserted on the aggregate, not per query.
      total_io += got->stats.io_reads;
    }
  }
  EXPECT_GT(total_io, 0u);
  // The group never exceeded its allowance.
  EXPECT_LE(budget->peak_used(), budget->limit());
  EXPECT_GT(budget->used(), 0u);

  // The QueryService front door reports the real reads too.
  QueryService service(&paged_coll, ServiceOptions{.worker_threads = 4});
  auto future = service.SubmitCollection(QueryRequest{"//item/name", {}});
  Result<BlasCollection::CollectionResult> via_service = future.get();
  ASSERT_TRUE(via_service.ok());
  EXPECT_GT(service.stats().exec.io_reads, 0u);
  service.Shutdown();
  EXPECT_LE(budget->peak_used(), budget->limit());
}

// Regression: the pool destructor must leave the shared-budget group
// BEFORE counting resident frames. Counted-then-unregistered, a reclaim
// probe from a sibling pool could evict frames in the window (releasing
// their bytes itself), and the destructor's stale count double-released —
// used() drifted low, eventually wrapping, and the whole group stopped
// evicting. Pools churn open/close under query pressure; exact books or
// the budget is fiction.
TEST(PagedStorageTest, SharedBudgetBooksStayExactAcrossPoolTeardown) {
  auto budget = std::make_shared<FrameBudget>(6 * kPageSize);

  BlasSystem original = BuildAuction();
  std::string path_a = TempPath("teardown_a.idx2");
  std::string path_b = TempPath("teardown_b.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path_a).ok());
  ASSERT_TRUE(original.SavePagedIndex(path_b).ok());

  StorageOptions storage = TinyBudget(4);
  storage.shared_budget = budget;

  // A long-lived system keeps pressure on the budget while short-lived
  // siblings open, fault pages in, and tear down.
  Result<BlasSystem> keeper = BlasSystem::OpenPaged(path_a, storage);
  ASSERT_TRUE(keeper.ok());

  std::thread churn([&] {
    for (int i = 0; i < 12; ++i) {
      Result<BlasSystem> ephemeral = BlasSystem::OpenPaged(path_b, storage);
      ASSERT_TRUE(ephemeral.ok());
      Result<QueryResult> r = ephemeral->Execute("//item/name", QueryOptions{});
      ASSERT_TRUE(r.ok());
      // ~BlasSystem here: the pool unregisters and refunds its frames
      // while the keeper thread is mid-reclaim.
    }
  });
  for (int i = 0; i < 12; ++i) {
    Result<QueryResult> r =
        keeper->Execute(kAuctionQueries[i % 5], QueryOptions{});
    ASSERT_TRUE(r.ok());
  }
  churn.join();

  // Only the keeper's residents remain charged; never more than the
  // limit was ever oversubscribed by teardown refunds (an underflowed
  // counter would read as a huge number here).
  EXPECT_LE(budget->used(), budget->limit());
  keeper = Status::Internal("drop");  // destroys the keeper's pool
  EXPECT_EQ(budget->used(), 0u);
}

// ------------------------------------------------ bounds satellites ---

TEST(PagedStorageTest, OutOfRangePageIdsAreRejected) {
#ifndef NDEBUG
  GTEST_SKIP() << "bounds violations assert in debug builds";
#else
  BufferPool pool(4);
  pool.Allocate();
  EXPECT_EQ(pool.MutablePage(5), nullptr);
  EXPECT_FALSE(static_cast<bool>(pool.Fetch(5)));
  EXPECT_FALSE(static_cast<bool>(pool.Peek(5)));
#endif
}

}  // namespace
}  // namespace blas

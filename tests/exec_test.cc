#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/operators.h"
#include "tests/test_util.h"
#include "twig/twig.h"

namespace blas {
namespace {

NodeRecord Rec(uint32_t start, uint32_t end, int32_t level,
               PLabel plabel = 0) {
  NodeRecord r;
  r.start = start;
  r.end = end;
  r.level = level;
  r.plabel = plabel;
  return r;
}

TEST(JoinPredTest, Kinds) {
  DLabel anc{1, 100, 2};
  NodeRecord d3 = Rec(5, 6, 3);
  NodeRecord d5 = Rec(7, 8, 5);

  JoinPred contain{PlanPart::Join::kContain, 0, nullptr};
  EXPECT_TRUE(contain.LevelOk(anc, d3));
  EXPECT_TRUE(contain.LevelOk(anc, d5));

  JoinPred min2{PlanPart::Join::kContainMin, 2, nullptr};
  EXPECT_FALSE(min2.LevelOk(anc, d3));  // 3 < 2+2
  EXPECT_TRUE(min2.LevelOk(anc, d5));

  JoinPred exact1{PlanPart::Join::kContainExact, 1, nullptr};
  EXPECT_TRUE(exact1.LevelOk(anc, d3));
  EXPECT_FALSE(exact1.LevelOk(anc, d5));
}

TEST(JoinPredTest, PerAltDeltas) {
  PlanPart part;
  part.alts.push_back(PlanAlt{PLabelRange{10, 10}, {2, 4}});
  part.alts.push_back(PlanAlt{PLabelRange{20, 20}, {1}});
  PerAltDeltas table = BuildPerAltDeltas(part);
  JoinPred pred{PlanPart::Join::kContainPerAlt, 0, &table};

  DLabel anc{1, 100, 2};
  EXPECT_TRUE(pred.LevelOk(anc, Rec(5, 6, 4, 10)));   // delta 2 in {2,4}
  EXPECT_TRUE(pred.LevelOk(anc, Rec(5, 6, 6, 10)));   // delta 4
  EXPECT_FALSE(pred.LevelOk(anc, Rec(5, 6, 5, 10)));  // delta 3
  EXPECT_TRUE(pred.LevelOk(anc, Rec(5, 6, 3, 20)));   // delta 1
  EXPECT_FALSE(pred.LevelOk(anc, Rec(5, 6, 3, 30)));  // unknown plabel
}

TEST(StructuralJoinTest, BasicContainment) {
  // Anchors: [1,10] and [12,20]; descs inside each plus one outside.
  std::vector<Row> rows = {{DLabel{1, 10, 1}}, {DLabel{12, 20, 1}}};
  std::vector<NodeRecord> descs = {Rec(2, 3, 2), Rec(13, 14, 2),
                                   Rec(21, 22, 2)};
  JoinPred pred{PlanPart::Join::kContain, 0, nullptr};
  std::vector<Row> out = StructuralJoinRows(rows, 0, descs, pred);
  ASSERT_EQ(out.size(), 2u);
}

TEST(StructuralJoinTest, NestedAnchors) {
  // //a//a style: anchors nest; inner desc joins with both.
  std::vector<Row> rows = {{DLabel{1, 100, 1}}, {DLabel{10, 50, 2}}};
  std::vector<NodeRecord> descs = {Rec(20, 21, 3), Rec(60, 61, 2)};
  JoinPred pred{PlanPart::Join::kContain, 0, nullptr};
  std::vector<Row> out = StructuralJoinRows(rows, 0, descs, pred);
  // (outer, 20), (inner, 20), (outer, 60).
  EXPECT_EQ(out.size(), 3u);
}

TEST(StructuralJoinTest, SharedAnchorMultipliesRows) {
  // Two rows with the same anchor binding both extend.
  DLabel anchor{1, 10, 1};
  std::vector<Row> rows = {{anchor, DLabel{2, 3, 2}},
                           {anchor, DLabel{4, 5, 2}}};
  std::vector<NodeRecord> descs = {Rec(6, 7, 2)};
  JoinPred pred{PlanPart::Join::kContain, 0, nullptr};
  std::vector<Row> out = StructuralJoinRows(rows, 0, descs, pred);
  EXPECT_EQ(out.size(), 2u);
  for (const Row& row : out) EXPECT_EQ(row.size(), 3u);
}

TEST(StructuralJoinTest, EmptyInputs) {
  JoinPred pred{PlanPart::Join::kContain, 0, nullptr};
  EXPECT_TRUE(StructuralJoinRows({}, 0, {Rec(1, 2, 1)}, pred).empty());
  EXPECT_TRUE(
      StructuralJoinRows({{DLabel{1, 2, 1}}}, 0, {}, pred).empty());
}

TEST(StructuralJoinTest, StrictContainmentExcludesSelf) {
  // Identical intervals must not join (descendant axis is strict).
  std::vector<Row> rows = {{DLabel{5, 10, 2}}};
  std::vector<NodeRecord> descs = {Rec(5, 10, 2)};
  JoinPred pred{PlanPart::Join::kContain, 0, nullptr};
  EXPECT_TRUE(StructuralJoinRows(rows, 0, descs, pred).empty());
}

TEST(SemiJoinTest, MarkAnchors) {
  std::vector<NodeRecord> anchors = {Rec(1, 10, 1), Rec(12, 20, 1),
                                     Rec(22, 30, 1)};
  std::vector<NodeRecord> descs = {Rec(2, 3, 2), Rec(23, 24, 2)};
  JoinPred pred{PlanPart::Join::kContain, 0, nullptr};
  std::vector<char> marked = SemiMarkAnchors(anchors, descs, {}, pred);
  EXPECT_EQ(marked, (std::vector<char>{1, 0, 1}));

  // desc_alive masks out the second desc.
  marked = SemiMarkAnchors(anchors, descs, {1, 0}, pred);
  EXPECT_EQ(marked, (std::vector<char>{1, 0, 0}));
}

TEST(SemiJoinTest, MarkDescs) {
  std::vector<NodeRecord> anchors = {Rec(1, 10, 1), Rec(12, 20, 1)};
  std::vector<NodeRecord> descs = {Rec(2, 3, 2), Rec(13, 14, 2),
                                   Rec(21, 22, 1)};
  JoinPred pred{PlanPart::Join::kContain, 0, nullptr};
  std::vector<char> marked = SemiMarkDescs(anchors, {}, descs, pred);
  EXPECT_EQ(marked, (std::vector<char>{1, 1, 0}));

  marked = SemiMarkDescs(anchors, {0, 1}, descs, pred);
  EXPECT_EQ(marked, (std::vector<char>{0, 1, 0}));
}

TEST(SemiJoinTest, LevelPredicatesApply) {
  std::vector<NodeRecord> anchors = {Rec(1, 10, 1)};
  std::vector<NodeRecord> descs = {Rec(2, 3, 2), Rec(4, 5, 3)};
  JoinPred exact2{PlanPart::Join::kContainExact, 2, nullptr};
  EXPECT_EQ(SemiMarkDescs(anchors, {}, descs, exact2),
            (std::vector<char>{0, 1}));
  EXPECT_EQ(SemiMarkAnchors(anchors, descs, {}, exact2),
            (std::vector<char>{1}));
}

TEST(ExecutorTest, StatsAreReported) {
  BlasSystem sys = MustBuild(
      "<a><b><c>x</c></b><b><c>y</c></b><d><c>z</c></d></a>");
  Result<QueryResult> r =
      sys.Execute("//b/c", Translator::kDLabel, Engine::kRelational);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.d_joins, 1);
  // D-labeling reads all b (2) and all c (3) elements.
  EXPECT_EQ(r->stats.elements, 5u);
  EXPECT_GT(r->stats.page_fetches, 0u);
  EXPECT_EQ(r->stats.output_rows, 2u);

  Result<QueryResult> s =
      sys.Execute("//b/c", Translator::kSplit, Engine::kRelational);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->stats.d_joins, 0);
  // Suffix path: only the matching tuples are visited.
  EXPECT_EQ(s->stats.elements, 2u);
}

TEST(ExecutorTest, TwigEngineCountsStreams) {
  BlasSystem sys = MustBuild(
      "<a><b><c>x</c></b><b><c>y</c></b><d><c>z</c></d></a>");
  ExecStats stats;
  Result<ExecPlan> plan = sys.Plan("//b/c", Translator::kDLabel);
  ASSERT_TRUE(plan.ok());
  TwigEngine twig(&sys.store(), &sys.dict());
  Result<std::vector<uint32_t>> r = twig.Execute(*plan, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(stats.elements, 5u);
}

TEST(ExecutorTest, EmptyPlanRejected) {
  BlasSystem sys = MustBuild("<a/>");
  ExecPlan plan;
  RelationalExecutor exec(&sys.store(), &sys.dict());
  ExecStats stats;
  EXPECT_FALSE(exec.Execute(plan, &stats).ok());
  TwigEngine twig(&sys.store(), &sys.dict());
  EXPECT_FALSE(twig.Execute(plan, &stats).ok());
}

TEST(ExecutorTest, ValuePredicateNotInDictionary) {
  BlasSystem sys = MustBuild("<a><b>x</b></a>");
  Result<QueryResult> r = sys.Execute("//b=\"never-seen\"",
                                      Translator::kSplit,
                                      Engine::kRelational);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->starts.empty());
  // The scan short-circuits: no elements visited at all.
  EXPECT_EQ(r->stats.elements, 0u);
}

TEST(ExecutorTest, IntermediateRowsTracked) {
  BlasSystem sys = MustBuild(
      "<a><b><c/><c/></b><b><c/></b></a>");
  Result<QueryResult> r =
      sys.Execute("/a/b/c", Translator::kDLabel, Engine::kRelational);
  ASSERT_TRUE(r.ok());
  // Join 1: a x b -> 2 rows; join 2: rows x c -> 3 rows.
  EXPECT_EQ(r->stats.intermediate_rows, 5u);
}

}  // namespace
}  // namespace blas

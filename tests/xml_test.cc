#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/sax_parser.h"
#include "xml/xml_writer.h"

namespace blas {
namespace {

/// Records events as readable strings for assertions.
class EventLog : public SaxHandler {
 public:
  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attrs) override {
    std::string e = "<" + std::string(name);
    for (const auto& a : attrs) e += " " + a.name + "=" + a.value;
    events.push_back(e + ">");
  }
  void OnEndElement(std::string_view name) override {
    events.push_back("</" + std::string(name) + ">");
  }
  void OnText(std::string_view text) override {
    events.push_back("#" + std::string(text));
  }
  std::vector<std::string> events;
};

Status ParseInto(const std::string& xml, EventLog* log) {
  SaxParser parser;
  return parser.Parse(xml, log);
}

TEST(SaxParserTest, SimpleElement) {
  EventLog log;
  ASSERT_TRUE(ParseInto("<a>hi</a>", &log).ok());
  EXPECT_EQ(log.events,
            (std::vector<std::string>{"<a>", "#hi", "</a>"}));
}

TEST(SaxParserTest, NestedAndSelfClosing) {
  EventLog log;
  ASSERT_TRUE(ParseInto("<a><b/><c>x</c></a>", &log).ok());
  EXPECT_EQ(log.events, (std::vector<std::string>{"<a>", "<b>", "</b>",
                                                  "<c>", "#x", "</c>",
                                                  "</a>"}));
}

TEST(SaxParserTest, Attributes) {
  EventLog log;
  ASSERT_TRUE(
      ParseInto("<a x=\"1\" y='two'><b z=\"&lt;3\"/></a>", &log).ok());
  EXPECT_EQ(log.events[0], "<a x=1 y=two>");
  EXPECT_EQ(log.events[1], "<b z=<3>");
}

TEST(SaxParserTest, EntityDecoding) {
  EventLog log;
  ASSERT_TRUE(
      ParseInto("<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>", &log).ok());
  EXPECT_EQ(log.events[1], "#<>&'\"AB");
}

TEST(SaxParserTest, NumericEntityUtf8) {
  EventLog log;
  ASSERT_TRUE(ParseInto("<a>&#233;&#x20AC;</a>", &log).ok());
  EXPECT_EQ(log.events[1], "#\xC3\xA9\xE2\x82\xAC");  // é €
}

TEST(SaxParserTest, CdataIsLiteralText) {
  EventLog log;
  ASSERT_TRUE(ParseInto("<a><![CDATA[<not> &parsed;]]></a>", &log).ok());
  EXPECT_EQ(log.events[1], "#<not> &parsed;");
}

TEST(SaxParserTest, CommentsPisDoctypeSkipped) {
  EventLog log;
  ASSERT_TRUE(ParseInto("<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a "
                        "ANY>]><!-- hi --><a><!-- in --><?pi data?>x</a>"
                        "<!-- post -->",
                        &log)
                  .ok());
  EXPECT_EQ(log.events,
            (std::vector<std::string>{"<a>", "#x", "</a>"}));
}

TEST(SaxParserTest, WhitespaceOnlyTextSuppressed) {
  EventLog log;
  ASSERT_TRUE(ParseInto("<a>\n  <b>x</b>\n</a>", &log).ok());
  EXPECT_EQ(log.events, (std::vector<std::string>{"<a>", "<b>", "#x",
                                                  "</b>", "</a>"}));
}

TEST(SaxParserTest, MismatchedTagRejected) {
  EventLog log;
  Status s = ParseInto("<a><b></a></b>", &log);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(SaxParserTest, UnterminatedRejected) {
  EventLog log;
  EXPECT_FALSE(ParseInto("<a><b>", &log).ok());
  EXPECT_FALSE(ParseInto("<a attr=>", &log).ok());
  EXPECT_FALSE(ParseInto("<a attr=\"x>", &log).ok());
  EXPECT_FALSE(ParseInto("<>", &log).ok());
}

TEST(SaxParserTest, ContentAfterRootRejected) {
  EventLog log;
  EXPECT_FALSE(ParseInto("<a/>junk", &log).ok());
  EXPECT_FALSE(ParseInto("<a/><b/>", &log).ok());
}

TEST(SaxParserTest, UnknownEntityRejected) {
  EventLog log;
  EXPECT_FALSE(ParseInto("<a>&nope;</a>", &log).ok());
  EXPECT_FALSE(ParseInto("<a>&#xZZ;</a>", &log).ok());
}

TEST(DecodeEntitiesTest, Direct) {
  std::string out;
  ASSERT_TRUE(DecodeEntities("a&amp;b", &out).ok());
  EXPECT_EQ(out, "a&b");
  EXPECT_FALSE(DecodeEntities("a&amp", &out).ok());
}

TEST(DomTest, PositionsMatchPaperCounting) {
  // <a><b>t</b><c/></a>:
  // a.start=1, b.start=2, text=3, b.end=4, c.start=5, c.end=6, a.end=7.
  Result<DomTree> tree = ParseDom("<a><b>t</b><c/></a>");
  ASSERT_TRUE(tree.ok());
  const DomNode* a = tree->root();
  ASSERT_EQ(a->children.size(), 2u);
  EXPECT_EQ(a->start, 1u);
  EXPECT_EQ(a->end, 7u);
  EXPECT_EQ(a->level, 1);
  const DomNode* b = a->children[0].get();
  EXPECT_EQ(b->start, 2u);
  EXPECT_EQ(b->end, 4u);
  EXPECT_EQ(b->level, 2);
  EXPECT_EQ(b->text, "t");
  const DomNode* c = a->children[1].get();
  EXPECT_EQ(c->start, 5u);
  EXPECT_EQ(c->end, 6u);
}

TEST(DomTest, IntervalNestingInvariant) {
  Result<DomTree> tree =
      ParseDom("<a><b><c>x</c></b><d>y<e/>z</d></a>");
  ASSERT_TRUE(tree.ok());
  tree->ForEach([&](const DomNode* n) {
    ASSERT_LT(n->start, n->end);
    for (const auto& child : n->children) {
      ASSERT_LT(n->start, child->start);
      ASSERT_GT(n->end, child->end);
      ASSERT_EQ(child->level, n->level + 1);
    }
  });
}

TEST(DomTest, AttributesBecomeNodes) {
  Result<DomTree> tree = ParseDom("<a x=\"1\"><b y=\"2\"/></a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->node_count(), 4u);  // a, @x, b, @y
  const DomNode* ax = tree->root()->children[0].get();
  EXPECT_TRUE(ax->is_attribute());
  EXPECT_EQ(ax->tag, "@x");
  EXPECT_EQ(ax->text, "1");
  EXPECT_EQ(ax->level, 2);
}

TEST(DomTest, SourcePath) {
  Result<DomTree> tree = ParseDom("<a><b><c/></b></a>");
  ASSERT_TRUE(tree.ok());
  const DomNode* c =
      tree->root()->children[0]->children[0].get();
  EXPECT_EQ(DomTree::SourcePath(c), "/a/b/c");
}

TEST(DomTest, MaxDepthAndCount) {
  Result<DomTree> tree = ParseDom("<a><b><c><d/></c></b><e/></a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->max_depth(), 4);
  EXPECT_EQ(tree->node_count(), 5u);
}

TEST(WriterTest, EscapeFunctions) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeAttribute("a\"b&c"), "a&quot;b&amp;c");
}

TEST(WriterTest, RoundTripThroughParser) {
  const std::string xml =
      "<a x=\"1&amp;2\"><b>hello &amp; bye</b><c><d>x</d></c></a>";
  Result<DomTree> tree = ParseDom(xml);
  ASSERT_TRUE(tree.ok());
  std::string serialized = WriteXml(*tree);
  Result<DomTree> again = ParseDom(serialized);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(WriteXml(*again), serialized);
  EXPECT_EQ(again->node_count(), tree->node_count());
  EXPECT_EQ(again->max_depth(), tree->max_depth());
}

TEST(WriterTest, SinkProducesParsableText) {
  XmlTextSink sink;
  sink.OnStartElement("a", {{"k", "v<>"}});
  sink.OnText("x & y");
  sink.OnEndElement("a");
  Result<DomTree> tree = ParseDom(sink.text());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->root()->text, "x & y");
  EXPECT_EQ(tree->root()->children[0]->text, "v<>");
}

}  // namespace
}  // namespace blas

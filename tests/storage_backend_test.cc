// Pluggable storage backends: the PageSource seam must be invisible to
// queries. Every test here opens the same BLASIDX2 snapshot through the
// pread and mmap backends and checks byte-identical answers against the
// in-memory original (tiny and unlimited budgets), PageRef validity
// across DropCache on every backend, mmap mapping-epoch reclamation
// ordering (munmap + deferred unlink only after the last ref drops, even
// when the ref outlives the BufferPool and the owning system), segment
// reclamation under LiveCollection churn, identical corrupt-file
// preflight, and frame/mapped-bytes budget bounds.
//
// Runs under the TSan and cache-pressure CI jobs (BLAS_PAGED_FRAMES).

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blas/collection.h"
#include "gen/generator.h"
#include "ingest/live_collection.h"
#include "storage/page_source.h"
#include "storage/persist.h"
#include "tests/test_util.h"

namespace blas {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Frames per shard for pressure tests; the CI cache-pressure job
/// overrides the default via BLAS_PAGED_FRAMES.
size_t PressureFrames(size_t def) {
  const char* env = std::getenv("BLAS_PAGED_FRAMES");
  if (env == nullptr) return def;
  int v = std::atoi(env);
  return v < 2 ? 2 : static_cast<size_t>(v);
}

StorageOptions TinyBudget(StorageBackend backend, size_t frames = 4) {
  StorageOptions storage;
  storage.frames_per_shard = PressureFrames(frames);
  storage.shards = 1;
  storage.backend = backend;
  return storage;
}

StorageOptions AmpleBudget(StorageBackend backend) {
  StorageOptions storage;
  storage.backend = backend;
  return storage;
}

BlasSystem BuildAuction(int scale = 1) {
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [scale](SaxHandler* h) {
        GenOptions gen;
        gen.scale = scale;
        GenerateAuction(gen, h);
      },
      BlasOptions{});
  EXPECT_TRUE(sys.ok()) << sys.status();
  if (!sys.ok()) std::abort();
  return std::move(sys).value();
}

const char* kAuctionQueries[] = {
    "//item/name",
    "/site/regions/asia/item[shipping]/description",
    "/site//keyword",
    "//parlist/listitem",
    "/site/people/person/name",
    "//nosuchtag",
};

constexpr StorageBackend kPagedBackends[] = {StorageBackend::kPread,
                                             StorageBackend::kMmap};

// ------------------------------------------ cross-backend equivalence ---

TEST(StorageBackendTest, AllBackendsAnswerByteIdentically) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("backend_equiv.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  for (StorageBackend backend : kPagedBackends) {
    for (const StorageOptions& storage :
         {TinyBudget(backend, 4), AmpleBudget(backend)}) {
      Result<BlasSystem> paged = BlasSystem::OpenPaged(path, storage);
      ASSERT_TRUE(paged.ok()) << paged.status();
      // The fallback path (mmap unavailable) would silently serve pread;
      // on this platform the requested backend must actually be serving.
      EXPECT_EQ(paged->store().pool().backend(), backend)
          << StorageBackendName(backend);
      for (const char* q : kAuctionQueries) {
        for (Translator t : {Translator::kDLabel, Translator::kSplit,
                             Translator::kPushUp, Translator::kUnfold}) {
          for (Engine e : {Engine::kRelational, Engine::kTwig}) {
            Result<QueryResult> a = original.Execute(q, t, e);
            Result<QueryResult> b = paged->Execute(q, t, e);
            if (!a.ok()) {
              EXPECT_EQ(a.status().code(), b.status().code()) << q;
              continue;
            }
            ASSERT_TRUE(b.ok()) << q << " " << b.status();
            EXPECT_EQ(a->starts, b->starts)
                << q << " [" << TranslatorName(t) << "/" << EngineName(e)
                << "] backend=" << StorageBackendName(backend)
                << " frames=" << storage.frames_per_shard;
          }
        }
      }
    }
  }
}

TEST(StorageBackendTest, ProjectedContentIdenticalAcrossBackends) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("backend_projection.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  QueryOptions options;
  options.projection = Projection::kValue;
  Result<QueryResult> expected =
      original.Execute("//item/description", options);
  ASSERT_TRUE(expected.ok()) << expected.status();

  for (StorageBackend backend : kPagedBackends) {
    Result<BlasSystem> paged =
        BlasSystem::OpenPaged(path, TinyBudget(backend, 4));
    ASSERT_TRUE(paged.ok()) << paged.status();
    Result<QueryResult> got = paged->Execute("//item/description", options);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(expected->starts, got->starts);
    ASSERT_EQ(expected->matches.size(), got->matches.size());
    for (size_t i = 0; i < expected->matches.size(); ++i) {
      EXPECT_EQ(expected->matches[i].content, got->matches[i].content)
          << StorageBackendName(backend) << " match " << i;
    }
  }
}

// ------------------------------------------------- PageRef lifetimes ---

TEST(StorageBackendTest, PageRefSurvivesDropCacheOnEveryBackend) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("backend_dropcache.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  for (StorageBackend backend : kPagedBackends) {
    Result<BlasSystem> paged =
        BlasSystem::OpenPaged(path, TinyBudget(backend, 4));
    ASSERT_TRUE(paged.ok()) << paged.status();
    const BufferPool& pool = paged->store().pool();

    PageRef ref = pool.Fetch(0);
    ASSERT_TRUE(ref) << StorageBackendName(backend);
    Page copy = *ref;
    // blas-analyze: allow(pin-escape) -- pin-survives-DropCache is the
    paged->store().DropCache();  // very contract under test here
    // pread: the pinned frame was skipped. mmap: the page was madvised
    // away but refaults from the immutable file — same bytes either way.
    EXPECT_EQ(0, std::memcmp(copy.bytes.data(), ref->bytes.data(), kPageSize))
        << StorageBackendName(backend);
  }
}

TEST(StorageBackendTest, MmapRefOutlivesPoolAndMappingReclaimsAfterLastRef) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("backend_epoch.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  const size_t epochs_before = MappedEpochsLive();
  const size_t bytes_before = MappedBytesLive();

  PageRef ref;
  Page copy;
  {
    Result<BlasSystem> paged =
        BlasSystem::OpenPaged(path, AmpleBudget(StorageBackend::kMmap));
    ASSERT_TRUE(paged.ok()) << paged.status();
    ASSERT_EQ(paged->store().pool().backend(), StorageBackend::kMmap);
    const size_t pool_pages = paged->store().pool().page_count();
    EXPECT_EQ(MappedEpochsLive(), epochs_before + 1);
    // The whole pool prefix (header page + pool pages) is mapped once.
    EXPECT_GE(MappedBytesLive() - bytes_before, pool_pages * kPageSize);

    ref = paged->store().pool().Fetch(0);
    ASSERT_TRUE(ref);
    copy = *ref;
  }
  // The system (and its BufferPool) are gone; the ref keeps the mapping
  // epoch — and the bytes — alive.
  EXPECT_EQ(MappedEpochsLive(), epochs_before + 1);
  EXPECT_EQ(0, std::memcmp(copy.bytes.data(), ref->bytes.data(), kPageSize));

  ref = PageRef();  // last ref: munmap now
  EXPECT_EQ(MappedEpochsLive(), epochs_before);
  EXPECT_EQ(MappedBytesLive(), bytes_before);
}

// ------------------------------------- live-collection churn (mmap) ---

std::string ShardXml(const std::string& tag, int items, int salt = 0) {
  std::ostringstream xml;
  xml << "<shard>";
  for (int i = 0; i < items; ++i) {
    xml << "<item><name>" << tag << "-" << (i + salt) << "</name><price>"
        << (10 * (i + 1) + salt) << "</price></item>";
  }
  xml << "</shard>";
  return xml.str();
}

std::string UniqueDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::string dir = TempPath("backend_" + tag + "_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(counter.fetch_add(1)));
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveTree(const std::string& dir) {
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

TEST(StorageBackendTest, MmapSegmentUnlinkedOnlyAfterLastRefUnderChurn) {
  std::string dir = UniqueDir("churn_ref");
  LiveOptions options;
  options.storage.backend = StorageBackend::kMmap;
  Result<std::unique_ptr<LiveCollection>> lc =
      LiveCollection::Open(dir, options);
  ASSERT_TRUE(lc.ok()) << lc.status();
  ASSERT_TRUE((*lc)->AddDocument("a", ShardXml("a", 40)).ok());

  // Pin generation 1: the snapshot pins the system, and a raw PageRef
  // pins the mapping epoch beyond even the system's lifetime.
  std::shared_ptr<const CollectionState> snap = (*lc)->Snapshot();
  std::shared_ptr<const BlasSystem> sys = snap->collection.FindShared("a");
  ASSERT_NE(sys, nullptr);
  ASSERT_EQ(sys->store().pool().backend(), StorageBackend::kMmap);
  std::string seg = dir + "/" + snap->files.at("a");
  ASSERT_TRUE(FileExists(seg));

  PageRef ref = sys->store().pool().Fetch(0);
  ASSERT_TRUE(ref);
  Page copy = *ref;

  // Replace the document: generation 1 becomes obsolete, but its file
  // must survive every live pin.
  ASSERT_TRUE((*lc)->ReplaceDocument("a", ShardXml("a", 40, 7)).ok());
  EXPECT_TRUE(FileExists(seg));

  // Drop the system pins. The tombstone deleter runs, but the unlink is
  // deferred to the mapping epoch because the PageRef still holds it.
  sys.reset();
  snap.reset();
  EXPECT_TRUE(FileExists(seg));
  EXPECT_EQ(0, std::memcmp(copy.bytes.data(), ref->bytes.data(), kPageSize));

  ref = PageRef();  // last pin: munmap, then unlink
  EXPECT_FALSE(FileExists(seg));
  EXPECT_GE((*lc)->stats().files_reclaimed, 1u);

  lc->reset();
  RemoveTree(dir);
}

TEST(StorageBackendTest, MmapChurnWithConcurrentReadersStaysConsistent) {
  std::string dir = UniqueDir("churn_mt");
  LiveOptions options;
  options.storage.backend = StorageBackend::kMmap;
  Result<std::unique_ptr<LiveCollection>> opened =
      LiveCollection::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  LiveCollection* lc = opened->get();
  ASSERT_TRUE(lc->AddDocument("a", ShardXml("a", 30)).ok());
  ASSERT_TRUE(lc->AddDocument("b", ShardXml("b", 30)).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<BlasCollection::CollectionResult> r =
            lc->Execute("//item/name");
        ASSERT_TRUE(r.ok()) << r.status();
        // Every published epoch holds both documents with 30 items each.
        size_t starts = 0;
        for (const auto& doc : r->docs) starts += doc.starts.size();
        EXPECT_EQ(starts, 60u);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < 12; ++round) {
    ASSERT_TRUE(
        lc->ReplaceDocument(round % 2 ? "a" : "b",
                            ShardXml(round % 2 ? "a" : "b", 30, round + 1))
            .ok());
  }
  while (reads.load(std::memory_order_relaxed) < 8) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // Every replaced generation's file is reclaimed once its pins drop.
  EXPECT_GE(lc->stats().files_reclaimed, 1u);
  opened->reset();
  EXPECT_EQ(MappedEpochsLive(), 0u);
  RemoveTree(dir);
}

// ----------------------------------------------- corrupt-file parity ---

TEST(StorageBackendTest, TruncatedFilePreflightIdenticalAcrossBackends) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("backend_truncated.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  // Cut the file behind the (still valid) header: every backend must
  // fail the size preflight with the same status — mmap in particular
  // must refuse to map rather than SIGBUS on the unbacked tail.
  struct stat st;
  ASSERT_EQ(0, ::stat(path.c_str(), &st));
  ASSERT_EQ(0, ::truncate(path.c_str(),
                          static_cast<off_t>(st.st_size) -
                              static_cast<off_t>(2 * kPageSize)));

  std::optional<StatusCode> first;
  for (StorageBackend backend : kPagedBackends) {
    Result<BlasSystem> paged =
        BlasSystem::OpenPaged(path, AmpleBudget(backend));
    ASSERT_FALSE(paged.ok()) << StorageBackendName(backend);
    if (!first.has_value()) {
      first = paged.status().code();
      EXPECT_EQ(*first, StatusCode::kCorruption);
    } else {
      EXPECT_EQ(paged.status().code(), *first)
          << StorageBackendName(backend);
    }
  }
  EXPECT_EQ(MappedEpochsLive(), 0u);
}

TEST(StorageBackendTest, PagedFilePreflightRejectsShortFileBeforeMapping) {
  std::string path = TempPath("backend_short.bin");
  {
    std::string cmd = "head -c 4096 /dev/zero > '" + path + "'";
    ASSERT_EQ(0, std::system(cmd.c_str()));
  }
  // The file cannot cover base_offset + 8 pages: Open must fail before
  // any backend (pread or mmap) touches it.
  Result<PagedFile> file = PagedFile::Open(path, kPageSize, 8);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
}

// ------------------------------------------------------ budget bounds ---

TEST(StorageBackendTest, MmapResidencyHonorsFrameBudget) {
  BlasSystem original = BuildAuction();
  std::string path = TempPath("backend_budget.idx2");
  ASSERT_TRUE(original.SavePagedIndex(path).ok());

  const size_t frames = PressureFrames(4);
  Result<BlasSystem> paged =
      BlasSystem::OpenPaged(path, TinyBudget(StorageBackend::kMmap, 4));
  ASSERT_TRUE(paged.ok()) << paged.status();
  const BufferPool& pool = paged->store().pool();
  ASSERT_GT(pool.page_count(), frames) << "corpus too small for pressure";

  for (const char* q : kAuctionQueries) {
    Result<QueryResult> r = paged->Execute(q, QueryOptions{});
    ASSERT_TRUE(r.ok()) << q << " " << r.status();
  }
  // Mapped-resident pages — not mapped bytes — are the budgeted unit:
  // the whole segment stays mapped while residency is bounded by the
  // frame allowance, exactly like pread frames.
  EXPECT_LE(pool.frames_in_use(), frames);
  EXPECT_LE(pool.peak_frames(), frames);
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GE(MappedBytesLive(), pool.page_count() * kPageSize);
}

TEST(StorageBackendTest, SharedBudgetSettlesToZeroAfterMmapTeardown) {
  auto budget = std::make_shared<FrameBudget>(24 * kPageSize);
  std::string path = TempPath("backend_shared.idx2");
  {
    BlasSystem original = BuildAuction();
    ASSERT_TRUE(original.SavePagedIndex(path).ok());
  }
  {
    StorageOptions storage;
    storage.backend = StorageBackend::kMmap;
    storage.shards = 1;
    storage.shared_budget = budget;
    std::vector<BlasSystem> pools;
    for (int i = 0; i < 3; ++i) {
      Result<BlasSystem> paged = BlasSystem::OpenPaged(path, storage);
      ASSERT_TRUE(paged.ok()) << paged.status();
      pools.push_back(std::move(paged).value());
    }
    for (BlasSystem& sys : pools) {
      Result<QueryResult> r = sys.Execute("//item/name", QueryOptions{});
      ASSERT_TRUE(r.ok()) << r.status();
    }
    EXPECT_GT(budget->used(), 0u);
  }
  // Every mapped-resident charge is returned when its pool dies.
  EXPECT_EQ(budget->used(), 0u);
  EXPECT_GE(budget->peak_used(), kPageSize);
  EXPECT_EQ(MappedEpochsLive(), 0u);
}

}  // namespace
}  // namespace blas

// Executable versions of the paper's analytical claims, checked over all
// three corpora and the full figure-10 workload.

#include <gtest/gtest.h>

#include "blas/blas.h"
#include "gen/generator.h"
#include "gen/queries.h"
#include "xpath/parser.h"

namespace blas {
namespace {

struct Corpus {
  char key;
  void (*gen)(const GenOptions&, SaxHandler*);
};

class PaperClaims : public ::testing::TestWithParam<Corpus> {
 protected:
  void SetUp() override {
    Result<BlasSystem> sys = BlasSystem::FromEvents(
        [&](SaxHandler* h) { GetParam().gen(GenOptions{}, h); });
    ASSERT_TRUE(sys.ok());
    sys_ = std::make_unique<BlasSystem>(std::move(sys).value());
  }
  std::unique_ptr<BlasSystem> sys_;
};

/// Section 4.2 claim 1: D-labeling uses l-1 joins; Split/Push-up at most
/// b+d; Unfold removes the descendant-axis joins entirely.
TEST_P(PaperClaims, JoinCounts) {
  for (const BenchQuery& q : Figure10Queries(GetParam().key)) {
    Result<ExecPlan> dlabel = sys_->Plan(q.xpath, Translator::kDLabel);
    ASSERT_TRUE(dlabel.ok()) << q.name;
    int l = dlabel->AnalyzeShape().tag_scans;
    EXPECT_EQ(dlabel->AnalyzeShape().d_joins, l - 1) << q.name;
    for (Translator t :
         {Translator::kSplit, Translator::kPushUp, Translator::kUnfold}) {
      Result<ExecPlan> plan = sys_->Plan(q.xpath, t);
      ASSERT_TRUE(plan.ok()) << q.name;
      EXPECT_LE(plan->AnalyzeShape().d_joins, l - 1) << q.name;
    }
    // Suffix path queries need no joins at all under BLAS.
    Result<Query> parsed = ParseXPath(q.xpath);
    ASSERT_TRUE(parsed.ok());
    if (parsed->IsSuffixPathQuery()) {
      Result<ExecPlan> split = sys_->Plan(q.xpath, Translator::kSplit);
      EXPECT_EQ(split->AnalyzeShape().d_joins, 0) << q.name;
    }
  }
}

/// Section 4.2 claim 2: BLAS visits no more elements than D-labeling.
TEST_P(PaperClaims, ElementAccessBound) {
  for (const BenchQuery& q : Figure10Queries(GetParam().key)) {
    sys_->ResetCounters();
    Result<QueryResult> base =
        sys_->Execute(q.xpath, Translator::kDLabel, Engine::kRelational);
    ASSERT_TRUE(base.ok()) << q.name;
    for (Translator t :
         {Translator::kSplit, Translator::kPushUp, Translator::kUnfold}) {
      sys_->ResetCounters();
      Result<QueryResult> r = sys_->Execute(q.xpath, t, Engine::kRelational);
      ASSERT_TRUE(r.ok()) << q.name;
      EXPECT_LE(r->stats.elements, base->stats.elements)
          << q.name << " " << TranslatorName(t);
      EXPECT_EQ(r->starts, base->starts) << q.name;
    }
  }
}

/// Unfold's subqueries are all equality selections (section 4.1.3): no
/// range selections remain after unfolding.
TEST_P(PaperClaims, UnfoldUsesEqualitySelectionsOnly) {
  for (const BenchQuery& q : Figure10Queries(GetParam().key)) {
    Result<ExecPlan> plan = sys_->Plan(q.xpath, Translator::kUnfold);
    ASSERT_TRUE(plan.ok()) << q.name;
    EXPECT_EQ(plan->AnalyzeShape().range_selections, 0) << q.name;
  }
}

/// Proposition 3.2 on real data: evaluating a suffix path query is a pure
/// selection whose result size equals the visited element count.
TEST_P(PaperClaims, SuffixPathSelectionsVisitOnlyMatches) {
  for (const BenchQuery& q : Figure10Queries(GetParam().key)) {
    Result<Query> parsed = ParseXPath(q.xpath);
    ASSERT_TRUE(parsed.ok());
    if (!parsed->IsSuffixPathQuery()) continue;
    sys_->ResetCounters();
    Result<QueryResult> r =
        sys_->Execute(q.xpath, Translator::kSplit, Engine::kRelational);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.elements, r->starts.size()) << q.name;
  }
}

/// Section 7: the bi-labeled representation stays comparable in size to
/// the document — each node costs one fixed-width record.
TEST_P(PaperClaims, StorageStaysProportionalToNodes) {
  BlasSystem::DocStats s = sys_->doc_stats();
  // 4 clustered trees (SP, SD, value, doc-order) * 48-byte records +
  // internal nodes: < 200 bytes/node.
  EXPECT_LT(s.pages * kPageSize, s.nodes * 200) << "storage blow-up";
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, PaperClaims,
    ::testing::Values(Corpus{'S', GenerateShakespeare},
                      Corpus{'P', GenerateProtein},
                      Corpus{'A', GenerateAuction}),
    [](const auto& info) { return std::string(1, info.param.key); });

}  // namespace
}  // namespace blas

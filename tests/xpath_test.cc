#include <gtest/gtest.h>

#include "gen/queries.h"
#include "xml/dom.h"
#include "xpath/ast.h"
#include "xpath/naive_eval.h"
#include "xpath/parser.h"

namespace blas {
namespace {

Query MustParse(const std::string& text) {
  Result<Query> q = ParseXPath(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  if (!q.ok()) std::abort();
  return std::move(q).value();
}

TEST(XPathParserTest, SimplePath) {
  Query q = MustParse("/a/b/c");
  ASSERT_TRUE(q.root != nullptr);
  EXPECT_EQ(q.root->tag, "a");
  EXPECT_EQ(q.root->axis, Axis::kChild);
  const QueryNode* b = q.root->children[0].get();
  EXPECT_EQ(b->tag, "b");
  const QueryNode* c = b->children[0].get();
  EXPECT_EQ(c->tag, "c");
  EXPECT_TRUE(c->is_return);
  EXPECT_TRUE(q.IsPathQuery());
  EXPECT_TRUE(q.IsSuffixPathQuery());
}

TEST(XPathParserTest, DescendantAxes) {
  Query q = MustParse("//a//b/c");
  EXPECT_EQ(q.root->axis, Axis::kDescendant);
  EXPECT_EQ(q.root->children[0]->axis, Axis::kDescendant);
  EXPECT_EQ(q.root->children[0]->children[0]->axis, Axis::kChild);
  EXPECT_TRUE(q.IsPathQuery());
  EXPECT_FALSE(q.IsSuffixPathQuery());  // internal //
}

TEST(XPathParserTest, SuffixPathClassification) {
  EXPECT_TRUE(MustParse("//a/b/c").IsSuffixPathQuery());
  EXPECT_TRUE(MustParse("/a").IsSuffixPathQuery());
  EXPECT_FALSE(MustParse("/a[b]/c").IsPathQuery());
  EXPECT_FALSE(MustParse("/a//b").IsSuffixPathQuery());
}

TEST(XPathParserTest, Predicates) {
  Query q = MustParse("/a[b/c][d]/e");
  ASSERT_EQ(q.root->children.size(), 3u);
  EXPECT_EQ(q.root->children[0]->tag, "b");
  EXPECT_EQ(q.root->children[0]->children[0]->tag, "c");
  EXPECT_EQ(q.root->children[1]->tag, "d");
  EXPECT_EQ(q.root->children[2]->tag, "e");
  EXPECT_TRUE(q.root->children[2]->is_return);
  EXPECT_EQ(q.return_node()->tag, "e");
}

TEST(XPathParserTest, PredicateWithAnd) {
  Query q = MustParse("/a[b and c/d]/e");
  ASSERT_EQ(q.root->children.size(), 3u);
  EXPECT_EQ(q.root->children[0]->tag, "b");
  EXPECT_EQ(q.root->children[1]->tag, "c");
}

TEST(XPathParserTest, ValuePredicates) {
  Query q = MustParse("/a[b = \"x y\"]/c='z'");
  EXPECT_EQ(q.root->children[0]->value,
            std::optional<ValuePred>(ValuePred{ValueOp::kEq, "x y"}));
  const QueryNode* c = q.return_node();
  EXPECT_EQ(c->tag, "c");
  EXPECT_EQ(c->value,
            std::optional<ValuePred>(ValuePred{ValueOp::kEq, "z"}));
}

TEST(XPathParserTest, DescendantInsidePredicate) {
  Query q = MustParse("/a[//b = \"v\" and c]/d");
  EXPECT_EQ(q.root->children[0]->axis, Axis::kDescendant);
  EXPECT_EQ(q.root->children[1]->axis, Axis::kChild);
}

TEST(XPathParserTest, AttributesAndWildcard) {
  Query q = MustParse("//item[@featured=\"yes\"]/*");
  EXPECT_EQ(q.root->children[0]->tag, "@featured");
  EXPECT_EQ(q.return_node()->tag, kWildcard);
}

TEST(XPathParserTest, PaperQueriesParse) {
  MustParse(PaperExampleQuery());
  for (char ds : {'S', 'P', 'A'}) {
    for (const BenchQuery& bq : Figure10Queries(ds)) MustParse(bq.xpath);
  }
  for (const BenchQuery& bq : XMarkBenchmarkQueries()) MustParse(bq.xpath);
}

TEST(XPathParserTest, RejectsMalformed) {
  for (const char* bad :
       {"", "a/b", "/a[", "/a]", "/a[b", "/a[]", "/", "/a/", "/a[b=]",
        "/a[b='x]", "/a b", "/a[/b]", "/a//", "/a[b]extra"}) {
    EXPECT_FALSE(ParseXPath(bad).ok()) << bad;
  }
}

TEST(XPathParserTest, ToStringRoundTrip) {
  for (const char* text :
       {"/a/b/c", "//a//b", "/a[b]/c", "//a[b/c][d = \"x\"]/e",
        "/a[//b]/c = \"z\"", "//item[@id]/name"}) {
    Query q1 = MustParse(text);
    std::string rendered = q1.ToString();
    Query q2 = MustParse(rendered);
    EXPECT_EQ(q2.ToString(), rendered) << text;
  }
}

TEST(NaiveEvalTest, ChildVsDescendant) {
  Result<DomTree> tree = ParseDom("<a><b><c/></b><c/></a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(NaiveEvalStarts(MustParse("/a/c"), *tree).size(), 1u);
  EXPECT_EQ(NaiveEvalStarts(MustParse("/a//c"), *tree).size(), 2u);
  EXPECT_EQ(NaiveEvalStarts(MustParse("//c"), *tree).size(), 2u);
}

TEST(NaiveEvalTest, RootAxisAnchors) {
  Result<DomTree> tree = ParseDom("<a><a><b/></a></a>");
  ASSERT_TRUE(tree.ok());
  // "/a" matches only the document root; "//a" both.
  EXPECT_EQ(NaiveEvalStarts(MustParse("/a"), *tree).size(), 1u);
  EXPECT_EQ(NaiveEvalStarts(MustParse("//a"), *tree).size(), 2u);
  EXPECT_EQ(NaiveEvalStarts(MustParse("/a/a/b"), *tree).size(), 1u);
  EXPECT_EQ(NaiveEvalStarts(MustParse("/b"), *tree).size(), 0u);
}

TEST(NaiveEvalTest, PredicatesAreExistential) {
  Result<DomTree> tree = ParseDom(
      "<lib><book><author>x</author><year>2001</year></book>"
      "<book><year>1999</year></book></lib>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(NaiveEvalStarts(MustParse("/lib/book[author]/year"), *tree)
                .size(),
            1u);
  EXPECT_EQ(
      NaiveEvalStarts(MustParse("/lib/book[year=\"1999\"]"), *tree).size(),
      1u);
  EXPECT_EQ(NaiveEvalStarts(MustParse("/lib/book[author and year]"), *tree)
                .size(),
            1u);
}

TEST(NaiveEvalTest, ValueMatchingIsExact) {
  Result<DomTree> tree = ParseDom("<a><b>x</b><b>xy</b></a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(NaiveEvalStarts(MustParse("//b=\"x\""), *tree).size(), 1u);
  EXPECT_EQ(NaiveEvalStarts(MustParse("//b=\"xy\""), *tree).size(), 1u);
  EXPECT_EQ(NaiveEvalStarts(MustParse("//b=\"\""), *tree).size(), 0u);
}

TEST(NaiveEvalTest, ResultsSortedAndDeduped) {
  Result<DomTree> tree =
      ParseDom("<a><b><c/><c/></b><b><c/></b></a>");
  ASSERT_TRUE(tree.ok());
  // //b//c and //b/c overlap on bindings; every result listed once,
  // in document order.
  std::vector<uint32_t> starts = NaiveEvalStarts(MustParse("//b/c"), *tree);
  EXPECT_EQ(starts.size(), 3u);
  EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
}

TEST(NaiveEvalTest, WildcardSkipsAttributes) {
  Result<DomTree> tree = ParseDom("<a k=\"v\"><b/></a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(NaiveEvalStarts(MustParse("/a/*"), *tree).size(), 1u);  // b only
  EXPECT_EQ(NaiveEvalStarts(MustParse("/a/@k"), *tree).size(), 1u);
}

}  // namespace
}  // namespace blas

#include <sstream>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/u128.h"

namespace blas {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("x");
  EXPECT_EQ(os.str(), "NotFound: x");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kOutOfRange,
        StatusCode::kCapacityExceeded, StatusCode::kCorruption,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(U128Test, ToStringSmall) {
  EXPECT_EQ(U128ToString(0), "0");
  EXPECT_EQ(U128ToString(1), "1");
  EXPECT_EQ(U128ToString(123456789), "123456789");
}

TEST(U128Test, ToStringBeyond64Bits) {
  u128 v = static_cast<u128>(~0ULL);  // 2^64 - 1
  EXPECT_EQ(U128ToString(v), "18446744073709551615");
  EXPECT_EQ(U128ToString(v + 1), "18446744073709551616");
  u128 max = ~static_cast<u128>(0);
  EXPECT_EQ(U128ToString(max), "340282366920938463463374607431768211455");
}

TEST(U128Test, ParseRoundTrip) {
  for (const char* text :
       {"0", "7", "18446744073709551616", "99999999999999999999999999"}) {
    u128 v = 0;
    ASSERT_TRUE(ParseU128(text, &v)) << text;
    EXPECT_EQ(U128ToString(v), text);
  }
}

TEST(U128Test, ParseRejectsGarbage) {
  u128 v;
  EXPECT_FALSE(ParseU128("", &v));
  EXPECT_FALSE(ParseU128("12a", &v));
  EXPECT_FALSE(ParseU128("-3", &v));
  // One more than the 128-bit max overflows.
  EXPECT_FALSE(ParseU128("340282366920938463463374607431768211456", &v));
}

TEST(U128Test, BitWidth) {
  EXPECT_EQ(U128BitWidth(0), 0);
  EXPECT_EQ(U128BitWidth(1), 1);
  EXPECT_EQ(U128BitWidth(255), 8);
  EXPECT_EQ(U128BitWidth(static_cast<u128>(1) << 100), 101);
}

TEST(U128Test, PowDetectsOverflow) {
  u128 out;
  EXPECT_TRUE(U128Pow(78, 20, &out));
  EXPECT_FALSE(U128Pow(78, 60, &out));
  EXPECT_TRUE(U128Pow(2, 127, &out));
  EXPECT_FALSE(U128Pow(2, 128, &out));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BetweenIsInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Between(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a/b/c", '/'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("/a/", '/'), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, "/"), "a/b");
  EXPECT_EQ(Join({}, "/"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\n\t"), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

}  // namespace
}  // namespace blas

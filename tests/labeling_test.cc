#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "labeling/labeler.h"
#include "labeling/plabel.h"
#include "labeling/tag_registry.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"

namespace blas {
namespace {

TEST(TagRegistryTest, InternAssignsSequentialIds) {
  TagRegistry reg;
  EXPECT_EQ(reg.Intern("a"), 1u);
  EXPECT_EQ(reg.Intern("b"), 2u);
  EXPECT_EQ(reg.Intern("a"), 1u);  // idempotent
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.Name(1), "a");
  EXPECT_EQ(reg.Name(kSlashTag), "/");
  EXPECT_EQ(reg.Find("b"), std::optional<TagId>(2));
  EXPECT_EQ(reg.Find("zzz"), std::nullopt);
}

TEST(DLabelTest, PaperProperties) {
  DLabel anc{1, 10, 1};
  DLabel child{2, 5, 2};
  DLabel grand{3, 4, 3};
  DLabel sibling{6, 9, 2};
  EXPECT_TRUE(anc.Contains(child));
  EXPECT_TRUE(anc.Contains(grand));
  EXPECT_TRUE(anc.IsParentOf(child));
  EXPECT_FALSE(anc.IsParentOf(grand));
  EXPECT_TRUE(child.Contains(grand));
  EXPECT_TRUE(child.DisjointWith(sibling));
  EXPECT_FALSE(anc.DisjointWith(child));
}

class PLabelCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* t : {"a", "b", "c", "d"}) reg_.Intern(t);
    reg_.Freeze();
    Result<PLabelCodec> codec = PLabelCodec::Create(reg_.size(), 6);
    ASSERT_TRUE(codec.ok());
    codec_ = std::make_unique<PLabelCodec>(std::move(codec).value());
  }

  std::vector<TagId> Tags(const std::vector<std::string>& names) {
    std::vector<TagId> ids;
    for (const auto& n : names) ids.push_back(*reg_.Find(n));
    return ids;
  }

  TagRegistry reg_;
  std::unique_ptr<PLabelCodec> codec_;
};

TEST_F(PLabelCodecTest, BasicsAndCapacity) {
  EXPECT_EQ(codec_->base(), static_cast<u128>(5));
  EXPECT_EQ(codec_->height(), 7);
  EXPECT_EQ(codec_->max_depth(), 6);
  u128 expected_domain = 1;
  for (int i = 0; i < 7; ++i) expected_domain *= 5;
  EXPECT_EQ(codec_->domain(), expected_domain);
}

TEST_F(PLabelCodecTest, CreateRejectsOverflow) {
  // 78 tags, depth 25 -> 79^26 >> 2^128.
  EXPECT_EQ(PLabelCodec::Create(78, 25).status().code(),
            StatusCode::kCapacityExceeded);
  EXPECT_TRUE(PLabelCodec::Create(78, 18).ok());
  EXPECT_FALSE(PLabelCodec::Create(0, 3).ok());
}

TEST_F(PLabelCodecTest, ValidationProperty) {
  // Definition 3.2: p1 <= p2 for every suffix path.
  for (bool absolute : {false, true}) {
    PLabelRange r = codec_->SuffixInterval(Tags({"a", "b"}), absolute);
    EXPECT_LE(r.lo, r.hi);
  }
}

TEST_F(PLabelCodecTest, ContainmentProperty) {
  // P contained in Q  <=>  interval(P) inside interval(Q) (definition 3.2).
  PLabelRange b = codec_->SuffixInterval(Tags({"b"}), false);        // //b
  PLabelRange ab = codec_->SuffixInterval(Tags({"a", "b"}), false);  // //a/b
  PLabelRange cab =
      codec_->SuffixInterval(Tags({"c", "a", "b"}), false);  // //c/a/b
  PLabelRange abs_ab =
      codec_->SuffixInterval(Tags({"a", "b"}), true);  // /a/b
  EXPECT_TRUE(b.ContainsRange(ab));
  EXPECT_TRUE(ab.ContainsRange(cab));
  EXPECT_TRUE(ab.ContainsRange(abs_ab));
  EXPECT_FALSE(ab.ContainsRange(b));
  EXPECT_FALSE(abs_ab.ContainsRange(cab));  // /a/b vs //c/a/b disjoint
}

TEST_F(PLabelCodecTest, NonIntersectionProperty) {
  // Non-contained suffix paths never overlap (definition 3.2).
  PLabelRange ab = codec_->SuffixInterval(Tags({"a", "b"}), false);
  PLabelRange cb = codec_->SuffixInterval(Tags({"c", "b"}), false);
  PLabelRange a = codec_->SuffixInterval(Tags({"a"}), false);
  EXPECT_FALSE(ab.Overlaps(cb));
  EXPECT_FALSE(a.Overlaps(ab));  // //a vs //a/b: different leaf tags
}

TEST_F(PLabelCodecTest, AllNodesCoversEverything) {
  PLabelRange all = codec_->AllNodes();
  for (const auto& tags :
       {std::vector<std::string>{"a"}, {"a", "b"}, {"c", "a", "d"}}) {
    EXPECT_TRUE(all.ContainsRange(codec_->SuffixInterval(Tags(tags), false)));
    EXPECT_TRUE(all.ContainsRange(codec_->SuffixInterval(Tags(tags), true)));
  }
}

TEST_F(PLabelCodecTest, NodeLabelsFallIntoTheirPathIntervals) {
  // Proposition 3.2: node in [[Q]] <=> Q.p1 <= plabel <= Q.p2.
  TagId a = *reg_.Find("a");
  TagId b = *reg_.Find("b");
  TagId c = *reg_.Find("c");
  PLabel root = codec_->RootLabel(a);          // /a
  PLabel child = codec_->ChildLabel(root, b);  // /a/b
  PLabel grand = codec_->ChildLabel(child, c);  // /a/b/c

  // Simple path equality (the second half of proposition 3.2).
  EXPECT_EQ(codec_->SuffixInterval(Tags({"a"}), true).lo, root);
  EXPECT_EQ(codec_->SuffixInterval(Tags({"a", "b"}), true).lo, child);
  EXPECT_EQ(codec_->SuffixInterval(Tags({"a", "b", "c"}), true).lo, grand);

  // Suffix containment.
  EXPECT_TRUE(codec_->SuffixInterval(Tags({"b"}), false).Contains(child));
  EXPECT_TRUE(
      codec_->SuffixInterval(Tags({"b", "c"}), false).Contains(grand));
  EXPECT_FALSE(
      codec_->SuffixInterval(Tags({"a", "c"}), false).Contains(grand));
  EXPECT_FALSE(codec_->SuffixInterval(Tags({"b"}), false).Contains(grand));
}

TEST_F(PLabelCodecTest, DecodePathRoundTrip) {
  TagId a = *reg_.Find("a");
  TagId d = *reg_.Find("d");
  PLabel label = codec_->ChildLabel(codec_->ChildLabel(
      codec_->RootLabel(a), d), a);
  EXPECT_EQ(codec_->DecodePath(label), (std::vector<TagId>{a, d, a}));
}

TEST_F(PLabelCodecTest, TooDeepQueriesAreEmpty) {
  std::vector<TagId> deep(7, *reg_.Find("a"));  // depth 7 > max_depth 6
  EXPECT_TRUE(codec_->SuffixInterval(deep, false).empty());
  EXPECT_TRUE(codec_->SuffixInterval(deep, true).empty());
  EXPECT_TRUE(codec_->SuffixInterval({}, true).empty());  // bare "/"
  EXPECT_FALSE(codec_->SuffixInterval({}, false).empty());  // bare "//"
}

/// Exhaustive cross-check of the containment semantics on a real document:
/// for every node and every suffix path over the alphabet (up to length 3),
/// interval membership must coincide with path-suffix matching.
TEST(PLabelSemanticsTest, IntervalMembershipEqualsSuffixMatch) {
  const std::string xml =
      "<a><b><a><b/></a></b><c><b><c/></b></c><b/></a>";
  Result<DomTree> tree = ParseDom(xml);
  ASSERT_TRUE(tree.ok());

  TagRegistry reg;
  TagCollector collector(&reg);
  SaxParser parser;
  ASSERT_TRUE(parser.Parse(xml, &collector).ok());
  reg.Freeze();
  Result<PLabelCodec> codec_r =
      PLabelCodec::Create(reg.size(), collector.max_depth());
  ASSERT_TRUE(codec_r.ok());
  const PLabelCodec& codec = *codec_r;

  Labeler labeler(reg, codec);
  ASSERT_TRUE(parser.Parse(xml, &labeler).ok());
  ASSERT_TRUE(labeler.status().ok());

  // Map start -> plabel, and start -> DOM node for the oracle.
  std::map<uint32_t, PLabel> plabels;
  for (const NodeRecord& r : labeler.records()) plabels[r.start] = r.plabel;
  std::map<uint32_t, const DomNode*> doms;
  tree->ForEach([&](const DomNode* n) { doms[n->start] = n; });
  ASSERT_EQ(plabels.size(), doms.size());

  std::vector<std::string> alphabet = {"a", "b", "c"};
  std::vector<std::vector<std::string>> paths;
  for (const auto& t1 : alphabet) {
    paths.push_back({t1});
    for (const auto& t2 : alphabet) {
      paths.push_back({t1, t2});
      for (const auto& t3 : alphabet) paths.push_back({t1, t2, t3});
    }
  }

  for (const auto& path : paths) {
    std::vector<TagId> ids;
    for (const auto& t : path) ids.push_back(*reg.Find(t));
    for (bool absolute : {false, true}) {
      PLabelRange range = codec.SuffixInterval(ids, absolute);
      for (const auto& [start, plabel] : plabels) {
        // Oracle: does the node's source path (not) end with `path`?
        const DomNode* n = doms[start];
        std::vector<std::string> sp;
        for (const DomNode* cur = n; cur != nullptr; cur = cur->parent) {
          sp.insert(sp.begin(), cur->tag);
        }
        bool expected;
        if (absolute) {
          expected = sp == path;
        } else {
          expected = sp.size() >= path.size() &&
                     std::equal(path.rbegin(), path.rend(), sp.rbegin());
        }
        EXPECT_EQ(range.Contains(plabel), expected)
            << "path len " << path.size() << " node " << start;
      }
    }
  }
}

TEST(LabelerTest, MatchesDomPositionsAndLevels) {
  const std::string xml =
      "<a x=\"1\"><b>t<c/>u</b><d y=\"2\" z=\"3\">v</d></a>";
  Result<DomTree> tree = ParseDom(xml);
  ASSERT_TRUE(tree.ok());

  TagRegistry reg;
  TagCollector collector(&reg);
  SaxParser parser;
  ASSERT_TRUE(parser.Parse(xml, &collector).ok());
  reg.Freeze();
  Result<PLabelCodec> codec =
      PLabelCodec::Create(reg.size(), collector.max_depth());
  ASSERT_TRUE(codec.ok());
  Labeler labeler(reg, *codec);
  ASSERT_TRUE(parser.Parse(xml, &labeler).ok());
  ASSERT_TRUE(labeler.status().ok());

  std::map<uint32_t, const DomNode*> doms;
  tree->ForEach([&](const DomNode* n) { doms[n->start] = n; });
  ASSERT_EQ(labeler.records().size(), tree->node_count());
  for (const NodeRecord& rec : labeler.records()) {
    ASSERT_TRUE(doms.count(rec.start));
    const DomNode* n = doms[rec.start];
    EXPECT_EQ(rec.end, n->end);
    EXPECT_EQ(rec.level, n->level);
    EXPECT_EQ(reg.Name(rec.tag), n->tag);
    if (rec.data != kNullData) {
      EXPECT_EQ(labeler.dict().Get(rec.data), n->text);
    } else {
      EXPECT_TRUE(n->text.empty());
    }
  }
}

TEST(LabelerTest, CollectorCountsNodesAndDepth) {
  const std::string xml = "<a><b k=\"v\"><c/></b></a>";
  TagRegistry reg;
  TagCollector collector(&reg);
  SaxParser parser;
  ASSERT_TRUE(parser.Parse(xml, &collector).ok());
  EXPECT_EQ(collector.node_count(), 4u);  // a, b, @k, c
  EXPECT_EQ(collector.max_depth(), 3);
  EXPECT_EQ(reg.size(), 4u);  // a, b, @k, c
}

TEST(LabelerTest, SummaryCountsPaths) {
  const std::string xml = "<a><b/><b><c/></b><d><c/></d></a>";
  TagRegistry reg;
  TagCollector collector(&reg);
  SaxParser parser;
  ASSERT_TRUE(parser.Parse(xml, &collector).ok());
  reg.Freeze();
  Result<PLabelCodec> codec =
      PLabelCodec::Create(reg.size(), collector.max_depth());
  ASSERT_TRUE(codec.ok());
  Labeler labeler(reg, *codec);
  ASSERT_TRUE(parser.Parse(xml, &labeler).ok());

  // Distinct simple paths: /a, /a/b, /a/b/c, /a/d, /a/d/c.
  EXPECT_EQ(labeler.summary().path_count(), 5u);
}

TEST(LabelerTest, RejectsUnknownTag) {
  TagRegistry reg;
  reg.Intern("a");
  reg.Freeze();
  Result<PLabelCodec> codec = PLabelCodec::Create(reg.size(), 4);
  ASSERT_TRUE(codec.ok());
  Labeler labeler(reg, *codec);
  SaxParser parser;
  ASSERT_TRUE(parser.Parse("<a><zzz/></a>", &labeler).ok());
  EXPECT_FALSE(labeler.status().ok());
}

}  // namespace
}  // namespace blas

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace blas {
namespace {

constexpr char kDoc[] =
    "<inventory>"
    "<item><name>apple</name><price>30</price></item>"
    "<item><name>banana</name><price>12</price></item>"
    "<item><name>cherry</name><price>45</price></item>"
    "<item><name>banana</name></item>"  // no price
    "<item><name>date</name><price>9</price></item>"  // "9" > "30" as strings
    "</inventory>";

TEST(ValuePredTest, XPathNumberConversion) {
  EXPECT_EQ(XPathNumber("30"), 30.0);
  EXPECT_EQ(XPathNumber(" 30 "), 30.0);
  EXPECT_EQ(XPathNumber("-4.5"), -4.5);
  EXPECT_EQ(XPathNumber(".5"), 0.5);
  EXPECT_EQ(XPathNumber("12."), 12.0);
  // XPath's Number production has no '+', exponents, or bare text.
  EXPECT_TRUE(std::isnan(XPathNumber("+30")));
  EXPECT_TRUE(std::isnan(XPathNumber("1e3")));
  EXPECT_TRUE(std::isnan(XPathNumber("banana")));
  EXPECT_TRUE(std::isnan(XPathNumber("")));
  EXPECT_TRUE(std::isnan(XPathNumber("30 USD")));
  EXPECT_TRUE(std::isnan(XPathNumber(".")));
  EXPECT_TRUE(std::isnan(XPathNumber("-")));
}

TEST(ValuePredTest, MatchesSemantics) {
  // Equality stays string equality.
  ValuePred eq{ValueOp::kEq, "b"};
  EXPECT_TRUE(eq.Matches("b"));
  EXPECT_FALSE(eq.Matches("a"));
  ValuePred ne{ValueOp::kNe, "b"};
  EXPECT_FALSE(ne.Matches("b"));
  EXPECT_TRUE(ne.Matches(""));
  // Ordered operators are numeric (XPath 1.0): "9" < "30" even though it
  // compares greater as a string.
  ValuePred lt{ValueOp::kLt, "30"};
  EXPECT_TRUE(lt.Matches("9"));
  EXPECT_TRUE(lt.Matches("29.5"));
  EXPECT_FALSE(lt.Matches("30"));
  EXPECT_FALSE(lt.Matches("100"));
  ValuePred le{ValueOp::kLe, "30"};
  EXPECT_TRUE(le.Matches("30"));
  EXPECT_TRUE(le.Matches(" 30 "));
  EXPECT_FALSE(le.Matches("30.01"));
  ValuePred gt{ValueOp::kGt, "30"};
  EXPECT_TRUE(gt.Matches("100"));
  EXPECT_FALSE(gt.Matches("9"));
  ValuePred ge{ValueOp::kGe, "-2"};
  EXPECT_TRUE(ge.Matches("-1.5"));
  EXPECT_FALSE(ge.Matches("-3"));
  // Non-numeric on either side is NaN: every ordered comparison fails.
  EXPECT_FALSE(lt.Matches("banana"));
  EXPECT_FALSE(gt.Matches("banana"));
  EXPECT_FALSE(lt.Matches(""));
  ValuePred text_lt{ValueOp::kLt, "b"};
  EXPECT_FALSE(text_lt.Matches("a"));
}

TEST(ValuePredTest, ParserAcceptsAllOperators) {
  for (const char* text :
       {"//a != \"x\"", "//a < \"x\"", "//a <= \"x\"", "//a > \"x\"",
        "//a >= \"x\"", "//b[c != \"v\"]/d"}) {
    Result<Query> q = ParseXPath(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status();
    // Round-trips.
    Result<Query> again = ParseXPath(q->ToString());
    ASSERT_TRUE(again.ok()) << q->ToString();
    EXPECT_EQ(again->ToString(), q->ToString());
  }
}

TEST(ValuePredTest, AllPipelinesAgreeOnComparisons) {
  BlasSystem sys = MustBuild(kDoc);
  // String equality over names, numeric comparisons over mixed-width
  // prices (where lexicographic and numeric order genuinely differ).
  ExpectAllAgree(sys, "//item[name != \"banana\"]/price");
  ExpectAllAgree(sys, "//item[price >= \"30\"]/name");
  ExpectAllAgree(sys, "//item[price < \"30\"]/name");
  ExpectAllAgree(sys, "//price <= \"12\"");
  ExpectAllAgree(sys, "//item[name > \"apple\"]/name");  // empty: NaN
  ExpectAllAgree(sys, "//item[name = \"banana\" and price]/price");
}

TEST(ValuePredTest, ComparisonCountsMatchExpectations) {
  BlasSystem sys = MustBuild(kDoc);
  auto run = [&](const std::string& q) {
    Result<QueryResult> r =
        sys.Execute(q, Translator::kPushUp, Engine::kRelational);
    EXPECT_TRUE(r.ok()) << q;
    return r.ok() ? r->starts.size() : size_t{0};
  };
  EXPECT_EQ(run("//name != \"banana\""), 3u);   // apple, cherry, date
  // Numeric order: 9 and 12 are below 30 even though "9" sorts above
  // "30" lexicographically.
  EXPECT_EQ(run("//price < \"30\""), 2u);       // 12, 9
  EXPECT_EQ(run("//price > \"12\""), 2u);       // 30, 45
  EXPECT_EQ(run("//price >= \"12\""), 3u);
  EXPECT_EQ(run("//price >= \"9\""), 4u);
  EXPECT_EQ(run("//item[price]/name"), 4u);     // existence only
  // Ordered comparison against non-numeric text matches nothing...
  EXPECT_EQ(run("//name < \"cherry\""), 0u);
  // ...but string inequality still sees a no-text node as "".
  EXPECT_EQ(run("//item != \"x\""), 5u);
}

TEST(ValuePredTest, SqlRendersOperator) {
  BlasSystem sys = MustBuild(kDoc);
  // Ordered operators compare numerically, so the renderer casts the
  // data column; equality stays a string comparison.
  Result<std::string> sql =
      sys.ExplainSql("//price >= \"30\"", Translator::kSplit);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("CAST(T1.data AS REAL) >= 30"), std::string::npos)
      << *sql;
  sql = sys.ExplainSql("//name != \"banana\"", Translator::kSplit);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find(".data != 'banana'"), std::string::npos) << *sql;
  // A non-numeric literal can never order-compare true.
  sql = sys.ExplainSql("//price < \"cheap\"", Translator::kSplit);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("FALSE /* non-numeric literal */"), std::string::npos)
      << *sql;
}

TEST(ValuePredTest, NonEqualityOnTwigEngine) {
  BlasSystem sys = MustBuild(kDoc);
  Result<QueryResult> r = sys.Execute("//item[price > \"12\"]/name",
                                      Translator::kSplit, Engine::kTwig);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->starts.size(), 2u);
}

}  // namespace
}  // namespace blas

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace blas {
namespace {

constexpr char kDoc[] =
    "<inventory>"
    "<item><name>apple</name><price>30</price></item>"
    "<item><name>banana</name><price>12</price></item>"
    "<item><name>cherry</name><price>45</price></item>"
    "<item><name>banana</name></item>"  // no price
    "</inventory>";

TEST(ValuePredTest, MatchesSemantics) {
  ValuePred eq{ValueOp::kEq, "b"};
  EXPECT_TRUE(eq.Matches("b"));
  EXPECT_FALSE(eq.Matches("a"));
  ValuePred ne{ValueOp::kNe, "b"};
  EXPECT_FALSE(ne.Matches("b"));
  EXPECT_TRUE(ne.Matches(""));
  ValuePred lt{ValueOp::kLt, "b"};
  EXPECT_TRUE(lt.Matches("a"));
  EXPECT_FALSE(lt.Matches("b"));
  ValuePred le{ValueOp::kLe, "b"};
  EXPECT_TRUE(le.Matches("b"));
  EXPECT_FALSE(le.Matches("c"));
  ValuePred gt{ValueOp::kGt, "b"};
  EXPECT_TRUE(gt.Matches("ba"));
  EXPECT_FALSE(gt.Matches("b"));
  ValuePred ge{ValueOp::kGe, "b"};
  EXPECT_TRUE(ge.Matches("b"));
  EXPECT_FALSE(ge.Matches("az"));
}

TEST(ValuePredTest, ParserAcceptsAllOperators) {
  for (const char* text :
       {"//a != \"x\"", "//a < \"x\"", "//a <= \"x\"", "//a > \"x\"",
        "//a >= \"x\"", "//b[c != \"v\"]/d"}) {
    Result<Query> q = ParseXPath(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status();
    // Round-trips.
    Result<Query> again = ParseXPath(q->ToString());
    ASSERT_TRUE(again.ok()) << q->ToString();
    EXPECT_EQ(again->ToString(), q->ToString());
  }
}

TEST(ValuePredTest, AllPipelinesAgreeOnComparisons) {
  BlasSystem sys = MustBuild(kDoc);
  // Lexicographic comparisons over names and (same-width) numeric prices.
  ExpectAllAgree(sys, "//item[name != \"banana\"]/price");
  ExpectAllAgree(sys, "//item[price >= \"30\"]/name");
  ExpectAllAgree(sys, "//item[price < \"30\"]/name");
  ExpectAllAgree(sys, "//item[name > \"apple\"]/name");
  ExpectAllAgree(sys, "//name <= \"banana\"");
  ExpectAllAgree(sys, "//item[name = \"banana\" and price]/price");
}

TEST(ValuePredTest, ComparisonCountsMatchExpectations) {
  BlasSystem sys = MustBuild(kDoc);
  auto run = [&](const std::string& q) {
    Result<QueryResult> r =
        sys.Execute(q, Translator::kPushUp, Engine::kRelational);
    EXPECT_TRUE(r.ok()) << q;
    return r.ok() ? r->starts.size() : size_t{0};
  };
  EXPECT_EQ(run("//name != \"banana\""), 2u);   // apple, cherry
  EXPECT_EQ(run("//price > \"12\""), 2u);       // 30, 45
  EXPECT_EQ(run("//price >= \"12\""), 3u);
  EXPECT_EQ(run("//item[price]/name"), 3u);     // existence only
  // A node with NO text compares as "" (matches != "banana").
  EXPECT_EQ(run("//item != \"x\""), 4u);
}

TEST(ValuePredTest, SqlRendersOperator) {
  BlasSystem sys = MustBuild(kDoc);
  Result<std::string> sql =
      sys.ExplainSql("//price >= \"30\"", Translator::kSplit);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find(".data >= '30'"), std::string::npos) << *sql;
}

TEST(ValuePredTest, NonEqualityOnTwigEngine) {
  BlasSystem sys = MustBuild(kDoc);
  Result<QueryResult> r = sys.Execute("//item[price > \"12\"]/name",
                                      Translator::kSplit, Engine::kTwig);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->starts.size(), 2u);
}

}  // namespace
}  // namespace blas

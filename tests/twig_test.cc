#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "twig/twig.h"

namespace blas {
namespace {

/// Helper running one query on the twig engine and returning starts.
std::vector<uint32_t> Twig(const BlasSystem& sys, const std::string& xpath,
                           Translator t, ExecStats* stats = nullptr) {
  Result<ExecPlan> plan = sys.Plan(xpath, t);
  EXPECT_TRUE(plan.ok()) << plan.status();
  TwigEngine twig(&sys.store(), &sys.dict());
  ExecStats local;
  Result<std::vector<uint32_t>> r =
      twig.Execute(*plan, stats != nullptr ? stats : &local);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : std::vector<uint32_t>{};
}

TEST(TwigTest, BottomUpPruningRemovesUnsupportedAnchors) {
  // Only the first b has both a c and a d below it.
  BlasSystem sys = MustBuild(
      "<a><b><c/><d/></b><b><c/></b><b><d/></b></a>");
  std::vector<uint32_t> r =
      Twig(sys, "/a/b[c]/d", Translator::kDLabel);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r, Twig(sys, "/a/b[c]/d", Translator::kPushUp));
}

TEST(TwigTest, TopDownPruningRemovesUnreachableDescendants) {
  // c under the wrong parent must not survive even though it is "alive".
  BlasSystem sys = MustBuild("<a><b><c/></b><x><c/></x></a>");
  EXPECT_EQ(Twig(sys, "/a/b/c", Translator::kDLabel).size(), 1u);
  EXPECT_EQ(Twig(sys, "/a/b/c", Translator::kSplit).size(), 1u);
}

TEST(TwigTest, ReturnNodeMidTree) {
  // The return node is the branching point itself.
  BlasSystem sys = MustBuild(
      "<a><b><c/><d/></b><b><c/></b></a>");
  std::vector<uint32_t> r = Twig(sys, "/a/b[c][d]", Translator::kDLabel);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r, Twig(sys, "/a/b[c][d]", Translator::kPushUp));
}

TEST(TwigTest, SiblingIndependence) {
  // A classic twig pitfall: pairing (b1, c2) across different parents.
  BlasSystem sys = MustBuild(
      "<r><p><b/><q><c/></q></p><p><b/></p><p><q><c/></q></p></r>");
  // //p[b]//c: only the first p has both b and a c below it.
  std::vector<uint32_t> r = Twig(sys, "//p[b]//c", Translator::kDLabel);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r, Twig(sys, "//p[b]//c", Translator::kSplit));
  EXPECT_EQ(r, Twig(sys, "//p[b]//c", Translator::kPushUp));
}

TEST(TwigTest, RecursiveNestingWithExactLevels) {
  BlasSystem sys = MustBuild(
      "<a><a><b/><a><b/></a></a></a>");
  // /a/a/b must bind b's parent to the level-2 a only.
  std::vector<uint32_t> r = Twig(sys, "/a/a/b", Translator::kDLabel);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r, Twig(sys, "/a/a/b", Translator::kSplit));
  // //a/a/b matches both nested bs.
  EXPECT_EQ(Twig(sys, "//a/a/b", Translator::kDLabel).size(), 2u);
  EXPECT_EQ(Twig(sys, "//a/a/b", Translator::kPushUp).size(), 2u);
}

TEST(TwigTest, EveryStreamReadOnce) {
  BlasSystem sys = MustBuild(
      "<a><b><c/></b><b><c/><c/></b><d><c/></d></a>");
  ExecStats stats;
  Twig(sys, "//b/c", Translator::kDLabel, &stats);
  // Streams: b (2 elements) + c (4 elements) = 6, exactly once each.
  EXPECT_EQ(stats.elements, 6u);
  EXPECT_EQ(stats.d_joins, 1);  // one structural join per pattern edge
}

TEST(TwigTest, UnfoldPerAltJoinOnTwigEngine) {
  // Recursive document where unfold alternatives carry distinct deltas.
  BlasSystem sys = MustBuild(
      "<l><i><l><i><x/></i></l></i><i><x/></i></l>");
  std::vector<uint32_t> expected =
      NaiveEvalStarts(*ParseXPath("//l//i/x"), *sys.dom());
  EXPECT_EQ(Twig(sys, "//l//i/x", Translator::kUnfold), expected);
}

TEST(TwigTest, ValuePredicatesWorkOnTwigEngineToo) {
  // The paper strips value predicates for its twig prototype; ours
  // supports them via the data column filter.
  BlasSystem sys = MustBuild(
      "<a><b><v>x</v></b><b><v>y</v></b></a>");
  EXPECT_EQ(Twig(sys, "//b[v=\"x\"]", Translator::kPushUp).size(), 1u);
  EXPECT_EQ(Twig(sys, "//b[v=\"zz\"]", Translator::kPushUp).size(), 0u);
}

TEST(TwigTest, DeepChainQuery) {
  // A 6-level path query stresses the stack sweeps.
  BlasSystem sys = MustBuild(
      "<a><b><c><d><e><f/></e></d></c></b>"
      "<b><c><d><e/></d></c></b></a>");
  for (Translator t : {Translator::kDLabel, Translator::kSplit,
                       Translator::kPushUp, Translator::kUnfold}) {
    EXPECT_EQ(Twig(sys, "/a/b/c/d/e/f", t).size(), 1u)
        << TranslatorName(t);
  }
}

TEST(TwigTest, MatchesRelationalEngineOnBranchyQueries) {
  BlasSystem sys = MustBuild(
      "<s><p><n>a</n><q><r/></q><q/></p><p><n>b</n></p>"
      "<p><q><r/><r/></q><n>c</n></p></s>");
  for (const char* q :
       {"//p[n]/q", "//p[q/r]/n", "/s/p[q][n]", "//q[r]", "//p//r"}) {
    for (Translator t : {Translator::kDLabel, Translator::kSplit,
                         Translator::kPushUp, Translator::kUnfold}) {
      Result<QueryResult> rel = sys.Execute(q, t, Engine::kRelational);
      Result<QueryResult> twig = sys.Execute(q, t, Engine::kTwig);
      ASSERT_TRUE(rel.ok());
      ASSERT_TRUE(twig.ok());
      EXPECT_EQ(rel->starts, twig->starts)
          << q << " " << TranslatorName(t);
    }
  }
}

}  // namespace
}  // namespace blas

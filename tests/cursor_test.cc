// Cursor semantics: Drain() reproduces the legacy full materialization on
// the figure-11 / figure-10 queries under every translator and engine;
// limit/offset agree with truncated full results; bounded cursors on an
// XMark-scale document fetch strictly fewer pages than unlimited runs;
// projection output matches DOM-derived ground truth; and cursors behave
// under N concurrent QueryService clients (run under TSan in CI).

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blas/collection.h"
#include "gen/generator.h"
#include "gen/queries.h"
#include "service/query_service.h"
#include "tests/test_util.h"
#include "xml/xml_writer.h"

namespace blas {
namespace {

constexpr char kQS3[] =
    "/PLAYS/PLAY/ACT/SCENE[TITLE ='SCENE III. A public place.']//LINE";

const BlasSystem& Shakespeare() {
  static const BlasSystem* sys = [] {
    Result<BlasSystem> s = BlasSystem::FromEvents(
        [](SaxHandler* h) { GenerateShakespeare(GenOptions{}, h); });
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return new BlasSystem(std::move(s).value());
  }();
  return *sys;
}

const BlasSystem& Auction() {
  static const BlasSystem* sys = [] {
    Result<BlasSystem> s = BlasSystem::FromEvents(
        [](SaxHandler* h) { GenerateAuction(GenOptions{}, h); });
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return new BlasSystem(std::move(s).value());
  }();
  return *sys;
}

/// The figure-11 query under all four translators plus the figure-10
/// Shakespeare workload: every plan shape the paper evaluates.
std::vector<std::string> EquivalenceQueries() {
  std::vector<std::string> queries{kQS3};
  for (const BenchQuery& q : Figure10Queries('S')) queries.push_back(q.xpath);
  return queries;
}

constexpr Translator kTranslators[] = {Translator::kDLabel, Translator::kSplit,
                                       Translator::kPushUp,
                                       Translator::kUnfold};
constexpr Engine kEngines[] = {Engine::kRelational, Engine::kTwig};

/// Runs the engine directly (no cursor involved): the independent baseline
/// the cursor paths are compared against.
std::optional<std::vector<uint32_t>> RunDirect(const BlasSystem& sys,
                                               const std::string& xpath,
                                               Translator translator,
                                               Engine engine,
                                               ExecStats* stats = nullptr) {
  Result<ExecPlan> plan = sys.Plan(xpath, translator);
  if (!plan.ok()) return std::nullopt;  // translator refused (Unsupported)
  ExecStats local;
  Result<std::vector<uint32_t>> starts =
      engine == Engine::kRelational
          ? RelationalExecutor(&sys.store(), &sys.dict())
                .Execute(*plan, &local)
          : TwigEngine(&sys.store(), &sys.dict()).Execute(*plan, &local);
  EXPECT_TRUE(starts.ok()) << starts.status().ToString();
  if (stats != nullptr) *stats = local;
  return std::move(starts).value();
}

TEST(CursorTest, UnboundedDrainIsByteIdenticalToDirectExecution) {
  const BlasSystem& sys = Shakespeare();
  for (const std::string& xpath : EquivalenceQueries()) {
    for (Translator translator : kTranslators) {
      for (Engine engine : kEngines) {
        std::optional<std::vector<uint32_t>> expected =
            RunDirect(sys, xpath, translator, engine);
        if (!expected.has_value()) continue;
        QueryOptions options;
        options.translator = translator;
        options.engine = engine;
        Result<ResultCursor> cursor = sys.Open(xpath, options);
        ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
        EXPECT_FALSE(cursor->streaming());  // unbounded: legacy producer
        QueryResult drained = cursor->Drain();
        EXPECT_EQ(drained.starts, *expected)
            << xpath << " [" << TranslatorName(translator) << "/"
            << EngineName(engine) << "]";
        EXPECT_EQ(drained.stats.output_rows, expected->size());
        EXPECT_TRUE(cursor->exhausted());
      }
    }
  }
}

TEST(CursorTest, StreamingProducerMatchesDirectExecution) {
  const BlasSystem& sys = Shakespeare();
  for (const std::string& xpath : EquivalenceQueries()) {
    for (Translator translator : kTranslators) {
      for (Engine engine : kEngines) {
        std::optional<std::vector<uint32_t>> expected =
            RunDirect(sys, xpath, translator, engine);
        if (!expected.has_value()) continue;
        // A limit at least the full result size forces the streaming
        // producer (where the plan allows it) without truncating, so the
        // full sequences must agree.
        QueryOptions options;
        options.translator = translator;
        options.engine = engine;
        options.limit = expected->size() + 1000;
        Result<ResultCursor> cursor = sys.Open(xpath, options);
        ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
        QueryResult drained = cursor->Drain();
        EXPECT_EQ(drained.starts, *expected)
            << xpath << " [" << TranslatorName(translator) << "/"
            << EngineName(engine)
            << (cursor->streaming() ? ", streaming]" : ", materialized]");
      }
    }
  }
}

TEST(CursorTest, Figure11QueryUsesStreamingProducerUnderEveryTranslator) {
  const BlasSystem& sys = Shakespeare();
  // QS3's return part (//LINE) is a single-tag leaf of the part tree under
  // all four translators, so every bounded cursor should stream.
  for (Translator translator : kTranslators) {
    QueryOptions options;
    options.translator = translator;
    options.engine = Engine::kRelational;
    options.limit = 5;
    Result<ResultCursor> cursor = sys.Open(kQS3, options);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    EXPECT_TRUE(cursor->streaming()) << TranslatorName(translator);
  }
}

TEST(CursorTest, LimitAndOffsetAgreeWithTruncatedFullResults) {
  const BlasSystem& sys = Shakespeare();
  for (const std::string& xpath : EquivalenceQueries()) {
    for (Translator translator : {Translator::kPushUp, Translator::kDLabel}) {
      for (Engine engine : kEngines) {
        std::optional<std::vector<uint32_t>> full =
            RunDirect(sys, xpath, translator, engine);
        if (!full.has_value()) continue;
        for (uint64_t offset : {uint64_t{0}, uint64_t{2}, uint64_t{100000}}) {
          for (uint64_t limit : {uint64_t{1}, uint64_t{7}, uint64_t{50}}) {
            QueryOptions options;
            options.translator = translator;
            options.engine = engine;
            options.limit = limit;
            options.offset = offset;
            Result<ResultCursor> cursor = sys.Open(xpath, options);
            ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
            QueryResult got = cursor->Drain();
            std::vector<uint32_t> expected;
            for (size_t i = offset;
                 i < full->size() && expected.size() < limit; ++i) {
              expected.push_back((*full)[i]);
            }
            EXPECT_EQ(got.starts, expected)
                << xpath << " [" << TranslatorName(translator) << "/"
                << EngineName(engine) << "] offset=" << offset
                << " limit=" << limit;
          }
        }
      }
    }
  }
}

TEST(CursorTest, NextEnumerationMatchesDrain) {
  const BlasSystem& sys = Shakespeare();
  std::optional<std::vector<uint32_t>> full =
      RunDirect(sys, kQS3, Translator::kPushUp, Engine::kRelational);
  ASSERT_TRUE(full.has_value());
  ASSERT_GT(full->size(), 3u);

  for (uint64_t limit : {uint64_t{0}, uint64_t{3}, full->size() + 7}) {
    QueryOptions options;
    options.engine = Engine::kRelational;
    options.limit = limit;
    Result<ResultCursor> cursor = sys.Open(kQS3, options);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    std::vector<uint32_t> pulled;
    while (std::optional<Match> match = cursor->Next()) {
      pulled.push_back(match->start);
    }
    EXPECT_TRUE(cursor->exhausted());
    EXPECT_EQ(cursor->delivered(), pulled.size());
    std::vector<uint32_t> expected = *full;
    if (limit > 0 && expected.size() > limit) expected.resize(limit);
    EXPECT_EQ(pulled, expected) << "limit=" << limit;
    // A drained-after-exhaustion cursor has nothing left.
    EXPECT_TRUE(cursor->Drain().starts.empty());
  }
}

TEST(CursorTest, CostGateRejectsStreamingWhenTheTagRunWouldCostMore) {
  const BlasSystem& sys = Shakespeare();
  QueryOptions options;
  options.engine = Engine::kRelational;
  options.limit = 3;
  // /PLAYS/PLAY/TITLE: the part's SP range touches only the 37 matches,
  // while the TITLE SD run interleaves every ACT/SCENE/PLAY title in the
  // document — filtering the run would visit more than the full query.
  Result<ResultCursor> selective = sys.Open("/PLAYS/PLAY/TITLE", options);
  ASSERT_TRUE(selective.ok());
  EXPECT_FALSE(selective->streaming());
  // A broad suffix pattern's range is the whole run: streaming wins.
  Result<ResultCursor> broad = sys.Open("//LINE", options);
  ASSERT_TRUE(broad.ok());
  EXPECT_TRUE(broad->streaming());
  // Either way the answers agree with the truncated full results.
  std::optional<std::vector<uint32_t>> full =
      RunDirect(sys, "/PLAYS/PLAY/TITLE", Translator::kPushUp,
                Engine::kRelational);
  full->resize(3);
  EXPECT_EQ(selective->Drain().starts, *full);
}

TEST(CursorTest, BoundedWildcardQueryFallsBackAndTruncates) {
  const BlasSystem& sys = Shakespeare();
  // kAllTags return scans have no single SD run to stream from.
  std::optional<std::vector<uint32_t>> full =
      RunDirect(sys, "//SPEECH/*", Translator::kDLabel, Engine::kRelational);
  ASSERT_TRUE(full.has_value());
  QueryOptions options;
  options.translator = Translator::kDLabel;
  options.engine = Engine::kRelational;
  options.limit = 9;
  Result<ResultCursor> cursor = sys.Open("//SPEECH/*", options);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  EXPECT_FALSE(cursor->streaming());
  QueryResult got = cursor->Drain();
  full->resize(9);
  EXPECT_EQ(got.starts, *full);
}

// ---- Acceptance: limit-k early termination fetches fewer pages. --------

TEST(CursorTest, LimitTenOnXMarkScaleDocumentFetchesStrictlyFewerPages) {
  const BlasSystem& sys = Auction();
  const std::string xpath = "//item/description";
  for (Translator translator : {Translator::kPushUp, Translator::kDLabel}) {
    for (Engine engine : kEngines) {
      ExecStats full_stats;
      std::optional<std::vector<uint32_t>> full =
          RunDirect(sys, xpath, translator, engine, &full_stats);
      ASSERT_TRUE(full.has_value());
      ASSERT_GT(full->size(), 100u) << "corpus too small for the claim";

      QueryOptions options;
      options.translator = translator;
      options.engine = engine;
      options.limit = 10;
      Result<ResultCursor> cursor = sys.Open(xpath, options);
      ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
      ASSERT_TRUE(cursor->streaming());
      QueryResult got = cursor->Drain();

      std::vector<uint32_t> expected(full->begin(), full->begin() + 10);
      EXPECT_EQ(got.starts, expected);
      EXPECT_LT(got.stats.page_fetches, full_stats.page_fetches)
          << TranslatorName(translator) << "/" << EngineName(engine);
      EXPECT_LT(got.stats.elements, full_stats.elements)
          << TranslatorName(translator) << "/" << EngineName(engine);
    }
  }
}

// ---- Projection: DOM-free content vs. DOM-derived ground truth. --------

constexpr char kLibraryXml[] =
    "<library>"
    "<book genre=\"databases\" year=\"1992\">"
    "<title>Transaction Processing</title>"
    "<author>Gray &amp; Reuter</author>"
    "</book>"
    "<book genre=\"systems\">"
    "<title>The UNIX Time-Sharing System</title>"
    "<note>classic <em>paper</em> scan</note>"
    "</book>"
    "<journal><title>TODS</title><volume empty=\"\"/></journal>"
    "</library>";

std::map<uint32_t, const DomNode*> DomByStart(const DomTree& dom) {
  std::map<uint32_t, const DomNode*> by_start;
  dom.ForEach([&](const DomNode* node) { by_start[node->start] = node; });
  return by_start;
}

TEST(CursorTest, ProjectionMatchesDomGroundTruth) {
  BlasSystem sys = MustBuild(kLibraryXml);
  std::map<uint32_t, const DomNode*> dom = DomByStart(*sys.dom());
  const std::vector<std::string> queries = {
      "//book",  "//title", "//book/@genre", "/library/book[@genre"
      " =\"databases\"]/title", "//note", "//em"};
  for (const std::string& xpath : queries) {
    for (Translator translator : {Translator::kPushUp, Translator::kDLabel}) {
      for (Engine engine : kEngines) {
        for (Projection projection :
             {Projection::kDLabel, Projection::kTag, Projection::kPath,
              Projection::kValue, Projection::kSubtree}) {
          QueryOptions options;
          options.translator = translator;
          options.engine = engine;
          options.projection = projection;
          Result<ResultCursor> cursor = sys.Open(xpath, options);
          ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
          size_t seen = 0;
          while (std::optional<Match> match = cursor->Next()) {
            ++seen;
            auto it = dom.find(match->start);
            ASSERT_NE(it, dom.end()) << xpath;
            const DomNode* node = it->second;
            EXPECT_EQ(match->end, node->end);
            EXPECT_EQ(match->level, node->level);
            switch (projection) {
              case Projection::kDLabel:
                EXPECT_TRUE(match->content.empty());
                break;
              case Projection::kTag:
                EXPECT_EQ(match->content, node->tag);
                break;
              case Projection::kPath:
                EXPECT_EQ(match->content, DomTree::SourcePath(node));
                break;
              case Projection::kValue:
                EXPECT_EQ(match->content, node->text);
                break;
              case Projection::kSubtree: {
                std::string expected =
                    node->is_attribute()
                        ? node->tag.substr(1) + "=\"" +
                              EscapeAttribute(node->text) + "\""
                        : WriteXml(*node);
                EXPECT_EQ(match->content, expected)
                    << xpath << " @" << match->start;
                break;
              }
            }
          }
          EXPECT_GT(seen, 0u) << xpath << " found nothing";
        }
      }
    }
  }
}

TEST(CursorTest, DrainCarriesProjectedMatches) {
  BlasSystem sys = MustBuild(kLibraryXml);
  QueryOptions options;
  options.projection = Projection::kValue;
  Result<QueryResult> r = sys.Execute("//book/title", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->starts.size(), 2u);
  ASSERT_EQ(r->matches.size(), 2u);
  EXPECT_EQ(r->matches[0].content, "Transaction Processing");
  EXPECT_EQ(r->matches[1].content, "The UNIX Time-Sharing System");
  // Subtree reconstruction round-trips through the parser.
  options.projection = Projection::kSubtree;
  Result<QueryResult> sub = sys.Execute("//book", options);
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(sub->matches.size(), 2u);
  EXPECT_EQ(sub->matches[0].content,
            "<book genre=\"databases\" year=\"1992\">"
            "<title>Transaction Processing</title>"
            "<author>Gray &amp; Reuter</author></book>");
  // Canonical form: an element's concatenated direct text precedes its
  // child elements ("classic " + " scan", then <em>).
  EXPECT_EQ(sub->matches[1].content,
            "<book genre=\"systems\"><title>The UNIX Time-Sharing System"
            "</title><note>classic  scan<em>paper</em></note></book>");
}

// ---- QueryService: cursors, streaming callbacks, N concurrent clients. --

TEST(CursorServiceTest, SubmitCursorDeliversThroughFuture) {
  const BlasSystem& sys = Shakespeare();
  QueryService service(&sys, ServiceOptions{.worker_threads = 2});
  QueryRequest request;
  request.xpath = "/PLAYS/PLAY/TITLE";
  request.options.limit = 4;
  request.options.projection = Projection::kValue;
  std::future<Result<ResultCursor>> future =
      service.SubmitCursor(std::move(request));
  Result<ResultCursor> cursor = future.get();
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  size_t count = 0;
  while (std::optional<Match> match = cursor->Next()) {
    EXPECT_FALSE(match->content.empty());
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(CursorServiceTest, StreamingCallbackDeliversAndCancels) {
  const BlasSystem& sys = Shakespeare();
  QueryService service(&sys, ServiceOptions{.worker_threads = 2});

  QueryRequest request;
  request.xpath = kQS3;
  std::vector<uint32_t> streamed;
  auto future = service.Submit(request, [&](const Match& match) {
    streamed.push_back(match.start);
    return true;
  });
  Result<StreamSummary> summary = future.get();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_FALSE(summary->cancelled);
  EXPECT_EQ(summary->delivered, streamed.size());
  std::optional<std::vector<uint32_t>> expected =
      RunDirect(sys, kQS3, Translator::kPushUp, Engine::kTwig);
  // kAuto may pick either engine; compare sets via the relational run too.
  std::optional<std::vector<uint32_t>> expected_rel =
      RunDirect(sys, kQS3, Translator::kPushUp, Engine::kRelational);
  EXPECT_TRUE(streamed == *expected || streamed == *expected_rel);

  // Cancellation stops the stream early.
  size_t delivered_before_cancel = 0;
  auto cancelled = service.Submit(request, [&](const Match&) {
    return ++delivered_before_cancel < 3;
  });
  Result<StreamSummary> cancel_summary = cancelled.get();
  ASSERT_TRUE(cancel_summary.ok());
  EXPECT_TRUE(cancel_summary->cancelled);
  EXPECT_EQ(cancel_summary->delivered, 3u);
}

TEST(CursorServiceTest, ConcurrentClientsPullIndependentCursors) {
  const BlasSystem& sys = Shakespeare();
  QueryService service(&sys, ServiceOptions{.worker_threads = 4});

  const std::vector<std::string> queries = {
      "/PLAYS/PLAY/TITLE", "//SPEECH/SPEAKER", kQS3, "//LINE/STAGEDIR"};
  std::vector<std::vector<uint32_t>> baselines;
  for (const std::string& q : queries) {
    std::optional<std::vector<uint32_t>> full =
        RunDirect(sys, q, Translator::kPushUp, Engine::kRelational);
    ASSERT_TRUE(full.has_value());
    if (full->size() > 20) full->resize(20);
    baselines.push_back(std::move(*full));
  }

  constexpr int kClients = 8;
  constexpr int kRounds = 6;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        size_t qi = (c + round) % queries.size();
        QueryRequest request;
        request.xpath = queries[qi];
        request.options.engine = Engine::kRelational;
        request.options.limit = 20;
        auto future = service.SubmitCursor(request);
        Result<ResultCursor> cursor = future.get();
        if (!cursor.ok()) {
          ++failures[c];
          continue;
        }
        std::vector<uint32_t> pulled;
        while (std::optional<Match> match = cursor->Next()) {
          pulled.push_back(match->start);
        }
        if (pulled != baselines[qi]) ++failures[c];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << c;
}

// ---- BlasCollection: unified options, kAuto, collection-wide limits. ----

TEST(CursorCollectionTest, OptionsDriveCollectionExecution) {
  BlasCollection coll;
  ASSERT_TRUE(coll.AddXml("a", "<r><x>1</x><x>2</x></r>").ok());
  ASSERT_TRUE(coll.AddXml("b", "<r><x>3</x></r>").ok());
  ASSERT_TRUE(coll.AddXml("c", "<r><x>4</x><x>5</x></r>").ok());

  QueryOptions options;
  options.engine = Engine::kAuto;
  options.exec.optimize_join_order = true;  // previously silently ignored
  Result<BlasCollection::CollectionResult> all = coll.Execute("//x", options);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->total_matches, 5u);
  EXPECT_EQ(all->docs.size(), 3u);

  // Collection-wide limit stops mid-collection (name order: a, b, c).
  options.limit = 3;
  Result<BlasCollection::CollectionResult> limited =
      coll.Execute("//x", options);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->total_matches, 3u);
  ASSERT_EQ(limited->docs.size(), 2u);
  EXPECT_EQ(limited->docs[0].name, "a");
  EXPECT_EQ(limited->docs[0].starts.size(), 2u);
  EXPECT_EQ(limited->docs[1].name, "b");
  EXPECT_EQ(limited->docs[1].starts.size(), 1u);

  // Offset skips across document boundaries; projection rides along.
  options.limit = 2;
  options.offset = 2;
  options.projection = Projection::kValue;
  Result<BlasCollection::CollectionResult> sliced =
      coll.Execute("//x", options);
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->total_matches, 2u);
  ASSERT_EQ(sliced->docs.size(), 2u);
  EXPECT_EQ(sliced->docs[0].name, "b");
  ASSERT_EQ(sliced->docs[0].matches.size(), 1u);
  EXPECT_EQ(sliced->docs[0].matches[0].content, "3");
  EXPECT_EQ(sliced->docs[1].name, "c");
  ASSERT_EQ(sliced->docs[1].matches.size(), 1u);
  EXPECT_EQ(sliced->docs[1].matches[0].content, "4");
}

// ---- Satellite: ExecStats::d_joins is 64-bit at the source. -------------

static_assert(std::is_same_v<decltype(ExecStats::d_joins), uint64_t>,
              "d_joins must be wide enough for service-lifetime roll-ups");

}  // namespace
}  // namespace blas

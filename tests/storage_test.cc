#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/node_store.h"
#include "storage/string_dict.h"

namespace blas {
namespace {

TEST(BufferPoolTest, AllocateAndMutate) {
  BufferPool pool(4);
  PageId a = pool.Allocate();
  PageId b = pool.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(pool.page_count(), 2u);
  pool.MutablePage(a)->bytes[0] = std::byte{42};
  EXPECT_EQ(pool.stats().fetches, 0u);  // build-time access uncounted
}

TEST(BufferPoolTest, LruCountsMisses) {
  BufferPool pool(2);
  PageId p0 = pool.Allocate();
  PageId p1 = pool.Allocate();
  PageId p2 = pool.Allocate();

  // The refs are deliberately discarded: only the hit/miss counters are
  // under test, so each fetch pins and immediately unpins.
  (void)pool.Fetch(p0);  // miss
  (void)pool.Fetch(p0);  // hit
  (void)pool.Fetch(p1);  // miss
  (void)pool.Fetch(p2);  // miss, evicts p0 (LRU)
  (void)pool.Fetch(p0);  // miss again
  EXPECT_EQ(pool.stats().fetches, 5u);
  EXPECT_EQ(pool.stats().misses, 4u);

  pool.ResetStats();
  EXPECT_EQ(pool.stats().fetches, 0u);
  pool.DropCache();
  (void)pool.Fetch(p0);
  EXPECT_EQ(pool.stats().misses, 1u);  // cold again after DropCache
}

TEST(BufferPoolTest, ShardingIsCapacityScaledAndOverridable) {
  BufferPool tiny(2);
  EXPECT_EQ(tiny.shard_count(), 1u);  // exact LRU below 128 frames
  BufferPool large(4096);
  EXPECT_EQ(large.shard_count(), 16u);  // auto-sharded for concurrency
  BufferPool pinned(4096, /*shards=*/1);
  EXPECT_EQ(pinned.shard_count(), 1u);  // paper-exact miss accounting
}

TEST(StringDictTest, InternAndFind) {
  StringDict dict;
  uint32_t a = dict.Intern("alpha");
  uint32_t b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Get(a), "alpha");
  EXPECT_EQ(dict.Find("beta"), std::optional<uint32_t>(b));
  EXPECT_EQ(dict.Find("gamma"), std::nullopt);
  EXPECT_EQ(dict.size(), 2u);
}

// A small fixed-size record for direct B+-tree tests.
struct IntRec {
  uint64_t key;
  uint64_t payload;
};
struct IntKeyOf {
  static uint64_t Get(const IntRec& r) { return r.key; }
};
using IntTree = BPlusTree<IntRec, uint64_t, IntKeyOf>;

TEST(BPlusTreeTest, EmptyTree) {
  BufferPool pool(16);
  IntTree tree;
  tree.Build(&pool, {});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Seek(0).at_end());
  EXPECT_TRUE(tree.Begin().at_end());
}

TEST(BPlusTreeTest, SingleLeaf) {
  BufferPool pool(16);
  std::vector<IntRec> recs;
  for (uint64_t i = 0; i < 10; ++i) recs.push_back({i * 2, i});
  IntTree tree;
  tree.Build(&pool, recs);
  EXPECT_EQ(tree.height(), 1);

  auto it = tree.Seek(6);
  ASSERT_FALSE(it.at_end());
  EXPECT_EQ(it->key, 6u);
  it = tree.Seek(7);  // between keys -> next larger
  ASSERT_FALSE(it.at_end());
  EXPECT_EQ(it->key, 8u);
  it = tree.Seek(100);
  EXPECT_TRUE(it.at_end());
}

TEST(BPlusTreeTest, MultiLevelSeekAndScan) {
  BufferPool pool(4096);
  std::vector<IntRec> recs;
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) recs.push_back({i * 3 + 1, i});
  IntTree tree;
  tree.Build(&pool, recs);
  EXPECT_GE(tree.height(), 2);

  // Every key (and its neighbors) seeks correctly.
  for (uint64_t probe : {0ULL, 1ULL, 2ULL, 4ULL, 29998ULL, 150000ULL,
                         299998ULL, 299999ULL}) {
    auto it = tree.Seek(probe);
    uint64_t expected = ((probe + 1) / 3) * 3 + 1;
    if (expected < probe) expected += 3;
    if (expected > (kN - 1) * 3 + 1) {
      EXPECT_TRUE(it.at_end()) << probe;
    } else {
      ASSERT_FALSE(it.at_end()) << probe;
      EXPECT_EQ(it->key, expected) << probe;
    }
  }

  // Full scan from Begin visits all records in order.
  uint64_t count = 0;
  uint64_t prev = 0;
  for (auto it = tree.Begin(); !it.at_end(); ++it) {
    if (count > 0) EXPECT_LT(prev, it->key);
    prev = it->key;
    ++count;
  }
  EXPECT_EQ(count, kN);
}

TEST(BPlusTreeTest, PageFetchesAreCounted) {
  BufferPool pool(4096);
  std::vector<IntRec> recs;
  for (uint64_t i = 0; i < 50000; ++i) recs.push_back({i, i});
  IntTree tree;
  tree.Build(&pool, recs);
  pool.ResetStats();
  auto it = tree.Seek(25000);
  ASSERT_FALSE(it.at_end());
  // A point lookup touches exactly `height` pages.
  EXPECT_EQ(pool.stats().fetches, static_cast<uint64_t>(tree.height()));
}

std::vector<NodeRecord> MakeRecords() {
  // Five nodes across two plabels/tags with values.
  std::vector<NodeRecord> recs;
  auto add = [&](PLabel p, uint32_t start, uint32_t end, uint32_t tag,
                 int32_t level, uint32_t data) {
    NodeRecord r;
    r.plabel = p;
    r.start = start;
    r.end = end;
    r.tag = tag;
    r.level = level;
    r.data = data;
    recs.push_back(r);
  };
  add(100, 1, 10, 1, 1, kNullData);
  add(200, 2, 5, 2, 2, 7);
  add(200, 6, 9, 2, 2, 8);
  add(300, 3, 4, 3, 3, 7);
  add(150, 7, 8, 3, 3, kNullData);
  return recs;
}

TEST(NodeStoreTest, PlabelRangeScan) {
  NodeStore store(MakeRecords(), 64);
  auto out = store.ScanPlabelRange(PLabelRange{150, 250});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].plabel, static_cast<PLabel>(150));
  EXPECT_EQ(out[1].start, 2u);  // (200,2) before (200,6)
  EXPECT_EQ(out[2].start, 6u);
  EXPECT_EQ(store.stats().elements, 3u);
}

TEST(NodeStoreTest, PlabelEqualityAndFilters) {
  NodeStore store(MakeRecords(), 64);
  auto all200 = store.ScanPlabelRange(PLabelRange{200, 200});
  EXPECT_EQ(all200.size(), 2u);
  auto with_data = store.ScanPlabelRange(PLabelRange{200, 200}, 7);
  ASSERT_EQ(with_data.size(), 1u);
  EXPECT_EQ(with_data[0].start, 2u);
  // Filtered-out tuples still count as visited.
  EXPECT_EQ(store.stats().elements, 4u);
  auto empty = store.ScanPlabelRange(PLabelRange{}, std::nullopt);
  EXPECT_TRUE(empty.empty());
}

TEST(NodeStoreTest, TagScan) {
  NodeStore store(MakeRecords(), 64);
  auto tag3 = store.ScanTag(3);
  ASSERT_EQ(tag3.size(), 2u);
  EXPECT_EQ(tag3[0].start, 3u);
  EXPECT_EQ(tag3[1].start, 7u);
  EXPECT_TRUE(store.ScanTag(99).empty());
}

TEST(NodeStoreTest, ScanAllAndValueIndex) {
  NodeStore store(MakeRecords(), 64);
  EXPECT_EQ(store.ScanAll().size(), 5u);
  auto v7 = store.ScanValue(7);
  ASSERT_EQ(v7.size(), 2u);
  EXPECT_EQ(v7[0].start, 2u);
  EXPECT_EQ(v7[1].start, 3u);
}

TEST(NodeStoreTest, StatsAccumulateAndReset) {
  NodeStore store(MakeRecords(), 64);
  store.ScanAll();
  StorageStats s = store.stats();
  EXPECT_EQ(s.elements, 5u);
  EXPECT_GT(s.page_fetches, 0u);
  store.ResetStats();
  EXPECT_EQ(store.stats().elements, 0u);
  EXPECT_EQ(store.stats().page_fetches, 0u);
}

TEST(NodeStoreTest, LargeStoreRangeMatchesBruteForce) {
  std::vector<NodeRecord> recs;
  for (uint32_t i = 0; i < 20000; ++i) {
    NodeRecord r;
    r.plabel = static_cast<PLabel>((i * 37) % 1000);
    r.start = i + 1;
    r.end = i + 1;  // structural fields irrelevant here
    r.tag = i % 50;
    r.level = 1;
    r.data = kNullData;
    recs.push_back(r);
  }
  NodeStore store(recs, 512);
  PLabelRange range{100, 199};
  auto got = store.ScanPlabelRange(range);
  size_t expected = 0;
  for (const auto& r : recs) {
    if (range.Contains(r.plabel)) ++expected;
  }
  EXPECT_EQ(got.size(), expected);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end(),
                             [](const NodeRecord& a, const NodeRecord& b) {
                               return SpKeyOf::Get(a) < SpKeyOf::Get(b);
                             }));

  auto tag7 = store.ScanTag(7);
  size_t expected_tag = 0;
  for (const auto& r : recs) {
    if (r.tag == 7) ++expected_tag;
  }
  EXPECT_EQ(tag7.size(), expected_tag);
}

}  // namespace
}  // namespace blas

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/queries.h"
#include "service/normalize.h"
#include "service/plan_cache.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "tests/test_util.h"

namespace blas {
namespace {

// ----------------------------------------------------------- normalize ---

TEST(NormalizeTest, StripsDecorativeWhitespace) {
  EXPECT_EQ(NormalizeXPath("  / site / regions // item  "),
            "/site/regions//item");
  EXPECT_EQ(NormalizeXPath("/a/b"), NormalizeXPath("  /a  /  b\t\n"));
}

TEST(NormalizeTest, KeepsTokenSeparators) {
  // "and" between two relative paths needs its separating spaces.
  EXPECT_EQ(NormalizeXPath("//a[ b and c ]"), "//a[b and c]");
  EXPECT_EQ(NormalizeXPath("//a[b   and   c]"), "//a[b and c]");
}

TEST(NormalizeTest, PreservesQuotedLiterals) {
  EXPECT_EQ(NormalizeXPath("//a[ b = \"x  y\" ]"), "//a[b=\"x  y\"]");
  EXPECT_EQ(NormalizeXPath("//a[b='  spaced  ']"), "//a[b='  spaced  ']");
}

TEST(NormalizeTest, KeyNormalizesItsInput) {
  EXPECT_EQ(PlanCacheKey(" /a / b ", Translator::kPushUp, false),
            PlanCacheKey("/a/b", Translator::kPushUp, false));
}

TEST(NormalizeTest, KeyIncludesTranslatorAndOptimizerFlag) {
  std::string norm = NormalizeXPath("/a//b");
  EXPECT_NE(PlanCacheKey(norm, Translator::kPushUp, false),
            PlanCacheKey(norm, Translator::kSplit, false));
  EXPECT_NE(PlanCacheKey(norm, Translator::kPushUp, false),
            PlanCacheKey(norm, Translator::kPushUp, true));
}

// ---------------------------------------------------------- plan cache ---

std::shared_ptr<const CachedPlan> DummyPlan() {
  auto plan = std::make_shared<CachedPlan>();
  plan->plan.parts.emplace_back();
  return plan;
}

TEST(PlanCacheTest, HitAndMissAccounting) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Get("k1"), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  auto plan = DummyPlan();
  cache.Put("k1", plan);
  EXPECT_EQ(cache.Get("k1"), plan);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(3);
  cache.Put("a", DummyPlan());
  cache.Put("b", DummyPlan());
  cache.Put("c", DummyPlan());
  // Touch "a" so "b" becomes the LRU entry.
  EXPECT_NE(cache.Get("a"), nullptr);
  cache.Put("d", DummyPlan());  // evicts "b"

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  std::vector<std::string> keys = cache.KeysMruToLru();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "c");  // just touched
  EXPECT_EQ(keys[1], "d");
  EXPECT_EQ(keys[2], "a");
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0);
  cache.Put("a", DummyPlan());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(PlanCacheTest, PutRefreshesExistingKey) {
  PlanCache cache(2);
  auto first = DummyPlan();
  auto second = DummyPlan();
  cache.Put("a", first);
  cache.Put("a", second);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("a"), second);
}

// ---------------------------------------------------------- thread pool ---

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4, 8);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.Submit([&done] { ++done; }));
    }
  }  // destructor drains
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, TrySubmitRespectsQueueBound) {
  // One paused worker plus a full queue: the next TrySubmit must refuse.
  std::atomic<bool> worker_busy{false};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ThreadPool pool(1, 2);
  ASSERT_TRUE(pool.Submit([&worker_busy, gate] {
    worker_busy = true;
    gate.wait();
  }));
  while (!worker_busy) std::this_thread::yield();
  ASSERT_TRUE(pool.TrySubmit([] {}));   // queue slot 1
  ASSERT_TRUE(pool.TrySubmit([] {}));   // queue slot 2
  EXPECT_FALSE(pool.TrySubmit([] {}));  // full
  release.set_value();
  pool.Shutdown();
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2, 4);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

TEST(ThreadPoolTest, WaitIdleSettlesQueuedAndRunningWork) {
  std::atomic<int> done{0};
  ThreadPool pool(3, 64);
  // Tasks that spawn follow-up tasks: WaitIdle must cover work submitted
  // by still-running work, not just the queue it first observed.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&pool, &done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ASSERT_TRUE(pool.Submit([&done] { ++done; }));
      ++done;
    }));
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 40);
  EXPECT_EQ(pool.queue_size(), 0u);

  // Idempotent on an idle pool, and non-blocking after shutdown.
  pool.WaitIdle();
  pool.Shutdown();
  pool.WaitIdle();
}

// -------------------------------------------------------- query service ---

constexpr char kDoc[] =
    "<site><regions><region><item><name>lamp</name>"
    "<description>old lamp</description></item>"
    "<item><name>vase</name><description>blue vase</description></item>"
    "</region></regions>"
    "<people><person><name>alice</name></person>"
    "<person><name>bob</name></person></people></site>";

TEST(QueryServiceTest, ExecutesAndMatchesFacade) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 2});

  QueryRequest request;
  request.xpath = "/site/regions//item/name";
  request.options.engine = Engine::kRelational;
  Result<QueryResult> via_service = service.Submit(request).get();
  ASSERT_TRUE(via_service.ok()) << via_service.status().ToString();

  Result<QueryResult> via_facade =
      sys.Execute(request.xpath, request.options.translator, Engine::kRelational);
  ASSERT_TRUE(via_facade.ok());
  EXPECT_EQ(via_service->starts, via_facade->starts);
  EXPECT_EQ(via_service->stats.elements, via_facade->stats.elements);
}

TEST(QueryServiceTest, PlanCacheHitsOnRepeatAndNormalizedText) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});

  QueryRequest request;
  request.xpath = "/site/people/person/name";
  ASSERT_TRUE(service.Submit(request).get().ok());
  EXPECT_EQ(service.stats().plan_cache_misses, 1u);
  EXPECT_EQ(service.stats().plan_cache_hits, 0u);

  // Same text: hit. Whitespace-decorated text: also a hit.
  ASSERT_TRUE(service.Submit(request).get().ok());
  QueryRequest spaced = request;
  spaced.xpath = "  /site / people/  person /name ";
  ASSERT_TRUE(service.Submit(spaced).get().ok());
  EXPECT_EQ(service.stats().plan_cache_hits, 2u);
  EXPECT_EQ(service.stats().plan_cache_misses, 1u);
  EXPECT_EQ(service.plan_cache().size(), 1u);
}

TEST(QueryServiceTest, BypassFlagSkipsCache) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});

  QueryRequest request;
  request.xpath = "//person/name";
  request.bypass_plan_cache = true;
  ASSERT_TRUE(service.Submit(request).get().ok());
  ASSERT_TRUE(service.Submit(request).get().ok());
  EXPECT_EQ(service.stats().plan_cache_hits, 0u);
  EXPECT_EQ(service.stats().plan_cache_misses, 0u);
  EXPECT_EQ(service.plan_cache().size(), 0u);

  // Non-bypassed requests still populate it.
  request.bypass_plan_cache = false;
  ASSERT_TRUE(service.Submit(request).get().ok());
  EXPECT_EQ(service.plan_cache().size(), 1u);
}

TEST(QueryServiceTest, ParseErrorsCountAsFailed) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});
  Result<QueryResult> bad = service.Submit({.xpath = "not an xpath"}).get();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(QueryServiceTest, SubmitAfterShutdownReturnsError) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});
  service.Shutdown();
  Result<QueryResult> refused =
      service.Submit({.xpath = "//person/name"}).get();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST(QueryServiceTest, OwnsSystemViaFromXml) {
  Result<std::unique_ptr<QueryService>> service = QueryService::FromXml(kDoc);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  Result<QueryResult> result =
      (*service)->Submit({.xpath = "//item/name"}).get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->starts.size(), 2u);
}

// --------------------------------------------------------- concurrency ---

/// N worker threads x M client threads x the auction query suite must
/// produce byte-identical results to the single-threaded engines, and the
/// per-query stats must attribute exactly this query's storage accesses.
TEST(QueryServiceConcurrencyTest, MatchesSingleThreadedBaselines) {
  GenOptions gen_options;
  Result<BlasSystem> built = BlasSystem::FromEvents(
      [&](SaxHandler* h) { GenerateAuction(gen_options, h); });
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  BlasSystem sys = std::move(built).value();

  std::vector<BenchQuery> suite = Figure10Queries('A');
  for (const BenchQuery& q : XMarkBenchmarkQueries()) suite.push_back(q);

  // Single-threaded baselines, both engines, cold service-free run.
  struct Baseline {
    std::vector<uint32_t> starts;
    uint64_t elements = 0;
  };
  std::map<std::pair<std::string, Engine>, Baseline> expected;
  for (const BenchQuery& q : suite) {
    for (Engine engine : {Engine::kRelational, Engine::kTwig}) {
      Result<QueryResult> r =
          sys.Execute(q.xpath, Translator::kPushUp, engine);
      ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
      expected[{q.xpath, engine}] =
          Baseline{r->starts, r->stats.elements};
    }
  }

  ASSERT_GE(suite.size(), 6u);
  QueryService service(
      &sys, ServiceOptions{.worker_threads = 4,
                           .plan_cache_capacity = suite.size() - 2});

  // 4 client threads, each submitting every query several times with both
  // engines; the small cache forces eviction traffic while queries run.
  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::future<Result<QueryResult>>> futures;
        std::vector<std::pair<std::string, Engine>> keys;
        for (const BenchQuery& q : suite) {
          Engine engine = (c + round) % 2 == 0 ? Engine::kRelational
                                               : Engine::kTwig;
          QueryRequest request;
          request.xpath = q.xpath;
          request.options.engine = engine;
          futures.push_back(service.Submit(std::move(request)));
          keys.emplace_back(q.xpath, engine);
        }
        for (size_t i = 0; i < futures.size(); ++i) {
          Result<QueryResult> r = futures[i].get();
          // .at(): the map is shared across threads and must stay
          // read-only; a missing key should throw, not insert.
          const Baseline& base = expected.at(keys[i]);
          if (!r.ok() || r->starts != base.starts ||
              r->stats.elements != base.elements) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  ServiceStats stats = service.stats();
  uint64_t total = static_cast<uint64_t>(kClients) * kRounds * suite.size();
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.failed, 0u);
  // Cycling suite.size() distinct keys through a cache two entries
  // smaller guarantees eviction traffic; whether any concurrent lookup
  // hits depends on interleaving, so assert hits deterministically with a
  // quiet back-to-back repeat instead.
  EXPECT_GT(stats.plan_cache_evictions, 0u);
  EXPECT_GT(stats.exec.elements, 0u);
  QueryRequest warm;
  warm.xpath = suite.front().xpath;
  ASSERT_TRUE(service.Execute(warm).ok());
  ASSERT_TRUE(service.Execute(warm).ok());
  EXPECT_GT(service.stats().plan_cache_hits, stats.plan_cache_hits);
}

/// Service-wide element roll-up equals the store's own global counter when
/// the service is the only reader (ExecStats aggregation is exact).
TEST(QueryServiceConcurrencyTest, StatsRollUpMatchesStoreCounters) {
  BlasSystem sys = MustBuild(kDoc);
  sys.ResetCounters();
  QueryService service(&sys, ServiceOptions{.worker_threads = 4});

  std::vector<QueryRequest> batch;
  for (int i = 0; i < 40; ++i) {
    QueryRequest request;
    request.xpath = i % 2 == 0 ? "//item/name" : "/site/people/person/name";
    request.options.engine = i % 3 == 0 ? Engine::kTwig : Engine::kRelational;
    batch.push_back(std::move(request));
  }
  for (auto& future : service.SubmitBatch(std::move(batch))) {
    ASSERT_TRUE(future.get().ok());
  }
  EXPECT_EQ(service.stats().exec.elements, sys.store().stats().elements);
  EXPECT_EQ(service.stats().exec.page_fetches,
            sys.store().stats().page_fetches);
}

}  // namespace
}  // namespace blas

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/queries.h"
#include "service/normalize.h"
#include "service/plan_cache.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "tests/test_util.h"

namespace blas {
namespace {

// ----------------------------------------------------------- normalize ---

TEST(NormalizeTest, StripsDecorativeWhitespace) {
  EXPECT_EQ(NormalizeXPath("  / site / regions // item  "),
            "/site/regions//item");
  EXPECT_EQ(NormalizeXPath("/a/b"), NormalizeXPath("  /a  /  b\t\n"));
}

TEST(NormalizeTest, KeepsTokenSeparators) {
  // "and" between two relative paths needs its separating spaces.
  EXPECT_EQ(NormalizeXPath("//a[ b and c ]"), "//a[b and c]");
  EXPECT_EQ(NormalizeXPath("//a[b   and   c]"), "//a[b and c]");
}

TEST(NormalizeTest, PreservesQuotedLiterals) {
  EXPECT_EQ(NormalizeXPath("//a[ b = \"x  y\" ]"), "//a[b=\"x  y\"]");
  EXPECT_EQ(NormalizeXPath("//a[b='  spaced  ']"), "//a[b='  spaced  ']");
}

TEST(NormalizeTest, KeyNormalizesItsInput) {
  EXPECT_EQ(PlanCacheKey(" /a / b ", Translator::kPushUp, false),
            PlanCacheKey("/a/b", Translator::kPushUp, false));
}

TEST(NormalizeTest, KeyIncludesTranslatorAndOptimizerFlag) {
  std::string norm = NormalizeXPath("/a//b");
  EXPECT_NE(PlanCacheKey(norm, Translator::kPushUp, false),
            PlanCacheKey(norm, Translator::kSplit, false));
  EXPECT_NE(PlanCacheKey(norm, Translator::kPushUp, false),
            PlanCacheKey(norm, Translator::kPushUp, true));
}

// ---------------------------------------------------------- plan cache ---

std::shared_ptr<const CachedPlan> DummyPlan() {
  auto plan = std::make_shared<CachedPlan>();
  plan->plan.parts.emplace_back();
  return plan;
}

TEST(PlanCacheTest, HitAndMissAccounting) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Get("k1"), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  auto plan = DummyPlan();
  cache.Put("k1", plan);
  EXPECT_EQ(cache.Get("k1"), plan);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(3);
  cache.Put("a", DummyPlan());
  cache.Put("b", DummyPlan());
  cache.Put("c", DummyPlan());
  // Touch "a" so "b" becomes the LRU entry.
  EXPECT_NE(cache.Get("a"), nullptr);
  cache.Put("d", DummyPlan());  // evicts "b"

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  std::vector<std::string> keys = cache.KeysMruToLru();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "c");  // just touched
  EXPECT_EQ(keys[1], "d");
  EXPECT_EQ(keys[2], "a");
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0);
  cache.Put("a", DummyPlan());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(PlanCacheTest, PutRefreshesExistingKey) {
  PlanCache cache(2);
  auto first = DummyPlan();
  auto second = DummyPlan();
  cache.Put("a", first);
  cache.Put("a", second);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("a"), second);
}

// ---------------------------------------------------------- thread pool ---

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4, 8);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.Submit([&done] { ++done; }));
    }
  }  // destructor drains
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, TrySubmitRespectsQueueBound) {
  // One paused worker plus a full queue: the next TrySubmit must refuse.
  std::atomic<bool> worker_busy{false};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ThreadPool pool(1, 2);
  ASSERT_TRUE(pool.Submit([&worker_busy, gate] {
    worker_busy = true;
    gate.wait();
  }));
  while (!worker_busy) std::this_thread::yield();
  ASSERT_TRUE(pool.TrySubmit([] {}));   // queue slot 1
  ASSERT_TRUE(pool.TrySubmit([] {}));   // queue slot 2
  EXPECT_FALSE(pool.TrySubmit([] {}));  // full
  release.set_value();
  pool.Shutdown();
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2, 4);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

TEST(ThreadPoolTest, WaitIdleSettlesQueuedAndRunningWork) {
  std::atomic<int> done{0};
  ThreadPool pool(3, 64);
  // Tasks that spawn follow-up tasks: WaitIdle must cover work submitted
  // by still-running work, not just the queue it first observed.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&pool, &done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ASSERT_TRUE(pool.Submit([&done] { ++done; }));
      ++done;
    }));
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 40);
  EXPECT_EQ(pool.queue_size(), 0u);

  // Idempotent on an idle pool, and non-blocking after shutdown.
  pool.WaitIdle();
  pool.Shutdown();
  pool.WaitIdle();
}

// -------------------------------------------------------- query service ---

constexpr char kDoc[] =
    "<site><regions><region><item><name>lamp</name>"
    "<description>old lamp</description></item>"
    "<item><name>vase</name><description>blue vase</description></item>"
    "</region></regions>"
    "<people><person><name>alice</name></person>"
    "<person><name>bob</name></person></people></site>";

TEST(QueryServiceTest, ExecutesAndMatchesFacade) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 2});

  QueryRequest request;
  request.xpath = "/site/regions//item/name";
  request.options.engine = Engine::kRelational;
  Result<QueryResult> via_service = service.Submit(request).get();
  ASSERT_TRUE(via_service.ok()) << via_service.status().ToString();

  Result<QueryResult> via_facade =
      sys.Execute(request.xpath, request.options.translator, Engine::kRelational);
  ASSERT_TRUE(via_facade.ok());
  EXPECT_EQ(via_service->starts, via_facade->starts);
  EXPECT_EQ(via_service->stats.elements, via_facade->stats.elements);
}

TEST(QueryServiceTest, PlanCacheHitsOnRepeatAndNormalizedText) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});

  QueryRequest request;
  request.xpath = "/site/people/person/name";
  ASSERT_TRUE(service.Submit(request).get().ok());
  EXPECT_EQ(service.stats().plan_cache_misses, 1u);
  EXPECT_EQ(service.stats().plan_cache_hits, 0u);

  // Same text: hit. Whitespace-decorated text: also a hit.
  ASSERT_TRUE(service.Submit(request).get().ok());
  QueryRequest spaced = request;
  spaced.xpath = "  /site / people/  person /name ";
  ASSERT_TRUE(service.Submit(spaced).get().ok());
  EXPECT_EQ(service.stats().plan_cache_hits, 2u);
  EXPECT_EQ(service.stats().plan_cache_misses, 1u);
  EXPECT_EQ(service.plan_cache().size(), 1u);
}

TEST(QueryServiceTest, BypassFlagSkipsCache) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});

  QueryRequest request;
  request.xpath = "//person/name";
  request.bypass_plan_cache = true;
  ASSERT_TRUE(service.Submit(request).get().ok());
  ASSERT_TRUE(service.Submit(request).get().ok());
  EXPECT_EQ(service.stats().plan_cache_hits, 0u);
  EXPECT_EQ(service.stats().plan_cache_misses, 0u);
  EXPECT_EQ(service.plan_cache().size(), 0u);

  // Non-bypassed requests still populate it.
  request.bypass_plan_cache = false;
  ASSERT_TRUE(service.Submit(request).get().ok());
  EXPECT_EQ(service.plan_cache().size(), 1u);
}

TEST(QueryServiceTest, ParseErrorsCountAsFailed) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});
  Result<QueryResult> bad = service.Submit({.xpath = "not an xpath"}).get();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(QueryServiceTest, SubmitAfterShutdownReturnsError) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});
  service.Shutdown();
  Result<QueryResult> refused =
      service.Submit({.xpath = "//person/name"}).get();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST(QueryServiceTest, OwnsSystemViaFromXml) {
  Result<std::unique_ptr<QueryService>> service = QueryService::FromXml(kDoc);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  Result<QueryResult> result =
      (*service)->Submit({.xpath = "//item/name"}).get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->starts.size(), 2u);
}

// --------------------------------------------------------- concurrency ---

/// N worker threads x M client threads x the auction query suite must
/// produce byte-identical results to the single-threaded engines, and the
/// per-query stats must attribute exactly this query's storage accesses.
TEST(QueryServiceConcurrencyTest, MatchesSingleThreadedBaselines) {
  GenOptions gen_options;
  Result<BlasSystem> built = BlasSystem::FromEvents(
      [&](SaxHandler* h) { GenerateAuction(gen_options, h); });
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  BlasSystem sys = std::move(built).value();

  std::vector<BenchQuery> suite = Figure10Queries('A');
  for (const BenchQuery& q : XMarkBenchmarkQueries()) suite.push_back(q);

  // Single-threaded baselines, both engines, cold service-free run.
  struct Baseline {
    std::vector<uint32_t> starts;
    uint64_t elements = 0;
  };
  std::map<std::pair<std::string, Engine>, Baseline> expected;
  for (const BenchQuery& q : suite) {
    for (Engine engine : {Engine::kRelational, Engine::kTwig}) {
      Result<QueryResult> r =
          sys.Execute(q.xpath, Translator::kPushUp, engine);
      ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
      expected[{q.xpath, engine}] =
          Baseline{r->starts, r->stats.elements};
    }
  }

  ASSERT_GE(suite.size(), 6u);
  QueryService service(
      &sys, ServiceOptions{.worker_threads = 4,
                           .plan_cache_capacity = suite.size() - 2});

  // 4 client threads, each submitting every query several times with both
  // engines; the small cache forces eviction traffic while queries run.
  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::future<Result<QueryResult>>> futures;
        std::vector<std::pair<std::string, Engine>> keys;
        for (const BenchQuery& q : suite) {
          Engine engine = (c + round) % 2 == 0 ? Engine::kRelational
                                               : Engine::kTwig;
          QueryRequest request;
          request.xpath = q.xpath;
          request.options.engine = engine;
          futures.push_back(service.Submit(std::move(request)));
          keys.emplace_back(q.xpath, engine);
        }
        for (size_t i = 0; i < futures.size(); ++i) {
          Result<QueryResult> r = futures[i].get();
          // .at(): the map is shared across threads and must stay
          // read-only; a missing key should throw, not insert.
          const Baseline& base = expected.at(keys[i]);
          if (!r.ok() || r->starts != base.starts ||
              r->stats.elements != base.elements) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  ServiceStats stats = service.stats();
  uint64_t total = static_cast<uint64_t>(kClients) * kRounds * suite.size();
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.failed, 0u);
  // Cycling suite.size() distinct keys through a cache two entries
  // smaller guarantees eviction traffic; whether any concurrent lookup
  // hits depends on interleaving, so assert hits deterministically with a
  // quiet back-to-back repeat instead.
  EXPECT_GT(stats.plan_cache_evictions, 0u);
  EXPECT_GT(stats.exec.elements, 0u);
  QueryRequest warm;
  warm.xpath = suite.front().xpath;
  ASSERT_TRUE(service.Execute(warm).ok());
  ASSERT_TRUE(service.Execute(warm).ok());
  EXPECT_GT(service.stats().plan_cache_hits, stats.plan_cache_hits);
}

/// Service-wide element roll-up equals the store's own global counter when
/// the service is the only reader (ExecStats aggregation is exact).
TEST(QueryServiceConcurrencyTest, StatsRollUpMatchesStoreCounters) {
  BlasSystem sys = MustBuild(kDoc);
  sys.ResetCounters();
  QueryService service(&sys, ServiceOptions{.worker_threads = 4});

  std::vector<QueryRequest> batch;
  for (int i = 0; i < 40; ++i) {
    QueryRequest request;
    request.xpath = i % 2 == 0 ? "//item/name" : "/site/people/person/name";
    request.options.engine = i % 3 == 0 ? Engine::kTwig : Engine::kRelational;
    batch.push_back(std::move(request));
  }
  for (auto& future : service.SubmitBatch(std::move(batch))) {
    ASSERT_TRUE(future.get().ok());
  }
  EXPECT_EQ(service.stats().exec.elements, sys.store().stats().elements);
  EXPECT_EQ(service.stats().exec.page_fetches,
            sys.store().stats().page_fetches);
}

// ------------------------------------------------------- observability ---

/// Statsz()'s exec roll-up must equal the sum of the per-query ExecStats
/// the callers saw — no double count, no leak.
TEST(QueryServiceObsTest, StatszCountersMatchPerQueryExecStatsSums) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 2});

  ExecStats sum;
  uint64_t completed = 0;
  for (int i = 0; i < 12; ++i) {
    QueryRequest request;
    request.xpath = i % 2 == 0 ? "//item/name" : "//person/name";
    Result<QueryResult> result = service.Execute(request);
    ASSERT_TRUE(result.ok());
    sum.elements += result->stats.elements;
    sum.page_fetches += result->stats.page_fetches;
    sum.output_rows += result->stats.output_rows;
    ++completed;
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.exec.elements, sum.elements);
  EXPECT_EQ(stats.exec.page_fetches, sum.page_fetches);
  EXPECT_EQ(stats.exec.output_rows, sum.output_rows);

  // The latency histogram saw exactly one sample per completed query.
  const obs::Histogram* latency =
      service.metrics().GetHistogram("blas_query_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), completed);

  // Both exporters carry the same numbers.
  const std::string json = service.Statsz();
  EXPECT_NE(json.find("\"completed\":" + std::to_string(completed)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"exec_elements\":" + std::to_string(sum.elements)),
            std::string::npos)
      << json;
  const std::string prom = service.StatszPrometheus();
  EXPECT_NE(prom.find("blas_service_completed " + std::to_string(completed)),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("blas_query_latency_ns_bucket"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("blas_query_latency_ns_count " +
                      std::to_string(completed)),
            std::string::npos)
      << prom;
}

/// QueryOptions::trace yields the full stage span tree on a cold plan:
/// plan_cache(miss) -> parse -> translate -> optimize -> execute -> drain.
TEST(QueryServiceObsTest, ExplicitTraceYieldsStageSpans) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});

  QueryRequest request;
  request.xpath = "//item/name";
  request.options.trace = true;
  Result<QueryResult> result = service.Execute(request);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(result->trace->label, NormalizeXPath(request.xpath));
  EXPECT_GT(result->trace->total_ns, 0u);

  std::map<std::string, const obs::TraceSpan*> by_name;
  for (const obs::TraceSpan& span : result->trace->spans) {
    by_name[span.name] = &span;
  }
  for (const char* stage :
       {"plan_cache", "parse", "translate", "optimize", "execute", "drain"}) {
    ASSERT_TRUE(by_name.count(stage)) << "missing span " << stage << "\n"
                                      << result->trace->Render();
  }
  EXPECT_EQ(by_name["plan_cache"]->note, "miss");
  // Stages run in order.
  EXPECT_LE(by_name["parse"]->start_ns, by_name["translate"]->start_ns);
  EXPECT_LE(by_name["translate"]->start_ns, by_name["optimize"]->start_ns);
  EXPECT_LE(by_name["optimize"]->start_ns, by_name["execute"]->start_ns);
  EXPECT_LE(by_name["execute"]->start_ns, by_name["drain"]->start_ns);
  // The engine ran during execute: its counter delta is attributed there.
  EXPECT_GT(by_name["execute"]->elements, 0u);

  // Warm plan: the cache hit skips parse/translate/optimize entirely.
  Result<QueryResult> warm = service.Execute(request);
  ASSERT_TRUE(warm.ok());
  ASSERT_NE(warm->trace, nullptr);
  bool saw_parse = false;
  for (const obs::TraceSpan& span : warm->trace->spans) {
    if (span.name == "parse") saw_parse = true;
    if (span.name == "plan_cache") EXPECT_EQ(span.note, "hit");
  }
  EXPECT_FALSE(saw_parse);

  // Both traces landed in the ring, oldest first.
  auto recent = service.recent_traces();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0], result->trace);
  EXPECT_EQ(recent[1], warm->trace);
}

/// Sampling traces every query without the per-request flag, and the ring
/// stays bounded.
TEST(QueryServiceObsTest, SampledTracesStayInBoundedRing) {
  BlasSystem sys = MustBuild(kDoc);
  ServiceOptions options;
  options.worker_threads = 1;
  options.trace_sample_every = 1;
  options.trace_ring_capacity = 3;
  QueryService service(&sys, options);

  for (int i = 0; i < 7; ++i) {
    QueryRequest request;
    request.xpath = "//person/name";
    ASSERT_TRUE(service.Execute(request).ok());
  }
  EXPECT_EQ(service.recent_traces().size(), 3u);
  EXPECT_EQ(service.trace_ring().total_pushed(), 7u);
}

TEST(QueryServiceObsTest, SlowQueryLogCapturesBreakdown) {
  BlasSystem sys = MustBuild(kDoc);
  ServiceOptions options;
  options.worker_threads = 1;
  // Every query is "slow" at a 0+ threshold, so one completed query must
  // produce one entry.
  options.slow_query_millis = 1e-9;
  options.slow_query_log_capacity = 2;
  QueryService service(&sys, options);

  QueryRequest request;
  request.xpath = "  //item/name  ";
  request.options.trace = true;
  ASSERT_TRUE(service.Execute(request).ok());
  auto entries = service.slow_query_log().Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].query, "//item/name");  // normalized
  EXPECT_GT(entries[0].output_rows, 0u);
  ASSERT_NE(entries[0].trace, nullptr);
  EXPECT_NE(entries[0].ToString().find("translate"), std::string::npos);

  // The ring stays bounded.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Execute(request).ok());
  }
  EXPECT_EQ(service.slow_query_log().Entries().size(), 2u);
  EXPECT_EQ(service.slow_query_log().total_recorded(), 6u);
}

/// The offset satellite: matches consumed by `offset` surface in the exec
/// roll-up instead of vanishing.
TEST(QueryServiceObsTest, OffsetSkippedReachesRollup) {
  BlasSystem sys = MustBuild(kDoc);
  QueryService service(&sys, ServiceOptions{.worker_threads = 1});

  QueryRequest request;
  request.xpath = "//person/name";  // two matches
  request.options.offset = 1;
  Result<QueryResult> result = service.Execute(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->offset_skipped, 1u);
  EXPECT_EQ(service.stats().exec.offset_skipped, 1u);
}

/// Collection queries report scatter accounting (docs_executed) and
/// feed the collection latency histogram.
TEST(QueryServiceObsTest, CollectionQueryRecordsScatterStats) {
  BlasCollection coll;
  ASSERT_TRUE(coll.AddXml("a", kDoc).ok());
  ASSERT_TRUE(coll.AddXml("b", kDoc).ok());
  QueryService service(&coll, ServiceOptions{.worker_threads = 2});

  QueryRequest request;
  request.xpath = "//item/name";
  request.options.trace = true;
  Result<BlasCollection::CollectionResult> result =
      service.ExecuteCollection(request);
  ASSERT_TRUE(result.ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.docs_executed, 2u);
  EXPECT_EQ(stats.docs_cancelled, 0u);
  const obs::Histogram* latency =
      service.metrics().GetHistogram("blas_collection_query_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 1u);

  // The trace carries one open_doc span per scattered document plus the
  // gather-side merge span.
  auto recent = service.recent_traces();
  ASSERT_EQ(recent.size(), 1u);
  size_t open_docs = 0;
  bool merged = false;
  for (const obs::TraceSpan& span : recent[0]->spans) {
    if (span.name == "open_doc") ++open_docs;
    if (span.name == "merge") merged = true;
  }
  EXPECT_EQ(open_docs, 2u);
  EXPECT_TRUE(merged);
}

}  // namespace
}  // namespace blas

#include <gtest/gtest.h>

#include "blas/blas.h"
#include "gen/generator.h"
#include "gen/queries.h"
#include "xml/dom.h"
#include "xml/xml_writer.h"

namespace blas {
namespace {

struct CorpusCase {
  char key;
  const char* name;
  void (*gen)(const GenOptions&, SaxHandler*);
  // Figure-12 targets.
  size_t paper_nodes;
  size_t paper_tags;
  int paper_depth;
};

const CorpusCase kCases[] = {
    {'S', "Shakespeare", GenerateShakespeare, 31975, 19, 7},
    {'P', "Protein", GenerateProtein, 113831, 66, 7},
    {'A', "Auction", GenerateAuction, 61890, 77, 12},
};

class CorpusTest : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CorpusTest, MatchesFigure12Characteristics) {
  const CorpusCase& c = GetParam();
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [&](SaxHandler* h) { c.gen(GenOptions{}, h); });
  ASSERT_TRUE(sys.ok());
  BlasSystem::DocStats s = sys->doc_stats();
  // Node count within 15% of the paper's value.
  EXPECT_GT(s.nodes, c.paper_nodes * 85 / 100) << c.name;
  EXPECT_LT(s.nodes, c.paper_nodes * 115 / 100) << c.name;
  // Tag alphabet within 5 of the paper's.
  EXPECT_NEAR(static_cast<double>(s.tags),
              static_cast<double>(c.paper_tags), 5.0)
      << c.name;
  EXPECT_EQ(s.depth, c.paper_depth) << c.name;
}

TEST_P(CorpusTest, DeterministicAcrossRuns) {
  const CorpusCase& c = GetParam();
  XmlTextSink a;
  XmlTextSink b;
  GenOptions small;
  c.gen(small, &a);
  c.gen(small, &b);
  EXPECT_EQ(a.text(), b.text()) << c.name;
}

TEST_P(CorpusTest, ReplicationScalesNodesLinearly) {
  const CorpusCase& c = GetParam();
  GenOptions one;
  GenOptions three;
  three.replicate = 3;
  Result<BlasSystem> s1 = BlasSystem::FromEvents(
      [&](SaxHandler* h) { c.gen(one, h); });
  Result<BlasSystem> s3 = BlasSystem::FromEvents(
      [&](SaxHandler* h) { c.gen(three, h); });
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s3.ok());
  // replicate=3 triples everything except the shared root element.
  EXPECT_EQ(s3->doc_stats().nodes, (s1->doc_stats().nodes - 1) * 3 + 1)
      << c.name;
  // Depth and alphabet unchanged.
  EXPECT_EQ(s3->doc_stats().depth, s1->doc_stats().depth);
  EXPECT_EQ(s3->doc_stats().tags, s1->doc_stats().tags);
}

TEST_P(CorpusTest, GeneratedTextParses) {
  const CorpusCase& c = GetParam();
  XmlTextSink sink;
  c.gen(GenOptions{}, &sink);
  Result<DomTree> tree = ParseDom(sink.text());
  ASSERT_TRUE(tree.ok()) << c.name << ": " << tree.status();
  // DOM agrees with direct-event indexing.
  Result<BlasSystem> direct = BlasSystem::FromEvents(
      [&](SaxHandler* h) { c.gen(GenOptions{}, h); });
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(tree->node_count(), direct->doc_stats().nodes);
  EXPECT_EQ(tree->max_depth(), direct->doc_stats().depth);
}

TEST_P(CorpusTest, WorkloadQueriesAreNonEmpty) {
  const CorpusCase& c = GetParam();
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [&](SaxHandler* h) { c.gen(GenOptions{}, h); });
  ASSERT_TRUE(sys.ok());
  for (const BenchQuery& q : Figure10Queries(c.key)) {
    Result<QueryResult> r =
        sys->Execute(q.xpath, Translator::kPushUp, Engine::kRelational);
    ASSERT_TRUE(r.ok()) << q.name;
    EXPECT_FALSE(r->starts.empty())
        << q.name << " should select something on " << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpora, CorpusTest, ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(GenTest, XMarkQueriesNonEmptyOnAuction) {
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [](SaxHandler* h) { GenerateAuction(GenOptions{}, h); });
  ASSERT_TRUE(sys.ok());
  for (const BenchQuery& q : XMarkBenchmarkQueries()) {
    Result<QueryResult> r =
        sys->Execute(q.xpath, Translator::kPushUp, Engine::kTwig);
    ASSERT_TRUE(r.ok()) << q.name;
    EXPECT_FALSE(r->starts.empty()) << q.name;
  }
}

TEST(GenTest, AuctionReachesDepth12ViaParlistRecursion) {
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [](SaxHandler* h) { GenerateAuction(GenOptions{}, h); });
  ASSERT_TRUE(sys.ok());
  // The recursive arm must actually occur: listitem inside listitem.
  Result<QueryResult> r = sys->Execute(
      "//listitem//listitem", Translator::kDLabel, Engine::kRelational);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->starts.empty());
}

TEST(GenTest, RandomDocRespectsShapeKnobs) {
  Result<BlasSystem> sys = BlasSystem::FromEvents([](SaxHandler* h) {
    GenerateRandomDoc(/*seed=*/7, /*approx_nodes=*/300, /*num_tags=*/5,
                      /*max_depth=*/6, /*num_values=*/4, h);
  });
  ASSERT_TRUE(sys.ok());
  BlasSystem::DocStats s = sys->doc_stats();
  EXPECT_LE(s.depth, 6);
  EXPECT_GE(s.nodes, 250u);
  // Alphabet: t0..t4 + root + up to 3 attribute names.
  EXPECT_LE(s.tags, 9u);
}

TEST(GenTest, RandomDocSeedsDiffer) {
  XmlTextSink a;
  XmlTextSink b;
  GenerateRandomDoc(1, 200, 5, 6, 4, &a);
  GenerateRandomDoc(2, 200, 5, 6, 4, &b);
  EXPECT_NE(a.text(), b.text());
}

TEST(GenTest, PaperExampleQueryHitsProteinCorpus) {
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [](SaxHandler* h) { GenerateProtein(GenOptions{}, h); });
  ASSERT_TRUE(sys.ok());
  Result<QueryResult> r = sys->Execute(
      PaperExampleQuery(), Translator::kUnfold, Engine::kRelational);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->starts.empty());
}

}  // namespace
}  // namespace blas

// Scatter-gather collection execution: equivalence of the parallel merge
// cursor with the legacy sequential path (matches, order, offset/limit
// accounting), numeric-comparison ground truth against NaiveEval on
// auction data, early-termination cancellation accounting, and the
// QueryService collection front door. Runs under the TSan CI job.

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blas/collection.h"
#include "gen/generator.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "tests/test_util.h"

namespace blas {
namespace {

// ------------------------------------------------------- test corpora ---

/// Eight heterogeneous synthetic documents (distinct seeds, so distinct
/// structure; shared tag alphabet prefix so queries hit several of them).
const BlasCollection& RandomCorpus() {
  static const BlasCollection* corpus = [] {
    auto* coll = new BlasCollection();
    for (int i = 0; i < 8; ++i) {
      Status s = coll->AddEvents(
          "doc" + std::to_string(i),
          [i](SaxHandler* h) {
            GenerateRandomDoc(/*seed=*/1000 + i, /*approx_nodes=*/600,
                              /*num_tags=*/10, /*max_depth=*/6,
                              /*num_values=*/40, h);
          });
      EXPECT_TRUE(s.ok()) << s;
    }
    return coll;
  }();
  return *corpus;
}

struct Budget {
  uint64_t limit;
  uint64_t offset;
};

void ExpectSameResults(const BlasCollection::CollectionResult& a,
                       const BlasCollection::CollectionResult& b,
                       const std::string& context) {
  EXPECT_EQ(a.total_matches, b.total_matches) << context;
  EXPECT_EQ(a.offset_skipped, b.offset_skipped) << context;
  ASSERT_EQ(a.docs.size(), b.docs.size()) << context;
  for (size_t d = 0; d < a.docs.size(); ++d) {
    EXPECT_EQ(a.docs[d].name, b.docs[d].name) << context;
    EXPECT_EQ(a.docs[d].starts, b.docs[d].starts)
        << context << " doc " << a.docs[d].name;
    ASSERT_EQ(a.docs[d].matches.size(), b.docs[d].matches.size()) << context;
    for (size_t m = 0; m < a.docs[d].matches.size(); ++m) {
      EXPECT_EQ(a.docs[d].matches[m].content, b.docs[d].matches[m].content)
          << context;
    }
  }
}

// ------------------------------------------------ parallel ≡ sequential ---

TEST(CollectionParallelTest, DrainMatchesSequentialAcrossPlans) {
  const BlasCollection& coll = RandomCorpus();
  ThreadPool pool(4, 64);
  const char* queries[] = {"//t3", "/root/t1", "//t1//t4", "//t2[t5]/t1",
                           "//t0[t1=\"v7\"]", "//nothere"};
  const Budget budgets[] = {{0, 0}, {7, 0}, {10, 5}, {3, 2}, {0, 4},
                           {1, 0}, {100000, 0}, {5, 100000}};
  for (const char* q : queries) {
    for (Translator t : {Translator::kDLabel, Translator::kPushUp,
                         Translator::kUnfold}) {
      for (Engine e : {Engine::kRelational, Engine::kTwig, Engine::kAuto}) {
        for (const Budget& budget : budgets) {
          QueryOptions options;
          options.translator = t;
          options.engine = e;
          options.limit = budget.limit;
          options.offset = budget.offset;
          std::string context = std::string(q) + " [" + TranslatorName(t) +
                                "/" + EngineName(e) + " limit=" +
                                std::to_string(budget.limit) + " offset=" +
                                std::to_string(budget.offset) + "]";

          Result<BlasCollection::CollectionResult> sequential =
              coll.Execute(q, options);
          ASSERT_TRUE(sequential.ok()) << context << sequential.status();

          Result<CollectionCursor> cursor =
              coll.OpenCursor(q, options, {.pool = &pool});
          ASSERT_TRUE(cursor.ok()) << context;
          Result<BlasCollection::CollectionResult> parallel =
              cursor->Drain();
          ASSERT_TRUE(parallel.ok()) << context << parallel.status();

          ExpectSameResults(*parallel, *sequential, context);
        }
      }
    }
  }
}

TEST(CollectionParallelTest, ProjectionSurvivesTheMerge) {
  const BlasCollection& coll = RandomCorpus();
  ThreadPool pool(4, 64);
  QueryOptions options;
  options.projection = Projection::kValue;
  options.limit = 25;
  Result<BlasCollection::CollectionResult> sequential =
      coll.Execute("//t2", options);
  ASSERT_TRUE(sequential.ok());
  Result<CollectionCursor> cursor =
      coll.OpenCursor("//t2", options, {.pool = &pool});
  ASSERT_TRUE(cursor.ok());
  Result<BlasCollection::CollectionResult> parallel = cursor->Drain();
  ASSERT_TRUE(parallel.ok());
  ExpectSameResults(*parallel, *sequential, "kValue projection");
  ASSERT_FALSE(parallel->docs.empty());
  EXPECT_EQ(parallel->docs[0].matches.size(), parallel->docs[0].starts.size());
}

TEST(CollectionParallelTest, NextStreamsInDocumentNameThenDocOrder) {
  const BlasCollection& coll = RandomCorpus();
  ThreadPool pool(4, 64);
  Result<CollectionCursor> cursor = coll.OpenCursor(
      "//t1", {}, {.pool = &pool, .queue_capacity = 3});  // tiny queues
  ASSERT_TRUE(cursor.ok());
  std::string last_doc;
  uint32_t last_start = 0;
  size_t count = 0;
  while (std::optional<CollectionMatch> m = cursor->Next()) {
    std::string doc(m->document);
    if (doc == last_doc) {
      EXPECT_GT(m->match.start, last_start);  // ascending within document
    } else {
      EXPECT_GT(doc, last_doc);  // documents in name order
    }
    last_doc = doc;
    last_start = m->match.start;
    ++count;
  }
  EXPECT_TRUE(cursor->status().ok());
  Result<BlasCollection::CollectionResult> sequential = coll.Execute("//t1");
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(count, sequential->total_matches);
  EXPECT_EQ(cursor->delivered(), sequential->total_matches);
}

TEST(CollectionParallelTest, SaturatedPoolDegradesToInlineExecution) {
  const BlasCollection& coll = RandomCorpus();
  // A pool that can accept almost nothing: one busy worker, queue of 1.
  ThreadPool pool(1, 1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });
  Result<BlasCollection::CollectionResult> sequential = coll.Execute("//t3");
  ASSERT_TRUE(sequential.ok());
  Result<CollectionCursor> cursor = coll.OpenCursor("//t3", {}, {.pool = &pool});
  ASSERT_TRUE(cursor.ok());
  Result<BlasCollection::CollectionResult> parallel = cursor->Drain();
  ASSERT_TRUE(parallel.ok());
  ExpectSameResults(*parallel, *sequential, "saturated pool");
  release.set_value();
}

TEST(CollectionParallelTest, TranslationFailureAbortsLikeSequential) {
  BlasCollection coll;
  ASSERT_TRUE(coll.AddXml("a", "<r><x>1</x></r>").ok());
  ASSERT_TRUE(coll.AddXml("b", "<r><y><x>2</x></y></r>").ok());
  // Wildcards are Unsupported under Split in every document.
  QueryOptions options;
  options.translator = Translator::kSplit;
  Result<BlasCollection::CollectionResult> sequential =
      coll.Execute("//*", options);
  ASSERT_FALSE(sequential.ok());
  ThreadPool pool(2, 16);
  Result<CollectionCursor> cursor = coll.OpenCursor("//*", options,
                                                    {.pool = &pool});
  ASSERT_TRUE(cursor.ok());  // per-document errors surface at the merge
  Result<BlasCollection::CollectionResult> parallel = cursor->Drain();
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), sequential.status().code());
}

// -------------------------------------- early-termination cancellation ---

TEST(CollectionParallelTest, LimitCancelsUnstartedDocuments) {
  BlasCollection coll;
  for (int i = 0; i < 8; ++i) {
    std::string xml = "<r>";
    for (int j = 0; j < 20; ++j) xml += "<x>m</x>";
    xml += "</r>";
    ASSERT_TRUE(coll.AddXml("doc" + std::to_string(i), xml).ok());
  }
  // Park the single worker behind a gate so every producer task stays
  // queued: the merge must claim doc0 inline and, once limit matches are
  // delivered, cancel the other seven before they ever start.
  ThreadPool pool(1, 16);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });

  QueryOptions options;
  options.limit = 10;
  Result<CollectionCursor> cursor = coll.OpenCursor("//x", options,
                                                    {.pool = &pool});
  ASSERT_TRUE(cursor.ok());
  Result<BlasCollection::CollectionResult> result = cursor->Drain();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 10u);
  ASSERT_EQ(result->docs.size(), 1u);
  EXPECT_EQ(result->docs[0].name, "doc0");

  CollectionCursor::ScatterStats scatter = cursor->scatter_stats();
  EXPECT_EQ(scatter.docs_total, 8u);
  EXPECT_EQ(scatter.docs_executed, 1u);
  EXPECT_EQ(scatter.docs_cancelled, 7u);
  release.set_value();
}

TEST(CollectionParallelTest, SequentialLimitNeverOpensLaterDocuments) {
  BlasCollection coll;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(coll.AddXml("doc" + std::to_string(i),
                            "<r><x>1</x><x>2</x></r>")
                    .ok());
  }
  QueryOptions options;
  options.limit = 3;
  Result<CollectionCursor> cursor = coll.OpenCursor("//x", options);
  ASSERT_TRUE(cursor.ok());
  Result<BlasCollection::CollectionResult> result = cursor->Drain();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 3u);
  CollectionCursor::ScatterStats scatter = cursor->scatter_stats();
  EXPECT_EQ(scatter.docs_total, 4u);
  EXPECT_EQ(scatter.docs_executed, 2u);   // doc0 (2 matches) + doc1 (1)
  EXPECT_EQ(scatter.docs_cancelled, 2u);  // doc2, doc3 never opened
}

TEST(CollectionParallelTest, AbandonedCursorCancelsProducers) {
  const BlasCollection& coll = RandomCorpus();
  ThreadPool pool(2, 64);
  {
    Result<CollectionCursor> cursor =
        coll.OpenCursor("//t1", {}, {.pool = &pool, .queue_capacity = 2});
    ASSERT_TRUE(cursor.ok());
    // Pull a couple of matches, then drop the cursor mid-stream.
    ASSERT_TRUE(cursor->Next().has_value());
    ASSERT_TRUE(cursor->Next().has_value());
  }
  // Producers must unwind (not deadlock on their full queues); the pool
  // must drain normally.
  pool.Shutdown();
  SUCCEED();
}

TEST(CollectionParallelTest, MoveAssignmentCancelsOverwrittenCursor) {
  const BlasCollection& coll = RandomCorpus();
  ThreadPool pool(2, 64);
  Result<CollectionCursor> a =
      coll.OpenCursor("//t1", {}, {.pool = &pool, .queue_capacity = 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Next().has_value());  // a's producers are live
  Result<CollectionCursor> b =
      coll.OpenCursor("//t2", {}, {.pool = &pool, .queue_capacity = 2});
  ASSERT_TRUE(b.ok());
  *a = std::move(*b);  // must cancel a's old producers, not strand them
  size_t n = 0;
  while (a->Next().has_value()) ++n;  // b's stream drains through a
  Result<BlasCollection::CollectionResult> direct = coll.Execute("//t2");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(n, direct->total_matches);
  // Would deadlock joining workers if the overwritten cursor's producers
  // were left blocked on their full queues.
  pool.Shutdown();
}

// ----------------------------- numeric ground truth vs NaiveEval ---------

TEST(CollectionParallelTest, NumericComparisonsAgreeWithNaiveEvalOnAuction) {
  BlasOptions blas_options;
  blas_options.keep_dom = true;
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [](SaxHandler* h) {
        GenOptions gen;
        GenerateAuction(gen, h);
      },
      blas_options);
  ASSERT_TRUE(sys.ok()) << sys.status();
  // Auction prices ("45.00", "123.00", "9.00"-style mixed widths) order
  // differently as numbers than as strings, so these only pass with
  // XPath 1.0 numeric semantics in every pipeline — including NaiveEval.
  for (const char* q :
       {"//closed_auction[price < \"100\"]/quantity",
        "//closed_auction[price >= \"500.50\"]/date",
        "//bidder[increase <= \"25\"]/date",
        "//open_auction[current > \"99\"]/reserve",
        "//annotation[happiness > \"5\"]/description",
        "//profile[age >= \"65\"]/education"}) {
    ExpectAllAgree(*sys, q);
  }
}

// --------------------------------------- QueryService collection door ---

std::unique_ptr<BlasCollection> MakeServiceCorpus() {
  auto coll = std::make_unique<BlasCollection>();
  for (int i = 0; i < 6; ++i) {
    Status s = coll->AddEvents(
        "doc" + std::to_string(i),
        [i](SaxHandler* h) {
          GenerateRandomDoc(/*seed=*/2000 + i, /*approx_nodes=*/400,
                            /*num_tags=*/8, /*max_depth=*/5,
                            /*num_values=*/30, h);
        });
    EXPECT_TRUE(s.ok()) << s;
  }
  return coll;
}

TEST(CollectionServiceTest, SubmitCollectionMatchesDirectExecution) {
  std::unique_ptr<BlasCollection> coll = MakeServiceCorpus();
  QueryService service(coll.get(), {.worker_threads = 4});
  Result<BlasCollection::CollectionResult> direct = coll->Execute("//t2[t1]");
  ASSERT_TRUE(direct.ok());
  auto future = service.SubmitCollection({.xpath = "//t2[t1]"});
  Result<BlasCollection::CollectionResult> served = future.get();
  ASSERT_TRUE(served.ok()) << served.status();
  ExpectSameResults(*served, *direct, "service collection");
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(CollectionServiceTest, PerDocumentPlansCacheAcrossRequests) {
  std::unique_ptr<BlasCollection> coll = MakeServiceCorpus();
  QueryService service(coll.get(), {.worker_threads = 2});
  QueryRequest request{.xpath = "//t3"};
  ASSERT_TRUE(service.ExecuteCollection(request).ok());
  ServiceStats cold = service.stats();
  EXPECT_EQ(cold.plan_cache_misses, 1u);
  EXPECT_EQ(cold.plan_cache_hits, 0u);
  // One translation per document, none reused yet.
  EXPECT_EQ(cold.doc_plan_misses, coll->size());
  EXPECT_EQ(cold.doc_plan_hits, 0u);

  ASSERT_TRUE(service.ExecuteCollection(request).ok());
  ServiceStats warm = service.stats();
  // The hot query pays one parse (cache hit) and N per-doc cache hits.
  EXPECT_EQ(warm.plan_cache_hits, 1u);
  EXPECT_EQ(warm.doc_plan_misses, coll->size());
  EXPECT_EQ(warm.doc_plan_hits, coll->size());
}

TEST(CollectionServiceTest, StreamingCallbackAndCancellation) {
  std::unique_ptr<BlasCollection> coll = MakeServiceCorpus();
  QueryService service(coll.get(), {.worker_threads = 4});
  std::atomic<uint64_t> seen{0};
  auto all = service.SubmitCollection(
      {.xpath = "//t1"},
      [&seen](const CollectionMatch&) {
        seen.fetch_add(1);
        return true;
      });
  Result<StreamSummary> summary = all.get();
  ASSERT_TRUE(summary.ok()) << summary.status();
  Result<BlasCollection::CollectionResult> direct = coll->Execute("//t1");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(summary->delivered, direct->total_matches);
  EXPECT_EQ(seen.load(), direct->total_matches);
  EXPECT_FALSE(summary->cancelled);

  auto cancelled = service.SubmitCollection(
      {.xpath = "//t1"},
      [](const CollectionMatch&) { return false; });  // stop after first
  Result<StreamSummary> second = cancelled.get();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cancelled);
  EXPECT_EQ(second->delivered, 1u);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(CollectionServiceTest, CursorHandoffPullsOnClientThread) {
  std::unique_ptr<BlasCollection> coll = MakeServiceCorpus();
  QueryService service(coll.get(), {.worker_threads = 2});
  QueryRequest request{.xpath = "//t2"};
  request.options.limit = 5;
  auto future = service.SubmitCollectionCursor(std::move(request));
  Result<CollectionCursor> cursor = future.get();
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  size_t n = 0;
  while (cursor->Next().has_value()) ++n;
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(service.stats().cursors_opened, 1u);
}

TEST(CollectionServiceTest, WrongBackendIsRejected) {
  BlasSystem sys = MustBuild("<r><x>1</x></r>");
  QueryService doc_service(&sys, {.worker_threads = 1});
  Result<BlasCollection::CollectionResult> r =
      doc_service.ExecuteCollection({.xpath = "//x"});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  std::unique_ptr<BlasCollection> coll = MakeServiceCorpus();
  QueryService coll_service(coll.get(), {.worker_threads = 1});
  Result<QueryResult> single = coll_service.Execute({.xpath = "//t1"});
  EXPECT_EQ(single.status().code(), StatusCode::kInvalidArgument);
}

TEST(CollectionServiceTest, ConcurrentCollectionClients) {
  std::unique_ptr<BlasCollection> coll = MakeServiceCorpus();
  QueryService service(coll.get(), {.worker_threads = 4});
  const char* queries[] = {"//t1", "//t2[t1]", "//t3", "//t0//t4"};
  uint64_t expected[4];
  for (int q = 0; q < 4; ++q) {
    Result<BlasCollection::CollectionResult> direct =
        coll->Execute(queries[q]);
    ASSERT_TRUE(direct.ok());
    expected[q] = direct->total_matches;
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 6;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        int q = (c + r) % 4;
        QueryRequest request{.xpath = queries[q]};
        if (r % 2 == 0) request.options.limit = 4;
        auto future = service.SubmitCollection(std::move(request));
        Result<BlasCollection::CollectionResult> result = future.get();
        if (!result.ok()) {
          ++failures;
          continue;
        }
        uint64_t want = expected[q];
        if (r % 2 == 0 && want > 4) want = 4;
        if (result->total_matches != want) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, uint64_t{kClients} * kRounds);
  EXPECT_EQ(stats.completed + stats.failed, uint64_t{kClients} * kRounds);
  EXPECT_EQ(stats.failed, 0u);
}

}  // namespace
}  // namespace blas

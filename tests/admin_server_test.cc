// Tests of the admin HTTP surface (src/server): request framing, every
// standard endpoint's shape over a real loopback socket, the protection
// envelope (connection limit, read deadline, oversized/malformed heads),
// graceful drain on Stop, and concurrent scrapers against a service
// under live ingest churn (the TSan target).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "ingest/live_collection.h"
#include "obs/snapshot.h"
#include "server/admin_handlers.h"
#include "server/admin_server.h"
#include "service/query_service.h"
#include "xml/xml_writer.h"

namespace blas {
namespace server {
namespace {

// ------------------------------------------------- loopback http client ---

/// One parsed response from the blocking test client below.
struct HttpReply {
  bool ok = false;  // transport-level success (status parsed, body read)
  int status = 0;
  std::map<std::string, std::string> headers;  // names lower-cased
  std::string body;
};

int DialAdmin(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one response (status line + headers + Content-Length body).
HttpReply ReadReply(int fd) {
  HttpReply reply;
  std::string buf;
  size_t head_end = std::string::npos;
  char chunk[4096];
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return reply;
    buf.append(chunk, static_cast<size_t>(n));
  }

  std::istringstream head(buf.substr(0, head_end));
  std::string line;
  if (!std::getline(head, line)) return reply;
  if (line.rfind("HTTP/1.1 ", 0) != 0) return reply;
  reply.status = std::atoi(line.c_str() + 9);
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    size_t value_at = colon + 1;
    while (value_at < line.size() && line[value_at] == ' ') ++value_at;
    reply.headers[name] = line.substr(value_at);
  }

  size_t want = 0;
  auto it = reply.headers.find("content-length");
  if (it != reply.headers.end()) {
    want = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  reply.body = buf.substr(head_end + 4);
  while (reply.body.size() < want) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return reply;
    reply.body.append(chunk, static_cast<size_t>(n));
  }
  reply.body.resize(want);
  reply.ok = true;
  return reply;
}

HttpReply Get(int port, const std::string& target,
              const std::string& method = "GET") {
  const int fd = DialAdmin(port);
  HttpReply reply;
  if (fd < 0) return reply;
  if (SendAll(fd, method + " " + target +
                      " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")) {
    reply = ReadReply(fd);
  }
  ::close(fd);
  return reply;
}

// ------------------------------------------------------------- fixtures ---

std::string UniqueDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::string dir = "/tmp/blas_admin_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1));
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveTree(const std::string& dir) {
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

std::string AuctionShard(uint64_t seed) {
  XmlTextSink sink;
  GenOptions gen;
  gen.seed = seed;
  GenerateAuction(gen, &sink);
  return sink.TakeText();
}

/// A live collection + service + admin server, torn down in order.
class AdminStack {
 public:
  explicit AdminStack(const std::string& tag, int docs = 2,
                      ServiceOptions service_options = {})
      : dir_(UniqueDir(tag)) {
    LiveOptions live_options;
    live_options.storage.memory_budget = size_t{16} << 20;
    auto opened = LiveCollection::Open(dir_, live_options);
    EXPECT_TRUE(opened.ok()) << opened.status();
    live_ = std::move(*opened);
    service_ = std::make_unique<QueryService>(live_.get(), service_options);
    for (int i = 0; i < docs; ++i) {
      Status s = service_
                     ->SubmitAddDocument("auction-" + std::to_string(i),
                                         AuctionShard(100 + i))
                     .get();
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  }

  ~AdminStack() {
    if (server_ != nullptr) server_->Stop();
    snapshotter_.reset();
    service_->Shutdown();
    service_.reset();
    live_.reset();
    RemoveTree(dir_);
  }

  /// Installs endpoints (snapshotter under manual control unless told
  /// otherwise) and starts the server on an ephemeral port.
  void Serve(AdminServer::Options server_options = {},
             bool start_snapshotter = false) {
    server_options.port = 0;
    server_ = std::make_unique<AdminServer>(std::move(server_options));
    AdminEndpointsOptions endpoints;
    endpoints.start_snapshotter = start_snapshotter;
    if (start_snapshotter) endpoints.snapshotter.interval_ms = 10;
    snapshotter_ =
        InstallAdminEndpoints(server_.get(), service_.get(), endpoints);
    Status s = server_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_GT(server_->port(), 0);
  }

  void RunQueries(int n) {
    QueryRequest request;
    request.xpath = "//item/name";
    request.options.projection = Projection::kValue;
    for (int i = 0; i < n; ++i) {
      auto result = service_->SubmitCollection(request).get();
      ASSERT_TRUE(result.ok()) << result.status();
    }
  }

  QueryService& service() { return *service_; }
  AdminServer& server() { return *server_; }
  obs::MetricsSnapshotter& snapshotter() { return *snapshotter_; }
  int port() const { return server_->port(); }

 private:
  std::string dir_;
  std::unique_ptr<LiveCollection> live_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<AdminServer> server_;
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter_;
};

}  // namespace
}  // namespace server
}  // namespace blas

// Tests live outside the anonymous namespace per gtest convention.
namespace blas {
namespace server {
namespace {

// --------------------------------------------------------- http parsing ---

TEST(HttpParse, RequestLineAndQuery) {
  auto parsed = ParseHttpRequest(
      "GET /varz?window=10&format=text HTTP/1.1\r\nHost: x\r\n"
      "X-Weird:  padded  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->path, "/varz");
  EXPECT_EQ(parsed->query, "window=10&format=text");
  EXPECT_EQ(parsed->QueryParam("window"), "10");
  EXPECT_EQ(parsed->QueryParam("format"), "text");
  EXPECT_EQ(parsed->QueryParam("missing"), "");
  EXPECT_EQ(parsed->Header("HOST"), "x");
  EXPECT_EQ(parsed->Header("x-weird"), "padded");
  EXPECT_TRUE(parsed->KeepAlive());
}

TEST(HttpParse, RejectsMalformedHeads) {
  const char* bad[] = {
      "NOTHTTP",
      "GET /",                         // no version
      "GET noslash HTTP/1.1",          // target must be absolute path
      "GET / FTP/1.0",                 // not an HTTP version
      "GET / HTTP/1.1\r\nnocolon",     // malformed header
      "GET / HTTP/1.1\r\n: novalue",   // empty header name
      "GET / HTTP/1.1\r\nContent-Length: 3",     // body announced
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked",
  };
  for (const char* head : bad) {
    EXPECT_FALSE(ParseHttpRequest(head).ok()) << head;
  }
}

TEST(HttpParse, KeepAliveSemantics) {
  EXPECT_TRUE(ParseHttpRequest("GET / HTTP/1.1")->KeepAlive());
  EXPECT_FALSE(
      ParseHttpRequest("GET / HTTP/1.1\r\nConnection: close")->KeepAlive());
  EXPECT_FALSE(ParseHttpRequest("GET / HTTP/1.0")->KeepAlive());
  EXPECT_TRUE(ParseHttpRequest("GET / HTTP/1.0\r\nConnection: Keep-Alive")
                  ->KeepAlive());
}

TEST(HttpSerialize, HeadOmitsBodyButKeepsLength) {
  HttpResponse response;
  response.body = "abcde";
  const std::string full =
      SerializeHttpResponse(response, /*head_only=*/false, true);
  const std::string head =
      SerializeHttpResponse(response, /*head_only=*/true, true);
  EXPECT_NE(full.find("Content-Length: 5"), std::string::npos);
  EXPECT_NE(full.find("abcde"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(head.find("abcde"), std::string::npos);
}

// ------------------------------------------------------------ endpoints ---

TEST(AdminEndpoints, EveryStandardEndpointServes) {
  AdminStack stack("endpoints");
  stack.Serve();
  stack.snapshotter().CaptureNow();
  stack.RunQueries(5);
  stack.snapshotter().CaptureNow();
  const int port = stack.port();

  HttpReply health = Get(port, "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  HttpReply varz = Get(port, "/varz");
  ASSERT_TRUE(varz.ok);
  EXPECT_EQ(varz.status, 200);
  EXPECT_EQ(varz.headers["content-type"], "application/json; charset=utf-8");
  EXPECT_EQ(varz.body.rfind("{\"service\":{", 0), 0u) << varz.body;
  EXPECT_NE(varz.body.find("\"windowed\":{"), std::string::npos);
  EXPECT_NE(varz.body.find("\"admin\":{"), std::string::npos);
  EXPECT_NE(varz.body.find("\"blas_service_completed\""), std::string::npos);
  EXPECT_EQ(varz.body.back(), '}');

  HttpReply metrics = Get(port, "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.headers["content-type"],
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("# TYPE blas_service_completed counter"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE blas_query_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("blas_admin_requests_ok"), std::string::npos);

  HttpReply timez = Get(port, "/timez");
  ASSERT_TRUE(timez.ok);
  EXPECT_EQ(timez.status, 200);
  EXPECT_EQ(timez.body.front(), '{');
  EXPECT_NE(timez.body.find("\"10s\":"), std::string::npos);
  EXPECT_NE(timez.body.find("\"60s\":"), std::string::npos);
  EXPECT_NE(timez.body.find("\"300s\":"), std::string::npos);

  HttpReply tracez = Get(port, "/tracez");
  ASSERT_TRUE(tracez.ok);
  EXPECT_EQ(tracez.status, 200);
  EXPECT_EQ(tracez.body.rfind("{\"traces\":[", 0), 0u);
  HttpReply tracez_text = Get(port, "/tracez?format=text");
  ASSERT_TRUE(tracez_text.ok);
  EXPECT_EQ(tracez_text.status, 200);
  EXPECT_NE(tracez_text.body.find("recent trace"), std::string::npos);

  HttpReply slowz = Get(port, "/slowz");
  ASSERT_TRUE(slowz.ok);
  EXPECT_EQ(slowz.status, 200);
  EXPECT_NE(slowz.body.find("\"entries\":["), std::string::npos);

  HttpReply buildz = Get(port, "/buildz");
  ASSERT_TRUE(buildz.ok);
  EXPECT_EQ(buildz.status, 200);
  EXPECT_NE(buildz.body.find("\"compiler\":"), std::string::npos);
  EXPECT_NE(buildz.body.find("\"uptime_seconds\":"), std::string::npos);

  HttpReply index = Get(port, "/");
  ASSERT_TRUE(index.ok);
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/healthz"), std::string::npos);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);

  HttpReply missing = Get(port, "/nope");
  ASSERT_TRUE(missing.ok);
  EXPECT_EQ(missing.status, 404);

  // HEAD: framing headers describe the body, none arrives. ReadReply
  // hits EOF before Content-Length bytes, so only status/headers count.
  HttpReply head = Get(port, "/healthz", "HEAD");
  EXPECT_EQ(head.status, 200);
  EXPECT_EQ(head.headers["content-length"], "3");
  EXPECT_TRUE(head.body.empty());
}

/// Every cumulative `_bucket{le=}` line of `name` in `exposition` must
/// equal the registry's own bucket counts. Returns how many non-empty
/// buckets were checked.
size_t ExpectBucketsMatch(const std::string& exposition,
                          const std::string& name, obs::Histogram* h) {
  EXPECT_NE(h, nullptr) << name;
  if (h == nullptr) return 0;
  const auto dense = h->Snapshot();
  uint64_t cumulative = 0;
  size_t checked = 0;
  for (size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    if (dense[i] == 0) continue;
    cumulative += dense[i];
    char line[160];
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"%llu\"} %llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(
                      obs::Histogram::BucketHi(i) - 1),
                  static_cast<unsigned long long>(cumulative));
    EXPECT_NE(exposition.find(line), std::string::npos) << line;
    ++checked;
  }
  char inf[160];
  std::snprintf(inf, sizeof(inf), "%s_bucket{le=\"+Inf\"} %llu\n",
                name.c_str(), static_cast<unsigned long long>(cumulative));
  EXPECT_NE(exposition.find(inf), std::string::npos) << inf;
  char count[160];
  std::snprintf(count, sizeof(count), "%s_count %llu\n", name.c_str(),
                static_cast<unsigned long long>(h->count()));
  EXPECT_NE(exposition.find(count), std::string::npos) << count;
  EXPECT_EQ(cumulative, h->count()) << name;
  return checked;
}

/// Acceptance: the Prometheus exposition's query-latency bucket counts
/// equal the in-process registry's, bucket for bucket.
TEST(AdminEndpoints, PrometheusBucketsMatchRegistry) {
  AdminStack stack("prom");
  stack.Serve();
  stack.RunQueries(25);

  HttpReply metrics = Get(stack.port(), "/metrics");
  ASSERT_TRUE(metrics.ok);
  ASSERT_EQ(metrics.status, 200);

  // The service is idle after RunQueries, so the registry cannot move
  // between the scrape above and these snapshots. Collection queries
  // record into the collection-latency and parse-stage histograms (the
  // execute stage is single-document only); the single-document latency
  // histogram stays present (and empty) in the exposition.
  obs::MetricsRegistry& registry = stack.service().metrics();
  EXPECT_GT(ExpectBucketsMatch(metrics.body,
                               "blas_collection_query_latency_ns",
                               registry.GetHistogram(
                                   "blas_collection_query_latency_ns")),
            0u);
  EXPECT_GT(ExpectBucketsMatch(metrics.body, "blas_stage_parse_ns",
                               registry.GetHistogram(
                                   "blas_stage_parse_ns")),
            0u);
  ExpectBucketsMatch(metrics.body, "blas_query_latency_ns",
                     registry.GetHistogram("blas_query_latency_ns"));
  EXPECT_NE(metrics.body.find("blas_query_latency_ns_count 0\n"),
            std::string::npos);
}

/// Acceptance: /varz's 10s window reports a queries/s within +-20% of the
/// load actually driven between two snapshots.
TEST(AdminEndpoints, WindowedQpsTracksDrivenLoad) {
  AdminStack stack("windowed");
  stack.Serve();

  stack.snapshotter().CaptureNow();
  const auto t0 = std::chrono::steady_clock::now();
  const int kQueries = 60;
  stack.RunQueries(kQueries);
  // Pad the window so scheduling noise is small relative to the span.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const double driven_span =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stack.snapshotter().CaptureNow();
  const double driven_qps = kQueries / driven_span;

  HttpReply varz = Get(stack.port(), "/varz");
  ASSERT_TRUE(varz.ok);
  const size_t windowed = varz.body.find("\"windowed\":{");
  ASSERT_NE(windowed, std::string::npos);
  const std::string key = "\"blas_service_completed\":";
  const size_t at = varz.body.find(key, windowed);
  ASSERT_NE(at, std::string::npos) << varz.body.substr(windowed, 400);
  const double reported = std::atof(varz.body.c_str() + at + key.size());
  EXPECT_GT(reported, driven_qps * 0.8)
      << "driven " << driven_qps << " qps, /varz " << reported;
  EXPECT_LT(reported, driven_qps * 1.2)
      << "driven " << driven_qps << " qps, /varz " << reported;
}

// ------------------------------------------------- protection envelope ---

TEST(AdminServerLimits, MalformedAndOversizedGet400WithoutCrash) {
  AdminStack stack("badreq", /*docs=*/1);
  stack.Serve();
  const int port = stack.port();

  {
    const int fd = DialAdmin(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAll(fd, "NOTHTTP\r\n\r\n"));
    HttpReply reply = ReadReply(fd);
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.status, 400);
    ::close(fd);
  }
  {
    const int fd = DialAdmin(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(
        SendAll(fd, "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"));
    HttpReply reply = ReadReply(fd);
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.status, 400);
    ::close(fd);
  }
  {
    // A head that never terminates and exceeds max_request_bytes.
    const int fd = DialAdmin(port);
    ASSERT_GE(fd, 0);
    std::string huge = "GET / HTTP/1.1\r\n";
    huge += "X-Filler: " + std::string(20000, 'x');
    ASSERT_TRUE(SendAll(fd, huge));
    HttpReply reply = ReadReply(fd);
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.status, 400);
    ::close(fd);
  }
  {
    // Unsupported method: connection stays usable afterwards.
    const int fd = DialAdmin(port);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAll(fd, "DELETE /healthz HTTP/1.1\r\n\r\n"));
    HttpReply reply = ReadReply(fd);
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.status, 405);
    ASSERT_TRUE(SendAll(fd, "GET /healthz HTTP/1.1\r\n\r\n"));
    reply = ReadReply(fd);
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.status, 200);
    ::close(fd);
  }

  // The server survived all of it.
  HttpReply health = Get(port, "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_GE(stack.server().stats().requests_bad, 3u);
}

TEST(AdminServerLimits, ConnectionLimitAnswers503) {
  AdminStack stack("connlimit", /*docs=*/1);
  AdminServer::Options options;
  options.max_connections = 2;
  stack.Serve(options);
  const int port = stack.port();

  // Fill both slots with live keep-alive connections (round-trips prove
  // the server registered them).
  const int a = DialAdmin(port);
  const int b = DialAdmin(port);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_TRUE(SendAll(a, "GET /healthz HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(ReadReply(a).ok);
  ASSERT_TRUE(SendAll(b, "GET /healthz HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(ReadReply(b).ok);

  const int c = DialAdmin(port);
  ASSERT_GE(c, 0);
  HttpReply reply = ReadReply(c);  // 503 arrives unprompted
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 503);
  ::close(c);

  ::close(a);
  ::close(b);
  EXPECT_GE(stack.server().stats().rejected_over_capacity, 1u);
}

TEST(AdminServerLimits, ReadDeadlineAnswers408) {
  AdminStack stack("deadline", /*docs=*/1);
  AdminServer::Options options;
  options.read_deadline_ms = 120;
  stack.Serve(options);

  const int fd = DialAdmin(stack.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /healthz HT"));  // stall mid-request-line
  HttpReply reply = ReadReply(fd);  // blocks until the sweep answers
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 408);
  ::close(fd);

  // A connection that never sends anything is closed silently.
  const int idle = DialAdmin(stack.port());
  ASSERT_GE(idle, 0);
  char byte;
  EXPECT_EQ(::recv(idle, &byte, 1, 0), 0);  // clean EOF, no response
  ::close(idle);
  EXPECT_GE(stack.server().stats().deadline_closes, 2u);
}

TEST(AdminServerLimits, StopDrainsInFlightResponse) {
  AdminStack stack("drain", /*docs=*/1);
  stack.Serve();
  // A response far larger than the socket buffers, so Stop() lands while
  // bytes are still in flight.
  const std::string big(8 << 20, 'z');
  stack.server().RegisterHandler("/big", [&big](const HttpRequest&) {
    HttpResponse response;
    response.body = big;
    return response;
  });

  const int fd = DialAdmin(stack.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(
      SendAll(fd, "GET /big HTTP/1.1\r\nConnection: close\r\n\r\n"));
  // Let the server accept + start writing, then stop it mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([&] { stack.server().Stop(); });
  HttpReply reply = ReadReply(fd);
  stopper.join();
  ::close(fd);
  ASSERT_TRUE(reply.ok) << "drain did not deliver the full response";
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body.size(), big.size());

  // After Stop the port no longer accepts.
  EXPECT_LT(DialAdmin(stack.port()), 0);
}

TEST(AdminServer, EphemeralPortsAreDistinctAndReported) {
  AdminStack one("port_a", /*docs=*/1);
  AdminStack two("port_b", /*docs=*/1);
  one.Serve();
  two.Serve();
  EXPECT_GT(one.port(), 0);
  EXPECT_GT(two.port(), 0);
  EXPECT_NE(one.port(), two.port());
  EXPECT_EQ(Get(one.port(), "/healthz").status, 200);
  EXPECT_EQ(Get(two.port(), "/healthz").status, 200);
}

TEST(AdminServer, PortFromEnv) {
  ::unsetenv("BLAS_ADMIN_PORT");
  EXPECT_EQ(AdminPortFromEnv(8080), 8080);
  ::setenv("BLAS_ADMIN_PORT", "0", 1);
  EXPECT_EQ(AdminPortFromEnv(8080), 0);  // 0 = ephemeral, report via port()
  ::setenv("BLAS_ADMIN_PORT", "9123", 1);
  EXPECT_EQ(AdminPortFromEnv(8080), 9123);
  ::setenv("BLAS_ADMIN_PORT", "notaport", 1);
  EXPECT_EQ(AdminPortFromEnv(8080), 8080);
  ::setenv("BLAS_ADMIN_PORT", "70000", 1);
  EXPECT_EQ(AdminPortFromEnv(8080), 8080);
  ::unsetenv("BLAS_ADMIN_PORT");
}

TEST(AdminServer, StartTwiceFailsAndStopIsIdempotent) {
  AdminStack stack("twice", /*docs=*/1);
  stack.Serve();
  EXPECT_FALSE(stack.server().Start().ok());
  stack.server().Stop();
  stack.server().Stop();  // no-op
}

// ---------------------------------------------- concurrency under churn ---

/// The TSan headline: 8 scrapers hammer every endpoint over keep-alive
/// connections while documents are replaced (epoch churn) and queries
/// run, with the snapshotter capturing throughout.
TEST(AdminConcurrency, ScrapersDuringIngestChurn) {
  ServiceOptions service_options;
  service_options.trace_sample_every = 8;
  AdminStack stack("churn", /*docs=*/2, service_options);
  stack.Serve({}, /*start_snapshotter=*/true);
  const int port = stack.port();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scrapes{0}, failures{0};

  std::thread writer([&] {
    uint64_t round = 0;
    while (!done.load(std::memory_order_acquire)) {
      Status s = stack.service()
                     .SubmitReplaceDocument("auction-" +
                                                std::to_string(round % 2),
                                            AuctionShard(500 + round))
                     .get();
      if (!s.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      ++round;
    }
  });
  std::thread reader([&] {
    QueryRequest request;
    request.xpath = "//item/name";
    request.options.projection = Projection::kValue;
    while (!done.load(std::memory_order_acquire)) {
      auto result = stack.service().SubmitCollection(request).get();
      if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const char* kTargets[] = {"/metrics", "/varz", "/timez", "/tracez",
                            "/slowz"};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 8; ++t) {
    scrapers.emplace_back([&, t] {
      const int fd = DialAdmin(port);
      if (fd < 0) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (int i = 0; i < 25; ++i) {
        const char* target = kTargets[(t + i) % 5];
        if (!SendAll(fd, std::string("GET ") + target +
                             " HTTP/1.1\r\nHost: t\r\n\r\n")) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        HttpReply reply = ReadReply(fd);
        if (!reply.ok || reply.status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      ::close(fd);
    });
  }

  for (std::thread& t : scrapers) t.join();
  done.store(true, std::memory_order_release);
  writer.join();
  reader.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(scrapes.load(), 8u * 25u);
  EXPECT_GT(stack.service().stats().epochs_published, 2u);
}

}  // namespace
}  // namespace server
}  // namespace blas

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/queries.h"
#include "tests/test_util.h"

namespace blas {
namespace {

constexpr char kProteinXml[] = R"(
<ProteinDatabase>
  <ProteinEntry>
    <protein>
      <name>cytochrome c [validated]</name>
      <classification>
        <superfamily>cytochrome c</superfamily>
      </classification>
    </protein>
    <reference>
      <refinfo>
        <authors>
          <author>Evans, M.J.</author>
          <author>Chen, Y.</author>
        </authors>
        <year>2001</year>
        <title>The human somatic cytochrome c gene</title>
      </refinfo>
    </reference>
  </ProteinEntry>
  <ProteinEntry>
    <protein>
      <name>globin beta</name>
      <classification>
        <superfamily>globin</superfamily>
      </classification>
    </protein>
    <reference>
      <refinfo>
        <authors>
          <author>Evans, M.J.</author>
        </authors>
        <year>1999</year>
        <title>Another paper</title>
      </refinfo>
    </reference>
  </ProteinEntry>
</ProteinDatabase>
)";

TEST(IntegrationTest, PaperExampleQueryAllPipelines) {
  BlasSystem sys = MustBuild(kProteinXml);
  ExpectAllAgree(sys, PaperExampleQuery());
}

TEST(IntegrationTest, PaperExampleReturnsTheRightTitle) {
  BlasSystem sys = MustBuild(kProteinXml);
  Result<QueryResult> r = sys.Execute(
      PaperExampleQuery(), Translator::kPushUp, Engine::kRelational);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->starts.size(), 1u);
  // The match must be the title of the first entry (the 2001 cytochrome c
  // reference), not the 1999 one.
  Result<Query> q = ParseXPath(
      "/ProteinDatabase/ProteinEntry/reference/refinfo/title");
  ASSERT_TRUE(q.ok());
  std::vector<const DomNode*> titles = NaiveEval(*q, *sys.dom());
  ASSERT_EQ(titles.size(), 2u);
  EXPECT_EQ(r->starts[0], titles[0]->start);
  EXPECT_EQ(titles[0]->text, "The human somatic cytochrome c gene");
}

TEST(IntegrationTest, SuffixPathQueries) {
  BlasSystem sys = MustBuild(kProteinXml);
  ExpectAllAgree(sys, "/ProteinDatabase/ProteinEntry/protein/name");
  ExpectAllAgree(sys, "//protein/name");
  ExpectAllAgree(sys, "//name");
  ExpectAllAgree(sys, "//classification/superfamily");
  ExpectAllAgree(sys, "/ProteinDatabase");
}

TEST(IntegrationTest, PathQueriesWithInternalDescendant) {
  BlasSystem sys = MustBuild(kProteinXml);
  ExpectAllAgree(sys, "/ProteinDatabase//author");
  ExpectAllAgree(sys, "/ProteinDatabase/ProteinEntry//authors/author");
  ExpectAllAgree(sys, "//ProteinEntry//title");
  ExpectAllAgree(sys, "//reference//author");
}

TEST(IntegrationTest, TreeQueries) {
  BlasSystem sys = MustBuild(kProteinXml);
  ExpectAllAgree(sys,
                 "/ProteinDatabase/ProteinEntry[protein/classification/"
                 "superfamily=\"globin\"]/reference/refinfo/year");
  ExpectAllAgree(sys, "//refinfo[year=\"2001\"]/title");
  ExpectAllAgree(sys, "//ProteinEntry[reference/refinfo[year and title]]"
                      "/protein/name");
}

TEST(IntegrationTest, EmptyResults) {
  BlasSystem sys = MustBuild(kProteinXml);
  ExpectAllAgree(sys, "//nonexistent");
  ExpectAllAgree(sys, "/ProteinEntry");          // not the root tag
  ExpectAllAgree(sys, "//refinfo[year=\"1800\"]/title");
  ExpectAllAgree(sys, "//protein/author");       // wrong parentage
}

TEST(IntegrationTest, RecursiveDocCornerCases) {
  // //a//a/b style queries on recursive data exercise the level guards
  // (DESIGN.md): bare containment would produce false positives here.
  BlasSystem sys = MustBuild(
      "<a><b>x</b><a><b>y</b></a><c><a><b>z</b><a><b>w</b></a></a></c></a>");
  ExpectAllAgree(sys, "//a//a/b");
  ExpectAllAgree(sys, "//a//a//b");
  ExpectAllAgree(sys, "//a/a/b");
  ExpectAllAgree(sys, "/a//a/b");
  ExpectAllAgree(sys, "//a[a/b]/c");
  ExpectAllAgree(sys, "//a[b=\"z\"]//b");
  ExpectAllAgree(sys, "//c//a//b");
}

TEST(IntegrationTest, AttributesAsNodes) {
  BlasSystem sys = MustBuild(
      "<site><item id=\"i1\" featured=\"yes\"><name>x</name></item>"
      "<item id=\"i2\"><name>y</name></item></site>");
  ExpectAllAgree(sys, "/site/item/@id");
  ExpectAllAgree(sys, "//item[@featured]/name");
  ExpectAllAgree(sys, "//item[@featured=\"yes\"]/name");
  ExpectAllAgree(sys, "//@id");
}

TEST(IntegrationTest, WildcardsViaUnfoldAndDLabel) {
  BlasSystem sys = MustBuild(kProteinXml);
  // Split/Push-up refuse wildcards (Unsupported) -> skipped by the helper;
  // Unfold and D-labeling must agree with the oracle.
  ExpectAllAgree(sys, "/ProteinDatabase/ProteinEntry/*/name");
  ExpectAllAgree(sys, "//ProteinEntry/*");
  ExpectAllAgree(sys, "//*[year]/title");
}

TEST(IntegrationTest, GeneratedDatasetsAgreeOnFigure10Queries) {
  struct Case {
    char key;
    void (*gen)(const GenOptions&, SaxHandler*);
  };
  for (const Case& c : {Case{'S', GenerateShakespeare},
                        Case{'P', GenerateProtein},
                        Case{'A', GenerateAuction}}) {
    GenOptions opt;
    opt.scale = 1;
    BlasOptions bopt;
    bopt.keep_dom = true;
    // Small-ish corpora keep the oracle fast.
    Result<BlasSystem> sys = BlasSystem::FromEvents(
        [&](SaxHandler* h) {
          GenOptions small = opt;
          c.gen(small, h);
        },
        bopt);
    ASSERT_TRUE(sys.ok()) << sys.status();
    for (const BenchQuery& q : Figure10Queries(c.key)) {
      ExpectAllAgree(*sys, q.xpath);
    }
  }
}

TEST(IntegrationTest, XMarkQueriesAgree) {
  BlasOptions bopt;
  bopt.keep_dom = true;
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [](SaxHandler* h) { GenerateAuction(GenOptions{}, h); }, bopt);
  ASSERT_TRUE(sys.ok()) << sys.status();
  for (const BenchQuery& q : XMarkBenchmarkQueries()) {
    ExpectAllAgree(*sys, q.xpath);
  }
}

}  // namespace
}  // namespace blas

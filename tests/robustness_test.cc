// Failure-injection / fuzz-style robustness tests: malformed XML, malformed
// XPath and random byte strings must produce Status errors (never crashes),
// and near-miss documents must fail cleanly at the right layer.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"
#include "xml/sax_parser.h"
#include "xpath/parser.h"

namespace blas {
namespace {

/// Generates printable-ish random bytes biased toward XML metacharacters.
std::string RandomBytes(Rng* rng, size_t len) {
  static constexpr char kAlphabet[] =
      "<>/=\"'&;[]() abcdefgzXY0129_-.!?#\t\n";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

class NullHandler : public SaxHandler {
 public:
  void OnStartElement(std::string_view,
                      const std::vector<XmlAttribute>&) override {}
  void OnEndElement(std::string_view) override {}
  void OnText(std::string_view) override {}
};

TEST(RobustnessTest, SaxParserNeverCrashesOnRandomInput) {
  Rng rng(99);
  SaxParser parser;
  NullHandler handler;
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(&rng, rng.Between(0, 200));
    // Must return (either status); the assertion is "no crash/UB".
    Status s = parser.Parse(input, &handler);
    (void)s;
  }
}

TEST(RobustnessTest, SaxParserNeverCrashesOnMutatedValidInput) {
  const std::string valid =
      "<a x=\"1\"><b>text &amp; more</b><c><!-- hi --><d/></c></a>";
  Rng rng(7);
  SaxParser parser;
  NullHandler handler;
  for (int i = 0; i < 500; ++i) {
    std::string mutated = valid;
    int mutations = static_cast<int>(rng.Between(1, 4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.Below(mutated.size());
      switch (rng.Below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Between(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, '<');
      }
      if (mutated.empty()) break;
    }
    Status s = parser.Parse(mutated, &handler);
    (void)s;
  }
}

TEST(RobustnessTest, XPathParserNeverCrashesOnRandomInput) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    std::string input = RandomBytes(&rng, rng.Between(0, 80));
    Result<Query> q = ParseXPath(input);
    if (q.ok()) {
      // Whatever parsed must render and re-parse consistently.
      Result<Query> again = ParseXPath(q->ToString());
      EXPECT_TRUE(again.ok()) << q->ToString();
    }
  }
}

TEST(RobustnessTest, SystemFromInvalidXmlFailsCleanly) {
  for (const char* bad :
       {"", "   ", "<a>", "<a></b>", "plain text", "<a><b></a></b>",
        "<a>&undefined;</a>", "<!DOCTYPE a>"}) {
    Result<BlasSystem> sys = BlasSystem::FromXml(bad);
    EXPECT_FALSE(sys.ok()) << "input: " << bad;
  }
}

TEST(RobustnessTest, ExecuteWithBadQueryFailsCleanly) {
  BlasSystem sys = MustBuild("<a><b/></a>");
  for (const char* bad : {"", "b", "/a[", "//", "/a=\"x", "/a//[b]"}) {
    EXPECT_FALSE(
        sys.Execute(bad, Translator::kSplit, Engine::kRelational).ok())
        << bad;
  }
}

TEST(RobustnessTest, DeepDocumentHitsParserGuard) {
  // 600 nested elements exceed the parser's recursion guard (512).
  std::string open;
  std::string close;
  for (int i = 0; i < 600; ++i) {
    open += "<d>";
    close += "</d>";
  }
  Result<BlasSystem> sys = BlasSystem::FromXml(open + close);
  EXPECT_FALSE(sys.ok());
}

TEST(RobustnessTest, ManyTagsDeepDocExceedsCodecCapacity) {
  // 300 distinct tags, depth 30: (301)^31 >> 2^128 -> CapacityExceeded.
  std::string xml;
  for (int i = 0; i < 270; ++i) {
    xml += "<pad" + std::to_string(i) + "/>";
  }
  std::string open;
  std::string close;
  for (int i = 0; i < 30; ++i) {
    open += "<t" + std::to_string(i) + ">";
    close = "</t" + std::to_string(i) + ">" + close;
  }
  xml = "<root>" + xml + open + close + "</root>";
  Result<BlasSystem> sys = BlasSystem::FromXml(xml);
  ASSERT_FALSE(sys.ok());
  EXPECT_EQ(sys.status().code(), StatusCode::kCapacityExceeded);
}

TEST(RobustnessTest, MismatchedEventReplayDetected) {
  // FromEvents with a non-deterministic source must be caught.
  int call = 0;
  Result<BlasSystem> sys = BlasSystem::FromEvents([&call](SaxHandler* h) {
    ++call;
    h->OnStartElement("a", {});
    if (call > 1) {
      h->OnStartElement("b", {});
      h->OnEndElement("b");
    }
    h->OnEndElement("a");
  });
  EXPECT_FALSE(sys.ok());
}

TEST(RobustnessTest, HugeValuesAndNamesSurvive) {
  std::string big_value(100000, 'x');
  std::string xml = "<a><b>" + big_value + "</b><b attr=\"" + big_value +
                    "\"/></a>";
  BlasSystem sys = MustBuild(xml);
  Result<QueryResult> r = sys.Execute("//b=\"" + big_value + "\"",
                                      Translator::kSplit,
                                      Engine::kRelational);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->starts.size(), 1u);
}

}  // namespace
}  // namespace blas

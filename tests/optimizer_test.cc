#include <gtest/gtest.h>

#include "exec/optimizer.h"
#include "gen/generator.h"
#include "tests/test_util.h"

namespace blas {
namespace {

TEST(CostModelTest, ExactCountsForPlabelSelections) {
  BlasSystem sys = MustBuild(
      "<a><b><c/><c/></b><b><c/></b><d><c/></d></a>");
  CostModel model(&sys.summary(), &sys.dict());

  Result<ExecPlan> plan = sys.Plan("//b/c", Translator::kSplit);
  ASSERT_TRUE(plan.ok());
  // //b/c selects exactly 3 instances.
  EXPECT_EQ(model.EstimateCardinality(plan->parts[0]), 3u);

  plan = sys.Plan("/a/d/c", Translator::kSplit);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(model.EstimateCardinality(plan->parts[0]), 1u);
}

TEST(CostModelTest, TagAndFullScans) {
  BlasSystem sys = MustBuild("<a><b/><b/><c><b/></c></a>");
  CostModel model(&sys.summary(), &sys.dict());
  Result<ExecPlan> plan = sys.Plan("//b", Translator::kDLabel);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(model.EstimateCardinality(plan->parts[0]), 3u);
  plan = sys.Plan("//*", Translator::kDLabel);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(model.EstimateCardinality(plan->parts[0]), 5u);
}

TEST(CostModelTest, ValuePredicateSelectivity) {
  BlasSystem sys = MustBuild("<a><b>x</b><b>x</b><b>x</b><b>x</b></a>");
  CostModel model(&sys.summary(), &sys.dict());
  Result<ExecPlan> plan = sys.Plan("//b=\"x\"", Translator::kSplit);
  ASSERT_TRUE(plan.ok());
  uint64_t with_value = model.EstimateCardinality(plan->parts[0]);
  EXPECT_GT(with_value, 0u);
  EXPECT_LT(with_value, 4u);
  // Absent literal: estimate is zero.
  plan = sys.Plan("//b=\"nope\"", Translator::kSplit);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(model.EstimateCardinality(plan->parts[0]), 0u);
}

TEST(OptimizerTest, MovesSelectivePartFirst) {
  // Query with one huge branch (//LINE-like) and one tiny branch: the
  // optimizer must join the tiny one first.
  BlasSystem sys = MustBuild(
      "<r><p><big/><big/><big/><big/><big/><tiny/></p>"
      "<p><big/><big/><big/></p></r>");
  Result<ExecPlan> plan = sys.Plan("//p[big]/tiny", Translator::kSplit);
  ASSERT_TRUE(plan.ok());
  CostModel model(&sys.summary(), &sys.dict());
  ExecPlan optimized = OptimizeJoinOrder(*plan, model);
  ASSERT_EQ(optimized.parts.size(), 3u);
  // Part order: //p (root), then //tiny (1 instance), then //big (8).
  EXPECT_EQ(optimized.parts[1].label, "//tiny");
  EXPECT_EQ(optimized.parts[2].label, "//big");
  // Anchors and return remapped consistently.
  EXPECT_EQ(optimized.parts[1].anchor, 0);
  EXPECT_EQ(optimized.parts[2].anchor, 0);
  EXPECT_EQ(optimized.return_part, 1);
}

TEST(OptimizerTest, PreservesResultsOnRandomQueries) {
  BlasOptions options;
  options.keep_dom = true;
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [](SaxHandler* h) {
        GenerateRandomDoc(/*seed=*/31, /*approx_nodes=*/500, /*num_tags=*/5,
                          /*max_depth=*/8, /*num_values=*/3, h);
      },
      options);
  ASSERT_TRUE(sys.ok());
  ExecOptions opt;
  opt.optimize_join_order = true;
  for (const char* q :
       {"//t0[t1]/t2", "/root/t0[t1/t2][t3]", "//t1[t2=\"v0\"]//t3",
        "//t0//t1//t2", "//t4[t0 and t1]/t2"}) {
    for (Translator t : {Translator::kDLabel, Translator::kSplit,
                         Translator::kPushUp, Translator::kUnfold}) {
      for (Engine e : {Engine::kRelational, Engine::kTwig}) {
        Result<QueryResult> plain = sys->Execute(q, t, e);
        Result<QueryResult> optimized = sys->Execute(q, t, e, opt);
        ASSERT_TRUE(plain.ok());
        ASSERT_TRUE(optimized.ok());
        EXPECT_EQ(plain->starts, optimized->starts)
            << q << " " << TranslatorName(t) << " " << EngineName(e);
      }
    }
  }
}

TEST(OptimizerTest, ReducesIntermediateRows) {
  // Selective branch joined first shrinks materialized rows.
  std::string xml = "<r>";
  for (int i = 0; i < 50; ++i) {
    xml += "<p><big/><big/><big/><big/></p>";
  }
  xml += "<p><big/><tiny/></p></r>";
  BlasSystem sys = MustBuild(xml);
  ExecOptions opt;
  opt.optimize_join_order = true;
  Result<QueryResult> plain = sys.Execute("//p[big]/tiny",
                                          Translator::kSplit,
                                          Engine::kRelational);
  Result<QueryResult> optimized = sys.Execute(
      "//p[big]/tiny", Translator::kSplit, Engine::kRelational, opt);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(plain->starts, optimized->starts);
  EXPECT_LT(optimized->stats.intermediate_rows,
            plain->stats.intermediate_rows);
}

TEST(OptimizerTest, TwoPartPlansUntouched) {
  BlasSystem sys = MustBuild("<a><b><c/></b></a>");
  Result<ExecPlan> plan = sys.Plan("/a//c", Translator::kSplit);
  ASSERT_TRUE(plan.ok());
  CostModel model(&sys.summary(), &sys.dict());
  ExecPlan optimized = OptimizeJoinOrder(*plan, model);
  EXPECT_EQ(optimized.parts.size(), plan->parts.size());
  EXPECT_EQ(optimized.parts[1].label, plan->parts[1].label);
}

}  // namespace
}  // namespace blas

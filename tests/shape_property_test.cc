// Differential tests across structurally extreme document shapes: the
// random-doc suite (property_test.cc) explores average trees; this one
// pins the corner geometries where labeling and join logic are most
// likely to break.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace blas {
namespace {

/// Builds XML text for a named shape.
std::string MakeShape(const std::string& shape, uint64_t seed) {
  Rng rng(seed);
  if (shape == "wide_flat") {
    // One root, thousands of leaf children over a tiny alphabet.
    std::string xml = "<root>";
    for (int i = 0; i < 800; ++i) {
      int t = static_cast<int>(rng.Below(3));
      xml += "<t" + std::to_string(t) + ">v" +
             std::to_string(rng.Below(3)) + "</t" + std::to_string(t) + ">";
    }
    return xml + "</root>";
  }
  if (shape == "deep_narrow") {
    // A single chain alternating two tags, depth ~60.
    std::string open;
    std::string close;
    for (int i = 0; i < 45; ++i) {
      const char* t = (i % 2 == 0) ? "t0" : "t1";
      open += std::string("<") + t + ">";
      close = std::string("</") + t + ">" + close;
    }
    return "<root>" + open + "<t2>v0</t2>" + close + "</root>";
  }
  if (shape == "attr_heavy") {
    std::string xml = "<root>";
    for (int i = 0; i < 150; ++i) {
      xml += "<t0 a0=\"v" + std::to_string(rng.Below(2)) + "\" a1=\"v" +
             std::to_string(rng.Below(2)) + "\"><t1 a0=\"v0\"/></t0>";
    }
    return xml + "</root>";
  }
  // "self_recursive": every tag nests itself.
  std::string xml = "<root>";
  for (int i = 0; i < 40; ++i) {
    int depth = static_cast<int>(rng.Between(1, 6));
    for (int d = 0; d < depth; ++d) xml += "<t0>";
    xml += "<t1>v" + std::to_string(rng.Below(2)) + "</t1>";
    for (int d = 0; d < depth; ++d) xml += "</t0>";
  }
  return xml + "</root>";
}

class ShapeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShapeTest, AllPipelinesMatchOracle) {
  BlasSystem sys = MustBuild(MakeShape(GetParam(), 17));
  const char* queries[] = {
      "//t0",
      "//t0/t1",
      "//t0//t1",
      "//t0//t0/t1",
      "/root/t0",
      "/root//t1=\"v0\"",
      "//t0[t1]",
      "//t0[t1=\"v0\"]//t1",
      "//t0[@a0]",
      "//t0[@a0=\"v1\"]/t1",
      "//t0[t0/t1]",
      "//t1[@a0 and @a0]",
      "//t0[t1 != \"v0\"]",
  };
  for (const char* q : queries) {
    ExpectAllAgree(sys, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeTest,
                         ::testing::Values("wide_flat", "deep_narrow",
                                           "attr_heavy", "self_recursive"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ShapeTest, DeepNarrowSuffixQueriesAcrossTheWholeChain) {
  // Long suffix path queries on the 45-deep chain: exercises the P-label
  // codec with many significant digits. The chain is root/t0/t1/.../t0/t2
  // (45 alternating tags ending on t0), so the suffix ending at t2 reads
  // (backwards) t2, t0, t1, t0, ...
  BlasSystem sys = MustBuild(MakeShape("deep_narrow", 1));
  std::vector<std::string> reversed_steps = {"t2"};
  for (int k = 0; k < 30; ++k) {
    reversed_steps.push_back(k % 2 == 0 ? "t0" : "t1");
    std::string q = "/" + reversed_steps.back();
    for (auto it = reversed_steps.rbegin() + 1; it != reversed_steps.rend();
         ++it) {
      q += "/" + *it;
    }
    ExpectAllAgree(sys, "/" + q);  // "//t?/..../t2"
  }
}

}  // namespace
}  // namespace blas

// Parameterized property sweeps (TEST_P) over configuration grids:
//   * P-label codec invariants across (alphabet size, depth) combinations;
//   * B+-tree bulk-load/seek/scan invariants across record counts;
//   * structural join operators vs brute force on random interval sets.

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/operators.h"
#include "labeling/plabel.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"

namespace blas {
namespace {

// ---------------------------------------------------------------------------
// P-label codec sweep.

class CodecSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodecSweep, RandomPathsRespectContainmentSemantics) {
  const int num_tags = std::get<0>(GetParam());
  const int depth = std::get<1>(GetParam());
  Result<PLabelCodec> codec_r = PLabelCodec::Create(num_tags, depth);
  ASSERT_TRUE(codec_r.ok());
  const PLabelCodec& codec = *codec_r;

  Rng rng(static_cast<uint64_t>(num_tags * 1000 + depth));
  for (int trial = 0; trial < 200; ++trial) {
    // Random absolute node path and random query suffix.
    int node_depth = static_cast<int>(rng.Between(1, depth));
    std::vector<TagId> path;
    for (int i = 0; i < node_depth; ++i) {
      path.push_back(static_cast<TagId>(rng.Between(1, num_tags)));
    }
    PLabel label = codec.RootLabel(path[0]);
    for (size_t i = 1; i < path.size(); ++i) {
      label = codec.ChildLabel(label, path[i]);
    }
    // DecodePath inverts labeling.
    ASSERT_EQ(codec.DecodePath(label), path);

    int qlen = static_cast<int>(rng.Between(1, depth));
    std::vector<TagId> query;
    for (int i = 0; i < qlen; ++i) {
      query.push_back(static_cast<TagId>(rng.Between(1, num_tags)));
    }
    bool is_suffix =
        qlen <= node_depth &&
        std::equal(query.rbegin(), query.rend(), path.rbegin());
    EXPECT_EQ(codec.SuffixInterval(query, false).Contains(label), is_suffix);
    EXPECT_EQ(codec.SuffixInterval(query, true).Contains(label),
              query == path);
  }
}

TEST_P(CodecSweep, SiblingIntervalsNeverOverlap) {
  const int num_tags = std::get<0>(GetParam());
  const int depth = std::get<1>(GetParam());
  Result<PLabelCodec> codec_r = PLabelCodec::Create(num_tags, depth);
  ASSERT_TRUE(codec_r.ok());
  // //ti/t intervals partition //t by the parent tag.
  for (TagId t = 1; t <= static_cast<TagId>(num_tags); ++t) {
    PLabelRange parent = codec_r->SuffixInterval({t}, false);
    PLabelRange prev{};
    bool have_prev = false;
    for (TagId p = 1; p <= static_cast<TagId>(num_tags); ++p) {
      PLabelRange child = codec_r->SuffixInterval({p, t}, false);
      EXPECT_TRUE(parent.ContainsRange(child));
      if (have_prev) EXPECT_FALSE(prev.Overlaps(child));
      prev = child;
      have_prev = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, CodecSweep,
    ::testing::Values(std::make_tuple(2, 4), std::make_tuple(5, 8),
                      std::make_tuple(19, 7), std::make_tuple(77, 12),
                      std::make_tuple(77, 19), std::make_tuple(500, 10)));

// ---------------------------------------------------------------------------
// B+-tree sweep.

struct KvRec {
  uint64_t key;
  uint64_t payload;
};
struct KvKeyOf {
  static uint64_t Get(const KvRec& r) { return r.key; }
};
using KvTree = BPlusTree<KvRec, uint64_t, KvKeyOf>;

class BPlusTreeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BPlusTreeSweep, SeekMatchesLowerBoundEverywhere) {
  const size_t n = GetParam();
  BufferPool pool(1u << 14);
  Rng rng(n);
  std::vector<KvRec> recs;
  recs.reserve(n);
  uint64_t key = 0;
  for (size_t i = 0; i < n; ++i) {
    key += rng.Between(1, 5);  // strictly increasing, irregular gaps
    recs.push_back(KvRec{key, i});
  }
  KvTree tree;
  tree.Build(&pool, recs);
  ASSERT_EQ(tree.size(), n);

  // Probe 500 random keys (plus boundaries) against std::lower_bound.
  std::vector<uint64_t> probes = {0, 1, key, key + 1};
  for (int i = 0; i < 500; ++i) probes.push_back(rng.Below(key + 2));
  for (uint64_t probe : probes) {
    auto expect = std::lower_bound(
        recs.begin(), recs.end(), probe,
        [](const KvRec& r, uint64_t k) { return r.key < k; });
    auto it = tree.Seek(probe);
    if (expect == recs.end()) {
      EXPECT_TRUE(it.at_end()) << probe;
    } else {
      ASSERT_FALSE(it.at_end()) << probe;
      EXPECT_EQ(it->key, expect->key) << probe;
      EXPECT_EQ(it->payload, expect->payload) << probe;
    }
  }

  // Full in-order traversal.
  size_t count = 0;
  for (auto it = tree.Begin(); !it.at_end(); ++it) {
    ASSERT_EQ(it->payload, count);
    ++count;
  }
  EXPECT_EQ(count, n);

  // Uncounted export sees the same data.
  size_t exported = 0;
  tree.ForEachRecord([&](const KvRec& r) {
    EXPECT_EQ(r.payload, exported);
    ++exported;
  });
  EXPECT_EQ(exported, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BPlusTreeSweep,
                         ::testing::Values(1, 2, 169, 170, 171, 1000,
                                           28900, 200000));

// ---------------------------------------------------------------------------
// Structural join sweep vs brute force.

class JoinSweep : public ::testing::TestWithParam<uint64_t> {};

/// Generates a random forest of properly nested intervals as NodeRecords.
std::vector<NodeRecord> RandomForest(Rng* rng, int target) {
  std::vector<NodeRecord> out;
  uint32_t pos = 1;
  // Recursive nesting with random fanout.
  auto emit = [&](auto&& self, int level, int* budget) -> void {
    if (*budget <= 0) return;
    NodeRecord rec;
    rec.level = level;
    rec.start = pos++;
    rec.plabel = static_cast<PLabel>(rng->Below(5));
    --*budget;
    while (*budget > 0 && rng->Percent(55) && level < 12) {
      self(self, level + 1, budget);
    }
    rec.end = pos++;
    rec.data = kNullData;
    out.push_back(rec);
  };
  int budget = target;
  while (budget > 0) emit(emit, 1, &budget);
  std::sort(out.begin(), out.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return a.start < b.start;
            });
  return out;
}

TEST_P(JoinSweep, SweepsMatchBruteForce) {
  Rng rng(GetParam());
  std::vector<NodeRecord> nodes = RandomForest(&rng, 120);
  // Anchors = random subset; descendants = another random subset.
  std::vector<NodeRecord> anchors;
  std::vector<NodeRecord> descs;
  for (const NodeRecord& r : nodes) {
    if (rng.Percent(40)) anchors.push_back(r);
    if (rng.Percent(50)) descs.push_back(r);
  }

  for (auto kind : {PlanPart::Join::kContain, PlanPart::Join::kContainMin,
                    PlanPart::Join::kContainExact}) {
    JoinPred pred{kind, 2, nullptr};
    auto matches = [&](const NodeRecord& a, const NodeRecord& d) {
      if (!(a.start < d.start && a.end > d.end)) return false;
      return pred.LevelOk(a.dlabel(), d);
    };

    // SemiMarkAnchors vs brute force.
    std::vector<char> got = SemiMarkAnchors(anchors, descs, {}, pred);
    for (size_t i = 0; i < anchors.size(); ++i) {
      bool expect = false;
      for (const NodeRecord& d : descs) {
        if (matches(anchors[i], d)) expect = true;
      }
      ASSERT_EQ(static_cast<bool>(got[i]), expect) << "anchor " << i;
    }

    // SemiMarkDescs vs brute force.
    got = SemiMarkDescs(anchors, {}, descs, pred);
    for (size_t j = 0; j < descs.size(); ++j) {
      bool expect = false;
      for (const NodeRecord& a : anchors) {
        if (matches(a, descs[j])) expect = true;
      }
      ASSERT_EQ(static_cast<bool>(got[j]), expect) << "desc " << j;
    }

    // StructuralJoinRows vs brute-force pair count.
    std::vector<Row> rows;
    for (const NodeRecord& a : anchors) rows.push_back(Row{a.dlabel()});
    size_t expect_pairs = 0;
    for (const NodeRecord& a : anchors) {
      for (const NodeRecord& d : descs) {
        if (matches(a, d)) ++expect_pairs;
      }
    }
    EXPECT_EQ(StructuralJoinRows(rows, 0, descs, pred).size(), expect_pairs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinSweep,
                         ::testing::Range<uint64_t>(100, 112));

}  // namespace
}  // namespace blas

#include <gtest/gtest.h>

#include "labeling/labeler.h"
#include "schema/path_summary.h"
#include "xml/sax_parser.h"

namespace blas {
namespace {

/// Builds a path summary (plus registry) from XML text.
struct Built {
  TagRegistry reg;
  std::unique_ptr<PLabelCodec> codec;
  PathSummary summary;
};

Built BuildSummary(const std::string& xml) {
  Built b;
  TagCollector collector(&b.reg);
  SaxParser parser;
  EXPECT_TRUE(parser.Parse(xml, &collector).ok());
  b.reg.Freeze();
  Result<PLabelCodec> codec =
      PLabelCodec::Create(b.reg.size(), collector.max_depth());
  EXPECT_TRUE(codec.ok());
  b.codec = std::make_unique<PLabelCodec>(std::move(codec).value());
  Labeler labeler(b.reg, *b.codec);
  EXPECT_TRUE(parser.Parse(xml, &labeler).ok());
  EXPECT_TRUE(labeler.status().ok());
  b.summary = labeler.TakeSummary();
  return b;
}

std::vector<std::string> PathsOf(const Built& b,
                                 const std::vector<const SummaryNode*>& ns) {
  std::vector<std::string> out;
  for (const SummaryNode* n : ns) {
    out.push_back(b.summary.PathString(n, b.reg));
  }
  return out;
}

SummaryStep Step(const Built& b, bool desc, const std::string& tag) {
  SummaryStep s;
  s.descendant = desc;
  if (tag != "*") s.tag = *b.reg.Find(tag);
  return s;
}

TEST(PathSummaryTest, CountsAndStructure) {
  Built b = BuildSummary("<a><b><c/></b><b><c/><d/></b></a>");
  EXPECT_EQ(b.summary.path_count(), 4u);  // /a /a/b /a/b/c /a/b/d
  const SummaryNode* a = b.summary.root()->children[0].get();
  EXPECT_EQ(a->count, 1u);
  const SummaryNode* ab = a->children[0].get();
  EXPECT_EQ(ab->count, 2u);
  EXPECT_EQ(ab->depth, 2);
  EXPECT_EQ(ab->PathTags().size(), 2u);
}

TEST(PathSummaryTest, ExpandAbsolute) {
  Built b = BuildSummary("<a><b><c/></b><d><c/></d></a>");
  auto nodes = b.summary.Expand(
      {Step(b, false, "a"), Step(b, false, "b"), Step(b, false, "c")});
  EXPECT_EQ(PathsOf(b, nodes), (std::vector<std::string>{"/a/b/c"}));
}

TEST(PathSummaryTest, ExpandDescendant) {
  Built b = BuildSummary("<a><b><c/></b><d><c/></d><c/></a>");
  auto nodes = b.summary.Expand({Step(b, true, "c")});
  EXPECT_EQ(nodes.size(), 3u);
  nodes = b.summary.Expand({Step(b, false, "a"), Step(b, true, "c")});
  EXPECT_EQ(nodes.size(), 3u);
}

TEST(PathSummaryTest, ExpandInternalDescendant) {
  Built b = BuildSummary(
      "<a><b><x><c/></x></b><b><c/></b><z><c/></z></a>");
  // /a/b//c: matches /a/b/x/c and /a/b/c but not /a/z/c.
  auto nodes = b.summary.Expand(
      {Step(b, false, "a"), Step(b, false, "b"), Step(b, true, "c")});
  EXPECT_EQ(PathsOf(b, nodes),
            (std::vector<std::string>{"/a/b/c", "/a/b/x/c"}));
}

TEST(PathSummaryTest, ExpandWildcard) {
  Built b = BuildSummary("<a><b><c/></b><d><c/></d></a>");
  auto nodes = b.summary.Expand(
      {Step(b, false, "a"), Step(b, false, "*"), Step(b, false, "c")});
  EXPECT_EQ(PathsOf(b, nodes),
            (std::vector<std::string>{"/a/b/c", "/a/d/c"}));
}

TEST(PathSummaryTest, ExpandRecursivePaths) {
  Built b = BuildSummary(
      "<l><i><l><i/></l></i></l>");
  // //l//i matches i at depth 2 and depth 4 (both alignments).
  auto nodes = b.summary.Expand({Step(b, true, "l"), Step(b, true, "i")});
  EXPECT_EQ(PathsOf(b, nodes),
            (std::vector<std::string>{"/l/i", "/l/i/l/i"}));
}

TEST(PathSummaryTest, ExpandFromBaseNode) {
  Built b = BuildSummary("<a><b><c><b><c/></b></c></b></a>");
  const SummaryNode* a = b.summary.root()->children[0].get();
  const SummaryNode* ab = a->children[0].get();
  // From /a/b, expanding //c finds /a/b/c and /a/b/c/b/c.
  auto nodes = b.summary.ExpandFrom(ab, {Step(b, true, "c")});
  EXPECT_EQ(nodes.size(), 2u);
  // Child-axis step from base.
  nodes = b.summary.ExpandFrom(ab, {Step(b, false, "c")});
  EXPECT_EQ(PathsOf(b, nodes), (std::vector<std::string>{"/a/b/c"}));
}

TEST(PathSummaryTest, ExpandNoMatches) {
  Built b = BuildSummary("<a><b/></a>");
  EXPECT_TRUE(b.summary.Expand({Step(b, true, "b"), Step(b, false, "b")})
                  .empty());
  EXPECT_TRUE(b.summary.Expand({}).empty());
}

TEST(PathSummaryTest, PlabelsMatchCodec) {
  Built b = BuildSummary("<a><b><c/></b></a>");
  auto nodes = b.summary.Expand(
      {Step(b, false, "a"), Step(b, false, "b"), Step(b, false, "c")});
  ASSERT_EQ(nodes.size(), 1u);
  std::vector<TagId> tags = {*b.reg.Find("a"), *b.reg.Find("b"),
                             *b.reg.Find("c")};
  EXPECT_EQ(nodes[0]->plabel, b.codec->SuffixInterval(tags, true).lo);
}

}  // namespace
}  // namespace blas

#include <gtest/gtest.h>

#include "blas/blas.h"
#include "gen/queries.h"
#include "tests/test_util.h"
#include "translate/decomposition.h"
#include "translate/sql_render.h"
#include "xpath/parser.h"

namespace blas {
namespace {

Query MustParse(const std::string& text) {
  Result<Query> q = ParseXPath(text);
  EXPECT_TRUE(q.ok()) << q.status();
  if (!q.ok()) std::abort();
  return std::move(q).value();
}

/// Counts query-tree features used by the section 4.2 join bounds:
/// l = number of tags, b = non-descendant outgoing branch edges at
/// branching points, d = descendant axis steps.
struct TreeCounts {
  int tags = 0;
  int branch_child_edges = 0;
  int descendant_edges = 0;
};

void Count(const QueryNode* node, bool is_root, TreeCounts* out) {
  ++out->tags;
  (void)is_root;  // the root's own axis is counted by the caller
  for (const auto& child : node->children) {
    if (child->axis == Axis::kDescendant) {
      ++out->descendant_edges;
    } else if (node->IsBranchingPoint()) {
      ++out->branch_child_edges;
    }
    Count(child.get(), false, out);
  }
}

TreeCounts CountsOf(const Query& q) {
  TreeCounts c;
  if (q.root->axis == Axis::kDescendant) ++c.descendant_edges;
  Count(q.root.get(), true, &c);
  return c;
}

TEST(DecompositionTest, SuffixPathIsOnePart) {
  for (const char* text : {"/a/b/c", "//a/b", "//a"}) {
    Result<Decomposition> d =
        Decompose(MustParse(text), DecomposeMode::kSplit);
    ASSERT_TRUE(d.ok()) << text;
    EXPECT_EQ(d->parts.size(), 1u) << text;
    EXPECT_EQ(d->return_part, 0);
    EXPECT_TRUE(d->parts[0].is_return);
  }
}

TEST(DecompositionTest, DescendantAxisCutsPath) {
  Result<Decomposition> d =
      Decompose(MustParse("/a/b//c/d"), DecomposeMode::kSplit);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->parts.size(), 2u);
  EXPECT_EQ(d->parts[0].PathString(), "/a/b");
  EXPECT_EQ(d->parts[1].PathString(), "//c/d");
  EXPECT_EQ(d->parts[1].anchor, 0);
  EXPECT_EQ(d->parts[1].delta, 2);
  EXPECT_FALSE(d->parts[1].exact);  // descendant cut: level >= anchor + 2
  EXPECT_EQ(d->return_part, 1);
}

TEST(DecompositionTest, SplitVsPushUpPrefixes) {
  Query q = MustParse("/a[x]/b/c");
  Result<Decomposition> split = Decompose(q, DecomposeMode::kSplit);
  Result<Decomposition> push = Decompose(q, DecomposeMode::kPushUp);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(push.ok());
  ASSERT_EQ(split->parts.size(), 3u);
  ASSERT_EQ(push->parts.size(), 3u);
  EXPECT_EQ(split->parts[0].PathString(), "/a");
  EXPECT_EQ(split->parts[1].PathString(), "//x");
  EXPECT_EQ(split->parts[2].PathString(), "//b/c");
  // Push-up carries the full prefix (algorithm 5).
  EXPECT_EQ(push->parts[1].PathString(), "/a/x");
  EXPECT_EQ(push->parts[2].PathString(), "/a/b/c");
  // Both keep the exact level distance of the child-edge cut.
  EXPECT_TRUE(split->parts[2].exact);
  EXPECT_EQ(split->parts[2].delta, 2);
  EXPECT_TRUE(push->parts[2].exact);
  EXPECT_EQ(push->parts[2].delta, 2);
}

TEST(DecompositionTest, PushUpPrefixResetsAtDescendantCut) {
  // After a // cut the pushed prefix restarts (D-elimination runs first).
  Result<Decomposition> d =
      Decompose(MustParse("/a//b[x]/c"), DecomposeMode::kPushUp);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->parts.size(), 4u);
  EXPECT_EQ(d->parts[0].PathString(), "/a");
  EXPECT_EQ(d->parts[1].PathString(), "//b");
  EXPECT_EQ(d->parts[2].PathString(), "//b/x");
  EXPECT_EQ(d->parts[3].PathString(), "//b/c");
}

TEST(DecompositionTest, PaperExampleQ) {
  // Figure 7/8: Q decomposes into /pD/pE, //protein//superfamily...,
  // with Split producing 6 suffix-path parts (Q4, Q5, Q8, Q9, Q2', Q3').
  Result<Decomposition> d =
      Decompose(MustParse(PaperExampleQuery()), DecomposeMode::kSplit);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->parts.size(), 7u);
  EXPECT_EQ(d->parts[0].PathString(), "/ProteinDatabase/ProteinEntry");
  // All parts after the root are anchored, forming 6 D-joins.
  int djoins = 0;
  for (const Part& p : d->parts) {
    if (p.anchor >= 0) ++djoins;
  }
  EXPECT_EQ(djoins, 6);
}

TEST(DecompositionTest, ValuePredicateForcesPartLeaf) {
  Result<Decomposition> d = Decompose(
      MustParse("/a/b=\"v\""), DecomposeMode::kSplit);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->parts.size(), 1u);
  EXPECT_EQ(d->parts[0].value,
            std::optional<ValuePred>(ValuePred{ValueOp::kEq, "v"}));
  // A descendant predicate splits the part.
  d = Decompose(MustParse("/a[//q]/b"), DecomposeMode::kSplit);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->parts.size(), 3u);
}

TEST(DecompositionTest, ReturnNodeWithPredicateBecomesPartLeaf) {
  Result<Decomposition> d =
      Decompose(MustParse("/a/b[c]"), DecomposeMode::kSplit);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->parts.size(), 2u);
  EXPECT_EQ(d->parts[0].PathString(), "/a/b");
  EXPECT_TRUE(d->parts[0].is_return);
  EXPECT_EQ(d->parts[1].PathString(), "//c");
  EXPECT_EQ(d->return_part, 0);
}

TEST(DecompositionTest, WildcardUnsupportedOutsideUnfold) {
  EXPECT_EQ(Decompose(MustParse("/a/*/b"), DecomposeMode::kSplit)
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(Decompose(MustParse("/a/*/b"), DecomposeMode::kPushUp)
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_TRUE(Decompose(MustParse("/a/*/b"), DecomposeMode::kUnfold).ok());
}

TEST(DecompositionTest, UnfoldKeepsDescendantStepsInline) {
  Result<Decomposition> d =
      Decompose(MustParse("/a/b//c[d]/e"), DecomposeMode::kUnfold);
  ASSERT_TRUE(d.ok());
  // No D-elimination: //c stays inside the part; branch at c cuts d and e.
  ASSERT_EQ(d->parts.size(), 3u);
  EXPECT_EQ(d->parts[0].PathString(), "/a/b//c");
  EXPECT_EQ(d->parts[1].PathString(), "/a/b//c/d");
  EXPECT_EQ(d->parts[2].PathString(), "/a/b//c/e");
}

/// Section 4.2 claim: for Split/Push-up the number of D-joins is bounded by
/// b + d, and is always less than l - 1 (the D-labeling join count) for
/// queries with at least one multi-step part.
TEST(JoinBoundsTest, SplitJoinsBoundedByBPlusD) {
  std::vector<std::string> texts = {
      PaperExampleQuery(),   "/a/b/c/d/e",      "//a//b//c",
      "/a[b][c]/d",          "/a/b[c/d]/e//f",  "/a[b=\"v\" and c]/d[e]/f"};
  for (const std::string& text : texts) {
    Query q = MustParse(text);
    TreeCounts counts = CountsOf(q);
    for (DecomposeMode mode :
         {DecomposeMode::kSplit, DecomposeMode::kPushUp}) {
      Result<Decomposition> d = Decompose(q, mode);
      ASSERT_TRUE(d.ok()) << text;
      int djoins = static_cast<int>(d->parts.size()) - 1;
      EXPECT_LE(djoins, counts.branch_child_edges + counts.descendant_edges)
          << text;
      EXPECT_LE(djoins, counts.tags - 1) << text;
    }
  }
}

class PlanShapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<BlasSystem>(MustBuild(
        "<a><b><c>x</c><d/></b><b><c>y</c></b><e><b><c>z</c></b></e></a>"));
  }
  std::unique_ptr<BlasSystem> sys_;
};

TEST_F(PlanShapeTest, SuffixPathNeedsNoJoin) {
  Result<ExecPlan> plan = sys_->Plan("/a/b/c", Translator::kSplit);
  ASSERT_TRUE(plan.ok());
  ExecPlan::Shape shape = plan->AnalyzeShape();
  EXPECT_EQ(shape.d_joins, 0);
  EXPECT_EQ(shape.equality_selections, 1);  // absolute simple path
  EXPECT_EQ(shape.range_selections, 0);
}

TEST_F(PlanShapeTest, DLabelUsesLMinusOneJoins) {
  Result<ExecPlan> plan = sys_->Plan("/a/b/c", Translator::kDLabel);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->AnalyzeShape().d_joins, 2);
  EXPECT_EQ(plan->AnalyzeShape().tag_scans, 3);
}

TEST_F(PlanShapeTest, PushUpIsMoreSelectiveThanSplit) {
  // Figure 11's analysis: Split uses range selections where Push-up uses
  // equality selections after the prefix push.
  Result<ExecPlan> split = sys_->Plan("/a/b[d]/c", Translator::kSplit);
  Result<ExecPlan> push = sys_->Plan("/a/b[d]/c", Translator::kPushUp);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(push.ok());
  EXPECT_EQ(split->AnalyzeShape().d_joins, push->AnalyzeShape().d_joins);
  EXPECT_GT(split->AnalyzeShape().range_selections,
            push->AnalyzeShape().range_selections);
  EXPECT_LT(split->AnalyzeShape().equality_selections,
            push->AnalyzeShape().equality_selections);
}

TEST_F(PlanShapeTest, UnfoldRemovesDescendantJoins) {
  Result<ExecPlan> push = sys_->Plan("/a//c", Translator::kPushUp);
  Result<ExecPlan> unfold = sys_->Plan("/a//c", Translator::kUnfold);
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE(unfold.ok());
  EXPECT_EQ(push->AnalyzeShape().d_joins, 1);
  EXPECT_EQ(unfold->AnalyzeShape().d_joins, 0);
  // /a/b/c and /a/e/b/c both exist -> a union of two equality selections.
  EXPECT_EQ(unfold->AnalyzeShape().equality_selections, 2);
}

TEST_F(PlanShapeTest, UnknownTagYieldsEmptyScan) {
  Result<ExecPlan> plan = sys_->Plan("//nope", Translator::kSplit);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->parts.size(), 1u);
  EXPECT_TRUE(plan->parts[0].alts.empty());
}

TEST_F(PlanShapeTest, SqlRenderingMentionsKeyPieces) {
  Result<std::string> sql =
      sys_->ExplainSql("/a/b[d]/c", Translator::kPushUp);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(sql->find("FROM SP T1"), std::string::npos);
  EXPECT_NE(sql->find(".plabel ="), std::string::npos);
  EXPECT_NE(sql->find(".start <"), std::string::npos);
  EXPECT_NE(sql->find(".level ="), std::string::npos);

  Result<std::string> dsql = sys_->ExplainSql("/a/b/c", Translator::kDLabel);
  ASSERT_TRUE(dsql.ok());
  EXPECT_NE(dsql->find("FROM SD T1"), std::string::npos);
  EXPECT_NE(dsql->find(".tag = 'b'"), std::string::npos);

  Result<std::string> alg =
      sys_->ExplainAlgebra("/a/b/c", Translator::kSplit);
  ASSERT_TRUE(alg.ok());
  EXPECT_NE(alg->find("pi_{"), std::string::npos);
  EXPECT_NE(alg->find("sigma_{"), std::string::npos);
}

TEST_F(PlanShapeTest, TranslatorNamesAndDispatch) {
  EXPECT_STREQ(TranslatorName(Translator::kDLabel), "D-labeling");
  EXPECT_STREQ(TranslatorName(Translator::kSplit), "Split");
  EXPECT_STREQ(TranslatorName(Translator::kPushUp), "Push-up");
  EXPECT_STREQ(TranslatorName(Translator::kUnfold), "Unfold");
  for (Translator t : {Translator::kDLabel, Translator::kSplit,
                       Translator::kPushUp, Translator::kUnfold}) {
    EXPECT_TRUE(sys_->Plan("/a/b", t).ok());
  }
}

TEST(TranslateErrorTest, MissingContextPieces) {
  Query q = MustParse("/a/b");
  TranslateContext empty;
  EXPECT_FALSE(TranslateSplit(q, empty).ok());
  EXPECT_FALSE(TranslateDLabel(q, empty).ok());
  TagRegistry reg;
  reg.Intern("a");
  reg.Freeze();
  Result<PLabelCodec> codec = PLabelCodec::Create(1, 4);
  ASSERT_TRUE(codec.ok());
  TranslateContext no_summary;
  no_summary.tags = &reg;
  no_summary.codec = &*codec;
  EXPECT_EQ(TranslateUnfold(q, no_summary).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StripValuePredicatesTest, RemovesValues) {
  std::string stripped = StripValuePredicates(
      "/a[b = \"x\"]/c[d and e=\"y\"]/f='z'");
  EXPECT_EQ(stripped.find('='), std::string::npos);
  EXPECT_EQ(stripped.find('"'), std::string::npos);
  // Structure preserved.
  Result<Query> q = ParseXPath(stripped);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->return_node()->tag, "f");
}

}  // namespace
}  // namespace blas

#ifndef BLAS_TESTS_TEST_UTIL_H_
#define BLAS_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blas/blas.h"
#include "xml/dom.h"
#include "xpath/naive_eval.h"
#include "xpath/parser.h"

namespace blas {

/// Builds a BlasSystem (with DOM retained) from XML text or aborts the test.
inline BlasSystem MustBuild(const std::string& xml) {
  BlasOptions options;
  options.keep_dom = true;
  Result<BlasSystem> sys = BlasSystem::FromXml(xml, options);
  EXPECT_TRUE(sys.ok()) << sys.status().ToString();
  if (!sys.ok()) std::abort();
  return std::move(sys).value();
}

/// Runs `xpath` through every translator and engine and checks each result
/// against the naive DOM evaluator. Translators that legitimately refuse a
/// query (e.g. wildcards under Split) are skipped.
inline void ExpectAllAgree(const BlasSystem& sys, const std::string& xpath) {
  Result<Query> query = ParseXPath(xpath);
  ASSERT_TRUE(query.ok()) << xpath << ": " << query.status().ToString();
  ASSERT_NE(sys.dom(), nullptr) << "build with keep_dom";
  std::vector<uint32_t> expected = NaiveEvalStarts(*query, *sys.dom());

  for (Translator translator :
       {Translator::kDLabel, Translator::kSplit, Translator::kPushUp,
        Translator::kUnfold}) {
    for (Engine engine : {Engine::kRelational, Engine::kTwig}) {
      Result<QueryResult> result = sys.Execute(*query, translator, engine);
      if (!result.ok() &&
          result.status().code() == StatusCode::kUnsupported) {
        continue;
      }
      ASSERT_TRUE(result.ok())
          << xpath << " [" << TranslatorName(translator) << "/"
          << EngineName(engine) << "]: " << result.status().ToString();
      EXPECT_EQ(result->starts, expected)
          << xpath << " [" << TranslatorName(translator) << "/"
          << EngineName(engine) << "] disagrees with NaiveEval";
    }
  }
}

}  // namespace blas

#endif  // BLAS_TESTS_TEST_UTIL_H_

// blas-analyze fixture: every method must produce a blocking-under-lock
// finding (direct syscall, clock read, transitive call, foreign wait).

namespace blas {

class Blocky {
 public:
  void DirectSyscall(int fd) {
    MutexLock lock(mu_);
    fsync(fd);
  }
  void ClockRead() {
    MutexLock lock(mu_);
    last_ = std::chrono::steady_clock::now();
  }
  void TransitiveBlock(int fd) {
    MutexLock lock(mu_);
    Helper(fd);
  }
  void Helper(int fd) {
    fsync(fd);
  }
  void ForeignWait() {
    MutexLock other(other_mu_);
    MutexLock lock(mu_);
    cv_.Wait(lock);
  }

 private:
  Mutex mu_;
  Mutex other_mu_;
  CondVar cv_;
  std::chrono::steady_clock::time_point last_ BLAS_GUARDED_BY(mu_);
};

}  // namespace blas

// blas-analyze fixture: nothing here may produce a blocking-under-lock
// finding.

namespace blas {

class Clean {
 public:
  // I/O after the critical section closed.
  void IoOutsideLock(int fd) {
    {
      MutexLock lock(mu_);
      staged_ = true;
    }
    fsync(fd);
  }
  // Waiting on one's own lock is the normal CondVar protocol.
  void WaitOwnLock() {
    MutexLock lock(mu_);
    while (!staged_) {
      cv_.Wait(lock);
    }
  }
  // The lambda runs later on another thread; the lock is not held there.
  void DeferredWork(int fd, TaskQueue& queue) {
    MutexLock lock(mu_);
    queue.Post([fd]() { fsync(fd); });
  }
  // Clock sampled outside, recorded inside.
  void SampleThenRecord() {
    auto now = std::chrono::steady_clock::now();
    MutexLock lock(mu_);
    staged_ = true;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool staged_ BLAS_GUARDED_BY(mu_) = false;
};

}  // namespace blas

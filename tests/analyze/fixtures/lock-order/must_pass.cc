// blas-analyze fixture: nothing here may produce a lock-order finding.

namespace blas {

// Consistent a-before-b everywhere, matching the declared order.
class Ordered {
 public:
  void First() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
  }
  void Again() {
    MutexLock a(a_mu_);
    Nested();
  }
  void Nested() {
    MutexLock b(b_mu_);
  }

 private:
  Mutex a_mu_ BLAS_ACQUIRED_BEFORE(b_mu_);
  Mutex b_mu_;
};

// TryLock never blocks, so probing "against" the order cannot deadlock
// (this is the FrameBudget cross-shard reclaim pattern).
class Prober {
 public:
  void ForwardOrder() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
  }
  void ProbeBackward() {
    MutexLock b(b_mu_);
    if (a_mu_.TryLock()) {
      a_mu_.Unlock();
    }
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
};

}  // namespace blas

// blas-analyze fixture: must produce lock-order findings (an A/B cycle
// from direct nesting, a call-graph-mediated cycle, and a declared-order
// contradiction).

namespace blas {

class DirectCycle {
 public:
  void First() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
  }
  void Second() {
    MutexLock b(b_mu_);
    MutexLock a(a_mu_);
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
};

class CallMediatedCycle {
 public:
  void Outer() {
    MutexLock g(g_mu_);
    Inner();
  }
  void Inner() {
    MutexLock h(h_mu_);
  }
  void Reversed() {
    MutexLock h(h_mu_);
    MutexLock g(g_mu_);
  }

 private:
  Mutex g_mu_;
  Mutex h_mu_;
};

class DeclaredContradiction {
 public:
  void Do() {
    MutexLock s(state_mu_);
    MutexLock p(publish_mu_);
  }

 private:
  Mutex publish_mu_ BLAS_ACQUIRED_BEFORE(state_mu_);
  Mutex state_mu_;
};

}  // namespace blas

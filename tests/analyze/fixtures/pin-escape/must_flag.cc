// blas-analyze fixture: every function here must produce a pin-escape
// finding. Parsed by the analyzer, never compiled — the vocabulary
// (PageRef, BufferPool, Mutex) only has to look like the real thing.

namespace blas {

struct Holder {
  void StashIntoMember(BufferPool& pool) {
    PageRef ref = pool.Fetch(1);
    view_ = std::string_view(ref->chars(), 8);
  }
  std::string_view view_;
};

std::string_view ReturnEscape(BufferPool& pool) {
  PageRef ref = pool.Fetch(2);
  std::string_view v(ref->chars(), 4);
  return v;
}

void OutlivesPin(BufferPool& pool) {
  std::string_view v;
  {
    PageRef ref = pool.Fetch(3);
    v = std::string_view(ref->chars(), 4);
  }
  Consume(v);
}

void InvalidateWhilePinned(BufferPool& pool) {
  PageRef ref = pool.Fetch(4);
  pool.DropCache();
  Consume(ref->chars());
}

void CaptureEscape(BufferPool& pool, TaskQueue& queue) {
  PageRef ref = pool.Fetch(5);
  queue.Post([ref]() { Consume(ref); });
}

}  // namespace blas

// blas-analyze fixture: nothing here may produce a pin-escape finding.

namespace blas {

// Pin-derived view used strictly within the pin's scope.
void SameScopeUse(BufferPool& pool) {
  PageRef ref = pool.Fetch(1);
  std::string_view v(ref->chars(), 4);
  Consume(v);
}

// Copying bytes out of the page is always safe.
std::string CopyOut(BufferPool& pool) {
  PageRef ref = pool.Fetch(2);
  std::string owned(ref->chars(), 4);
  return owned;
}

// A deliberate eviction exercise, annotated as such.
void MarkedDrop(BufferPool& pool) {
  PageRef ref = pool.Fetch(3);
  // blas-analyze: allow(pin-escape) -- refs survive DropCache by contract
  pool.DropCache();
  Consume(ref->chars());
}

// Moving the PageRef itself transfers the pin; no raw view escapes.
struct Iterator {
  void Advance(BufferPool& pool) {
    leaf_ = pool.Fetch(4);
  }
  PageRef leaf_;
};

}  // namespace blas

// blas-analyze fixture: nothing here may produce a guarded-coverage
// finding — every field is guarded, atomic, const, a sync primitive,
// explicitly allowed, or lives in a class without a Mutex.

namespace blas {

class Covered {
 private:
  Mutex mu_;
  CondVar cv_;
  int value_ BLAS_GUARDED_BY(mu_) = 0;
  std::unique_ptr<int> boxed_ BLAS_PT_GUARDED_BY(mu_);
  std::atomic<int> counter_{0};
  const int limit_ = 5;
  // blas-analyze: allow(guarded-coverage) -- set once before sharing
  int setup_ = 0;
};

// No Mutex member: the class synchronizes elsewhere; not this check's
// business.
struct NoMutex {
  int anything = 0;
};

}  // namespace blas

// blas-analyze fixture: must produce a guarded-coverage finding for the
// unannotated mutable field of a mutex-owning class.

namespace blas {

class Leaky {
 public:
  void Set(int v) {
    MutexLock lock(mu_);
    value_ = v;
  }

 private:
  Mutex mu_;
  int value_;
};

}  // namespace blas

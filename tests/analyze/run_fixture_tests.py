#!/usr/bin/env python3
"""Fixture tests for blas-analyze: each check must flag every function in
its must_flag fixture (proving it is non-vacuous) and stay silent on its
must_pass fixture (proving it does not over-fire). A check that silently
stops matching — a regex drifting from the project vocabulary, a broken
scope walk — fails this suite.

Runs the real CLI end-to-end with the structural frontend so results are
deterministic in every environment.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
ANALYZE = os.path.join(REPO, "tools", "analyze", "blas_analyze.py")

CHECKS = ("pin-escape", "lock-order", "blocking-under-lock",
          "guarded-coverage")

# Non-vacuity floor per must_flag fixture: at least this many distinct
# findings (one per seeded defect would be stricter than the dedupe
# granularity of cycle findings, so lock-order counts cycles).
MIN_FLAGGED = {
    "pin-escape": 5,
    "lock-order": 3,
    "blocking-under-lock": 4,
    "guarded-coverage": 1,
}


def run_analyzer(check: str, fixture_rel: str) -> tuple:
    proc = subprocess.run(
        [sys.executable, ANALYZE, "--frontend=structural", "--no-baseline",
         "--checks", check, "--paths", fixture_rel],
        capture_output=True, text=True, cwd=REPO)
    findings = [line for line in proc.stdout.splitlines()
                if f"[{check}]" in line]
    return proc.returncode, findings, proc.stderr


def main() -> int:
    failures = []
    for check in CHECKS:
        base = os.path.join("tests", "analyze", "fixtures", check)

        rc, findings, err = run_analyzer(check,
                                         os.path.join(base, "must_flag.cc"))
        if rc != 1 or len(findings) < MIN_FLAGGED[check]:
            failures.append(
                f"{check}/must_flag: expected exit 1 with >= "
                f"{MIN_FLAGGED[check]} findings, got exit {rc} with "
                f"{len(findings)}:\n  " + "\n  ".join(findings or ["-"])
                + (f"\n  stderr: {err.strip()}" if err.strip() else ""))
        else:
            print(f"ok: {check}/must_flag ({len(findings)} findings)")

        rc, findings, err = run_analyzer(check,
                                         os.path.join(base, "must_pass.cc"))
        if rc != 0 or findings:
            failures.append(
                f"{check}/must_pass: expected exit 0 with no findings, "
                f"got exit {rc} with {len(findings)}:\n  "
                + "\n  ".join(findings or ["-"])
                + (f"\n  stderr: {err.strip()}" if err.strip() else ""))
        else:
            print(f"ok: {check}/must_pass")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("\nall fixture tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

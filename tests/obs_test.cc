// Tests of the observability layer (src/obs): histogram bucketing and
// percentiles against a sorted-vector oracle, concurrent recording,
// trace span nesting, the slow-query log's threshold and ring bounds,
// and both machine-readable exporters.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace blas {
namespace obs {
namespace {

// ------------------------------------------------------------ histogram ---

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 16; ++v) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_EQ(i, v);
    EXPECT_EQ(Histogram::BucketLo(i), v);
    EXPECT_EQ(Histogram::BucketHi(i), v + 1);
  }
}

TEST(HistogramBuckets, EveryValueLandsInItsBucket) {
  Rng rng(42);
  for (int trial = 0; trial < 10000; ++trial) {
    // Spread samples across the full magnitude range, not just small ints.
    const int shift = static_cast<int>(rng.Next() % 63);
    const uint64_t v = rng.Next() >> shift;
    const size_t i = Histogram::BucketIndex(v);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_GE(v, Histogram::BucketLo(i)) << "value " << v;
    if (Histogram::BucketHi(i) != UINT64_MAX) {
      EXPECT_LT(v, Histogram::BucketHi(i)) << "value " << v;
    }
  }
}

TEST(HistogramBuckets, BoundsAreContiguousAndMonotonic) {
  for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketHi(i), Histogram::BucketLo(i + 1));
    EXPECT_LT(Histogram::BucketLo(i), Histogram::BucketLo(i + 1));
  }
}

TEST(Histogram, CountSumMax) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  ASSERT_NE(h, nullptr);
  h->Record(1);
  h->Record(10);
  h->Record(100);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 111u);
  EXPECT_EQ(h->max_recorded(), 100u);
}

TEST(Histogram, PercentilesMatchSortedVectorOracle) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  Rng rng(7);
  std::vector<uint64_t> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    // Log-uniform latencies from ~100 ns to ~100 ms.
    const double exponent =
        2.0 + 4.0 * static_cast<double>(rng.Below(1000000)) / 1e6;
    samples.push_back(static_cast<uint64_t>(std::pow(10.0, exponent)));
    h->Record(samples.back());
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(samples.size()));
    if (rank < 1) rank = 1;
    const uint64_t oracle = samples[rank - 1];
    const uint64_t estimate = h->ValueAtQuantile(q);
    // One 1/8-octave sub-bucket of error, plus midpoint rounding: 13%.
    EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(oracle),
                0.13 * static_cast<double>(oracle))
        << "q=" << q;
  }
}

TEST(Histogram, EmptyPercentilesAreZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(h->p50(), 0u);
  EXPECT_EQ(h->p999(), 0u);
  EXPECT_EQ(h->count(), 0u);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Sum of 0..N-1.
  const uint64_t n = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h->sum(), n * (n - 1) / 2);
  EXPECT_EQ(h->max_recorded(), n - 1);
}

// ------------------------------------------------------------- registry ---

TEST(MetricsRegistry, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("requests", "help text");
  Counter* c2 = registry.GetCounter("requests");
  EXPECT_EQ(c1, c2);
  c1->Add(3);
  EXPECT_EQ(c2->value(), 3u);
}

TEST(MetricsRegistry, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x"), nullptr);
}

TEST(MetricsRegistry, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("reqs_total", "Requests served")->Add(5);
  registry.GetGauge("depth")->Set(-2);
  Histogram* h = registry.GetHistogram("lat_ns");
  h->Record(3);
  h->Record(3);
  h->Record(20);
  // Bucket 3 holds [3,4) -> le="3"; value 20 lands in [20,22) -> le="21".
  const std::string expected =
      "# TYPE depth gauge\n"
      "depth -2\n"
      "# TYPE lat_ns histogram\n"
      "lat_ns_bucket{le=\"3\"} 2\n"
      "lat_ns_bucket{le=\"21\"} 3\n"
      "lat_ns_bucket{le=\"+Inf\"} 3\n"
      "lat_ns_sum 26\n"
      "lat_ns_count 3\n"
      "# HELP reqs_total Requests served\n"
      "# TYPE reqs_total counter\n"
      "reqs_total 5\n";
  EXPECT_EQ(registry.DumpPrometheus(), expected);
}

TEST(MetricsRegistry, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("hits")->Add(7);
  registry.GetGauge("frames")->Set(12);
  registry.GetHistogram("lat");  // empty histogram still listed
  registry.RegisterCallbackGauge("cb", "", [] { return int64_t{9}; });
  const std::string expected =
      "{\"counters\":{\"hits\":7},"
      "\"gauges\":{\"cb\":9,\"frames\":12},"
      "\"histograms\":{\"lat\":{\"count\":0,\"sum\":0,\"max\":0,"
      "\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0}}}";
  EXPECT_EQ(registry.DumpJson(), expected);
}

TEST(MetricsRegistry, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  for (uint64_t v = 0; v < 10; ++v) h->Record(v);
  const std::string dump = registry.DumpPrometheus();
  // Ten exact buckets, each cumulative count one higher than the last.
  for (uint64_t v = 0; v < 10; ++v) {
    char line[64];
    std::snprintf(line, sizeof(line), "h_bucket{le=\"%llu\"} %llu\n",
                  static_cast<unsigned long long>(v),
                  static_cast<unsigned long long>(v + 1));
    EXPECT_NE(dump.find(line), std::string::npos) << dump;
  }
  EXPECT_NE(dump.find("h_bucket{le=\"+Inf\"} 10\n"), std::string::npos);
}

// ---------------------------------------------------------------- trace ---

TEST(Trace, SpansNestAndOrder) {
  TraceContext context("//item");
  {
    SpanTimer outer(&context, "execute");
    outer.set_note("twig");
    {
      SpanTimer inner(&context, "scan");
      inner.set_counters(100, 4, 1, 1);
    }
    { SpanTimer inner2(&context, "join"); }
  }
  std::shared_ptr<const Trace> trace = context.Finish();
  ASSERT_EQ(trace->spans.size(), 3u);
  // Sorted by start: outer starts first, then its children in order.
  EXPECT_EQ(trace->spans[0].name, "execute");
  EXPECT_EQ(trace->spans[0].depth, 0);
  EXPECT_EQ(trace->spans[0].note, "twig");
  EXPECT_EQ(trace->spans[1].name, "scan");
  EXPECT_EQ(trace->spans[1].depth, 1);
  EXPECT_EQ(trace->spans[1].elements, 100u);
  EXPECT_EQ(trace->spans[2].name, "join");
  EXPECT_EQ(trace->spans[2].depth, 1);
  EXPECT_LE(trace->spans[1].start_ns, trace->spans[2].start_ns);
  // Children start within the parent's window.
  EXPECT_GE(trace->spans[1].start_ns, trace->spans[0].start_ns);
  EXPECT_LE(trace->spans[2].start_ns + trace->spans[2].duration_ns,
            trace->spans[0].start_ns + trace->spans[0].duration_ns);
  EXPECT_EQ(trace->label, "//item");
  EXPECT_GT(trace->total_ns, 0u);
  // Render shows every span, indented.
  const std::string rendered = trace->Render();
  EXPECT_NE(rendered.find("execute [twig]"), std::string::npos);
  EXPECT_NE(rendered.find("    scan"), std::string::npos);
}

TEST(Trace, NullSpanTimerIsNoop) {
  // Must not crash nor record anything anywhere.
  SpanTimer timer(nullptr, "ignored");
  timer.set_note("x");
  timer.set_counters(1, 2, 3, 4);
}

TEST(Trace, PageReadsAggregateIntoOneSpan) {
  TraceContext context("q");
  context.RecordPageRead(1000);
  context.RecordPageRead(2000);
  context.RecordPageRead(500);
  std::shared_ptr<const Trace> trace = context.Finish();
  ASSERT_EQ(trace->spans.size(), 1u);
  const TraceSpan& io = trace->spans[0];
  EXPECT_EQ(io.name, "page_io");
  EXPECT_EQ(io.note, "3 preads");
  EXPECT_EQ(io.io_reads, 3u);
  EXPECT_EQ(io.duration_ns, 3500u);
  EXPECT_EQ(io.depth, 1);
}

TEST(Trace, CurrentFollowsScopeNesting) {
  EXPECT_EQ(TraceContext::Current(), nullptr);
  TraceContext outer("outer");
  {
    TraceContext::Scope scope(&outer);
    EXPECT_EQ(TraceContext::Current(), &outer);
    {
      // Null install keeps the outer context visible.
      TraceContext::Scope noop(nullptr);
      EXPECT_EQ(TraceContext::Current(), &outer);
    }
    TraceContext inner("inner");
    {
      TraceContext::Scope nested(&inner);
      EXPECT_EQ(TraceContext::Current(), &inner);
    }
    EXPECT_EQ(TraceContext::Current(), &outer);
  }
  EXPECT_EQ(TraceContext::Current(), nullptr);
}

TEST(Trace, ConcurrentAddSpan) {
  TraceContext context("fanout");
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&context] {
      for (int i = 0; i < kSpans; ++i) {
        SpanTimer span(&context, "worker");
        context.RecordPageRead(10);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::shared_ptr<const Trace> trace = context.Finish();
  // kThreads * kSpans worker spans plus the aggregated page_io span.
  EXPECT_EQ(trace->spans.size(),
            static_cast<size_t>(kThreads) * kSpans + 1);
}

TEST(TraceRing, BoundedOldestFirst) {
  TraceRing ring(3);
  for (int i = 0; i < 5; ++i) {
    TraceContext context("q" + std::to_string(i));
    ring.Push(context.Finish());
  }
  std::vector<std::shared_ptr<const Trace>> recent = ring.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0]->label, "q2");
  EXPECT_EQ(recent[2]->label, "q4");
  EXPECT_EQ(ring.total_pushed(), 5u);
}

// ------------------------------------------------------- slow-query log ---

TEST(SlowQueryLog, ThresholdGates) {
  SlowQueryLog log(/*threshold_millis=*/10.0, /*capacity=*/4);
  EXPECT_TRUE(log.enabled());
  SlowQueryEntry fast;
  fast.query = "//fast";
  fast.millis = 9.99;
  EXPECT_FALSE(log.MaybeRecord(fast));
  SlowQueryEntry slow;
  slow.query = "//slow";
  slow.millis = 10.0;
  EXPECT_TRUE(log.MaybeRecord(slow));
  ASSERT_EQ(log.Entries().size(), 1u);
  EXPECT_EQ(log.Entries()[0].query, "//slow");
  EXPECT_EQ(log.total_recorded(), 1u);
}

TEST(SlowQueryLog, DisabledByZeroThreshold) {
  SlowQueryLog log(0.0, 4);
  EXPECT_FALSE(log.enabled());
  SlowQueryEntry entry;
  entry.millis = 1e9;
  EXPECT_FALSE(log.MaybeRecord(entry));
  EXPECT_TRUE(log.Entries().empty());
}

TEST(SlowQueryLog, RingKeepsMostRecent) {
  SlowQueryLog log(1.0, 2);
  for (int i = 0; i < 5; ++i) {
    SlowQueryEntry entry;
    entry.query = "q" + std::to_string(i);
    entry.millis = 2.0;
    EXPECT_TRUE(log.MaybeRecord(entry));
  }
  std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, "q3");
  EXPECT_EQ(entries[1].query, "q4");
  EXPECT_EQ(log.total_recorded(), 5u);
}

TEST(SlowQueryLog, ToStringCarriesBreakdown) {
  SlowQueryEntry entry;
  entry.query = "//item[price]";
  entry.translator = "pushup";
  entry.engine = "twig";
  entry.millis = 12.5;
  entry.elements = 1000;
  entry.page_fetches = 40;
  entry.page_misses = 5;
  entry.io_reads = 5;
  entry.output_rows = 17;
  TraceContext context("//item[price]");
  { SpanTimer span(&context, "execute"); }
  entry.trace = context.Finish();
  const std::string text = entry.ToString();
  EXPECT_NE(text.find("12.5"), std::string::npos);
  EXPECT_NE(text.find("//item[price]"), std::string::npos);
  EXPECT_NE(text.find("translator=pushup"), std::string::npos);
  EXPECT_NE(text.find("engine=twig"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
}

// ------------------------------------------------------------ stopwatch ---

TEST(Stopwatch, ElapsedNanosIsMonotonicAndConsistent) {
  Stopwatch watch;
  const uint64_t a = watch.ElapsedNanos();
  const uint64_t b = watch.ElapsedNanos();
  EXPECT_LE(a, b);
  // Nanos and millis come off the same clock: within 10 ms of each other
  // even on a loaded machine.
  const double millis = watch.ElapsedMillis();
  const double from_nanos = static_cast<double>(watch.ElapsedNanos()) / 1e6;
  EXPECT_LT(millis - 10.0, from_nanos);
  EXPECT_GE(from_nanos + 10.0, millis);
}

}  // namespace
}  // namespace obs
}  // namespace blas

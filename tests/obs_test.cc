// Tests of the observability layer (src/obs): histogram bucketing and
// percentiles against a sorted-vector oracle, concurrent recording,
// trace span nesting, the slow-query log's threshold and ring bounds,
// and both machine-readable exporters.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace blas {
namespace obs {
namespace {

// ------------------------------------------------------------ histogram ---

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 16; ++v) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_EQ(i, v);
    EXPECT_EQ(Histogram::BucketLo(i), v);
    EXPECT_EQ(Histogram::BucketHi(i), v + 1);
  }
}

TEST(HistogramBuckets, EveryValueLandsInItsBucket) {
  Rng rng(42);
  for (int trial = 0; trial < 10000; ++trial) {
    // Spread samples across the full magnitude range, not just small ints.
    const int shift = static_cast<int>(rng.Next() % 63);
    const uint64_t v = rng.Next() >> shift;
    const size_t i = Histogram::BucketIndex(v);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_GE(v, Histogram::BucketLo(i)) << "value " << v;
    if (Histogram::BucketHi(i) != UINT64_MAX) {
      EXPECT_LT(v, Histogram::BucketHi(i)) << "value " << v;
    }
  }
}

TEST(HistogramBuckets, BoundsAreContiguousAndMonotonic) {
  for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketHi(i), Histogram::BucketLo(i + 1));
    EXPECT_LT(Histogram::BucketLo(i), Histogram::BucketLo(i + 1));
  }
}

TEST(Histogram, CountSumMax) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  ASSERT_NE(h, nullptr);
  h->Record(1);
  h->Record(10);
  h->Record(100);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 111u);
  EXPECT_EQ(h->max_recorded(), 100u);
}

TEST(Histogram, PercentilesMatchSortedVectorOracle) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  Rng rng(7);
  std::vector<uint64_t> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    // Log-uniform latencies from ~100 ns to ~100 ms.
    const double exponent =
        2.0 + 4.0 * static_cast<double>(rng.Below(1000000)) / 1e6;
    samples.push_back(static_cast<uint64_t>(std::pow(10.0, exponent)));
    h->Record(samples.back());
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(samples.size()));
    if (rank < 1) rank = 1;
    const uint64_t oracle = samples[rank - 1];
    const uint64_t estimate = h->ValueAtQuantile(q);
    // One 1/8-octave sub-bucket of error, plus midpoint rounding: 13%.
    EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(oracle),
                0.13 * static_cast<double>(oracle))
        << "q=" << q;
  }
}

TEST(Histogram, EmptyPercentilesAreZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(h->p50(), 0u);
  EXPECT_EQ(h->p999(), 0u);
  EXPECT_EQ(h->count(), 0u);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Sum of 0..N-1.
  const uint64_t n = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h->sum(), n * (n - 1) / 2);
  EXPECT_EQ(h->max_recorded(), n - 1);
}

// ------------------------------------------------------------- registry ---

TEST(MetricsRegistry, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("requests", "help text");
  Counter* c2 = registry.GetCounter("requests");
  EXPECT_EQ(c1, c2);
  c1->Add(3);
  EXPECT_EQ(c2->value(), 3u);
}

TEST(MetricsRegistry, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x"), nullptr);
}

TEST(MetricsRegistry, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("reqs_total", "Requests served")->Add(5);
  registry.GetGauge("depth")->Set(-2);
  Histogram* h = registry.GetHistogram("lat_ns");
  h->Record(3);
  h->Record(3);
  h->Record(20);
  // Bucket 3 holds [3,4) -> le="3"; value 20 lands in [20,22) -> le="21".
  const std::string expected =
      "# TYPE depth gauge\n"
      "depth -2\n"
      "# TYPE lat_ns histogram\n"
      "lat_ns_bucket{le=\"3\"} 2\n"
      "lat_ns_bucket{le=\"21\"} 3\n"
      "lat_ns_bucket{le=\"+Inf\"} 3\n"
      "lat_ns_sum 26\n"
      "lat_ns_count 3\n"
      "# HELP reqs_total Requests served\n"
      "# TYPE reqs_total counter\n"
      "reqs_total 5\n";
  EXPECT_EQ(registry.DumpPrometheus(), expected);
}

TEST(MetricsRegistry, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("hits")->Add(7);
  registry.GetGauge("frames")->Set(12);
  registry.GetHistogram("lat");  // empty histogram still listed
  registry.RegisterCallbackGauge("cb", "", [] { return int64_t{9}; });
  const std::string expected =
      "{\"counters\":{\"hits\":7},"
      "\"gauges\":{\"cb\":9,\"frames\":12},"
      "\"histograms\":{\"lat\":{\"count\":0,\"sum\":0,\"max\":0,"
      "\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0}}}";
  EXPECT_EQ(registry.DumpJson(), expected);
}

TEST(MetricsRegistry, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  for (uint64_t v = 0; v < 10; ++v) h->Record(v);
  const std::string dump = registry.DumpPrometheus();
  // Ten exact buckets, each cumulative count one higher than the last.
  for (uint64_t v = 0; v < 10; ++v) {
    char line[64];
    std::snprintf(line, sizeof(line), "h_bucket{le=\"%llu\"} %llu\n",
                  static_cast<unsigned long long>(v),
                  static_cast<unsigned long long>(v + 1));
    EXPECT_NE(dump.find(line), std::string::npos) << dump;
  }
  EXPECT_NE(dump.find("h_bucket{le=\"+Inf\"} 10\n"), std::string::npos);
}

// ---------------------------------------------------------------- trace ---

TEST(Trace, SpansNestAndOrder) {
  TraceContext context("//item");
  {
    SpanTimer outer(&context, "execute");
    outer.set_note("twig");
    {
      SpanTimer inner(&context, "scan");
      inner.set_counters(100, 4, 1, 1);
    }
    { SpanTimer inner2(&context, "join"); }
  }
  std::shared_ptr<const Trace> trace = context.Finish();
  ASSERT_EQ(trace->spans.size(), 3u);
  // Sorted by start: outer starts first, then its children in order.
  EXPECT_EQ(trace->spans[0].name, "execute");
  EXPECT_EQ(trace->spans[0].depth, 0);
  EXPECT_EQ(trace->spans[0].note, "twig");
  EXPECT_EQ(trace->spans[1].name, "scan");
  EXPECT_EQ(trace->spans[1].depth, 1);
  EXPECT_EQ(trace->spans[1].elements, 100u);
  EXPECT_EQ(trace->spans[2].name, "join");
  EXPECT_EQ(trace->spans[2].depth, 1);
  EXPECT_LE(trace->spans[1].start_ns, trace->spans[2].start_ns);
  // Children start within the parent's window.
  EXPECT_GE(trace->spans[1].start_ns, trace->spans[0].start_ns);
  EXPECT_LE(trace->spans[2].start_ns + trace->spans[2].duration_ns,
            trace->spans[0].start_ns + trace->spans[0].duration_ns);
  EXPECT_EQ(trace->label, "//item");
  EXPECT_GT(trace->total_ns, 0u);
  // Render shows every span, indented.
  const std::string rendered = trace->Render();
  EXPECT_NE(rendered.find("execute [twig]"), std::string::npos);
  EXPECT_NE(rendered.find("    scan"), std::string::npos);
}

TEST(Trace, NullSpanTimerIsNoop) {
  // Must not crash nor record anything anywhere.
  SpanTimer timer(nullptr, "ignored");
  timer.set_note("x");
  timer.set_counters(1, 2, 3, 4);
}

TEST(Trace, PageReadsAggregateIntoOneSpan) {
  TraceContext context("q");
  context.RecordPageRead(1000);
  context.RecordPageRead(2000);
  context.RecordPageRead(500);
  std::shared_ptr<const Trace> trace = context.Finish();
  ASSERT_EQ(trace->spans.size(), 1u);
  const TraceSpan& io = trace->spans[0];
  EXPECT_EQ(io.name, "page_io");
  EXPECT_EQ(io.note, "3 preads");
  EXPECT_EQ(io.io_reads, 3u);
  EXPECT_EQ(io.duration_ns, 3500u);
  EXPECT_EQ(io.depth, 1);
}

TEST(Trace, CurrentFollowsScopeNesting) {
  EXPECT_EQ(TraceContext::Current(), nullptr);
  TraceContext outer("outer");
  {
    TraceContext::Scope scope(&outer);
    EXPECT_EQ(TraceContext::Current(), &outer);
    {
      // Null install keeps the outer context visible.
      TraceContext::Scope noop(nullptr);
      EXPECT_EQ(TraceContext::Current(), &outer);
    }
    TraceContext inner("inner");
    {
      TraceContext::Scope nested(&inner);
      EXPECT_EQ(TraceContext::Current(), &inner);
    }
    EXPECT_EQ(TraceContext::Current(), &outer);
  }
  EXPECT_EQ(TraceContext::Current(), nullptr);
}

TEST(Trace, ConcurrentAddSpan) {
  TraceContext context("fanout");
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&context] {
      for (int i = 0; i < kSpans; ++i) {
        SpanTimer span(&context, "worker");
        context.RecordPageRead(10);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::shared_ptr<const Trace> trace = context.Finish();
  // kThreads * kSpans worker spans plus the aggregated page_io span.
  EXPECT_EQ(trace->spans.size(),
            static_cast<size_t>(kThreads) * kSpans + 1);
}

TEST(TraceRing, BoundedOldestFirst) {
  TraceRing ring(3);
  for (int i = 0; i < 5; ++i) {
    TraceContext context("q" + std::to_string(i));
    ring.Push(context.Finish());
  }
  std::vector<std::shared_ptr<const Trace>> recent = ring.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0]->label, "q2");
  EXPECT_EQ(recent[2]->label, "q4");
  EXPECT_EQ(ring.total_pushed(), 5u);
}

// ------------------------------------------------------- slow-query log ---

TEST(SlowQueryLog, ThresholdGates) {
  SlowQueryLog log(/*threshold_millis=*/10.0, /*capacity=*/4);
  EXPECT_TRUE(log.enabled());
  SlowQueryEntry fast;
  fast.query = "//fast";
  fast.millis = 9.99;
  EXPECT_FALSE(log.MaybeRecord(fast));
  SlowQueryEntry slow;
  slow.query = "//slow";
  slow.millis = 10.0;
  EXPECT_TRUE(log.MaybeRecord(slow));
  ASSERT_EQ(log.Entries().size(), 1u);
  EXPECT_EQ(log.Entries()[0].query, "//slow");
  EXPECT_EQ(log.total_recorded(), 1u);
}

TEST(SlowQueryLog, DisabledByZeroThreshold) {
  SlowQueryLog log(0.0, 4);
  EXPECT_FALSE(log.enabled());
  SlowQueryEntry entry;
  entry.millis = 1e9;
  EXPECT_FALSE(log.MaybeRecord(entry));
  EXPECT_TRUE(log.Entries().empty());
}

TEST(SlowQueryLog, RingKeepsMostRecent) {
  SlowQueryLog log(1.0, 2);
  for (int i = 0; i < 5; ++i) {
    SlowQueryEntry entry;
    entry.query = "q" + std::to_string(i);
    entry.millis = 2.0;
    EXPECT_TRUE(log.MaybeRecord(entry));
  }
  std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, "q3");
  EXPECT_EQ(entries[1].query, "q4");
  EXPECT_EQ(log.total_recorded(), 5u);
}

TEST(SlowQueryLog, ToStringCarriesBreakdown) {
  SlowQueryEntry entry;
  entry.query = "//item[price]";
  entry.translator = "pushup";
  entry.engine = "twig";
  entry.millis = 12.5;
  entry.elements = 1000;
  entry.page_fetches = 40;
  entry.page_misses = 5;
  entry.io_reads = 5;
  entry.output_rows = 17;
  TraceContext context("//item[price]");
  { SpanTimer span(&context, "execute"); }
  entry.trace = context.Finish();
  const std::string text = entry.ToString();
  EXPECT_NE(text.find("12.5"), std::string::npos);
  EXPECT_NE(text.find("//item[price]"), std::string::npos);
  EXPECT_NE(text.find("translator=pushup"), std::string::npos);
  EXPECT_NE(text.find("engine=twig"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
}

// ------------------------------------------------------------ snapshots ---

TEST(MetricsSnapshot, RegistryCapturesEveryKind) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(41);
  registry.GetGauge("g")->Set(-7);
  registry.RegisterCallbackGauge("cb", "", [] { return int64_t{13}; });
  Histogram* h = registry.GetHistogram("h");
  h->Record(5);
  h->Record(500);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.captured_mono_ns, 0u);
  EXPECT_EQ(snap.counters.at("c"), 41u);
  EXPECT_EQ(snap.gauges.at("g"), -7);
  EXPECT_EQ(snap.gauges.at("cb"), 13);
  const HistogramSnapshot& hs = snap.histograms.at("h");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_EQ(hs.sum, 505u);
  EXPECT_EQ(hs.max, 500u);
  // Sparse: two samples -> two non-empty buckets, not 496.
  EXPECT_EQ(hs.buckets.size(), 2u);
}

TEST(MetricsSnapshot, SubtractIsTheWindowDistribution) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  Counter* c = registry.GetCounter("reqs");
  Rng rng(7);
  auto log_uniform = [&rng] {
    const double exponent =
        2.0 + 4.0 * static_cast<double>(rng.Below(1000000)) / 1e6;
    return static_cast<uint64_t>(std::pow(10.0, exponent));
  };

  // Warm-up samples that must NOT appear in the window.
  for (int i = 0; i < 20000; ++i) h->Record(log_uniform());
  c->Add(100);
  MetricsSnapshot before = registry.Snapshot();

  // The window under test.
  std::vector<uint64_t> window;
  window.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    window.push_back(log_uniform());
    h->Record(window.back());
  }
  c->Add(250);
  MetricsSnapshot after = registry.Snapshot();

  MetricsSnapshot delta = after.Subtract(before);
  EXPECT_EQ(delta.counters.at("reqs"), 250u);
  const HistogramSnapshot& hs = delta.histograms.at("lat");
  EXPECT_EQ(hs.count, window.size());

  std::sort(window.begin(), window.end());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(window.size()));
    if (rank < 1) rank = 1;
    const uint64_t oracle = window[rank - 1];
    const uint64_t estimate = hs.ValueAtQuantile(q);
    // Same 1/8-octave + midpoint error envelope as the live histogram.
    EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(oracle),
                0.13 * static_cast<double>(oracle))
        << "q=" << q;
  }
}

TEST(MetricsSnapshot, SubtractSaturatesInsteadOfWrapping) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("c")->Add(10);
  b.GetCounter("c")->Add(99);
  a.GetHistogram("h")->Record(5);
  Histogram* hb = b.GetHistogram("h");
  hb->Record(5);
  hb->Record(5);
  // Subtracting a *larger* earlier snapshot (as after a registry reset)
  // degrades to zero, never wraps to ~2^64.
  MetricsSnapshot delta = a.Snapshot().Subtract(b.Snapshot());
  EXPECT_EQ(delta.counters.at("c"), 0u);
  EXPECT_EQ(delta.histograms.at("h").count, 0u);
}

TEST(MetricsSnapshot, MergeAddsCountersAndKeepsOwnGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("shared")->Add(5);
  b.GetCounter("shared")->Add(7);
  b.GetCounter("only_b")->Add(3);
  a.GetGauge("g")->Set(1);
  b.GetGauge("g")->Set(2);
  a.GetHistogram("h")->Record(4);
  b.GetHistogram("h")->Record(4);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("shared"), 12u);
  EXPECT_EQ(merged.counters.at("only_b"), 3u);
  EXPECT_EQ(merged.gauges.at("g"), 1);  // own value wins
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
  EXPECT_EQ(merged.histograms.at("h").buckets.size(), 1u);
  EXPECT_EQ(merged.histograms.at("h").buckets[0].second, 2u);
}

/// DumpJson regression: quantiles/counts/sums must be bare JSON numbers
/// (scrapers compute rates from them), never strings.
TEST(MetricsRegistry, JsonQuantilesAreNumbersNotStrings) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<uint64_t>(i));
  const std::string json = registry.DumpJson();
  for (const char* key : {"\"count\":", "\"sum\":", "\"max\":", "\"p50\":",
                          "\"p90\":", "\"p99\":", "\"p999\":"}) {
    const size_t at = json.find(key);
    ASSERT_NE(at, std::string::npos) << key;
    const char next = json[at + std::string(key).size()];
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(next)))
        << key << " is followed by '" << next << "' — a string, not a number";
  }
}

// ----------------------------------------------------------- snapshotter ---

/// Capture callback with hand-authored timestamps: one snapshot per call,
/// one "second" apart, counter advancing 100/s.
struct FakeCapture {
  uint64_t calls = 0;
  MetricsSnapshot operator()() {
    MetricsSnapshot snap;
    ++calls;
    snap.captured_mono_ns = calls * 1000000000ull;
    snap.counters["c"] = calls * 100;
    HistogramSnapshot h;
    h.buckets = {{static_cast<uint32_t>(calls % 16), 10}};
    h.count = 10;
    h.sum = 10 * (calls % 16);
    snap.histograms["h"] = h;
    return snap;
  }
};

TEST(MetricsSnapshotter, RingIsBoundedAndOldestFirst) {
  MetricsSnapshotter::Options options;
  options.ring_capacity = 5;
  MetricsSnapshotter snaps(FakeCapture{}, options);
  for (int i = 0; i < 12; ++i) snaps.CaptureNow();
  EXPECT_EQ(snaps.ring_size(), 5u);
  EXPECT_EQ(snaps.ring_capacity(), 5u);
  const std::vector<MetricsSnapshot> ring = snaps.Ring();
  ASSERT_EQ(ring.size(), 5u);
  // FakeCapture is copied into the snapshotter; calls 1..12 happened, the
  // ring keeps the newest five in arrival order.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].counters.at("c"), (8 + i) * 100);
  }
}

TEST(MetricsSnapshotter, WindowDeltaPicksTheRightBase) {
  MetricsSnapshotter snaps(FakeCapture{});
  MetricsSnapshot delta;
  double span = 0;
  EXPECT_FALSE(snaps.WindowDelta(10, &delta));  // empty ring
  snaps.CaptureNow();
  EXPECT_FALSE(snaps.WindowDelta(10, &delta));  // one snapshot
  for (int i = 0; i < 7; ++i) snaps.CaptureNow();  // timestamps 1s..8s

  ASSERT_TRUE(snaps.WindowDelta(3, &delta, &span));
  EXPECT_DOUBLE_EQ(span, 3.0);  // base = snapshot at 5s, tip at 8s
  EXPECT_EQ(delta.counters.at("c"), 300u);

  // Window wider than the ring: honest span over what exists (7s).
  ASSERT_TRUE(snaps.WindowDelta(60, &delta, &span));
  EXPECT_DOUBLE_EQ(span, 7.0);
  EXPECT_EQ(delta.counters.at("c"), 700u);
}

TEST(MetricsSnapshotter, WindowsJsonShapes) {
  MetricsSnapshotter snaps(FakeCapture{});
  // No data at all: every window renders as {}.
  EXPECT_EQ(snaps.WindowsJson({10, 60}), "{\"10s\":{},\"60s\":{}}");
  for (int i = 0; i < 5; ++i) snaps.CaptureNow();
  const std::string json = snaps.WindowsJson({2});
  EXPECT_NE(json.find("\"2s\":{\"span_seconds\":2.000"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rates\":{\"c\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\":{\"h\":{\"count\":"), std::string::npos)
      << json;
}

TEST(MetricsSnapshotter, BackgroundThreadCapturesAndStops) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ticks");
  MetricsSnapshotter::Options options;
  options.interval_ms = 5;
  options.ring_capacity = 8;
  MetricsSnapshotter snaps([&registry] { return registry.Snapshot(); },
                           options);
  snaps.Start();
  snaps.Start();  // idempotent
  c->Add(1);
  // Wait (bounded) for the thread to capture at least twice.
  for (int i = 0; i < 400 && snaps.ring_size() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(snaps.ring_size(), 2u);
  EXPECT_LE(snaps.ring_size(), 8u);
  snaps.Stop();
  snaps.Stop();  // idempotent
  const size_t after_stop = snaps.ring_size();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(snaps.ring_size(), after_stop);  // thread really stopped
}

// ------------------------------------------------------------ stopwatch ---

TEST(Stopwatch, ElapsedNanosIsMonotonicAndConsistent) {
  Stopwatch watch;
  const uint64_t a = watch.ElapsedNanos();
  const uint64_t b = watch.ElapsedNanos();
  EXPECT_LE(a, b);
  // Nanos and millis come off the same clock: within 10 ms of each other
  // even on a loaded machine.
  const double millis = watch.ElapsedMillis();
  const double from_nanos = static_cast<double>(watch.ElapsedNanos()) / 1e6;
  EXPECT_LT(millis - 10.0, from_nanos);
  EXPECT_GE(from_nanos + 10.0, millis);
}

}  // namespace
}  // namespace obs
}  // namespace blas

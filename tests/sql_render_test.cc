#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "translate/sql_render.h"

namespace blas {
namespace {

class SqlRenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Recursive list structure so Unfold produces multi-delta joins.
    sys_ = std::make_unique<BlasSystem>(MustBuild(
        "<l><i><l><i><x>v</x></i></l></i><i><x>w</x></i></l>"));
  }
  std::string Sql(const std::string& q, Translator t) {
    Result<std::string> sql = sys_->ExplainSql(q, t);
    EXPECT_TRUE(sql.ok()) << sql.status();
    return sql.value_or("");
  }
  std::unique_ptr<BlasSystem> sys_;
};

TEST_F(SqlRenderTest, SelectDistinctOverReturnAlias) {
  std::string sql = Sql("/l/i/x", Translator::kDLabel);
  EXPECT_NE(sql.find("SELECT DISTINCT T3.start"), std::string::npos) << sql;
  EXPECT_NE(sql.find("FROM SD T1, SD T2, SD T3"), std::string::npos);
}

TEST_F(SqlRenderTest, SuffixPathIsSingleSelection) {
  std::string sql = Sql("//i/x", Translator::kSplit);
  EXPECT_NE(sql.find("FROM SP T1"), std::string::npos);
  EXPECT_EQ(sql.find(", SP T2"), std::string::npos) << sql;  // no join
  EXPECT_NE(sql.find("BETWEEN"), std::string::npos);
}

TEST_F(SqlRenderTest, EmptyScanRendersFalse) {
  std::string sql = Sql("//nothing", Translator::kSplit);
  EXPECT_NE(sql.find("FALSE /* tag not in document */"), std::string::npos);
}

TEST_F(SqlRenderTest, UnfoldUnionOfEqualities) {
  // //i expands to /l/i and /l/i/l/i.
  std::string sql = Sql("//i", Translator::kUnfold);
  EXPECT_NE(sql.find(" OR "), std::string::npos) << sql;
  EXPECT_EQ(sql.find("BETWEEN"), std::string::npos) << sql;
}

TEST_F(SqlRenderTest, UnfoldPerAltLevelAlignment) {
  // //l//i with a branch: per-alternative level IN (...) clauses appear
  // when an alternative admits several anchor alignments.
  std::string sql = Sql("//l//i[x]", Translator::kUnfold);
  EXPECT_NE(sql.find(".level"), std::string::npos) << sql;
  // The deep alternative /l/i/l/i aligns with //l at two depths.
  EXPECT_NE(sql.find("IN ("), std::string::npos) << sql;
}

TEST_F(SqlRenderTest, LevelPredicatesPerJoinKind) {
  std::string sql = Sql("/l/i//x", Translator::kPushUp);
  EXPECT_NE(sql.find("T2.level >= T1.level + 1"), std::string::npos) << sql;
  sql = Sql("/l[i]/i", Translator::kPushUp);
  EXPECT_NE(sql.find(".level = T1.level + 1"), std::string::npos) << sql;
}

TEST_F(SqlRenderTest, AlgebraMirrorsSql) {
  std::string alg;
  {
    Result<std::string> r = sys_->ExplainAlgebra("/l/i[x]", Translator::kSplit);
    ASSERT_TRUE(r.ok());
    alg = *r;
  }
  EXPECT_NE(alg.find("pi_{T1.start}"), std::string::npos) << alg;
  EXPECT_NE(alg.find("|X|_{"), std::string::npos);
  EXPECT_NE(alg.find("rho(T2, sigma_{"), std::string::npos);
}

TEST_F(SqlRenderTest, ValueOperatorsRendered) {
  std::string sql = Sql("//x != \"v\"", Translator::kSplit);
  EXPECT_NE(sql.find(".data != 'v'"), std::string::npos) << sql;
}

TEST_F(SqlRenderTest, OrderedOperatorsCastToReal) {
  std::string sql = Sql("//x >= \"4.5\"", Translator::kSplit);
  EXPECT_NE(sql.find("CAST(T1.data AS REAL) >= 4.5"), std::string::npos)
      << sql;
  // Equality never casts.
  sql = Sql("//x = \"4.5\"", Translator::kSplit);
  EXPECT_NE(sql.find(".data = '4.5'"), std::string::npos) << sql;
}

TEST_F(SqlRenderTest, EmbeddedQuotesAreEscaped) {
  // A literal with an embedded single quote must not break out of the
  // SQL string: ' doubles to ''.
  std::string sql = Sql("//x = \"it's; DROP TABLE SD--\"",
                        Translator::kSplit);
  EXPECT_NE(sql.find(".data = 'it''s; DROP TABLE SD--'"), std::string::npos)
      << sql;
  EXPECT_EQ(sql.find("= 'it's"), std::string::npos) << sql;
  sql = Sql("//x != \"''\"", Translator::kSplit);
  EXPECT_NE(sql.find(".data != ''''''"), std::string::npos) << sql;
}

TEST_F(SqlRenderTest, WildcardUnderDLabelScansEverything) {
  std::string sql = Sql("//*[x]", Translator::kDLabel);
  // The wildcard part has no tag predicate at all.
  EXPECT_NE(sql.find("FROM SD T1, SD T2"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("T1.tag"), std::string::npos) << sql;
}

}  // namespace
}  // namespace blas

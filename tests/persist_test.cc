#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "storage/persist.h"
#include "tests/test_util.h"

namespace blas {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(PersistTest, SnapshotRoundTrip) {
  IndexSnapshot snap;
  snap.tags = {"alpha", "beta", "@id"};
  snap.max_depth = 9;
  NodeRecord rec;
  rec.plabel = (static_cast<u128>(0x1234) << 64) | 0x5678;  // >64-bit label
  rec.start = 3;
  rec.end = 9;
  rec.tag = 2;
  rec.level = 4;
  rec.data = 1;
  snap.records = {rec};
  snap.values = {"hello", "world"};

  std::string path = TempPath("roundtrip.idx");
  ASSERT_TRUE(SaveSnapshot(snap, path).ok());
  Result<IndexSnapshot> loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->tags, snap.tags);
  EXPECT_EQ(loaded->max_depth, 9);
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->records[0].plabel, rec.plabel);
  EXPECT_EQ(loaded->records[0].start, rec.start);
  EXPECT_EQ(loaded->records[0].end, rec.end);
  EXPECT_EQ(loaded->records[0].tag, rec.tag);
  EXPECT_EQ(loaded->records[0].level, rec.level);
  EXPECT_EQ(loaded->records[0].data, rec.data);
  EXPECT_EQ(loaded->values, snap.values);
}

TEST(PersistTest, MissingFile) {
  EXPECT_EQ(LoadSnapshot("/nonexistent/nope.idx").status().code(),
            StatusCode::kNotFound);
}

TEST(PersistTest, BadMagicRejected) {
  std::string path = TempPath("badmagic.idx");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTANIDX-and-some-garbage", f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadSnapshot(path).status().code(), StatusCode::kCorruption);
}

TEST(PersistTest, TruncatedFileRejected) {
  // Write a valid index, then truncate it progressively.
  BlasSystem sys = MustBuild("<a><b>x</b><c k=\"v\"/></a>");
  std::string path = TempPath("trunc.idx");
  ASSERT_TRUE(sys.SaveIndex(path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{9}}) {
    std::string cut_path = TempPath("trunc_cut.idx");
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_EQ(LoadSnapshot(cut_path).status().code(),
              StatusCode::kCorruption)
        << "cut at " << cut;
  }
}

// -------------------------- corrupt / hostile header preflight cases ---

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ValidHeaderNoTags() {
  std::string bytes = "BLASIDX1";
  AppendU32(&bytes, 0);  // no tags
  AppendU32(&bytes, 3);  // depth
  return bytes;
}

TEST(PersistTest, OverstatedRecordCountRejectedBeforeAllocation) {
  // A tiny file whose header claims ~2^39 records: the preflight against
  // the actual file size must fail with Corruption instead of attempting
  // a multi-TB resize().
  std::string bytes = ValidHeaderNoTags();
  AppendU64(&bytes, uint64_t{1} << 39);
  std::string path = TempPath("huge_records.idx");
  WriteBytes(path, bytes);
  Result<IndexSnapshot> r = LoadSnapshot(path);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << r.status();
}

TEST(PersistTest, OverstatedValueCountRejectedBeforeAllocation) {
  std::string bytes = ValidHeaderNoTags();
  AppendU64(&bytes, 0);                    // no records
  AppendU64(&bytes, uint64_t{1} << 40);    // absurd value count
  std::string path = TempPath("huge_values.idx");
  WriteBytes(path, bytes);
  Result<IndexSnapshot> r = LoadSnapshot(path);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << r.status();
}

TEST(PersistTest, OverstatedTagCountRejected) {
  std::string bytes = "BLASIDX1";
  AppendU32(&bytes, 0xFFFFFF00u);  // tag count far beyond the file size
  std::string path = TempPath("huge_tags.idx");
  WriteBytes(path, bytes);
  Result<IndexSnapshot> r = LoadSnapshot(path);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << r.status();
}

TEST(PersistTest, OverstatedStringLengthRejected) {
  // One tag whose length prefix points far past the end of the file.
  std::string bytes = "BLASIDX1";
  AppendU32(&bytes, 1);            // one tag
  AppendU32(&bytes, 0x40000000u);  // claimed 1 GiB name, nothing follows
  bytes += "ab";
  std::string path = TempPath("huge_string.idx");
  WriteBytes(path, bytes);
  Result<IndexSnapshot> r = LoadSnapshot(path);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << r.status();
}

TEST(PersistTest, RecordCountJustOverActualPayloadRejected) {
  // Off-by-one: the header claims one more record than the bytes hold.
  BlasSystem sys = MustBuild("<a><b>x</b></a>");
  std::string path = TempPath("offbyone.idx");
  ASSERT_TRUE(sys.SaveIndex(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Locate the record-count u64: magic + tagcount + tags + depth.
  size_t pos = 8 + 4;
  uint32_t num_tags = 0;
  for (int i = 3; i >= 0; --i) {
    num_tags = (num_tags << 8) | static_cast<uint8_t>(bytes[8 + i]);
  }
  for (uint32_t t = 0; t < num_tags; ++t) {
    uint32_t len = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) | static_cast<uint8_t>(bytes[pos + i]);
    }
    pos += 4 + len;
  }
  pos += 4;  // depth
  uint64_t num_records = 0;
  for (int i = 7; i >= 0; --i) {
    num_records = (num_records << 8) | static_cast<uint8_t>(bytes[pos + i]);
  }
  std::string patched = bytes;
  uint64_t bumped = num_records + 1;
  for (int i = 0; i < 8; ++i) {
    patched[pos + i] = static_cast<char>((bumped >> (8 * i)) & 0xFF);
  }
  std::string bad_path = TempPath("offbyone_bad.idx");
  WriteBytes(bad_path, patched);
  Result<IndexSnapshot> r = LoadSnapshot(bad_path);
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << r.status();
  // The unpatched original still loads.
  EXPECT_TRUE(LoadSnapshot(path).ok());
}

TEST(PersistTest, SystemRoundTripAnswersQueriesIdentically) {
  BlasSystem original = MustBuild(
      "<site><item id=\"1\"><name>x</name><desc><par><li>t</li></par>"
      "</desc></item><item id=\"2\"><name>y</name></item>"
      "<people><person><name>x</name></person></people></site>");
  std::string path = TempPath("system.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  Result<BlasSystem> reopened = BlasSystem::FromIndexFile(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  // Same characteristics.
  BlasSystem::DocStats a = original.doc_stats();
  BlasSystem::DocStats b = reopened->doc_stats();
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.distinct_paths, b.distinct_paths);
  EXPECT_EQ(a.distinct_values, b.distinct_values);

  // Same answers under every translator/engine (incl. Unfold, which
  // depends on the rebuilt path summary).
  for (const char* q : {"//item/name", "/site//li", "//item[@id=\"2\"]/name",
                        "//name=\"x\"", "/site/*/name"}) {
    for (Translator t : {Translator::kDLabel, Translator::kSplit,
                         Translator::kPushUp, Translator::kUnfold}) {
      for (Engine e : {Engine::kRelational, Engine::kTwig}) {
        Result<QueryResult> ra = original.Execute(q, t, e);
        Result<QueryResult> rb = reopened->Execute(q, t, e);
        if (!ra.ok()) {
          EXPECT_EQ(ra.status().code(), rb.status().code());
          continue;
        }
        ASSERT_TRUE(rb.ok()) << q << " " << rb.status();
        EXPECT_EQ(ra->starts, rb->starts) << q << " " << TranslatorName(t);
      }
    }
  }
}

TEST(PersistTest, GeneratedCorpusRoundTrip) {
  BlasOptions opts;
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [](SaxHandler* h) {
        GenOptions gen;
        GenerateAuction(gen, h);
      },
      opts);
  ASSERT_TRUE(sys.ok());
  std::string path = TempPath("auction.idx");
  ASSERT_TRUE(sys->SaveIndex(path).ok());
  Result<BlasSystem> reopened = BlasSystem::FromIndexFile(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->doc_stats().nodes, sys->doc_stats().nodes);
  Result<QueryResult> r = reopened->Execute(
      "/site/regions/asia/item[shipping]/description", Translator::kUnfold,
      Engine::kRelational);
  ASSERT_TRUE(r.ok());
  Result<QueryResult> orig = sys->Execute(
      "/site/regions/asia/item[shipping]/description", Translator::kUnfold,
      Engine::kRelational);
  ASSERT_TRUE(orig.ok());
  EXPECT_EQ(r->starts, orig->starts);
}

}  // namespace
}  // namespace blas

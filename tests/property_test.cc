#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/generator.h"
#include "tests/test_util.h"

namespace blas {
namespace {

/// Builds a random query tree over the t0..t{k-1} alphabet (occasionally a
/// tag that does not exist, plus the fixed "root" tag and attribute names),
/// with random axes, branches and value predicates.
class RandomQueryGen {
 public:
  RandomQueryGen(uint64_t seed, int num_tags, int num_values)
      : rng_(seed), num_tags_(num_tags), num_values_(num_values) {}

  Query Generate() {
    Query q;
    q.root = MakeNode(0);
    // Mark a random node as the return node.
    std::vector<QueryNode*> all;
    CollectNodes(q.root.get(), &all);
    all[rng_.Below(all.size())]->is_return = true;
    return q;
  }

 private:
  std::unique_ptr<QueryNode> MakeNode(int depth) {
    auto node = std::make_unique<QueryNode>();
    uint64_t pick = rng_.Below(100);
    if (pick < 8) {
      node->tag = "root";
    } else if (pick < 14) {
      node->tag = "@a" + std::to_string(rng_.Below(3));
    } else if (pick < 18) {
      node->tag = "zz_missing";  // tag absent from every document
    } else {
      node->tag = "t" + std::to_string(rng_.Below(num_tags_));
    }
    node->axis = rng_.Percent(45) ? Axis::kDescendant : Axis::kChild;
    if (rng_.Percent(20)) {
      ValueOp op = ValueOp::kEq;
      uint64_t op_pick = rng_.Below(10);
      if (op_pick == 0) op = ValueOp::kNe;
      if (op_pick == 1) op = ValueOp::kLt;
      if (op_pick == 2) op = ValueOp::kGe;
      node->value =
          ValuePred{op, "v" + std::to_string(rng_.Below(num_values_))};
    }
    if (depth < 3) {
      int children = 0;
      uint64_t shape = rng_.Below(100);
      if (shape < 45) {
        children = 1;
      } else if (shape < 65) {
        children = 2;
      } else if (shape < 70) {
        children = 3;
      }
      for (int c = 0; c < children; ++c) {
        node->children.push_back(MakeNode(depth + 1));
      }
    }
    return node;
  }

  static void CollectNodes(QueryNode* node, std::vector<QueryNode*>* out) {
    out->push_back(node);
    for (auto& child : node->children) CollectNodes(child.get(), out);
  }

  Rng rng_;
  int num_tags_;
  int num_values_;
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllTranslatorsAndEnginesMatchNaiveEval) {
  const uint64_t seed = GetParam();
  constexpr int kTags = 6;
  constexpr int kValues = 4;

  BlasOptions options;
  options.keep_dom = true;
  Result<BlasSystem> sys = BlasSystem::FromEvents(
      [&](SaxHandler* h) {
        GenerateRandomDoc(seed, /*approx_nodes=*/400, kTags,
                          /*max_depth=*/9, kValues, h);
      },
      options);
  ASSERT_TRUE(sys.ok()) << sys.status();

  RandomQueryGen qgen(seed * 7919 + 1, kTags, kValues);
  for (int i = 0; i < 40; ++i) {
    Query query = qgen.Generate();
    std::vector<uint32_t> expected = NaiveEvalStarts(query, *sys->dom());
    for (Translator translator :
         {Translator::kDLabel, Translator::kSplit, Translator::kPushUp,
          Translator::kUnfold}) {
      for (Engine engine : {Engine::kRelational, Engine::kTwig}) {
        Result<QueryResult> result =
            sys->Execute(query, translator, engine);
        if (!result.ok() &&
            result.status().code() == StatusCode::kUnsupported) {
          continue;
        }
        ASSERT_TRUE(result.ok())
            << "seed=" << seed << " query=" << query.ToString() << " ["
            << TranslatorName(translator) << "/" << EngineName(engine)
            << "]: " << result.status().ToString();
        EXPECT_EQ(result->starts, expected)
            << "seed=" << seed << " query=" << query.ToString() << " ["
            << TranslatorName(translator) << "/" << EngineName(engine)
            << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace blas

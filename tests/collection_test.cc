#include <gtest/gtest.h>

#include "blas/collection.h"
#include "gen/generator.h"
#include "tests/test_util.h"

namespace blas {
namespace {

BlasCollection MakeLibraryCollection() {
  BlasCollection coll;
  EXPECT_TRUE(coll.AddXml("doc1",
                          "<lib><book><title>A</title><year>2001</year>"
                          "</book></lib>")
                  .ok());
  EXPECT_TRUE(coll.AddXml("doc2",
                          "<lib><book><title>B</title><year>1999</year>"
                          "</book><book><title>C</title><year>2001</year>"
                          "</book></lib>")
                  .ok());
  EXPECT_TRUE(
      coll.AddXml("doc3", "<archive><paper><title>D</title></paper>"
                          "</archive>")
          .ok());
  return coll;
}

TEST(CollectionTest, AddAndIntrospect) {
  BlasCollection coll = MakeLibraryCollection();
  EXPECT_EQ(coll.size(), 3u);
  EXPECT_EQ(coll.names(),
            (std::vector<std::string>{"doc1", "doc2", "doc3"}));
  ASSERT_NE(coll.Find("doc2"), nullptr);
  EXPECT_EQ(coll.Find("doc2")->doc_stats().nodes, 7u);
  EXPECT_EQ(coll.Find("nope"), nullptr);
}

TEST(CollectionTest, DuplicateAndRemove) {
  BlasCollection coll = MakeLibraryCollection();
  EXPECT_EQ(coll.AddXml("doc1", "<x/>").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(coll.Remove("doc1").ok());
  EXPECT_EQ(coll.Remove("doc1").code(), StatusCode::kNotFound);
  EXPECT_EQ(coll.size(), 2u);
  EXPECT_TRUE(coll.AddXml("doc1", "<x/>").ok());
}

TEST(CollectionTest, CrossDocumentQuery) {
  BlasCollection coll = MakeLibraryCollection();
  Result<BlasCollection::CollectionResult> r = coll.Execute(
      "//book[year=\"2001\"]/title", Translator::kPushUp,
      Engine::kRelational);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->total_matches, 2u);
  ASSERT_EQ(r->docs.size(), 2u);
  EXPECT_EQ(r->docs[0].name, "doc1");
  EXPECT_EQ(r->docs[0].starts.size(), 1u);
  EXPECT_EQ(r->docs[1].name, "doc2");
  EXPECT_EQ(r->docs[1].starts.size(), 1u);
}

TEST(CollectionTest, HeterogeneousSchemasAreFine) {
  BlasCollection coll = MakeLibraryCollection();
  // "paper" exists only in doc3; "book" only in doc1/doc2 -- per-document
  // codecs handle disjoint alphabets.
  Result<BlasCollection::CollectionResult> r =
      coll.Execute("//title", Translator::kSplit, Engine::kTwig);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_matches, 4u);
  EXPECT_EQ(r->docs.size(), 3u);
}

TEST(CollectionTest, EmptyCollectionAndNoMatches) {
  BlasCollection empty;
  Result<BlasCollection::CollectionResult> r =
      empty.Execute("//x", Translator::kDLabel, Engine::kRelational);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_matches, 0u);
  EXPECT_TRUE(r->docs.empty());

  BlasCollection coll = MakeLibraryCollection();
  r = coll.Execute("//nonexistent", Translator::kDLabel,
                   Engine::kRelational);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_matches, 0u);
}

TEST(CollectionTest, ParseErrorPropagates) {
  BlasCollection coll = MakeLibraryCollection();
  EXPECT_FALSE(
      coll.Execute("not an xpath", Translator::kSplit, Engine::kTwig).ok());
}

TEST(CollectionTest, AllTranslatorsAgreeAcrossDocs) {
  BlasCollection coll;
  ASSERT_TRUE(coll
                  .AddEvents("shakespeare",
                             [](SaxHandler* h) {
                               GenOptions gen;
                               GenerateShakespeare(gen, h);
                             })
                  .ok());
  ASSERT_TRUE(coll.AddXml("tiny", "<PLAYS><PLAY><TITLE>T</TITLE></PLAY>"
                                  "</PLAYS>")
                  .ok());
  size_t expected = 0;
  bool first = true;
  for (Translator t : {Translator::kDLabel, Translator::kSplit,
                       Translator::kPushUp, Translator::kUnfold}) {
    Result<BlasCollection::CollectionResult> r =
        coll.Execute("/PLAYS/PLAY/TITLE", t, Engine::kRelational);
    ASSERT_TRUE(r.ok());
    if (first) {
      expected = r->total_matches;
      first = false;
      EXPECT_GT(expected, 1u);
    } else {
      EXPECT_EQ(r->total_matches, expected) << TranslatorName(t);
    }
  }
}

TEST(CollectionTest, CollectionWideOffsetAndLimit) {
  BlasCollection coll = MakeLibraryCollection();
  // //title matches: doc1 x1, doc2 x2, doc3 x1 (name-ordered).
  QueryOptions options;
  options.offset = 1;
  options.limit = 2;
  Result<BlasCollection::CollectionResult> r = coll.Execute("//title", options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->total_matches, 2u);
  EXPECT_EQ(r->offset_skipped, 1u);
  ASSERT_EQ(r->docs.size(), 1u);  // doc1's match was skipped by the offset
  EXPECT_EQ(r->docs[0].name, "doc2");
  EXPECT_EQ(r->docs[0].starts.size(), 2u);

  // Offset past the end: everything skipped, nothing delivered.
  options.offset = 10;
  options.limit = 0;
  r = coll.Execute("//title", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_matches, 0u);
  EXPECT_EQ(r->offset_skipped, 4u);
  EXPECT_TRUE(r->docs.empty());
}

TEST(CollectionTest, ExecuteShimEqualsSequentialCursorDrain) {
  BlasCollection coll = MakeLibraryCollection();
  QueryOptions options;
  options.projection = Projection::kValue;
  Result<BlasCollection::CollectionResult> executed =
      coll.Execute("//title", options);
  ASSERT_TRUE(executed.ok());
  Result<CollectionCursor> cursor = coll.OpenCursor("//title", options);
  ASSERT_TRUE(cursor.ok());
  Result<BlasCollection::CollectionResult> drained = cursor->Drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->total_matches, executed->total_matches);
  ASSERT_EQ(drained->docs.size(), executed->docs.size());
  for (size_t i = 0; i < drained->docs.size(); ++i) {
    EXPECT_EQ(drained->docs[i].name, executed->docs[i].name);
    EXPECT_EQ(drained->docs[i].starts, executed->docs[i].starts);
  }
  EXPECT_EQ(drained->stats.elements, executed->stats.elements);
  EXPECT_EQ(drained->stats.page_fetches, executed->stats.page_fetches);
}

TEST(CollectionTest, AddFromIndexFile) {
  BlasSystem sys = MustBuild("<a><b>x</b></a>");
  std::string path = testing::TempDir() + "/coll.idx";
  ASSERT_TRUE(sys.SaveIndex(path).ok());
  BlasCollection coll;
  ASSERT_TRUE(coll.AddIndexFile("persisted", path).ok());
  Result<BlasCollection::CollectionResult> r =
      coll.Execute("//b", Translator::kUnfold, Engine::kRelational);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_matches, 1u);
}

}  // namespace
}  // namespace blas

// Admin-server demo: a live collection churns while the telemetry is
// served over HTTP on the loopback admin port.
//
// Starts a LiveCollection + QueryService, installs the standard admin
// endpoints (/healthz /varz /metrics /timez /tracez /slowz /buildz),
// then drives queries and document replacements for the requested
// duration so every scrape shows real, moving numbers. The bound port is
// printed first ("admin listening on 127.0.0.1:PORT") for scripts — CI's
// smoke step curls it.
//
// Usage: ./build/blas_admin [seconds] [dir]
//   BLAS_ADMIN_PORT   port to bind (unset or 0: ephemeral, see output)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "gen/generator.h"
#include "ingest/live_collection.h"
#include "server/admin_handlers.h"
#include "server/admin_server.h"
#include "service/query_service.h"
#include "xml/xml_writer.h"

namespace {

int Fail(const blas::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string AuctionShard(uint64_t seed) {
  blas::XmlTextSink sink;
  blas::GenOptions gen;
  gen.seed = seed;
  blas::GenerateAuction(gen, &sink);
  return sink.TakeText();
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc >= 2 ? std::atof(argv[1]) : 10.0;
  const std::string dir = argc >= 3 ? argv[2] : "/tmp/blas_admin_demo";
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());

  blas::LiveOptions live_options;
  live_options.storage.memory_budget = size_t{16} << 20;
  auto opened = blas::LiveCollection::Open(dir, live_options);
  if (!opened.ok()) return Fail(opened.status());
  blas::LiveCollection& live = **opened;

  blas::ServiceOptions service_options;
  service_options.worker_threads = 4;
  service_options.trace_sample_every = 16;   // /tracez has material
  service_options.slow_query_millis = 5.0;   // /slowz catches stragglers
  blas::QueryService service(&live, service_options);

  const int shards = 4;
  for (int i = 0; i < shards; ++i) {
    blas::Status s = service
                         .SubmitAddDocument("auction-" + std::to_string(i),
                                            AuctionShard(100 + i))
                         .get();
    if (!s.ok()) return Fail(s);
  }

  blas::server::AdminServer::Options server_options;
  server_options.port = blas::server::AdminPortFromEnv(0);
  blas::server::AdminServer server(server_options);
  // Snapshot fast so even a short demo run has windowed data.
  blas::server::AdminEndpointsOptions endpoints;
  endpoints.snapshotter.interval_ms = 250;
  auto snapshotter =
      blas::server::InstallAdminEndpoints(&server, &service, endpoints);
  if (blas::Status s = server.Start(); !s.ok()) return Fail(s);
  std::printf("admin listening on 127.0.0.1:%d\n", server.port());
  std::printf("try: curl -s http://127.0.0.1:%d/varz | head -c 400\n\n",
              server.port());
  std::fflush(stdout);

  // Churn: queries + replacements until the clock runs out, so /varz
  // rates and /timez percentiles describe live traffic.
  std::atomic<bool> done{false};
  std::thread reader([&] {
    blas::QueryRequest request;
    request.xpath = "//item/name";
    request.options.projection = blas::Projection::kValue;
    while (!done.load(std::memory_order_acquire)) {
      (void)service.SubmitCollection(request).get();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::thread writer([&] {
    uint64_t round = 0;
    while (!done.load(std::memory_order_acquire)) {
      const int doc = static_cast<int>(round % shards);
      (void)service
          .SubmitReplaceDocument("auction-" + std::to_string(doc),
                                 AuctionShard(900 + round))
          .get();
      ++round;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  done.store(true, std::memory_order_release);
  reader.join();
  writer.join();
  service.DrainIngest();

  blas::server::AdminServer::Stats stats = server.stats();
  std::printf("served %llu admin request(s) on %llu connection(s), %llu "
              "bytes written\n",
              static_cast<unsigned long long>(stats.requests_ok),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.bytes_written));
  server.Stop();
  snapshotter->Stop();
  service.Shutdown();
  return 0;
}

// Quickstart: index a small XML document, inspect the SQL each translator
// generates, then answer queries through the cursor API — projected
// content, limit-k enumeration, and the paper's cost metrics — without
// retaining a DOM.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "blas/blas.h"

int main() {
  const char* xml =
      "<library>"
      "  <book genre=\"databases\">"
      "    <title>Transaction Processing</title>"
      "    <author>Gray, J.</author><author>Reuter, A.</author>"
      "    <year>1992</year>"
      "  </book>"
      "  <book genre=\"databases\">"
      "    <title>Readings in Database Systems</title>"
      "    <author>Stonebraker, M.</author>"
      "    <year>2005</year>"
      "  </book>"
      "  <journal>"
      "    <title>TODS</title>"
      "    <article><title>XPath processing</title><year>2004</year>"
      "    </article>"
      "  </journal>"
      "</library>";

  // 1. Index the document (P-labels + D-labels + value dictionary).
  blas::Result<blas::BlasSystem> sys = blas::BlasSystem::FromXml(xml);
  if (!sys.ok()) {
    std::fprintf(stderr, "index error: %s\n", sys.status().ToString().c_str());
    return 1;
  }
  blas::BlasSystem::DocStats stats = sys->doc_stats();
  std::printf("indexed %zu nodes, %zu tags, depth %d, %zu distinct paths\n\n",
              stats.nodes, stats.tags, stats.depth, stats.distinct_paths);

  // 2. A tree query: titles of the database books.
  const char* query = "/library/book[@genre=\"databases\"]/title";

  // 3. Show what each translator produces.
  for (blas::Translator t :
       {blas::Translator::kDLabel, blas::Translator::kSplit,
        blas::Translator::kPushUp, blas::Translator::kUnfold}) {
    blas::Result<std::string> sql = sys->ExplainSql(query, t);
    std::printf("--- %s ---\n%s\n\n", blas::TranslatorName(t),
                sql.ok() ? sql->c_str() : sql.status().ToString().c_str());
  }

  // 4. Enumerate answers with projected content — straight from the index,
  //    no DOM retained.
  blas::QueryOptions options;
  options.engine = blas::Engine::kAuto;
  options.projection = blas::Projection::kValue;
  blas::Result<blas::ResultCursor> cursor = sys->Open(query, options);
  if (!cursor.ok()) {
    std::fprintf(stderr, "open error: %s\n",
                 cursor.status().ToString().c_str());
    return 1;
  }
  std::printf("matched titles (%s engine):\n",
              blas::EngineName(cursor->engine()));
  while (std::optional<blas::Match> match = cursor->Next()) {
    std::printf("  [%u,%u] level %d: \"%s\"\n", match->start, match->end,
                match->level, match->content.c_str());
  }

  // 5. Or serialize whole subtrees, stopping after the first answer:
  //    bounded cursors terminate their scans early.
  options.projection = blas::Projection::kSubtree;
  options.limit = 1;
  blas::Result<blas::QueryResult> first = sys->Execute("//book", options);
  if (!first.ok()) {
    std::fprintf(stderr, "%s\n", first.status().ToString().c_str());
    return 1;
  }
  if (!first->matches.empty()) {
    std::printf("\nfirst book subtree:\n%s\n",
                first->matches[0].content.c_str());
  }

  // 6. The paper's metrics, per engine, via the legacy one-shot form.
  for (blas::Engine engine :
       {blas::Engine::kRelational, blas::Engine::kTwig}) {
    blas::Result<blas::QueryResult> result =
        sys->Execute(query, blas::Translator::kPushUp, engine);
    if (!result.ok()) {
      std::fprintf(stderr, "execute error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%s engine: %zu matches, %llu elements visited, %llu page reads, "
        "%llu D-joins, %.3f ms\n",
        blas::EngineName(engine), result->starts.size(),
        static_cast<unsigned long long>(result->stats.elements),
        static_cast<unsigned long long>(result->stats.page_fetches),
        static_cast<unsigned long long>(result->stats.d_joins),
        result->millis);
  }
  return 0;
}

// Quickstart: index a small XML document, translate an XPath query with
// each of the four translators, execute it on both engines, and inspect
// the generated SQL.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "blas/blas.h"

int main() {
  const char* xml =
      "<library>"
      "  <book genre=\"databases\">"
      "    <title>Transaction Processing</title>"
      "    <author>Gray, J.</author><author>Reuter, A.</author>"
      "    <year>1992</year>"
      "  </book>"
      "  <book genre=\"databases\">"
      "    <title>Readings in Database Systems</title>"
      "    <author>Stonebraker, M.</author>"
      "    <year>2005</year>"
      "  </book>"
      "  <journal>"
      "    <title>TODS</title>"
      "    <article><title>XPath processing</title><year>2004</year>"
      "    </article>"
      "  </journal>"
      "</library>";

  // 1. Index the document (P-labels + D-labels + value dictionary).
  blas::Result<blas::BlasSystem> sys = blas::BlasSystem::FromXml(xml);
  if (!sys.ok()) {
    std::fprintf(stderr, "index error: %s\n", sys.status().ToString().c_str());
    return 1;
  }
  blas::BlasSystem::DocStats stats = sys->doc_stats();
  std::printf("indexed %zu nodes, %zu tags, depth %d, %zu distinct paths\n\n",
              stats.nodes, stats.tags, stats.depth, stats.distinct_paths);

  // 2. A tree query: books about databases written before a given year.
  const char* query = "/library/book[@genre=\"databases\"]/title";

  // 3. Show what each translator produces.
  for (blas::Translator t :
       {blas::Translator::kDLabel, blas::Translator::kSplit,
        blas::Translator::kPushUp, blas::Translator::kUnfold}) {
    blas::Result<std::string> sql = sys->ExplainSql(query, t);
    std::printf("--- %s ---\n%s\n\n", blas::TranslatorName(t),
                sql.ok() ? sql->c_str() : sql.status().ToString().c_str());
  }

  // 4. Execute on both engines and report the paper's metrics.
  for (blas::Engine engine :
       {blas::Engine::kRelational, blas::Engine::kTwig}) {
    blas::Result<blas::QueryResult> result =
        sys->Execute(query, blas::Translator::kPushUp, engine);
    if (!result.ok()) {
      std::fprintf(stderr, "execute error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%s engine: %zu matches, %llu elements visited, %llu page reads, "
        "%d D-joins, %.3f ms\n",
        blas::EngineName(engine), result->starts.size(),
        static_cast<unsigned long long>(result->stats.elements),
        static_cast<unsigned long long>(result->stats.page_fetches),
        result->stats.d_joins, result->millis);
  }
  return 0;
}

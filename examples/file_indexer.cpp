// Index an XML file from disk, persist the index, reopen it without
// re-parsing, and answer queries -- the index-once / query-many workflow
// the BLAS index generator is designed for.
//
// Usage:
//   ./build/examples/file_indexer <doc.xml> [query ...]
//   ./build/examples/file_indexer --demo          (self-contained demo)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "gen/generator.h"
#include "xml/xml_writer.h"

namespace {

int Fail(const blas::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string xml;
  std::vector<std::string> queries;

  if (argc >= 2 && std::string(argv[1]) != "--demo") {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    xml = buf.str();
    for (int i = 2; i < argc; ++i) queries.emplace_back(argv[i]);
  } else {
    // Demo mode: write a generated protein corpus to a temp file first.
    blas::XmlTextSink sink;
    blas::GenOptions gen;
    blas::GenerateProtein(gen, &sink);
    xml = sink.TakeText();
    queries = {"/ProteinDatabase/ProteinEntry/protein/name",
               "//refinfo[year=\"2001\"]/title"};
    std::printf("demo mode: generated %zu bytes of XML\n", xml.size());
  }
  if (queries.empty()) {
    queries = {"//*"};
  }

  // 1. Index from text and persist.
  blas::Result<blas::BlasSystem> built = blas::BlasSystem::FromXml(xml);
  if (!built.ok()) return Fail(built.status());
  const std::string index_path = "/tmp/blas_file_indexer.idx";
  blas::Status saved = built->SaveIndex(index_path);
  if (!saved.ok()) return Fail(saved);
  std::printf("indexed %zu nodes -> %s\n", built->doc_stats().nodes,
              index_path.c_str());

  // 2. Reopen from the index file alone (no XML parse).
  blas::Result<blas::BlasSystem> sys =
      blas::BlasSystem::FromIndexFile(index_path);
  if (!sys.ok()) return Fail(sys.status());
  std::printf("reopened: %zu nodes, %zu tags, depth %d\n\n",
              sys->doc_stats().nodes, sys->doc_stats().tags,
              sys->doc_stats().depth);

  // 3. Answer queries.
  for (const std::string& q : queries) {
    blas::Result<blas::QueryResult> r =
        sys->Execute(q, blas::Translator::kUnfold, blas::Engine::kRelational);
    if (!r.ok()) {
      std::printf("%-50s error: %s\n", q.c_str(),
                  r.status().ToString().c_str());
      continue;
    }
    std::printf("%-50s %6zu matches  %.3f ms\n", q.c_str(),
                r->starts.size(), r->millis);
  }
  return 0;
}

// Index an XML file from disk, persist it as a BLASIDX2 paged snapshot,
// reopen it demand-paged in O(1) without re-parsing, and answer queries
// -- the index-once / query-many workflow the BLAS index generator is
// designed for, on the storage path a server would actually use (pages
// fault in from disk as queries touch them; memory stays bounded).
//
// Usage:
//   ./build/examples/file_indexer <doc.xml> [query ...]
//   ./build/examples/file_indexer --demo          (self-contained demo)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "gen/generator.h"
#include "xml/xml_writer.h"

namespace {

int Fail(const blas::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string xml;
  std::vector<std::string> queries;

  if (argc >= 2 && std::string(argv[1]) != "--demo") {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    xml = buf.str();
    for (int i = 2; i < argc; ++i) queries.emplace_back(argv[i]);
  } else {
    // Demo mode: write a generated protein corpus to a temp file first.
    blas::XmlTextSink sink;
    blas::GenOptions gen;
    blas::GenerateProtein(gen, &sink);
    xml = sink.TakeText();
    queries = {"/ProteinDatabase/ProteinEntry/protein/name",
               "//refinfo[year=\"2001\"]/title"};
    std::printf("demo mode: generated %zu bytes of XML\n", xml.size());
  }
  if (queries.empty()) {
    queries = {"//*"};
  }

  // 1. Index from text and persist the page-aligned snapshot.
  blas::Result<blas::BlasSystem> built = blas::BlasSystem::FromXml(xml);
  if (!built.ok()) return Fail(built.status());
  const std::string index_path = "/tmp/blas_file_indexer.blasidx";
  blas::Status saved = built->SavePagedIndex(index_path);
  if (!saved.ok()) return Fail(saved);
  std::printf("indexed %zu nodes -> %s (BLASIDX2)\n",
              built->doc_stats().nodes, index_path.c_str());

  // 2. Reopen demand-paged: O(1) in document size, bounded memory (here
  //    4 MB); index pages and dictionary values fault in per query.
  blas::StorageOptions storage;
  storage.memory_budget = size_t{4} << 20;
  blas::Result<blas::BlasSystem> sys =
      blas::BlasSystem::OpenPaged(index_path, storage);
  if (!sys.ok()) return Fail(sys.status());
  std::printf("reopened paged: %zu nodes, %zu tags, depth %d\n\n",
              sys->doc_stats().nodes, sys->doc_stats().tags,
              sys->doc_stats().depth);

  // 3. Answer queries; io_reads shows the real disk traffic per query.
  for (const std::string& q : queries) {
    blas::QueryOptions options;
    options.translator = blas::Translator::kUnfold;
    options.engine = blas::Engine::kRelational;
    blas::Result<blas::QueryResult> r = sys->Execute(q, options);
    if (!r.ok()) {
      std::printf("%-50s error: %s\n", q.c_str(),
                  r.status().ToString().c_str());
      continue;
    }
    std::printf("%-50s %6zu matches  %.3f ms  %llu disk reads\n", q.c_str(),
                r->starts.size(), r->millis,
                static_cast<unsigned long long>(r->stats.io_reads));
  }
  return 0;
}

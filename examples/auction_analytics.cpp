// Auction-site analytics over the XMark-style corpus: runs the benchmark
// query analogues (Q1, Q2, Q4, Q5, Q6) plus the figure-10 QA queries on
// both engines, printing a comparison table of time / visited elements /
// joins per translator -- a miniature of the paper's section 5 study.
//
// Build & run:  ./build/examples/auction_analytics [replication]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blas/blas.h"
#include "gen/generator.h"
#include "gen/queries.h"

int main(int argc, char** argv) {
  int replicate = argc > 1 ? std::atoi(argv[1]) : 4;
  if (replicate < 1) replicate = 1;

  blas::GenOptions gen;
  gen.replicate = replicate;
  blas::Result<blas::BlasSystem> sys = blas::BlasSystem::FromEvents(
      [&](blas::SaxHandler* h) { blas::GenerateAuction(gen, h); });
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  std::printf("auction corpus (x%d): %zu nodes, %zu pages\n\n", replicate,
              sys->doc_stats().nodes, sys->doc_stats().pages);

  std::vector<blas::BenchQuery> queries = blas::XMarkBenchmarkQueries();
  for (const blas::BenchQuery& q : blas::Figure10Queries('A')) {
    queries.push_back(q);
  }

  for (blas::Engine engine :
       {blas::Engine::kRelational, blas::Engine::kTwig}) {
    std::printf("=== %s engine ===\n", blas::EngineName(engine));
    std::printf("%-5s %-28s %12s %10s %8s %8s\n", "query", "", "translator",
                "time(ms)", "elems", "joins");
    for (const blas::BenchQuery& q : queries) {
      for (blas::Translator t :
           {blas::Translator::kDLabel, blas::Translator::kSplit,
            blas::Translator::kPushUp, blas::Translator::kUnfold}) {
        sys->ResetCounters();
        blas::Result<blas::QueryResult> r = sys->Execute(q.xpath, t, engine);
        if (!r.ok()) {
          std::printf("%-5s %-28.28s %12s %10s\n", q.name.c_str(),
                      q.xpath.c_str(), blas::TranslatorName(t), "n/a");
          continue;
        }
        std::printf("%-5s %-28.28s %12s %10.3f %8llu %8llu\n", q.name.c_str(),
                    q.xpath.c_str(), blas::TranslatorName(t), r->millis,
                    static_cast<unsigned long long>(r->stats.elements),
                    static_cast<unsigned long long>(r->stats.d_joins));
      }
    }
    std::printf("\n");
  }
  return 0;
}

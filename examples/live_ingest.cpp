// Live ingestion demo: a query service keeps streaming answers while
// auction shards are added, replaced and removed underneath it.
//
// A LiveCollection serves every query from the epoch it pinned at open
// (copy-on-write publishes; readers never block), while the ingestion
// pipeline indexes shards to paged BLASIDX2 snapshots and publishes them
// through the durable manifest log. At the end the collection is
// reopened from disk to show crash-style recovery of the last epoch.
//
// Usage: ./build/live_ingest [shards] [dir]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "gen/generator.h"
#include "ingest/live_collection.h"
#include "service/query_service.h"
#include "xml/xml_writer.h"

namespace {

int Fail(const blas::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string AuctionShard(uint64_t seed) {
  blas::XmlTextSink sink;
  blas::GenOptions gen;
  gen.seed = seed;
  blas::GenerateAuction(gen, &sink);
  return sink.TakeText();
}

}  // namespace

int main(int argc, char** argv) {
  const int shards = argc >= 2 ? std::atoi(argv[1]) : 6;
  const std::string dir = argc >= 3 ? argv[2] : "/tmp/blas_live_ingest";
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());

  blas::LiveOptions live_options;
  live_options.storage.memory_budget = size_t{16} << 20;
  live_options.checkpoint_every = 8;
  auto opened = blas::LiveCollection::Open(dir, live_options);
  if (!opened.ok()) return Fail(opened.status());
  blas::LiveCollection& live = **opened;
  uint64_t final_epoch = 0;
  size_t final_size = 0;

  {  // the service borrows the collection; scope it to end first
  blas::QueryService service(&live, blas::ServiceOptions{.worker_threads = 4});
  std::printf("live collection at %s (16 MB shared budget)\n\n", dir.c_str());

  // Reader: hammers the service with streaming queries the whole time,
  // recording how often an answer drained across a publish.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0}, matches{0};
  std::thread reader([&] {
    blas::QueryRequest request;
    request.xpath = "//item/name";
    request.options.projection = blas::Projection::kValue;
    while (!done.load(std::memory_order_acquire)) {
      auto result = service.SubmitCollection(request).get();
      if (result.ok()) {
        reads.fetch_add(1, std::memory_order_relaxed);
        matches.fetch_add(result->total_matches, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Writer: ingest the shards through the admin futures, then replace
  // half of them and remove one — all while the reader streams.
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<blas::Status>> futures;
  for (int i = 0; i < shards; ++i) {
    futures.push_back(service.SubmitAddDocument(
        "auction-" + std::to_string(i), AuctionShard(100 + i)));
  }
  for (auto& f : futures) {
    blas::Status s = f.get();
    if (!s.ok()) return Fail(s);
  }
  std::printf("ingested %d auction shards (epoch %llu)\n", shards,
              static_cast<unsigned long long>(live.epoch()));

  for (int i = 0; i < shards; i += 2) {
    blas::Status s = service
                         .SubmitReplaceDocument("auction-" + std::to_string(i),
                                                AuctionShard(900 + i))
                         .get();
    if (!s.ok()) return Fail(s);
  }
  if (shards > 1) {
    blas::Status s = service.SubmitRemoveDocument("auction-1").get();
    if (!s.ok()) return Fail(s);
  }
  service.DrainIngest();
  done.store(true, std::memory_order_release);
  reader.join();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  blas::ServiceStats stats = service.stats();
  blas::LiveCollection::Stats ingest = live.stats();
  std::printf("\nafter %.2f s of churn:\n", secs);
  std::printf("  epochs published        %llu\n",
              static_cast<unsigned long long>(stats.epochs_published));
  std::printf("  docs ingested/removed   %llu / %llu\n",
              static_cast<unsigned long long>(stats.docs_ingested),
              static_cast<unsigned long long>(stats.docs_removed));
  std::printf("  manifest bytes          %llu (%llu checkpoints)\n",
              static_cast<unsigned long long>(stats.manifest_bytes),
              static_cast<unsigned long long>(ingest.checkpoints));
  std::printf("  queries completed       %llu (%llu matches)\n",
              static_cast<unsigned long long>(reads.load()),
              static_cast<unsigned long long>(matches.load()));
  std::printf("  ...during churn         %llu\n",
              static_cast<unsigned long long>(
                  stats.queries_served_during_churn));
  std::printf("  obsolete files reclaimed %llu\n",
              static_cast<unsigned long long>(ingest.files_reclaimed));
  std::printf("  budget peak             %zu / %zu bytes\n",
              live.budget()->peak_used(), live.budget()->limit());

  final_epoch = live.epoch();
  final_size = live.size();
  }  // service shuts down here

  // Recovery: reopen from the manifest alone, exactly the last epoch.
  opened->reset();
  auto recovered = blas::LiveCollection::Open(dir, live_options);
  if (!recovered.ok()) return Fail(recovered.status());
  std::printf("\nreopened from MANIFEST: epoch %llu (expected %llu), "
              "%zu documents (expected %zu)\n",
              static_cast<unsigned long long>((*recovered)->epoch()),
              static_cast<unsigned long long>(final_epoch),
              (*recovered)->size(), final_size);
  auto check = (*recovered)->Execute("//item/name");
  if (!check.ok()) return Fail(check.status());
  std::printf("post-recovery query: %llu matches\n",
              static_cast<unsigned long long>(check->total_matches));
  return 0;
}

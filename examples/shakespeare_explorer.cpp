// Interactive-style explorer: indexes the Shakespeare corpus and evaluates
// XPath queries given on the command line (or a default tour), printing
// the translated SQL and the first matching lines via the cursor API —
// bounded enumeration with projected content, no DOM retained.
//
// Build & run:  ./build/examples/shakespeare_explorer ["/PLAYS/PLAY/TITLE" ...]

#include <cstdio>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "gen/generator.h"

int main(int argc, char** argv) {
  blas::Result<blas::BlasSystem> sys = blas::BlasSystem::FromEvents(
      [](blas::SaxHandler* h) {
        blas::GenerateShakespeare(blas::GenOptions{}, h);
      });
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  blas::BlasSystem::DocStats stats = sys->doc_stats();
  std::printf("Shakespeare corpus: %zu nodes, %zu tags, depth %d\n\n",
              stats.nodes, stats.tags, stats.depth);

  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  if (queries.empty()) {
    queries = {
        "/PLAYS/PLAY/TITLE",
        "//SPEECH/SPEAKER",
        "/PLAYS/PLAY/ACT/SCENE[TITLE ='SCENE III. A public place.']//LINE",
        "//LINE/STAGEDIR",
        "/PLAYS/PLAY[EPILOGUE]/TITLE",
    };
  }

  for (const std::string& q : queries) {
    std::printf("query: %s\n", q.c_str());
    blas::Result<std::string> sql =
        sys->ExplainSql(q, blas::Translator::kPushUp);
    if (!sql.ok()) {
      std::printf("  error: %s\n\n", sql.status().ToString().c_str());
      continue;
    }
    std::printf("push-up SQL:\n%s\n", sql->c_str());

    // Count everything once (unbounded cursors reproduce the legacy full
    // materialization)...
    blas::Result<blas::QueryResult> full =
        sys->Execute(q, blas::Translator::kPushUp, blas::Engine::kTwig);
    if (!full.ok()) {
      std::printf("  error: %s\n\n", full.status().ToString().c_str());
      continue;
    }
    std::printf("=> %zu matches in %.3f ms (%llu elements visited)\n",
                full->starts.size(), full->millis,
                static_cast<unsigned long long>(full->stats.elements));

    // ...then show the first three answers with content, paying only for
    // what is delivered: the bounded cursor stops its scans after three.
    blas::QueryOptions options;
    options.engine = blas::Engine::kAuto;
    options.limit = 3;
    options.projection = blas::Projection::kValue;
    blas::Result<blas::ResultCursor> cursor = sys->Open(q, options);
    if (!cursor.ok()) {
      std::printf("  error: %s\n\n", cursor.status().ToString().c_str());
      continue;
    }
    while (std::optional<blas::Match> match = cursor->Next()) {
      std::printf("   @%u: \"%s\"\n", match->start, match->content.c_str());
    }
    std::printf("   (%llu elements visited for the preview%s)\n\n",
                static_cast<unsigned long long>(cursor->stats().elements),
                cursor->streaming() ? ", streamed" : "");
  }
  return 0;
}

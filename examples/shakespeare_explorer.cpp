// Interactive-style explorer: indexes the Shakespeare corpus and evaluates
// XPath queries given on the command line (or a default tour), printing
// the translated SQL and result counts. Demonstrates the public API as a
// command-line tool.
//
// Build & run:  ./build/examples/shakespeare_explorer ["/PLAYS/PLAY/TITLE" ...]

#include <cstdio>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "gen/generator.h"

int main(int argc, char** argv) {
  blas::Result<blas::BlasSystem> sys = blas::BlasSystem::FromEvents(
      [](blas::SaxHandler* h) {
        blas::GenerateShakespeare(blas::GenOptions{}, h);
      });
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  blas::BlasSystem::DocStats stats = sys->doc_stats();
  std::printf("Shakespeare corpus: %zu nodes, %zu tags, depth %d\n\n",
              stats.nodes, stats.tags, stats.depth);

  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  if (queries.empty()) {
    queries = {
        "/PLAYS/PLAY/TITLE",
        "//SPEECH/SPEAKER",
        "/PLAYS/PLAY/ACT/SCENE[TITLE ='SCENE III. A public place.']//LINE",
        "//LINE/STAGEDIR",
        "/PLAYS/PLAY[EPILOGUE]/TITLE",
    };
  }

  for (const std::string& q : queries) {
    std::printf("query: %s\n", q.c_str());
    blas::Result<std::string> sql =
        sys->ExplainSql(q, blas::Translator::kPushUp);
    if (!sql.ok()) {
      std::printf("  error: %s\n\n", sql.status().ToString().c_str());
      continue;
    }
    std::printf("push-up SQL:\n%s\n", sql->c_str());
    blas::Result<blas::QueryResult> r =
        sys->Execute(q, blas::Translator::kPushUp, blas::Engine::kTwig);
    if (!r.ok()) {
      std::printf("  error: %s\n\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("=> %zu matches in %.3f ms (%llu elements visited)\n\n",
                r->starts.size(), r->millis,
                static_cast<unsigned long long>(r->stats.elements));
  }
  return 0;
}

// Query a multi-document collection through the scatter-gather merge
// cursor: four auction shards are indexed independently, a parallel
// cursor fans per-shard execution onto a worker pool and merges answers
// in (shard, document order), and a bounded "top-k" query cancels shards
// it never needs. The same collection is then fronted by a QueryService
// whose plan cache stores one parsed query plus one translated plan per
// shard.
//
// Usage:  ./build/collection_search

#include <chrono>
#include <cstdio>
#include <string>

#include "blas/collection.h"
#include "gen/generator.h"
#include "service/query_service.h"
#include "service/thread_pool.h"

namespace {

int Fail(const blas::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  // 1. Index four auction shards (distinct seeds -> distinct documents).
  blas::BlasCollection collection;
  for (int i = 0; i < 4; ++i) {
    blas::GenOptions gen;
    gen.seed = 42 + static_cast<uint64_t>(i);
    blas::Status added = collection.AddEvents(
        "shard" + std::to_string(i),
        [gen](blas::SaxHandler* h) { blas::GenerateAuction(gen, h); });
    if (!added.ok()) return Fail(added);
  }
  size_t nodes = 0;
  for (const std::string& name : collection.names()) {
    nodes += collection.Find(name)->doc_stats().nodes;
  }
  std::printf("collection: %zu shards, %zu nodes total\n\n",
              collection.size(), nodes);

  const char* query = "//closed_auction[price < \"100\"]/date";

  // 2. Sequential baseline vs. scatter-gather over a 4-thread pool.
  auto t0 = std::chrono::steady_clock::now();
  blas::Result<blas::BlasCollection::CollectionResult> sequential =
      collection.Execute(query);
  if (!sequential.ok()) return Fail(sequential.status());
  double seq_ms = MillisSince(t0);

  blas::ThreadPool pool(4, 64);
  t0 = std::chrono::steady_clock::now();
  blas::Result<blas::CollectionCursor> cursor =
      collection.OpenCursor(query, {}, {.pool = &pool});
  if (!cursor.ok()) return Fail(cursor.status());
  blas::Result<blas::BlasCollection::CollectionResult> parallel =
      cursor->Drain();
  if (!parallel.ok()) return Fail(parallel.status());
  double par_ms = MillisSince(t0);

  std::printf("%s\n", query);
  std::printf("  sequential: %5zu matches in %7.2f ms\n",
              sequential->total_matches, seq_ms);
  std::printf("  scatter-gather (4 threads): %5zu matches in %7.2f ms\n",
              parallel->total_matches, par_ms);

  // 3. Top-10 with cross-document early termination: shards the merge
  // never reaches are cancelled before they run.
  blas::QueryOptions top10;
  top10.limit = 10;
  top10.projection = blas::Projection::kValue;
  blas::Result<blas::CollectionCursor> bounded =
      collection.OpenCursor(query, top10, {.pool = &pool});
  if (!bounded.ok()) return Fail(bounded.status());
  std::printf("\nfirst 10 answers (shard, value):\n");
  while (std::optional<blas::CollectionMatch> m = bounded->Next()) {
    std::printf("  %-8s %s\n", std::string(m->document).c_str(),
                m->match.content.c_str());
  }
  blas::CollectionCursor::ScatterStats scatter = bounded->scatter_stats();
  std::printf("early termination: %zu/%zu shards executed, %zu cancelled\n",
              scatter.docs_executed, scatter.docs_total,
              scatter.docs_cancelled);

  // 4. The collection behind a concurrent service: one parse + one plan
  // per shard on the first request, pure cache hits afterwards.
  blas::QueryService service(&collection, {.worker_threads = 4});
  for (int round = 0; round < 3; ++round) {
    auto future = service.SubmitCollection({.xpath = query});
    blas::Result<blas::BlasCollection::CollectionResult> served =
        future.get();
    if (!served.ok()) return Fail(served.status());
  }
  blas::ServiceStats stats = service.stats();
  std::printf(
      "\nservice: %llu queries, plan cache %llu hits / %llu misses, "
      "per-shard plans %llu hits / %llu misses\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.plan_cache_hits),
      static_cast<unsigned long long>(stats.plan_cache_misses),
      static_cast<unsigned long long>(stats.doc_plan_hits),
      static_cast<unsigned long long>(stats.doc_plan_misses));
  return 0;
}

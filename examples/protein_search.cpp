// The paper's introduction scenario (section 1): a biologist looks for the
// title of a 2001 paper by Evans, M.J. about the cytochrome c protein
// family, using the XPath query of figure 2 over a protein repository.
//
// This example runs that exact query over the generated Protein corpus and
// prints the matched titles, comparing all four translators.
//
// Build & run:  ./build/examples/protein_search

#include <cstdio>
#include <map>

#include "blas/blas.h"
#include "gen/generator.h"
#include "gen/queries.h"
#include "xml/dom.h"

int main() {
  // Build the corpus, retaining the DOM so we can print matched text.
  blas::BlasOptions options;
  options.keep_dom = true;
  blas::Result<blas::BlasSystem> sys = blas::BlasSystem::FromEvents(
      [](blas::SaxHandler* h) {
        blas::GenerateProtein(blas::GenOptions{}, h);
      },
      options);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  std::printf("protein repository: %zu nodes\n\n",
              sys->doc_stats().nodes);

  std::string query = blas::PaperExampleQuery();
  std::printf("query Q (figure 2):\n  %s\n\n", query.c_str());

  // Execute with every translator; they must agree.
  std::map<std::string, blas::QueryResult> results;
  for (blas::Translator t :
       {blas::Translator::kDLabel, blas::Translator::kSplit,
        blas::Translator::kPushUp, blas::Translator::kUnfold}) {
    blas::Result<blas::QueryResult> r =
        sys->Execute(query, t, blas::Engine::kRelational);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", blas::TranslatorName(t),
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %6zu matches  %8llu elements  %2d D-joins  %.2f ms\n",
                blas::TranslatorName(t), r->starts.size(),
                static_cast<unsigned long long>(r->stats.elements),
                r->stats.d_joins, r->millis);
    results.emplace(blas::TranslatorName(t), std::move(r).value());
  }

  // Print the first few matched titles via the retained DOM.
  const blas::QueryResult& best = results.at("Unfold");
  std::map<uint32_t, const blas::DomNode*> by_start;
  sys->dom()->ForEach(
      [&](const blas::DomNode* n) { by_start[n->start] = n; });
  std::printf("\nfirst matches:\n");
  size_t shown = 0;
  for (uint32_t start : best.starts) {
    if (shown++ >= 5) break;
    std::printf("  title: \"%s\"\n", by_start.at(start)->text.c_str());
  }
  return 0;
}

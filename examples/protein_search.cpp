// The paper's introduction scenario (section 1): a biologist looks for the
// title of a 2001 paper by Evans, M.J. about the cytochrome c protein
// family, using the XPath query of figure 2 over a protein repository.
//
// This example runs that exact query over the generated Protein corpus,
// comparing all four translators, and prints the matched titles through
// the cursor projection layer — no retained DOM.
//
// Build & run:  ./build/examples/protein_search

#include <cstdio>
#include <string>

#include "blas/blas.h"
#include "gen/generator.h"
#include "gen/queries.h"

int main() {
  blas::Result<blas::BlasSystem> sys = blas::BlasSystem::FromEvents(
      [](blas::SaxHandler* h) {
        blas::GenerateProtein(blas::GenOptions{}, h);
      });
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  std::printf("protein repository: %zu nodes\n\n",
              sys->doc_stats().nodes);

  std::string query = blas::PaperExampleQuery();
  std::printf("query Q (figure 2):\n  %s\n\n", query.c_str());

  // Execute with every translator; they must agree.
  for (blas::Translator t :
       {blas::Translator::kDLabel, blas::Translator::kSplit,
        blas::Translator::kPushUp, blas::Translator::kUnfold}) {
    blas::Result<blas::QueryResult> r =
        sys->Execute(query, t, blas::Engine::kRelational);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", blas::TranslatorName(t),
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-12s %6zu matches  %8llu elements  %2llu D-joins  %.2f ms\n",
        blas::TranslatorName(t), r->starts.size(),
        static_cast<unsigned long long>(r->stats.elements),
        static_cast<unsigned long long>(r->stats.d_joins), r->millis);
  }

  // Print the first few matched titles straight from the index.
  blas::QueryOptions options;
  options.translator = blas::Translator::kUnfold;
  options.limit = 5;
  options.projection = blas::Projection::kValue;
  blas::Result<blas::ResultCursor> cursor = sys->Open(query, options);
  if (!cursor.ok()) {
    std::fprintf(stderr, "%s\n", cursor.status().ToString().c_str());
    return 1;
  }
  std::printf("\nfirst matches:\n");
  while (std::optional<blas::Match> match = cursor->Next()) {
    std::printf("  title: \"%s\"\n", match->content.c_str());
  }
  return 0;
}

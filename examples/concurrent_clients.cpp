// Concurrent clients: serve XPath queries from several client threads
// through one QueryService — bounded submission queue, worker pool,
// plan cache, and service-wide statistics.
//
// Build & run:  ./build/concurrent_clients [num_clients] [rounds]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "gen/generator.h"
#include "gen/queries.h"
#include "service/query_service.h"

int main(int argc, char** argv) {
  const int num_clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 25;

  // 1. Index the XMark-auction corpus once; the service shares it across
  //    all workers (the read path is thread-safe).
  blas::GenOptions gen_options;
  blas::Result<blas::BlasSystem> built = blas::BlasSystem::FromEvents(
      [&](blas::SaxHandler* h) { blas::GenerateAuction(gen_options, h); });
  if (!built.ok()) {
    std::fprintf(stderr, "index error: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  blas::BlasSystem sys = std::move(built).value();
  blas::BlasSystem::DocStats doc = sys.doc_stats();
  std::printf("indexed %zu nodes, %zu tags, %zu pages\n\n", doc.nodes,
              doc.tags, doc.pages);

  // 2. Start the service: 4 workers, bounded queue, 64-entry plan cache.
  blas::ServiceOptions options;
  options.worker_threads = 4;
  options.queue_capacity = 256;
  options.plan_cache_capacity = 64;
  blas::QueryService service(&sys, options);

  // 3. Each client thread submits the query mix every round and waits on
  //    its futures. Repeat queries hit the plan cache; Engine::kAuto lets
  //    the optimizer pick relational vs. twig per plan.
  // Wildcard probes need the Unfold translator (schema expansion); the
  // plain queries keep the Push-up default.
  std::vector<blas::QueryRequest> mix;
  for (const blas::BenchQuery& q : blas::Figure10Queries('A')) {
    blas::QueryRequest request;
    request.xpath = q.xpath;
    mix.push_back(std::move(request));
  }
  for (const char* probe :
       {"//item//*/shipping", "//closed_auction//*/price"}) {
    blas::QueryRequest request;
    request.xpath = probe;  // structural pattern probe (plan-cache heaven)
    request.options.translator = blas::Translator::kUnfold;
    mix.push_back(std::move(request));
  }

  blas::Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&service, &mix, rounds, c] {
      size_t matches = 0;
      for (int round = 0; round < rounds; ++round) {
        std::vector<blas::QueryRequest> batch = mix;
        for (auto& future : service.SubmitBatch(std::move(batch))) {
          blas::Result<blas::QueryResult> result = future.get();
          if (result.ok()) matches += result->starts.size();
        }
      }
      std::printf("client %d done (%zu matches total)\n", c, matches);
    });
  }
  for (std::thread& t : clients) t.join();
  double seconds = wall.ElapsedSeconds();

  // 4. Service-wide roll-up.
  blas::ServiceStats stats = service.stats();
  uint64_t lookups = stats.plan_cache_hits + stats.plan_cache_misses;
  std::printf(
      "\n%llu queries in %.2fs (%.0f q/s) on %zu workers\n"
      "plan cache: %llu hits / %llu misses (%.1f%% hit rate)\n"
      "storage: %llu elements visited, %llu page reads, %llu simulated "
      "disk\n",
      static_cast<unsigned long long>(stats.completed), seconds,
      static_cast<double>(stats.completed) / seconds,
      service.worker_threads(),
      static_cast<unsigned long long>(stats.plan_cache_hits),
      static_cast<unsigned long long>(stats.plan_cache_misses),
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(stats.plan_cache_hits) /
                         static_cast<double>(lookups),
      static_cast<unsigned long long>(stats.exec.elements),
      static_cast<unsigned long long>(stats.exec.page_fetches),
      static_cast<unsigned long long>(stats.exec.page_misses));
  return 0;
}

"""Dependency-free structural frontend for blas-analyze.

Parses C++ sources into the shared IR (ir.py) with a real lexical model —
a brace-scope tree, typed local declarations, RAII/manual lock
acquisitions, call sites, returns, member assignments and a class table —
without a compiler. It is not a C++ parser; it is a scope-and-declaration
scanner tuned to this codebase's vocabulary (the tools/lint.py invariants
keep that vocabulary closed: every lock is a blas::Mutex, every scoped
acquisition a MutexLock). The libclang frontend (clang_frontend.py)
produces the same IR from a real AST when the bindings are available; the
checks cannot tell the two apart.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Tuple

from ir import (Assign, Call, ClassInfo, Field, FileIR, FunctionIR, Lambda,
                LockAcquire, Return, Scope, VarDecl, parse_allow_markers)

# ---------------------------------------------------------------------------
# Text preparation
# ---------------------------------------------------------------------------


def blank_comments_and_strings(text: str) -> str:
    """Replaces comment bodies and string/char literal bodies with spaces,
    preserving every newline and character offset."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    if text[i] != "\n":
                        out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1  # past the closing quote
        else:
            i += 1
    return "".join(out)


def strip_preprocessor(text: str) -> str:
    """Blanks preprocessor lines (#include, #define, ...) including their
    backslash continuations, preserving newlines."""
    lines = text.split("\n")
    in_directive = False
    for idx, line in enumerate(lines):
        stripped = line.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            lines[idx] = " " * len(line)
        else:
            in_directive = False
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Brace-tree construction
# ---------------------------------------------------------------------------


class Block:
    """One `{...}` region: header text (from the previous statement
    boundary to the `{`), body span, and nested child blocks."""

    __slots__ = ("header", "start", "end", "children", "kind", "name",
                 "line", "body_start")

    def __init__(self, header: str, start: int, line: int):
        self.header = header
        self.start = start  # offset of '{'
        self.body_start = start + 1
        self.end = -1  # offset of matching '}'
        self.children: List["Block"] = []
        self.kind = ""  # namespace | class | function | control | lambda |
        #               # init | enum
        self.name = ""
        self.line = line


CONTROL_KEYWORDS = ("if", "for", "while", "switch", "catch", "else", "do",
                    "try", "case", "default")

# Trailing function qualifiers/annotations stripped before classifying a
# block header as a function definition.
_TRAILER_RE = re.compile(
    r"\s*(const|noexcept|override|final|mutable|->\s*[\w:<>,*&\s]+"
    r"|BLAS_[A-Z_]+(\([^()]*(\([^()]*\))?[^()]*\))?"
    r"|__attribute__\s*\(\([^)]*\)\)"
    r"|noexcept\s*\([^)]*\))\s*$")

_CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:BLAS_[A-Z_]+\s*(?:\([^)]*\))?\s*"
    r"|\[\[[^\]]*\]\]\s*|alignas\s*\([^)]*\)\s*)*([A-Za-z_]\w*)"
    r"(?:\s*final)?\s*(?::[^;{]*)?$")

_NAMESPACE_RE = re.compile(r"\bnamespace\s*([A-Za-z_]\w*)?\s*$")


def _strip_trailers(header: str) -> str:
    prev = None
    while prev != header:
        prev = header
        header = _TRAILER_RE.sub("", header).rstrip()
        # A constructor initializer list: "...) : member_(x), member_{y}"
        # — cut everything after a top-level ") :" back to the ")".
        m = _match_init_list(header)
        if m is not None:
            header = m
    return header


def _match_init_list(header: str) -> Optional[str]:
    """If header looks like `...) : inits`, returns the prefix ending at
    the `)`; else None."""
    depth = 0
    for i, c in enumerate(header):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                continue  # part of ::
            if i > 0 and header[i - 1] == ":":
                continue
            prefix = header[:i].rstrip()
            if prefix.endswith(")"):
                return prefix
    return None


def _classify(block: Block, enclosing: Optional[Block]) -> None:
    header = " ".join(block.header.split())
    if not header:
        # Bare scope block (or a namespace continuation) — treat as
        # control so its contents still parse as statements.
        block.kind = "control"
        return
    m = _NAMESPACE_RE.search(header)
    if m:
        block.kind = "namespace"
        block.name = m.group(1) or ""
        return
    if re.search(r"\benum\b", header):
        block.kind = "enum"
        return
    m = _CLASS_RE.search(header)
    if m:
        block.kind = "class"
        block.name = m.group(2)
        return
    # Lambda introducer directly before the brace (`[...](...){`,
    # `[...] {`, possibly with mutable/-> type trailers).
    lam = re.search(r"\[([^\[\]]*)\]\s*(\([^)]*\))?\s*"
                    r"(mutable\s*)?(->\s*[\w:<>,*&\s]+)?$", header)
    if lam is not None and (lam.group(2) is not None
                            or header.rstrip().endswith("]")):
        block.kind = "lambda"
        block.name = lam.group(1)
        return
    stripped = _strip_trailers(header)
    first_word = re.match(r"[A-Za-z_]\w*", stripped)
    if first_word and first_word.group(0) in CONTROL_KEYWORDS:
        block.kind = "control"
        return
    if stripped.endswith("="):
        block.kind = "init"  # brace initializer: `int a[] = {...}`
        return
    if stripped.endswith(")"):
        name = _function_name(stripped)
        if name:
            block.kind = "function"
            block.name = name
            return
    block.kind = "control"


def _function_name(header: str) -> Optional[str]:
    """Extracts the (possibly qualified) function name from a header that
    ends with the parameter list's `)`."""
    # Find the matching '(' of the final ')'.
    depth = 0
    open_idx = -1
    for i in range(len(header) - 1, -1, -1):
        c = header[i]
        if c == ")":
            depth += 1
        elif c == "(":
            depth -= 1
            if depth == 0:
                open_idx = i
                break
    if open_idx <= 0:
        return None
    before = header[:open_idx].rstrip()
    m = re.search(r"((?:[A-Za-z_]\w*::)*(?:~?[A-Za-z_]\w*|operator[^\s]*))$",
                  before)
    if not m:
        return None
    name = m.group(1)
    kw = name.split("::")[-1]
    if kw in CONTROL_KEYWORDS or kw in ("return", "sizeof", "alignof",
                                        "decltype", "static_assert"):
        return None
    return name


def build_block_tree(text: str) -> List[Block]:
    """Parses blanked text into a forest of brace blocks."""
    roots: List[Block] = []
    stack: List[Block] = []
    header_start = 0
    line = 1
    i, n = 0, len(text)
    lines_before = [0]  # running newline count, maintained inline
    newlines_upto = 0
    last_boundary = 0
    for i in range(n):
        c = text[i]
        if c == "\n":
            newlines_upto += 1
            continue
        if c == "{":
            header = text[last_boundary:i]
            blk = Block(header, i, newlines_upto + 1)
            parent = stack[-1] if stack else None
            _classify(blk, parent)
            if parent is not None:
                parent.children.append(blk)
            else:
                roots.append(blk)
            stack.append(blk)
            last_boundary = i + 1
        elif c == "}":
            if stack:
                stack[-1].end = i
                stack.pop()
            last_boundary = i + 1
        elif c == ";":
            last_boundary = i + 1
    return roots


# ---------------------------------------------------------------------------
# Class parsing
# ---------------------------------------------------------------------------

_GUARDED_RE = re.compile(r"BLAS_GUARDED_BY\s*\(([^()]*(?:\([^()]*\))?[^()]*)\)")
_PT_GUARDED_RE = re.compile(
    r"BLAS_PT_GUARDED_BY\s*\(([^()]*(?:\([^()]*\))?[^()]*)\)")
_ACQ_BEFORE_RE = re.compile(r"BLAS_ACQUIRED_BEFORE\s*\(([^)]*)\)")
_ACQ_AFTER_RE = re.compile(r"BLAS_ACQUIRED_AFTER\s*\(([^)]*)\)")

_FIELD_SKIP_RE = re.compile(
    r"^\s*(public|private|protected)\s*$|^\s*(using|typedef|friend|template"
    r"|static_assert|enum)\b")


def _split_statements(text: str, base_offset: int,
                      children: List[Block]) -> List[Tuple[int, str]]:
    """Splits a block body (child blocks excluded) into `;`-terminated
    statements at paren depth 0. Returns (offset, text) pairs; the text of
    a statement whose body contained a child block keeps a '{}'
    placeholder so regexes don't cross it."""
    # Blank out child block bodies, keep newlines.
    buf = list(text)
    for child in children:
        lo = child.start - base_offset
        hi = (child.end if child.end >= 0 else base_offset + len(text)) \
            - base_offset
        for k in range(lo + 1, min(hi, len(buf))):
            if buf[k] != "\n":
                buf[k] = " "
    blanked = "".join(buf)
    out: List[Tuple[int, str]] = []
    depth = 0
    start = 0
    for i, c in enumerate(blanked):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        elif c in ";}" and depth == 0:
            stmt = blanked[start:i]
            if stmt.strip():
                out.append((base_offset + start, stmt))
            start = i + 1
        elif c == ":" and depth == 0:
            # Access specifier / label boundary ("public:"), but not "::".
            prev = blanked[i - 1] if i > 0 else ""
            nxt = blanked[i + 1] if i + 1 < len(blanked) else ""
            if prev != ":" and nxt != ":":
                seg = blanked[start:i].strip()
                if seg in ("public", "private", "protected", "default",
                           "case") or seg.startswith("case "):
                    start = i + 1
    tail = blanked[start:]
    if tail.strip():
        out.append((base_offset + start, tail))
    return out


_MUTEX_TYPE_RE = re.compile(r"(?:^|[\s:<])(?:blas::)?Mutex\s*$")
_CONDVAR_TYPE_RE = re.compile(r"(?:^|[\s:<])(?:blas::)?CondVar\s*$")


def _parse_field(stmt: str, line: int) -> Optional[Field]:
    text = stmt.strip()
    if not text or _FIELD_SKIP_RE.match(text):
        return None
    guarded = _GUARDED_RE.search(text)
    pt_guarded = _PT_GUARDED_RE.search(text)
    acq_before = _ACQ_BEFORE_RE.search(text)
    acq_after = _ACQ_AFTER_RE.search(text)
    for rx in (_GUARDED_RE, _PT_GUARDED_RE, _ACQ_BEFORE_RE, _ACQ_AFTER_RE):
        text = rx.sub(" ", text)
    text = re.sub(r"\[\[[^\]]*\]\]", " ", text).strip()
    # Cut a default initializer: `= expr` or trailing `{...}` (the block
    # tree already blanked brace bodies; a flat `{0}` survives here).
    text = _cut_initializer(text)
    if not text or "operator" in text:
        return None
    if re.match(r"^(struct|class|union)\s+[A-Za-z_]\w*$", text):
        return None  # forward declaration
    # A declaration with a top-level '(' is a function/ctor declaration,
    # not a field (template args were handled by _cut_initializer's
    # angle-aware scan below).
    if _has_toplevel_paren(text):
        return None
    m = re.match(r"^((?:mutable|static|constexpr|inline|volatile)\s+)*(.+)$",
                 text, re.S)
    quals = text[:m.start(2)] if m else ""
    rest = (m.group(2) if m else text).strip()
    dm = re.match(r"^(.*?[\s&*>])\s*([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*$",
                  rest, re.S)
    if not dm:
        return None
    type_text = dm.group(1).strip()
    name = dm.group(2)
    if not type_text or type_text.endswith(("::", ",")):
        return None
    is_const = bool(re.match(r"^\s*const\b", type_text)) and \
        "*" not in type_text.split("const")[-1]
    # `const T* p` is a mutable pointer to const; only a const
    # *object/pointer itself* is immutable. Approximate: const qualifies
    # the field iff the declarator has no '*' after the const, or ends
    # with "* const".
    if "*" in type_text:
        is_const = bool(re.search(r"\*\s*const\s*$", type_text))
    return Field(
        name=name,
        type_text=type_text,
        line=line,
        is_mutable="mutable" in quals,
        is_static="static" in quals or "constexpr" in quals,
        is_const=is_const or "constexpr" in quals,
        is_atomic=bool(re.match(r"^(std::)?atomic\s*<", type_text)),
        is_reference=type_text.endswith("&"),
        is_mutex=_MUTEX_TYPE_RE.search(type_text) is not None,
        is_condvar=_CONDVAR_TYPE_RE.search(type_text) is not None,
        guarded_by=guarded.group(1).strip() if guarded else None,
        pt_guarded_by=pt_guarded.group(1).strip() if pt_guarded else None,
        acquired_before=[a.strip() for a in acq_before.group(1).split(",")]
        if acq_before else [],
        acquired_after=[a.strip() for a in acq_after.group(1).split(",")]
        if acq_after else [],
    )


def _cut_initializer(text: str) -> str:
    depth_angle = 0
    depth = 0
    for i, c in enumerate(text):
        if c == "<":
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() or prev in "_>":
                depth_angle += 1
        elif c == ">" and depth_angle > 0:
            depth_angle -= 1
        elif c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        elif c in "={" and depth == 0 and depth_angle == 0:
            if c == "=" and i + 1 < len(text) and text[i + 1] == "=":
                continue
            return text[:i].strip()
    return text.strip()


def _has_toplevel_paren(text: str) -> bool:
    depth_angle = 0
    for i, c in enumerate(text):
        if c == "<":
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() or prev in "_>":
                depth_angle += 1
        elif c == ">" and depth_angle > 0:
            depth_angle -= 1
        elif c == "(" and depth_angle == 0:
            return True
    return False


# ---------------------------------------------------------------------------
# Function-body parsing
# ---------------------------------------------------------------------------

_CALL_RE = re.compile(
    r"((?:[A-Za-z_][\w]*(?:::|\.|->))*)(~?[A-Za-z_]\w*)\s*\(")
_NOT_CALLS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "static_assert", "assert", "defined", "case",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "alignas", "noexcept", "new", "delete", "throw", "co_await", "co_return",
))

_DECL_RE = re.compile(
    r"^\s*(?:(?:const|constexpr|static|volatile|inline|mutable)\s+)*"
    r"(?:auto|[A-Za-z_][\w]*(?:::[A-Za-z_]\w*)*(?:<[^;{}]*>)?"
    r"(?:::[A-Za-z_]\w*)*)\s*[&*]*\s*"
    r"(?<=[\s&*])([A-Za-z_]\w*)\s*(=|\(|\{|;|$)", re.S)

_ASSIGN_RE = re.compile(
    r"^\s*((?:this->)?[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*"
    r"(?:\[[^\]]*\])?)\s*[+\-|&^]?=(?!=)\s*(.*)$", re.S)

_RETURN_RE = re.compile(r"^\s*return\b\s*(.*)$", re.S)


def _line_of(offset: int, newline_index: List[int]) -> int:
    """1-based line number of a character offset via binary search over
    newline offsets."""
    import bisect
    return bisect.bisect_right(newline_index, offset) + 1


def _extract_arg(stmt: str, after: int) -> str:
    """Returns the text of the parenthesized argument list starting at
    offset `after` (which must point at '(')."""
    depth = 0
    for i in range(after, len(stmt)):
        if stmt[i] == "(":
            depth += 1
        elif stmt[i] == ")":
            depth -= 1
            if depth == 0:
                return stmt[after + 1:i]
    return stmt[after + 1:]


class _FunctionParser:
    def __init__(self, text: str, newline_index: List[int]):
        self.text = text
        self.newline_index = newline_index

    def parse(self, block: Block, qualname: str, cls: Optional[str],
              header: str) -> FunctionIR:
        requires = [a.strip()
                    for m in re.finditer(
                        r"BLAS_REQUIRES(?:_SHARED)?\s*\(([^)]*)\)", header)
                    for a in m.group(1).split(",")]
        excludes = [a.strip()
                    for m in re.finditer(r"BLAS_EXCLUDES\s*\(([^)]*)\)",
                                         header)
                    for a in m.group(1).split(",")]
        ret = self._return_type(header)
        body = self._parse_scope(block, None)
        return FunctionIR(qualname=qualname, cls=cls, file="",
                          line=block.line, return_type=ret, body=body,
                          requires=requires, excludes=excludes)

    def _return_type(self, header: str) -> str:
        stripped = _strip_trailers(" ".join(header.split()))
        name = _function_name(stripped)
        if not name:
            return ""
        idx = stripped.rfind(name + "(")
        if idx < 0:
            idx = stripped.rfind(name)
        return stripped[:idx].strip() if idx > 0 else ""

    def _parse_scope(self, block: Block, parent: Optional[Scope]) -> Scope:
        end = block.end if block.end >= 0 else len(self.text) - 1
        scope = Scope(start_line=_line_of(block.start, self.newline_index),
                      end_line=_line_of(end, self.newline_index),
                      parent=parent)
        body_text = self.text[block.body_start:end]
        stmts = _split_statements(body_text, block.body_start,
                                  block.children)
        for off, stmt in stmts:
            self._parse_statement(stmt, off, scope)
        for child in block.children:
            self._parse_child(child, scope)
        return scope

    def _parse_child(self, child: Block, scope: Scope) -> None:
        if child.kind == "lambda":
            body = self._parse_scope(child, scope)
            body.is_lambda_body = True
            scope.lambdas.append(
                Lambda(capture_text=child.name, line=child.line, body=body))
            scope.children.append(body)
            # The header text precedes the `{` at child.start.
            self._scan_expressions(child.header,
                                   child.start - len(child.header), scope)
            return
        if child.kind in ("class", "enum", "namespace"):
            return  # local classes: out of scope for the checks
        # control / init / nested function-looking blocks: a scope child.
        body = self._parse_scope(child, scope)
        scope.children.append(body)
        # The header (condition text) belongs to the parent scope, except
        # TryLock guards which acquire inside the child. The header text
        # precedes the `{` at child.start.
        self._scan_expressions(child.header,
                               child.start - len(child.header), scope,
                               skip_trylock=True)
        m = re.search(r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)"
                      r"(?:\.|->)TryLock\s*\(\s*\)", child.header)
        if m and re.match(r"\s*if\b", child.header.strip()):
            body.locks.append(LockAcquire(
                var_name="", mutex_expr=m.group(1), mutex_id="",
                line=body.start_line, scope=body, is_try=True))

    def _parse_statement(self, stmt: str, off: int, scope: Scope) -> None:
        line = _line_of(off + len(stmt) - len(stmt.lstrip()),
                        self.newline_index)
        text = stmt.strip()
        if not text:
            return
        rm = _RETURN_RE.match(text)
        if rm:
            scope.returns.append(Return(expr=rm.group(1).strip(), line=line))
            self._scan_expressions(stmt, off, scope)
            return
        if text.startswith("BLAS_ASSIGN_OR_RETURN"):
            # The macro declares its first argument: `BLAS_ASSIGN_OR_RETURN(
            # ManifestWriter writer, expr)`.
            arg = _extract_arg(text, text.index("("))
            first = arg.split(",")[0].strip()
            adm = re.match(r"^(.*[\s&*])([A-Za-z_]\w*)$", first, re.S)
            if adm:
                scope.decls.append(VarDecl(
                    name=adm.group(2), type_text=adm.group(1).strip(),
                    line=line,
                    init_text=arg.partition(",")[2].strip()))
            self._scan_expressions(stmt, off, scope)
            return
        dm = _DECL_RE.match(text)
        is_decl = False
        if dm:
            name = dm.group(1)
            type_text = text[:dm.start(1)].strip()
            # Reject false declarations: "foo.bar baz", keywords, or a
            # "type" that is actually an expression.
            if (type_text and "." not in type_text
                    and "->" not in type_text
                    and not re.match(r"^(return|delete|throw|goto|new|else"
                                     r"|case|using|typedef|break|continue)\b",
                                     type_text)):
                init = text[dm.end(1):].strip()
                if init.startswith("("):
                    init = _extract_arg(text, dm.end(1) + text[dm.end(1):]
                                        .index("("))
                elif init.startswith("="):
                    init = init[1:].strip().rstrip(";")
                elif init.startswith("{"):
                    init = init[1:].rstrip("}")
                decl = VarDecl(name=name, type_text=type_text, line=line,
                               init_text=init)
                scope.decls.append(decl)
                is_decl = True
                if re.search(r"\bMutexLock\s*$", type_text):
                    scope.locks.append(LockAcquire(
                        var_name=name, mutex_expr=init.strip(),
                        mutex_id="", line=line, scope=scope))
        if not is_decl:
            am = _ASSIGN_RE.match(text)
            if am:
                scope.assigns.append(
                    Assign(lhs=am.group(1), rhs=am.group(2).strip(),
                           line=line))
        self._scan_expressions(stmt, off, scope)

    def _scan_expressions(self, stmt: str, off: int, scope: Scope,
                          skip_trylock: bool = False) -> None:
        base_line_off = off
        for m in _CALL_RE.finditer(stmt):
            name = m.group(2)
            if name in _NOT_CALLS:
                continue
            chain = m.group(1).rstrip()
            base = None
            if chain:
                base = re.split(r"::|\.|->", chain.rstrip(".:->"))[0] or None
                if chain.endswith("::"):
                    base = chain[:-2]
            line = _line_of(base_line_off + m.start(2), self.newline_index)
            arg = _extract_arg(stmt, m.end() - 1)
            call = Call(name=name, base=base, line=line, arg_text=arg)
            scope.calls.append(call)
            # Manual Lock()/Unlock() pairing.
            if name == "Lock" and chain and not skip_trylock:
                scope.locks.append(LockAcquire(
                    var_name="", mutex_expr=chain.rstrip(".:->"),
                    mutex_id="", line=line, scope=scope))
            elif name == "Unlock" and chain:
                target = chain.rstrip(".:->")
                for acq in reversed(scope.locks):
                    if (acq.var_name == "" and acq.mutex_expr == target
                            and acq.release_line is None):
                        acq.release_line = line
                        break


# ---------------------------------------------------------------------------
# File driver
# ---------------------------------------------------------------------------


def parse_file(repo_root: str, rel_path: str) -> FileIR:
    with open(os.path.join(repo_root, rel_path), encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.split("\n")
    blanked = strip_preprocessor(blank_comments_and_strings(raw))
    newline_index = [i for i, c in enumerate(blanked) if c == "\n"]
    roots = build_block_tree(blanked)
    fir = FileIR(path=rel_path, allows=parse_allow_markers(raw_lines))
    parser = _FunctionParser(blanked, newline_index)

    def visit(block: Block, class_path: List[str]) -> None:
        if block.kind == "namespace":
            for child in block.children:
                visit(child, class_path)
            return
        if block.kind == "class":
            qual = class_path + [block.name]
            cls = ClassInfo(name="::".join(qual), file=rel_path,
                            line=block.line)
            end = block.end if block.end >= 0 else len(blanked) - 1
            body = blanked[block.body_start:end]
            for off, stmt in _split_statements(body, block.body_start,
                                               block.children):
                line = _line_of(off + len(stmt) - len(stmt.lstrip()),
                                newline_index)
                field = _parse_field(stmt, line)
                if field is not None:
                    cls.fields.append(field)
            # Default member initializers with braces split the field
            # statement around an `init` child block: recover
            # `std::atomic<bool> obsolete{true};` style fields from the
            # headers of such children.
            for child in block.children:
                if child.kind in ("class", "enum"):
                    continue
                header = child.header.strip()
                if child.kind in ("control", "init") and header and \
                        not header.endswith(("=", ")")):
                    field = _parse_field(header, child.line)
                    if field is not None and \
                            cls.field(field.name) is None:
                        cls.fields.append(field)
            fir.classes.append(cls)
            for child in block.children:
                if child.kind == "class":
                    visit(child, qual)
                elif child.kind == "function":
                    fn = parser.parse(child, "::".join(qual) + "::" +
                                      child.name, "::".join(qual),
                                      child.header)
                    fn.file = rel_path
                    fir.functions.append(fn)
            return
        if block.kind == "function":
            name = block.name
            cls = None
            if "::" in name:
                cls = name.rsplit("::", 1)[0]
            elif class_path:
                cls = "::".join(class_path)
                name = cls + "::" + name
            fn = parser.parse(block, name, cls, block.header)
            fn.file = rel_path
            fir.functions.append(fn)
            return
        for child in block.children:
            visit(child, class_path)

    for root in roots:
        visit(root, [])
    return fir

#!/usr/bin/env python3
"""blas-analyze: project-specific AST invariant checks for blas.

Runs four checks (pin-escape, lock-order, blocking-under-lock,
guarded-coverage) over the source tree and compares the findings against
a checked-in suppression baseline. See tools/README.md.

Exit codes: 0 clean (or all findings baselined), 1 non-baselined
findings, 2 usage/environment error.

Frontends:
  structural  pure-Python scope/type extraction; always available.
  libclang    clang.cindex over compile_commands.json; used when the
              `clang` Python package and a libclang shared object are
              importable (CI installs the wheel).
  auto        libclang if importable, else structural.  [default]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks as checks_mod  # noqa: E402
import structural  # noqa: E402
from ir import CHECK_NAMES, FileIR, ProjectIR  # noqa: E402

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline.json")


def discover_sources(repo_root: str, paths: list) -> list:
    """Repo-relative .h/.cc files under the given roots (default:
    src + tests, minus analyzer fixtures and compile_fail cases)."""
    roots = paths or ["src", "tests"]
    out = []
    for root in roots:
        abs_root = os.path.join(repo_root, root)
        if os.path.isfile(abs_root):
            out.append(os.path.relpath(abs_root, repo_root))
            continue
        for dirpath, _dirnames, filenames in os.walk(abs_root):
            rel_dir = os.path.relpath(dirpath, repo_root)
            # Fixture snippets are test INPUTS for the analyzer, not code
            # under analysis; compile_fail cases are deliberately broken.
            if rel_dir.startswith(os.path.join("tests", "analyze")) or \
                    rel_dir.startswith(os.path.join("tests",
                                                    "compile_fail")):
                continue
            for name in sorted(filenames):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    out.append(os.path.relpath(
                        os.path.join(dirpath, name), repo_root))
    return sorted(set(out))


def load_frontend(name: str, compile_commands: str):
    """Returns (parse_fn, resolved_name). parse_fn(repo_root, rel_path)
    -> FileIR."""
    if name in ("libclang", "auto"):
        try:
            import clang_frontend
            parse = clang_frontend.make_parser(compile_commands)
            return parse, "libclang"
        except Exception as exc:  # noqa: BLE001 - any failure falls back
            if name == "libclang":
                print(f"blas-analyze: libclang frontend unavailable: {exc}",
                      file=sys.stderr)
                sys.exit(2)
            print(f"blas-analyze: libclang unavailable ({exc}); "
                  "falling back to the structural frontend",
                  file=sys.stderr)
    return structural.parse_file, "structural"


def load_baseline(path: str) -> dict:
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    return {entry["key"]: entry for entry in data.get("findings", [])}


def save_baseline(path: str, findings: list) -> None:
    data = {
        "comment": "Suppressed blas-analyze findings. Keys are "
                   "line-independent; regenerate with --update-baseline "
                   "and justify every entry in the PR that adds it.",
        "findings": [
            {"key": f.key, "message": f.text()} for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")


def main() -> int:
    ap = argparse.ArgumentParser(prog="blas-analyze",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=REPO_ROOT,
                    help="repository root (default: auto-detected)")
    ap.add_argument("--paths", nargs="*", default=None,
                    help="files or directories to analyze, repo-relative "
                         "(default: src tests)")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "structural", "libclang"))
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the libclang frontend "
                         "(default: <repo>/build/compile_commands.json)")
    ap.add_argument("--checks", default=None,
                    help="comma-separated subset of: "
                         + ", ".join(CHECK_NAMES))
    ap.add_argument("--json", dest="json_out", default=None,
                    help="also write findings as JSON to this file "
                         "('-' for stdout)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="suppression baseline (default: "
                         "tools/analyze/baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report every finding, ignoring the baseline")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to the current findings")
    args = ap.parse_args()

    repo = os.path.abspath(args.repo)
    check_names = None
    if args.checks:
        check_names = [c.strip() for c in args.checks.split(",") if
                       c.strip()]
        unknown = [c for c in check_names if c not in CHECK_NAMES]
        if unknown:
            print(f"blas-analyze: unknown check(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    compile_commands = args.compile_commands or os.path.join(
        repo, "build", "compile_commands.json")
    parse, frontend = load_frontend(args.frontend, compile_commands)

    rel_paths = discover_sources(repo, args.paths)
    if not rel_paths:
        print("blas-analyze: no source files found", file=sys.stderr)
        return 2

    files = []
    for rel in rel_paths:
        try:
            fir = parse(repo, rel)
        except Exception as exc:  # noqa: BLE001
            print(f"blas-analyze: failed to parse {rel}: {exc}",
                  file=sys.stderr)
            return 2
        if fir is not None:
            files.append(fir)

    project = ProjectIR(files)
    findings = checks_mod.run_checks(project, check_names)

    if args.update_baseline:
        save_baseline(args.baseline, findings)
        print(f"blas-analyze: wrote {len(findings)} finding(s) to "
              f"{os.path.relpath(args.baseline, repo)}")
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    new = [f for f in findings if f.key not in baseline]
    stale = [k for k in baseline if k not in {f.key for f in findings}]

    if args.json_out:
        payload = json.dumps({
            "frontend": frontend,
            "files_analyzed": len(files),
            "findings": [f.to_json() for f in findings],
            "new": [f.to_json() for f in new],
            "stale_baseline_keys": stale,
        }, indent=2) + "\n"
        if args.json_out == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(payload)

    for f in new:
        print(f.text())
    for k in stale:
        print(f"blas-analyze: note: stale baseline entry (no longer "
              f"fires): {k}", file=sys.stderr)
    summary = (f"blas-analyze [{frontend}]: {len(files)} files, "
               f"{len(findings)} finding(s), {len(findings) - len(new)} "
               f"baselined, {len(new)} new")
    print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())

"""Intermediate representation shared by every blas-analyze frontend.

A frontend (structural or libclang) reduces each translation unit to this
IR; the checks in checks.py run only against the IR, so both frontends
enforce identical rules. The IR is deliberately small: scopes, typed
declarations, lock acquisitions, calls, returns and assignments inside
function bodies, plus a class table of fields and their thread-safety
annotations. That is exactly the vocabulary the four checks reason in.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set, Tuple

# Inline suppression: `// blas-analyze: allow(check-a, check-b) -- reason`
# on the finding line or the line directly above it.
ALLOW_RE = re.compile(r"blas-analyze:\s*allow\(([a-z\-,\s]+)\)")

CHECK_NAMES = (
    "pin-escape",
    "lock-order",
    "blocking-under-lock",
    "guarded-coverage",
)


@dataclasses.dataclass
class Field:
    """One data member of a class."""

    name: str
    type_text: str
    line: int
    is_mutable: bool = False
    is_static: bool = False
    is_const: bool = False
    is_atomic: bool = False
    is_reference: bool = False
    is_mutex: bool = False
    is_condvar: bool = False
    guarded_by: Optional[str] = None
    pt_guarded_by: Optional[str] = None
    # BLAS_ACQUIRED_BEFORE/AFTER argument lists on mutex members.
    acquired_before: List[str] = dataclasses.field(default_factory=list)
    acquired_after: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ClassInfo:
    """A class/struct, qualified by its lexical class nesting (Outer::Inner;
    namespaces are intentionally dropped — the project is one namespace
    deep and check logic matches on the class-nesting path only)."""

    name: str
    file: str
    line: int
    fields: List[Field] = dataclasses.field(default_factory=list)

    def field(self, name: str) -> Optional[Field]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def mutex_fields(self) -> List[Field]:
        return [f for f in self.fields if f.is_mutex]


@dataclasses.dataclass
class VarDecl:
    """A local variable declaration inside a function scope."""

    name: str
    type_text: str
    line: int
    init_text: str = ""


@dataclasses.dataclass
class Call:
    """One call site. `name` is the last path component (`Append` for
    `writer_->Append(...)`), `base` the receiver expression if any."""

    name: str
    base: Optional[str]
    line: int
    arg_text: str = ""


@dataclasses.dataclass
class Assign:
    lhs: str
    rhs: str
    line: int


@dataclasses.dataclass
class Return:
    expr: str
    line: int


@dataclasses.dataclass
class LockAcquire:
    """A critical section: RAII MutexLock, manual Lock()/Unlock() pair, or
    a TryLock-guarded branch. Live from `line` to the end of `scope`
    (or `release_line` when an explicit Unlock was matched)."""

    var_name: str  # lock variable ("" for manual acquisitions)
    mutex_expr: str  # source text of the mutex operand
    mutex_id: str  # resolved identity, e.g. "LiveCollection::state_mu_"
    line: int
    scope: "Scope"
    is_try: bool = False
    release_line: Optional[int] = None

    def live_at(self, line: int) -> bool:
        if line < self.line:
            return False
        end = self.release_line if self.release_line is not None \
            else self.scope.end_line
        return line <= end


@dataclasses.dataclass
class Lambda:
    """A lambda expression: its capture list plus the scope of its body."""

    capture_text: str
    line: int
    body: "Scope"


@dataclasses.dataclass
class Scope:
    """A lexical brace scope inside a function body."""

    start_line: int
    end_line: int
    # True when this scope is the body of a lambda: code inside runs in a
    # deferred execution context, so locks held lexically outside it are
    # NOT held when it runs.
    is_lambda_body: bool = False
    parent: Optional["Scope"] = None
    children: List["Scope"] = dataclasses.field(default_factory=list)
    decls: List[VarDecl] = dataclasses.field(default_factory=list)
    locks: List[LockAcquire] = dataclasses.field(default_factory=list)
    calls: List[Call] = dataclasses.field(default_factory=list)
    assigns: List[Assign] = dataclasses.field(default_factory=list)
    returns: List[Return] = dataclasses.field(default_factory=list)
    lambdas: List[Lambda] = dataclasses.field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def is_ancestor_of(self, other: "Scope") -> bool:
        node = other.parent
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def find_decl(self, name: str) -> Optional[VarDecl]:
        """Innermost-first lookup of `name` from this scope outward."""
        node: Optional[Scope] = self
        while node is not None:
            for d in node.decls:
                if d.name == name:
                    return d
            node = node.parent
        return None


@dataclasses.dataclass
class FunctionIR:
    """One function definition with a body."""

    qualname: str  # "LiveCollection::PublishBatch" or a free function name
    cls: Optional[str]  # enclosing class-nesting path, if a method
    file: str
    line: int
    return_type: str
    body: Scope
    requires: List[str] = dataclasses.field(default_factory=list)
    excludes: List[str] = dataclasses.field(default_factory=list)

    def all_locks(self) -> List[LockAcquire]:
        out: List[LockAcquire] = []
        for scope in self.body.walk():
            out.extend(scope.locks)
        return out

    def all_calls(self) -> List[Tuple[Scope, Call]]:
        out: List[Tuple[Scope, Call]] = []
        for scope in self.body.walk():
            for c in scope.calls:
                out.append((scope, c))
        return out


@dataclasses.dataclass
class FileIR:
    path: str  # repo-relative
    classes: List[ClassInfo] = dataclasses.field(default_factory=list)
    functions: List[FunctionIR] = dataclasses.field(default_factory=list)
    # line -> set of check names allowed on that line (and the next).
    allows: Dict[int, Set[str]] = dataclasses.field(default_factory=dict)

    def allowed(self, line: int, check: str) -> bool:
        """A marker suppresses findings on its own line and the line below
        (so a marker comment can sit above a long statement)."""
        for probe in (line, line - 1):
            if check in self.allows.get(probe, set()):
                return True
        return False


@dataclasses.dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str
    # Line-number-independent identity for the suppression baseline.
    key: str

    def text(self) -> str:
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"

    def to_json(self) -> dict:
        return {
            "check": self.check,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "key": self.key,
        }


class ProjectIR:
    """All parsed files plus the merged class table."""

    def __init__(self, files: List[FileIR]):
        self.files = files
        self.classes: Dict[str, ClassInfo] = {}
        for f in files:
            for c in f.classes:
                # Headers win over redefinitions; first definition with
                # fields wins over an empty forward view.
                existing = self.classes.get(c.name)
                if existing is None or (not existing.fields and c.fields):
                    self.classes[c.name] = c
        # Unqualified tail -> candidate qualified names ("Shared" ->
        # ["CollectionCursor::Shared", ...]).
        self.by_tail: Dict[str, List[str]] = {}
        for name in self.classes:
            self.by_tail.setdefault(name.split("::")[-1], []).append(name)

    def functions(self) -> List[FunctionIR]:
        out: List[FunctionIR] = []
        for f in self.files:
            out.extend(f.functions)
        return out

    def file(self, path: str) -> Optional[FileIR]:
        for f in self.files:
            if f.path == path:
                return f
        return None

    def resolve_class(self, name: str) -> Optional[ClassInfo]:
        if name in self.classes:
            return self.classes[name]
        tails = self.by_tail.get(name.split("::")[-1], [])
        if len(tails) == 1:
            return self.classes[tails[0]]
        return None


def parse_allow_markers(raw_lines: List[str]) -> Dict[int, Set[str]]:
    allows: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        checks = {c.strip() for c in m.group(1).split(",") if c.strip()}
        allows.setdefault(lineno, set()).update(checks)
    return allows

"""libclang frontend: lowers real Clang ASTs to the blas-analyze IR.

Used when the `clang` Python package and a libclang shared object are
available (CI installs the wheel; the structural frontend covers bare
environments). Compile flags come from compile_commands.json so the AST
sees exactly what the build sees; headers (which have no entry in the
database) are parsed with the flags of an arbitrary TU.

Any failure — import, bad database, parse error — must not take the
analyzer down: make_parser raises (so --frontend=auto falls back
entirely), and a per-file parse failure falls back to the structural
frontend for that one file.
"""

from __future__ import annotations

import json
import os
import re
import sys
from typing import Dict, List, Optional

import structural
from ir import (Assign, Call, ClassInfo, Field, FileIR, FunctionIR, Lambda,
                LockAcquire, Return, Scope, VarDecl, parse_allow_markers)

import clang.cindex as ci

_ATTR_GUARDED_RE = re.compile(r"guarded_by\s*\(\s*(.+?)\s*\)\s*$", re.S)
_ATTR_PT_GUARDED_RE = re.compile(r"pt_guarded_by\s*\(\s*(.+?)\s*\)\s*$",
                                 re.S)
_ATTR_ACQ_BEFORE_RE = re.compile(r"acquired_before\s*\(\s*(.+?)\s*\)\s*$",
                                 re.S)
_ATTR_ACQ_AFTER_RE = re.compile(r"acquired_after\s*\(\s*(.+?)\s*\)\s*$",
                                re.S)
_ATTR_REQUIRES_RE = re.compile(r"requires_capability\s*\(\s*(.+?)\s*\)\s*$",
                               re.S)
_ATTR_EXCLUDES_RE = re.compile(r"locks_excluded\s*\(\s*(.+?)\s*\)\s*$",
                               re.S)

_KEEP_ARG_RE = re.compile(r"^(-I|-D|-U|-std=|-isystem|-include|-W|-f)")


def _load_compile_args(path: str) -> Dict[str, List[str]]:
    """file abspath -> clang args (include dirs, defines, std)."""
    with open(path, encoding="utf-8") as fh:
        entries = json.load(fh)
    out: Dict[str, List[str]] = {}
    for entry in entries:
        args_raw = entry.get("arguments")
        if args_raw is None:
            args_raw = entry.get("command", "").split()
        args: List[str] = []
        i = 0
        while i < len(args_raw):
            a = args_raw[i]
            if a in ("-I", "-D", "-U", "-isystem", "-include"):
                if i + 1 < len(args_raw):
                    args.extend((a, args_raw[i + 1]))
                i += 2
                continue
            if _KEEP_ARG_RE.match(a):
                args.append(a)
            i += 1
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        out[os.path.normpath(src)] = args
    return out


class _Lowerer:
    """Lowers one translation unit's cursors for a single file."""

    def __init__(self, rel_path: str, abs_path: str, text: str):
        self.rel_path = rel_path
        self.abs_path = abs_path
        self.text = text
        self.fir = FileIR(path=rel_path,
                          allows=parse_allow_markers(text.splitlines()))

    # -- helpers ---------------------------------------------------------

    def _extent_text(self, node) -> str:
        ext = node.extent
        try:
            if ext.start.file is None or \
                    os.path.normpath(ext.start.file.name) != self.abs_path:
                return ""
            return self.text[ext.start.offset:ext.end.offset]
        except (AttributeError, IndexError):
            return ""

    def _in_file(self, cursor) -> bool:
        loc = cursor.location
        return loc.file is not None and \
            os.path.normpath(loc.file.name) == self.abs_path

    @staticmethod
    def _class_path(cursor) -> Optional[str]:
        """Lexical class-nesting path of `cursor`'s semantic parent,
        namespaces dropped (matches the structural frontend)."""
        parts: List[str] = []
        node = cursor.semantic_parent
        while node is not None:
            if node.kind in (ci.CursorKind.CLASS_DECL,
                             ci.CursorKind.STRUCT_DECL,
                             ci.CursorKind.UNION_DECL,
                             ci.CursorKind.CLASS_TEMPLATE):
                parts.append(node.spelling)
            node = node.semantic_parent
        return "::".join(reversed(parts)) if parts else None

    def _attrs_text(self, cursor) -> List[str]:
        out = []
        for child in cursor.get_children():
            if child.kind.is_attribute():
                out.append(self._extent_text(child))
        return out

    # -- classes ---------------------------------------------------------

    def lower_class(self, cursor) -> None:
        path = self._class_path(cursor)
        name = (path + "::" + cursor.spelling) if path else cursor.spelling
        info = ClassInfo(name=name, file=self.rel_path,
                         line=cursor.location.line)
        for child in cursor.get_children():
            if child.kind == ci.CursorKind.FIELD_DECL:
                info.fields.append(self._lower_field(child))
            elif child.kind == ci.CursorKind.VAR_DECL:
                f = self._lower_field(child)
                f.is_static = True
                info.fields.append(f)
        self.fir.classes.append(info)

    def _lower_field(self, cursor) -> Field:
        ftype = cursor.type
        spelling = ftype.spelling
        guarded = pt_guarded = None
        before: List[str] = []
        after: List[str] = []
        for attr in self._attrs_text(cursor):
            for rx, sink in ((_ATTR_ACQ_BEFORE_RE, before),
                             (_ATTR_ACQ_AFTER_RE, after)):
                m = rx.search(attr)
                if m:
                    sink.extend(a.strip() for a in m.group(1).split(","))
            m = _ATTR_GUARDED_RE.search(attr)
            if m:
                guarded = m.group(1)
            m = _ATTR_PT_GUARDED_RE.search(attr)
            if m:
                pt_guarded = m.group(1)
        canon = ftype.get_canonical()
        is_ref = canon.kind in (ci.TypeKind.LVALUEREFERENCE,
                                ci.TypeKind.RVALUEREFERENCE)
        # `T* const` -> the pointer itself is const; `const T*` is not.
        is_const = canon.is_const_qualified()
        base = re.sub(r"^const\s+", "", spelling)
        return Field(
            name=cursor.spelling,
            type_text=spelling,
            line=cursor.location.line,
            is_mutable=False,
            is_const=is_const,
            is_atomic=bool(re.match(r"^(std::)?atomic<", base)),
            is_reference=is_ref,
            is_mutex=bool(re.search(r"(^|::)Mutex$", base)),
            is_condvar=bool(re.search(r"(^|::)CondVar$", base)),
            guarded_by=guarded,
            pt_guarded_by=pt_guarded,
            acquired_before=before,
            acquired_after=after,
        )

    # -- functions -------------------------------------------------------

    def lower_function(self, cursor) -> None:
        body = None
        for child in cursor.get_children():
            if child.kind == ci.CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            return
        cls = self._class_path(cursor)
        qualname = (cls + "::" + cursor.spelling) if cls \
            else cursor.spelling
        requires: List[str] = []
        excludes: List[str] = []
        for attr in self._attrs_text(cursor):
            m = _ATTR_REQUIRES_RE.search(attr)
            if m:
                requires.extend(a.strip() for a in m.group(1).split(","))
            m = _ATTR_EXCLUDES_RE.search(attr)
            if m:
                excludes.extend(a.strip() for a in m.group(1).split(","))
        scope = Scope(start_line=body.extent.start.line,
                      end_line=body.extent.end.line)
        self._lower_stmts(body, scope)
        self.fir.functions.append(FunctionIR(
            qualname=qualname, cls=cls, file=self.rel_path,
            line=cursor.location.line,
            return_type=cursor.result_type.spelling if
            cursor.result_type is not None else "",
            body=scope, requires=requires, excludes=excludes))

    def _lower_stmts(self, node, scope: Scope) -> None:
        for child in node.get_children():
            self._lower_one(child, scope)

    def _lower_one(self, node, scope: Scope) -> None:
        kind = node.kind
        if kind == ci.CursorKind.COMPOUND_STMT:
            child = Scope(start_line=node.extent.start.line,
                          end_line=node.extent.end.line, parent=scope)
            scope.children.append(child)
            self._lower_stmts(node, child)
            return
        if kind == ci.CursorKind.LAMBDA_EXPR:
            body = Scope(start_line=node.extent.start.line,
                         end_line=node.extent.end.line, parent=scope,
                         is_lambda_body=True)
            text = self._extent_text(node)
            capture = text[:text.index("]") + 1] if "]" in text else ""
            scope.children.append(body)
            scope.lambdas.append(Lambda(capture_text=capture,
                                        line=node.extent.start.line,
                                        body=body))
            for child in node.get_children():
                if child.kind == ci.CursorKind.COMPOUND_STMT:
                    self._lower_stmts(child, body)
            return
        if kind == ci.CursorKind.VAR_DECL:
            self._lower_var(node, scope)
            return
        if kind == ci.CursorKind.RETURN_STMT:
            text = self._extent_text(node)
            expr = re.sub(r"^\s*return\b", "", text).strip().rstrip(";")
            scope.returns.append(Return(expr=expr,
                                        line=node.extent.start.line))
            self._lower_stmts(node, scope)
            return
        if kind in (ci.CursorKind.CALL_EXPR,):
            self._lower_call(node, scope)
            self._lower_stmts(node, scope)
            return
        if kind == ci.CursorKind.BINARY_OPERATOR:
            children = list(node.get_children())
            if len(children) == 2:
                lhs_t = self._extent_text(children[0]).strip()
                rhs_t = self._extent_text(children[1]).strip()
                whole = self._extent_text(node)
                mid = whole[len(self._extent_text(children[0])):]
                if mid.lstrip().startswith("=") and \
                        not mid.lstrip().startswith("=="):
                    lhs = re.sub(r"^\(?\s*this\s*->\s*", "this->",
                                 lhs_t)
                    scope.assigns.append(Assign(
                        lhs=lhs, rhs=rhs_t,
                        line=node.extent.start.line))
            self._lower_stmts(node, scope)
            return
        self._lower_stmts(node, scope)

    def _lower_var(self, node, scope: Scope) -> None:
        type_text = node.type.spelling
        init_text = ""
        for child in node.get_children():
            if child.kind.is_expression():
                init_text = self._extent_text(child)
        decl = VarDecl(name=node.spelling, type_text=type_text,
                       line=node.location.line, init_text=init_text)
        scope.decls.append(decl)
        if re.search(r"(^|::)MutexLock$", re.sub(r"^const\s+", "",
                                                 type_text)):
            mutex_expr = init_text
            m = re.search(r"\(\s*(.*?)\s*\)\s*$", init_text, re.S)
            if m:
                mutex_expr = m.group(1)
            scope.locks.append(LockAcquire(
                var_name=node.spelling, mutex_expr=mutex_expr.strip(),
                mutex_id="", line=node.location.line, scope=scope))
        self._lower_stmts(node, scope)

    def _lower_call(self, node, scope: Scope) -> None:
        name = node.spelling
        if not name:
            return
        base = None
        text = self._extent_text(node)
        m = re.match(r"\s*([A-Za-z_]\w*)\s*(?:\.|->|::)", text)
        if m and m.group(1) != name:
            base = m.group(1)
        arg_text = ""
        args = list(node.get_arguments())
        if args:
            arg_text = ", ".join(self._extent_text(a) for a in args)
        scope.calls.append(Call(name=name, base=base,
                                line=node.extent.start.line,
                                arg_text=arg_text))
        if name == "Lock" and base is not None:
            scope.locks.append(LockAcquire(
                var_name="", mutex_expr=text.split(".")[0].split("->")[0],
                mutex_id="", line=node.extent.start.line, scope=scope))
        elif name == "Unlock" and base is not None:
            target = text.split(".")[0].split("->")[0]
            for acq in reversed(scope.locks):
                if (acq.var_name == "" and acq.mutex_expr == target
                        and acq.release_line is None):
                    acq.release_line = node.extent.start.line
                    break


def _walk_toplevel(lowerer: _Lowerer, cursor) -> None:
    for child in cursor.get_children():
        if not lowerer._in_file(child):
            continue
        kind = child.kind
        if kind in (ci.CursorKind.NAMESPACE,
                    ci.CursorKind.UNEXPOSED_DECL,
                    ci.CursorKind.LINKAGE_SPEC):
            _walk_toplevel(lowerer, child)
        elif kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                      ci.CursorKind.CLASS_TEMPLATE):
            if child.is_definition():
                lowerer.lower_class(child)
                # Methods defined inline + nested classes.
                _walk_toplevel(lowerer, child)
        elif kind in (ci.CursorKind.CXX_METHOD,
                      ci.CursorKind.FUNCTION_DECL,
                      ci.CursorKind.CONSTRUCTOR,
                      ci.CursorKind.DESTRUCTOR,
                      ci.CursorKind.FUNCTION_TEMPLATE):
            if child.is_definition():
                lowerer.lower_function(child)


def make_parser(compile_commands_path: str):
    """Returns parse(repo_root, rel_path) -> FileIR. Raises when libclang
    is unusable (the caller falls back to the structural frontend)."""
    index = ci.Index.create()
    db: Dict[str, List[str]] = {}
    if os.path.exists(compile_commands_path):
        db = _load_compile_args(compile_commands_path)
    default_args = next(iter(db.values()), [])
    base_args = ["-x", "c++", "-std=c++17"]

    def parse(repo_root: str, rel_path: str) -> FileIR:
        abs_path = os.path.normpath(os.path.join(repo_root, rel_path))
        args = db.get(abs_path, default_args)
        try:
            tu = index.parse(
                abs_path, args=base_args + list(args),
                options=ci.TranslationUnit
                .PARSE_DETAILED_PROCESSING_RECORD)
            with open(abs_path, encoding="utf-8",
                      errors="replace") as fh:
                text = fh.read()
            lowerer = _Lowerer(rel_path, abs_path, text)
            _walk_toplevel(lowerer, tu.cursor)
            if not lowerer.fir.classes and not lowerer.fir.functions \
                    and text.strip():
                # An AST that lowered to nothing for a non-empty file
                # usually means hard errors; use the structural view.
                return structural.parse_file(repo_root, rel_path)
            return lowerer.fir
        except Exception as exc:  # noqa: BLE001 - per-file fallback
            print(f"blas-analyze: libclang failed on {rel_path} ({exc}); "
                  "structural fallback for this file", file=sys.stderr)
            return structural.parse_file(repo_root, rel_path)

    return parse

"""The four blas-analyze checks, written against the frontend-neutral IR.

  pin-escape           pin-derived raw views must not outlive their PageRef
                       (and no frame invalidation while a pin is live)
  lock-order           the derived mutex acquisition graph must be acyclic
  blocking-under-lock  no blocking syscall/wait/submit reachable (one call
                       level deep) while a lock scope is live; no clock
                       reads directly inside a critical section
  guarded-coverage     every mutable field of a mutex-owning class is
                       guarded, atomic, const, or explicitly allowed

Each check yields ir.Finding objects with stable, line-independent keys so
the suppression baseline survives unrelated edits.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ir import (Call, ClassInfo, FileIR, Finding, FunctionIR, LockAcquire,
                ProjectIR, Scope, VarDecl)

# ---------------------------------------------------------------------------
# Name resolution over the IR
# ---------------------------------------------------------------------------


class Resolver:
    """Resolves mutex expressions and call sites to project entities."""

    def __init__(self, project: ProjectIR):
        self.project = project
        self.functions_by_qualname: Dict[str, List[FunctionIR]] = {}
        self.functions_by_name: Dict[str, List[FunctionIR]] = {}
        for fn in project.functions():
            self.functions_by_qualname.setdefault(fn.qualname, []).append(fn)
            self.functions_by_name.setdefault(
                fn.qualname.split("::")[-1], []).append(fn)

    # -- mutexes ----------------------------------------------------------

    def mutex_id(self, fn: FunctionIR, expr: str) -> str:
        """Resolves a mutex operand expression to a stable identity:
        `Class::member` when the owner is derivable, else a file-scoped
        identity that never aliases across files."""
        expr = expr.strip().lstrip("*&").strip()
        m = re.match(r"^([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)$", expr)
        if m:
            base, member = m.group(1), m.group(2)
            cls = self._type_of_expr(fn, base)
            if cls is not None and cls.field(member) is not None:
                return f"{cls.name}::{member}"
            # Unique owner across the project?
            owners = [c for c in self.project.classes.values()
                      if (f := c.field(member)) is not None and f.is_mutex]
            if len(owners) == 1:
                return f"{owners[0].name}::{member}"
            return f"{fn.file}::{expr}"
        if re.match(r"^[A-Za-z_]\w*$", expr):
            cls = self._class_of(fn)
            if cls is not None and cls.field(expr) is not None:
                return f"{cls.name}::{expr}"
            # A local Mutex or an unresolvable parameter: keep it
            # function-scoped so it cannot alias a member mutex.
            return f"{fn.qualname}::{expr}"
        return f"{fn.file}::{expr}"

    def _class_of(self, fn: FunctionIR) -> Optional[ClassInfo]:
        if fn.cls is None:
            return None
        return self.project.resolve_class(fn.cls)

    def _type_of_expr(self, fn: FunctionIR, name: str) -> Optional[ClassInfo]:
        """Best-effort class of local/member `name` inside `fn`."""
        decl = self._find_decl(fn, name)
        type_text = None
        if decl is not None:
            type_text = decl.type_text
            if type_text in ("auto", "auto&", "const auto&"):
                # e.g. `auto& s = *shared_;` — chase one level.
                inner = re.match(r"^\s*\*?\s*([A-Za-z_]\w*)", decl.init_text)
                if inner:
                    return self._type_of_expr(fn, inner.group(1))
                type_text = None
        if type_text is None:
            cls = self._class_of(fn)
            if cls is not None:
                field = cls.field(name)
                if field is not None:
                    type_text = field.type_text
        if type_text is None:
            return None
        return self._class_from_type_text(fn, type_text)

    def _class_from_type_text(self, fn: FunctionIR,
                              type_text: str) -> Optional[ClassInfo]:
        # Try every identifier-ish token, innermost (template argument)
        # first — `std::shared_ptr<const CollectionState>` resolves to
        # CollectionState, `Shared&` to CollectionCursor::Shared.
        tokens = re.findall(r"[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*", type_text)
        for token in reversed(tokens):
            if token in ("const", "std", "auto", "mutable", "struct",
                         "class", "typename", "unique_ptr", "shared_ptr",
                         "optional", "vector", "map", "string"):
                continue
            # Prefer a nested class of the enclosing class.
            if fn.cls is not None:
                nested = self.project.classes.get(fn.cls + "::" + token)
                if nested is not None:
                    return nested
            cls = self.project.resolve_class(token)
            if cls is not None:
                return cls
        return None

    def _find_decl(self, fn: FunctionIR, name: str) -> Optional[VarDecl]:
        for scope in fn.body.walk():
            for d in scope.decls:
                if d.name == name:
                    return d
        return None

    # -- calls ------------------------------------------------------------

    def resolve_call(self, fn: FunctionIR, call: Call) -> List[FunctionIR]:
        """Callee candidates, deliberately conservative: receiver-typed
        lookups and same-class/free-function fallbacks only — never a
        project-wide match by bare name (which would fabricate call-graph
        edges between unrelated classes)."""
        if call.base is not None:
            cls = self._type_of_expr(fn, call.base)
            if cls is None:
                # `BlasSystem::OpenPaged(...)`-style static qualification.
                cls = self.project.resolve_class(call.base)
            if cls is not None:
                out = self.functions_by_qualname.get(
                    cls.name + "::" + call.name, [])
                if out:
                    return out
                # Methods may be implemented on a nested class path.
                return [f for f in self.functions_by_name.get(call.name, [])
                        if f.cls is not None and
                        (f.cls == cls.name or
                         f.cls.startswith(cls.name + "::"))]
            return []
        # Unqualified: same class first, then free functions.
        if fn.cls is not None:
            out = self.functions_by_qualname.get(
                fn.cls + "::" + call.name, [])
            if out:
                return out
        return [f for f in self.functions_by_name.get(call.name, [])
                if f.cls is None]


def _lambda_between(scope: Scope, stop: Scope) -> bool:
    """True when a lambda-body boundary lies on the parent chain from
    `scope` (inclusive) up to `stop` (exclusive). Code past such a
    boundary runs in a deferred context, so locks held at `stop` are not
    held there."""
    node: Optional[Scope] = scope
    while node is not None and node is not stop:
        if node.is_lambda_body:
            return True
        node = node.parent
    return False


def _held_at(fn: FunctionIR, resolver: Resolver, line: int, at_scope: Scope,
             exclude: Optional[LockAcquire] = None) -> List[Tuple[str,
                                                                  LockAcquire]]:
    """Lock acquisitions live at `line` inside `at_scope`, as
    (mutex_id, acquire) pairs. BLAS_REQUIRES capabilities count as held
    for the whole body. Acquisitions lexically outside a lambda boundary
    do not reach code inside the lambda."""
    held: List[Tuple[str, LockAcquire]] = []
    if not _lambda_between(at_scope, fn.body):
        for req in fn.requires:
            rid = resolver.mutex_id(fn, req)
            held.append((rid, LockAcquire(var_name="", mutex_expr=req,
                                          mutex_id=rid,
                                          line=fn.body.start_line,
                                          scope=fn.body)))
    acquires = sorted(fn.all_locks(), key=lambda a: a.line)
    for acq in acquires:
        if acq is exclude:
            continue
        if acq.live_at(line) and acq.line <= line \
                and not _lambda_between(at_scope, acq.scope):
            if not acq.mutex_id:
                acq.mutex_id = resolver.mutex_id(fn, acq.mutex_expr)
            held.append((acq.mutex_id, acq))
    return held


def _non_lambda_calls(fn: FunctionIR) -> List[Tuple[Scope, Call]]:
    """Call sites that execute as part of fn's own invocation (i.e. not
    inside a lambda body defined within fn)."""
    return [(scope, call) for scope, call in fn.all_calls()
            if not _lambda_between(scope, fn.body)]


# ---------------------------------------------------------------------------
# Check: lock-order
# ---------------------------------------------------------------------------


def _direct_acquires(fn: FunctionIR, resolver: Resolver) -> Set[str]:
    out: Set[str] = set()
    for acq in fn.all_locks():
        if acq.is_try:
            continue
        if _lambda_between(acq.scope, fn.body):
            continue  # deferred: not acquired by calling fn itself
        if not acq.mutex_id:
            acq.mutex_id = resolver.mutex_id(fn, acq.mutex_expr)
        out.add(acq.mutex_id)
    return out


def check_lock_order(project: ProjectIR,
                     resolver: Resolver) -> List[Finding]:
    findings: List[Finding] = []
    funcs = project.functions()

    # Transitive acquire sets (fixpoint over the conservative call graph).
    acquires: Dict[int, Set[str]] = {
        id(fn): _direct_acquires(fn, resolver) for fn in funcs}
    callees: Dict[int, List[FunctionIR]] = {}
    for fn in funcs:
        outs: List[FunctionIR] = []
        for _scope, call in _non_lambda_calls(fn):
            outs.extend(resolver.resolve_call(fn, call))
        callees[id(fn)] = outs
    changed = True
    while changed:
        changed = False
        for fn in funcs:
            acc = acquires[id(fn)]
            before = len(acc)
            for g in callees[id(fn)]:
                acc |= acquires[id(g)]
            if len(acc) != before:
                changed = True

    # Edges: held -> acquired, from direct nesting and from calls whose
    # callee (transitively) acquires.
    # edge -> (file, line, description)
    edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

    def add_edge(a: str, b: str, file: str, line: int, desc: str) -> None:
        if a == b:
            # Same-identity nesting is reported directly (it is a
            # self-deadlock for one instance, an unordered pair for two).
            findings.append(Finding(
                check="lock-order", file=file, line=line,
                message=f"acquisition of '{b}' while an acquisition of "
                        f"'{a}' is live ({desc}); same-mutex nesting "
                        "self-deadlocks (blas::Mutex is non-recursive), "
                        "and two instances of the same class need a "
                        "documented instance order",
                key=f"lock-order|{file}|self|{a}"))
            return
        edges.setdefault((a, b), (file, line, desc))

    for fn in funcs:
        locks = sorted(fn.all_locks(), key=lambda a: a.line)
        for acq in locks:
            if acq.is_try:
                continue
            if not acq.mutex_id:
                acq.mutex_id = resolver.mutex_id(fn, acq.mutex_expr)
            for held_id, held_acq in _held_at(fn, resolver, acq.line,
                                              acq.scope, exclude=acq):
                if held_acq.is_try:
                    continue
                add_edge(held_id, acq.mutex_id, fn.file, acq.line,
                         f"in {fn.qualname}: '{acq.mutex_expr}' acquired "
                         f"at line {acq.line} under '{held_acq.mutex_expr}' "
                         f"(line {held_acq.line})")
        for scope, call in fn.all_calls():
            held = [(i, a)
                    for i, a in _held_at(fn, resolver, call.line, scope)
                    if not a.is_try]
            if not held:
                continue
            for g in resolver.resolve_call(fn, call):
                for acquired in acquires[id(g)]:
                    for held_id, held_acq in held:
                        if acquired == held_id:
                            continue  # reported by callee nesting if real
                        add_edge(held_id, acquired, fn.file, call.line,
                                 f"in {fn.qualname}: call to "
                                 f"{g.qualname} (which acquires "
                                 f"'{acquired}') at line {call.line} under "
                                 f"'{held_acq.mutex_expr}'")

    # Declared BLAS_ACQUIRED_BEFORE/AFTER constraints join the graph, so a
    # derived edge contradicting a declaration closes a cycle.
    for cls in project.classes.values():
        for field in cls.fields:
            if not field.is_mutex:
                continue
            me = f"{cls.name}::{field.name}"
            for other in field.acquired_before:
                other_id = f"{cls.name}::{other.strip()}" \
                    if re.match(r"^\w+$", other.strip()) else other.strip()
                edges.setdefault((me, other_id),
                                 (cls.file, field.line,
                                  f"declared BLAS_ACQUIRED_BEFORE on "
                                  f"{me}"))
            for other in field.acquired_after:
                other_id = f"{cls.name}::{other.strip()}" \
                    if re.match(r"^\w+$", other.strip()) else other.strip()
                edges.setdefault((other_id, me),
                                 (cls.file, field.line,
                                  f"declared BLAS_ACQUIRED_AFTER on {me}"))

    # Cycle detection: report each strongly connected component of size
    # > 1 once, with one witness edge per hop.
    graph: Dict[str, Set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    for component in _sccs(graph):
        if len(component) < 2:
            continue
        comp = sorted(component)
        witnesses = []
        for (a, b), (file, line, desc) in sorted(edges.items()):
            if a in component and b in component:
                witnesses.append(f"{a} -> {b} [{file}:{line}: {desc}]")
        file, line, _ = next(
            (v for (a, b), v in sorted(edges.items())
             if a in component and b in component))
        findings.append(Finding(
            check="lock-order", file=file, line=line,
            message="cycle in the derived mutex acquisition order: "
                    + "; ".join(witnesses),
            key="lock-order|cycle|" + ",".join(comp)))
    return findings


def _sccs(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Iterative Tarjan."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[Set[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work: List[Tuple[str, iter]] = [(root, iter(graph[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp: Set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == node:
                        break
                out.append(comp)
    return out


# ---------------------------------------------------------------------------
# Check: blocking-under-lock
# ---------------------------------------------------------------------------

BLOCKING_SYSCALLS = frozenset((
    "fsync", "fdatasync", "pread", "pwrite", "sleep", "usleep", "nanosleep",
    "sleep_for", "sleep_until", "join",
))

CLOCK_CALLS = frozenset(("clock_gettime", "gettimeofday"))
CLOCK_NOW_BASES = ("steady_clock", "system_clock", "high_resolution_clock")


def _is_clock_call(call: Call) -> bool:
    if call.name in CLOCK_CALLS:
        return True
    if call.name == "time" and call.arg_text.strip() in ("nullptr", "NULL",
                                                         "0"):
        return True
    if call.name == "now" and call.base is not None:
        return True  # chrono clocks are the only `::now()` vocabulary here
    return False


def _is_blocking_call(call: Call) -> bool:
    return call.name in BLOCKING_SYSCALLS


def _block_reasons(project: ProjectIR,
                   resolver: Resolver) -> Dict[int, str]:
    """Fixpoint map id(fn) -> why calling fn may block: a direct blocking
    call / CondVar wait, or a call chain reaching one."""
    funcs = project.functions()
    reason: Dict[int, str] = {}
    for fn in funcs:
        for _scope, call in _non_lambda_calls(fn):
            if _is_blocking_call(call):
                reason[id(fn)] = (f"{fn.qualname} calls {call.name}() at "
                                  f"{fn.file}:{call.line}")
                break
            if call.name == "Wait":
                reason[id(fn)] = (f"{fn.qualname} waits on a CondVar at "
                                  f"{fn.file}:{call.line}")
                break
    changed = True
    while changed:
        changed = False
        for fn in funcs:
            if id(fn) in reason:
                continue
            for _scope, call in _non_lambda_calls(fn):
                hit = next((g for g in resolver.resolve_call(fn, call)
                            if g is not fn and id(g) in reason), None)
                if hit is not None:
                    reason[id(fn)] = (f"{fn.qualname} -> "
                                      f"{reason[id(hit)]}")
                    changed = True
                    break
    return reason


def check_blocking_under_lock(project: ProjectIR,
                              resolver: Resolver) -> List[Finding]:
    findings: List[Finding] = []
    reasons = _block_reasons(project, resolver)
    for fn in project.functions():
        if not fn.all_locks() and not fn.requires:
            continue
        for scope, call in fn.all_calls():
            held = _held_at(fn, resolver, call.line, scope)
            if not held:
                continue
            held_desc = ", ".join(sorted({h for h, _ in held}))
            if _is_blocking_call(call):
                findings.append(Finding(
                    check="blocking-under-lock", file=fn.file,
                    line=call.line,
                    message=f"blocking call {call.name}() inside a "
                            f"critical section of {held_desc} (in "
                            f"{fn.qualname}); move the I/O outside the "
                            "lock or justify with an allow marker",
                    key=f"blocking-under-lock|{fn.file}|{fn.qualname}"
                        f"|{call.name}"))
                continue
            if _is_clock_call(call):
                findings.append(Finding(
                    check="blocking-under-lock", file=fn.file,
                    line=call.line,
                    message=f"clock read inside a critical section of "
                            f"{held_desc} (in {fn.qualname}); sample the "
                            "clock outside the lock and record the value "
                            "inside",
                    key=f"blocking-under-lock|{fn.file}|{fn.qualname}"
                        f"|clock"))
                continue
            if call.name == "Wait":
                # CondVar::Wait(lock) releases exactly one lock; waiting
                # while any OTHER lock stays held blocks every thread
                # needing it.
                lock_var = call.arg_text.strip().lstrip("*&").strip()
                waited: Optional[str] = None
                for mid, acq in held:
                    if acq.var_name == lock_var:
                        waited = mid
                others = {mid for mid, _ in held
                          if waited is None or mid != waited}
                if waited is not None and others:
                    findings.append(Finding(
                        check="blocking-under-lock", file=fn.file,
                        line=call.line,
                        message=f"CondVar::Wait releases only "
                                f"'{waited}' but "
                                f"{', '.join(sorted(others))} stay(s) "
                                f"held across the wait (in {fn.qualname})",
                        key=f"blocking-under-lock|{fn.file}|{fn.qualname}"
                            f"|foreign-wait"))
                continue
            # Reachable blocking: a callee that (transitively) blocks.
            for g in resolver.resolve_call(fn, call):
                if g is fn:
                    continue
                why = reasons.get(id(g))
                if why is not None:
                    findings.append(Finding(
                        check="blocking-under-lock", file=fn.file,
                        line=call.line,
                        message=f"call to {g.qualname} inside a critical "
                                f"section of {held_desc} (in "
                                f"{fn.qualname}), and {g.qualname} "
                                f"blocks: {why}",
                        key=f"blocking-under-lock|{fn.file}|{fn.qualname}"
                            f"|{g.qualname}"))
                    break
    return findings


# ---------------------------------------------------------------------------
# Check: pin-escape
# ---------------------------------------------------------------------------

_VIEW_TYPE_RE = re.compile(
    r"(std::)?string_view\s*$|(^|\s|const\s+)Page\s*\*|char\s*\*"
    r"|uint8_t\s*\*|std::byte\s*\*")
_PAGEREF_TYPE_RE = re.compile(r"(^|[\s:<])PageRef\s*&?$")
_PIN_INIT_RE = re.compile(r"(\.|->)(Fetch|Peek)\s*\(")
_INVALIDATORS = ("DropCache", "PublishBatch")


def _is_view_type(type_text: str) -> bool:
    return _VIEW_TYPE_RE.search(type_text) is not None


def _mentions(expr: str, names: Set[str]) -> Optional[str]:
    for m in re.finditer(r"[A-Za-z_]\w*", expr):
        if m.group(0) in names:
            return m.group(0)
    return None


def check_pin_escape(project: ProjectIR,
                     resolver: Resolver) -> List[Finding]:
    findings: List[Finding] = []
    for fn in project.functions():
        scope_of: Dict[int, Scope] = {}
        decls: List[VarDecl] = []
        for scope in fn.body.walk():
            for d in scope.decls:
                scope_of[id(d)] = scope
                decls.append(d)
        decls.sort(key=lambda d: d.line)

        # Seed pins: PageRef locals (declared type or Fetch/Peek init).
        pin_of: Dict[str, VarDecl] = {}  # tainted name -> root pin decl
        for d in decls:
            if _PAGEREF_TYPE_RE.search(d.type_text) or (
                    d.type_text.startswith("auto")
                    and _PIN_INIT_RE.search(d.init_text)):
                pin_of[d.name] = d
        if not pin_of:
            continue
        # Propagate taint through derived declarations, in line order.
        derived_from: Dict[str, str] = {}  # derived name -> pin name
        for d in decls:
            if d.name in pin_of:
                continue
            hit = _mentions(d.init_text, set(pin_of) | set(derived_from))
            if hit is None:
                continue
            root = derived_from.get(hit, hit)
            if _is_view_type(d.type_text) or d.type_text.startswith("auto"):
                derived_from[d.name] = root
                pin = pin_of[root]
                pin_scope = scope_of[id(pin)]
                d_scope = scope_of[id(d)]
                if d_scope is not pin_scope and \
                        d_scope.is_ancestor_of(pin_scope):
                    findings.append(Finding(
                        check="pin-escape", file=fn.file, line=d.line,
                        message=f"'{d.name}' ({d.type_text}) is derived "
                                f"from PageRef '{root}' but declared in "
                                "an enclosing scope that outlives the "
                                f"pin (in {fn.qualname}); the bytes may "
                                "be evicted once the ref dies",
                        key=f"pin-escape|{fn.file}|{fn.qualname}"
                            f"|{d.name}"))

        tainted = set(pin_of) | set(derived_from)

        # `pin = PageRef();` drops the pin early: liveness ends there.
        released_at: Dict[str, int] = {}
        for scope in fn.body.walk():
            for a in scope.assigns:
                if a.lhs in pin_of and re.match(
                        r"^(blas::)?PageRef\s*(\(\s*\)|\{\s*\})?\s*$",
                        a.rhs.strip()):
                    released_at[a.lhs] = min(
                        released_at.get(a.lhs, a.line), a.line)

        def root_of(name: str) -> str:
            return derived_from.get(name, name)

        cls = project.resolve_class(fn.cls) if fn.cls else None
        for scope in fn.body.walk():
            for assign in scope.assigns:
                hit = _mentions(assign.rhs, tainted)
                if hit is None:
                    continue
                lhs = assign.lhs
                # Assignment into an outer-scope view local.
                lhs_decl = scope.find_decl(lhs)
                if lhs_decl is not None:
                    if not (_is_view_type(lhs_decl.type_text)
                            or lhs_decl.type_text.startswith("auto")):
                        continue
                    pin = pin_of[root_of(hit)]
                    pin_scope = scope_of[id(pin)]
                    lhs_scope = scope_of[id(lhs_decl)]
                    if lhs_scope is not pin_scope and \
                            lhs_scope.is_ancestor_of(pin_scope):
                        findings.append(Finding(
                            check="pin-escape", file=fn.file,
                            line=assign.line,
                            message=f"'{lhs}' outlives PageRef "
                                    f"'{root_of(hit)}' but is assigned a "
                                    f"pin-derived value (in "
                                    f"{fn.qualname})",
                            key=f"pin-escape|{fn.file}|{fn.qualname}"
                                f"|{lhs}"))
                    continue
                # Assignment into a member: storing a pin-derived view.
                member = lhs[len("this->"):] if lhs.startswith("this->") \
                    else lhs
                if re.match(r"^[A-Za-z_]\w*_$", member) and cls is not None:
                    field = cls.field(member)
                    if field is not None and _is_view_type(field.type_text):
                        findings.append(Finding(
                            check="pin-escape", file=fn.file,
                            line=assign.line,
                            message=f"member '{member}' "
                                    f"({field.type_text}) stores a value "
                                    f"derived from PageRef "
                                    f"'{root_of(hit)}' (in {fn.qualname}); "
                                    "the member outlives the pin",
                            key=f"pin-escape|{fn.file}|{fn.qualname}"
                                f"|{member}"))
            for ret in scope.returns:
                hit = _mentions(ret.expr, tainted)
                if hit is not None and _is_view_type(fn.return_type):
                    findings.append(Finding(
                        check="pin-escape", file=fn.file, line=ret.line,
                        message=f"returns a {fn.return_type.strip()} "
                                f"derived from PageRef '{root_of(hit)}' "
                                f"(in {fn.qualname}); the pin dies at "
                                "return",
                        key=f"pin-escape|{fn.file}|{fn.qualname}|return"))
            for lam in scope.lambdas:
                hit = _mentions(lam.capture_text, tainted)
                if hit is not None:
                    findings.append(Finding(
                        check="pin-escape", file=fn.file, line=lam.line,
                        message=f"lambda captures pin-derived "
                                f"'{hit}' (PageRef '{root_of(hit)}') in "
                                f"{fn.qualname}; the closure may outlive "
                                "the pin",
                        key=f"pin-escape|{fn.file}|{fn.qualname}"
                            f"|capture-{hit}"))
            # Frame invalidation while a pin is live (the scope-accurate
            # successor of lint.py's pageref-publish rule).
            for call in scope.calls:
                if call.name not in _INVALIDATORS:
                    continue
                for pin_name, pin in pin_of.items():
                    pin_scope = scope_of[id(pin)]
                    live = (pin.line < call.line
                            and call.line <= pin_scope.end_line
                            and call.line <= released_at.get(
                                pin_name, pin_scope.end_line)
                            and (pin_scope is scope
                                 or pin_scope.is_ancestor_of(scope)))
                    if live:
                        if call.name == "DropCache":
                            hint = ("refs survive DropCache by contract — "
                                    "annotate deliberate exercises with an "
                                    "allow marker")
                        else:
                            hint = ("PublishBatch recycles whole systems, "
                                    "drop the ref first")
                        findings.append(Finding(
                            check="pin-escape", file=fn.file,
                            line=call.line,
                            message=f"{call.name}() called while PageRef "
                                    f"'{pin_name}' (line {pin.line}) is "
                                    f"live (in {fn.qualname}); {hint}",
                            key=f"pin-escape|{fn.file}|{fn.qualname}"
                                f"|{call.name}-under-{pin_name}"))
                        break
    return findings


# ---------------------------------------------------------------------------
# Check: guarded-coverage
# ---------------------------------------------------------------------------


def check_guarded_coverage(project: ProjectIR,
                           resolver: Resolver) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[str] = set()
    for fir in project.files:
        for cls in fir.classes:
            if not cls.mutex_fields():
                continue
            if cls.name in seen:
                continue
            seen.add(cls.name)
            for field in cls.fields:
                if (field.is_mutex or field.is_condvar or field.is_const
                        or field.is_static or field.is_reference
                        or field.is_atomic or field.guarded_by is not None
                        or field.pt_guarded_by is not None):
                    continue
                findings.append(Finding(
                    check="guarded-coverage", file=cls.file,
                    line=field.line,
                    message=f"field '{cls.name}::{field.name}' "
                            f"({field.type_text}) is mutable state in a "
                            "mutex-owning class but carries no "
                            "BLAS_GUARDED_BY/BLAS_PT_GUARDED_BY, is not "
                            "std::atomic and not const; annotate it, or "
                            "mark the line with "
                            "`// blas-analyze: allow(guarded-coverage)` "
                            "and a reason",
                    key=f"guarded-coverage|{cls.file}|{cls.name}"
                        f"|{field.name}"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

ALL_CHECKS = {
    "pin-escape": check_pin_escape,
    "lock-order": check_lock_order,
    "blocking-under-lock": check_blocking_under_lock,
    "guarded-coverage": check_guarded_coverage,
}


def run_checks(project: ProjectIR,
               checks: Optional[Iterable[str]] = None) -> List[Finding]:
    resolver = Resolver(project)
    names = list(checks) if checks else list(ALL_CHECKS)
    findings: List[Finding] = []
    for name in names:
        findings.extend(ALL_CHECKS[name](project, resolver))
    # Drop findings suppressed by an inline allow marker, then dedupe
    # (the structural frontend can record a call twice when a condition
    # text reappears in a statement segment).
    out: List[Finding] = []
    seen_keys: Set[Tuple[str, int, str]] = set()
    for f in findings:
        fir = project.file(f.file)
        if fir is not None and fir.allowed(f.line, f.check):
            continue
        dedupe = (f.check, f.line, f.key)
        if dedupe in seen_keys:
            continue
        seen_keys.add(dedupe)
        out.append(f)
    out.sort(key=lambda f: (f.file, f.line, f.check))
    return out

#!/usr/bin/env python3
"""Project-invariant linter for blas — the non-AST residue.

Checks invariants the compiler cannot (or that must hold even in GCC
builds where the thread-safety attributes compile to nothing):

  1. lock-vocabulary   No raw std::mutex / std::shared_mutex /
                       std::condition_variable / std::lock_guard /
                       std::unique_lock / std::scoped_lock, and no
                       BLAS_NO_THREAD_SAFETY_ANALYSIS, anywhere in src/
                       outside common/thread_annotations.h. Every lock
                       must be a blas::Mutex the analysis can see.
  2. status-consumed   Every call to a Status- or Result-returning
                       function in src/ is consumed (assigned, returned,
                       tested, wrapped in BLAS_RETURN_NOT_OK /
                       BLAS_ASSIGN_OR_RETURN, or explicitly cast to
                       void). Backstops [[nodiscard]] for translation
                       units a compiler pass might miss.

The former pageref-publish and no-clock-in-lock rules moved to
tools/analyze/blas_analyze.py (checks pin-escape and
blocking-under-lock), which reasons over real scopes, types and the call
graph instead of raw lines. Run both tools; CI does.

Exit code 0 = clean, 1 = findings (one "file:line: [rule] message" per
line), 2 = usage error. Run from the repo root: python3 tools/lint.py
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
ANNOTATIONS_HEADER = os.path.join("src", "common", "thread_annotations.h")

RAW_LOCK_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
ESCAPE_HATCH_RE = re.compile(r"BLAS_NO_THREAD_SAFETY_ANALYSIS\b")

# Consumption contexts for invariant 2: anything on the line that shows the
# return value is used or deliberately dropped.
CONSUMED_RE = re.compile(
    r"(\breturn\b|=|\bif\b|\bwhile\b|\bfor\b|\(void\)|BLAS_RETURN_NOT_OK"
    r"|BLAS_ASSIGN_OR_RETURN|BLAS_CHECK|EXPECT_|ASSERT_|\.ok\(\)|\.status\(\))"
)


def source_files(exts):
    out = []
    for root, _dirs, files in os.walk(SRC):
        for f in sorted(files):
            if os.path.splitext(f)[1] in exts:
                out.append(os.path.relpath(os.path.join(root, f), REPO))
    return out


def strip_comments_and_strings(line):
    """Removes // comments and string/char literal bodies (keeps quotes)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def clean_lines(path):
    """Yields (lineno, cleaned_line) with block comments blanked."""
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        text = f.read()
    # Blank block comments but keep newlines so line numbers survive.
    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))
    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    for i, line in enumerate(text.splitlines(), start=1):
        yield i, strip_comments_and_strings(line)


def check_lock_vocabulary(findings):
    for path in source_files({".h", ".cc"}):
        if path == ANNOTATIONS_HEADER:
            continue
        for lineno, line in clean_lines(path):
            if RAW_LOCK_RE.search(line):
                findings.append(
                    f"{path}:{lineno}: [lock-vocabulary] raw std:: lock "
                    "primitive; use blas::Mutex/MutexLock/CondVar from "
                    "common/thread_annotations.h")
            if ESCAPE_HATCH_RE.search(line) and "#define" not in line:
                findings.append(
                    f"{path}:{lineno}: [lock-vocabulary] "
                    "BLAS_NO_THREAD_SAFETY_ANALYSIS outside "
                    "thread_annotations.h; restructure instead of silencing")


def status_returning_functions():
    """Harvests names of Status/Result-returning functions from src headers.

    The check is name-based (no type resolution), so any name that is ALSO
    declared with a different return type somewhere (e.g. XmlBuilder::Open
    returns void, BlasSystem::Open returns Result) is dropped entirely —
    better to miss those than to flag correct code.
    """
    names = set()
    decl = re.compile(r"\b(?:Status|Result<[^;{]*>)\s+([A-Za-z_]\w*)\s*\(")
    other_decl = re.compile(
        r"\b(?:void|bool|int|size_t|uint32_t|uint64_t|auto|std::\w+[^;{(]*?)"
        r"\s+([A-Za-z_]\w*)\s*\(")
    ambiguous = set()
    for path in source_files({".h"}):
        for _lineno, line in clean_lines(path):
            for m in decl.finditer(line):
                names.add(m.group(1))
            for m in other_decl.finditer(line):
                ambiguous.add(m.group(1))
    names -= ambiguous
    # Factory names that read like accessors and constructors of Status
    # itself are never bare statements worth flagging.
    names.discard("OK")
    return names


def check_status_consumed(findings):
    names = status_returning_functions()
    if not names:
        return
    call = re.compile(
        r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(" + "|".join(
            sorted(re.escape(n) for n in names)) + r")\s*\(")
    for path in source_files({".cc"}):
        prev = ""
        for lineno, line in clean_lines(path):
            # A continuation line like "Foo::Bar(..." inside a multi-line
            # call is not a statement: only lines following a ; { } or label
            # start one, and only those are candidates.
            starts_statement = prev == "" or prev.endswith((";", "{", "}", ":"))
            prev = line.strip() or prev
            if not starts_statement:
                continue
            m = call.match(line)
            if m is None:
                continue
            if CONSUMED_RE.search(line):
                continue
            findings.append(
                f"{path}:{lineno}: [status-consumed] return value of "
                f"'{m.group(1)}' (Status/Result) is dropped; consume it or "
                "cast to (void) with a comment")


def main():
    if not os.path.isdir(SRC):
        print("lint.py: src/ not found; run from the repo checkout",
              file=sys.stderr)
        return 2
    findings = []
    check_lock_vocabulary(findings)
    check_status_consumed(findings)
    for f in findings:
        print(f)
    print(f"lint.py: {len(findings)} finding(s) in "
          f"{len(source_files({'.h', '.cc'}))} files")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

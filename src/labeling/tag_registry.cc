#include "labeling/tag_registry.h"

#include <cassert>

namespace blas {

namespace {
const std::string kSlashName = "/";
}  // namespace

TagId TagRegistry::Intern(std::string_view name) {
  assert(!frozen_ && "TagRegistry::Intern after Freeze()");
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  names_.emplace_back(name);
  TagId id = static_cast<TagId>(names_.size());  // 1-based
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<TagId> TagRegistry::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& TagRegistry::Name(TagId id) const {
  if (id == kSlashTag) return kSlashName;
  assert(id >= 1 && id <= names_.size());
  return names_[id - 1];
}

}  // namespace blas

#ifndef BLAS_LABELING_NODE_RECORD_H_
#define BLAS_LABELING_NODE_RECORD_H_

#include <cstdint>

#include "labeling/dlabel.h"
#include "labeling/plabel.h"
#include "labeling/tag_registry.h"

namespace blas {

/// Sentinel data id for nodes without character data (`data = null` in the
/// paper's relation).
inline constexpr uint32_t kNullData = 0xFFFFFFFFu;

/// \brief One tuple of the BLAS relation <plabel, start, end, level, data>
/// (section 4), plus the tag id used by the D-labeling baseline relation.
struct NodeRecord {
  PLabel plabel = 0;
  uint32_t start = 0;
  uint32_t end = 0;
  uint32_t tag = 0;
  int32_t level = 0;
  /// Id into the document's StringDict, or kNullData.
  uint32_t data = kNullData;

  DLabel dlabel() const { return DLabel{start, end, level}; }
};

}  // namespace blas

#endif  // BLAS_LABELING_NODE_RECORD_H_

#include "labeling/labeler.h"

#include <utility>

namespace blas {

void TagCollector::OnStartElement(std::string_view name,
                                  const std::vector<XmlAttribute>& attributes) {
  registry_->Intern(name);
  ++node_count_;
  ++depth_;
  if (depth_ > max_depth_) max_depth_ = depth_;
  for (const XmlAttribute& attr : attributes) {
    registry_->Intern("@" + attr.name);
    ++node_count_;
    if (depth_ + 1 > max_depth_) max_depth_ = depth_ + 1;
  }
}

void TagCollector::OnEndElement(std::string_view /*name*/) { --depth_; }

Labeler::Labeler(const TagRegistry& registry, const PLabelCodec& codec)
    : registry_(registry), codec_(codec) {}

void Labeler::Fail(std::string message) {
  if (status_.ok()) status_ = Status::InvalidArgument(std::move(message));
}

void Labeler::OnStartElement(std::string_view name,
                             const std::vector<XmlAttribute>& attributes) {
  if (!status_.ok()) return;
  auto tag = registry_.Find(name);
  if (!tag.has_value()) {
    Fail("Labeler: tag not in registry: " + std::string(name));
    return;
  }
  int level = static_cast<int>(stack_.size()) + 1;
  if (level > codec_.max_depth()) {
    Fail("Labeler: document deeper than codec capacity");
    return;
  }

  Frame frame;
  frame.record.tag = *tag;
  frame.record.level = level;
  frame.record.start = next_pos_++;
  if (stack_.empty()) {
    frame.record.plabel = codec_.RootLabel(*tag);
    frame.summary = summary_.Extend(summary_.mutable_root(), *tag,
                                    frame.record.plabel);
  } else {
    const Frame& parent = stack_.back();
    frame.record.plabel = codec_.ChildLabel(parent.record.plabel, *tag);
    frame.summary =
        summary_.Extend(parent.summary, *tag, frame.record.plabel);
  }
  frame.summary->count++;

  for (const XmlAttribute& attr : attributes) {
    auto attr_tag = registry_.Find("@" + attr.name);
    if (!attr_tag.has_value()) {
      Fail("Labeler: attribute not in registry: @" + attr.name);
      return;
    }
    if (level + 1 > codec_.max_depth()) {
      Fail("Labeler: document deeper than codec capacity");
      return;
    }
    NodeRecord rec;
    rec.tag = *attr_tag;
    rec.level = level + 1;
    rec.plabel = codec_.ChildLabel(frame.record.plabel, *attr_tag);
    rec.start = next_pos_++;
    next_pos_++;  // attribute value unit
    rec.end = next_pos_++;
    rec.data = dict_.Intern(attr.value);
    SummaryNode* snode =
        summary_.Extend(frame.summary, *attr_tag, rec.plabel);
    snode->count++;
    records_.push_back(rec);
  }

  stack_.push_back(std::move(frame));
}

void Labeler::OnEndElement(std::string_view /*name*/) {
  if (!status_.ok() || stack_.empty()) return;
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  frame.record.end = next_pos_++;
  if (!frame.text.empty()) {
    frame.record.data = dict_.Intern(frame.text);
  }
  records_.push_back(frame.record);
}

void Labeler::OnText(std::string_view text) {
  if (!status_.ok() || stack_.empty()) return;
  next_pos_++;  // text unit
  stack_.back().text.append(text);
}

}  // namespace blas

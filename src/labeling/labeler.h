#ifndef BLAS_LABELING_LABELER_H_
#define BLAS_LABELING_LABELER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "labeling/node_record.h"
#include "labeling/plabel.h"
#include "labeling/tag_registry.h"
#include "schema/path_summary.h"
#include "storage/string_dict.h"
#include "xml/sax.h"

namespace blas {

/// \brief Pass 1 of the index generator: collects the tag alphabet,
/// maximum depth and node count needed to size the P-label codec.
class TagCollector : public SaxHandler {
 public:
  explicit TagCollector(TagRegistry* registry) : registry_(registry) {}

  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes) override;
  void OnEndElement(std::string_view name) override;
  void OnText(std::string_view text) override {
    (void)text;
  }

  int max_depth() const { return max_depth_; }
  size_t node_count() const { return node_count_; }

 private:
  TagRegistry* registry_;
  int depth_ = 0;
  int max_depth_ = 0;
  size_t node_count_ = 0;
};

/// \brief Pass 2 of the index generator (figure 6): consumes SAX events and
/// produces one NodeRecord <plabel, start, end, level, data> per element and
/// attribute node, the PCDATA dictionary, and the path summary.
///
/// Position counting: every element start tag, end tag and text run is one
/// unit; each attribute occupies three units (start, value, end), matching
/// xml::DomBuilder so DOM positions and labeled positions can be compared
/// in tests.
class Labeler : public SaxHandler {
 public:
  Labeler(const TagRegistry& registry, const PLabelCodec& codec);

  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes) override;
  void OnEndElement(std::string_view name) override;
  void OnText(std::string_view text) override;

  /// Non-OK if an unseen tag or excessive depth was encountered (only
  /// possible when the registry/codec do not match the document).
  const Status& status() const { return status_; }

  std::vector<NodeRecord>& records() { return records_; }
  StringDict& dict() { return dict_; }
  PathSummary& summary() { return summary_; }

  PathSummary TakeSummary() { return std::move(summary_); }

 private:
  struct Frame {
    NodeRecord record;
    SummaryNode* summary = nullptr;
    std::string text;
  };

  void Fail(std::string message);

  const TagRegistry& registry_;
  const PLabelCodec& codec_;
  Status status_;
  uint32_t next_pos_ = 1;
  std::vector<Frame> stack_;
  std::vector<NodeRecord> records_;
  StringDict dict_;
  PathSummary summary_;
};

}  // namespace blas

#endif  // BLAS_LABELING_LABELER_H_

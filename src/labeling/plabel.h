#ifndef BLAS_LABELING_PLABEL_H_
#define BLAS_LABELING_PLABEL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/u128.h"
#include "labeling/tag_registry.h"

namespace blas {

/// A P-label value (the `p1` integer assigned to an XML node, definition
/// 3.3 of the paper).
using PLabel = u128;

/// \brief P-label interval <p1, p2> of a suffix path expression
/// (definition 3.2).
struct PLabelRange {
  PLabel lo = 1;
  PLabel hi = 0;  // default: the empty range

  bool empty() const { return lo > hi; }
  bool Contains(PLabel p) const { return lo <= p && p <= hi; }
  /// Interval containment = path-expression containment (definition 3.2).
  bool ContainsRange(const PLabelRange& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  bool Overlaps(const PLabelRange& other) const {
    return !(hi < other.lo || other.hi < lo);
  }
  bool operator==(const PLabelRange& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// \brief Exact-integer implementation of the paper's P-labeling scheme
/// (algorithms 1 and 2).
///
/// With n distinct tags the label domain is split uniformly: base
/// B = n + 1 (one slot for "/" plus one per tag), and the domain is
/// m = B^H where H is the interval-partitioning height. A P-label is then
/// a base-B fixed-point number whose most-significant digit is the node's
/// own tag, the next digit its parent's tag, and so on (the reversed source
/// path), terminated by the 0 digit of the "/" slot. Because every interval
/// width is a power of B, all of the paper's ratio arithmetic is exact.
///
/// Capacity: H = floor(127 / log2(B)) digits fit in the 128-bit label, so
/// documents may be at most H - 1 levels deep (e.g. 77 tags -> depth 19).
class PLabelCodec {
 public:
  /// Creates a codec for `num_tags` distinct tags supporting documents of
  /// depth up to `max_depth`. Fails with CapacityExceeded when
  /// (num_tags+1)^(max_depth+1) does not fit in 128 bits.
  static Result<PLabelCodec> Create(size_t num_tags, int max_depth);

  /// Number of base-B digits in a label.
  int height() const { return height_; }
  /// The base B = num_tags + 1.
  u128 base() const { return base_; }
  /// Size of the label domain, m = B^height.
  u128 domain() const { return pow_[height_]; }
  /// Deepest supported document level.
  int max_depth() const { return height_ - 1; }

  /// P-label of the document root tagged `tag` (algorithm 2, first push).
  PLabel RootLabel(TagId tag) const {
    return static_cast<u128>(tag) * pow_[height_ - 1];
  }

  /// P-label of a child tagged `tag` under a node labeled `parent`
  /// (algorithm 2 inner step, O(1) per node).
  PLabel ChildLabel(PLabel parent, TagId tag) const {
    return static_cast<u128>(tag) * pow_[height_ - 1] + parent / base_;
  }

  /// \brief P-label interval of the suffix path `alpha t1/.../tk`
  /// (algorithm 1).
  ///
  /// `tags` are in root-to-leaf order; `absolute` selects alpha = '/'
  /// (a simple path) instead of '//'. Returns the empty range when the
  /// path is deeper than the codec supports (it can match no node).
  PLabelRange SuffixInterval(const std::vector<TagId>& tags,
                             bool absolute) const;

  /// Interval of the path "//" (every node).
  PLabelRange AllNodes() const { return PLabelRange{0, domain() - 1}; }

  /// Decodes a node label back into its source path (tag ids, root first).
  /// Used by diagnostics and tests.
  std::vector<TagId> DecodePath(PLabel label) const;

 private:
  PLabelCodec(u128 base, int height, std::vector<u128> pow)
      : base_(base), height_(height), pow_(std::move(pow)) {}

  u128 base_;
  int height_;
  std::vector<u128> pow_;  // pow_[i] = base_^i, i in [0, height_]
};

}  // namespace blas

#endif  // BLAS_LABELING_PLABEL_H_

#include "labeling/plabel.h"

namespace blas {

Result<PLabelCodec> PLabelCodec::Create(size_t num_tags, int max_depth) {
  if (num_tags == 0) {
    return Status::InvalidArgument("PLabelCodec: no tags registered");
  }
  if (max_depth < 1) {
    return Status::InvalidArgument("PLabelCodec: max_depth must be >= 1");
  }
  u128 base = static_cast<u128>(num_tags) + 1;
  int height = max_depth + 1;  // one digit per level plus the '/' slot
  std::vector<u128> pow(static_cast<size_t>(height) + 1);
  pow[0] = 1;
  constexpr u128 kMax = ~static_cast<u128>(0);
  for (int i = 1; i <= height; ++i) {
    if (pow[i - 1] > kMax / base) {
      return Status::CapacityExceeded(
          "PLabelCodec: (n+1)^(depth+1) exceeds 128 bits; n=" +
          std::to_string(num_tags) + " depth=" + std::to_string(max_depth));
    }
    pow[i] = pow[i - 1] * base;
  }
  return PLabelCodec(base, height, std::move(pow));
}

PLabelRange PLabelCodec::SuffixInterval(const std::vector<TagId>& tags,
                                        bool absolute) const {
  const int k = static_cast<int>(tags.size());
  if (k == 0) {
    // "//" selects everything; "/" alone is not a node-selecting path.
    return absolute ? PLabelRange{} : AllNodes();
  }
  if (k > max_depth()) return PLabelRange{};  // deeper than any node
  u128 p1 = 0;
  for (TagId tag : tags) {
    p1 = p1 / base_ + static_cast<u128>(tag) * pow_[height_ - 1];
  }
  if (absolute) {
    // A simple path is an equality selection: every node with exactly this
    // source path carries the label p1 (definition 3.3 / proposition 3.2),
    // and no other node label falls into the '/'-slot subinterval.
    return PLabelRange{p1, p1};
  }
  return PLabelRange{p1, p1 + pow_[height_ - k] - 1};
}

std::vector<TagId> PLabelCodec::DecodePath(PLabel label) const {
  // Digits MSB-first are leaf-to-root tags; stop at the first 0 digit.
  std::vector<TagId> reversed;
  for (int i = height_ - 1; i >= 0; --i) {
    u128 digit = (label / pow_[i]) % base_;
    if (digit == 0) break;
    reversed.push_back(static_cast<TagId>(digit));
  }
  return std::vector<TagId>(reversed.rbegin(), reversed.rend());
}

}  // namespace blas

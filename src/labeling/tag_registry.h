#ifndef BLAS_LABELING_TAG_REGISTRY_H_
#define BLAS_LABELING_TAG_REGISTRY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace blas {

/// Identifier of an element/attribute tag. Id 0 is reserved for the path
/// separator "/" (the paper assigns '/' its own ratio slot r0); real tags
/// are numbered 1..n in registration order (the paper notes the particular
/// tag order is irrelevant).
using TagId = uint32_t;

inline constexpr TagId kSlashTag = 0;

/// \brief Bidirectional tag-name <-> TagId map.
///
/// The P-label base is `size() + 1`, so the registry must be frozen before
/// the P-label codec is built; the labeling pass rejects unseen tags.
class TagRegistry {
 public:
  TagRegistry() = default;

  /// Returns the id of `name`, registering it if new. Must not be called
  /// after Freeze().
  TagId Intern(std::string_view name);

  /// Returns the id of `name` if registered.
  std::optional<TagId> Find(std::string_view name) const;

  /// Returns the name for a valid id ("/" for kSlashTag).
  const std::string& Name(TagId id) const;

  /// Number of distinct real tags (excludes the "/" slot).
  size_t size() const { return names_.size(); }

  /// Disallows further Intern() calls (checked in debug builds).
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

 private:
  std::vector<std::string> names_;  // index = id - 1
  std::unordered_map<std::string, TagId> ids_;
  bool frozen_ = false;
};

}  // namespace blas

#endif  // BLAS_LABELING_TAG_REGISTRY_H_

#ifndef BLAS_LABELING_DLABEL_H_
#define BLAS_LABELING_DLABEL_H_

#include <cstdint>

namespace blas {

/// \brief D-label <start, end, level> (definition 3.1 of the paper).
///
/// `start`/`end` are the positions of the node's start and end tags in the
/// document, counting every start tag, end tag and text run as one unit;
/// `level` is the length of the path from the root (root = 1).
struct DLabel {
  uint32_t start = 0;
  uint32_t end = 0;
  int32_t level = 0;

  /// Descendant property: *this is a proper ancestor of `other`.
  bool Contains(const DLabel& other) const {
    return start < other.start && end > other.end;
  }

  /// Child property: `other` is a direct child.
  bool IsParentOf(const DLabel& other) const {
    return Contains(other) && level + 1 == other.level;
  }

  /// Nonoverlap property: disjoint subtrees.
  bool DisjointWith(const DLabel& other) const {
    return end < other.start || start > other.end;
  }

  bool operator==(const DLabel& other) const {
    return start == other.start && end == other.end && level == other.level;
  }
};

}  // namespace blas

#endif  // BLAS_LABELING_DLABEL_H_

#ifndef BLAS_XPATH_NAIVE_EVAL_H_
#define BLAS_XPATH_NAIVE_EVAL_H_

#include <vector>

#include "xml/dom.h"
#include "xpath/ast.h"

namespace blas {

/// \brief Reference XPath evaluator over the DOM.
///
/// Straightforward recursive tree matching with no indexes; serves as the
/// oracle in differential tests against the BLAS translators and engines.
/// Returns the matched return-node DOM nodes ordered by document position
/// (start), without duplicates.
std::vector<const DomNode*> NaiveEval(const Query& query, const DomTree& tree);

/// Convenience: start positions of NaiveEval results.
std::vector<uint32_t> NaiveEvalStarts(const Query& query, const DomTree& tree);

}  // namespace blas

#endif  // BLAS_XPATH_NAIVE_EVAL_H_

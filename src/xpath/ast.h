#ifndef BLAS_XPATH_AST_H_
#define BLAS_XPATH_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace blas {

/// Axis of the edge entering a query node.
enum class Axis {
  kChild,       // "/"
  kDescendant,  // "//"
};

/// Wildcard name test.
inline constexpr const char* kWildcard = "*";

/// Comparison operator of a value predicate. The paper's queries use
/// equality only; the other operators are the "more complex XPath"
/// extension (section 7). Equality compares the strings; the ordered
/// operators follow XPath 1.0 and compare numerically (see
/// ValuePred::Matches).
enum class ValueOp {
  kEq,  // =
  kNe,  // !=
  kLt,  // <
  kLe,  // <=
  kGt,  // >
  kGe,  // >=
};

/// Spelled-out operator text ("=", "!=", ...).
const char* ValueOpText(ValueOp op);

/// XPath 1.0 number() of a string: optional whitespace, an optional minus
/// sign, a decimal Number (`Digits ('.' Digits?)? | '.' Digits`), optional
/// whitespace. Any other input — including signs XPath does not allow
/// ('+'), exponents, and non-numeric text — converts to NaN.
double XPathNumber(std::string_view text);

/// A value predicate "step OP 'literal'" attached to a query node.
struct ValuePred {
  ValueOp op = ValueOp::kEq;
  std::string literal;

  /// Evaluates the predicate against a node's PCDATA with XPath 1.0
  /// semantics: `=` / `!=` compare the strings, while the ordered
  /// operators (`<`, `<=`, `>`, `>=`) convert both sides through
  /// XPathNumber first — a side that is not a number becomes NaN and the
  /// comparison is false.
  bool Matches(std::string_view data) const;

  bool operator==(const ValuePred&) const = default;
};

/// \brief Node of the query tree (section 2, figure 3).
///
/// Each node carries the name test of one location step, the axis of its
/// incoming edge, an optional value predicate ("tag = 'literal'"), and its
/// children (branch predicates plus the main-path continuation). Exactly
/// one node in a query tree is the return node.
struct QueryNode {
  std::string tag;  // name test; kWildcard for "*"
  Axis axis = Axis::kChild;
  std::optional<ValuePred> value;  // self value predicate
  bool is_return = false;
  std::vector<std::unique_ptr<QueryNode>> children;

  bool IsLeaf() const { return children.empty(); }

  /// A node is a branching point if it has more than one child, or if it
  /// is the return node / carries a value predicate while not being a leaf
  /// (section 2 plus the part-leaf normalization of section 4.1).
  bool IsBranchingPoint() const {
    if (children.size() > 1) return true;
    if (children.empty()) return false;
    return is_return || value.has_value();
  }

  std::unique_ptr<QueryNode> Clone() const;
};

/// \brief A parsed tree query.
struct Query {
  std::unique_ptr<QueryNode> root;  // root->axis is the leading / or //

  Query() = default;
  Query(Query&&) = default;
  Query& operator=(Query&&) = default;

  Query Clone() const;

  /// The unique return node (set by the parser; last main-path step).
  const QueryNode* return_node() const;

  /// True if no node has more than one child and no internal value
  /// predicates exist ("path query" in the paper's taxonomy).
  bool IsPathQuery() const;

  /// True if it is a path query whose only descendant axis (if any) is the
  /// leading one ("suffix path query", definition 2.3).
  bool IsSuffixPathQuery() const;

  /// Canonical XPath text (round-trips through the parser).
  std::string ToString() const;
};

}  // namespace blas

#endif  // BLAS_XPATH_AST_H_

#include "xpath/ast.h"

#include <limits>

namespace blas {

const char* ValueOpText(ValueOp op) {
  switch (op) {
    case ValueOp::kEq:
      return "=";
    case ValueOp::kNe:
      return "!=";
    case ValueOp::kLt:
      return "<";
    case ValueOp::kLe:
      return "<=";
    case ValueOp::kGt:
      return ">";
    case ValueOp::kGe:
      return ">=";
  }
  return "?";
}

double XPathNumber(std::string_view text) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  if (begin == end) return kNaN;

  bool negative = false;
  if (text[begin] == '-') {
    negative = true;
    ++begin;
  }
  double value = 0.0;
  bool any_digit = false;
  while (begin < end && text[begin] >= '0' && text[begin] <= '9') {
    value = value * 10.0 + (text[begin] - '0');
    any_digit = true;
    ++begin;
  }
  if (begin < end && text[begin] == '.') {
    ++begin;
    double scale = 0.1;
    while (begin < end && text[begin] >= '0' && text[begin] <= '9') {
      value += (text[begin] - '0') * scale;
      scale *= 0.1;
      any_digit = true;
      ++begin;
    }
  }
  if (!any_digit || begin != end) return kNaN;
  return negative ? -value : value;
}

bool ValuePred::Matches(std::string_view data) const {
  switch (op) {
    case ValueOp::kEq:
      return data == literal;
    case ValueOp::kNe:
      return data != literal;
    default:
      break;
  }
  // Ordered operators are numeric; a NaN on either side (non-numeric
  // text, or a node without character data) fails every comparison.
  const double lhs = XPathNumber(data);
  const double rhs = XPathNumber(literal);
  switch (op) {
    case ValueOp::kLt:
      return lhs < rhs;
    case ValueOp::kLe:
      return lhs <= rhs;
    case ValueOp::kGt:
      return lhs > rhs;
    case ValueOp::kGe:
      return lhs >= rhs;
    default:
      return false;
  }
}

std::unique_ptr<QueryNode> QueryNode::Clone() const {
  auto node = std::make_unique<QueryNode>();
  node->tag = tag;
  node->axis = axis;
  node->value = value;
  node->is_return = is_return;
  node->children.reserve(children.size());
  for (const auto& child : children) node->children.push_back(child->Clone());
  return node;
}

Query Query::Clone() const {
  Query q;
  if (root) q.root = root->Clone();
  return q;
}

namespace {

const QueryNode* FindReturn(const QueryNode* node) {
  if (node == nullptr) return nullptr;
  if (node->is_return) return node;
  for (const auto& child : node->children) {
    if (const QueryNode* r = FindReturn(child.get())) return r;
  }
  return nullptr;
}

bool PathShape(const QueryNode* node) {
  if (node->children.size() > 1) return false;
  if (node->children.empty()) return true;
  return PathShape(node->children[0].get());
}

bool ChildAxesOnly(const QueryNode* node) {
  for (const auto& child : node->children) {
    if (child->axis != Axis::kChild) return false;
    if (!ChildAxesOnly(child.get())) return false;
  }
  return true;
}

void Render(const QueryNode* node, std::string* out) {
  out->append(node->axis == Axis::kChild ? "/" : "//");
  out->append(node->tag);
  // Branch predicates = all children except the main-path continuation,
  // which is the child leading to (or being) the return node if any,
  // otherwise there is no continuation (all children are predicates).
  const QueryNode* continuation = nullptr;
  for (const auto& child : node->children) {
    if (FindReturn(child.get()) != nullptr) {
      continuation = child.get();
      break;
    }
  }
  for (const auto& child : node->children) {
    if (child.get() == continuation) continue;
    out->push_back('[');
    std::string inner;
    Render(child.get(), &inner);
    // Inside predicates a leading child axis is written without '/'.
    if (inner[0] == '/' && inner[1] != '/') {
      out->append(inner.substr(1));
    } else {
      out->append(inner);
    }
    out->push_back(']');
  }
  if (node->value.has_value()) {
    out->push_back(' ');
    out->append(ValueOpText(node->value->op));
    out->append(" \"");
    out->append(node->value->literal);
    out->push_back('"');
  }
  if (continuation != nullptr) Render(continuation, out);
}

}  // namespace

const QueryNode* Query::return_node() const { return FindReturn(root.get()); }

bool Query::IsPathQuery() const {
  if (!root) return false;
  // No branching and no internal value predicates on non-return nodes
  // (a trailing value predicate on the return leaf keeps it a path query).
  const QueryNode* node = root.get();
  while (node != nullptr) {
    if (node->children.size() > 1) return false;
    if (node->value.has_value() && !node->children.empty()) return false;
    node = node->children.empty() ? nullptr : node->children[0].get();
  }
  return PathShape(root.get());
}

bool Query::IsSuffixPathQuery() const {
  return IsPathQuery() && ChildAxesOnly(root.get());
}

std::string Query::ToString() const {
  std::string out;
  if (root) Render(root.get(), &out);
  return out;
}

}  // namespace blas

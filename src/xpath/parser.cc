#include "xpath/parser.h"

#include <memory>
#include <utility>
#include <vector>

namespace blas {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == ':';
}

/// Head + tail of a parsed step sequence (tail = last main-path step).
struct Seq {
  std::unique_ptr<QueryNode> head;
  QueryNode* tail = nullptr;
};

class XPathParser {
 public:
  explicit XPathParser(std::string_view text) : text_(text) {}

  Result<Query> Parse() {
    SkipSpace();
    if (!AtAxis()) return Error("query must start with '/' or '//'");
    Axis lead = ConsumeAxis();
    BLAS_ASSIGN_OR_RETURN(Seq seq, ParseStepSeq(lead));
    SkipSpace();
    if (pos_ != text_.size()) return Error("unexpected trailing input");
    seq.tail->is_return = true;
    Query query;
    query.root = std::move(seq.head);
    return query;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("XPath: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool AtAxis() const { return Peek() == '/'; }

  Axis ConsumeAxis() {
    ++pos_;  // first '/'
    if (Peek() == '/') {
      ++pos_;
      return Axis::kDescendant;
    }
    return Axis::kChild;
  }

  /// Parses `Step (Axis Step)*`; the sequence's steps chain as children.
  Result<Seq> ParseStepSeq(Axis lead) {
    BLAS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> head, ParseStep(lead));
    Seq seq;
    seq.tail = head.get();
    seq.head = std::move(head);
    while (true) {
      SkipSpace();
      if (!AtAxis()) return seq;
      Axis axis = ConsumeAxis();
      BLAS_ASSIGN_OR_RETURN(std::unique_ptr<QueryNode> next,
                            ParseStep(axis));
      QueryNode* raw = next.get();
      seq.tail->children.push_back(std::move(next));
      seq.tail = raw;
    }
  }

  /// Parses `NameTest Predicate* ("=" Literal)?`.
  Result<std::unique_ptr<QueryNode>> ParseStep(Axis axis) {
    SkipSpace();
    auto node = std::make_unique<QueryNode>();
    node->axis = axis;
    if (Peek() == '*') {
      ++pos_;
      node->tag = kWildcard;
    } else if (Peek() == '@') {
      ++pos_;
      BLAS_ASSIGN_OR_RETURN(std::string name, ParseName());
      node->tag = "@" + name;
    } else {
      BLAS_ASSIGN_OR_RETURN(std::string name, ParseName());
      node->tag = std::move(name);
    }

    while (true) {
      SkipSpace();
      if (Peek() != '[') break;
      ++pos_;
      BLAS_RETURN_NOT_OK(ParsePredicateExpr(node.get()));
      SkipSpace();
      if (Peek() != ']') return Error("expected ']'");
      ++pos_;
    }

    SkipSpace();
    std::optional<ValueOp> op = TryConsumeValueOp();
    if (op.has_value()) {
      BLAS_ASSIGN_OR_RETURN(std::string literal, ParseLiteral());
      node->value = ValuePred{*op, std::move(literal)};
    }
    return node;
  }

  /// Recognizes =, !=, <, <=, >, >= ahead of a literal.
  std::optional<ValueOp> TryConsumeValueOp() {
    SkipSpace();
    char c = Peek();
    if (c == '=') {
      ++pos_;
      return ValueOp::kEq;
    }
    if (c == '!' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      pos_ += 2;
      return ValueOp::kNe;
    }
    if (c == '<' || c == '>') {
      ++pos_;
      bool or_equal = Peek() == '=';
      if (or_equal) ++pos_;
      if (c == '<') return or_equal ? ValueOp::kLe : ValueOp::kLt;
      return or_equal ? ValueOp::kGe : ValueOp::kGt;
    }
    return std::nullopt;
  }

  /// Parses `RelPath ("and" RelPath)*`, attaching each relative path as a
  /// predicate child of `owner`.
  Status ParsePredicateExpr(QueryNode* owner) {
    while (true) {
      BLAS_RETURN_NOT_OK(ParseRelPath(owner));
      SkipSpace();
      if (Peek() == 'a' && text_.substr(pos_, 3) == "and" &&
          (pos_ + 3 == text_.size() || !IsNameChar(text_[pos_ + 3]))) {
        pos_ += 3;
        continue;
      }
      return Status::OK();
    }
  }

  /// Parses one relative path inside a predicate. A leading "//" means
  /// descendant-of-context; a bare name means child-of-context.
  Status ParseRelPath(QueryNode* owner) {
    SkipSpace();
    Axis lead = Axis::kChild;
    if (AtAxis()) {
      Axis axis = ConsumeAxis();
      if (axis != Axis::kDescendant) {
        return Error("predicate paths may not start with a single '/'");
      }
      lead = Axis::kDescendant;
    }
    BLAS_ASSIGN_OR_RETURN(Seq seq, ParseStepSeq(lead));
    owner->children.push_back(std::move(seq.head));
    return Status::OK();
  }

  Result<std::string> ParseName() {
    SkipSpace();
    size_t begin = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == begin) return Error("expected name");
    return std::string(text_.substr(begin, pos_ - begin));
  }

  Result<std::string> ParseLiteral() {
    SkipSpace();
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Error("expected string literal");
    ++pos_;
    size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
    if (pos_ == text_.size()) return Error("unterminated string literal");
    std::string value(text_.substr(begin, pos_ - begin));
    ++pos_;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseXPath(std::string_view text) {
  XPathParser parser(text);
  return parser.Parse();
}

}  // namespace blas

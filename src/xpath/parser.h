#ifndef BLAS_XPATH_PARSER_H_
#define BLAS_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace blas {

/// \brief Parses the paper's tree-query XPath subset.
///
/// Grammar (section 2):
///   Query     := ("/" | "//") StepSeq
///   StepSeq   := Step (("/" | "//") Step)*
///   Step      := NameTest Predicate* ("=" Literal)?
///   NameTest  := Name | "@" Name | "*"
///   Predicate := "[" RelPath ("and" RelPath)* "]"
///   RelPath   := "//"? StepSeq          (leading name = child axis)
///   Literal   := '"' ... '"' | "'" ... "'"
///
/// The last step of the outermost path is the return node. Attribute tests
/// are modeled as "@name" tags (attributes are nodes in this system).
Result<Query> ParseXPath(std::string_view text);

}  // namespace blas

#endif  // BLAS_XPATH_PARSER_H_

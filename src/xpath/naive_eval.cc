#include "xpath/naive_eval.h"

#include <algorithm>
#include <set>

namespace blas {

namespace {

bool TagMatches(const QueryNode* q, const DomNode* d) {
  if (q->tag == kWildcard) return !d->is_attribute();
  return q->tag == d->tag;
}

void Candidates(const DomNode* ctx, const QueryNode* q,
                std::vector<const DomNode*>* out) {
  for (const auto& child : ctx->children) {
    if (TagMatches(q, child.get())) out->push_back(child.get());
    if (q->axis == Axis::kDescendant) Candidates(child.get(), q, out);
  }
}

/// Root-step candidates: the document root for '/', every node for '//'.
void RootCandidates(const DomTree& tree, const QueryNode* q,
                    std::vector<const DomNode*>* out) {
  if (q->axis == Axis::kChild) {
    if (tree.root() != nullptr && TagMatches(q, tree.root())) {
      out->push_back(tree.root());
    }
    return;
  }
  tree.ForEach([&](const DomNode* node) {
    if (TagMatches(q, node)) out->push_back(node);
  });
}

bool ValueOk(const QueryNode* q, const DomNode* d) {
  return !q->value.has_value() || q->value->Matches(d->text);
}

/// True if some node below `ctx` fully matches the subtree rooted at `q`
/// (existential predicate semantics).
bool Exists(const DomNode* ctx, const QueryNode* q);

bool SubtreeOk(const DomNode* d, const QueryNode* q) {
  if (!ValueOk(q, d)) return false;
  for (const auto& child : q->children) {
    if (!Exists(d, child.get())) return false;
  }
  return true;
}

bool Exists(const DomNode* ctx, const QueryNode* q) {
  std::vector<const DomNode*> cands;
  Candidates(ctx, q, &cands);
  for (const DomNode* d : cands) {
    if (SubtreeOk(d, q)) return true;
  }
  return false;
}

const QueryNode* ContinuationOf(const QueryNode* q) {
  for (const auto& child : q->children) {
    // The continuation is the child whose subtree contains the return node.
    const QueryNode* stack[1] = {child.get()};
    std::vector<const QueryNode*> todo(stack, stack + 1);
    while (!todo.empty()) {
      const QueryNode* n = todo.back();
      todo.pop_back();
      if (n->is_return) return child.get();
      for (const auto& c : n->children) todo.push_back(c.get());
    }
  }
  return nullptr;
}

/// True if `d` satisfies `q`'s value predicate and every predicate child
/// (children NOT containing the return node).
bool LocalOk(const DomNode* d, const QueryNode* q,
             const QueryNode* continuation) {
  if (!ValueOk(q, d)) return false;
  for (const auto& child : q->children) {
    if (child.get() == continuation) continue;
    if (!Exists(d, child.get())) return false;
  }
  return true;
}

void Collect(const DomNode* d, const QueryNode* q,
             std::set<const DomNode*>* out) {
  const QueryNode* continuation = ContinuationOf(q);
  if (!LocalOk(d, q, continuation)) return;
  if (q->is_return) {
    out->insert(d);
    return;
  }
  if (continuation == nullptr) return;  // malformed (no return below)
  std::vector<const DomNode*> cands;
  Candidates(d, continuation, &cands);
  for (const DomNode* next : cands) Collect(next, continuation, out);
}

}  // namespace

std::vector<const DomNode*> NaiveEval(const Query& query,
                                      const DomTree& tree) {
  std::vector<const DomNode*> result;
  if (!query.root || tree.root() == nullptr) return result;
  std::vector<const DomNode*> roots;
  RootCandidates(tree, query.root.get(), &roots);
  std::set<const DomNode*> out;
  for (const DomNode* d : roots) Collect(d, query.root.get(), &out);
  result.assign(out.begin(), out.end());
  std::sort(result.begin(), result.end(),
            [](const DomNode* a, const DomNode* b) {
              return a->start < b->start;
            });
  return result;
}

std::vector<uint32_t> NaiveEvalStarts(const Query& query,
                                      const DomTree& tree) {
  std::vector<uint32_t> starts;
  for (const DomNode* d : NaiveEval(query, tree)) starts.push_back(d->start);
  return starts;
}

}  // namespace blas

#include "server/admin_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <unordered_map>
#include <utility>

namespace blas {
namespace server {

namespace {

uint64_t MonoNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

std::string ErrnoText(const char* what) {
  std::string out = what;
  out += ": ";
  out += ::strerror(errno);
  return out;
}

HttpResponse PlainResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

}  // namespace

/// Per-connection state, owned by the event loop (never shared across
/// threads, never behind a lock).
struct AdminServer::Conn {
  int fd = -1;
  std::string in;        // bytes read, not yet parsed
  std::string out;       // serialized responses, not yet written
  size_t out_off = 0;
  /// Absolute steady-clock deadline; re-armed on every served request.
  uint64_t idle_deadline_ns = 0;
  bool close_after = false;  // close once `out` drains
};

AdminServer::AdminServer(Options options) : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::RegisterHandler(std::string path, HttpHandler handler) {
  MutexLock lock(mu_);
  handlers_[std::move(path)] = std::move(handler);
}

std::vector<std::string> AdminServer::HandlerPaths() const {
  std::vector<std::string> paths;
  MutexLock lock(mu_);
  paths.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) paths.push_back(path);
  return paths;
}

AdminServer::Stats AdminServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_over_capacity =
      rejected_over_capacity_.load(std::memory_order_relaxed);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_bad = requests_bad_.load(std::memory_order_relaxed);
  s.deadline_closes = deadline_closes_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.active_connections = active_connections_.load(std::memory_order_relaxed);
  return s;
}

Status AdminServer::Start() {
  const int listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return Status::Internal(ErrnoText("socket"));

  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::Internal(ErrnoText("bind"));
    CloseFd(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 128) != 0) {
    const Status status = Status::Internal(ErrnoText("listen"));
    CloseFd(listen_fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status = Status::Internal(ErrnoText("getsockname"));
    CloseFd(listen_fd);
    return status;
  }

  int wake[2] = {-1, -1};
  if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) {
    const Status status = Status::Internal(ErrnoText("pipe2"));
    CloseFd(listen_fd);
    return status;
  }

  {
    MutexLock lock(mu_);
    if (started_) {
      CloseFd(listen_fd);
      CloseFd(wake[0]);
      CloseFd(wake[1]);
      return Status::InvalidArgument("AdminServer already started");
    }
    started_ = true;
    stop_.store(false, std::memory_order_release);
    wake_write_fd_.store(wake[1], std::memory_order_release);
    port_.store(static_cast<int>(ntohs(bound.sin_port)),
                std::memory_order_release);
    const int wake_read_fd = wake[0];
    thread_ = std::thread(
        [this, listen_fd, wake_read_fd] { RunLoop(listen_fd, wake_read_fd); });
  }
  return Status::OK();
}

void AdminServer::Stop() {
  std::thread joiner;
  {
    MutexLock lock(mu_);
    if (!thread_.joinable()) return;
    joiner = std::move(thread_);
  }
  stop_.store(true, std::memory_order_release);
  const int wake_fd = wake_write_fd_.load(std::memory_order_acquire);
  if (wake_fd >= 0) {
    const char byte = 'q';
    const ssize_t ignored = ::write(wake_fd, &byte, 1);
    (void)ignored;  // best effort; the loop also polls stop_
  }
  joiner.join();  // outside the lock: join is a blocking call
  CloseFd(wake_write_fd_.exchange(-1, std::memory_order_acq_rel));
}

HttpResponse AdminServer::Dispatch(const HttpRequest& request) {
  HttpHandler handler;
  {
    MutexLock lock(mu_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  // Invoked outside the lock: handlers read clocks and take their own
  // subsystem locks (registry, trace ring).
  if (!handler) {
    return PlainResponse(404, "no handler for " + request.path + "\n");
  }
  return handler(request);
}

bool AdminServer::ServeBuffered(Conn* conn, uint64_t now_ns) {
  const uint64_t deadline_ns =
      static_cast<uint64_t>(options_.read_deadline_ms) * 1000000ull;
  for (;;) {
    const size_t head_end = conn->in.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (conn->in.size() > options_.max_request_bytes) {
        requests_bad_.fetch_add(1, std::memory_order_relaxed);
        conn->out += SerializeHttpResponse(
            PlainResponse(400, "request head too large\n"),
            /*head_only=*/false, /*keep_alive=*/false);
        conn->close_after = true;
      }
      return true;
    }
    std::string head = conn->in.substr(0, head_end);
    conn->in.erase(0, head_end + 4);

    Result<HttpRequest> parsed = ParseHttpRequest(head);
    if (!parsed.ok()) {
      requests_bad_.fetch_add(1, std::memory_order_relaxed);
      conn->out += SerializeHttpResponse(
          PlainResponse(400, std::string(parsed.status().message()) + "\n"),
          /*head_only=*/false, /*keep_alive=*/false);
      conn->close_after = true;
      return true;
    }
    const HttpRequest& request = *parsed;

    HttpResponse response;
    if (request.method == "GET" || request.method == "HEAD") {
      response = Dispatch(request);
    } else {
      response = PlainResponse(405, "only GET and HEAD are supported\n");
    }
    requests_ok_.fetch_add(1, std::memory_order_relaxed);

    const bool keep_alive = request.KeepAlive() && !conn->close_after;
    conn->out += SerializeHttpResponse(response,
                                       /*head_only=*/request.method == "HEAD",
                                       keep_alive);
    if (!keep_alive) conn->close_after = true;
    conn->idle_deadline_ns = now_ns + deadline_ns;
    if (conn->close_after) return true;  // ignore pipelined leftovers
  }
}

void AdminServer::RunLoop(int listen_fd, int wake_fd) {
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  std::unordered_map<int, Conn> conns;

  auto add_fd = [&](int fd, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
  };
  auto update_interest = [&](const Conn& conn) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    if (conn.out_off < conn.out.size()) ev.events |= EPOLLOUT;
    ev.data.fd = conn.fd;
    ::epoll_ctl(ep, EPOLL_CTL_MOD, conn.fd, &ev);
  };
  auto close_conn = [&](int fd) {
    conns.erase(fd);  // closing the fd drops its epoll registration
    ::close(fd);
    active_connections_.store(conns.size(), std::memory_order_relaxed);
  };
  // Returns false when the connection is done (drained a close_after
  // response, or the socket errored) and must be closed by the caller.
  auto flush = [&](Conn& conn) -> bool {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<size_t>(n);
        bytes_written_.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // peer error / reset
    }
    conn.out.clear();
    conn.out_off = 0;
    return !conn.close_after;
  };

  if (ep < 0) {  // pathological; refuse to serve rather than spin
    CloseFd(listen_fd);
    CloseFd(wake_fd);
    return;
  }
  add_fd(listen_fd, EPOLLIN);
  add_fd(wake_fd, EPOLLIN);

  const uint64_t read_deadline_ns =
      static_cast<uint64_t>(options_.read_deadline_ms) * 1000000ull;
  bool draining = false;
  uint64_t drain_deadline_ns = 0;
  epoll_event events[64];

  for (;;) {
    // 50 ms tick bounds deadline-sweep latency even with no socket
    // activity at all.
    const int n_events = ::epoll_wait(ep, events, 64, 50);
    const uint64_t now_ns = MonoNanos();

    if (stop_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline_ns =
          now_ns + static_cast<uint64_t>(options_.drain_timeout_ms) * 1000000ull;
      ::epoll_ctl(ep, EPOLL_CTL_DEL, listen_fd, nullptr);
      CloseFd(listen_fd);
      listen_fd = -1;
      // Keep only connections with response bytes still in flight.
      std::vector<int> idle;
      for (auto& [fd, conn] : conns) {
        conn.close_after = true;
        if (conn.out_off >= conn.out.size()) idle.push_back(fd);
      }
      for (const int fd : idle) close_conn(fd);
    }

    for (int i = 0; i < n_events; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;

      if (fd == wake_fd) {
        char buf[64];
        while (::read(wake_fd, buf, sizeof(buf)) > 0) {
        }
        continue;
      }

      if (fd == listen_fd) {
        for (;;) {
          const int cfd = ::accept4(listen_fd, nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          if (draining) {
            ::close(cfd);
            continue;
          }
          if (conns.size() >= options_.max_connections) {
            rejected_over_capacity_.fetch_add(1, std::memory_order_relaxed);
            // Best effort: the socket buffer is empty, so the short 503
            // almost always fits without blocking.
            const std::string bytes = SerializeHttpResponse(
                PlainResponse(503, "admin connection limit reached\n"),
                /*head_only=*/false, /*keep_alive=*/false);
            const ssize_t ignored =
                ::send(cfd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
            (void)ignored;
            ::close(cfd);
            continue;
          }
          int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          accepted_.fetch_add(1, std::memory_order_relaxed);
          Conn conn;
          conn.fd = cfd;
          conn.idle_deadline_ns = now_ns + read_deadline_ns;
          conns.emplace(cfd, std::move(conn));
          active_connections_.store(conns.size(), std::memory_order_relaxed);
          add_fd(cfd, EPOLLIN);
        }
        continue;
      }

      auto it = conns.find(fd);
      if (it == conns.end()) continue;  // closed earlier this batch
      Conn& conn = it->second;

      if (ev & (EPOLLHUP | EPOLLERR)) {
        close_conn(fd);
        continue;
      }

      bool alive = true;
      if (ev & EPOLLIN) {
        for (;;) {
          char buf[4096];
          const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          alive = false;  // EOF or error
          break;
        }
        if (alive && !draining && !conn.close_after) {
          ServeBuffered(&conn, now_ns);
        }
      }
      if (alive && (conn.out_off < conn.out.size() || conn.close_after)) {
        alive = flush(conn);
      }
      if (!alive) {
        close_conn(fd);
        continue;
      }
      update_interest(conn);
    }

    // Deadline sweep: connections that sat partial/idle past their
    // deadline get a 408 (when they sent something) or a silent close.
    std::vector<int> expired;
    for (auto& [fd, conn] : conns) {
      if (now_ns < conn.idle_deadline_ns) continue;
      deadline_closes_.fetch_add(1, std::memory_order_relaxed);
      if (conn.out_off < conn.out.size()) {
        // Slow reader holding response bytes: give up on it.
        expired.push_back(fd);
      } else if (!conn.in.empty() && !conn.close_after) {
        conn.out += SerializeHttpResponse(
            PlainResponse(408, "request head not received in time\n"),
            /*head_only=*/false, /*keep_alive=*/false);
        conn.close_after = true;
        // Re-arm so the 408 gets one deadline's worth of flush time
        // before the slow-reader branch above reaps the connection.
        conn.idle_deadline_ns = now_ns + read_deadline_ns;
        if (flush(conn)) {
          update_interest(conn);
        } else {
          expired.push_back(fd);
        }
      } else {
        expired.push_back(fd);  // idle keep-alive, nothing owed
      }
    }
    for (const int fd : expired) close_conn(fd);

    if (draining) {
      if (conns.empty() || now_ns >= drain_deadline_ns) break;
    }
  }

  std::vector<int> rest;
  rest.reserve(conns.size());
  for (const auto& [fd, conn] : conns) rest.push_back(fd);
  for (const int fd : rest) close_conn(fd);
  CloseFd(listen_fd);
  CloseFd(wake_fd);
  CloseFd(ep);
}

int AdminPortFromEnv(int fallback) {
  const char* text = std::getenv("BLAS_ADMIN_PORT");
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0 || value > 65535) {
    return fallback;
  }
  return static_cast<int>(value);
}

}  // namespace server
}  // namespace blas

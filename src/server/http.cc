#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace blas {
namespace server {

namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return value;
  }
  return {};
}

std::string_view HttpRequest::QueryParam(std::string_view key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == key) return std::string_view{"", 0};
      continue;
    }
    if (pair.substr(0, eq) == key) return pair.substr(eq + 1);
  }
  return {};
}

bool HttpRequest::KeepAlive() const {
  const std::string_view connection = Header("connection");
  if (EqualsIgnoreCase(connection, "close")) return false;
  if (version == "HTTP/1.0") {
    return EqualsIgnoreCase(connection, "keep-alive");
  }
  return true;  // HTTP/1.1 default
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Result<HttpRequest> ParseHttpRequest(std::string_view head) {
  HttpRequest request;
  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  const std::string_view line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed request line");
  }
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(Trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
  request.version = std::string(line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/') {
    return Status::InvalidArgument("malformed request target");
  }
  if (request.version.rfind("HTTP/", 0) != 0) {
    return Status::InvalidArgument("not an HTTP version tag");
  }
  const size_t question = request.target.find('?');
  if (question == std::string::npos) {
    request.path = request.target;
  } else {
    request.path = request.target.substr(0, question);
    request.query = request.target.substr(question + 1);
  }

  // Header lines: NAME ":" VALUE.
  std::string_view rest =
      line_end >= head.size() ? std::string_view{} : head.substr(line_end + 2);
  while (!rest.empty()) {
    size_t end = rest.find("\r\n");
    if (end == std::string_view::npos) end = rest.size();
    const std::string_view header_line = rest.substr(0, end);
    rest = end >= rest.size() ? std::string_view{} : rest.substr(end + 2);
    if (header_line.empty()) continue;
    const size_t colon = header_line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    request.headers.emplace_back(
        ToLower(Trim(header_line.substr(0, colon))),
        std::string(Trim(header_line.substr(colon + 1))));
  }

  // The admin surface never reads bodies; announcing one is an error the
  // framing layer rejects before a handler can misinterpret the stream.
  const std::string_view content_length = request.Header("content-length");
  if (!content_length.empty() && content_length != "0") {
    return Status::InvalidArgument("request bodies are not supported");
  }
  if (!request.Header("transfer-encoding").empty()) {
    return Status::InvalidArgument("transfer-encoding is not supported");
  }
  return request;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool head_only, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 160);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "HTTP/1.1 %d %s\r\n", response.status,
                HttpStatusReason(response.status));
  out += buf;
  out += "Content-Type: " + response.content_type + "\r\n";
  std::snprintf(buf, sizeof(buf), "Content-Length: %zu\r\n",
                response.body.size());
  out += buf;
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  if (!head_only) out += response.body;
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace server
}  // namespace blas

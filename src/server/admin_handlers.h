#ifndef BLAS_SERVER_ADMIN_HANDLERS_H_
#define BLAS_SERVER_ADMIN_HANDLERS_H_

#include <memory>
#include <vector>

#include "obs/snapshot.h"
#include "server/admin_server.h"
#include "service/query_service.h"

namespace blas {
namespace server {

/// Knobs for InstallAdminEndpoints.
struct AdminEndpointsOptions {
  /// Windows reported by /timez and /varz's "windowed" section.
  std::vector<int> windows_seconds = {10, 60, 300};
  obs::MetricsSnapshotter::Options snapshotter;
  /// Start the capture thread immediately. Tests turn this off and drive
  /// CaptureNow() by hand for determinism.
  bool start_snapshotter = true;
};

/// Installs the standard telemetry endpoints on `server`, backed by
/// `service` (which must outlive the server):
///
///   /         index of registered paths
///   /healthz  liveness probe ("ok")
///   /varz     QueryService::Statsz() JSON + a "windowed" section
///   /metrics  Prometheus text exposition 0.0.4
///   /timez    windowed rates + percentiles (10s/60s/300s by default)
///   /tracez   recent trace span trees (JSON; ?format=text for humans)
///   /slowz    slow-query log (JSON; ?format=text for humans)
///   /buildz   version, toolchain, build flags, uptime
///
/// Returns the windowed-metrics snapshotter feeding /timez and /varz,
/// already capturing once per second (unless start_snapshotter is off).
/// The caller owns it and must keep it alive while the server serves.
std::unique_ptr<obs::MetricsSnapshotter> InstallAdminEndpoints(
    AdminServer* server, QueryService* service,
    AdminEndpointsOptions options = AdminEndpointsOptions());

/// /buildz's body (also handy for startup logs): one JSON object with
/// version, compiler, C++ standard, build mode, sanitizers and uptime.
std::string BuildInfoJson(double uptime_seconds);

}  // namespace server
}  // namespace blas

#endif  // BLAS_SERVER_ADMIN_HANDLERS_H_

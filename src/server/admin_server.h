#ifndef BLAS_SERVER_ADMIN_SERVER_H_
#define BLAS_SERVER_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "server/http.h"

namespace blas {
namespace server {

/// \brief Minimal epoll-based HTTP/1.1 server for the admin/telemetry
/// surface: a path -> handler registry behind a nonblocking event loop.
///
/// Design points (deliberately the reusable skeleton for the future
/// query-serving front door):
///   * one acceptor thread owns the event loop; connections live in a
///     loop-local table, so the hot path takes no lock at all — the
///     server's mutex guards only the handler registry and lifecycle
///     state, and nothing blocking (accept/read/write are nonblocking,
///     clock reads happen on the loop thread outside the lock);
///   * bounded connections: past `max_connections`, new sockets get an
///     immediate 503 and close;
///   * per-request read deadline: a connection that has not delivered a
///     complete request head within `read_deadline_ms` gets 408 (or a
///     plain close when it sent nothing at all) — slowloris protection;
///   * keep-alive: HTTP/1.1 connections serve any number of sequential
///     requests, each re-arming the deadline;
///   * graceful Stop(): the listener closes first, in-flight response
///     bytes drain for up to `drain_timeout_ms`, then the loop joins.
///
/// GET and HEAD only; request bodies are rejected with 400. Handlers run
/// on the loop thread and must not block (see HttpHandler).
class AdminServer {
 public:
  struct Options {
    /// Loopback by default: the admin surface is unauthenticated.
    std::string bind_address = "127.0.0.1";
    /// 0 binds an ephemeral port; read the real one from port().
    int port = 0;
    size_t max_connections = 64;
    int read_deadline_ms = 5000;
    /// How long Stop() lets in-flight response bytes flush.
    int drain_timeout_ms = 2000;
    /// Request heads larger than this are answered 400 and closed.
    size_t max_request_bytes = 8192;
  };

  /// Telemetry about the server itself (exported as blas_admin_* gauges
  /// by the standard wiring). Monotonic since Start.
  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected_over_capacity = 0;
    uint64_t requests_ok = 0;       // handler responses, any status
    uint64_t requests_bad = 0;      // framing rejections (400)
    uint64_t deadline_closes = 0;   // 408s and idle-timeout closes
    uint64_t bytes_written = 0;
    uint64_t active_connections = 0;
  };

  AdminServer() : AdminServer(Options()) {}
  explicit AdminServer(Options options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers (or replaces) the handler for an exact path. Safe before
  /// or after Start.
  void RegisterHandler(std::string path, HttpHandler handler);

  /// Paths with a registered handler, sorted (the "/" index page).
  std::vector<std::string> HandlerPaths() const;

  /// Binds, listens and spawns the event loop. Fails (without leaking
  /// fds) when the address is unavailable; calling twice is an error.
  Status Start();

  /// Graceful shutdown: stop accepting, drain in-flight responses (up to
  /// drain_timeout_ms), join the loop. Idempotent; the destructor calls
  /// it.
  void Stop();

  /// The bound port (the resolved one under Options::port == 0), or -1
  /// before Start. Required for parallel test runs — never hard-code an
  /// admin port in a test.
  int port() const { return port_.load(std::memory_order_acquire); }

  Stats stats() const;

 private:
  struct Conn;

  void RunLoop(int listen_fd, int wake_fd);
  /// Parses/serves every complete request head in `conn`'s input buffer;
  /// returns false when the connection must close (framing error already
  /// queued as a 400).
  bool ServeBuffered(Conn* conn, uint64_t now_ns);
  HttpResponse Dispatch(const HttpRequest& request);

  const Options options_;

  mutable Mutex mu_;
  std::map<std::string, HttpHandler> handlers_ BLAS_GUARDED_BY(mu_);
  bool started_ BLAS_GUARDED_BY(mu_) = false;
  std::thread thread_ BLAS_GUARDED_BY(mu_);

  std::atomic<int> port_{-1};
  /// Write end of the loop's wake pipe; Stop() pokes it.
  std::atomic<int> wake_write_fd_{-1};
  std::atomic<bool> stop_{false};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_over_capacity_{0};
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_bad_{0};
  std::atomic<uint64_t> deadline_closes_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> active_connections_{0};
};

/// Resolves the admin port from BLAS_ADMIN_PORT (0 = ephemeral, see
/// AdminServer::port()), falling back to `fallback` when unset/invalid.
int AdminPortFromEnv(int fallback);

}  // namespace server
}  // namespace blas

#endif  // BLAS_SERVER_ADMIN_SERVER_H_

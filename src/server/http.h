#ifndef BLAS_SERVER_HTTP_H_
#define BLAS_SERVER_HTTP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace blas {
namespace server {

/// \brief One parsed HTTP/1.x request head (no body — the admin surface
/// is GET/HEAD only; a request that announces a body is rejected with 400
/// before it gets here).
struct HttpRequest {
  std::string method;   // "GET", "HEAD", ...
  std::string target;   // as sent: "/varz?window=10"
  std::string path;     // "/varz"
  std::string query;    // "window=10" ("" when absent)
  std::string version;  // "HTTP/1.1"
  /// Headers in arrival order, names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;

  /// First header of that (case-insensitive) name, or "".
  std::string_view Header(std::string_view name) const;
  /// First value of `key` in the query string ("a=1&b=2"), or "".
  std::string_view QueryParam(std::string_view key) const;
  /// HTTP/1.1 defaults to keep-alive; "Connection: close" (any case) or
  /// HTTP/1.0 without "Connection: keep-alive" turns it off.
  bool KeepAlive() const;
};

/// \brief One response to serialize. Handlers fill status / content type /
/// body; the server adds framing headers (Content-Length, Connection).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A registered endpoint. Runs on the server's event-loop thread — keep
/// it non-blocking and quick (string building, no disk, no sleeps).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Standard reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
const char* HttpStatusReason(int status);

/// Parses a request head (everything up to and excluding the blank line).
/// Returns InvalidArgument on any framing violation: bad request line,
/// non-HTTP version tag, malformed header line, or an announced body
/// (Content-Length > 0 / Transfer-Encoding).
Result<HttpRequest> ParseHttpRequest(std::string_view head);

/// Serializes status line + framing headers + body. With `head_only` the
/// body is omitted but Content-Length still describes it (HEAD
/// semantics).
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool head_only, bool keep_alive);

/// Minimal JSON string escaping for bodies assembled by handlers
/// (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view text);

}  // namespace server
}  // namespace blas

#endif  // BLAS_SERVER_HTTP_H_

#include "server/admin_handlers.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string_view>
#include <utility>
#include <vector>

namespace blas {
namespace server {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

HttpResponse JsonResponse(std::string body) {
  HttpResponse response;
  response.content_type = "application/json; charset=utf-8";
  response.body = std::move(body);
  return response;
}

std::string TraceJson(const obs::Trace& trace) {
  std::string out;
  AppendF(&out, "{\"label\":\"%s\",\"total_ns\":%" PRIu64
                ",\"started_unix_ms\":%" PRId64 ",\"spans\":[",
          JsonEscape(trace.label).c_str(), trace.total_ns,
          trace.started_unix_ms);
  bool first = true;
  for (const obs::TraceSpan& span : trace.spans) {
    AppendF(&out, "%s{\"name\":\"%s\",\"note\":\"%s\",\"depth\":%d",
            first ? "" : ",", JsonEscape(span.name).c_str(),
            JsonEscape(span.note).c_str(), span.depth);
    AppendF(&out, ",\"start_ns\":%" PRIu64 ",\"duration_ns\":%" PRIu64,
            span.start_ns, span.duration_ns);
    AppendF(&out, ",\"elements\":%" PRIu64 ",\"page_fetches\":%" PRIu64
                  ",\"page_misses\":%" PRIu64 ",\"io_reads\":%" PRIu64 "}",
            span.elements, span.page_fetches, span.page_misses,
            span.io_reads);
    first = false;
  }
  out += "]}";
  return out;
}

std::string SlowEntryJson(const obs::SlowQueryEntry& entry) {
  std::string out;
  AppendF(&out, "{\"query\":\"%s\",\"translator\":\"%s\",\"engine\":\"%s\"",
          JsonEscape(entry.query).c_str(),
          JsonEscape(entry.translator).c_str(),
          JsonEscape(entry.engine).c_str());
  AppendF(&out, ",\"millis\":%.3f,\"elements\":%" PRIu64
                ",\"page_fetches\":%" PRIu64 ",\"page_misses\":%" PRIu64,
          entry.millis, entry.elements, entry.page_fetches,
          entry.page_misses);
  AppendF(&out, ",\"io_reads\":%" PRIu64 ",\"output_rows\":%" PRIu64,
          entry.io_reads, entry.output_rows);
  out += ",\"trace\":";
  out += entry.trace ? TraceJson(*entry.trace) : "null";
  out += "}";
  return out;
}

/// (name, value) pairs of AdminServer::Stats — exported by /metrics as
/// `blas_admin_*` and by /varz's "admin" section. Emitted by the handlers
/// themselves (which cannot outlive the server) rather than registered as
/// process-registry callbacks, which would dangle once the server dies.
std::vector<std::pair<const char*, uint64_t>> AdminStatsFields(
    const AdminServer::Stats& s) {
  return {
      {"accepted", s.accepted},
      {"rejected_over_capacity", s.rejected_over_capacity},
      {"requests_ok", s.requests_ok},
      {"requests_bad", s.requests_bad},
      {"deadline_closes", s.deadline_closes},
      {"bytes_written", s.bytes_written},
      {"active_connections", s.active_connections},
  };
}

}  // namespace

std::string BuildInfoJson(double uptime_seconds) {
  std::string out = "{\"name\":\"blas\",\"version\":\"dev\"";
#if defined(__VERSION__)
  AppendF(&out, ",\"compiler\":\"%s\"", JsonEscape(__VERSION__).c_str());
#else
  out += ",\"compiler\":\"unknown\"";
#endif
  AppendF(&out, ",\"cxx_standard\":%ld", static_cast<long>(__cplusplus));
#if defined(NDEBUG)
  out += ",\"build\":\"release\"";
#else
  out += ",\"build\":\"debug\"";
#endif
  out += ",\"sanitizers\":[";
  {
    bool first = true;
#if defined(__SANITIZE_ADDRESS__)
    out += "\"address\"";
    first = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    out += "\"address\"";
    first = false;
#endif
#endif
#if defined(__SANITIZE_THREAD__)
    out += first ? "\"thread\"" : ",\"thread\"";
    first = false;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    out += first ? "\"thread\"" : ",\"thread\"";
    first = false;
#endif
#endif
    (void)first;
  }
  out += "]";
  AppendF(&out, ",\"uptime_seconds\":%.3f}", uptime_seconds);
  return out;
}

std::unique_ptr<obs::MetricsSnapshotter> InstallAdminEndpoints(
    AdminServer* server, QueryService* service,
    AdminEndpointsOptions options) {
  auto snapshotter = std::make_unique<obs::MetricsSnapshotter>(
      [service] { return service->SnapshotMetrics(); }, options.snapshotter);
  obs::MetricsSnapshotter* snaps = snapshotter.get();
  const std::vector<int> windows = options.windows_seconds;
  const auto started = std::chrono::steady_clock::now();

  server->RegisterHandler("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });

  server->RegisterHandler("/varz", [service, server, snaps,
                                    windows](const HttpRequest&) {
    // Statsz() is one JSON object; splice the windowed and admin sections
    // in before its closing brace so /varz stays a single document.
    std::string body = service->Statsz();
    if (!body.empty() && body.back() == '}') {
      body.pop_back();
      body += ",\"windowed\":";
      body += snaps->WindowsJson(windows);
      body += ",\"admin\":{";
      bool first = true;
      for (const auto& [name, value] : AdminStatsFields(server->stats())) {
        AppendF(&body, "%s\"%s\":%" PRIu64, first ? "" : ",", name, value);
        first = false;
      }
      body += "}}";
    }
    return JsonResponse(std::move(body));
  });

  server->RegisterHandler("/metrics", [service, server](const HttpRequest&) {
    HttpResponse response;
    // The exact string Prometheus sniffs for text exposition 0.0.4.
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = service->StatszPrometheus();
    for (const auto& [name, value] : AdminStatsFields(server->stats())) {
      const char* type =
          std::string_view(name) == "active_connections" ? "gauge" : "counter";
      AppendF(&response.body,
              "# TYPE blas_admin_%s %s\nblas_admin_%s %" PRIu64 "\n", name,
              type, name, value);
    }
    return response;
  });

  server->RegisterHandler("/timez", [snaps, windows](const HttpRequest&) {
    return JsonResponse(snaps->WindowsJson(windows));
  });

  server->RegisterHandler("/tracez", [service](const HttpRequest& request) {
    const auto traces = service->recent_traces();
    if (request.QueryParam("format") == "text") {
      HttpResponse response;
      std::string body;
      AppendF(&body, "%zu recent trace(s)\n\n", traces.size());
      for (const auto& trace : traces) {
        body += trace->Render();
        body += "\n";
      }
      response.body = std::move(body);
      return response;
    }
    std::string body = "{\"traces\":[";
    bool first = true;
    for (const auto& trace : traces) {
      if (!first) body += ",";
      body += TraceJson(*trace);
      first = false;
    }
    body += "]}";
    return JsonResponse(std::move(body));
  });

  server->RegisterHandler("/slowz", [service](const HttpRequest& request) {
    const obs::SlowQueryLog& log = service->slow_query_log();
    const auto entries = log.Entries();
    if (request.QueryParam("format") == "text") {
      HttpResponse response;
      std::string body;
      AppendF(&body,
              "slow-query log: threshold %.1f ms, %zu entrie(s), %" PRIu64
              " recorded total\n\n",
              log.threshold_millis(), entries.size(), log.total_recorded());
      for (const auto& entry : entries) {
        body += entry.ToString();
        body += "\n";
      }
      response.body = std::move(body);
      return response;
    }
    std::string body;
    AppendF(&body,
            "{\"threshold_millis\":%.3f,\"total_recorded\":%" PRIu64
            ",\"entries\":[",
            log.threshold_millis(), log.total_recorded());
    bool first = true;
    for (const auto& entry : entries) {
      if (!first) body += ",";
      body += SlowEntryJson(entry);
      first = false;
    }
    body += "]}";
    return JsonResponse(std::move(body));
  });

  server->RegisterHandler("/buildz", [started](const HttpRequest&) {
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return JsonResponse(BuildInfoJson(uptime));
  });

  server->RegisterHandler("/", [server](const HttpRequest&) {
    HttpResponse response;
    std::string body = "blas admin endpoints:\n";
    for (const std::string& path : server->HandlerPaths()) {
      body += "  " + path + "\n";
    }
    response.body = std::move(body);
    return response;
  });

  if (options.start_snapshotter) snapshotter->Start();
  return snapshotter;
}

}  // namespace server
}  // namespace blas

#ifndef BLAS_STORAGE_PERSIST_H_
#define BLAS_STORAGE_PERSIST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "labeling/node_record.h"
#include "labeling/tag_registry.h"
#include "schema/path_summary.h"
#include "storage/node_store.h"
#include "storage/string_dict.h"

namespace blas {

/// \brief Serializable form of a BLAS index: everything the index
/// generator produced, sufficient to rebuild the node store, codec, value
/// dictionary and path summary without re-parsing the XML.
struct IndexSnapshot {
  /// Tag names in id order (id = position + 1; id 0 is "/").
  std::vector<std::string> tags;
  /// Maximum document depth (sizes the P-label codec).
  int max_depth = 0;
  /// All node records (any order).
  std::vector<NodeRecord> records;
  /// Dictionary values in id order.
  std::vector<std::string> values;
};

/// Writes a snapshot to `path` in the BLAS1 binary format (little-endian,
/// fixed-width lengths; P-labels stored as two 64-bit halves).
///
/// Crash safety (both this writer and SavePagedSnapshot): the bytes go to
/// `path + ".tmp"`, are flushed and fsync'ed, and only then atomically
/// renamed over `path` — a crash mid-write leaves the previous good
/// snapshot untouched; the stale .tmp is simply overwritten next time.
Status SaveSnapshot(const IndexSnapshot& snapshot, const std::string& path);

/// Reads a snapshot written by SaveSnapshot — or, compatibly, fully
/// materializes a BLASIDX2 paged snapshot (walking its page segments into
/// an IndexSnapshot). Fails with Corruption on magic/version mismatch or
/// truncated input.
///
/// BLAS1 validation rules: every count and length in the file is
/// untrusted until proven affordable. The loader measures the file size
/// once (a single seek to the end), then before any allocation it checks
/// that
///   * the tag count and value count each fit in the remaining bytes at
///     4 bytes minimum per entry (the length prefix),
///   * the record count fits at the fixed 36 bytes per record,
///   * each string's length prefix does not overrun the bytes left.
/// A corrupt or overstated header therefore fails with Status::Corruption
/// immediately instead of attempting a multi-terabyte resize(); truncated
/// payloads are caught by the subsequent bounded reads.
Result<IndexSnapshot> LoadSnapshot(const std::string& path);

// ------------------------------------------------------------------------
// BLASIDX2 — the page-aligned, demand-pageable snapshot format.
//
// Layout (all regions page-granular; any page addressable by
// (segment, index) without reading the rest of the file):
//
//   file page 0          fixed-size header + segment directory
//   file pages 1..P      the pool's page space, P = pool_pages:
//                          [tree segment]  the four clustered B+-trees
//                                          (sp, sd, value, doc), each a
//                                          contiguous pool-page range
//                                          recorded in its tree meta
//                          [value pages]   paged string dictionary
//                                          (see PagedDictLayout)
//                          [perm pages]    value ids sorted by string —
//                                          Find's binary-search index
//   trailing file pages  eagerly-loaded byte segments, each starting on
//                        a page boundary and padded to whole pages:
//                          [tag table]        u32 length + bytes per tag
//                          [path summary]     per node (preorder):
//                                             u32 parent entry index
//                                             (0xFFFFFFFF = root child),
//                                             u32 tag, u64 count
//                          [value page index] u32 first value id of each
//                                             value page
//
// The header stores (little-endian): magic "BLASIDX2", version,
// page_size, a native-endianness probe, sizeof(NodeRecord) and the three
// composite key sizes (tree pages are stored in native layout — a
// snapshot is rejected, not misread, on an ABI mismatch), node/tag/value
// counts, max_depth, pool_pages, the four tree metas (root, first leaf,
// size, height, pool page range) and the segment directory (file-page
// first/count + exact byte length per segment).
//
// Validation rules (checked by OpenPagedSnapshot before anything sized by
// the file is allocated, and before any data page is trusted):
//   * magic/version/page_size/endian probe/record+key sizes must match
//     this build exactly;
//   * the file size must cover the header, all pool pages and every
//     directory segment (ranges in bounds, byte lengths within their
//     page ranges);
//   * tree metas must lie inside the tree segment: page ranges in
//     bounds, root/first_leaf inside the tree's own range (or invalid
//     iff the tree is empty), height <= 64, size == node_count;
//   * the value/perm segments must follow the tree segment exactly and
//     sum (with it) to pool_pages;
//   * tag table, summary and value-page-index entries must parse within
//     their declared byte lengths; summary parents must precede their
//     children; the value page index must start at 0 and ascend;
//   * every count is bounded by its segment's bytes before any resize().
// Violations fail with Status::Corruption. At run time, a page id that
// still escapes range (and any short read) yields an empty PageRef,
// which scans treat as end-of-data — never UB.
//
// mmap validity rules (StorageBackend::kMmap serves these files as one
// read-only MAP_SHARED mapping of the pool prefix):
//   * Immutability: the mapped file must not change size or content
//     while mapped. BLASIDX2 snapshots satisfy this by construction —
//     they are written tmp+fsync+rename and never modified in place; a
//     new generation is a new file. Nothing else may truncate a
//     published segment (truncation under a mapping is the one way to
//     SIGBUS); logical deletion is fine — see reclamation below.
//   * Preflight: PagedFile::Open fstats the file and requires it to
//     cover base_offset + pool_pages * kPageSize before any mapping is
//     established, so a truncated file behind a valid header fails with
//     Corruption instead of faulting on an unbacked mapped page.
//   * Budget accounting: mapped-*resident* pages (touched since their
//     last eviction), not mapped bytes, are charged to the
//     StorageOptions/FrameBudget allowance, one frame per page — the
//     same unit the pread backend charges. Eviction is
//     madvise(MADV_DONTNEED), which drops the physical page and its
//     charge; the address range stays valid and refaults on next use.
//   * Reclamation ordering: PageRefs pin the mapping epoch, not pages.
//     munmap — and, when a tombstone deleter deferred it via
//     DeferUnlinkToMapping, the unlink — run only after the owning pool
//     is destroyed AND the last PageRef drops, in that order:
//     munmap first, then unlink (a crash between the two leaves an
//     orphan file for LiveCollection::SweepOrphans, never a dangling
//     mapping).
// ------------------------------------------------------------------------

/// One flattened path-summary node (preorder; parent precedes child).
struct PagedSummaryEntry {
  uint32_t parent = 0xFFFFFFFFu;  // entry index, 0xFFFFFFFF = root child
  TagId tag = 0;
  uint64_t count = 0;
};

/// Everything OpenPagedSnapshot loads eagerly — O(schema), not O(data):
/// header metadata plus the tag table, flattened summary and value page
/// index. The page segments stay on disk until a query faults them in.
struct PagedIndex {
  std::string path;
  std::vector<std::string> tags;
  int max_depth = 0;
  uint64_t node_count = 0;
  uint64_t pool_pages = 0;
  PagedStoreMeta store_meta;
  PagedDictLayout dict_layout;  // pool-relative page ids
  std::vector<PagedSummaryEntry> summary;

  /// Opens the pool's backing file (pages at `kPageSize * (1 + id)`).
  Result<PagedFile> OpenPool() const;
};

/// Components of a live system that SavePagedSnapshot lays out into
/// BLASIDX2 page segments.
struct PagedSnapshotParts {
  const NodeStore* store = nullptr;
  const TagRegistry* tags = nullptr;
  const StringDict* dict = nullptr;
  const PathSummary* summary = nullptr;
  int max_depth = 0;
};

/// Writes a BLASIDX2 paged snapshot (atomically, like SaveSnapshot).
/// Fails with Unsupported if a single dictionary value exceeds one page's
/// payload (such corpora must use the BLAS1 format).
Status SavePagedSnapshot(const PagedSnapshotParts& parts,
                         const std::string& path);

/// Reads and validates a BLASIDX2 header and its eager segments (see the
/// validation rules above). O(1) in document size.
Result<PagedIndex> OpenPagedSnapshot(const std::string& path);

}  // namespace blas

#endif  // BLAS_STORAGE_PERSIST_H_

#ifndef BLAS_STORAGE_PERSIST_H_
#define BLAS_STORAGE_PERSIST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "labeling/node_record.h"

namespace blas {

/// \brief Serializable form of a BLAS index: everything the index
/// generator produced, sufficient to rebuild the node store, codec, value
/// dictionary and path summary without re-parsing the XML.
struct IndexSnapshot {
  /// Tag names in id order (id = position + 1; id 0 is "/").
  std::vector<std::string> tags;
  /// Maximum document depth (sizes the P-label codec).
  int max_depth = 0;
  /// All node records (any order).
  std::vector<NodeRecord> records;
  /// Dictionary values in id order.
  std::vector<std::string> values;
};

/// Writes a snapshot to `path` in the BLAS1 binary format (little-endian,
/// fixed-width lengths; P-labels stored as two 64-bit halves).
Status SaveSnapshot(const IndexSnapshot& snapshot, const std::string& path);

/// Reads a snapshot written by SaveSnapshot. Fails with Corruption on
/// magic/version mismatch or truncated input.
///
/// Snapshot-format validation rules: every count and length in the file
/// is untrusted until proven affordable. The loader measures the file
/// size once (a single seek to the end), then before any allocation it
/// checks that
///   * the tag count and value count each fit in the remaining bytes at
///     4 bytes minimum per entry (the length prefix),
///   * the record count fits at the fixed 36 bytes per record,
///   * each string's length prefix does not overrun the bytes left.
/// A corrupt or overstated header therefore fails with Status::Corruption
/// immediately instead of attempting a multi-terabyte resize(); truncated
/// payloads are caught by the subsequent bounded reads.
Result<IndexSnapshot> LoadSnapshot(const std::string& path);

}  // namespace blas

#endif  // BLAS_STORAGE_PERSIST_H_

#ifndef BLAS_STORAGE_PAGE_SOURCE_H_
#define BLAS_STORAGE_PAGE_SOURCE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace blas {

/// \brief Backend interface of the paged read path (the seam behind
/// BufferPool).
///
/// A PageSource turns page ids into page bytes and owns the residency
/// bookkeeping (shard latches, eviction, budget charges, statistics)
/// for its mechanism:
///
///   * InMemorySource — the build-time page array with the counting LRU
///     that models disk accesses (BufferPool's in-memory constructor);
///   * PreadFrameSource — demand paging, pread-into-frame with
///     second-chance eviction and pin-counted frames;
///   * MmapSource — the segment file mapped once at open, zero-copy refs
///     over the mapping, madvise(MADV_DONTNEED) eviction, refs pinning
///     the mapping epoch instead of any frame.
///
/// The concrete classes live in page_source.cc; everything reaches them
/// through this interface plus the factories below. Thread-safety
/// contract matches BufferPool's: Fetch/stats/DropCache/ResetStats/
/// frames_in_use/peak_frames/TryEvictOne are safe from any thread;
/// Allocate/MutablePage are build-time only.
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// The concrete backend (never StorageBackend::kDefault).
  virtual StorageBackend backend() const = 0;
  virtual bool paged() const = 0;
  virtual size_t page_count() const = 0;
  virtual size_t shard_count() const = 0;

  /// Build-time mutation (in-memory only; paged sources return
  /// kInvalidPage / nullptr).
  virtual PageId Allocate() = 0;
  virtual Page* MutablePage(PageId id) = 0;

  /// The read path. `counted` distinguishes Fetch (query-time, counts
  /// fetches/misses/io_reads) from Peek (maintenance, uncounted).
  virtual PageRef Fetch(PageId id, bool counted) const = 0;

  /// Advisory batched readahead over [first, first + count); default
  /// no-op.
  virtual void Readahead(PageId first, size_t count) const;

  virtual BufferPool::Stats stats() const = 0;
  virtual void ResetStats() = 0;
  virtual void DropCache() = 0;
  virtual size_t frames_in_use() const = 0;
  virtual size_t peak_frames() const = 0;
  virtual bool io_error() const = 0;

  /// Evicts one unpinned resident frame (shared-budget reclaim; try-lock
  /// probes only, never blocks). False when nothing is evictable.
  virtual bool TryEvictOne() = 0;

  /// Hands ownership of unlinking `path` to the backend's mapping epoch,
  /// to be performed when the last PageRef drops (mmap only). False
  /// means the backend holds no deferred-release resource and the caller
  /// should unlink normally.
  virtual bool AdoptUnlinkOnRelease(const std::string& path);

 protected:
  /// Concrete sources mint refs through this shim (PageRef's constructor
  /// is private; PageSource is a friend).
  static PageRef MakeRef(const Page* page, void* pin,
                         const PageRefOwner* owner) {
    return PageRef(page, pin, owner);
  }

  /// FrameBudget shims: the budget's mutating interface is private
  /// (friend PageSource), so subclasses charge through these.
  static bool BudgetTryCharge(FrameBudget* budget, size_t bytes) {
    return budget->TryCharge(bytes);
  }
  static void BudgetForceCharge(FrameBudget* budget, size_t bytes) {
    budget->ForceCharge(bytes);
  }
  static void BudgetRelease(FrameBudget* budget, size_t bytes) {
    budget->Release(bytes);
  }
  static bool BudgetReclaimOne(FrameBudget* budget, BufferPool* preferred) {
    return budget->ReclaimOne(preferred);
  }
};

/// Resolves kDefault to a concrete paged backend: BLAS_STORAGE_BACKEND
/// ("mmap" or "pread") when set, else kPread. Concrete values pass
/// through unchanged.
StorageBackend ResolveBackend(StorageBackend requested);

/// Lower-case backend name for logs, metrics and bench labels
/// ("inmem", "pread", "mmap", "default").
const char* StorageBackendName(StorageBackend backend);

/// The in-memory source (BufferPool's default constructor delegates
/// here).
std::unique_ptr<PageSource> MakeInMemorySource(size_t cache_capacity,
                                               size_t shards);

/// A paged source over `file`, backend per `options.backend` (resolved
/// through ResolveBackend). If mmap is selected but mapping fails, falls
/// back to pread. `owner` is the facade pool (passed to shared-budget
/// reclaim as the preferred eviction target); `budget` may be null.
std::unique_ptr<PageSource> MakePagedSource(PagedFile file,
                                            const StorageOptions& options,
                                            BufferPool* owner,
                                            FrameBudget* budget);

/// Test hooks: bytes / count of live mmap mapping epochs process-wide.
/// An epoch stays live until its source is destroyed AND every PageRef
/// minted from it has dropped — tests assert reclamation ordering with
/// these.
size_t MappedBytesLive();
size_t MappedEpochsLive();

}  // namespace blas

#endif  // BLAS_STORAGE_PAGE_SOURCE_H_

#ifndef BLAS_STORAGE_NODE_STORE_H_
#define BLAS_STORAGE_NODE_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "labeling/node_record.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"

namespace blas {

/// Composite key (plabel, start) of the SP relation (clustered order of
/// the paper's BLAS relation).
struct SpKey {
  PLabel plabel;
  uint32_t start;
  friend bool operator<(const SpKey& a, const SpKey& b) {
    if (a.plabel != b.plabel) return a.plabel < b.plabel;
    return a.start < b.start;
  }
};

/// Composite key (tag, start) of the SD relation (clustered order of the
/// D-labeling baseline relation).
struct SdKey {
  uint32_t tag;
  uint32_t start;
  friend bool operator<(const SdKey& a, const SdKey& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    return a.start < b.start;
  }
};

/// Composite key (data, start) of the secondary value index.
struct ValKey {
  uint32_t data;
  uint32_t start;
  friend bool operator<(const ValKey& a, const ValKey& b) {
    if (a.data != b.data) return a.data < b.data;
    return a.start < b.start;
  }
};

struct SpKeyOf {
  static SpKey Get(const NodeRecord& r) { return SpKey{r.plabel, r.start}; }
};
struct SdKeyOf {
  static SdKey Get(const NodeRecord& r) { return SdKey{r.tag, r.start}; }
};
struct ValKeyOf {
  static ValKey Get(const NodeRecord& r) { return ValKey{r.data, r.start}; }
};
struct StartKeyOf {
  static uint32_t Get(const NodeRecord& r) { return r.start; }
};

/// Per-query storage access counters. `elements` is the paper's "visited
/// elements"; page counters come from the buffer pool (`io_reads` are the
/// misses that cost a real disk read — paged stores only).
struct StorageStats {
  uint64_t elements = 0;
  uint64_t page_fetches = 0;
  uint64_t page_misses = 0;
  uint64_t io_reads = 0;

  StorageStats& operator+=(const StorageStats& o) {
    elements += o.elements;
    page_fetches += o.page_fetches;
    page_misses += o.page_misses;
    io_reads += o.io_reads;
    return *this;
  }
};

/// Persisted placement of one clustered B+-tree inside a paged snapshot:
/// the pool-relative page range it occupies plus the metadata needed to
/// reattach it without reading a single page.
struct BPlusTreeMeta {
  PageId root = kInvalidPage;
  PageId first_leaf = kInvalidPage;
  uint64_t size = 0;
  int32_t height = 0;
  /// First pool page id of this tree; the tree's pages are contiguous
  /// (bulk loading allocates them in one run).
  PageId first_page = 0;
  uint32_t page_count = 0;
};

/// Everything a paged NodeStore needs from the snapshot header.
struct PagedStoreMeta {
  BPlusTreeMeta sp, sd, value, doc;
  uint64_t record_count = 0;
  /// Pages occupied by the four trees (the pool may address further
  /// pages — the paged value dictionary lives in the same page space).
  uint64_t tree_pages = 0;
};

/// \brief The BLAS index store (section 4, index generator output).
///
/// Holds both physical designs the paper compares over one buffer pool:
///   * SP — clustered by {plabel, start} (BLAS),
///   * SD — clustered by {tag, start}   (D-labeling baseline),
/// plus a secondary value index clustered by {data, start} and a
/// document-order index clustered by {start} (point lookups and subtree
/// reconstruction for the cursor projection layer).
///
/// Two storage modes share all query paths: a build-time store keeps
/// every page in memory behind the miss-counting LRU, while a store
/// reopened from a BLASIDX2 snapshot (`NodeStore(PagedFile, ...)`) pages
/// on demand — construction is O(1) in document size and each miss is a
/// real disk read bounded by the StorageOptions memory budget.
///
/// All scans count every record they touch (including records later
/// rejected by a residual data/level filter), matching how the paper counts
/// visited elements.
///
/// Concurrency: all scan methods and `stats` are safe for concurrent
/// callers once construction finishes (the buffer pool shards its
/// latches; the element counter is atomic). Per-thread attribution of
/// visited elements and page accesses goes through ReadCounterScope.
class NodeStore {
 public:
  /// Builds all trees from the labeler output. `cache_pages` sizes the
  /// LRU cache of the shared buffer pool; `cache_shards` its latch
  /// sharding (0 = auto, 1 = exact global LRU; see BufferPool).
  explicit NodeStore(const std::vector<NodeRecord>& records,
                     size_t cache_pages = 1024, size_t cache_shards = 0);

  /// Reopens a persisted store against a snapshot file: the four trees
  /// attach to a demand-paging BufferPool sized by `options`; nothing is
  /// read until the first scan descends.
  NodeStore(PagedFile file, const PagedStoreMeta& meta,
            const StorageOptions& options);

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  /// Records with plabel in [range.lo, range.hi], optionally filtered by
  /// data id and/or exact level. Result is ordered by (plabel, start).
  std::vector<NodeRecord> ScanPlabelRange(
      const PLabelRange& range, std::optional<uint32_t> data = std::nullopt,
      std::optional<int32_t> level = std::nullopt) const;

  /// Records with the given tag (D-labeling access path), optionally
  /// filtered by data id. Result is ordered by start.
  std::vector<NodeRecord> ScanTag(TagId tag,
                                  std::optional<uint32_t> data =
                                      std::nullopt) const;

  /// Full scan of the SD relation (wildcard tag test), optional data
  /// filter. Ordered by (tag, start).
  std::vector<NodeRecord> ScanAll(std::optional<uint32_t> data =
                                      std::nullopt) const;

  /// Records with the given data id via the secondary value index.
  std::vector<NodeRecord> ScanValue(uint32_t data) const;

  /// The record at exactly `start` via the document-order index, or
  /// nullopt. Counts one visited element plus the tree descent's pages.
  std::optional<NodeRecord> FindByStart(uint32_t start) const;

  /// \brief Shared machinery of the incremental scans: a leaf iterator
  /// plus visited-element accounting.
  ///
  /// Pages are fetched as the scan advances, so an abandoned scan pays
  /// only for the prefix it consumed. Each advanced record counts as one
  /// visited element: added to the calling thread's ReadCounterScope as
  /// it happens (per-query attribution) and flushed to the store-wide
  /// counter in one batch on destruction.
  template <typename Key, typename KeyOf>
  class ScanBase {
   public:
    ScanBase(ScanBase&& o) noexcept
        : it_(std::move(o.it_)),
          store_(o.store_),
          rec_(o.rec_),
          visited_(o.visited_) {
      o.store_ = nullptr;
      o.visited_ = 0;
    }
    ScanBase& operator=(ScanBase&& o) noexcept {
      if (this != &o) {
        Flush();
        store_ = o.store_;
        it_ = std::move(o.it_);
        rec_ = o.rec_;
        visited_ = o.visited_;
        o.store_ = nullptr;
        o.visited_ = 0;
      }
      return *this;
    }
    ~ScanBase() { Flush(); }

    uint64_t visited() const { return visited_; }

   protected:
    using Iterator =
        typename BPlusTree<NodeRecord, Key, KeyOf>::Iterator;

    ScanBase(const NodeStore* store, Iterator it)
        : it_(std::move(it)), store_(store) {}

    /// Counts and returns the current record, then advances. The record
    /// is copied out first: advancing may unpin the page it came from,
    /// and a paged store is free to evict an unpinned page. The returned
    /// pointer stays valid until the next call.
    const NodeRecord* Step() {
      rec_ = *it_;
      ++visited_;
      if (ReadCounters* counters = ReadCounterScope::Current()) {
        ++counters->elements;
      }
      ++it_;
      return &rec_;
    }

    Iterator it_;

   private:
    void Flush() {
      if (store_ != nullptr && visited_ > 0) {
        store_->elements_.fetch_add(visited_, std::memory_order_relaxed);
      }
    }

    const NodeStore* store_;
    NodeRecord rec_;
    uint64_t visited_ = 0;
  };

  /// Incremental start-ordered scan of one tag's SD run — the streaming
  /// access path of limit-k cursors.
  class TagScan : public ScanBase<SdKey, SdKeyOf> {
   public:
    TagScan(const NodeStore* store, TagId tag);

    /// The next record with the scanned tag in start order, or nullptr at
    /// the end of the run.
    const NodeRecord* Next();

   private:
    TagId tag_;
  };

  /// Incremental scan of records with start in [lo, hi], in document
  /// order (subtree reconstruction).
  class DocScan : public ScanBase<uint32_t, StartKeyOf> {
   public:
    DocScan(const NodeStore* store, uint32_t lo, uint32_t hi);

    const NodeRecord* Next();

   private:
    uint32_t hi_;
  };

  size_t record_count() const { return count_; }
  /// Pages occupied by the four trees (excludes the paged dictionary
  /// segments sharing the pool's page space in paged mode).
  size_t page_count() const { return tree_pages_; }

  /// Placement + reattach metadata of the four trees, in snapshot order
  /// (sp, sd, value, doc). Valid in both modes; persistence writes it
  /// into the BLASIDX2 header.
  PagedStoreMeta paged_meta() const;

  /// The backing pool. The paged value dictionary reads its pages through
  /// it; persistence walks it to emit the page segments.
  const BufferPool& pool() const { return pool_; }

  /// True when this store pages from a snapshot file.
  bool paged() const { return pool_.paged(); }

  /// All records in (plabel, start) order, without touching the counters
  /// (index export / persistence).
  std::vector<NodeRecord> ExportRecords() const;

  /// Snapshot of counters accumulated since the last ResetStats().
  StorageStats stats() const;
  void ResetStats();
  /// Cold-cache experiments (the paper measures cold-cache runs). Safe
  /// against concurrent scans: pinned pages survive the drop.
  void DropCache() const { pool_.DropCache(); }

 private:
  /// Pages hinted ahead of a forward scan in one ranged readahead batch.
  /// 32 × 8 KiB = 256 KiB per batch: large enough to cover a typical tag
  /// run's leaves in one hint, small enough not to flood the cache when a
  /// limit-k cursor abandons the scan early.
  static constexpr size_t kReadaheadPages = 32;

  /// Issues one batched readahead for the leaf run ahead of a scan that
  /// just seeked `tree` to `at`. Leaves are contiguous in
  /// [first_leaf, first_leaf + leaf_pages), so the window is the ids
  /// ahead of `at`, clamped to that range. No-op for in-memory stores,
  /// ended scans, and corrupt positions outside the leaf range.
  template <typename Tree>
  void ReadaheadFrom(const Tree& tree, PageId at) const {
    if (!pool_.paged() || at == kInvalidPage) return;
    const PageId first = tree.first_leaf();
    const size_t leaves = tree.leaf_pages();
    if (first == kInvalidPage || at < first || at >= first + leaves) return;
    size_t window = leaves - (at - first);
    if (window > kReadaheadPages) window = kReadaheadPages;
    pool_.Readahead(at, window);
  }

  mutable BufferPool pool_;
  BPlusTree<NodeRecord, SpKey, SpKeyOf> sp_;
  BPlusTree<NodeRecord, SdKey, SdKeyOf> sd_;
  BPlusTree<NodeRecord, ValKey, ValKeyOf> vindex_;
  BPlusTree<NodeRecord, uint32_t, StartKeyOf> doc_;
  std::array<BPlusTreeMeta, 4> tree_metas_;  // sp, sd, value, doc
  size_t count_ = 0;
  size_t tree_pages_ = 0;
  mutable std::atomic<uint64_t> elements_{0};
};

}  // namespace blas

#endif  // BLAS_STORAGE_NODE_STORE_H_

#include "storage/string_dict.h"

namespace blas {

uint32_t StringDict::Intern(std::string_view value) {
  auto it = ids_.find(std::string(value));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(values_.size());
  values_.emplace_back(value);
  ids_.emplace(values_.back(), id);
  return id;
}

std::optional<uint32_t> StringDict::Find(std::string_view value) const {
  auto it = ids_.find(std::string(value));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace blas

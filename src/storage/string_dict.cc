#include "storage/string_dict.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace blas {

namespace {

const std::string kEmptyValue;

}  // namespace

bool DecodeValuePage(const Page& page, uint32_t expected_first,
                     uint64_t value_count, std::vector<std::string>* out) {
  const auto* header = page.As<ValuePageHeader>();
  if (header->first_id != expected_first) return false;
  const uint64_t max_count = (kPageSize - sizeof(ValuePageHeader)) / 4 - 1;
  if (header->count == 0 || header->count > max_count) return false;
  if (uint64_t{header->first_id} + header->count > value_count) return false;
  const auto* offsets = reinterpret_cast<const uint32_t*>(
      page.bytes.data() + sizeof(ValuePageHeader));
  uint32_t prev = static_cast<uint32_t>(sizeof(ValuePageHeader) +
                                        (header->count + 1) * 4);
  for (uint32_t i = 0; i <= header->count; ++i) {
    if (offsets[i] < prev || offsets[i] > kPageSize) return false;
    prev = offsets[i];
  }
  const char* base = reinterpret_cast<const char*>(page.bytes.data());
  for (uint32_t i = 0; i < header->count; ++i) {
    out->emplace_back(base + offsets[i], offsets[i + 1] - offsets[i]);
  }
  return true;
}

uint32_t StringDict::Intern(std::string_view value) {
  assert(!paged() && "Intern on a paged (immutable) dictionary");
  auto it = ids_.find(std::string(value));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(values_.size());
  values_.emplace_back(value);
  ids_.emplace(values_.back(), id);
  return id;
}

void StringDict::AttachPaged(const BufferPool* pool, PagedDictLayout layout) {
  pool_ = pool;
  layout_ = std::move(layout);
}

const std::string& StringDict::Get(uint32_t id) const {
  if (!paged()) return values_[id];
  return PagedGet(id);
}

const std::string& StringDict::PagedGet(uint32_t id) const {
  if (id >= layout_.count) {
    assert(false && "dictionary id out of range");
    return kEmptyValue;
  }
  // Locate the page: page_first_ids is ascending, one entry per page.
  auto it = std::upper_bound(layout_.page_first_ids.begin(),
                             layout_.page_first_ids.end(), id);
  assert(it != layout_.page_first_ids.begin());
  uint32_t page_index =
      static_cast<uint32_t>(it - layout_.page_first_ids.begin() - 1);

  MutexLock lock(decode_mu_);
  auto cached = decoded_.find(page_index);
  if (cached == decoded_.end()) {
    PageRef ref = pool_->Fetch(layout_.first_value_page + page_index);
    if (!ref) {
      assert(false && "value page unreadable");
      return kEmptyValue;
    }
    std::vector<std::string> page_values;
    if (!DecodeValuePage(*ref.get(), layout_.page_first_ids[page_index],
                         layout_.count, &page_values)) {
      assert(false && "corrupt value page");
      return kEmptyValue;
    }
    cached = decoded_.emplace(page_index, std::move(page_values)).first;
  }
  const std::vector<std::string>& page_values = cached->second;
  uint32_t slot = id - layout_.page_first_ids[page_index];
  if (slot >= page_values.size()) {
    assert(false && "value slot out of range");
    return kEmptyValue;
  }
  return page_values[slot];
}

uint32_t StringDict::PermEntry(uint64_t k) const {
  PageId page = layout_.first_perm_page + static_cast<PageId>(k / kPermPerPage);
  PageRef ref = pool_->Fetch(page);
  if (!ref) {
    assert(false && "permutation page unreadable");
    return 0;
  }
  return ref->As<uint32_t>()[k % kPermPerPage];
}

std::optional<uint32_t> StringDict::Find(std::string_view value) const {
  if (!paged()) {
    auto it = ids_.find(std::string(value));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }
  // Binary search the sorted-by-string permutation; each probe costs one
  // permutation-page read plus one value read (both through the pool, so
  // dictionary probes show up in the page counters like index descents).
  uint64_t lo = 0;
  uint64_t hi = layout_.count;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (Get(PermEntry(mid)) < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= layout_.count) return std::nullopt;
  uint32_t id = PermEntry(lo);
  if (Get(id) != value) return std::nullopt;
  return id;
}

}  // namespace blas

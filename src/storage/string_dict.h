#ifndef BLAS_STORAGE_STRING_DICT_H_
#define BLAS_STORAGE_STRING_DICT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace blas {

/// On-page layout of the paged value dictionary (see persist.h for the
/// surrounding BLASIDX2 segment directory):
///
///   * value pages — `{u32 count; u32 first_id; u32 offsets[count+1];
///     char bytes[]}`: string i of the page spans
///     [offsets[i], offsets[i+1]) from the page start. Values are packed
///     in id order, one value never split across pages.
///   * permutation pages — a flat u32 array (kPermPerPage per page) of
///     value ids ordered by byte-wise string comparison; `Find` binary
///     searches it with one page read per probe.
struct PagedDictLayout {
  uint64_t count = 0;
  PageId first_value_page = 0;
  uint32_t value_page_count = 0;
  PageId first_perm_page = 0;
  uint32_t perm_page_count = 0;
  /// First value id of each value page, in page order (loaded eagerly
  /// from the snapshot's value-page-index segment; 4 bytes per page).
  std::vector<uint32_t> page_first_ids;
};

/// Header prefix of one paged value page.
struct ValuePageHeader {
  uint32_t count;
  uint32_t first_id;
  // uint32_t offsets[count + 1] follow, then the packed bytes.
};

inline constexpr size_t kPermPerPage = kPageSize / sizeof(uint32_t);

/// Validates and decodes one value page, appending its strings to `out`.
/// Page payloads are untrusted (the snapshot preflight validates the
/// directory only): the count is capped by the page's capacity, first_id
/// must match `expected_first`, the id range must fit `value_count`, and
/// the offsets must ascend within the page. One shared implementation
/// serves both read paths — the query-time paged dictionary and the
/// materializing snapshot loader — so they accept exactly the same
/// pages. Returns false (appending nothing) on any violation.
bool DecodeValuePage(const Page& page, uint32_t expected_first,
                     uint64_t value_count, std::vector<std::string>* out);

/// \brief Dictionary encoding for PCDATA values.
///
/// The `data` column of the node relation stores dictionary ids; equality
/// value predicates become integer comparisons after one lookup.
///
/// Two modes:
///   * **In-memory** (build time and BLAS1 snapshots): all values resident,
///     lock-free lookups.
///   * **Paged** (`AttachPaged`, BLASIDX2 snapshots): values live in
///     page-granular segments of the snapshot file and are read through
///     the store's BufferPool on demand (counted as page fetches /
///     io_reads like any index page). Decoded pages are memoized so
///     `Get` can keep returning stable references. Deliberate tradeoff:
///     because callers hold those references indefinitely, the memo is
///     never evicted and is NOT charged to the frame budget — the budget
///     bounds raw index/dictionary pages; the decoded working set grows
///     with the distinct values a query load actually projects or
///     probes (worst case the whole dictionary). Lookups serialize on
///     one latch per dictionary; value-projection-heavy concurrent
///     workloads pay that contention, index scans never do.
///     The pool's storage backend is transparent here: each raw page is
///     held only inside one decode call (a short-lived PageRef, valid
///     across DropCache under every backend — pread pins the frame, mmap
///     pins the mapping epoch), and everything returned to callers is
///     copied into the memo.
///
/// Concurrency: both modes are safe for concurrent readers once
/// construction/attachment finishes (`Intern` is build-time only).
class StringDict {
 public:
  StringDict() = default;
  /// Moves are build-time only (handing the labeler's dict to the
  /// system); the decode memo's latch is not movable and starts fresh.
  StringDict(StringDict&& other) noexcept
      : values_(std::move(other.values_)),
        ids_(std::move(other.ids_)),
        pool_(other.pool_),
        layout_(std::move(other.layout_)),
        decoded_(std::move(other.decoded_)) {
    other.pool_ = nullptr;
  }
  StringDict& operator=(StringDict&& other) noexcept {
    if (this != &other) {
      values_ = std::move(other.values_);
      ids_ = std::move(other.ids_);
      pool_ = other.pool_;
      layout_ = std::move(other.layout_);
      decoded_ = std::move(other.decoded_);
      other.pool_ = nullptr;
    }
    return *this;
  }

  /// Returns the id of `value`, inserting it if new. Build-time,
  /// in-memory mode only.
  uint32_t Intern(std::string_view value);

  /// Returns the id of `value` if present (query-time lookup; an absent
  /// value means the predicate selects nothing).
  std::optional<uint32_t> Find(std::string_view value) const;

  /// The value with id `id`. The reference stays valid for the dict's
  /// lifetime in both modes.
  const std::string& Get(uint32_t id) const;

  size_t size() const { return paged() ? layout_.count : values_.size(); }

  /// Switches this dict to paged mode: values resolve through `pool`
  /// (which must outlive the dict) according to `layout`.
  void AttachPaged(const BufferPool* pool, PagedDictLayout layout);

  bool paged() const { return pool_ != nullptr; }

 private:
  const std::string& PagedGet(uint32_t id) const;
  /// Entry `k` of the sorted-by-string id permutation.
  uint32_t PermEntry(uint64_t k) const;

  // In-memory mode: mutated only during the single-threaded build phase
  // (Intern); read-only once the dict is shared with readers.
  // blas-analyze: allow(guarded-coverage) -- build-phase only
  std::vector<std::string> values_;
  // blas-analyze: allow(guarded-coverage) -- build-phase only
  std::unordered_map<std::string, uint32_t> ids_;

  // Paged mode: set once by AttachPaged before any reader sees the dict.
  // blas-analyze: allow(guarded-coverage) -- set once by AttachPaged
  const BufferPool* pool_ = nullptr;
  // blas-analyze: allow(guarded-coverage) -- set once by AttachPaged
  PagedDictLayout layout_;
  /// Decoded value pages, keyed by page index within the value segment.
  /// References returned by Get point into these vectors; entries are
  /// never removed, so they stay valid. (A rehash moves the vectors, not
  /// their heap buffers.)
  mutable Mutex decode_mu_;
  mutable std::unordered_map<uint32_t, std::vector<std::string>> decoded_
      BLAS_GUARDED_BY(decode_mu_);
};

}  // namespace blas

#endif  // BLAS_STORAGE_STRING_DICT_H_

#ifndef BLAS_STORAGE_STRING_DICT_H_
#define BLAS_STORAGE_STRING_DICT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace blas {

/// \brief Dictionary encoding for PCDATA values.
///
/// The `data` column of the node relation stores dictionary ids; equality
/// value predicates become integer comparisons after one lookup.
class StringDict {
 public:
  /// Returns the id of `value`, inserting it if new.
  uint32_t Intern(std::string_view value);

  /// Returns the id of `value` if present (query-time lookup; an absent
  /// value means the predicate selects nothing).
  std::optional<uint32_t> Find(std::string_view value) const;

  const std::string& Get(uint32_t id) const { return values_[id]; }
  size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace blas

#endif  // BLAS_STORAGE_STRING_DICT_H_

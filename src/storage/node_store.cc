#include "storage/node_store.h"

#include <algorithm>
#include <utility>

namespace blas {

namespace {

/// Flushes a scan's visited-element count into the store-wide atomic and
/// the current thread's counter scope. One add per scan instead of one
/// atomic RMW per record keeps the hot loop cheap.
void CountVisited(std::atomic<uint64_t>* total, uint64_t visited) {
  if (visited == 0) return;
  total->fetch_add(visited, std::memory_order_relaxed);
  if (ReadCounters* counters = ReadCounterScope::Current()) {
    counters->elements += visited;
  }
}

}  // namespace

NodeStore::NodeStore(const std::vector<NodeRecord>& records,
                     size_t cache_pages, size_t cache_shards)
    : pool_(cache_pages, cache_shards), count_(records.size()) {
  // Bulk loading allocates each tree's pages in one contiguous run, so
  // recording the pool size around every Build captures the page range
  // the BLASIDX2 segment directory needs.
  auto capture = [this](const auto& tree, size_t first) {
    BPlusTreeMeta meta;
    meta.root = tree.root();
    meta.first_leaf = tree.first_leaf();
    meta.size = tree.size();
    meta.height = tree.height();
    meta.first_page = static_cast<PageId>(first);
    meta.page_count = static_cast<uint32_t>(pool_.page_count() - first);
    return meta;
  };
  std::vector<NodeRecord> sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return SpKeyOf::Get(a) < SpKeyOf::Get(b);
            });
  size_t first = pool_.page_count();
  sp_.Build(&pool_, sorted);
  tree_metas_[0] = capture(sp_, first);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return SdKeyOf::Get(a) < SdKeyOf::Get(b);
            });
  first = pool_.page_count();
  sd_.Build(&pool_, sorted);
  tree_metas_[1] = capture(sd_, first);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return ValKeyOf::Get(a) < ValKeyOf::Get(b);
            });
  first = pool_.page_count();
  vindex_.Build(&pool_, sorted);
  tree_metas_[2] = capture(vindex_, first);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return StartKeyOf::Get(a) < StartKeyOf::Get(b);
            });
  first = pool_.page_count();
  doc_.Build(&pool_, sorted);
  tree_metas_[3] = capture(doc_, first);
  tree_pages_ = pool_.page_count();
}

NodeStore::NodeStore(PagedFile file, const PagedStoreMeta& meta,
                     const StorageOptions& options)
    : pool_(std::move(file), options),
      tree_metas_{meta.sp, meta.sd, meta.value, meta.doc},
      count_(meta.record_count),
      tree_pages_(meta.tree_pages) {
  sp_.Attach(&pool_, meta.sp.root, meta.sp.first_leaf, meta.sp.size,
             meta.sp.height);
  sd_.Attach(&pool_, meta.sd.root, meta.sd.first_leaf, meta.sd.size,
             meta.sd.height);
  vindex_.Attach(&pool_, meta.value.root, meta.value.first_leaf,
                 meta.value.size, meta.value.height);
  doc_.Attach(&pool_, meta.doc.root, meta.doc.first_leaf, meta.doc.size,
              meta.doc.height);
}

PagedStoreMeta NodeStore::paged_meta() const {
  PagedStoreMeta meta;
  meta.sp = tree_metas_[0];
  meta.sd = tree_metas_[1];
  meta.value = tree_metas_[2];
  meta.doc = tree_metas_[3];
  meta.record_count = count_;
  meta.tree_pages = tree_pages_;
  return meta;
}

std::vector<NodeRecord> NodeStore::ScanPlabelRange(
    const PLabelRange& range, std::optional<uint32_t> data,
    std::optional<int32_t> level) const {
  std::vector<NodeRecord> out;
  if (range.empty()) return out;
  uint64_t visited = 0;
  auto it = sp_.Seek(SpKey{range.lo, 0});
  ReadaheadFrom(sp_, it.page());
  for (; !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.plabel > range.hi) break;
    ++visited;
    if (data.has_value() && rec.data != *data) continue;
    if (level.has_value() && rec.level != *level) continue;
    out.push_back(rec);
  }
  CountVisited(&elements_, visited);
  return out;
}

std::vector<NodeRecord> NodeStore::ScanTag(TagId tag,
                                           std::optional<uint32_t> data) const {
  std::vector<NodeRecord> out;
  uint64_t visited = 0;
  auto it = sd_.Seek(SdKey{tag, 0});
  ReadaheadFrom(sd_, it.page());
  for (; !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.tag != tag) break;
    ++visited;
    if (data.has_value() && rec.data != *data) continue;
    out.push_back(rec);
  }
  CountVisited(&elements_, visited);
  return out;
}

std::vector<NodeRecord> NodeStore::ScanAll(
    std::optional<uint32_t> data) const {
  std::vector<NodeRecord> out;
  uint64_t visited = 0;
  auto it = sd_.Begin();
  ReadaheadFrom(sd_, it.page());
  for (; !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    ++visited;
    if (data.has_value() && rec.data != *data) continue;
    out.push_back(rec);
  }
  CountVisited(&elements_, visited);
  return out;
}

std::vector<NodeRecord> NodeStore::ScanValue(uint32_t data) const {
  std::vector<NodeRecord> out;
  uint64_t visited = 0;
  auto it = vindex_.Seek(ValKey{data, 0});
  ReadaheadFrom(vindex_, it.page());
  for (; !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.data != data) break;
    ++visited;
    out.push_back(rec);
  }
  CountVisited(&elements_, visited);
  return out;
}

std::optional<NodeRecord> NodeStore::FindByStart(uint32_t start) const {
  auto it = doc_.Seek(start);
  if (it.at_end() || it->start != start) return std::nullopt;
  CountVisited(&elements_, 1);
  return *it;
}

NodeStore::TagScan::TagScan(const NodeStore* store, TagId tag)
    : ScanBase(store, store->sd_.Seek(SdKey{tag, 0})), tag_(tag) {
  // Cold-start hint: one ranged readahead over the leaf run this cursor
  // is about to stream, instead of faulting page-by-page.
  store->ReadaheadFrom(store->sd_, it_.page());
}

const NodeRecord* NodeStore::TagScan::Next() {
  if (it_.at_end() || it_->tag != tag_) return nullptr;
  return Step();
}

NodeStore::DocScan::DocScan(const NodeStore* store, uint32_t lo, uint32_t hi)
    : ScanBase(store, store->doc_.Seek(lo)), hi_(hi) {
  store->ReadaheadFrom(store->doc_, it_.page());
}

const NodeRecord* NodeStore::DocScan::Next() {
  if (it_.at_end() || it_->start > hi_) return nullptr;
  return Step();
}

std::vector<NodeRecord> NodeStore::ExportRecords() const {
  std::vector<NodeRecord> out;
  out.reserve(count_);
  sp_.ForEachRecord([&](const NodeRecord& rec) { out.push_back(rec); });
  return out;
}

StorageStats NodeStore::stats() const {
  StorageStats s;
  s.elements = elements_.load(std::memory_order_relaxed);
  BufferPool::Stats pool_stats = pool_.stats();
  s.page_fetches = pool_stats.fetches;
  s.page_misses = pool_stats.misses;
  s.io_reads = pool_stats.io_reads;
  return s;
}

void NodeStore::ResetStats() {
  elements_.store(0, std::memory_order_relaxed);
  pool_.ResetStats();
}

}  // namespace blas

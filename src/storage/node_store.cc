#include "storage/node_store.h"

#include <algorithm>

namespace blas {

NodeStore::NodeStore(const std::vector<NodeRecord>& records,
                     size_t cache_pages)
    : pool_(cache_pages), count_(records.size()) {
  std::vector<NodeRecord> sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return SpKeyOf::Get(a) < SpKeyOf::Get(b);
            });
  sp_.Build(&pool_, sorted);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return SdKeyOf::Get(a) < SdKeyOf::Get(b);
            });
  sd_.Build(&pool_, sorted);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return ValKeyOf::Get(a) < ValKeyOf::Get(b);
            });
  vindex_.Build(&pool_, sorted);
}

std::vector<NodeRecord> NodeStore::ScanPlabelRange(
    const PLabelRange& range, std::optional<uint32_t> data,
    std::optional<int32_t> level) const {
  std::vector<NodeRecord> out;
  if (range.empty()) return out;
  for (auto it = sp_.Seek(SpKey{range.lo, 0}); !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.plabel > range.hi) break;
    ++elements_;
    if (data.has_value() && rec.data != *data) continue;
    if (level.has_value() && rec.level != *level) continue;
    out.push_back(rec);
  }
  return out;
}

std::vector<NodeRecord> NodeStore::ScanTag(TagId tag,
                                           std::optional<uint32_t> data) const {
  std::vector<NodeRecord> out;
  for (auto it = sd_.Seek(SdKey{tag, 0}); !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.tag != tag) break;
    ++elements_;
    if (data.has_value() && rec.data != *data) continue;
    out.push_back(rec);
  }
  return out;
}

std::vector<NodeRecord> NodeStore::ScanAll(
    std::optional<uint32_t> data) const {
  std::vector<NodeRecord> out;
  for (auto it = sd_.Begin(); !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    ++elements_;
    if (data.has_value() && rec.data != *data) continue;
    out.push_back(rec);
  }
  return out;
}

std::vector<NodeRecord> NodeStore::ScanValue(uint32_t data) const {
  std::vector<NodeRecord> out;
  for (auto it = vindex_.Seek(ValKey{data, 0}); !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.data != data) break;
    ++elements_;
    out.push_back(rec);
  }
  return out;
}

std::vector<NodeRecord> NodeStore::ExportRecords() const {
  std::vector<NodeRecord> out;
  out.reserve(count_);
  sp_.ForEachRecord([&](const NodeRecord& rec) { out.push_back(rec); });
  return out;
}

StorageStats NodeStore::stats() const {
  StorageStats s;
  s.elements = elements_;
  s.page_fetches = pool_.stats().fetches;
  s.page_misses = pool_.stats().misses;
  return s;
}

void NodeStore::ResetStats() {
  elements_ = 0;
  pool_.ResetStats();
}

}  // namespace blas

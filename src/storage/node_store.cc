#include "storage/node_store.h"

#include <algorithm>

namespace blas {

namespace {

/// Flushes a scan's visited-element count into the store-wide atomic and
/// the current thread's counter scope. One add per scan instead of one
/// atomic RMW per record keeps the hot loop cheap.
void CountVisited(std::atomic<uint64_t>* total, uint64_t visited) {
  if (visited == 0) return;
  total->fetch_add(visited, std::memory_order_relaxed);
  if (ReadCounters* counters = ReadCounterScope::Current()) {
    counters->elements += visited;
  }
}

}  // namespace

NodeStore::NodeStore(const std::vector<NodeRecord>& records,
                     size_t cache_pages, size_t cache_shards)
    : pool_(cache_pages, cache_shards), count_(records.size()) {
  std::vector<NodeRecord> sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return SpKeyOf::Get(a) < SpKeyOf::Get(b);
            });
  sp_.Build(&pool_, sorted);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return SdKeyOf::Get(a) < SdKeyOf::Get(b);
            });
  sd_.Build(&pool_, sorted);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return ValKeyOf::Get(a) < ValKeyOf::Get(b);
            });
  vindex_.Build(&pool_, sorted);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return StartKeyOf::Get(a) < StartKeyOf::Get(b);
            });
  doc_.Build(&pool_, sorted);
}

std::vector<NodeRecord> NodeStore::ScanPlabelRange(
    const PLabelRange& range, std::optional<uint32_t> data,
    std::optional<int32_t> level) const {
  std::vector<NodeRecord> out;
  if (range.empty()) return out;
  uint64_t visited = 0;
  for (auto it = sp_.Seek(SpKey{range.lo, 0}); !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.plabel > range.hi) break;
    ++visited;
    if (data.has_value() && rec.data != *data) continue;
    if (level.has_value() && rec.level != *level) continue;
    out.push_back(rec);
  }
  CountVisited(&elements_, visited);
  return out;
}

std::vector<NodeRecord> NodeStore::ScanTag(TagId tag,
                                           std::optional<uint32_t> data) const {
  std::vector<NodeRecord> out;
  uint64_t visited = 0;
  for (auto it = sd_.Seek(SdKey{tag, 0}); !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.tag != tag) break;
    ++visited;
    if (data.has_value() && rec.data != *data) continue;
    out.push_back(rec);
  }
  CountVisited(&elements_, visited);
  return out;
}

std::vector<NodeRecord> NodeStore::ScanAll(
    std::optional<uint32_t> data) const {
  std::vector<NodeRecord> out;
  uint64_t visited = 0;
  for (auto it = sd_.Begin(); !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    ++visited;
    if (data.has_value() && rec.data != *data) continue;
    out.push_back(rec);
  }
  CountVisited(&elements_, visited);
  return out;
}

std::vector<NodeRecord> NodeStore::ScanValue(uint32_t data) const {
  std::vector<NodeRecord> out;
  uint64_t visited = 0;
  for (auto it = vindex_.Seek(ValKey{data, 0}); !it.at_end(); ++it) {
    const NodeRecord& rec = *it;
    if (rec.data != data) break;
    ++visited;
    out.push_back(rec);
  }
  CountVisited(&elements_, visited);
  return out;
}

std::optional<NodeRecord> NodeStore::FindByStart(uint32_t start) const {
  auto it = doc_.Seek(start);
  if (it.at_end() || it->start != start) return std::nullopt;
  CountVisited(&elements_, 1);
  return *it;
}

NodeStore::TagScan::TagScan(const NodeStore* store, TagId tag)
    : ScanBase(store, store->sd_.Seek(SdKey{tag, 0})), tag_(tag) {}

const NodeRecord* NodeStore::TagScan::Next() {
  if (it_.at_end() || it_->tag != tag_) return nullptr;
  return Step();
}

NodeStore::DocScan::DocScan(const NodeStore* store, uint32_t lo, uint32_t hi)
    : ScanBase(store, store->doc_.Seek(lo)), hi_(hi) {}

const NodeRecord* NodeStore::DocScan::Next() {
  if (it_.at_end() || it_->start > hi_) return nullptr;
  return Step();
}

std::vector<NodeRecord> NodeStore::ExportRecords() const {
  std::vector<NodeRecord> out;
  out.reserve(count_);
  sp_.ForEachRecord([&](const NodeRecord& rec) { out.push_back(rec); });
  return out;
}

StorageStats NodeStore::stats() const {
  StorageStats s;
  s.elements = elements_.load(std::memory_order_relaxed);
  BufferPool::Stats pool_stats = pool_.stats();
  s.page_fetches = pool_stats.fetches;
  s.page_misses = pool_stats.misses;
  return s;
}

void NodeStore::ResetStats() {
  elements_.store(0, std::memory_order_relaxed);
  pool_.ResetStats();
}

}  // namespace blas

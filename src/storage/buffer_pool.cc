#include "storage/buffer_pool.h"

#include <list>
#include <mutex>
#include <unordered_map>

namespace blas {

namespace {

thread_local ReadCounters* tls_read_counters = nullptr;

/// One shard per 128 frames, capped at 16: tiny pools (including the unit
/// tests' 2-frame pools) keep exact single-LRU semantics, while the
/// default 4096-frame pool spreads readers over 16 latches.
size_t PickShardCount(size_t capacity) {
  size_t shards = 1;
  while (shards < 16 && capacity / (shards * 2) >= 64) shards *= 2;
  return shards;
}

}  // namespace

ReadCounterScope::ReadCounterScope(ReadCounters* counters)
    : prev_(tls_read_counters) {
  tls_read_counters = counters;
}

ReadCounterScope::~ReadCounterScope() { tls_read_counters = prev_; }

ReadCounters* ReadCounterScope::Current() { return tls_read_counters; }

struct BufferPool::Shard {
  std::mutex mu;
  std::list<PageId> lru;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> cached;
  size_t capacity = 1;
  Stats stats;
};

BufferPool::BufferPool(size_t cache_capacity, size_t shards)
    : cache_capacity_(cache_capacity == 0 ? 1 : cache_capacity) {
  size_t n = shards == 0 ? PickShardCount(cache_capacity_) : shards;
  if (n > cache_capacity_) n = cache_capacity_;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = cache_capacity_ / n + (i < cache_capacity_ % n ? 1 : 0);
    if (shard->capacity == 0) shard->capacity = 1;
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() = default;

PageId BufferPool::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

const Page* BufferPool::Fetch(PageId id) const {
  Shard& shard = *shards_[id % shards_.size()];
  bool miss = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.stats.fetches;
    auto it = shard.cached.find(id);
    if (it != shard.cached.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      miss = true;
      ++shard.stats.misses;
      if (shard.cached.size() >= shard.capacity) {
        PageId victim = shard.lru.back();
        shard.lru.pop_back();
        shard.cached.erase(victim);
      }
      shard.lru.push_front(id);
      shard.cached[id] = shard.lru.begin();
    }
  }
  if (ReadCounters* counters = ReadCounterScope::Current()) {
    ++counters->fetches;
    if (miss) ++counters->misses;
  }
  return pages_[id].get();
}

BufferPool::Stats BufferPool::stats() const {
  Stats total;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.fetches += shard->stats.fetches;
    total.misses += shard->stats.misses;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats = Stats();
  }
}

void BufferPool::DropCache() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->cached.clear();
  }
}

}  // namespace blas

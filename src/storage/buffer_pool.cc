#include "storage/buffer_pool.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <thread>
#include <cstring>
#include <list>
#include <sys/stat.h>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace blas {

namespace {

thread_local ReadCounters* tls_read_counters = nullptr;

// Process-wide storage metrics (see obs/metrics.h). Registered once; the
// hot paths below pay one relaxed atomic per event. The pread histogram
// is only touched on misses, which already pay a disk read.
struct StorageMetrics {
  obs::Histogram* pread_ns;
  obs::Counter* evictions;
  obs::Gauge* frames_in_use;

  StorageMetrics() {
    auto& reg = obs::DefaultRegistry();
    pread_ns = reg.GetHistogram(
        "blas_storage_pread_ns", "Latency of one paged 8 KiB pread");
    evictions = reg.GetCounter(
        "blas_storage_evictions_total", "Buffer-pool frames evicted");
    frames_in_use = reg.GetGauge(
        "blas_storage_frames_in_use",
        "Buffer-pool frames currently resident across all paged pools");
  }
};

StorageMetrics& storage_metrics() {
  static StorageMetrics* m = new StorageMetrics();
  return *m;
}

/// One shard per 128 frames, capped at 16: tiny pools (including the unit
/// tests' 2-frame pools) keep exact single-LRU semantics, while the
/// default 4096-frame pool spreads readers over 16 latches.
size_t PickShardCount(size_t capacity) {
  size_t shards = 1;
  while (shards < 16 && capacity / (shards * 2) >= 64) shards *= 2;
  return shards;
}

}  // namespace

ReadCounterScope::ReadCounterScope(ReadCounters* counters)
    : prev_(tls_read_counters) {
  tls_read_counters = counters;
}

ReadCounterScope::~ReadCounterScope() { tls_read_counters = prev_; }

ReadCounters* ReadCounterScope::Current() { return tls_read_counters; }

// ------------------------------------------------------------ PagedFile ---

Result<PagedFile> PagedFile::Open(const std::string& path,
                                  uint64_t base_offset, uint64_t page_count) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open for paging: " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed: " + path);
  }
  const uint64_t needed = base_offset + page_count * kPageSize;
  if (static_cast<uint64_t>(st.st_size) < needed) {
    ::close(fd);
    return Status::Corruption("file too short for its page directory: " +
                              path);
  }
  return PagedFile(fd, base_offset, page_count, path);
}

PagedFile::PagedFile(PagedFile&& other) noexcept
    : fd_(other.fd_),
      base_(other.base_),
      pages_(other.pages_),
      path_(std::move(other.path_)) {
  other.fd_ = -1;
}

PagedFile& PagedFile::operator=(PagedFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    base_ = other.base_;
    pages_ = other.pages_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PagedFile::Read(PageId id, Page* out) const {
  if (id >= pages_) {
    return Status::Corruption("page id out of range: " + std::to_string(id));
  }
  uint64_t offset = base_ + uint64_t{id} * kPageSize;
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, out->bytes.data() + done, kPageSize - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("pread failed: " + path_ + ": " +
                              std::strerror(errno));
    }
    if (n == 0) {
      return Status::Corruption("unexpected EOF reading page " +
                                std::to_string(id) + " of " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// ---------------------------------------------------------- FrameBudget ---

FrameBudget::FrameBudget(size_t limit_bytes) : limit_(limit_bytes) {}

bool FrameBudget::TryCharge(size_t bytes) {
  size_t used = used_.load(std::memory_order_relaxed);
  while (true) {
    if (used + bytes > limit_) return false;
    if (used_.compare_exchange_weak(used, used + bytes,
                                    std::memory_order_relaxed)) {
      size_t peak = peak_.load(std::memory_order_relaxed);
      while (used + bytes > peak &&
             !peak_.compare_exchange_weak(peak, used + bytes,
                                          std::memory_order_relaxed)) {
      }
      return true;
    }
  }
}

void FrameBudget::ForceCharge(size_t bytes) {
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void FrameBudget::Release(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

bool FrameBudget::ReclaimOne(BufferPool* preferred) {
  MutexLock lock(pools_mu_);
  if (preferred != nullptr && preferred->TryEvictOne()) return true;
  for (BufferPool* pool : pools_) {
    if (pool == preferred) continue;
    if (pool->TryEvictOne()) return true;
  }
  return false;
}

void FrameBudget::Register(BufferPool* pool) {
  MutexLock lock(pools_mu_);
  pools_.push_back(pool);
}

void FrameBudget::Unregister(BufferPool* pool) {
  MutexLock lock(pools_mu_);
  for (auto it = pools_.begin(); it != pools_.end(); ++it) {
    if (*it == pool) {
      pools_.erase(it);
      return;
    }
  }
}

// -------------------------------------------------------------- PageRef ---

PageRef::PageRef(PageRef&& other) noexcept
    : page_(other.page_), frame_(other.frame_), pool_(other.pool_) {
  other.page_ = nullptr;
  other.frame_ = nullptr;
  other.pool_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    page_ = other.page_;
    frame_ = other.frame_;
    pool_ = other.pool_;
    other.page_ = nullptr;
    other.frame_ = nullptr;
    other.pool_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

void PageRef::Release() {
  if (frame_ != nullptr) pool_->Unpin(frame_);
  page_ = nullptr;
  frame_ = nullptr;
  pool_ = nullptr;
}

// ----------------------------------------------------------- BufferPool ---

struct BufferPool::Frame {
  Page page;
  PageId id = kInvalidPage;
  /// Pins are taken under the shard latch but dropped lock-free; the
  /// release/acquire pair orders the reader's last access before any
  /// eviction that observes the zero.
  std::atomic<uint32_t> pins{0};
  bool referenced = false;  // second-chance bit, under the shard latch
};

struct BufferPool::Shard {
  Mutex mu;
  // In-memory mode: counting LRU over resident-anyway pages.
  std::list<PageId> lru BLAS_GUARDED_BY(mu);  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> cached
      BLAS_GUARDED_BY(mu);
  // Paged mode: real frames plus a second-chance clock ring. Pages whose
  // pread is in flight sit in `pending` (the disk read happens with the
  // latch dropped, so hits on other pages proceed); concurrent fetchers
  // of the same page wait on `ready`. Frame pointers taken out of
  // `frames` under the latch stay valid while pinned: eviction skips any
  // frame whose pin count (an atomic, deliberately *not* latch-guarded —
  // pins drop lock-free in PageRef::Release) is non-zero.
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames
      BLAS_GUARDED_BY(mu);
  std::list<PageId> clock BLAS_GUARDED_BY(mu);  // next eviction at front
  std::unordered_set<PageId> pending BLAS_GUARDED_BY(mu);
  CondVar ready;
  size_t capacity = 1;  // set at construction, immutable after
  size_t peak BLAS_GUARDED_BY(mu) = 0;
  Stats stats BLAS_GUARDED_BY(mu);
};

BufferPool::BufferPool(size_t cache_capacity, size_t shards)
    : cache_capacity_(cache_capacity == 0 ? 1 : cache_capacity) {
  size_t n = shards == 0 ? PickShardCount(cache_capacity_) : shards;
  if (n > cache_capacity_) n = cache_capacity_;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = cache_capacity_ / n + (i < cache_capacity_ % n ? 1 : 0);
    if (shard->capacity == 0) shard->capacity = 1;
    shards_.push_back(std::move(shard));
  }
}

BufferPool::BufferPool(PagedFile file, const StorageOptions& options)
    : file_(std::move(file)), budget_(options.shared_budget) {
  size_t total_frames;
  size_t n;
  if (options.frames_per_shard > 0) {
    n = options.shards == 0 ? 1 : options.shards;
    total_frames = options.frames_per_shard * n;
  } else {
    total_frames = options.memory_budget / kPageSize;
    if (total_frames == 0) total_frames = 1;
    n = options.shards == 0 ? PickShardCount(total_frames) : options.shards;
    if (n > total_frames) n = total_frames;
  }
  if (n == 0) n = 1;
  cache_capacity_ = total_frames;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = total_frames / n + (i < total_frames % n ? 1 : 0);
    if (shard->capacity == 0) shard->capacity = 1;
    shards_.push_back(std::move(shard));
  }
  if (budget_ != nullptr) budget_->Register(this);
}

BufferPool::~BufferPool() {
  // Unregister FIRST: ReclaimOne holds pools_mu_ for the whole cross-pool
  // probe, so once Unregister returns, no other pool's fetch can evict
  // frames here. Counting before that leaves a window where a concurrent
  // probe evicts (releasing budget and decrementing the metric itself) and
  // the stale count below double-releases both.
  if (budget_ != nullptr) budget_->Unregister(this);
  // The latches are taken even though no reader should be live at
  // destruction: "the pool is idle now" is exactly the class of implicit
  // assumption the thread-safety analysis exists to retire, and an
  // uncontended lock costs nothing here.
  size_t resident = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    resident += shard->frames.size();
  }
  if (resident > 0) {
    storage_metrics().frames_in_use->Add(-static_cast<int64_t>(resident));
    if (budget_ != nullptr) budget_->Release(resident * kPageSize);
  }
}

size_t BufferPool::page_count() const {
  return paged() ? file_->page_count() : pages_.size();
}

BufferPool::Shard& BufferPool::shard_for(PageId id) const {
  return *shards_[id % shards_.size()];
}

PageId BufferPool::Allocate() {
  assert(!paged() && "Allocate on a paged (immutable) pool");
  if (paged()) return kInvalidPage;
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

Page* BufferPool::MutablePage(PageId id) {
  assert(!paged() && "MutablePage on a paged (immutable) pool");
  // An out-of-range id (e.g. from a corrupt snapshot directory) must not
  // index unallocated memory.
  assert(id < pages_.size() && "MutablePage out of range");
  if (paged() || id >= pages_.size()) return nullptr;
  return pages_[id].get();
}

size_t BufferPool::EvictDownTo(Shard& shard, size_t target) const
    BLAS_REQUIRES(shard.mu) {
  size_t evicted = 0;
  // Two full rotations: the first clears referenced bits, the second can
  // then evict; beyond that everything left is pinned.
  size_t attempts = 2 * shard.clock.size() + 1;
  while (shard.frames.size() > target && attempts-- > 0 &&
         !shard.clock.empty()) {
    PageId victim = shard.clock.front();
    auto it = shard.frames.find(victim);
    assert(it != shard.frames.end());
    Frame* frame = it->second.get();
    if (frame->pins.load(std::memory_order_acquire) > 0 ||
        frame->referenced) {
      frame->referenced = false;
      shard.clock.splice(shard.clock.end(), shard.clock,
                         shard.clock.begin());
      continue;
    }
    shard.clock.pop_front();
    shard.frames.erase(it);
    ++shard.stats.evictions;
    ++evicted;
    if (budget_ != nullptr) budget_->Release(kPageSize);
  }
  if (evicted > 0) {
    StorageMetrics& metrics = storage_metrics();
    metrics.evictions->Add(evicted);
    metrics.frames_in_use->Add(-static_cast<int64_t>(evicted));
  }
  return evicted;
}

PageRef BufferPool::Fetch(PageId id) const {
  if (!paged()) {
    if (id >= pages_.size()) {
      assert(false && "Fetch out of range");
      return PageRef();
    }
    Shard& shard = shard_for(id);
    bool miss = false;
    {
      MutexLock lock(shard.mu);
      ++shard.stats.fetches;
      auto it = shard.cached.find(id);
      if (it != shard.cached.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      } else {
        miss = true;
        ++shard.stats.misses;
        if (shard.cached.size() >= shard.capacity) {
          PageId victim = shard.lru.back();
          shard.lru.pop_back();
          shard.cached.erase(victim);
        }
        shard.lru.push_front(id);
        shard.cached[id] = shard.lru.begin();
      }
    }
    if (ReadCounters* counters = ReadCounterScope::Current()) {
      ++counters->fetches;
      if (miss) ++counters->misses;
    }
    return PageRef(pages_[id].get(), nullptr, nullptr);
  }

  return FetchPaged(id, /*counted=*/true);
}

PageRef BufferPool::FetchPaged(PageId id, bool counted) const {
  if (id >= file_->page_count()) {
    assert(false && "Fetch out of range");
    return PageRef();
  }
  Shard& shard = shard_for(id);
  {
    MutexLock lock(shard.mu);
    if (counted) ++shard.stats.fetches;
    while (true) {
      auto it = shard.frames.find(id);
      if (it != shard.frames.end()) {
        Frame* frame = it->second.get();
        frame->referenced = true;
        frame->pins.fetch_add(1, std::memory_order_relaxed);
        if (counted) {
          if (ReadCounters* counters = ReadCounterScope::Current()) {
            ++counters->fetches;
          }
        }
        return PageRef(&frame->page, frame, this);
      }
      if (shard.pending.count(id) == 0) break;  // this thread reads it
      // Another thread's pread for this page is in flight; wait for it
      // to publish (or fail — then this thread retries the read).
      shard.ready.Wait(lock);
    }
    shard.pending.insert(id);
  }

  // Miss. Reserve budget first (reclaim may probe other shards and
  // pools; no latch may be held while it does), then pread with the
  // latch dropped — a slow disk must not block hits on this shard. The
  // pending marker keeps the read exclusive.
  bool charged = false;
  if (budget_ != nullptr) {
    int failed_probes = 0;
    while (!(charged = budget_->TryCharge(kPageSize))) {
      if (budget_->ReclaimOne(const_cast<BufferPool*>(this))) {
        failed_probes = 0;
        continue;
      }
      // Reclaim probes shards with try-locks, so a failed round may just
      // mean evictable frames sat behind momentarily-held latches —
      // yield and retry before concluding the group is truly pinned.
      if (++failed_probes < 16) {
        std::this_thread::yield();
        continue;
      }
      // Every frame in the group stayed unavailable across repeated
      // probes (in practice: all pinned): overshoot rather than
      // deadlock; the next eviction rebalances.
      budget_->ForceCharge(kPageSize);
      charged = true;
      break;
    }
  }

  auto frame = std::make_unique<Frame>();
  frame->id = id;
  frame->pins.store(1, std::memory_order_relaxed);
  Stopwatch pread_timer;
  Status read = file_->Read(id, &frame->page);
  {
    const uint64_t ns = pread_timer.ElapsedNanos();
    storage_metrics().pread_ns->Record(ns);
    if (obs::TraceContext* trace = obs::TraceContext::Current()) {
      trace->RecordPageRead(ns);
    }
  }

  MutexLock lock(shard.mu);
  shard.pending.erase(id);
  shard.ready.NotifyAll();
  if (!read.ok()) {
    if (charged) budget_->Release(kPageSize);
    ++shard.stats.io_errors;
    io_error_.store(true, std::memory_order_relaxed);
    assert(false && "paged read failed");
    return PageRef();
  }
  if (shard.frames.size() >= shard.capacity) {
    EvictDownTo(shard, shard.capacity - 1);
  }
  if (counted) {
    ++shard.stats.misses;
    ++shard.stats.io_reads;
  }
  Frame* raw = frame.get();
  shard.clock.push_back(id);
  shard.frames.emplace(id, std::move(frame));
  storage_metrics().frames_in_use->Add(1);
  if (shard.frames.size() > shard.peak) shard.peak = shard.frames.size();
  if (counted) {
    if (ReadCounters* counters = ReadCounterScope::Current()) {
      ++counters->fetches;
      ++counters->misses;
      ++counters->io_reads;
    }
  }
  return PageRef(&raw->page, raw, this);
}

PageRef BufferPool::Peek(PageId id) const {
  if (!paged()) {
    if (id >= pages_.size()) {
      assert(false && "Peek out of range");
      return PageRef();
    }
    return PageRef(pages_[id].get(), nullptr, nullptr);
  }
  // Paged pools have no always-resident copy; the bytes still come
  // through the frame table, just uncounted.
  return FetchPaged(id, /*counted=*/false);
}

void BufferPool::Unpin(void* frame) const {
  static_cast<Frame*>(frame)->pins.fetch_sub(1, std::memory_order_release);
}

bool BufferPool::TryEvictOne() {
  if (!paged()) return false;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    // Probe, never block: the caller (FrameBudget::ReclaimOne) holds
    // pools_mu_, and a blocking latch acquisition here could deadlock
    // against a shard holder waiting on the budget.
    if (!shard.mu.TryLock()) continue;
    size_t target = shard.frames.empty() ? 0 : shard.frames.size() - 1;
    bool evicted = EvictDownTo(shard, target) > 0;
    shard.mu.Unlock();
    if (evicted) return true;
  }
  return false;
}

BufferPool::Stats BufferPool::stats() const {
  Stats total;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total.fetches += shard->stats.fetches;
    total.misses += shard->stats.misses;
    total.io_reads += shard->stats.io_reads;
    total.evictions += shard->stats.evictions;
    total.io_errors += shard->stats.io_errors;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->stats = Stats();
    shard->peak = shard->frames.size();
  }
}

void BufferPool::DropCache() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->cached.clear();
    // Paged mode: free every unpinned frame. Pinned frames stay resident
    // (and mapped, so their refs keep reading valid bytes); their next
    // unpin makes them evictable again.
    EvictDownTo(*shard, 0);
  }
}

size_t BufferPool::frames_in_use() const {
  size_t total = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->frames.size();
  }
  return total;
}

size_t BufferPool::peak_frames() const {
  size_t total = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->peak;
  }
  return total;
}

}  // namespace blas

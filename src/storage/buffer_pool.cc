#include "storage/buffer_pool.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>

#include "storage/page_source.h"

namespace blas {

namespace {

thread_local ReadCounters* tls_read_counters = nullptr;

}  // namespace

ReadCounterScope::ReadCounterScope(ReadCounters* counters)
    : prev_(tls_read_counters) {
  tls_read_counters = counters;
}

ReadCounterScope::~ReadCounterScope() { tls_read_counters = prev_; }

ReadCounters* ReadCounterScope::Current() { return tls_read_counters; }

// ------------------------------------------------------------ PagedFile ---

Result<PagedFile> PagedFile::Open(const std::string& path,
                                  uint64_t base_offset, uint64_t page_count) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open for paging: " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed: " + path);
  }
  // This preflight is what makes the mmap backend safe as well as pread:
  // a truncated file behind a valid header fails here with Corruption
  // instead of SIGBUS-ing on first touch of an unbacked mapped page.
  const uint64_t needed = base_offset + page_count * kPageSize;
  if (static_cast<uint64_t>(st.st_size) < needed) {
    ::close(fd);
    return Status::Corruption("file too short for its page directory: " +
                              path);
  }
  return PagedFile(fd, base_offset, page_count, path);
}

PagedFile::PagedFile(PagedFile&& other) noexcept
    : fd_(other.fd_),
      base_(other.base_),
      pages_(other.pages_),
      path_(std::move(other.path_)) {
  other.fd_ = -1;
}

PagedFile& PagedFile::operator=(PagedFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    base_ = other.base_;
    pages_ = other.pages_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PagedFile::Read(PageId id, Page* out) const {
  if (id >= pages_) {
    return Status::Corruption("page id out of range: " + std::to_string(id));
  }
  uint64_t offset = base_ + uint64_t{id} * kPageSize;
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, out->bytes.data() + done, kPageSize - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("pread failed: " + path_ + ": " +
                              std::strerror(errno));
    }
    if (n == 0) {
      return Status::Corruption("unexpected EOF reading page " +
                                std::to_string(id) + " of " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

void PagedFile::ReadaheadHint(PageId first, uint64_t count) const {
  if (fd_ < 0 || first >= pages_ || count == 0) return;
  if (count > pages_ - first) count = pages_ - first;
  const uint64_t offset = base_ + uint64_t{first} * kPageSize;
#if defined(POSIX_FADV_WILLNEED)
  ::posix_fadvise(fd_, static_cast<off_t>(offset),
                  static_cast<off_t>(count * kPageSize),
                  POSIX_FADV_WILLNEED);
#else
  (void)offset;
#endif
}

// ---------------------------------------------------------- FrameBudget ---

FrameBudget::FrameBudget(size_t limit_bytes) : limit_(limit_bytes) {}

bool FrameBudget::TryCharge(size_t bytes) {
  size_t used = used_.load(std::memory_order_relaxed);
  while (true) {
    if (used + bytes > limit_) return false;
    if (used_.compare_exchange_weak(used, used + bytes,
                                    std::memory_order_relaxed)) {
      size_t peak = peak_.load(std::memory_order_relaxed);
      while (used + bytes > peak &&
             !peak_.compare_exchange_weak(peak, used + bytes,
                                          std::memory_order_relaxed)) {
      }
      return true;
    }
  }
}

void FrameBudget::ForceCharge(size_t bytes) {
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void FrameBudget::Release(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

bool FrameBudget::ReclaimOne(BufferPool* preferred) {
  MutexLock lock(pools_mu_);
  if (preferred != nullptr && preferred->TryEvictOne()) return true;
  for (BufferPool* pool : pools_) {
    if (pool == preferred) continue;
    if (pool->TryEvictOne()) return true;
  }
  return false;
}

void FrameBudget::Register(BufferPool* pool) {
  MutexLock lock(pools_mu_);
  pools_.push_back(pool);
}

void FrameBudget::Unregister(BufferPool* pool) {
  MutexLock lock(pools_mu_);
  for (auto it = pools_.begin(); it != pools_.end(); ++it) {
    if (*it == pool) {
      pools_.erase(it);
      return;
    }
  }
}

// -------------------------------------------------------------- PageRef ---

PageRef::PageRef(PageRef&& other) noexcept
    : page_(other.page_), pin_(other.pin_), owner_(other.owner_) {
  other.page_ = nullptr;
  other.pin_ = nullptr;
  other.owner_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    page_ = other.page_;
    pin_ = other.pin_;
    owner_ = other.owner_;
    other.page_ = nullptr;
    other.pin_ = nullptr;
    other.owner_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

void PageRef::Release() {
  if (pin_ != nullptr) owner_->Unpin(pin_);
  page_ = nullptr;
  pin_ = nullptr;
  owner_ = nullptr;
}

// ----------------------------------------------------------- BufferPool ---
//
// The facade: all mechanism lives in the PageSource backend
// (page_source.cc); BufferPool owns the source, the shared-budget
// registration, and nothing else.

BufferPool::BufferPool(size_t cache_capacity, size_t shards)
    : source_(MakeInMemorySource(cache_capacity, shards)) {}

BufferPool::BufferPool(PagedFile file, const StorageOptions& options)
    : budget_(options.shared_budget) {
  source_ = MakePagedSource(std::move(file), options, this, budget_.get());
  if (budget_ != nullptr) budget_->Register(this);
}

BufferPool::~BufferPool() {
  // Unregister FIRST: ReclaimOne holds pools_mu_ for the whole cross-pool
  // probe, so once Unregister returns, no other pool's fetch can evict
  // frames here. The source destructor then releases this pool's
  // remaining budget charges exactly once.
  if (budget_ != nullptr) budget_->Unregister(this);
  source_.reset();
}

bool BufferPool::paged() const { return source_->paged(); }

StorageBackend BufferPool::backend() const { return source_->backend(); }

size_t BufferPool::page_count() const { return source_->page_count(); }

size_t BufferPool::shard_count() const { return source_->shard_count(); }

PageId BufferPool::Allocate() { return source_->Allocate(); }

Page* BufferPool::MutablePage(PageId id) { return source_->MutablePage(id); }

PageRef BufferPool::Fetch(PageId id) const {
  return source_->Fetch(id, /*counted=*/true);
}

PageRef BufferPool::Peek(PageId id) const {
  return source_->Fetch(id, /*counted=*/false);
}

void BufferPool::Readahead(PageId first, size_t count) const {
  source_->Readahead(first, count);
}

bool BufferPool::TryEvictOne() { return source_->TryEvictOne(); }

BufferPool::Stats BufferPool::stats() const { return source_->stats(); }

void BufferPool::ResetStats() { source_->ResetStats(); }

bool BufferPool::io_error() const { return source_->io_error(); }

void BufferPool::DropCache() { source_->DropCache(); }

size_t BufferPool::frames_in_use() const { return source_->frames_in_use(); }

size_t BufferPool::peak_frames() const { return source_->peak_frames(); }

bool BufferPool::DeferUnlinkToMapping(const std::string& path) const {
  return source_->AdoptUnlinkOnRelease(path);
}

}  // namespace blas

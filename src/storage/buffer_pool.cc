#include "storage/buffer_pool.h"

namespace blas {

BufferPool::BufferPool(size_t cache_capacity)
    : cache_capacity_(cache_capacity == 0 ? 1 : cache_capacity) {}

PageId BufferPool::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

const Page* BufferPool::Fetch(PageId id) const {
  ++stats_.fetches;
  auto it = cached_.find(id);
  if (it != cached_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return pages_[id].get();
  }
  ++stats_.misses;
  if (cached_.size() >= cache_capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    cached_.erase(victim);
  }
  lru_.push_front(id);
  cached_[id] = lru_.begin();
  return pages_[id].get();
}

void BufferPool::DropCache() {
  lru_.clear();
  cached_.clear();
}

}  // namespace blas

#ifndef BLAS_STORAGE_BUFFER_POOL_H_
#define BLAS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace blas {

class BufferPool;
class PageSource;

/// Per-thread storage access counters. Scans and page fetches add to the
/// scope installed on the current thread (if any) in addition to the
/// owning structure's global counters, so a query running on a worker
/// thread can attribute exactly its own accesses even while other queries
/// hammer the same store. Scopes nest; the innermost one receives the
/// counts.
struct ReadCounters {
  uint64_t elements = 0;
  uint64_t fetches = 0;
  uint64_t misses = 0;
  /// Misses that performed a real disk read (paged pools only; an
  /// in-memory pool's misses are simulated and cost no I/O).
  uint64_t io_reads = 0;
};

/// RAII installer for a thread-local ReadCounters sink.
class ReadCounterScope {
 public:
  explicit ReadCounterScope(ReadCounters* counters);
  ~ReadCounterScope();

  ReadCounterScope(const ReadCounterScope&) = delete;
  ReadCounterScope& operator=(const ReadCounterScope&) = delete;

  /// The innermost scope installed on this thread, or nullptr.
  static ReadCounters* Current();

 private:
  ReadCounters* prev_;
};

/// Sizing and backend selection of a paged (disk-backed) BufferPool.
struct StorageOptions {
  /// Total bytes of page frames this pool (or, with `shared_budget`, the
  /// whole pool group) may keep resident. Rounded down to whole frames;
  /// at least one frame per shard is always kept so progress is possible.
  /// Under the mmap backend the same allowance bounds mapped-resident
  /// bytes (pages touched since the last madvise eviction).
  size_t memory_budget = size_t{64} << 20;
  /// Explicit per-shard frame cap; 0 derives it from `memory_budget`.
  size_t frames_per_shard = 0;
  /// Latch shards (0 = auto-scale with the frame count, up to 16).
  size_t shards = 0;
  /// Read-path backend for paged pools (see StorageBackend in page.h).
  /// kDefault resolves BLAS_STORAGE_BACKEND, falling back to kPread.
  StorageBackend backend = StorageBackend::kDefault;
  /// Optional budget shared between several pools (a collection of paged
  /// documents drawing on one memory allowance). When set, a miss that
  /// would exceed the group budget first evicts an unpinned frame from
  /// some registered pool before bringing the new page in.
  std::shared_ptr<class FrameBudget> shared_budget;
};

/// \brief Byte budget shared by a group of paged BufferPools.
///
/// Each pool charges one frame on every page brought in (pread frames and
/// mapped-resident mmap pages charge identically) and releases it on
/// eviction. When a charge would exceed the limit, the charging pool
/// asks the group to reclaim: registered pools are probed (try-lock, no
/// nested latches) for an unpinned frame to evict, retrying with yields
/// when a probe round loses every try-lock race. Only when frames stay
/// unavailable across repeated rounds — in practice, everything pinned —
/// does the group overshoot; `peak_used()` records the high-water mark
/// so tests can assert the budget held.
class FrameBudget {
 public:
  explicit FrameBudget(size_t limit_bytes);

  size_t limit() const { return limit_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak_used() const { return peak_.load(std::memory_order_relaxed); }

 private:
  friend class BufferPool;
  friend class PageSource;  // backends charge through protected shims

  /// Reserves `bytes` if it fits; false when the budget is exhausted.
  bool TryCharge(size_t bytes);
  /// Reserves unconditionally (every evictable frame was pinned).
  void ForceCharge(size_t bytes);
  void Release(size_t bytes);
  /// Evicts one unpinned frame from some registered pool (preferring
  /// `preferred`). False when nothing in the group is evictable. Holds
  /// pools_mu_ while try-lock probing shard latches; the probes never
  /// block, so the pools_mu_ -> shard.mu order cannot deadlock against a
  /// charging fetcher (which holds no latch while it reclaims).
  bool ReclaimOne(BufferPool* preferred) BLAS_EXCLUDES(pools_mu_);

  void Register(BufferPool* pool) BLAS_EXCLUDES(pools_mu_);
  void Unregister(BufferPool* pool) BLAS_EXCLUDES(pools_mu_);

  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  Mutex pools_mu_;
  std::vector<BufferPool*> pools_ BLAS_GUARDED_BY(pools_mu_);
};

/// \brief Read-only page file: the on-disk backing of a paged BufferPool.
///
/// Pages live at `base_offset + id * kPageSize`; reads go through pread,
/// so any number of threads may read concurrently through one descriptor.
class PagedFile {
 public:
  /// Opens `path` and verifies it holds `page_count` pages at
  /// `base_offset` (fails with Corruption when the file is too short).
  static Result<PagedFile> Open(const std::string& path,
                                uint64_t base_offset, uint64_t page_count);

  PagedFile(PagedFile&& other) noexcept;
  PagedFile& operator=(PagedFile&& other) noexcept;
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;
  ~PagedFile();

  /// Reads page `id` into `out` (one full-page pread).
  Status Read(PageId id, Page* out) const;

  /// Advises the kernel that pages [first, first + count) will be read
  /// soon (one ranged POSIX_FADV_WILLNEED; out-of-range tails are
  /// clamped). Purely a hint: no error surfaces, nothing is charged.
  void ReadaheadHint(PageId first, uint64_t count) const;

  uint64_t page_count() const { return pages_; }
  const std::string& path() const { return path_; }
  /// Descriptor and placement, for page-source backends (mmap maps the
  /// prefix [0, base_offset + page_count * kPageSize) of this fd).
  int fd() const { return fd_; }
  uint64_t base_offset() const { return base_; }

 private:
  PagedFile(int fd, uint64_t base, uint64_t pages, std::string path)
      : fd_(fd), base_(base), pages_(pages), path_(std::move(path)) {}

  int fd_ = -1;
  uint64_t base_ = 0;
  uint64_t pages_ = 0;
  std::string path_;
};

/// \brief Releases the pin a PageRef holds. What a "pin" is depends on
/// the backend: the pread source pins the frame (eviction skips it), the
/// mmap source pins the mapping epoch (munmap waits for it). In-memory
/// refs carry no owner at all. Unpin must be callable from any thread,
/// lock-free, and — for the mmap epoch — valid even after the BufferPool
/// that minted the ref is gone.
class PageRefOwner {
 public:
  virtual void Unpin(void* pin) const = 0;

 protected:
  ~PageRefOwner() = default;
};

/// \brief RAII handle to a fetched page.
///
/// Lifetime rules by backend:
///   * in-memory — pages are never freed; the ref is a plain pointer;
///   * pread — the referenced frame is pinned: eviction, DropCache and
///     shard reclaim all skip pinned frames, so the bytes stay valid and
///     immutable until the ref dies;
///   * mmap — the ref pins the *mapping epoch*, not the page: eviction
///     (madvise) may drop the physical page under a live ref, but the
///     next access simply refaults the identical bytes from the immutable
///     segment file, and munmap/unlink are deferred until the last ref
///     drops — an mmap ref even outlives its BufferPool safely.
/// An empty ref (`!ref`) means the page id was out of range or the
/// backing read failed — treat it as end-of-data.
class [[nodiscard]] PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  const Page* get() const { return page_; }
  const Page* operator->() const { return page_; }
  const Page& operator*() const { return *page_; }
  explicit operator bool() const { return page_ != nullptr; }

 private:
  friend class BufferPool;
  friend class PageSource;
  PageRef(const Page* page, void* pin, const PageRefOwner* owner)
      : page_(page), pin_(pin), owner_(owner) {}

  void Release();

  const Page* page_ = nullptr;
  void* pin_ = nullptr;  // Frame* (pread) or MappingEpoch* (mmap)
  const PageRefOwner* owner_ = nullptr;
};

/// \brief Page store facade over a pluggable PageSource backend.
///
/// **In-memory mode** (the build-time pool): all pages live in memory;
/// `Fetch` runs every access through an LRU cache so benchmarks can
/// report the two quantities the paper argues about — logical page reads
/// (`fetches`) and simulated disk accesses (`misses`). Nothing is ever
/// freed, so refs never dangle and `io_reads` stays 0.
///
/// **Paged mode** (`BufferPool(PagedFile, StorageOptions)`): the read
/// path is supplied by the backend `StorageOptions::backend` selects —
/// pread-into-frame with second-chance eviction, or zero-copy mmap with
/// madvise eviction (see StorageBackend in page.h). Either way a miss
/// costs a real disk read (counted in `io_reads`) and residency honors
/// the frame budget. `Allocate`/`MutablePage` are unavailable (the file
/// is immutable).
///
/// Concurrency: `Fetch`, `Peek`, `stats`, `DropCache`, `ResetStats` and
/// the counter scopes are safe to call from any number of threads once
/// the pool is built. The cache state is sharded by page id — small
/// pools (< 128 frames) keep a single shard and therefore exact
/// global-LRU semantics; larger pools split into up to 16 independently
/// latched shards. `Allocate` and `MutablePage` are build-time only and
/// must not race with `Fetch`.
class BufferPool {
 public:
  /// In-memory pool. `cache_capacity` is the number of cached frames
  /// (>= 1) of the miss-counting LRU. `shards` is the number of
  /// independently latched shards; 0 picks one shard per 128 frames
  /// (capped at 16). Pass 1 for exact global-LRU miss accounting.
  explicit BufferPool(size_t cache_capacity = 1024, size_t shards = 0);

  /// Paged pool over `file`. Frame count derives from
  /// `options.memory_budget` (or `frames_per_shard`); at least one frame
  /// per shard is kept so a pinned descent can always progress. The
  /// backend comes from `options.backend`; if mmap is selected but the
  /// mapping cannot be established, the pool falls back to pread.
  BufferPool(PagedFile file, const StorageOptions& options);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  BufferPool(BufferPool&&) = delete;
  BufferPool& operator=(BufferPool&&) = delete;

  bool paged() const;
  /// The backend actually serving reads (kInMemory, kPread or kMmap —
  /// never kDefault; fallback already applied).
  StorageBackend backend() const;

  /// Appends a zeroed page and returns its id. Build-time, in-memory
  /// pools only (kInvalidPage otherwise).
  PageId Allocate();

  /// Build-time access; does not touch the counters. Bounds-checked:
  /// out-of-range ids (and paged pools) return nullptr instead of
  /// indexing unallocated memory.
  Page* MutablePage(PageId id);

  /// Query-time access; counts one fetch, plus one miss when `id` is not
  /// resident in its shard (paged backends then bring it in, possibly
  /// evicting an unpinned frame). An out-of-range id — e.g. from a
  /// corrupt snapshot directory — yields an empty ref, never UB.
  PageRef Fetch(PageId id) const;

  /// Maintenance access (export, verification); bypasses the counters
  /// and, in in-memory pools, the cache. Paged backends still track
  /// residency (the bytes must come from somewhere) but without touching
  /// the statistics. Bounds-checked like Fetch.
  PageRef Peek(PageId id) const;

  /// Hints that pages [first, first + count) are about to be read in
  /// order (one ranged readahead batch: POSIX_FADV_WILLNEED under pread,
  /// MADV_WILLNEED under mmap, no-op in memory). Purely advisory; does
  /// not charge the budget or touch the counters.
  void Readahead(PageId first, size_t count) const;

  size_t page_count() const;
  size_t shard_count() const;

  struct Stats {
    uint64_t fetches = 0;
    uint64_t misses = 0;
    /// Real disk reads (== misses for paged pools, 0 for in-memory).
    uint64_t io_reads = 0;
    /// Frames evicted to stay within the budget (paged pools; under mmap
    /// an eviction is one madvise(MADV_DONTNEED) page drop).
    uint64_t evictions = 0;
    /// preads that failed (see io_error()).
    uint64_t io_errors = 0;
  };
  /// Aggregate over all shards since the last ResetStats().
  Stats stats() const;
  void ResetStats();

  /// Sticky: true once any pread has failed over this pool's lifetime.
  /// A failed read surfaces to scans as end-of-data (Next() cannot fail
  /// by contract), so results may be truncated from that point on —
  /// callers that must distinguish "no more matches" from "the disk went
  /// away" check this flag (it never resets).
  bool io_error() const;

  /// Drops cached state (cold-cache experiments; the paper runs every
  /// query on a cold cache). In-memory pools clear the LRU bookkeeping;
  /// the pread backend evicts every unpinned frame — pinned frames
  /// survive, so concurrent readers holding PageRefs stay valid; the
  /// mmap backend madvises every resident page away — live refs stay
  /// valid too (they refault from the immutable file).
  void DropCache();

  /// Frames currently resident (paged pools; 0 for in-memory). Under
  /// mmap: mapped-resident pages still charged to the budget.
  size_t frames_in_use() const;
  /// Sum of the per-shard resident high-water marks since construction
  /// or the last ResetStats() (paged pools; 0 for in-memory).
  size_t peak_frames() const;

  /// Asks the backend to take over unlinking `path` when its mapping
  /// epoch finally releases (mmap only; false means the caller must
  /// unlink itself). Lets segment reclamation defer unlink+munmap until
  /// the last PageRef drops — see LiveCollection::WrapSystem.
  bool DeferUnlinkToMapping(const std::string& path) const;

 private:
  friend class FrameBudget;

  /// Evicts one unpinned frame from any shard (try-lock probing; used by
  /// the shared budget's reclaim). False when everything is pinned.
  bool TryEvictOne();

  std::unique_ptr<PageSource> source_;
  std::shared_ptr<FrameBudget> budget_;
};

}  // namespace blas

#endif  // BLAS_STORAGE_BUFFER_POOL_H_

#ifndef BLAS_STORAGE_BUFFER_POOL_H_
#define BLAS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page.h"

namespace blas {

/// \brief Page store with an LRU cache that models disk accesses.
///
/// All pages live in memory; `Fetch` runs every access through an LRU
/// cache of `cache_capacity` frames so that benchmarks can report the two
/// quantities the paper argues about: logical page reads (`fetches`) and
/// simulated disk accesses (`misses`). Build-time access via `MutablePage`
/// bypasses the counters (the paper measures query processing only).
class BufferPool {
 public:
  /// `cache_capacity` is the number of cached frames (>= 1).
  explicit BufferPool(size_t cache_capacity = 1024);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  BufferPool(BufferPool&&) = default;
  BufferPool& operator=(BufferPool&&) = default;

  /// Appends a zeroed page and returns its id.
  PageId Allocate();

  /// Build-time access; does not touch the counters.
  Page* MutablePage(PageId id) { return pages_[id].get(); }

  /// Query-time access; counts one fetch, plus one miss when `id` is not
  /// in the LRU cache (it is then brought in, possibly evicting).
  const Page* Fetch(PageId id) const;

  /// Maintenance access (export, verification); bypasses the counters and
  /// the cache, like MutablePage but const.
  const Page* Peek(PageId id) const { return pages_[id].get(); }

  size_t page_count() const { return pages_.size(); }

  struct Stats {
    uint64_t fetches = 0;
    uint64_t misses = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Drops all cached frames (cold-cache experiments; the paper runs every
  /// query on a cold cache).
  void DropCache();

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  size_t cache_capacity_;

  // LRU bookkeeping; mutable because Fetch is logically const.
  mutable std::list<PageId> lru_;  // front = most recent
  mutable std::unordered_map<PageId, std::list<PageId>::iterator> cached_;
  mutable Stats stats_;
};

}  // namespace blas

#endif  // BLAS_STORAGE_BUFFER_POOL_H_

#ifndef BLAS_STORAGE_BUFFER_POOL_H_
#define BLAS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page.h"

namespace blas {

/// Per-thread storage access counters. Scans and page fetches add to the
/// scope installed on the current thread (if any) in addition to the
/// owning structure's global counters, so a query running on a worker
/// thread can attribute exactly its own accesses even while other queries
/// hammer the same store. Scopes nest; the innermost one receives the
/// counts.
struct ReadCounters {
  uint64_t elements = 0;
  uint64_t fetches = 0;
  uint64_t misses = 0;
};

/// RAII installer for a thread-local ReadCounters sink.
class ReadCounterScope {
 public:
  explicit ReadCounterScope(ReadCounters* counters);
  ~ReadCounterScope();

  ReadCounterScope(const ReadCounterScope&) = delete;
  ReadCounterScope& operator=(const ReadCounterScope&) = delete;

  /// The innermost scope installed on this thread, or nullptr.
  static ReadCounters* Current();

 private:
  ReadCounters* prev_;
};

/// \brief Page store with an LRU cache that models disk accesses.
///
/// All pages live in memory; `Fetch` runs every access through an LRU
/// cache so that benchmarks can report the two quantities the paper argues
/// about: logical page reads (`fetches`) and simulated disk accesses
/// (`misses`). Build-time access via `MutablePage` bypasses the counters
/// (the paper measures query processing only).
///
/// Concurrency: `Fetch`, `Peek`, `stats` and the counter scopes are safe
/// to call from any number of threads once the pool is built. The LRU
/// state is sharded by page id — small pools (< 128 frames) keep a single
/// shard and therefore exact global-LRU semantics; larger pools split into
/// up to 16 independently latched shards so concurrent readers do not
/// serialize on one mutex. `Allocate` and `MutablePage` are build-time
/// only and must not race with `Fetch`.
class BufferPool {
 public:
  /// `cache_capacity` is the number of cached frames (>= 1). `shards` is
  /// the number of independently latched LRU shards; 0 picks one shard
  /// per 128 frames (capped at 16). Pass 1 for exact global-LRU miss
  /// accounting (the paper's single-threaded cold-cache experiments);
  /// sharded pools approximate it (misses can differ under capacity
  /// pressure because each shard evicts independently).
  explicit BufferPool(size_t cache_capacity = 1024, size_t shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  BufferPool(BufferPool&&) = delete;
  BufferPool& operator=(BufferPool&&) = delete;

  /// Appends a zeroed page and returns its id. Build-time only.
  PageId Allocate();

  /// Build-time access; does not touch the counters.
  Page* MutablePage(PageId id) { return pages_[id].get(); }

  /// Query-time access; counts one fetch, plus one miss when `id` is not
  /// in its shard's LRU cache (it is then brought in, possibly evicting).
  const Page* Fetch(PageId id) const;

  /// Maintenance access (export, verification); bypasses the counters and
  /// the cache, like MutablePage but const.
  const Page* Peek(PageId id) const { return pages_[id].get(); }

  size_t page_count() const { return pages_.size(); }
  size_t shard_count() const { return shards_.size(); }

  struct Stats {
    uint64_t fetches = 0;
    uint64_t misses = 0;
  };
  /// Aggregate over all shards since the last ResetStats().
  Stats stats() const;
  void ResetStats();

  /// Drops all cached frames (cold-cache experiments; the paper runs every
  /// query on a cold cache).
  void DropCache();

 private:
  struct Shard;

  std::vector<std::unique_ptr<Page>> pages_;
  size_t cache_capacity_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace blas

#endif  // BLAS_STORAGE_BUFFER_POOL_H_

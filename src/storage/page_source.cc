#include "storage/page_source.h"

#include <sys/mman.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace blas {

namespace {

// Process-wide storage metrics (see obs/metrics.h). Registered once; the
// hot paths below pay one relaxed atomic per event. The pread histogram
// is only touched on misses, which already pay a disk read. The registry
// has no label support, so the backend "label" is encoded in the metric
// name (blas_storage_backend_<backend>_...).
struct StorageMetrics {
  obs::Histogram* pread_ns;
  obs::Counter* evictions;
  obs::Gauge* frames_in_use;
  obs::Gauge* mmap_bytes_mapped;
  obs::Counter* madvise_calls;
  obs::Histogram* readahead_pread;
  obs::Histogram* readahead_mmap;

  StorageMetrics() {
    auto& reg = obs::DefaultRegistry();
    pread_ns = reg.GetHistogram(
        "blas_storage_pread_ns", "Latency of one paged 8 KiB pread");
    evictions = reg.GetCounter(
        "blas_storage_evictions_total", "Buffer-pool frames evicted");
    frames_in_use = reg.GetGauge(
        "blas_storage_frames_in_use",
        "Buffer-pool frames currently resident across all paged pools");
    mmap_bytes_mapped = reg.GetGauge(
        "blas_storage_backend_mmap_bytes_mapped",
        "Bytes of live BLASIDX2 segment mappings (mmap backend)");
    madvise_calls = reg.GetCounter(
        "blas_storage_backend_mmap_madvise_calls_total",
        "madvise calls issued by the mmap backend (eviction + readahead)");
    readahead_pread = reg.GetHistogram(
        "blas_storage_backend_pread_readahead_batch_pages",
        "Pages per ranged POSIX_FADV_WILLNEED readahead batch");
    readahead_mmap = reg.GetHistogram(
        "blas_storage_backend_mmap_readahead_batch_pages",
        "Pages per ranged MADV_WILLNEED readahead batch");
  }
};

StorageMetrics& storage_metrics() {
  static StorageMetrics* m = new StorageMetrics();
  return *m;
}

/// One shard per 128 frames, capped at 16: tiny pools (including the unit
/// tests' 2-frame pools) keep exact single-LRU semantics, while the
/// default 4096-frame pool spreads readers over 16 latches.
size_t PickShardCount(size_t capacity) {
  size_t shards = 1;
  while (shards < 16 && capacity / (shards * 2) >= 64) shards *= 2;
  return shards;
}

/// Per-shard frame allowance: an even split of `total` with at least one
/// frame per shard so a pinned descent can always progress.
size_t ShardCapacity(size_t total, size_t shards, size_t index) {
  size_t capacity = total / shards + (index < total % shards ? 1 : 0);
  return capacity == 0 ? 1 : capacity;
}

// Live-mapping accounting, process-wide: MappedBytesLive() backs tests
// that assert a segment's mapping is reclaimed only after the last ref
// drops, and mirrors the blas_storage_backend_mmap_bytes_mapped gauge.
struct EpochRegistry {
  Mutex mu;
  size_t bytes BLAS_GUARDED_BY(mu) = 0;
  size_t epochs BLAS_GUARDED_BY(mu) = 0;
};

EpochRegistry& epoch_registry() {
  static EpochRegistry* r = new EpochRegistry();
  return *r;
}

/// \brief One mmap of one segment file, intrusively refcounted.
///
/// The owning MmapSource holds one pin for its whole lifetime; every
/// PageRef minted over the mapping holds another. munmap — and, when a
/// tombstone deleter handed the file over via AdoptUnlink, the unlink —
/// happen only when the count hits zero, so a ref safely outlives both
/// its BufferPool and the segment's logical deletion. Eviction never
/// touches the refcount: madvise(MADV_DONTNEED) under a live ref is
/// harmless (the next access refaults identical bytes from the immutable
/// file); only the unmapping itself must wait.
class MappingEpoch : public PageRefOwner {
 public:
  MappingEpoch(void* map, size_t len) : map_(map), len_(len) {
    EpochRegistry& reg = epoch_registry();
    MutexLock lock(reg.mu);
    reg.bytes += len_;
    ++reg.epochs;
    storage_metrics().mmap_bytes_mapped->Add(static_cast<int64_t>(len_));
  }

  MappingEpoch(const MappingEpoch&) = delete;
  MappingEpoch& operator=(const MappingEpoch&) = delete;

  const std::byte* data() const {
    return static_cast<const std::byte*>(map_);
  }
  size_t length() const { return len_; }

  void Pin() const { refs_.fetch_add(1, std::memory_order_relaxed); }

  /// PageRefOwner: drop one pin; the last one out reclaims the mapping.
  /// The acq_rel pair orders every reader's last page access before the
  /// munmap that the zero observer performs.
  void Unpin(void* /*pin*/) const override {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }

  /// Defers unlinking `path` to the final release (segment reclamation
  /// under churn: the tombstone deleter may run while refs are live).
  void AdoptUnlink(std::string path) BLAS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    unlink_path_ = std::move(path);
  }

 private:
  ~MappingEpoch() {
    std::string path;
    {
      MutexLock lock(mu_);
      path = std::move(unlink_path_);
    }
    // Reclamation order: unmap first, then unlink. The inode stays alive
    // under the mapping either way (POSIX), but this order means a crash
    // between the two leaves a plain orphan file for SweepOrphans rather
    // than a name pointing at a half-reclaimed segment.
    ::munmap(map_, len_);
    if (!path.empty()) std::remove(path.c_str());
    EpochRegistry& reg = epoch_registry();
    MutexLock lock(reg.mu);
    reg.bytes -= len_;
    --reg.epochs;
    storage_metrics().mmap_bytes_mapped->Add(-static_cast<int64_t>(len_));
  }

  mutable std::atomic<uint32_t> refs_{1};  // the owning source's pin
  void* const map_;
  const size_t len_;
  Mutex mu_;
  std::string unlink_path_ BLAS_GUARDED_BY(mu_);
};

// --------------------------------------------------------------------------
// InMemorySource: the build-time page array. Every page is resident by
// construction; the LRU exists purely to *count* what a paged run would
// have fetched and missed, which is what the paper's experiments report.
// --------------------------------------------------------------------------

class InMemorySource final : public PageSource {
 public:
  InMemorySource(size_t cache_capacity, size_t shards)
      : cache_capacity_(cache_capacity == 0 ? 1 : cache_capacity) {
    size_t n = shards == 0 ? PickShardCount(cache_capacity_) : shards;
    if (n > cache_capacity_) n = cache_capacity_;
    if (n == 0) n = 1;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shards_.push_back(
          std::make_unique<Shard>(ShardCapacity(cache_capacity_, n, i)));
    }
  }

  StorageBackend backend() const override {
    return StorageBackend::kInMemory;
  }
  bool paged() const override { return false; }
  size_t page_count() const override { return pages_.size(); }
  size_t shard_count() const override { return shards_.size(); }

  PageId Allocate() override {
    pages_.push_back(std::make_unique<Page>());
    return static_cast<PageId>(pages_.size() - 1);
  }

  Page* MutablePage(PageId id) override {
    // An out-of-range id (e.g. from a corrupt snapshot directory) must
    // not index unallocated memory.
    assert(id < pages_.size() && "MutablePage out of range");
    if (id >= pages_.size()) return nullptr;
    return pages_[id].get();
  }

  PageRef Fetch(PageId id, bool counted) const override {
    if (id >= pages_.size()) {
      assert(false && "Fetch out of range");
      return PageRef();
    }
    if (!counted) {
      // Peek: bypass the counting cache entirely — pages are resident
      // anyway, and maintenance reads must not perturb the model.
      return MakeRef(pages_[id].get(), nullptr, nullptr);
    }
    Shard& shard = shard_for(id);
    bool miss = false;
    {
      MutexLock lock(shard.mu);
      ++shard.stats.fetches;
      auto it = shard.cached.find(id);
      if (it != shard.cached.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      } else {
        miss = true;
        ++shard.stats.misses;
        if (shard.cached.size() >= shard.capacity) {
          PageId victim = shard.lru.back();
          shard.lru.pop_back();
          shard.cached.erase(victim);
        }
        shard.lru.push_front(id);
        shard.cached[id] = shard.lru.begin();
      }
    }
    if (ReadCounters* counters = ReadCounterScope::Current()) {
      ++counters->fetches;
      if (miss) ++counters->misses;
    }
    return MakeRef(pages_[id].get(), nullptr, nullptr);
  }

  BufferPool::Stats stats() const override {
    BufferPool::Stats total;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total.fetches += shard->stats.fetches;
      total.misses += shard->stats.misses;
    }
    return total;
  }

  void ResetStats() override {
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      shard->stats = BufferPool::Stats();
    }
  }

  void DropCache() override {
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      shard->lru.clear();
      shard->cached.clear();
    }
  }

  size_t frames_in_use() const override { return 0; }
  size_t peak_frames() const override { return 0; }
  bool io_error() const override { return false; }
  bool TryEvictOne() override { return false; }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap == 0 ? 1 : cap) {}
    Mutex mu;
    std::list<PageId> lru BLAS_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<PageId, std::list<PageId>::iterator> cached
        BLAS_GUARDED_BY(mu);
    const size_t capacity;
    BufferPool::Stats stats BLAS_GUARDED_BY(mu);
  };

  Shard& shard_for(PageId id) const { return *shards_[id % shards_.size()]; }

  std::vector<std::unique_ptr<Page>> pages_;
  size_t cache_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// --------------------------------------------------------------------------
// PreadFrameSource: demand paging into owned frames. A miss preads the
// page into a freshly allocated frame with the shard latch dropped (the
// `pending` set keeps the read exclusive; hits on other pages proceed);
// eviction is second-chance over the clock ring, skipping pinned frames.
// --------------------------------------------------------------------------

class PreadFrameSource final : public PageSource, public PageRefOwner {
 public:
  PreadFrameSource(PagedFile file, size_t total_frames, size_t shard_count,
                   BufferPool* owner, FrameBudget* budget)
      : file_(std::move(file)), owner_(owner), budget_(budget) {
    shards_.reserve(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>(
          ShardCapacity(total_frames, shard_count, i)));
    }
  }

  ~PreadFrameSource() override {
    // The facade unregistered from the shared budget before destroying
    // this source, so no cross-pool reclaim can race the count below.
    size_t resident = 0;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      resident += shard->frames.size();
    }
    if (resident > 0) {
      storage_metrics().frames_in_use->Add(-static_cast<int64_t>(resident));
      if (budget_ != nullptr) {
        BudgetRelease(budget_, resident * kPageSize);
      }
    }
  }

  StorageBackend backend() const override { return StorageBackend::kPread; }
  bool paged() const override { return true; }
  size_t page_count() const override { return file_.page_count(); }
  size_t shard_count() const override { return shards_.size(); }

  PageId Allocate() override {
    assert(false && "Allocate on a paged (immutable) pool");
    return kInvalidPage;
  }
  Page* MutablePage(PageId /*id*/) override {
    assert(false && "MutablePage on a paged (immutable) pool");
    return nullptr;
  }

  PageRef Fetch(PageId id, bool counted) const override {
    if (id >= file_.page_count()) {
      assert(false && "Fetch out of range");
      return PageRef();
    }
    Shard& shard = shard_for(id);
    {
      MutexLock lock(shard.mu);
      if (counted) ++shard.stats.fetches;
      while (true) {
        auto it = shard.frames.find(id);
        if (it != shard.frames.end()) {
          Frame* frame = it->second.get();
          frame->referenced = true;
          frame->pins.fetch_add(1, std::memory_order_relaxed);
          if (counted) {
            if (ReadCounters* counters = ReadCounterScope::Current()) {
              ++counters->fetches;
            }
          }
          return MakeRef(&frame->page, frame, this);
        }
        if (shard.pending.count(id) == 0) break;  // this thread reads it
        // Another thread's pread for this page is in flight; wait for it
        // to publish (or fail — then this thread retries the read).
        shard.ready.Wait(lock);
      }
      shard.pending.insert(id);
    }

    // Miss. Reserve budget first (reclaim may probe other shards and
    // pools; no latch may be held while it does), then pread with the
    // latch dropped — a slow disk must not block hits on this shard. The
    // pending marker keeps the read exclusive.
    bool charged = ChargeBudget();

    auto frame = std::make_unique<Frame>();
    frame->id = id;
    frame->pins.store(1, std::memory_order_relaxed);
    Stopwatch pread_timer;
    Status read = file_.Read(id, &frame->page);
    {
      const uint64_t ns = pread_timer.ElapsedNanos();
      storage_metrics().pread_ns->Record(ns);
      if (obs::TraceContext* trace = obs::TraceContext::Current()) {
        trace->RecordPageRead(ns);
      }
    }

    MutexLock lock(shard.mu);
    shard.pending.erase(id);
    shard.ready.NotifyAll();
    if (!read.ok()) {
      if (charged) BudgetRelease(budget_, kPageSize);
      ++shard.stats.io_errors;
      io_error_.store(true, std::memory_order_relaxed);
      assert(false && "paged read failed");
      return PageRef();
    }
    if (shard.frames.size() >= shard.capacity) {
      EvictDownTo(shard, shard.capacity - 1);
    }
    if (counted) {
      ++shard.stats.misses;
      ++shard.stats.io_reads;
    }
    Frame* raw = frame.get();
    shard.clock.push_back(id);
    shard.frames.emplace(id, std::move(frame));
    storage_metrics().frames_in_use->Add(1);
    if (shard.frames.size() > shard.peak) shard.peak = shard.frames.size();
    if (counted) {
      if (ReadCounters* counters = ReadCounterScope::Current()) {
        ++counters->fetches;
        ++counters->misses;
        ++counters->io_reads;
      }
    }
    return MakeRef(&raw->page, raw, this);
  }

  void Readahead(PageId first, size_t count) const override {
    if (count == 0 || first >= file_.page_count()) return;
    file_.ReadaheadHint(first, count);
    storage_metrics().readahead_pread->Record(count);
  }

  /// PageRefOwner: pins drop lock-free; the release pairs with the
  /// acquire load in EvictDownTo so the reader's last access happens
  /// before any eviction that observes the zero.
  void Unpin(void* pin) const override {
    static_cast<Frame*>(pin)->pins.fetch_sub(1, std::memory_order_release);
  }

  BufferPool::Stats stats() const override {
    BufferPool::Stats total;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total.fetches += shard->stats.fetches;
      total.misses += shard->stats.misses;
      total.io_reads += shard->stats.io_reads;
      total.evictions += shard->stats.evictions;
      total.io_errors += shard->stats.io_errors;
    }
    return total;
  }

  void ResetStats() override {
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      shard->stats = BufferPool::Stats();
      shard->peak = shard->frames.size();
    }
  }

  void DropCache() override {
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      // Free every unpinned frame. Pinned frames stay resident (so their
      // refs keep reading valid bytes); their next unpin makes them
      // evictable again.
      EvictDownTo(*shard, 0);
    }
  }

  size_t frames_in_use() const override {
    size_t total = 0;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total += shard->frames.size();
    }
    return total;
  }

  size_t peak_frames() const override {
    size_t total = 0;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total += shard->peak;
    }
    return total;
  }

  bool io_error() const override {
    return io_error_.load(std::memory_order_relaxed);
  }

  bool TryEvictOne() override {
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      // Probe, never block: the caller (FrameBudget::ReclaimOne) holds
      // pools_mu_, and a blocking latch acquisition here could deadlock
      // against a shard holder waiting on the budget.
      if (!shard.mu.TryLock()) continue;
      size_t target = shard.frames.empty() ? 0 : shard.frames.size() - 1;
      bool evicted = EvictDownTo(shard, target) > 0;
      shard.mu.Unlock();
      if (evicted) return true;
    }
    return false;
  }

 private:
  struct Frame {
    Page page;
    PageId id = kInvalidPage;
    /// Pins are taken under the shard latch but dropped lock-free; the
    /// release/acquire pair orders the reader's last access before any
    /// eviction that observes the zero.
    std::atomic<uint32_t> pins{0};
    bool referenced = false;  // second-chance bit, under the shard latch
  };

  struct Shard {
    explicit Shard(size_t cap) : capacity(cap == 0 ? 1 : cap) {}
    Mutex mu;
    // Real frames plus a second-chance clock ring. Pages whose pread is
    // in flight sit in `pending` (the disk read happens with the latch
    // dropped, so hits on other pages proceed); concurrent fetchers of
    // the same page wait on `ready`. Frame pointers taken out of
    // `frames` under the latch stay valid while pinned: eviction skips
    // any frame whose pin count (an atomic, deliberately *not*
    // latch-guarded — pins drop lock-free in PageRef::Release) is
    // non-zero.
    std::unordered_map<PageId, std::unique_ptr<Frame>> frames
        BLAS_GUARDED_BY(mu);
    std::list<PageId> clock BLAS_GUARDED_BY(mu);  // next eviction at front
    std::unordered_set<PageId> pending BLAS_GUARDED_BY(mu);
    CondVar ready;
    const size_t capacity;
    size_t peak BLAS_GUARDED_BY(mu) = 0;
    BufferPool::Stats stats BLAS_GUARDED_BY(mu);
  };

  Shard& shard_for(PageId id) const { return *shards_[id % shards_.size()]; }

  /// Charges one frame against the shared budget, reclaiming (or, when
  /// everything in the group stays pinned across repeated probe rounds,
  /// overshooting) as needed. Returns whether a charge was taken. Must
  /// be called with no shard latch held.
  bool ChargeBudget() const {
    if (budget_ == nullptr) return false;
    int failed_probes = 0;
    while (!BudgetTryCharge(budget_, kPageSize)) {
      if (BudgetReclaimOne(budget_, owner_)) {
        failed_probes = 0;
        continue;
      }
      // Reclaim probes shards with try-locks, so a failed round may just
      // mean evictable frames sat behind momentarily-held latches —
      // yield and retry before concluding the group is truly pinned.
      if (++failed_probes < 16) {
        std::this_thread::yield();
        continue;
      }
      // Every frame in the group stayed unavailable across repeated
      // probes (in practice: all pinned): overshoot rather than
      // deadlock; the next eviction rebalances.
      BudgetForceCharge(budget_, kPageSize);
      break;
    }
    return true;
  }

  size_t EvictDownTo(Shard& shard, size_t target) const
      BLAS_REQUIRES(shard.mu) {
    size_t evicted = 0;
    // Two full rotations: the first clears referenced bits, the second
    // can then evict; beyond that everything left is pinned.
    size_t attempts = 2 * shard.clock.size() + 1;
    while (shard.frames.size() > target && attempts-- > 0 &&
           !shard.clock.empty()) {
      PageId victim = shard.clock.front();
      auto it = shard.frames.find(victim);
      assert(it != shard.frames.end());
      Frame* frame = it->second.get();
      if (frame->pins.load(std::memory_order_acquire) > 0 ||
          frame->referenced) {
        frame->referenced = false;
        shard.clock.splice(shard.clock.end(), shard.clock,
                           shard.clock.begin());
        continue;
      }
      shard.clock.pop_front();
      shard.frames.erase(it);
      ++shard.stats.evictions;
      ++evicted;
      if (budget_ != nullptr) BudgetRelease(budget_, kPageSize);
    }
    if (evicted > 0) {
      StorageMetrics& metrics = storage_metrics();
      metrics.evictions->Add(evicted);
      metrics.frames_in_use->Add(-static_cast<int64_t>(evicted));
    }
    return evicted;
  }

  PagedFile file_;
  BufferPool* const owner_;
  FrameBudget* const budget_;
  mutable std::atomic<bool> io_error_{false};
  std::vector<std::unique_ptr<Shard>> shards_;
};

// --------------------------------------------------------------------------
// MmapSource: the whole segment mapped once; fetches hand out zero-copy
// refs over the mapping (no syscall, no 8 KiB copy). "Residency" is the
// set of pages touched since their last eviction — each first touch
// charges one frame against the budget, eviction madvises the page away
// and releases the charge. Refs pin the MappingEpoch, not any page:
// evicting under a live ref is safe (the next access refaults identical
// bytes from the immutable file); only munmap waits for the last ref.
// --------------------------------------------------------------------------

class MmapSource final : public PageSource {
 public:
  /// Maps `file` read-only and shared. On mmap failure returns nullptr
  /// (and leaves `file` intact) so the factory can fall back to pread.
  static std::unique_ptr<MmapSource> TryCreate(PagedFile* file,
                                               size_t total_frames,
                                               size_t shard_count,
                                               BufferPool* owner,
                                               FrameBudget* budget) {
    const size_t len = static_cast<size_t>(
        file->base_offset() + file->page_count() * kPageSize);
    if (len == 0) return nullptr;
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, file->fd(), 0);
    if (map == MAP_FAILED) return nullptr;
    return std::unique_ptr<MmapSource>(new MmapSource(
        std::move(*file), map, len, total_frames, shard_count, owner,
        budget));
  }

  ~MmapSource() override {
    // The facade unregistered from the shared budget before destroying
    // this source, so no cross-pool reclaim can race the count below.
    size_t resident = 0;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      resident += shard->resident.size();
    }
    if (resident > 0) {
      storage_metrics().frames_in_use->Add(-static_cast<int64_t>(resident));
      if (budget_ != nullptr) {
        BudgetRelease(budget_, resident * kPageSize);
      }
    }
    // Drop the owner pin. If PageRefs are still live the epoch (and the
    // mapping, and any adopted unlink) survives until the last one goes.
    epoch_->Unpin(nullptr);
  }

  StorageBackend backend() const override { return StorageBackend::kMmap; }
  bool paged() const override { return true; }
  size_t page_count() const override { return file_.page_count(); }
  size_t shard_count() const override { return shards_.size(); }

  PageId Allocate() override {
    assert(false && "Allocate on a paged (immutable) pool");
    return kInvalidPage;
  }
  Page* MutablePage(PageId /*id*/) override {
    assert(false && "MutablePage on a paged (immutable) pool");
    return nullptr;
  }

  PageRef Fetch(PageId id, bool counted) const override {
    if (id >= file_.page_count()) {
      assert(false && "Fetch out of range");
      return PageRef();
    }
    Shard& shard = shard_for(id);
    {
      MutexLock lock(shard.mu);
      if (counted) ++shard.stats.fetches;
      while (true) {
        auto it = shard.resident.find(id);
        if (it != shard.resident.end()) {
          it->second = true;  // second-chance referenced bit
          if (counted) {
            if (ReadCounters* counters = ReadCounterScope::Current()) {
              ++counters->fetches;
            }
          }
          return MintRef(id);
        }
        if (shard.pending.count(id) == 0) break;  // this thread faults it
        // Another thread is first-touching this page (its budget charge
        // and prefault run with the latch dropped); wait for it to
        // publish so the charge stays exactly one frame per resident
        // page.
        shard.ready.Wait(lock);
      }
      shard.pending.insert(id);
    }

    // First touch. Reserve budget with no latch held (reclaim may probe
    // other shards and pools), then prefault the page — the major fault
    // is the mmap backend's "disk read", and taking it here (rather than
    // at some later dereference) keeps the stall inside the counted miss
    // and visible to traces.
    ChargeBudget();
    Stopwatch fault_timer;
    Prefault(id);
    if (obs::TraceContext* trace = obs::TraceContext::Current()) {
      trace->RecordPageRead(fault_timer.ElapsedNanos());
    }

    MutexLock lock(shard.mu);
    shard.pending.erase(id);
    shard.ready.NotifyAll();
    if (shard.resident.size() >= shard.capacity) {
      EvictDownTo(shard, shard.capacity - 1);
    }
    if (counted) {
      ++shard.stats.misses;
      ++shard.stats.io_reads;
    }
    shard.clock.push_back(id);
    shard.resident.emplace(id, true);
    storage_metrics().frames_in_use->Add(1);
    if (shard.resident.size() > shard.peak) {
      shard.peak = shard.resident.size();
    }
    if (counted) {
      if (ReadCounters* counters = ReadCounterScope::Current()) {
        ++counters->fetches;
        ++counters->misses;
        ++counters->io_reads;
      }
    }
    return MintRef(id);
  }

  void Readahead(PageId first, size_t count) const override {
    if (count == 0 || first >= file_.page_count()) return;
    if (count > file_.page_count() - first) {
      count = file_.page_count() - first;
    }
    ::madvise(PageAddr(first), count * kPageSize, MADV_WILLNEED);
    StorageMetrics& metrics = storage_metrics();
    metrics.madvise_calls->Add(1);
    metrics.readahead_mmap->Record(count);
  }

  BufferPool::Stats stats() const override {
    BufferPool::Stats total;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total.fetches += shard->stats.fetches;
      total.misses += shard->stats.misses;
      total.io_reads += shard->stats.io_reads;
      total.evictions += shard->stats.evictions;
      total.io_errors += shard->stats.io_errors;
    }
    return total;
  }

  void ResetStats() override {
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      shard->stats = BufferPool::Stats();
      shard->peak = shard->resident.size();
    }
  }

  void DropCache() override {
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      // Everything is evictable (refs pin the epoch, not pages); live
      // refs keep working — their next access refaults from the file.
      EvictDownTo(*shard, 0);
    }
  }

  size_t frames_in_use() const override {
    size_t total = 0;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total += shard->resident.size();
    }
    return total;
  }

  size_t peak_frames() const override {
    size_t total = 0;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total += shard->peak;
    }
    return total;
  }

  bool io_error() const override { return false; }

  bool TryEvictOne() override {
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      // Probe, never block (see PreadFrameSource::TryEvictOne).
      if (!shard.mu.TryLock()) continue;
      size_t target = shard.resident.empty() ? 0 : shard.resident.size() - 1;
      bool evicted = EvictDownTo(shard, target) > 0;
      shard.mu.Unlock();
      if (evicted) return true;
    }
    return false;
  }

  bool AdoptUnlinkOnRelease(const std::string& path) override {
    epoch_->AdoptUnlink(path);
    return true;
  }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap == 0 ? 1 : cap) {}
    Mutex mu;
    // Mapped-resident pages (value = second-chance referenced bit) plus
    // the eviction clock. No pins: refs hold the epoch, so every
    // resident page is always evictable. `pending` serializes
    // first-touch so the budget is charged exactly once per resident
    // page even when two threads race to the same cold page.
    std::unordered_map<PageId, bool> resident BLAS_GUARDED_BY(mu);
    std::list<PageId> clock BLAS_GUARDED_BY(mu);  // next eviction at front
    std::unordered_set<PageId> pending BLAS_GUARDED_BY(mu);
    CondVar ready;
    const size_t capacity;
    size_t peak BLAS_GUARDED_BY(mu) = 0;
    BufferPool::Stats stats BLAS_GUARDED_BY(mu);
  };

  MmapSource(PagedFile file, void* map, size_t len, size_t total_frames,
             size_t shard_count, BufferPool* owner, FrameBudget* budget)
      : file_(std::move(file)),
        owner_(owner),
        budget_(budget),
        epoch_(new MappingEpoch(map, len)) {
    shards_.reserve(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>(
          ShardCapacity(total_frames, shard_count, i)));
    }
  }

  Shard& shard_for(PageId id) const { return *shards_[id % shards_.size()]; }

  std::byte* PageAddr(PageId id) const {
    return const_cast<std::byte*>(epoch_->data()) + file_.base_offset() +
           uint64_t{id} * kPageSize;
  }

  const Page* PagePtr(PageId id) const {
    // base_offset and kPageSize are both multiples of alignof(Page).
    return reinterpret_cast<const Page*>(PageAddr(id));
  }

  PageRef MintRef(PageId id) const {
    epoch_->Pin();
    return MakeRef(PagePtr(id), epoch_, epoch_);
  }

  /// Touches one byte per VM page so the major faults land here.
  void Prefault(PageId id) const {
    const volatile std::byte* p = PageAddr(id);
    for (size_t off = 0; off < kPageSize; off += 4096) {
      (void)p[off];
    }
  }

  bool ChargeBudget() const {
    if (budget_ == nullptr) return false;
    int failed_probes = 0;
    while (!BudgetTryCharge(budget_, kPageSize)) {
      if (BudgetReclaimOne(budget_, owner_)) {
        failed_probes = 0;
        continue;
      }
      if (++failed_probes < 16) {
        std::this_thread::yield();
        continue;
      }
      // Unlike pread frames, mapped pages are never pinned, so this
      // overshoot only triggers when *other* pools in the group hold
      // everything pinned.
      BudgetForceCharge(budget_, kPageSize);
      break;
    }
    return true;
  }

  size_t EvictDownTo(Shard& shard, size_t target) const
      BLAS_REQUIRES(shard.mu) {
    size_t evicted = 0;
    // One rotation clears referenced bits; nothing is ever pinned, so
    // two rotations always reach the target.
    size_t attempts = 2 * shard.clock.size() + 1;
    while (shard.resident.size() > target && attempts-- > 0 &&
           !shard.clock.empty()) {
      PageId victim = shard.clock.front();
      auto it = shard.resident.find(victim);
      assert(it != shard.resident.end());
      if (it->second) {
        it->second = false;  // second chance
        shard.clock.splice(shard.clock.end(), shard.clock,
                           shard.clock.begin());
        continue;
      }
      shard.clock.pop_front();
      shard.resident.erase(it);
      // Drop the physical page; the mapping (and any live ref into it)
      // stays valid — a later access refaults from the immutable file.
      ::madvise(PageAddr(victim), kPageSize, MADV_DONTNEED);
      ++shard.stats.evictions;
      ++evicted;
      if (budget_ != nullptr) BudgetRelease(budget_, kPageSize);
    }
    if (evicted > 0) {
      StorageMetrics& metrics = storage_metrics();
      metrics.evictions->Add(evicted);
      metrics.frames_in_use->Add(-static_cast<int64_t>(evicted));
      metrics.madvise_calls->Add(evicted);
    }
    return evicted;
  }

  PagedFile file_;
  BufferPool* const owner_;
  FrameBudget* const budget_;
  MappingEpoch* const epoch_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace

// ------------------------------------------------------------ interface ---

void PageSource::Readahead(PageId /*first*/, size_t /*count*/) const {}

bool PageSource::AdoptUnlinkOnRelease(const std::string& /*path*/) {
  return false;
}

StorageBackend ResolveBackend(StorageBackend requested) {
  if (requested != StorageBackend::kDefault) return requested;
  if (const char* env = std::getenv("BLAS_STORAGE_BACKEND")) {
    if (std::strcmp(env, "mmap") == 0) return StorageBackend::kMmap;
    if (std::strcmp(env, "pread") == 0) return StorageBackend::kPread;
  }
  return StorageBackend::kPread;
}

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kInMemory:
      return "inmem";
    case StorageBackend::kPread:
      return "pread";
    case StorageBackend::kMmap:
      return "mmap";
    case StorageBackend::kDefault:
      break;
  }
  return "default";
}

std::unique_ptr<PageSource> MakeInMemorySource(size_t cache_capacity,
                                               size_t shards) {
  return std::make_unique<InMemorySource>(cache_capacity, shards);
}

std::unique_ptr<PageSource> MakePagedSource(PagedFile file,
                                            const StorageOptions& options,
                                            BufferPool* owner,
                                            FrameBudget* budget) {
  size_t total_frames;
  size_t n;
  if (options.frames_per_shard > 0) {
    n = options.shards == 0 ? 1 : options.shards;
    total_frames = options.frames_per_shard * n;
  } else {
    total_frames = options.memory_budget / kPageSize;
    if (total_frames == 0) total_frames = 1;
    n = options.shards == 0 ? PickShardCount(total_frames) : options.shards;
    if (n > total_frames) n = total_frames;
  }
  if (n == 0) n = 1;
  StorageBackend backend = ResolveBackend(options.backend);
  if (backend == StorageBackend::kMmap) {
    auto mapped =
        MmapSource::TryCreate(&file, total_frames, n, owner, budget);
    if (mapped != nullptr) return mapped;
    // Mapping failed (exotic filesystem, address-space pressure): fall
    // back to pread, which serves the same bytes at the same semantics.
  }
  return std::make_unique<PreadFrameSource>(std::move(file), total_frames, n,
                                            owner, budget);
}

size_t MappedBytesLive() {
  EpochRegistry& reg = epoch_registry();
  MutexLock lock(reg.mu);
  return reg.bytes;
}

size_t MappedEpochsLive() {
  EpochRegistry& reg = epoch_registry();
  MutexLock lock(reg.mu);
  return reg.epochs;
}

}  // namespace blas

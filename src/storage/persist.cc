#include "storage/persist.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace blas {

namespace {

constexpr char kMagic[8] = {'B', 'L', 'A', 'S', 'I', 'D', 'X', '1'};

/// On-disk bytes of one fixed-width node record: two 64-bit P-label
/// halves plus five 32-bit fields (start, end, tag, level, data).
constexpr uint64_t kRecordBytes = 8 + 8 + 5 * 4;

void WriteU32(std::ostream& os, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 4);
}

void WriteU64(std::ostream& os, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::istream& is, uint32_t* v) {
  char buf[4];
  if (!is.read(buf, 4)) return false;
  *v = 0;
  for (int i = 3; i >= 0; --i) {
    *v = (*v << 8) | static_cast<uint8_t>(buf[i]);
  }
  return true;
}

bool ReadU64(std::istream& is, uint64_t* v) {
  char buf[8];
  if (!is.read(buf, 8)) return false;
  *v = 0;
  for (int i = 7; i >= 0; --i) {
    *v = (*v << 8) | static_cast<uint8_t>(buf[i]);
  }
  return true;
}

/// Bytes between the stream position and the end of the file (the size is
/// measured once at open). Every count and length in the header is
/// preflighted against this before anything is allocated.
uint64_t BytesLeft(std::istream& is, uint64_t file_size) {
  const std::streamoff pos = is.tellg();
  if (pos < 0 || static_cast<uint64_t>(pos) > file_size) return 0;
  return file_size - static_cast<uint64_t>(pos);
}

bool ReadString(std::istream& is, uint64_t file_size, std::string* s) {
  uint32_t len;
  if (!ReadU32(is, &len)) return false;
  // A length that overruns the file is corruption, caught before the
  // resize allocates.
  if (len > BytesLeft(is, file_size)) return false;
  s->resize(len);
  return static_cast<bool>(is.read(s->data(), len));
}

}  // namespace

Status SaveSnapshot(const IndexSnapshot& snapshot, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::InvalidArgument("cannot open for write: " + path);

  os.write(kMagic, sizeof(kMagic));
  WriteU32(os, static_cast<uint32_t>(snapshot.tags.size()));
  for (const std::string& tag : snapshot.tags) WriteString(os, tag);
  WriteU32(os, static_cast<uint32_t>(snapshot.max_depth));

  WriteU64(os, snapshot.records.size());
  for (const NodeRecord& rec : snapshot.records) {
    WriteU64(os, static_cast<uint64_t>(rec.plabel >> 64));
    WriteU64(os, static_cast<uint64_t>(rec.plabel));
    WriteU32(os, rec.start);
    WriteU32(os, rec.end);
    WriteU32(os, rec.tag);
    WriteU32(os, static_cast<uint32_t>(rec.level));
    WriteU32(os, rec.data);
  }

  WriteU64(os, snapshot.values.size());
  for (const std::string& value : snapshot.values) WriteString(os, value);

  os.flush();
  if (!os) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<IndexSnapshot> LoadSnapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open: " + path);

  // Measure the file once; every untrusted count below is checked against
  // the bytes actually present before any allocation sized by it.
  is.seekg(0, std::ios::end);
  const std::streamoff end_pos = is.tellg();
  if (end_pos < 0) return Status::Corruption("unsizable file: " + path);
  const uint64_t file_size = static_cast<uint64_t>(end_pos);
  is.seekg(0, std::ios::beg);

  char magic[8];
  if (!is.read(magic, 8) || std::memcmp(magic, kMagic, 8) != 0) {
    return Status::Corruption("bad magic in " + path);
  }

  IndexSnapshot snapshot;
  uint32_t num_tags;
  // Each tag costs at least its 4-byte length prefix.
  if (!ReadU32(is, &num_tags) ||
      uint64_t{num_tags} * 4 > BytesLeft(is, file_size)) {
    return Status::Corruption("bad tag count in " + path);
  }
  snapshot.tags.resize(num_tags);
  for (std::string& tag : snapshot.tags) {
    if (!ReadString(is, file_size, &tag)) {
      return Status::Corruption("truncated tags");
    }
  }
  uint32_t depth;
  if (!ReadU32(is, &depth) || depth > 100000) {
    return Status::Corruption("bad depth");
  }
  snapshot.max_depth = static_cast<int>(depth);

  uint64_t num_records;
  // An overstated count would otherwise resize() to a multi-TB buffer; a
  // record is fixed-width, so the exact remaining-byte bound is known.
  if (!ReadU64(is, &num_records) ||
      num_records > BytesLeft(is, file_size) / kRecordBytes) {
    return Status::Corruption("bad record count");
  }
  snapshot.records.resize(num_records);
  for (NodeRecord& rec : snapshot.records) {
    uint64_t hi, lo;
    uint32_t level;
    if (!ReadU64(is, &hi) || !ReadU64(is, &lo) || !ReadU32(is, &rec.start) ||
        !ReadU32(is, &rec.end) || !ReadU32(is, &rec.tag) ||
        !ReadU32(is, &level) || !ReadU32(is, &rec.data)) {
      return Status::Corruption("truncated records");
    }
    rec.plabel = (static_cast<u128>(hi) << 64) | lo;
    rec.level = static_cast<int32_t>(level);
  }

  uint64_t num_values;
  // Same preflight: each value costs at least its 4-byte length prefix.
  if (!ReadU64(is, &num_values) ||
      num_values > BytesLeft(is, file_size) / 4) {
    return Status::Corruption("bad value count");
  }
  snapshot.values.resize(num_values);
  for (std::string& value : snapshot.values) {
    if (!ReadString(is, file_size, &value)) {
      return Status::Corruption("truncated values");
    }
  }
  return snapshot;
}

}  // namespace blas

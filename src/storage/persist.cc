#include "storage/persist.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <utility>

namespace blas {

namespace {

constexpr char kMagic[8] = {'B', 'L', 'A', 'S', 'I', 'D', 'X', '1'};
constexpr char kMagic2[8] = {'B', 'L', 'A', 'S', 'I', 'D', 'X', '2'};
constexpr uint32_t kVersion2 = 1;
/// Written in native byte order: a snapshot produced by a different
/// endianness reads back as a different value and is rejected (tree pages
/// are raw native layout, so misreading them must be impossible).
constexpr uint32_t kEndianProbe = 0x01020304u;
constexpr uint32_t kNoParent = 0xFFFFFFFFu;
/// Largest value a paged dictionary page can hold alone:
/// header (8) + two offsets (8) + the bytes.
constexpr size_t kMaxPagedValue = kPageSize - 16;

/// On-disk bytes of one fixed-width BLAS1 node record: two 64-bit P-label
/// halves plus five 32-bit fields (start, end, tag, level, data).
constexpr uint64_t kRecordBytes = 8 + 8 + 5 * 4;

/// Bytes of one flattened summary entry (parent u32, tag u32, count u64).
constexpr uint64_t kSummaryEntryBytes = 16;

// ------------------------------------------------- atomic file writing ---

/// Writes `path + ".tmp"`, then Commit() flushes, fsyncs and atomically
/// renames over `path` — a crash mid-write never destroys the previous
/// good snapshot. Abandoning the writer removes the partial .tmp.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path)
      : path_(std::move(path)), tmp_(path_ + ".tmp") {
    file_ = std::fopen(tmp_.c_str(), "wb");
  }

  ~AtomicFile() {
    if (file_ != nullptr) {
      std::fclose(file_);
      std::remove(tmp_.c_str());
    }
  }

  bool open() const { return file_ != nullptr; }
  uint64_t written() const { return written_; }

  void Write(const void* data, size_t n) {
    if (file_ == nullptr || failed_) return;
    if (std::fwrite(data, 1, n, file_) != n) failed_ = true;
    written_ += n;
  }

  /// Zero-pads to the next page boundary.
  void PadToPage() {
    static const char zeros[256] = {};
    while (written_ % kPageSize != 0 && !failed_) {
      size_t n = std::min<uint64_t>(sizeof(zeros),
                                    kPageSize - written_ % kPageSize);
      Write(zeros, n);
    }
  }

  Status Commit() {
    if (file_ == nullptr) {
      return Status::InvalidArgument("cannot open for write: " + tmp_);
    }
    if (!failed_ && std::fflush(file_) != 0) failed_ = true;
    if (!failed_ && ::fsync(::fileno(file_)) != 0) failed_ = true;
    if (std::fclose(file_) != 0) failed_ = true;
    file_ = nullptr;
    if (failed_) {
      std::remove(tmp_.c_str());
      return Status::Internal("write failed: " + tmp_);
    }
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
      std::remove(tmp_.c_str());
      return Status::Internal("rename failed: " + tmp_ + " -> " + path_);
    }
    // Best-effort directory fsync so the rename itself is durable.
    std::string dir = path_;
    size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      (void)::fsync(dfd);
      ::close(dfd);
    }
    return Status::OK();
  }

 private:
  std::string path_;
  std::string tmp_;
  std::FILE* file_ = nullptr;
  bool failed_ = false;
  uint64_t written_ = 0;
};

void WriteU32(AtomicFile& os, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.Write(buf, 4);
}

void WriteU64(AtomicFile& os, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.Write(buf, 8);
}

void WriteString(AtomicFile& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.Write(s.data(), s.size());
}

// ------------------------------------------------------- BLAS1 reading ---

bool ReadU32(std::istream& is, uint32_t* v) {
  char buf[4];
  if (!is.read(buf, 4)) return false;
  *v = 0;
  for (int i = 3; i >= 0; --i) {
    *v = (*v << 8) | static_cast<uint8_t>(buf[i]);
  }
  return true;
}

bool ReadU64(std::istream& is, uint64_t* v) {
  char buf[8];
  if (!is.read(buf, 8)) return false;
  *v = 0;
  for (int i = 7; i >= 0; --i) {
    *v = (*v << 8) | static_cast<uint8_t>(buf[i]);
  }
  return true;
}

/// Bytes between the stream position and the end of the file (the size is
/// measured once at open). Every count and length in the header is
/// preflighted against this before anything is allocated.
uint64_t BytesLeft(std::istream& is, uint64_t file_size) {
  const std::streamoff pos = is.tellg();
  if (pos < 0 || static_cast<uint64_t>(pos) > file_size) return 0;
  return file_size - static_cast<uint64_t>(pos);
}

bool ReadString(std::istream& is, uint64_t file_size, std::string* s) {
  uint32_t len;
  if (!ReadU32(is, &len)) return false;
  // A length that overruns the file is corruption, caught before the
  // resize allocates.
  if (len > BytesLeft(is, file_size)) return false;
  s->resize(len);
  return static_cast<bool>(is.read(s->data(), len));
}

/// Little-endian readers over an in-memory buffer (the BLASIDX2 header).
class BufReader {
 public:
  BufReader(const std::byte* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) {
      *v = (*v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 8;
    return true;
  }

  bool Raw(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const std::byte* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --------------------------------------------- BLASIDX2 shared helpers ---

/// Leaf layout of the SP tree — the one whose chain materializes records.
using SpLeaf = BPlusTree<NodeRecord, SpKey, SpKeyOf>::LeafNode;

struct TailSegment {
  uint64_t first_page = 0;  // file page index
  uint64_t page_count = 0;
  uint64_t byte_length = 0;
};

/// Everything in the fixed header, in file order.
struct Header2 {
  uint32_t max_depth = 0;
  uint64_t node_count = 0;
  uint64_t tag_count = 0;
  uint64_t value_count = 0;
  uint64_t pool_pages = 0;
  uint64_t summary_count = 0;
  BPlusTreeMeta trees[4];
  uint32_t first_value_page = 0;
  uint32_t value_page_count = 0;
  uint32_t first_perm_page = 0;
  uint32_t perm_page_count = 0;
  TailSegment tags, summary, value_index;
};

void WriteTreeMeta(AtomicFile& os, const BPlusTreeMeta& m) {
  WriteU32(os, m.root);
  WriteU32(os, m.first_leaf);
  WriteU64(os, m.size);
  WriteU32(os, static_cast<uint32_t>(m.height));
  WriteU32(os, m.first_page);
  WriteU32(os, m.page_count);
  WriteU32(os, 0);  // pad
}

bool ReadTreeMeta(BufReader& r, BPlusTreeMeta* m) {
  // Initialized: a short read short-circuits the chain before r.U32(&height)
  // ever runs, and the assignment below happens regardless.
  uint32_t height = 0;
  uint32_t pad = 0;
  bool ok = r.U32(&m->root) && r.U32(&m->first_leaf) && r.U64(&m->size) &&
            r.U32(&height) && r.U32(&m->first_page) && r.U32(&m->page_count) &&
            r.U32(&pad);
  m->height = static_cast<int32_t>(height);
  return ok;
}

void WriteTailSegment(AtomicFile& os, const TailSegment& s) {
  WriteU64(os, s.first_page);
  WriteU64(os, s.page_count);
  WriteU64(os, s.byte_length);
}

bool ReadTailSegment(BufReader& r, TailSegment* s) {
  return r.U64(&s->first_page) && r.U64(&s->page_count) &&
         r.U64(&s->byte_length);
}

uint64_t PagesFor(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }

/// Packs dictionary values (in id order) into value pages. Returns false
/// when a single value cannot fit one page.
bool BuildValuePages(const StringDict& dict, std::vector<Page>* pages,
                     std::vector<uint32_t>* first_ids) {
  std::vector<uint32_t> lens;  // current page's value sizes
  uint32_t page_first = 0;
  size_t byte_total = 0;
  auto flush = [&](uint32_t next_first) {
    Page page{};
    auto* header = page.As<ValuePageHeader>();
    header->count = static_cast<uint32_t>(lens.size());
    header->first_id = page_first;
    auto* offsets = reinterpret_cast<uint32_t*>(page.bytes.data() +
                                                sizeof(ValuePageHeader));
    uint32_t cursor = static_cast<uint32_t>(sizeof(ValuePageHeader) +
                                            (lens.size() + 1) * 4);
    for (size_t i = 0; i < lens.size(); ++i) {
      offsets[i] = cursor;
      const std::string& value = dict.Get(page_first +
                                          static_cast<uint32_t>(i));
      std::memcpy(page.bytes.data() + cursor, value.data(), value.size());
      cursor += static_cast<uint32_t>(value.size());
    }
    offsets[lens.size()] = cursor;
    first_ids->push_back(page_first);
    pages->push_back(page);
    lens.clear();
    byte_total = 0;
    page_first = next_first;
  };

  for (uint32_t id = 0; id < dict.size(); ++id) {
    const size_t len = dict.Get(id).size();
    if (len > kMaxPagedValue) return false;
    // Fits if header + (count+2) offsets + bytes stay within the page.
    if (!lens.empty() &&
        sizeof(ValuePageHeader) + (lens.size() + 2) * 4 + byte_total + len >
            kPageSize) {
      flush(id);
    }
    lens.push_back(static_cast<uint32_t>(len));
    byte_total += len;
  }
  if (!lens.empty()) flush(0);
  return true;
}

Status CorruptPaged(const std::string& path, const std::string& what) {
  return Status::Corruption("BLASIDX2 " + what + " in " + path);
}

}  // namespace

// --------------------------------------------------------- BLAS1 write ---

Status SaveSnapshot(const IndexSnapshot& snapshot, const std::string& path) {
  AtomicFile os(path);
  if (!os.open()) {
    return Status::InvalidArgument("cannot open for write: " + path +
                                   ".tmp");
  }

  os.Write(kMagic, sizeof(kMagic));
  WriteU32(os, static_cast<uint32_t>(snapshot.tags.size()));
  for (const std::string& tag : snapshot.tags) WriteString(os, tag);
  WriteU32(os, static_cast<uint32_t>(snapshot.max_depth));

  WriteU64(os, snapshot.records.size());
  for (const NodeRecord& rec : snapshot.records) {
    WriteU64(os, static_cast<uint64_t>(rec.plabel >> 64));
    WriteU64(os, static_cast<uint64_t>(rec.plabel));
    WriteU32(os, rec.start);
    WriteU32(os, rec.end);
    WriteU32(os, rec.tag);
    WriteU32(os, static_cast<uint32_t>(rec.level));
    WriteU32(os, rec.data);
  }

  WriteU64(os, snapshot.values.size());
  for (const std::string& value : snapshot.values) WriteString(os, value);

  return os.Commit();
}

// ------------------------------------------------------ BLASIDX2 write ---

Status SavePagedSnapshot(const PagedSnapshotParts& parts,
                         const std::string& path) {
  const NodeStore& store = *parts.store;
  const TagRegistry& tags = *parts.tags;
  const StringDict& dict = *parts.dict;
  const PagedStoreMeta store_meta = store.paged_meta();

  // Lay the dictionary out into value pages + the sorted-id permutation.
  std::vector<Page> value_pages;
  std::vector<uint32_t> first_ids;
  if (!BuildValuePages(dict, &value_pages, &first_ids)) {
    return Status::Unsupported(
        "a dictionary value exceeds one page; use the BLAS1 format");
  }
  std::vector<uint32_t> perm(dict.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&dict](uint32_t a, uint32_t b) {
    return dict.Get(a) < dict.Get(b);
  });
  const uint64_t perm_pages = PagesFor(perm.size() * sizeof(uint32_t));

  // Flatten the path summary in preorder (parents precede children).
  std::vector<PagedSummaryEntry> summary;
  {
    struct Item {
      const SummaryNode* node;
      uint32_t parent;
    };
    std::vector<Item> stack;
    const SummaryNode* root = parts.summary->root();
    for (auto it = root->children.rbegin(); it != root->children.rend();
         ++it) {
      stack.push_back({it->get(), kNoParent});
    }
    while (!stack.empty()) {
      Item item = stack.back();
      stack.pop_back();
      uint32_t index = static_cast<uint32_t>(summary.size());
      summary.push_back({item.parent, item.node->tag, item.node->count});
      for (auto it = item.node->children.rbegin();
           it != item.node->children.rend(); ++it) {
        stack.push_back({it->get(), index});
      }
    }
  }

  // Tail segment sizes (needed up front: the header is page 0).
  uint64_t tag_bytes = 0;
  for (TagId id = 1; id <= tags.size(); ++id) {
    tag_bytes += 4 + tags.Name(id).size();
  }
  const uint64_t summary_bytes = summary.size() * kSummaryEntryBytes;
  const uint64_t vpi_bytes = first_ids.size() * sizeof(uint32_t);

  const uint64_t tree_pages = store_meta.tree_pages;
  const uint64_t pool_pages =
      tree_pages + value_pages.size() + perm_pages;
  TailSegment tag_seg{1 + pool_pages, PagesFor(tag_bytes), tag_bytes};
  TailSegment sum_seg{tag_seg.first_page + tag_seg.page_count,
                      PagesFor(summary_bytes), summary_bytes};
  TailSegment vpi_seg{sum_seg.first_page + sum_seg.page_count,
                      PagesFor(vpi_bytes), vpi_bytes};

  AtomicFile os(path);
  if (!os.open()) {
    return Status::InvalidArgument("cannot open for write: " + path +
                                   ".tmp");
  }

  // --- header (file page 0) ---
  os.Write(kMagic2, sizeof(kMagic2));
  WriteU32(os, kVersion2);
  os.Write(&kEndianProbe, sizeof(kEndianProbe));  // native order, on purpose
  WriteU32(os, static_cast<uint32_t>(kPageSize));
  WriteU32(os, static_cast<uint32_t>(sizeof(NodeRecord)));
  WriteU32(os, static_cast<uint32_t>(sizeof(SpKey)));
  WriteU32(os, static_cast<uint32_t>(sizeof(SdKey)));
  WriteU32(os, static_cast<uint32_t>(sizeof(ValKey)));
  WriteU32(os, static_cast<uint32_t>(parts.max_depth));
  WriteU64(os, store_meta.record_count);
  WriteU64(os, tags.size());
  WriteU64(os, dict.size());
  WriteU64(os, pool_pages);
  WriteU64(os, summary.size());
  WriteTreeMeta(os, store_meta.sp);
  WriteTreeMeta(os, store_meta.sd);
  WriteTreeMeta(os, store_meta.value);
  WriteTreeMeta(os, store_meta.doc);
  WriteU32(os, static_cast<uint32_t>(tree_pages));
  WriteU32(os, static_cast<uint32_t>(value_pages.size()));
  WriteU32(os, static_cast<uint32_t>(tree_pages + value_pages.size()));
  WriteU32(os, static_cast<uint32_t>(perm_pages));
  WriteTailSegment(os, tag_seg);
  WriteTailSegment(os, sum_seg);
  WriteTailSegment(os, vpi_seg);
  os.PadToPage();

  // --- pool pages: the four trees, raw ---
  for (PageId pid = 0; pid < tree_pages; ++pid) {
    PageRef ref = store.pool().Peek(pid);
    if (!ref) return Status::Internal("unreadable pool page during save");
    os.Write(ref->bytes.data(), kPageSize);
  }
  // --- pool pages: value dictionary ---
  for (const Page& page : value_pages) {
    os.Write(page.bytes.data(), kPageSize);
  }
  // --- pool pages: sorted-id permutation ---
  for (size_t i = 0; i < perm.size(); i += kPermPerPage) {
    Page page{};
    size_t n = std::min(kPermPerPage, perm.size() - i);
    std::memcpy(page.bytes.data(), perm.data() + i, n * sizeof(uint32_t));
    os.Write(page.bytes.data(), kPageSize);
  }

  // --- tail segments ---
  for (TagId id = 1; id <= tags.size(); ++id) {
    WriteString(os, tags.Name(id));
  }
  os.PadToPage();
  for (const PagedSummaryEntry& entry : summary) {
    WriteU32(os, entry.parent);
    WriteU32(os, entry.tag);
    WriteU64(os, entry.count);
  }
  os.PadToPage();
  for (uint32_t first : first_ids) WriteU32(os, first);
  os.PadToPage();

  return os.Commit();
}

// ------------------------------------------------------- BLASIDX2 open ---

Result<PagedFile> PagedIndex::OpenPool() const {
  return PagedFile::Open(path, kPageSize, pool_pages);
}

Result<PagedIndex> OpenPagedSnapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open: " + path);
  is.seekg(0, std::ios::end);
  const std::streamoff end_pos = is.tellg();
  if (end_pos < 0) return Status::Corruption("unsizable file: " + path);
  const uint64_t file_size = static_cast<uint64_t>(end_pos);
  if (file_size < kPageSize) return CorruptPaged(path, "truncated header");
  is.seekg(0, std::ios::beg);

  Page header_page;
  if (!is.read(reinterpret_cast<char*>(header_page.bytes.data()),
               kPageSize)) {
    return CorruptPaged(path, "unreadable header");
  }
  BufReader r(header_page.bytes.data(), kPageSize);

  char magic[8];
  if (!r.Raw(magic, 8) || std::memcmp(magic, kMagic2, 8) != 0) {
    return CorruptPaged(path, "bad magic");
  }
  uint32_t version, endian, page_size, rec_size, sp_size, sd_size, val_size;
  if (!r.U32(&version) || version != kVersion2) {
    return CorruptPaged(path, "unsupported version");
  }
  if (!r.Raw(&endian, 4) || endian != kEndianProbe) {
    return CorruptPaged(path, "endianness mismatch");
  }
  if (!r.U32(&page_size) || page_size != kPageSize) {
    return CorruptPaged(path, "page size mismatch");
  }
  if (!r.U32(&rec_size) || rec_size != sizeof(NodeRecord) ||
      !r.U32(&sp_size) || sp_size != sizeof(SpKey) ||
      !r.U32(&sd_size) || sd_size != sizeof(SdKey) ||
      !r.U32(&val_size) || val_size != sizeof(ValKey)) {
    return CorruptPaged(path, "record/key layout mismatch");
  }

  Header2 h;
  if (!r.U32(&h.max_depth) || !r.U64(&h.node_count) || !r.U64(&h.tag_count) ||
      !r.U64(&h.value_count) || !r.U64(&h.pool_pages) ||
      !r.U64(&h.summary_count)) {
    return CorruptPaged(path, "truncated header counts");
  }
  for (auto& tree : h.trees) {
    if (!ReadTreeMeta(r, &tree)) {
      return CorruptPaged(path, "truncated tree metadata");
    }
  }
  if (!r.U32(&h.first_value_page) || !r.U32(&h.value_page_count) ||
      !r.U32(&h.first_perm_page) || !r.U32(&h.perm_page_count) ||
      !ReadTailSegment(r, &h.tags) || !ReadTailSegment(r, &h.summary) ||
      !ReadTailSegment(r, &h.value_index)) {
    return CorruptPaged(path, "truncated segment directory");
  }

  // ---- structural preflight: every range checked against the measured
  // file size (and against its own declared extent) before any allocation
  // sized by the file's claims. ----
  if (h.max_depth > 100000) return CorruptPaged(path, "absurd depth");
  if (h.node_count == 0) return CorruptPaged(path, "no records");
  const uint64_t file_pages = file_size / kPageSize;
  // Every count and byte length is bounded by the measured file size
  // FIRST, so none of the multiplications below can wrap and none of the
  // resize()/reserve() calls further down can be driven past it.
  if (h.node_count > file_size || h.tag_count > file_size ||
      h.value_count > file_size || h.summary_count > file_size ||
      h.tags.byte_length > file_size || h.summary.byte_length > file_size ||
      h.value_index.byte_length > file_size) {
    return CorruptPaged(path, "count exceeds file size");
  }
  if (h.pool_pages > file_pages || 1 + h.pool_pages > file_pages) {
    return CorruptPaged(path, "pool page range beyond file");
  }
  // Trees must tile a prefix of the pool page space in order.
  uint64_t next_page = 0;
  for (const auto& tree : h.trees) {
    if (tree.first_page != next_page) {
      return CorruptPaged(path, "tree segment not contiguous");
    }
    next_page += tree.page_count;
    if (tree.size != h.node_count) {
      return CorruptPaged(path, "tree size disagrees with record count");
    }
    if (tree.height < 0 || tree.height > 64 ||
        (tree.page_count == 0) != (tree.size == 0)) {
      return CorruptPaged(path, "implausible tree shape");
    }
    const uint64_t tree_end = uint64_t{tree.first_page} + tree.page_count;
    if (tree_end > h.pool_pages ||
        tree.root < tree.first_page || tree.root >= tree_end ||
        tree.first_leaf < tree.first_page || tree.first_leaf >= tree_end) {
      return CorruptPaged(path, "tree root/leaf outside its segment");
    }
  }
  const uint64_t tree_pages = next_page;
  // The record count can never exceed what the sp tree's pages can hold.
  if (h.node_count >
      uint64_t{h.trees[0].page_count} *
          BPlusTree<NodeRecord, SpKey, SpKeyOf>::kLeafCap) {
    return CorruptPaged(path, "record count exceeds tree capacity");
  }
  // The dictionary segments must follow the trees and fill the pool.
  if (h.first_value_page != tree_pages ||
      uint64_t{h.first_value_page} + h.value_page_count !=
          h.first_perm_page ||
      uint64_t{h.first_perm_page} + h.perm_page_count != h.pool_pages) {
    return CorruptPaged(path, "dictionary segments do not tile the pool");
  }
  if (h.perm_page_count !=
      PagesFor(h.value_count * sizeof(uint32_t))) {
    return CorruptPaged(path, "permutation segment size mismatch");
  }
  if ((h.value_count == 0) != (h.value_page_count == 0)) {
    return CorruptPaged(path, "value pages disagree with value count");
  }
  // Tail segments: in order, in bounds, byte lengths within their pages.
  uint64_t next_tail = 1 + h.pool_pages;
  for (const TailSegment* seg : {&h.tags, &h.summary, &h.value_index}) {
    if (seg->first_page != next_tail ||
        seg->page_count != PagesFor(seg->byte_length) ||
        seg->first_page + seg->page_count > file_pages) {
      return CorruptPaged(path, "tail segment out of bounds");
    }
    next_tail += seg->page_count;
  }
  // Count-vs-bytes preflight before any resize().
  if (h.tag_count * 4 > h.tags.byte_length ||
      h.summary_count * kSummaryEntryBytes != h.summary.byte_length ||
      h.value_page_count * sizeof(uint32_t) != h.value_index.byte_length) {
    return CorruptPaged(path, "segment byte length disagrees with count");
  }

  PagedIndex index;
  index.path = path;
  index.max_depth = static_cast<int>(h.max_depth);
  index.node_count = h.node_count;
  index.pool_pages = h.pool_pages;
  index.store_meta.sp = h.trees[0];
  index.store_meta.sd = h.trees[1];
  index.store_meta.value = h.trees[2];
  index.store_meta.doc = h.trees[3];
  index.store_meta.record_count = h.node_count;
  index.store_meta.tree_pages = tree_pages;
  index.dict_layout.count = h.value_count;
  index.dict_layout.first_value_page = h.first_value_page;
  index.dict_layout.value_page_count = h.value_page_count;
  index.dict_layout.first_perm_page = h.first_perm_page;
  index.dict_layout.perm_page_count = h.perm_page_count;

  // ---- eager tail segments ----
  auto read_tail = [&](const TailSegment& seg,
                       std::vector<char>* out) -> bool {
    out->resize(seg.byte_length);
    is.seekg(static_cast<std::streamoff>(seg.first_page * kPageSize),
             std::ios::beg);
    return seg.byte_length == 0 ||
           static_cast<bool>(is.read(out->data(),
                                     static_cast<std::streamsize>(
                                         seg.byte_length)));
  };

  std::vector<char> blob;
  if (!read_tail(h.tags, &blob)) return CorruptPaged(path, "short tag table");
  {
    BufReader tr(reinterpret_cast<const std::byte*>(blob.data()),
                 blob.size());
    index.tags.reserve(h.tag_count);
    for (uint64_t i = 0; i < h.tag_count; ++i) {
      uint32_t len;
      if (!tr.U32(&len) || len > blob.size()) {
        return CorruptPaged(path, "truncated tag table");
      }
      std::string name(len, '\0');
      if (!tr.Raw(name.data(), len)) {
        return CorruptPaged(path, "truncated tag name");
      }
      index.tags.push_back(std::move(name));
    }
  }

  if (!read_tail(h.summary, &blob)) {
    return CorruptPaged(path, "short summary segment");
  }
  {
    BufReader sr(reinterpret_cast<const std::byte*>(blob.data()),
                 blob.size());
    index.summary.reserve(h.summary_count);
    for (uint64_t i = 0; i < h.summary_count; ++i) {
      PagedSummaryEntry entry;
      if (!sr.U32(&entry.parent) || !sr.U32(&entry.tag) ||
          !sr.U64(&entry.count)) {
        return CorruptPaged(path, "truncated summary");
      }
      if (entry.parent != kNoParent && entry.parent >= i) {
        return CorruptPaged(path, "summary parent after child");
      }
      if (entry.tag == kSlashTag || entry.tag > h.tag_count) {
        return CorruptPaged(path, "summary tag out of range");
      }
      index.summary.push_back(entry);
    }
  }

  if (!read_tail(h.value_index, &blob)) {
    return CorruptPaged(path, "short value page index");
  }
  {
    BufReader vr(reinterpret_cast<const std::byte*>(blob.data()),
                 blob.size());
    index.dict_layout.page_first_ids.reserve(h.value_page_count);
    uint32_t prev = 0;
    for (uint64_t i = 0; i < h.value_page_count; ++i) {
      uint32_t first;
      if (!vr.U32(&first)) return CorruptPaged(path, "short value index");
      if ((i == 0 && first != 0) || (i > 0 && first <= prev) ||
          first >= h.value_count) {
        return CorruptPaged(path, "value page index not ascending");
      }
      prev = first;
      index.dict_layout.page_first_ids.push_back(first);
    }
  }

  return index;
}

// ------------------------------------------------------- BLAS1 loading ---

namespace {

/// Full materialization of a BLASIDX2 snapshot into an IndexSnapshot —
/// the FromIndexFile compatibility path (everything in memory, no paging).
Result<IndexSnapshot> MaterializePagedSnapshot(const std::string& path) {
  BLAS_ASSIGN_OR_RETURN(PagedIndex index, OpenPagedSnapshot(path));
  BLAS_ASSIGN_OR_RETURN(PagedFile pool, index.OpenPool());

  IndexSnapshot snapshot;
  snapshot.tags = std::move(index.tags);
  snapshot.max_depth = index.max_depth;

  // Walk the SP tree's leaf chain; every record lives there exactly once.
  snapshot.records.reserve(index.node_count);
  const BPlusTreeMeta& sp = index.store_meta.sp;
  const uint64_t sp_end = uint64_t{sp.first_page} + sp.page_count;
  Page page;
  PageId pid = sp.first_leaf;
  uint64_t pages_walked = 0;
  while (pid != kInvalidPage) {
    if (pid < sp.first_page || pid >= sp_end ||
        ++pages_walked > sp.page_count) {
      return CorruptPaged(path, "leaf chain escapes the sp segment");
    }
    BLAS_RETURN_NOT_OK(pool.Read(pid, &page));
    const auto* leaf = reinterpret_cast<const SpLeaf*>(page.bytes.data());
    using SpTree = BPlusTree<NodeRecord, SpKey, SpKeyOf>;
    if (leaf->is_leaf != 1 || leaf->count == 0 ||
        leaf->count > SpTree::kLeafCap ||
        snapshot.records.size() + leaf->count > index.node_count) {
      return CorruptPaged(path, "implausible leaf node");
    }
    snapshot.records.insert(snapshot.records.end(), leaf->records,
                            leaf->records + leaf->count);
    pid = leaf->next;
  }
  if (snapshot.records.size() != index.node_count) {
    return CorruptPaged(path, "leaf chain shorter than record count");
  }

  // Decode every value page.
  snapshot.values.reserve(index.dict_layout.count);
  for (uint32_t i = 0; i < index.dict_layout.value_page_count; ++i) {
    BLAS_RETURN_NOT_OK(
        pool.Read(index.dict_layout.first_value_page + i, &page));
    if (!DecodeValuePage(page, index.dict_layout.page_first_ids[i],
                         index.dict_layout.count, &snapshot.values)) {
      return CorruptPaged(path, "corrupt value page");
    }
  }
  if (snapshot.values.size() != index.dict_layout.count) {
    return CorruptPaged(path, "value pages shorter than value count");
  }
  return snapshot;
}

}  // namespace

Result<IndexSnapshot> LoadSnapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open: " + path);

  // Measure the file once; every untrusted count below is checked against
  // the bytes actually present before any allocation sized by it.
  is.seekg(0, std::ios::end);
  const std::streamoff end_pos = is.tellg();
  if (end_pos < 0) return Status::Corruption("unsizable file: " + path);
  const uint64_t file_size = static_cast<uint64_t>(end_pos);
  is.seekg(0, std::ios::beg);

  char magic[8];
  if (!is.read(magic, 8)) {
    return Status::Corruption("bad magic in " + path);
  }
  if (std::memcmp(magic, kMagic2, 8) == 0) {
    is.close();
    return MaterializePagedSnapshot(path);
  }
  if (std::memcmp(magic, kMagic, 8) != 0) {
    return Status::Corruption("bad magic in " + path);
  }

  IndexSnapshot snapshot;
  uint32_t num_tags;
  // Each tag costs at least its 4-byte length prefix.
  if (!ReadU32(is, &num_tags) ||
      uint64_t{num_tags} * 4 > BytesLeft(is, file_size)) {
    return Status::Corruption("bad tag count in " + path);
  }
  snapshot.tags.resize(num_tags);
  for (std::string& tag : snapshot.tags) {
    if (!ReadString(is, file_size, &tag)) {
      return Status::Corruption("truncated tags");
    }
  }
  uint32_t depth;
  if (!ReadU32(is, &depth) || depth > 100000) {
    return Status::Corruption("bad depth");
  }
  snapshot.max_depth = static_cast<int>(depth);

  uint64_t num_records;
  // An overstated count would otherwise resize() to a multi-TB buffer; a
  // record is fixed-width, so the exact remaining-byte bound is known.
  if (!ReadU64(is, &num_records) ||
      num_records > BytesLeft(is, file_size) / kRecordBytes) {
    return Status::Corruption("bad record count");
  }
  snapshot.records.resize(num_records);
  for (NodeRecord& rec : snapshot.records) {
    uint64_t hi, lo;
    uint32_t level;
    if (!ReadU64(is, &hi) || !ReadU64(is, &lo) || !ReadU32(is, &rec.start) ||
        !ReadU32(is, &rec.end) || !ReadU32(is, &rec.tag) ||
        !ReadU32(is, &level) || !ReadU32(is, &rec.data)) {
      return Status::Corruption("truncated records");
    }
    rec.plabel = (static_cast<u128>(hi) << 64) | lo;
    rec.level = static_cast<int32_t>(level);
  }

  uint64_t num_values;
  // Same preflight: each value costs at least its 4-byte length prefix.
  if (!ReadU64(is, &num_values) ||
      num_values > BytesLeft(is, file_size) / 4) {
    return Status::Corruption("bad value count");
  }
  snapshot.values.resize(num_values);
  for (std::string& value : snapshot.values) {
    if (!ReadString(is, file_size, &value)) {
      return Status::Corruption("truncated values");
    }
  }
  return snapshot;
}

}  // namespace blas

#ifndef BLAS_STORAGE_BPTREE_H_
#define BLAS_STORAGE_BPTREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace blas {

/// \brief Bulk-loaded, page-resident clustered B+ tree.
///
/// Leaves store full `Record`s sorted by `KeyOf::Get(record)`; internal
/// nodes store separator keys and child page ids. The tree is built once
/// from sorted data (the BLAS index generator is build-once/query-many) and
/// then serves point and range lookups whose page accesses are counted by
/// the owning BufferPool.
///
/// Requirements: `Record` and `Key` are trivially copyable; `Key` has
/// `operator<`; `KeyOf` exposes `static Key Get(const Record&)`.
template <typename Record, typename Key, typename KeyOf>
class BPlusTree {
 public:
  struct LeafNode {
    uint32_t is_leaf;  // 1
    uint32_t count;
    PageId next;
    uint32_t pad_;
    Record records[1];  // actually kLeafCap entries
  };
  struct InternalNode {
    uint32_t is_leaf;  // 0
    uint32_t count;    // number of keys; children = count + 1
    Key keys[1];       // actually kInternalCap entries
    // children array lives at a fixed offset after the key array.
  };

  static constexpr size_t kLeafHeaderSize =
      (sizeof(uint32_t) * 3 + sizeof(PageId) + alignof(Record) - 1) /
      alignof(Record) * alignof(Record);
  static constexpr size_t kLeafCap =
      (kPageSize - kLeafHeaderSize) / sizeof(Record);
  static constexpr size_t kInternalHeaderSize =
      (sizeof(uint32_t) * 2 + alignof(Key) - 1) / alignof(Key) * alignof(Key);
  // Keys and children share the remaining space.
  static constexpr size_t kInternalCap =
      (kPageSize - kInternalHeaderSize - sizeof(PageId)) /
      (sizeof(Key) + sizeof(PageId));

  static_assert(kLeafCap >= 2, "record too large for a page");
  static_assert(kInternalCap >= 2, "key too large for a page");

  BPlusTree() = default;

  /// Builds the tree from records sorted ascending by key. `pool` must
  /// outlive the tree.
  void Build(BufferPool* pool, const std::vector<Record>& sorted) {
    pool_ = pool;
    root_ = kInvalidPage;
    first_leaf_ = kInvalidPage;
    size_ = sorted.size();
    height_ = 0;
    if (sorted.empty()) return;

    // Level 0: leaves.
    std::vector<PageId> level_pages;
    std::vector<Key> level_keys;  // first key of each page
    size_t i = 0;
    PageId prev = kInvalidPage;
    while (i < sorted.size()) {
      size_t take = std::min(kLeafCap, sorted.size() - i);
      PageId pid = pool_->Allocate();
      auto* leaf = LeafAt(pool_->MutablePage(pid));
      leaf->is_leaf = 1;
      leaf->count = static_cast<uint32_t>(take);
      leaf->next = kInvalidPage;
      std::memcpy(leaf->records, sorted.data() + i, take * sizeof(Record));
      if (prev != kInvalidPage) {
        LeafAt(pool_->MutablePage(prev))->next = pid;
      } else {
        first_leaf_ = pid;
      }
      prev = pid;
      level_pages.push_back(pid);
      level_keys.push_back(KeyOf::Get(sorted[i]));
      i += take;
    }
    height_ = 1;

    // Upper levels.
    while (level_pages.size() > 1) {
      std::vector<PageId> next_pages;
      std::vector<Key> next_keys;
      size_t j = 0;
      while (j < level_pages.size()) {
        size_t children = std::min(kInternalCap + 1, level_pages.size() - j);
        PageId pid = pool_->Allocate();
        Page* page = pool_->MutablePage(pid);
        auto* node = InternalAt(page);
        node->is_leaf = 0;
        node->count = static_cast<uint32_t>(children - 1);
        PageId* kids = ChildrenArray(page);
        for (size_t c = 0; c < children; ++c) {
          kids[c] = level_pages[j + c];
          if (c > 0) node->keys[c - 1] = level_keys[j + c];
        }
        next_pages.push_back(pid);
        next_keys.push_back(level_keys[j]);
        j += children;
      }
      level_pages.swap(next_pages);
      level_keys.swap(next_keys);
      ++height_;
    }
    root_ = level_pages[0];
  }

  size_t size() const { return size_; }
  int height() const { return height_; }
  PageId root() const { return root_; }

  /// Forward iterator over leaf records; dereference is only valid while
  /// the underlying pool exists. Advancing across a page boundary fetches
  /// the next page (counted by the pool).
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const BufferPool* pool, PageId page, uint32_t slot)
        : pool_(pool), page_(page), slot_(slot) {
      if (page_ != kInvalidPage) leaf_ = LeafAt(pool_->Fetch(page_));
    }
    /// Positions on an already-fetched leaf (no extra page access).
    Iterator(const BufferPool* pool, PageId page, uint32_t slot,
             const LeafNode* leaf)
        : pool_(pool), page_(page), slot_(slot), leaf_(leaf) {}

    bool at_end() const { return page_ == kInvalidPage; }

    const Record& operator*() const {
      assert(!at_end());
      return leaf_->records[slot_];
    }
    const Record* operator->() const { return &operator*(); }

    Iterator& operator++() {
      ++slot_;
      if (slot_ >= leaf_->count) {
        page_ = leaf_->next;
        slot_ = 0;
        leaf_ = page_ == kInvalidPage ? nullptr : LeafAt(pool_->Fetch(page_));
      }
      return *this;
    }

   private:
    const BufferPool* pool_ = nullptr;
    PageId page_ = kInvalidPage;
    uint32_t slot_ = 0;
    const LeafNode* leaf_ = nullptr;
  };

  /// Iterator positioned at the first record with key >= `key`.
  /// Touches exactly one page per tree level.
  Iterator Seek(const Key& key) const {
    if (root_ == kInvalidPage) return Iterator();
    PageId pid = root_;
    const Page* page = pool_->Fetch(pid);
    while (page->As<uint32_t>()[0] == 0) {  // internal
      const auto* node = InternalAt(page);
      const Key* begin = node->keys;
      const Key* end = node->keys + node->count;
      size_t idx = static_cast<size_t>(
          std::upper_bound(begin, end, key) - begin);
      pid = ChildrenArray(page)[idx];
      page = pool_->Fetch(pid);
    }
    const auto* leaf = LeafAt(page);
    uint32_t lo = 0;
    uint32_t hi = leaf->count;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (KeyOf::Get(leaf->records[mid]) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= leaf->count) {
      // Key larger than everything in this leaf; step to the next one.
      return Iterator(pool_, leaf->next, 0);
    }
    return Iterator(pool_, pid, lo, leaf);
  }

  /// Iterator at the smallest record.
  Iterator Begin() const { return Iterator(pool_, first_leaf_, 0); }

  /// Uncounted full traversal in key order (maintenance/export paths;
  /// bypasses the buffer-pool statistics).
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    PageId pid = first_leaf_;
    while (pid != kInvalidPage) {
      const LeafNode* leaf = LeafAt(pool_->Peek(pid));
      for (uint32_t i = 0; i < leaf->count; ++i) fn(leaf->records[i]);
      pid = leaf->next;
    }
  }

 private:
  static LeafNode* LeafAt(Page* page) {
    return reinterpret_cast<LeafNode*>(page->bytes.data());
  }
  static const LeafNode* LeafAt(const Page* page) {
    return reinterpret_cast<const LeafNode*>(page->bytes.data());
  }
  static InternalNode* InternalAt(Page* page) {
    return reinterpret_cast<InternalNode*>(page->bytes.data());
  }
  static const InternalNode* InternalAt(const Page* page) {
    return reinterpret_cast<const InternalNode*>(page->bytes.data());
  }
  static PageId* ChildrenArray(Page* page) {
    return reinterpret_cast<PageId*>(page->bytes.data() +
                                     kInternalHeaderSize +
                                     kInternalCap * sizeof(Key));
  }
  static const PageId* ChildrenArray(const Page* page) {
    return reinterpret_cast<const PageId*>(page->bytes.data() +
                                           kInternalHeaderSize +
                                           kInternalCap * sizeof(Key));
  }

  BufferPool* pool_ = nullptr;
  PageId root_ = kInvalidPage;
  PageId first_leaf_ = kInvalidPage;
  size_t size_ = 0;
  int height_ = 0;
};

}  // namespace blas

#endif  // BLAS_STORAGE_BPTREE_H_

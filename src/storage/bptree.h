#ifndef BLAS_STORAGE_BPTREE_H_
#define BLAS_STORAGE_BPTREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace blas {

/// \brief Bulk-loaded, page-resident clustered B+ tree.
///
/// Leaves store full `Record`s sorted by `KeyOf::Get(record)`; internal
/// nodes store separator keys and child page ids. The tree is built once
/// from sorted data (the BLAS index generator is build-once/query-many) and
/// then serves point and range lookups whose page accesses are counted by
/// the owning BufferPool. A tree persisted in a BLASIDX2 snapshot is
/// reattached to a paged pool via `Attach` — no page is touched until a
/// lookup descends into it.
///
/// Requirements: `Record` and `Key` are trivially copyable; `Key` has
/// `operator<`; `KeyOf` exposes `static Key Get(const Record&)`.
template <typename Record, typename Key, typename KeyOf>
class BPlusTree {
 public:
  struct LeafNode {
    uint32_t is_leaf;  // 1
    uint32_t count;
    PageId next;
    uint32_t pad_;
    Record records[1];  // actually kLeafCap entries
  };
  struct InternalNode {
    uint32_t is_leaf;  // 0
    uint32_t count;    // number of keys; children = count + 1
    Key keys[1];       // actually kInternalCap entries
    // children array lives at a fixed offset after the key array.
  };

  static constexpr size_t kLeafHeaderSize =
      (sizeof(uint32_t) * 3 + sizeof(PageId) + alignof(Record) - 1) /
      alignof(Record) * alignof(Record);
  static constexpr size_t kLeafCap =
      (kPageSize - kLeafHeaderSize) / sizeof(Record);
  static constexpr size_t kInternalHeaderSize =
      (sizeof(uint32_t) * 2 + alignof(Key) - 1) / alignof(Key) * alignof(Key);
  // Keys and children share the remaining space.
  static constexpr size_t kInternalCap =
      (kPageSize - kInternalHeaderSize - sizeof(PageId)) /
      (sizeof(Key) + sizeof(PageId));

  static_assert(kLeafCap >= 2, "record too large for a page");
  static_assert(kInternalCap >= 2, "key too large for a page");

  BPlusTree() = default;

  /// Builds the tree from records sorted ascending by key. `pool` must
  /// outlive the tree.
  void Build(BufferPool* pool, const std::vector<Record>& sorted) {
    pool_ = pool;
    root_ = kInvalidPage;
    first_leaf_ = kInvalidPage;
    size_ = sorted.size();
    height_ = 0;
    if (sorted.empty()) return;

    // Level 0: leaves.
    std::vector<PageId> level_pages;
    std::vector<Key> level_keys;  // first key of each page
    size_t i = 0;
    PageId prev = kInvalidPage;
    while (i < sorted.size()) {
      size_t take = std::min(kLeafCap, sorted.size() - i);
      PageId pid = pool_->Allocate();
      auto* leaf = LeafAt(pool_->MutablePage(pid));
      leaf->is_leaf = 1;
      leaf->count = static_cast<uint32_t>(take);
      leaf->next = kInvalidPage;
      std::memcpy(leaf->records, sorted.data() + i, take * sizeof(Record));
      if (prev != kInvalidPage) {
        LeafAt(pool_->MutablePage(prev))->next = pid;
      } else {
        first_leaf_ = pid;
      }
      prev = pid;
      level_pages.push_back(pid);
      level_keys.push_back(KeyOf::Get(sorted[i]));
      i += take;
    }
    height_ = 1;

    // Upper levels.
    while (level_pages.size() > 1) {
      std::vector<PageId> next_pages;
      std::vector<Key> next_keys;
      size_t j = 0;
      while (j < level_pages.size()) {
        size_t children = std::min(kInternalCap + 1, level_pages.size() - j);
        PageId pid = pool_->Allocate();
        Page* page = pool_->MutablePage(pid);
        auto* node = InternalAt(page);
        node->is_leaf = 0;
        node->count = static_cast<uint32_t>(children - 1);
        PageId* kids = ChildrenArray(page);
        for (size_t c = 0; c < children; ++c) {
          kids[c] = level_pages[j + c];
          if (c > 0) node->keys[c - 1] = level_keys[j + c];
        }
        next_pages.push_back(pid);
        next_keys.push_back(level_keys[j]);
        j += children;
      }
      level_pages.swap(next_pages);
      level_keys.swap(next_keys);
      ++height_;
    }
    root_ = level_pages[0];
  }

  /// Reattaches a persisted tree to its (typically paged) pool: the
  /// metadata comes from the snapshot header, the pages from the pool on
  /// demand. No page access happens here.
  void Attach(BufferPool* pool, PageId root, PageId first_leaf,
              uint64_t size, int height) {
    pool_ = pool;
    root_ = root;
    first_leaf_ = first_leaf;
    size_ = size;
    height_ = height;
  }

  size_t size() const { return size_; }
  int height() const { return height_; }
  PageId root() const { return root_; }
  PageId first_leaf() const { return first_leaf_; }

  /// Number of leaf pages. Build allocates all leaves consecutively
  /// before any internal node, so they occupy exactly
  /// [first_leaf, first_leaf + leaf_pages()) — the contiguous range that
  /// bounds a forward scan's readahead window.
  size_t leaf_pages() const {
    return size_ == 0 ? 0 : (size_ + kLeafCap - 1) / kLeafCap;
  }

  /// True when the fetched page plausibly is a leaf of this tree — the
  /// snapshot preflight validates directories, not page payloads, so the
  /// tag and count are untrusted until checked (an overrun count would
  /// otherwise index far past the frame).
  static const LeafNode* ValidLeaf(const PageRef& ref) {
    if (!ref) return nullptr;
    const LeafNode* leaf = LeafAt(ref.get());
    if (leaf->is_leaf != 1 || leaf->count == 0 || leaf->count > kLeafCap) {
      assert(false && "corrupt leaf page");
      return nullptr;
    }
    return leaf;
  }

  /// Forward iterator over leaf records; dereference is only valid while
  /// the underlying pool exists. The iterator pins the leaf it stands on
  /// (the record it points at cannot be evicted under it); advancing
  /// across a page boundary fetches — and repins to — the next page
  /// (counted by the pool). A failed read or corrupt page ends the
  /// iteration. Move-only: the pin travels with it.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const BufferPool* pool, PageId page, uint32_t slot)
        : pool_(pool), page_(page), slot_(slot) {
      if (page_ != kInvalidPage) {
        ref_ = pool_->Fetch(page_);
        leaf_ = ValidLeaf(ref_);
        if (leaf_ == nullptr) page_ = kInvalidPage;  // corrupt/failed read
      }
    }
    /// Positions on an already-fetched leaf (no extra page access); takes
    /// over the caller's pin.
    Iterator(const BufferPool* pool, PageId page, uint32_t slot,
             PageRef ref)
        : pool_(pool), page_(page), slot_(slot), ref_(std::move(ref)) {
      leaf_ = ValidLeaf(ref_);
      if (leaf_ == nullptr) page_ = kInvalidPage;
    }

    Iterator(Iterator&& other) noexcept
        : pool_(other.pool_),
          page_(other.page_),
          slot_(other.slot_),
          ref_(std::move(other.ref_)),
          leaf_(other.leaf_) {
      other.page_ = kInvalidPage;
      other.leaf_ = nullptr;
    }
    Iterator& operator=(Iterator&& other) noexcept {
      if (this != &other) {
        pool_ = other.pool_;
        page_ = other.page_;
        slot_ = other.slot_;
        ref_ = std::move(other.ref_);
        leaf_ = other.leaf_;
        other.page_ = kInvalidPage;
        other.leaf_ = nullptr;
      }
      return *this;
    }

    bool at_end() const { return page_ == kInvalidPage; }

    /// Page the iterator currently stands on (kInvalidPage at end).
    /// Scans use this to anchor batched readahead: leaves are allocated
    /// consecutively by Build, so the pages ahead of a forward scan are
    /// the ids ahead of this one.
    PageId page() const { return page_; }

    const Record& operator*() const {
      assert(!at_end());
      return leaf_->records[slot_];
    }
    const Record* operator->() const { return &operator*(); }

    Iterator& operator++() {
      ++slot_;
      if (slot_ >= leaf_->count) {
        page_ = leaf_->next;
        slot_ = 0;
        if (page_ == kInvalidPage) {
          ref_ = PageRef();
          leaf_ = nullptr;
        } else {
          ref_ = pool_->Fetch(page_);
          leaf_ = ValidLeaf(ref_);
          if (leaf_ == nullptr) page_ = kInvalidPage;
        }
      }
      return *this;
    }

   private:
    const BufferPool* pool_ = nullptr;
    PageId page_ = kInvalidPage;
    uint32_t slot_ = 0;
    PageRef ref_;
    const LeafNode* leaf_ = nullptr;
  };

  /// Iterator positioned at the first record with key >= `key`.
  /// Touches exactly one page per tree level; the descent holds at most
  /// two pins at a time (hand-over-hand parent/child). Page payloads are
  /// untrusted (the snapshot preflight validates directories only): a
  /// node tag other than internal/leaf, an overrun key count, or a
  /// descent deeper than the recorded height — a corrupt child id could
  /// otherwise cycle among internal pages forever — all end the seek.
  Iterator Seek(const Key& key) const {
    if (root_ == kInvalidPage) return Iterator();
    PageId pid = root_;
    PageRef ref = pool_->Fetch(pid);
    if (!ref) return Iterator();
    int depth = 0;
    while (ref->template As<uint32_t>()[0] == 0) {  // internal
      const auto* node = InternalAt(ref.get());
      if (node->count > kInternalCap || ++depth >= height_) {
        assert(false && "corrupt internal page");
        return Iterator();
      }
      const Key* begin = node->keys;
      const Key* end = node->keys + node->count;
      size_t idx = static_cast<size_t>(
          std::upper_bound(begin, end, key) - begin);
      pid = ChildrenArray(ref.get())[idx];
      PageRef child = pool_->Fetch(pid);
      if (!child) return Iterator();
      ref = std::move(child);
    }
    const LeafNode* leaf = ValidLeaf(ref);
    if (leaf == nullptr) return Iterator();
    uint32_t lo = 0;
    uint32_t hi = leaf->count;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (KeyOf::Get(leaf->records[mid]) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= leaf->count) {
      // Key larger than everything in this leaf; step to the next one.
      return Iterator(pool_, leaf->next, 0);
    }
    return Iterator(pool_, pid, lo, std::move(ref));
  }

  /// Iterator at the smallest record.
  Iterator Begin() const { return Iterator(pool_, first_leaf_, 0); }

  /// Uncounted full traversal in key order (maintenance/export paths;
  /// bypasses the buffer-pool statistics). A corrupt page or a leaf
  /// chain longer than the pool (a cycle) ends the traversal.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    PageId pid = first_leaf_;
    size_t pages_walked = 0;
    while (pid != kInvalidPage && pages_walked++ < pool_->page_count()) {
      PageRef ref = pool_->Peek(pid);
      const LeafNode* leaf = ValidLeaf(ref);
      if (leaf == nullptr) break;
      for (uint32_t i = 0; i < leaf->count; ++i) fn(leaf->records[i]);
      pid = leaf->next;
    }
  }

 private:
  static LeafNode* LeafAt(Page* page) {
    return reinterpret_cast<LeafNode*>(page->bytes.data());
  }
  static const LeafNode* LeafAt(const Page* page) {
    return reinterpret_cast<const LeafNode*>(page->bytes.data());
  }
  static InternalNode* InternalAt(Page* page) {
    return reinterpret_cast<InternalNode*>(page->bytes.data());
  }
  static const InternalNode* InternalAt(const Page* page) {
    return reinterpret_cast<const InternalNode*>(page->bytes.data());
  }
  static PageId* ChildrenArray(Page* page) {
    return reinterpret_cast<PageId*>(page->bytes.data() +
                                     kInternalHeaderSize +
                                     kInternalCap * sizeof(Key));
  }
  static const PageId* ChildrenArray(const Page* page) {
    return reinterpret_cast<const PageId*>(page->bytes.data() +
                                           kInternalHeaderSize +
                                           kInternalCap * sizeof(Key));
  }

  BufferPool* pool_ = nullptr;
  PageId root_ = kInvalidPage;
  PageId first_leaf_ = kInvalidPage;
  size_t size_ = 0;
  int height_ = 0;
};

}  // namespace blas

#endif  // BLAS_STORAGE_BPTREE_H_

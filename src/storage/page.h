#ifndef BLAS_STORAGE_PAGE_H_
#define BLAS_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace blas {

/// Fixed page size of the storage layer (bytes).
inline constexpr size_t kPageSize = 8192;

/// Identifier of a page within a BufferPool. kInvalidPage marks "none".
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// \brief How a BufferPool turns page ids into page bytes (the PageSource
/// seam; see storage/page_source.h).
///
/// * `kInMemory` — the build-time page array with the counting LRU that
///   models disk accesses. Never selected via StorageOptions; it is what
///   the in-memory BufferPool constructor builds.
/// * `kPread` — demand paging: a miss preads the page into an owned frame,
///   eviction is second-chance over the frames.
/// * `kMmap` — the segment file is mapped once at open; fetches return
///   zero-copy refs over the mapping and eviction is
///   `madvise(MADV_DONTNEED)` over mapped-resident pages. Requires the
///   backing file to be immutable while mapped (published BLASIDX2
///   segments are).
/// * `kDefault` — resolve from the BLAS_STORAGE_BACKEND environment
///   variable ("mmap" or "pread"), falling back to kPread.
enum class StorageBackend : uint8_t {
  kDefault = 0,
  kInMemory,
  kPread,
  kMmap,
};

/// \brief One fixed-size storage page.
///
/// Pages are opaque byte containers; the B+-tree layouts reinterpret them.
/// Alignment is 64 so any POD node layout (including 128-bit keys) can be
/// placed at offset 0.
struct alignas(64) Page {
  std::array<std::byte, kPageSize> bytes{};

  template <typename T>
  T* As() {
    static_assert(sizeof(T) <= kPageSize, "layout exceeds page size");
    return reinterpret_cast<T*>(bytes.data());
  }
  template <typename T>
  const T* As() const {
    static_assert(sizeof(T) <= kPageSize, "layout exceeds page size");
    return reinterpret_cast<const T*>(bytes.data());
  }
};

}  // namespace blas

#endif  // BLAS_STORAGE_PAGE_H_

#ifndef BLAS_STORAGE_PAGE_H_
#define BLAS_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace blas {

/// Fixed page size of the storage layer (bytes).
inline constexpr size_t kPageSize = 8192;

/// Identifier of a page within a BufferPool. kInvalidPage marks "none".
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// \brief One fixed-size storage page.
///
/// Pages are opaque byte containers; the B+-tree layouts reinterpret them.
/// Alignment is 64 so any POD node layout (including 128-bit keys) can be
/// placed at offset 0.
struct alignas(64) Page {
  std::array<std::byte, kPageSize> bytes{};

  template <typename T>
  T* As() {
    static_assert(sizeof(T) <= kPageSize, "layout exceeds page size");
    return reinterpret_cast<T*>(bytes.data());
  }
  template <typename T>
  const T* As() const {
    static_assert(sizeof(T) <= kPageSize, "layout exceeds page size");
    return reinterpret_cast<const T*>(bytes.data());
  }
};

}  // namespace blas

#endif  // BLAS_STORAGE_PAGE_H_

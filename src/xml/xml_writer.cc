#include "xml/xml_writer.h"

namespace blas {

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '&':
        out.append("&amp;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '&':
        out.append("&amp;");
        break;
      case '"':
        out.append("&quot;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void WriteNode(const DomNode* node, std::string* out) {
  out->push_back('<');
  out->append(node->tag);
  // Attribute children first (they were recorded in document order).
  for (const auto& child : node->children) {
    if (!child->is_attribute()) continue;
    out->push_back(' ');
    out->append(child->tag.substr(1));  // drop '@'
    out->append("=\"");
    out->append(EscapeAttribute(child->text));
    out->push_back('"');
  }
  out->push_back('>');
  if (!node->text.empty()) out->append(EscapeText(node->text));
  for (const auto& child : node->children) {
    if (child->is_attribute()) continue;
    WriteNode(child.get(), out);
  }
  out->append("</");
  out->append(node->tag);
  out->push_back('>');
}

}  // namespace

std::string WriteXml(const DomTree& tree) {
  std::string out;
  if (tree.root() != nullptr) WriteNode(tree.root(), &out);
  return out;
}

std::string WriteXml(const DomNode& node) {
  std::string out;
  WriteNode(&node, &out);
  return out;
}

void XmlTextSink::OnStartElement(std::string_view name,
                                 const std::vector<XmlAttribute>& attributes) {
  out_.push_back('<');
  out_.append(name);
  for (const XmlAttribute& attr : attributes) {
    out_.push_back(' ');
    out_.append(attr.name);
    out_.append("=\"");
    out_.append(EscapeAttribute(attr.value));
    out_.push_back('"');
  }
  out_.push_back('>');
}

void XmlTextSink::OnEndElement(std::string_view name) {
  out_.append("</");
  out_.append(name);
  out_.push_back('>');
}

void XmlTextSink::OnText(std::string_view text) {
  out_.append(EscapeText(text));
}

}  // namespace blas

#ifndef BLAS_XML_SAX_H_
#define BLAS_XML_SAX_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace blas {

/// One parsed XML attribute.
struct XmlAttribute {
  std::string name;
  std::string value;
};

/// \brief SAX event consumer interface.
///
/// The BLAS index generator (labeling::Labeler), the DOM builder and the
/// test fixtures all implement this interface and are driven by SaxParser
/// (or directly by the synthetic data generators, which emit events without
/// materializing XML text).
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  /// Called once before the first event.
  virtual void OnStartDocument() {}
  /// Called once after the last event.
  virtual void OnEndDocument() {}

  /// Start tag. `attributes` are in document order.
  virtual void OnStartElement(std::string_view name,
                              const std::vector<XmlAttribute>& attributes) = 0;
  /// End tag (also emitted for self-closing elements).
  virtual void OnEndElement(std::string_view name) = 0;
  /// Character data with entities already decoded. Whitespace-only text
  /// between elements is suppressed by the parser.
  virtual void OnText(std::string_view text) = 0;
};

}  // namespace blas

#endif  // BLAS_XML_SAX_H_

#ifndef BLAS_XML_SAX_PARSER_H_
#define BLAS_XML_SAX_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/sax.h"

namespace blas {

/// \brief Streaming (SAX-style) XML parser.
///
/// Supports the XML subset needed for the paper's datasets: elements,
/// attributes, character data, predefined and numeric entity references,
/// CDATA sections, comments, processing instructions and an optional
/// internal-subset-free DOCTYPE. Namespaces are treated literally (the
/// prefix is part of the tag name). The parser enforces well-formedness
/// (tag balance) and reports the byte offset of any error.
class SaxParser {
 public:
  /// Parses `input` end-to-end, emitting events into `handler`.
  /// On error, a ParseError status with offset information is returned and
  /// the handler may have received a prefix of the events.
  Status Parse(std::string_view input, SaxHandler* handler);
};

/// Decodes XML entity references in `text` (&lt; &gt; &amp; &apos; &quot;
/// and numeric &#dd; / &#xhh; forms, UTF-8 encoded). Unknown entities are
/// an error.
Status DecodeEntities(std::string_view text, std::string* out);

}  // namespace blas

#endif  // BLAS_XML_SAX_PARSER_H_

#include "xml/sax_parser.h"

#include <cstdint>
#include <vector>

#include "common/string_util.h"

namespace blas {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Internal cursor over the input with error reporting by offset.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  size_t pos() const { return pos_; }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t delta) const {
    size_t p = pos_ + delta;
    return p < input_.size() ? input_[p] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  std::string_view Remaining() const { return input_.substr(pos_); }
  std::string_view Slice(size_t begin, size_t end) const {
    return input_.substr(begin, end - begin);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

class ParserImpl {
 public:
  ParserImpl(std::string_view input, SaxHandler* handler)
      : cur_(input), handler_(handler) {}

  Status Run() {
    handler_->OnStartDocument();
    BLAS_RETURN_NOT_OK(SkipProlog());
    if (cur_.AtEnd() || cur_.Peek() != '<') {
      return cur_.Error("expected root element");
    }
    BLAS_RETURN_NOT_OK(ParseContent(/*depth=*/0));
    // Trailing misc: comments / PIs / whitespace only.
    BLAS_RETURN_NOT_OK(SkipMisc());
    if (!cur_.AtEnd()) return cur_.Error("content after root element");
    handler_->OnEndDocument();
    return Status::OK();
  }

 private:
  Status SkipProlog() {
    while (true) {
      cur_.SkipSpace();
      if (cur_.Consume("<?")) {
        BLAS_RETURN_NOT_OK(SkipUntil("?>"));
      } else if (cur_.Consume("<!--")) {
        BLAS_RETURN_NOT_OK(SkipUntil("-->"));
      } else if (cur_.Consume("<!DOCTYPE")) {
        BLAS_RETURN_NOT_OK(SkipDoctype());
      } else {
        return Status::OK();
      }
    }
  }

  Status SkipMisc() {
    while (true) {
      cur_.SkipSpace();
      if (cur_.Consume("<?")) {
        BLAS_RETURN_NOT_OK(SkipUntil("?>"));
      } else if (cur_.Consume("<!--")) {
        BLAS_RETURN_NOT_OK(SkipUntil("-->"));
      } else {
        return Status::OK();
      }
    }
  }

  Status SkipDoctype() {
    // Skip to the matching '>' allowing one level of [...] internal subset.
    int bracket = 0;
    while (!cur_.AtEnd()) {
      char c = cur_.Peek();
      cur_.Advance();
      if (c == '[') ++bracket;
      if (c == ']') --bracket;
      if (c == '>' && bracket <= 0) return Status::OK();
    }
    return cur_.Error("unterminated DOCTYPE");
  }

  Status SkipUntil(std::string_view token) {
    while (!cur_.AtEnd()) {
      if (cur_.Consume(token)) return Status::OK();
      cur_.Advance();
    }
    return cur_.Error(std::string("unterminated construct, expected ") +
                      std::string(token));
  }

  Status ParseName(std::string* out) {
    if (cur_.AtEnd() || !IsNameStartChar(cur_.Peek())) {
      return cur_.Error("expected name");
    }
    size_t begin = cur_.pos();
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) cur_.Advance();
    *out = std::string(cur_.Slice(begin, cur_.pos()));
    return Status::OK();
  }

  Status ParseAttributes(std::vector<XmlAttribute>* attrs, bool* self_close) {
    attrs->clear();
    *self_close = false;
    while (true) {
      cur_.SkipSpace();
      if (cur_.AtEnd()) return cur_.Error("unterminated start tag");
      if (cur_.Consume("/>")) {
        *self_close = true;
        return Status::OK();
      }
      if (cur_.Consume(">")) return Status::OK();
      XmlAttribute attr;
      BLAS_RETURN_NOT_OK(ParseName(&attr.name));
      cur_.SkipSpace();
      if (!cur_.Consume("=")) return cur_.Error("expected '=' in attribute");
      cur_.SkipSpace();
      if (cur_.AtEnd()) return cur_.Error("unterminated attribute");
      char quote = cur_.Peek();
      if (quote != '"' && quote != '\'') {
        return cur_.Error("expected quoted attribute value");
      }
      cur_.Advance();
      size_t begin = cur_.pos();
      while (!cur_.AtEnd() && cur_.Peek() != quote) cur_.Advance();
      if (cur_.AtEnd()) return cur_.Error("unterminated attribute value");
      std::string decoded;
      BLAS_RETURN_NOT_OK(
          DecodeEntities(cur_.Slice(begin, cur_.pos()), &decoded));
      attr.value = std::move(decoded);
      cur_.Advance();  // closing quote
      attrs->push_back(std::move(attr));
    }
  }

  /// Parses one element (cursor at '<') and its content recursively.
  Status ParseContent(int depth) {
    if (depth > kMaxDepth) return cur_.Error("document too deep");
    if (!cur_.Consume("<")) return cur_.Error("expected '<'");
    std::string name;
    BLAS_RETURN_NOT_OK(ParseName(&name));
    std::vector<XmlAttribute> attrs;
    bool self_close = false;
    BLAS_RETURN_NOT_OK(ParseAttributes(&attrs, &self_close));
    handler_->OnStartElement(name, attrs);
    if (self_close) {
      handler_->OnEndElement(name);
      return Status::OK();
    }

    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      // Suppress whitespace-only runs between markup.
      if (!Trim(pending_text).empty()) handler_->OnText(pending_text);
      pending_text.clear();
    };

    while (true) {
      if (cur_.AtEnd()) return cur_.Error("unterminated element " + name);
      if (cur_.Peek() == '<') {
        if (cur_.PeekAt(1) == '/') {
          flush_text();
          cur_.Advance(2);
          std::string end_name;
          BLAS_RETURN_NOT_OK(ParseName(&end_name));
          cur_.SkipSpace();
          if (!cur_.Consume(">")) return cur_.Error("expected '>' in end tag");
          if (end_name != name) {
            return cur_.Error("mismatched end tag </" + end_name +
                              ">, expected </" + name + ">");
          }
          handler_->OnEndElement(name);
          return Status::OK();
        }
        if (cur_.Consume("<!--")) {
          flush_text();
          BLAS_RETURN_NOT_OK(SkipUntil("-->"));
          continue;
        }
        if (cur_.Consume("<![CDATA[")) {
          size_t begin = cur_.pos();
          BLAS_RETURN_NOT_OK(SkipUntil("]]>"));
          pending_text.append(cur_.Slice(begin, cur_.pos() - 3));
          continue;
        }
        if (cur_.Consume("<?")) {
          flush_text();
          BLAS_RETURN_NOT_OK(SkipUntil("?>"));
          continue;
        }
        flush_text();
        BLAS_RETURN_NOT_OK(ParseContent(depth + 1));
        continue;
      }
      // Character data run.
      size_t begin = cur_.pos();
      while (!cur_.AtEnd() && cur_.Peek() != '<') cur_.Advance();
      std::string decoded;
      BLAS_RETURN_NOT_OK(
          DecodeEntities(cur_.Slice(begin, cur_.pos()), &decoded));
      pending_text.append(decoded);
    }
  }

  static constexpr int kMaxDepth = 512;

  Cursor cur_;
  SaxHandler* handler_;
};

}  // namespace

Status DecodeEntities(std::string_view text, std::string* out) {
  out->clear();
  out->reserve(text.size());
  for (size_t i = 0; i < text.size();) {
    char c = text[i];
    if (c != '&') {
      out->push_back(c);
      ++i;
      continue;
    }
    size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t cp = 0;
      bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      std::string_view digits = entity.substr(hex ? 2 : 1);
      if (digits.empty()) return Status::ParseError("empty character ref");
      for (char d : digits) {
        uint32_t v;
        if (d >= '0' && d <= '9') {
          v = static_cast<uint32_t>(d - '0');
        } else if (hex && d >= 'a' && d <= 'f') {
          v = static_cast<uint32_t>(d - 'a' + 10);
        } else if (hex && d >= 'A' && d <= 'F') {
          v = static_cast<uint32_t>(d - 'A' + 10);
        } else {
          return Status::ParseError("bad character reference &" +
                                    std::string(entity) + ";");
        }
        cp = cp * (hex ? 16 : 10) + v;
        if (cp > 0x10FFFF) {
          return Status::ParseError("character reference out of range");
        }
      }
      AppendUtf8(cp, out);
    } else {
      return Status::ParseError("unknown entity &" + std::string(entity) +
                                ";");
    }
    i = semi + 1;
  }
  return Status::OK();
}

Status SaxParser::Parse(std::string_view input, SaxHandler* handler) {
  ParserImpl impl(input, handler);
  return impl.Run();
}

}  // namespace blas

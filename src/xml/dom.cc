#include "xml/dom.h"

#include <utility>

#include "xml/sax_parser.h"

namespace blas {

std::string DomTree::SourcePath(const DomNode* node) {
  std::vector<const DomNode*> chain;
  for (const DomNode* n = node; n != nullptr; n = n->parent) {
    chain.push_back(n);
  }
  std::string path;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    path.push_back('/');
    path.append((*it)->tag);
  }
  return path;
}

void DomBuilder::OnStartDocument() {
  tree_ = DomTree();
  stack_.clear();
  next_pos_ = 1;
  done_ = false;
}

void DomBuilder::OnStartElement(std::string_view name,
                                const std::vector<XmlAttribute>& attributes) {
  auto node = std::make_unique<DomNode>();
  node->kind = DomNode::Kind::kElement;
  node->tag = std::string(name);
  node->start = next_pos_++;
  DomNode* raw = node.get();
  if (stack_.empty()) {
    node->level = 1;
    tree_.root_ = std::move(node);
  } else {
    DomNode* parent = stack_.back();
    node->parent = parent;
    node->level = parent->level + 1;
    parent->children.push_back(std::move(node));
  }
  tree_.node_count_++;
  if (raw->level > tree_.max_depth_) tree_.max_depth_ = raw->level;
  stack_.push_back(raw);

  for (const XmlAttribute& attr : attributes) {
    auto anode = std::make_unique<DomNode>();
    anode->kind = DomNode::Kind::kAttribute;
    anode->tag = "@" + attr.name;
    anode->text = attr.value;
    anode->parent = raw;
    anode->level = raw->level + 1;
    anode->start = next_pos_++;
    next_pos_++;  // value unit
    anode->end = next_pos_++;
    tree_.node_count_++;
    if (anode->level > tree_.max_depth_) tree_.max_depth_ = anode->level;
    raw->children.push_back(std::move(anode));
  }
}

void DomBuilder::OnEndElement(std::string_view /*name*/) {
  if (stack_.empty()) return;  // Parser guarantees balance; be defensive.
  DomNode* node = stack_.back();
  node->end = next_pos_++;
  stack_.pop_back();
  if (stack_.empty()) done_ = true;
}

void DomBuilder::OnText(std::string_view text) {
  if (stack_.empty()) return;
  DomNode* node = stack_.back();
  node->text.append(text);
  next_pos_++;  // text unit
}

Result<DomTree> DomBuilder::Take() {
  if (!done_ || tree_.root_ == nullptr) {
    return Status::Internal("DomBuilder: document incomplete");
  }
  return std::move(tree_);
}

Result<DomTree> ParseDom(std::string_view xml) {
  DomBuilder builder;
  SaxParser parser;
  BLAS_RETURN_NOT_OK(parser.Parse(xml, &builder));
  return builder.Take();
}

}  // namespace blas

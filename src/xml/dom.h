#ifndef BLAS_XML_DOM_H_
#define BLAS_XML_DOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "xml/sax.h"

namespace blas {

/// \brief In-memory XML tree node.
///
/// Attributes are modeled as element-like children whose tag is "@name"
/// (the paper counts attribute nodes; XPath attribute steps become `@name`
/// name tests). Text content is folded into `text` of the owning element,
/// mirroring the `data` column of the BLAS relation.
struct DomNode {
  enum class Kind { kElement, kAttribute };

  Kind kind = Kind::kElement;
  /// Element tag, or "@name" for attributes.
  std::string tag;
  /// Concatenated direct character data (attribute value for attributes).
  std::string text;

  DomNode* parent = nullptr;
  std::vector<std::unique_ptr<DomNode>> children;

  /// Depth of the node; the root element has level 1 (the paper defines
  /// level as the length of the path from the root).
  int level = 0;
  /// D-label positions: each start tag, end tag and text run is one unit.
  uint32_t start = 0;
  uint32_t end = 0;

  bool is_attribute() const { return kind == Kind::kAttribute; }
};

/// \brief Owning XML document tree with position/level annotations.
///
/// Serves as the ground-truth structure for the naive XPath evaluator and
/// for differential tests against the labeled relational form.
class DomTree {
 public:
  DomTree() = default;
  DomTree(DomTree&&) = default;
  DomTree& operator=(DomTree&&) = default;
  DomTree(const DomTree&) = delete;
  DomTree& operator=(const DomTree&) = delete;

  const DomNode* root() const { return root_.get(); }
  DomNode* mutable_root() { return root_.get(); }

  /// Number of element + attribute nodes.
  size_t node_count() const { return node_count_; }
  /// Length of the longest simple path (root = 1).
  int max_depth() const { return max_depth_; }

  /// Pre-order traversal visiting every element/attribute node.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (root_) ForEachImpl(root_.get(), fn);
  }

  /// Returns the simple path of `node` as "/t1/t2/.../tk".
  static std::string SourcePath(const DomNode* node);

 private:
  friend class DomBuilder;

  template <typename Fn>
  static void ForEachImpl(const DomNode* node, Fn&& fn) {
    fn(node);
    for (const auto& child : node->children) ForEachImpl(child.get(), fn);
  }

  std::unique_ptr<DomNode> root_;
  size_t node_count_ = 0;
  int max_depth_ = 0;
};

/// \brief SAX handler that materializes a DomTree.
///
/// Position counting matches labeling::Labeler exactly: every element start
/// tag, end tag and text run is one unit; each attribute occupies three
/// units (start, value, end) directly after its owner's start tag.
class DomBuilder : public SaxHandler {
 public:
  void OnStartDocument() override;
  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes) override;
  void OnEndElement(std::string_view name) override;
  void OnText(std::string_view text) override;

  /// Takes the finished tree. Returns an error if the document was empty
  /// or unbalanced.
  Result<DomTree> Take();

 private:
  DomTree tree_;
  std::vector<DomNode*> stack_;
  uint32_t next_pos_ = 1;
  bool done_ = false;
};

/// Convenience: parses XML text into a DomTree.
Result<DomTree> ParseDom(std::string_view xml);

}  // namespace blas

#endif  // BLAS_XML_DOM_H_

#ifndef BLAS_XML_XML_WRITER_H_
#define BLAS_XML_XML_WRITER_H_

#include <string>
#include <string_view>

#include "xml/dom.h"
#include "xml/sax.h"

namespace blas {

/// Escapes text for use as XML character data.
std::string EscapeText(std::string_view text);
/// Escapes text for use inside a double-quoted attribute value.
std::string EscapeAttribute(std::string_view text);

/// Serializes a DomTree back to XML text (attributes inline, character data
/// before child elements). Round-trips through SaxParser/DomBuilder.
std::string WriteXml(const DomTree& tree);

/// Serializes one element subtree in the same canonical form (ground truth
/// for the DOM-free Projection::kSubtree reconstruction).
std::string WriteXml(const DomNode& node);

/// \brief SAX handler that renders events back into XML text.
///
/// The synthetic data generators drive this to produce on-disk corpora and
/// parser test fixtures.
class XmlTextSink : public SaxHandler {
 public:
  void OnStartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes) override;
  void OnEndElement(std::string_view name) override;
  void OnText(std::string_view text) override;

  const std::string& text() const { return out_; }
  std::string TakeText() { return std::move(out_); }

 private:
  std::string out_;
};

}  // namespace blas

#endif  // BLAS_XML_XML_WRITER_H_

#ifndef BLAS_BLAS_QUERY_OPTIONS_H_
#define BLAS_BLAS_QUERY_OPTIONS_H_

#include <cstdint>
#include <string>

#include "translate/decomposition.h"

namespace blas {

/// Query engine selector (the paper evaluates both, sections 5.2/5.3).
enum class Engine {
  kRelational,  // RDBMS-style executor with materialized D-joins
  kTwig,        // holistic twig join over element streams
  kAuto,        // cost-based choice per plan (ChooseEngine)
};

const char* EngineName(Engine e);

/// Per-query execution options.
struct ExecOptions {
  /// Reorder D-joins by estimated input cardinality (statistics from the
  /// path summary) before execution. Off by default: the paper executes
  /// plans in decomposition order, and the ablation benchmark measures
  /// the difference.
  bool optimize_join_order = false;
};

/// What a cursor materializes for each match, directly from the NodeStore
/// and StringDict (no retained DOM needed).
enum class Projection {
  /// Positions only: start / end / level (the D-label). Match::content is
  /// empty. The default, and the only mode whose Drain() path does no
  /// per-match record lookups.
  kDLabel,
  /// Match::content is the element (or "@attribute") tag name.
  kTag,
  /// Match::content is the root-to-node simple path "/t1/t2/.../tk",
  /// decoded from the node's P-label.
  kPath,
  /// Match::content is the node's direct character data (attribute value
  /// for attributes; empty for nodes without data).
  kValue,
  /// Match::content is the canonical XML serialization of the node's
  /// subtree (attributes inline, character data before child elements) —
  /// reconstructed from the document-order index, byte-identical to
  /// serializing the corresponding DOM subtree.
  kSubtree,
};

const char* ProjectionName(Projection p);

/// \brief Unified per-query knobs of the cursor API. Replaces the
/// positional (translator, engine, ExecOptions) triple across BlasSystem,
/// QueryService and BlasCollection.
struct QueryOptions {
  Translator translator = Translator::kPushUp;
  /// kAuto resolves per plan via the cost model.
  Engine engine = Engine::kAuto;
  ExecOptions exec;
  /// Deliver at most `limit` matches; 0 means unlimited. A bounded cursor
  /// uses the streaming producers and terminates early: scans stop as soon
  /// as `offset + limit` matches have been produced, instead of paying for
  /// every answer that exists.
  uint64_t limit = 0;
  /// Skip the first `offset` matches (in document order) before
  /// delivering.
  uint64_t offset = 0;
  /// Per-match content materialization.
  Projection projection = Projection::kDLabel;
  /// Collect a per-stage trace (span tree) for this query. The service
  /// attaches it to the QueryResult and its recent-traces ring; see
  /// QueryService and obs/trace.h. Queries may also be traced without
  /// this flag via ServiceOptions::trace_sample_every.
  bool trace = false;
};

/// One delivered answer: the match's D-label plus projected content.
struct Match {
  uint32_t start = 0;
  uint32_t end = 0;
  int32_t level = 0;
  /// Per QueryOptions::projection; empty under Projection::kDLabel.
  std::string content;
};

}  // namespace blas

#endif  // BLAS_BLAS_QUERY_OPTIONS_H_

#ifndef BLAS_BLAS_CURSOR_H_
#define BLAS_BLAS_CURSOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "blas/projection.h"
#include "blas/query_options.h"
#include "common/result.h"
#include "obs/trace.h"
#include "exec/executor.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "storage/node_store.h"
#include "storage/string_dict.h"

namespace blas {

class PathSummary;

/// One fully materialized answer: result node start positions plus all
/// measurements (the legacy Execute form; `ResultCursor::Drain` produces
/// it, and `matches` carries projected content when requested).
struct QueryResult {
  std::vector<uint32_t> starts;
  /// Filled only when the producing cursor's projection != kDLabel;
  /// parallel to `starts`.
  std::vector<Match> matches;
  ExecStats stats;
  ExecPlan::Shape shape;
  double millis = 0.0;
  /// Matches consumed by the cursor's `offset` before the first delivered
  /// one (the collection uses this to carry an offset across documents).
  uint64_t offset_skipped = 0;
  /// The span tree of this query's execution; non-null only when the
  /// query ran through a QueryService with tracing on for it
  /// (QueryOptions::trace or the service's sampling knob).
  std::shared_ptr<const obs::Trace> trace;
};

/// Plan-derived inputs of the bounded-cursor streaming decision. Computing
/// them walks the path summary and decodes P-labels, so the query service
/// caches this alongside the translated plan; only the offset+limit
/// comparison is per-request.
struct StreamPlanInfo {
  /// The return part's single SD tag when the plan shape allows streaming
  /// (the part is a leaf of the part tree with one known leaf tag).
  std::optional<TagId> tag;
  /// Estimated cardinality of the return part's own access path.
  uint64_t cardinality = 0;
  /// Estimated size of the tag's SD run.
  uint64_t run_size = 0;
};

/// \brief Pull-based enumeration of one query's answers.
///
/// A cursor delivers matches in document order, one `Next()` at a time,
/// paying per answer delivered rather than per answer that exists:
///
///   * Unbounded cursors (`limit == 0`) run the full engine once and serve
///     from the materialized position list — `Drain()` is byte-identical
///     (results and stats) to the legacy `Execute` path.
///   * Bounded cursors (`limit > 0`) use the engines' incremental
///     producers when the plan allows it: the pattern minus the return
///     part is evaluated first (the relational executor's pipelined final
///     D-join / the twig engine's arc-consistency passes), then return
///     candidates stream from the tag-clustered SD index in document
///     order, and all scanning stops after `offset + limit` matches.
///
/// Projection (`QueryOptions::projection`) materializes per-match content
/// from the store and dictionary; no retained DOM is needed.
///
/// Thread-compatibility: a cursor may be handed between threads but must
/// be pulled by one thread at a time; the underlying system must outlive
/// it.
class ResultCursor {
 public:
  /// Everything a cursor borrows from the owning system. All pointers must
  /// outlive the cursor.
  struct Env {
    const NodeStore* store = nullptr;
    const StringDict* dict = nullptr;
    const TagRegistry* tags = nullptr;
    const PLabelCodec* codec = nullptr;
    /// Optional: enables the cost gate that rejects streaming when the
    /// tag's SD run is expected to cost more than full materialization.
    const PathSummary* summary = nullptr;
  };

  /// Opens a cursor over an already-translated plan. `engine` must be
  /// resolved (not kAuto). Execution errors (e.g. an empty plan) surface
  /// here; `Next` itself cannot fail. Pass a cached `stream_info` to skip
  /// the per-open streamability analysis (nullptr recomputes it).
  static Result<ResultCursor> Open(const Env& env,
                                   std::shared_ptr<const ExecPlan> plan,
                                   Engine engine, const QueryOptions& options,
                                   const StreamPlanInfo* stream_info = nullptr);

  /// Computes the streaming-gate inputs for a plan once (see
  /// StreamPlanInfo).
  static StreamPlanInfo AnalyzePlan(const ExecPlan& plan, const Env& env);

  ResultCursor(ResultCursor&&) = default;
  ResultCursor& operator=(ResultCursor&&) = default;

  /// The next match in document order, or nullopt once the cursor is
  /// exhausted (end of results, or `limit` matches delivered).
  std::optional<Match> Next();

  /// Delivers every remaining match as a QueryResult. With the default
  /// kDLabel projection this moves positions through without per-match
  /// record lookups.
  QueryResult Drain();

  bool exhausted() const { return exhausted_; }
  /// Matches delivered so far (after `offset`, counted toward `limit`).
  uint64_t delivered() const { return delivered_; }
  /// Matches consumed by `offset` so far (the collection cursor uses this
  /// to carry a collection-wide offset across documents, mirroring
  /// QueryResult::offset_skipped).
  uint64_t offset_skipped() const { return skipped_; }
  /// Execution counters accumulated so far; grows as the cursor advances.
  const ExecStats& stats() const { return stats_; }
  const ExecPlan::Shape& shape() const { return shape_; }
  /// Wall time spent producing (setup + pulls) so far.
  double millis() const { return millis_; }
  /// The resolved engine this cursor executes with.
  Engine engine() const { return engine_; }
  /// True when the limit-k incremental producer is active (the plan's
  /// return part is a single-tag leaf of the part tree).
  bool streaming() const { return stream_.has_value(); }

 private:
  struct StreamState {
    explicit StreamState(NodeStore::TagScan scan_in)
        : scan(std::move(scan_in)) {}

    NodeStore::TagScan scan;
    /// Sweep over the anchor bindings matching the rest of the pattern.
    /// Unused when the plan has a single part.
    AnchorSweep sweep;
    bool need_anchor = false;
    JoinPred pred;
    PerAltDeltas per_alt;
    /// Residual filters of the return part's access path.
    const PlanPart* part = nullptr;
    std::optional<uint32_t> data_eq;
    bool value_residual = false;
  };

  ResultCursor(const Env& env, std::shared_ptr<const ExecPlan> plan,
               Engine engine, const QueryOptions& options);

  /// Runs the setup phase (engine execution or the streaming prefix plus
  /// scan positioning). Called once from Open under a counter scope.
  Status Init();
  bool StreamCandidatePasses(const NodeRecord& rec);
  std::optional<NodeRecord> NextStreamMatch();

  Env env_;
  std::shared_ptr<const ExecPlan> plan_;
  Engine engine_ = Engine::kRelational;
  QueryOptions options_;
  ContentProjector projector_;
  std::optional<StreamPlanInfo> plan_info_;

  ExecStats stats_;
  ExecPlan::Shape shape_;
  double millis_ = 0.0;
  uint64_t delivered_ = 0;
  uint64_t skipped_ = 0;
  bool exhausted_ = false;

  /// Materialized mode: the full engine result (D-label bindings), served
  /// incrementally without further lookups.
  std::vector<DLabel> bindings_;
  size_t pos_ = 0;

  /// Streaming mode.
  std::optional<StreamState> stream_;
};

}  // namespace blas

#endif  // BLAS_BLAS_CURSOR_H_

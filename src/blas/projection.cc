#include "blas/projection.h"

#include <vector>

#include "xml/xml_writer.h"

namespace blas {

const char* ProjectionName(Projection p) {
  switch (p) {
    case Projection::kDLabel:
      return "dlabel";
    case Projection::kTag:
      return "tag";
    case Projection::kPath:
      return "path";
    case Projection::kValue:
      return "value";
    case Projection::kSubtree:
      return "subtree";
  }
  return "?";
}

Match ContentProjector::Project(const NodeRecord& rec, Projection mode) const {
  Match match;
  match.start = rec.start;
  match.end = rec.end;
  match.level = rec.level;
  switch (mode) {
    case Projection::kDLabel:
      break;
    case Projection::kTag:
      match.content = tags_->Name(rec.tag);
      break;
    case Projection::kPath:
      match.content = PathOf(rec);
      break;
    case Projection::kValue:
      if (rec.data != kNullData) match.content = dict_->Get(rec.data);
      break;
    case Projection::kSubtree:
      match.content = SerializeSubtree(rec);
      break;
  }
  return match;
}

Match ContentProjector::ProjectStart(uint32_t start, Projection mode) const {
  std::optional<NodeRecord> rec = store_->FindByStart(start);
  if (!rec.has_value()) {
    Match match;
    match.start = start;
    return match;
  }
  return Project(*rec, mode);
}

std::string ContentProjector::PathOf(const NodeRecord& rec) const {
  std::string path;
  for (TagId tag : codec_->DecodePath(rec.plabel)) {
    path.push_back('/');
    path.append(tags_->Name(tag));
  }
  return path;
}

std::string ContentProjector::SerializeSubtree(const NodeRecord& rec) const {
  // An attribute node has no subtree; serialize it in attribute syntax.
  const std::string& root_name = tags_->Name(rec.tag);
  if (!root_name.empty() && root_name[0] == '@') {
    std::string out(root_name, 1);
    out.append("=\"");
    if (rec.data != kNullData) out.append(EscapeAttribute(dict_->Get(rec.data)));
    out.push_back('"');
    return out;
  }

  struct OpenElement {
    uint32_t end;
    const std::string* tag;
    uint32_t data;
    bool tag_open;  // '>' of the start tag not yet emitted
  };

  std::string out;
  std::vector<OpenElement> stack;
  auto close_start_tag = [&](OpenElement* elem) {
    if (!elem->tag_open) return;
    out.push_back('>');
    // Character data precedes child elements (canonical form; matches
    // WriteXml over the DOM).
    if (elem->data != kNullData) out.append(EscapeText(dict_->Get(elem->data)));
    elem->tag_open = false;
  };
  auto close_element = [&] {
    close_start_tag(&stack.back());
    out.append("</");
    out.append(*stack.back().tag);
    out.push_back('>');
    stack.pop_back();
  };

  NodeStore::DocScan scan(store_, rec.start, rec.end);
  for (const NodeRecord* node = scan.Next(); node != nullptr;
       node = scan.Next()) {
    while (!stack.empty() && stack.back().end < node->start) close_element();
    const std::string& name = tags_->Name(node->tag);
    if (!name.empty() && name[0] == '@') {
      // Attribute of the innermost element; its start tag is still open
      // (attribute positions directly follow the owner's start tag).
      out.push_back(' ');
      out.append(name, 1, std::string::npos);
      out.append("=\"");
      if (node->data != kNullData) {
        out.append(EscapeAttribute(dict_->Get(node->data)));
      }
      out.push_back('"');
    } else {
      if (!stack.empty()) close_start_tag(&stack.back());
      out.push_back('<');
      out.append(name);
      stack.push_back(OpenElement{node->end, &name, node->data, true});
    }
  }
  while (!stack.empty()) close_element();
  return out;
}

}  // namespace blas

#ifndef BLAS_BLAS_COLLECTION_H_
#define BLAS_BLAS_COLLECTION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "blas/blas.h"

namespace blas {

/// \brief A queryable set of independently indexed XML documents.
///
/// Section 3 of the paper notes that the labeling scheme "can be easily
/// extended to multiple documents by introducing document id information".
/// This collection realizes that extension at the system level: each
/// document keeps its own index (tag alphabets and therefore P-label
/// codecs legitimately differ between documents) and queries fan out
/// across all of them, returning per-document match lists.
class BlasCollection {
 public:
  BlasCollection() = default;
  BlasCollection(BlasCollection&&) = default;
  BlasCollection& operator=(BlasCollection&&) = default;

  /// Indexes and adds a document. Fails on duplicate names or index
  /// errors; the collection is unchanged on failure.
  Status AddXml(const std::string& name, std::string_view xml,
                const BlasOptions& options = {});
  Status AddEvents(const std::string& name,
                   const std::function<void(SaxHandler*)>& emit,
                   const BlasOptions& options = {});
  /// Adds a document from a persisted index file.
  Status AddIndexFile(const std::string& name, const std::string& path,
                      const BlasOptions& options = {});

  /// Removes a document. Returns NotFound if absent.
  Status Remove(const std::string& name);

  size_t size() const { return docs_.size(); }
  std::vector<std::string> names() const;
  /// Returns nullptr when absent.
  const BlasSystem* Find(const std::string& name) const;

  /// One document's answer within a collection-wide result.
  struct DocMatches {
    std::string name;
    std::vector<uint32_t> starts;
    /// Projected content, parallel to `starts`; filled only when the
    /// query's projection != kDLabel.
    std::vector<Match> matches;
  };
  struct CollectionResult {
    std::vector<DocMatches> docs;  // only documents with >= 1 match
    ExecStats stats;               // summed across documents
    /// Matches delivered across all documents — i.e. after `offset` and
    /// `limit` are applied. A bounded query stops enumerating once the
    /// budget is spent, so the number of answers that exist beyond it is
    /// unknown (that is the point of early termination); run unbounded to
    /// count everything.
    size_t total_matches = 0;
  };

  /// Runs `xpath` over every document (in name order) with the unified
  /// per-query knobs: translator, engine (kAuto resolves per document —
  /// plans legitimately differ), join-order optimization, projection, and
  /// collection-wide `limit`/`offset` over the concatenated name-ordered
  /// match sequence — enumeration stops (documents are not even opened)
  /// once offset + limit matches have been produced.
  ///
  /// A per-document translation failure aborts the query; that includes
  /// Unsupported (e.g. wildcards under Split) — pick Unfold or DLabel for
  /// wildcard queries.
  Result<CollectionResult> Execute(std::string_view xpath,
                                   const QueryOptions& options = {}) const;

  /// Legacy positional form; shim over the QueryOptions overload.
  Result<CollectionResult> Execute(std::string_view xpath,
                                   Translator translator,
                                   Engine engine) const;

 private:
  std::map<std::string, std::unique_ptr<BlasSystem>> docs_;
};

}  // namespace blas

#endif  // BLAS_BLAS_COLLECTION_H_

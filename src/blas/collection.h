#ifndef BLAS_BLAS_COLLECTION_H_
#define BLAS_BLAS_COLLECTION_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blas/blas.h"

namespace blas {

class ThreadPool;
class CollectionCursor;

/// One answer of a collection-wide enumeration: the owning document's
/// name (a view into the cursor, valid for the cursor's lifetime) plus
/// the match itself.
struct CollectionMatch {
  std::string_view document;
  Match match;
};

/// How a collection cursor executes its per-document cursors.
struct ScatterOptions {
  /// Worker pool the per-document producers fan out onto. Null runs
  /// every document inline on the consuming thread, lazily and in name
  /// order — the legacy sequential execution, byte-identical to the
  /// pre-cursor Execute loop. With a pool, producers are TrySubmit-ted
  /// (never blocking the opener); any document whose task has not
  /// started by the time the merge needs it is claimed and run inline,
  /// so a saturated pool degrades to sequential instead of deadlocking.
  ThreadPool* pool = nullptr;
  /// Bounded per-document match queue: producers ahead of the merge
  /// block once their queue is full, bounding memory and delay.
  size_t queue_capacity = 256;
};

/// \brief A queryable set of independently indexed XML documents.
///
/// Section 3 of the paper notes that the labeling scheme "can be easily
/// extended to multiple documents by introducing document id information".
/// This collection realizes that extension at the system level: each
/// document keeps its own index (tag alphabets and therefore P-label
/// codecs legitimately differ between documents) and queries fan out
/// across all of them, returning per-document match lists.
class BlasCollection {
 public:
  BlasCollection() = default;
  BlasCollection(BlasCollection&&) = default;
  BlasCollection& operator=(BlasCollection&&) = default;
  /// Copying is shallow: both collections share the (immutable, refcounted)
  /// member documents. This is the copy-on-write primitive of the live
  /// ingestion layer — a new epoch copies the previous collection and
  /// swaps only the changed entries, so unchanged documents cost one
  /// refcount bump each.
  BlasCollection(const BlasCollection&) = default;
  BlasCollection& operator=(const BlasCollection&) = default;

  /// Indexes and adds a document. Fails on duplicate names or index
  /// errors; the collection is unchanged on failure.
  Status AddXml(const std::string& name, std::string_view xml,
                const BlasOptions& options = {});
  Status AddEvents(const std::string& name,
                   const std::function<void(SaxHandler*)>& emit,
                   const BlasOptions& options = {});
  /// Adds a document from a persisted index file.
  Status AddIndexFile(const std::string& name, const std::string& path,
                      const BlasOptions& options = {});
  /// Adds a document from a BLASIDX2 paged snapshot, opened lazily (O(1)
  /// in document size; pages fault in as queries touch them). Pass the
  /// same `storage.shared_budget` for every member so the whole
  /// collection draws on one memory allowance — a corpus larger than the
  /// budget still answers every query, evicting as it goes.
  Status AddPagedIndexFile(const std::string& name, const std::string& path,
                           const StorageOptions& storage = {});

  /// Adds an already-open document, sharing ownership. The live ingestion
  /// layer uses this to publish documents indexed off to the side (and to
  /// attach reclamation hooks via the shared_ptr's deleter).
  Status AddSystem(const std::string& name,
                   std::shared_ptr<const BlasSystem> system);

  /// Replaces (or inserts) a document, sharing ownership. Never fails;
  /// returns the previous document when one was replaced.
  std::shared_ptr<const BlasSystem> PutSystem(
      const std::string& name, std::shared_ptr<const BlasSystem> system);

  /// Removes a document. Returns NotFound if absent. Safe against open
  /// cursors: each cursor pins the documents it enumerates at open time,
  /// so an in-flight query keeps draining the removed document's data.
  /// (Concurrent mutation of the *collection object itself* still needs
  /// external synchronization — the live ingestion layer never mutates a
  /// published collection, it publishes a copy.)
  Status Remove(const std::string& name);

  size_t size() const { return docs_.size(); }
  std::vector<std::string> names() const;
  /// Returns nullptr when absent.
  const BlasSystem* Find(const std::string& name) const;
  /// Shared-ownership lookup; null when absent.
  std::shared_ptr<const BlasSystem> FindShared(const std::string& name) const;

  /// One document's answer within a collection-wide result.
  struct DocMatches {
    std::string name;
    std::vector<uint32_t> starts;
    /// Projected content, parallel to `starts`; filled only when the
    /// query's projection != kDLabel.
    std::vector<Match> matches;
  };
  struct CollectionResult {
    std::vector<DocMatches> docs;  // only documents with >= 1 match
    ExecStats stats;               // summed across executed documents
    /// Matches delivered across all documents — i.e. after `offset` and
    /// `limit` are applied. A bounded query stops enumerating once the
    /// budget is spent, so the number of answers that exist beyond it is
    /// unknown (that is the point of early termination); run unbounded to
    /// count everything.
    size_t total_matches = 0;
    /// Matches consumed by the collection-wide `offset` before the first
    /// delivered one.
    uint64_t offset_skipped = 0;
  };

  /// How a collection cursor executes its per-document cursors (see the
  /// namespace-scope ScatterOptions).
  using ScatterOptions = blas::ScatterOptions;

  /// Service hook: opens the per-document ResultCursor for one document.
  /// Called concurrently from scatter workers (one call per document);
  /// the query service uses it to consult its per-document plan cache.
  /// `doc_options` already carries the per-document offset/limit budget.
  using DocCursorOpener = std::function<Result<ResultCursor>(
      const std::string& name, const BlasSystem& sys, const Query& query,
      const QueryOptions& doc_options)>;

  /// Opens a streaming cursor over the collection-wide answer sequence,
  /// ordered by (document name, document order). Per-document cursors
  /// fan out onto `scatter.pool` and their matches merge through bounded
  /// queues; collection-wide `options.offset`/`options.limit` apply to
  /// the merged sequence, and a bounded cursor cancels still-queued
  /// documents once offset + limit answers have been delivered (each
  /// document also runs with an offset+limit cap of its own, reusing the
  /// per-document limit-k machinery).
  ///
  /// A per-document translation failure surfaces when the merge reaches
  /// that document: Next() returns nullopt with CollectionCursor::status()
  /// set, Drain() returns the error — the same documents-in-name-order
  /// abort semantics as the sequential path.
  ///
  /// The collection (and the pool, if any) must outlive the cursor.
  Result<CollectionCursor> OpenCursor(std::string_view xpath,
                                      const QueryOptions& options = {},
                                      const ScatterOptions& scatter = {}) const;
  /// As above, over an already-parsed query; `opener` overrides how each
  /// per-document cursor is created (null = translate per document).
  Result<CollectionCursor> OpenCursor(const Query& query,
                                      const QueryOptions& options = {},
                                      const ScatterOptions& scatter = {},
                                      DocCursorOpener opener = nullptr) const;

  /// Runs `xpath` over every document (in name order) with the unified
  /// per-query knobs: translator, engine (kAuto resolves per document —
  /// plans legitimately differ), join-order optimization, projection, and
  /// collection-wide `limit`/`offset` over the concatenated name-ordered
  /// match sequence — enumeration stops (documents are not even opened)
  /// once offset + limit matches have been produced. A shim over
  /// OpenCursor + Drain with no pool (sequential, lazy, name order).
  ///
  /// A per-document translation failure aborts the query; that includes
  /// Unsupported (e.g. wildcards under Split) — pick Unfold or DLabel for
  /// wildcard queries.
  Result<CollectionResult> Execute(std::string_view xpath,
                                   const QueryOptions& options = {}) const;

  /// Legacy positional form; shim over the QueryOptions overload.
  Result<CollectionResult> Execute(std::string_view xpath,
                                   Translator translator,
                                   Engine engine) const;

 private:
  std::map<std::string, std::shared_ptr<const BlasSystem>> docs_;
};

/// \brief Pull-based enumeration of one query's answers across a whole
/// collection, merged in (document name, document order).
///
/// Obtained from BlasCollection::OpenCursor. Matches are pulled one
/// Next() at a time (or all at once via Drain()); per-document producers
/// run concurrently on the scatter pool and are cancelled as soon as the
/// collection-wide budget is spent. Must be pulled by one thread at a
/// time; abandoning the cursor cancels outstanding producers.
class CollectionCursor {
 public:
  /// Scatter-side execution counters (early-termination accounting).
  struct ScatterStats {
    size_t docs_total = 0;
    /// Documents whose per-document cursor was actually opened (their
    /// ExecStats are in the result roll-up).
    size_t docs_executed = 0;
    /// Documents cancelled before execution started — the budget was
    /// spent (or the query aborted) while they were still queued.
    size_t docs_cancelled = 0;
  };

  CollectionCursor(CollectionCursor&&) = default;
  /// Cancels the overwritten cursor's outstanding producers first (like
  /// the destructor would) — otherwise producers blocked on their full
  /// queues would wait forever with no consumer left to drain or cancel
  /// them.
  CollectionCursor& operator=(CollectionCursor&& other);
  ~CollectionCursor();

  /// The next match, or nullopt when exhausted — end of results, `limit`
  /// delivered, or a per-document failure (check status()).
  std::optional<CollectionMatch> Next();

  /// Delivers every remaining match grouped per document, plus the
  /// summed ExecStats of every executed document. With no pool this is
  /// byte-identical to the legacy sequential Execute results.
  Result<BlasCollection::CollectionResult> Drain();

  /// Cancels still-queued documents and stops producers; idempotent.
  /// Next() returns nullopt from then on.
  void Cancel();

  /// Summed ExecStats of every executed document. If the cursor is not
  /// yet exhausted this cancels outstanding work first, then blocks until
  /// every producer settles (their stats are final).
  ExecStats SettledStats();

  /// OK unless a per-document open/translation failed; set by the time
  /// Next() returns nullopt for that reason.
  const Status& status() const { return status_; }
  bool exhausted() const { return exhausted_; }
  /// Matches delivered so far (after the collection-wide offset).
  uint64_t delivered() const { return delivered_; }
  /// Matches consumed by the collection-wide offset so far.
  uint64_t offset_skipped() const;
  ScatterStats scatter_stats() const;

 private:
  friend class BlasCollection;
  struct Shared;

  explicit CollectionCursor(std::shared_ptr<Shared> shared);

  std::optional<CollectionMatch> NextSequential();
  std::optional<CollectionMatch> NextParallel();
  /// Blocks until no producer is mid-execution (their stats are final).
  void WaitSettled();
  /// Records the finished sequential per-document cursor into its doc.
  void CloseSequentialDoc();

  std::shared_ptr<Shared> shared_;
  Status status_;
  bool exhausted_ = false;
  size_t doc_index_ = 0;
  /// Parallel mode: the current document's matches grabbed from its
  /// producer queue a whole batch per lock acquisition.
  std::deque<Match> local_;
  uint64_t delivered_ = 0;
  /// Parallel mode: matches skipped by the merge for the collection-wide
  /// offset. Sequential mode: skipping happens inside per-document
  /// cursors (legacy accounting) and is tallied in seq_skipped_.
  uint64_t skipped_ = 0;
  /// Sequential mode state: the lazily opened current document cursor
  /// and the legacy offset/limit carry.
  std::optional<ResultCursor> seq_cursor_;
  uint64_t seq_to_skip_ = 0;
  uint64_t seq_remaining_ = 0;  // meaningful only when base limit > 0
  uint64_t seq_skipped_ = 0;
};

}  // namespace blas

#endif  // BLAS_BLAS_COLLECTION_H_

#ifndef BLAS_BLAS_PROJECTION_H_
#define BLAS_BLAS_PROJECTION_H_

#include <string>

#include "blas/query_options.h"
#include "labeling/node_record.h"
#include "labeling/plabel.h"
#include "labeling/tag_registry.h"
#include "storage/node_store.h"
#include "storage/string_dict.h"

namespace blas {

/// \brief Materializes per-match content directly from the NodeStore and
/// StringDict — no retained DOM required.
///
/// Tag names come from the registry, root-to-node paths from decoding the
/// match's P-label, text values from the dictionary, and serialized
/// subtrees from a document-order index scan over the match's [start, end]
/// interval. Subtree output is canonical XML (attributes inline, character
/// data before child elements), byte-identical to serializing the
/// corresponding DOM subtree.
class ContentProjector {
 public:
  ContentProjector(const NodeStore* store, const StringDict* dict,
                   const TagRegistry* tags, const PLabelCodec* codec)
      : store_(store), dict_(dict), tags_(tags), codec_(codec) {}

  /// Fills a Match from a record already in hand (streaming cursors).
  Match Project(const NodeRecord& rec, Projection mode) const;

  /// Resolves `start` through the document-order index first (cursors over
  /// materialized position lists). Returns a position-only Match if the
  /// record is somehow absent (cannot happen for engine-produced starts).
  Match ProjectStart(uint32_t start, Projection mode) const;

  /// "/t1/t2/.../tk" decoded from the record's P-label.
  std::string PathOf(const NodeRecord& rec) const;

  /// Canonical XML text of the record's subtree.
  std::string SerializeSubtree(const NodeRecord& rec) const;

 private:
  const NodeStore* store_;
  const StringDict* dict_;
  const TagRegistry* tags_;
  const PLabelCodec* codec_;
};

}  // namespace blas

#endif  // BLAS_BLAS_PROJECTION_H_

#ifndef BLAS_BLAS_BLAS_H_
#define BLAS_BLAS_BLAS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "blas/cursor.h"
#include "blas/query_options.h"
#include "common/result.h"
#include "common/status.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "labeling/plabel.h"
#include "labeling/tag_registry.h"
#include "schema/path_summary.h"
#include "storage/node_store.h"
#include "storage/string_dict.h"
#include "translate/decomposition.h"
#include "twig/twig.h"
#include "xml/dom.h"
#include "xml/sax.h"
#include "xpath/ast.h"

namespace blas {

class CostModel;

/// Cost-based engine selection for Engine::kAuto. The relational engine
/// materializes every intermediate D-join result; the twig engine reads
/// each part stream exactly once with O(streams * depth) extra memory.
/// Single-part plans go relational (no join work to save); deep plans or
/// plans whose input streams dwarf the estimated return cardinality go to
/// the twig engine. Deterministic: same plan, same summary, same answer.
Engine ChooseEngine(const ExecPlan& plan, const CostModel& model);

/// Construction options for BlasSystem.
struct BlasOptions {
  /// LRU frames of the shared buffer pool.
  size_t cache_pages = 4096;
  /// Latch shards of the buffer pool's LRU. 0 = auto (scales with
  /// cache_pages, up to 16 — the concurrent-service default); 1 = one
  /// global LRU with the exact miss accounting of the paper's
  /// single-threaded cold-cache experiments.
  size_t cache_shards = 0;
  /// Retain the DOM (needed for NaiveEval ground truth and for examples
  /// that print matched content). Costs memory proportional to the input.
  bool keep_dom = false;
};

/// \brief The BLAS system facade (figure 6): index generator + query
/// translator + query engines over one XML document.
///
/// Typical use:
/// \code
///   auto sys = BlasSystem::FromXml(xml);
///   auto cursor = sys->Open("/site/regions//item/description",
///                           {.limit = 10, .projection = Projection::kValue});
///   while (auto match = cursor->Next()) { use(match->content); }
/// \endcode
class BlasSystem {
 public:
  /// Indexes an XML document from text (two SAX passes: tag/depth
  /// collection, then labeling).
  static Result<BlasSystem> FromXml(std::string_view xml,
                                    const BlasOptions& options = {});

  /// Indexes a document produced by an event source. `emit` is invoked
  /// twice with different handlers and must replay identical events (the
  /// synthetic generators are deterministic).
  static Result<BlasSystem> FromEvents(
      const std::function<void(SaxHandler*)>& emit,
      const BlasOptions& options = {});

  /// Reopens a system from an index file written by SaveIndex (or, via
  /// full materialization, one written by SavePagedIndex). No XML
  /// re-parse happens: the store, codec, dictionary and path summary are
  /// rebuilt from the persisted records. The DOM is not available.
  static Result<BlasSystem> FromIndexFile(const std::string& path,
                                          const BlasOptions& options = {});

  /// Opens a BLASIDX2 snapshot written by SavePagedIndex as a
  /// demand-paged system: O(1) in document size (header + schema-sized
  /// segments only), with index pages — and dictionary values — read
  /// from disk as queries touch them, resident frames bounded by
  /// `storage.memory_budget` (or the shared budget). The DOM is not
  /// available; results are byte-identical to the in-memory system's.
  static Result<BlasSystem> OpenPaged(const std::string& path,
                                      const StorageOptions& storage = {});

  /// Persists the index (records, tags, dictionary) to `path`.
  Status SaveIndex(const std::string& path) const;

  /// Persists the index in the page-aligned BLASIDX2 format that
  /// OpenPaged can serve without materializing it.
  Status SavePagedIndex(const std::string& path) const;

  BlasSystem(BlasSystem&&) = default;
  BlasSystem& operator=(BlasSystem&&) = default;

  /// Opens a pull-based cursor over the query's answers: parse, translate
  /// and (for bounded cursors) start the incremental producers. All knobs
  /// — translator, engine, join-order optimization, limit/offset,
  /// projection — come in through QueryOptions. The system must outlive
  /// the cursor.
  Result<ResultCursor> Open(std::string_view xpath,
                            const QueryOptions& options = {}) const;
  Result<ResultCursor> Open(const Query& query,
                            const QueryOptions& options = {}) const;

  /// Opens a cursor over an already-translated plan (no parse / translate
  /// / optimize) — the query service's plan-cache-hit path. The plan is
  /// kept alive through the shared_ptr; Engine::kAuto is resolved via
  /// ChooseEngine. Pass a cached AnalyzeStreamability result to skip the
  /// per-open streamability analysis.
  Result<ResultCursor> OpenPlan(std::shared_ptr<const ExecPlan> plan,
                                Engine engine,
                                const QueryOptions& options = {},
                                const StreamPlanInfo* stream_info =
                                    nullptr) const;

  /// Precomputes the bounded-cursor streaming-gate inputs for a plan
  /// (cacheable alongside the plan; see StreamPlanInfo).
  StreamPlanInfo AnalyzeStreamability(const ExecPlan& plan) const;

  /// One-shot execution: Open + Drain.
  Result<QueryResult> Execute(std::string_view xpath,
                              const QueryOptions& options) const;
  Result<QueryResult> Execute(const Query& query,
                              const QueryOptions& options) const;

  /// Legacy positional forms; thin shims over the cursor API (an
  /// unbounded cursor's Drain() reproduces them exactly).
  Result<QueryResult> Execute(std::string_view xpath, Translator translator,
                              Engine engine,
                              const ExecOptions& options = {}) const;
  Result<QueryResult> Execute(const Query& query, Translator translator,
                              Engine engine,
                              const ExecOptions& options = {}) const;

  /// Runs an already-translated plan to completion. Engine::kAuto is
  /// resolved via ChooseEngine.
  Result<QueryResult> ExecutePlan(const ExecPlan& plan, Engine engine) const;

  /// Translation only (no execution).
  Result<ExecPlan> Plan(std::string_view xpath, Translator translator) const;
  Result<ExecPlan> Plan(const Query& query, Translator translator) const;

  /// SQL / relational algebra text of the translated plan (figure 11).
  Result<std::string> ExplainSql(std::string_view xpath,
                                 Translator translator) const;
  Result<std::string> ExplainAlgebra(std::string_view xpath,
                                     Translator translator) const;

  /// Document characteristics (figure 12).
  struct DocStats {
    size_t nodes = 0;        // element + attribute nodes
    size_t tags = 0;         // distinct tags
    int depth = 0;           // longest simple path
    size_t distinct_paths = 0;
    size_t pages = 0;        // storage pages across all trees
    size_t distinct_values = 0;
  };
  DocStats doc_stats() const;

  const TagRegistry& tags() const { return *tags_; }
  const PLabelCodec& codec() const { return *codec_; }
  const PathSummary& summary() const { return *summary_; }
  const NodeStore& store() const { return *store_; }
  const StringDict& dict() const { return *dict_; }
  /// Non-null only with BlasOptions::keep_dom.
  const DomTree* dom() const { return dom_.get(); }

  /// Resets storage counters and drops the page cache (cold-cache runs).
  void ResetCounters();

  /// Hands unlinking of this system's segment file over to the storage
  /// backend's mapping epoch, to happen when the last outstanding
  /// PageRef drops (mmap backend only). Returns false when the backend
  /// holds no deferred-release resource — the caller must unlink the
  /// file itself. Used by LiveCollection's tombstone deleter so a
  /// reclaimed segment's mapping (and file) outlives any in-flight
  /// zero-copy reads.
  bool DeferUnlinkToMapping(const std::string& path) const;

 private:
  BlasSystem() = default;

  TranslateContext translate_context() const;
  ResultCursor::Env cursor_env() const;

  std::unique_ptr<TagRegistry> tags_;
  std::unique_ptr<PLabelCodec> codec_;
  std::unique_ptr<PathSummary> summary_;
  std::unique_ptr<StringDict> dict_;
  std::unique_ptr<NodeStore> store_;
  std::unique_ptr<DomTree> dom_;
  size_t node_count_ = 0;
  int max_depth_ = 0;
};

}  // namespace blas

#endif  // BLAS_BLAS_BLAS_H_

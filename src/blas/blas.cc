#include "blas/blas.h"

#include <utility>

#include <algorithm>
#include <map>

#include "common/stopwatch.h"
#include "exec/optimizer.h"
#include "labeling/labeler.h"
#include "storage/persist.h"
#include "translate/sql_render.h"
#include "xml/sax_parser.h"
#include "xpath/parser.h"

namespace blas {

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kRelational:
      return "RDBMS";
    case Engine::kTwig:
      return "TwigJoin";
    case Engine::kAuto:
      return "Auto";
  }
  return "?";
}

Engine ChooseEngine(const ExecPlan& plan, const CostModel& model) {
  if (plan.parts.size() <= 1) return Engine::kRelational;
  if (plan.parts.size() >= 3) return Engine::kTwig;
  uint64_t total = 0;
  for (const PlanPart& part : plan.parts) {
    total += model.EstimateCardinality(part);
  }
  uint64_t ret = model.EstimateCardinality(plan.parts[plan.return_part]);
  return total > 4 * ret ? Engine::kTwig : Engine::kRelational;
}

Result<BlasSystem> BlasSystem::FromXml(std::string_view xml,
                                       const BlasOptions& options) {
  return FromEvents(
      [xml](SaxHandler* handler) {
        SaxParser parser;
        // Parse errors surface through the labeling pass; the first pass
        // validates the document fully.
        (void)parser.Parse(xml, handler);
      },
      options);
}

Result<BlasSystem> BlasSystem::FromEvents(
    const std::function<void(SaxHandler*)>& emit, const BlasOptions& options) {
  BlasSystem sys;

  // Pass 1: alphabet, depth, node count (sizes the P-label codec).
  sys.tags_ = std::make_unique<TagRegistry>();
  TagCollector collector(sys.tags_.get());
  emit(&collector);
  if (collector.node_count() == 0) {
    return Status::InvalidArgument("document has no elements");
  }
  sys.node_count_ = collector.node_count();
  sys.max_depth_ = collector.max_depth();
  sys.tags_->Freeze();

  BLAS_ASSIGN_OR_RETURN(
      PLabelCodec codec,
      PLabelCodec::Create(sys.tags_->size(), collector.max_depth()));
  sys.codec_ = std::make_unique<PLabelCodec>(std::move(codec));

  // Pass 2: labeling (index generation).
  Labeler labeler(*sys.tags_, *sys.codec_);
  emit(&labeler);
  BLAS_RETURN_NOT_OK(labeler.status());
  if (labeler.records().size() != sys.node_count_) {
    return Status::Internal(
        "event source replayed a different document between passes");
  }

  sys.summary_ = std::make_unique<PathSummary>(labeler.TakeSummary());
  sys.dict_ = std::make_unique<StringDict>(std::move(labeler.dict()));
  sys.store_ = std::make_unique<NodeStore>(labeler.records(),
                                           options.cache_pages,
                                           options.cache_shards);

  if (options.keep_dom) {
    DomBuilder dom_builder;
    emit(&dom_builder);
    BLAS_ASSIGN_OR_RETURN(DomTree tree, dom_builder.Take());
    sys.dom_ = std::make_unique<DomTree>(std::move(tree));
  }
  return sys;
}

Status BlasSystem::SavePagedIndex(const std::string& path) const {
  PagedSnapshotParts parts;
  parts.store = store_.get();
  parts.tags = tags_.get();
  parts.dict = dict_.get();
  parts.summary = summary_.get();
  parts.max_depth = max_depth_;
  return SavePagedSnapshot(parts, path);
}

Result<BlasSystem> BlasSystem::OpenPaged(const std::string& path,
                                         const StorageOptions& storage) {
  BLAS_ASSIGN_OR_RETURN(PagedIndex index, OpenPagedSnapshot(path));

  BlasSystem sys;
  sys.tags_ = std::make_unique<TagRegistry>();
  for (const std::string& tag : index.tags) sys.tags_->Intern(tag);
  sys.tags_->Freeze();
  if (sys.tags_->size() != index.tags.size()) {
    return Status::Corruption("duplicate tag names in " + path);
  }
  sys.max_depth_ = index.max_depth;
  sys.node_count_ = index.node_count;

  BLAS_ASSIGN_OR_RETURN(
      PLabelCodec codec,
      PLabelCodec::Create(sys.tags_->size(), index.max_depth));
  sys.codec_ = std::make_unique<PLabelCodec>(std::move(codec));

  // Replay the flattened path summary (preorder: parents first). The
  // P-labels are not persisted — they re-derive from the codec, which is
  // itself a pure function of the tag alphabet and depth.
  sys.summary_ = std::make_unique<PathSummary>();
  std::vector<SummaryNode*> nodes;
  nodes.reserve(index.summary.size());
  for (const PagedSummaryEntry& entry : index.summary) {
    SummaryNode* parent = entry.parent == 0xFFFFFFFFu
                              ? sys.summary_->mutable_root()
                              : nodes[entry.parent];
    PLabel plabel = entry.parent == 0xFFFFFFFFu
                        ? sys.codec_->RootLabel(entry.tag)
                        : sys.codec_->ChildLabel(parent->plabel, entry.tag);
    SummaryNode* node = sys.summary_->Extend(parent, entry.tag, plabel);
    node->count = entry.count;
    nodes.push_back(node);
  }

  BLAS_ASSIGN_OR_RETURN(PagedFile file, index.OpenPool());
  sys.store_ = std::make_unique<NodeStore>(std::move(file),
                                           index.store_meta, storage);
  sys.dict_ = std::make_unique<StringDict>();
  sys.dict_->AttachPaged(&sys.store_->pool(), std::move(index.dict_layout));
  return sys;
}

Status BlasSystem::SaveIndex(const std::string& path) const {
  IndexSnapshot snapshot;
  snapshot.tags.reserve(tags_->size());
  for (TagId id = 1; id <= tags_->size(); ++id) {
    snapshot.tags.push_back(tags_->Name(id));
  }
  snapshot.max_depth = max_depth_;
  snapshot.records = store_->ExportRecords();
  snapshot.values.reserve(dict_->size());
  for (uint32_t id = 0; id < dict_->size(); ++id) {
    snapshot.values.push_back(dict_->Get(id));
  }
  return SaveSnapshot(snapshot, path);
}

Result<BlasSystem> BlasSystem::FromIndexFile(const std::string& path,
                                             const BlasOptions& options) {
  BLAS_ASSIGN_OR_RETURN(IndexSnapshot snapshot, LoadSnapshot(path));
  if (snapshot.records.empty()) {
    return Status::Corruption("index file has no records: " + path);
  }

  BlasSystem sys;
  sys.tags_ = std::make_unique<TagRegistry>();
  for (const std::string& tag : snapshot.tags) sys.tags_->Intern(tag);
  sys.tags_->Freeze();
  sys.max_depth_ = snapshot.max_depth;
  sys.node_count_ = snapshot.records.size();

  BLAS_ASSIGN_OR_RETURN(
      PLabelCodec codec,
      PLabelCodec::Create(sys.tags_->size(), snapshot.max_depth));
  sys.codec_ = std::make_unique<PLabelCodec>(std::move(codec));

  sys.dict_ = std::make_unique<StringDict>();
  for (const std::string& value : snapshot.values) {
    sys.dict_->Intern(value);
  }

  // Rebuild the path summary from the persisted labels: each distinct
  // P-label decodes to exactly one simple path (definition 3.3).
  sys.summary_ = std::make_unique<PathSummary>();
  std::map<PLabel, uint64_t> path_counts;
  for (const NodeRecord& rec : snapshot.records) {
    if (rec.level > snapshot.max_depth || rec.level < 1 ||
        rec.tag > sys.tags_->size()) {
      return Status::Corruption("record out of range in " + path);
    }
    path_counts[rec.plabel]++;
  }
  for (const auto& [plabel, count] : path_counts) {
    std::vector<TagId> tags = sys.codec_->DecodePath(plabel);
    if (tags.empty()) return Status::Corruption("undecodable label");
    SummaryNode* node = sys.summary_->mutable_root();
    PLabel running = 0;
    for (size_t i = 0; i < tags.size(); ++i) {
      running = i == 0 ? sys.codec_->RootLabel(tags[i])
                       : sys.codec_->ChildLabel(running, tags[i]);
      node = sys.summary_->Extend(node, tags[i], running);
    }
    node->count += count;
  }

  sys.store_ = std::make_unique<NodeStore>(snapshot.records,
                                           options.cache_pages,
                                           options.cache_shards);
  return sys;
}

ResultCursor::Env BlasSystem::cursor_env() const {
  ResultCursor::Env env;
  env.store = store_.get();
  env.dict = dict_.get();
  env.tags = tags_.get();
  env.codec = codec_.get();
  env.summary = summary_.get();
  return env;
}

TranslateContext BlasSystem::translate_context() const {
  TranslateContext ctx;
  ctx.tags = tags_.get();
  ctx.codec = codec_.get();
  ctx.summary = summary_.get();
  return ctx;
}

Result<ExecPlan> BlasSystem::Plan(std::string_view xpath,
                                  Translator translator) const {
  BLAS_ASSIGN_OR_RETURN(Query query, ParseXPath(xpath));
  return Plan(query, translator);
}

Result<ExecPlan> BlasSystem::Plan(const Query& query,
                                  Translator translator) const {
  return Translate(query, translator, translate_context());
}

Result<ResultCursor> BlasSystem::Open(std::string_view xpath,
                                      const QueryOptions& options) const {
  BLAS_ASSIGN_OR_RETURN(Query query, ParseXPath(xpath));
  return Open(query, options);
}

Result<ResultCursor> BlasSystem::Open(const Query& query,
                                      const QueryOptions& options) const {
  BLAS_ASSIGN_OR_RETURN(ExecPlan plan, Plan(query, options.translator));
  if (options.exec.optimize_join_order) {
    CostModel model(summary_.get(), dict_.get());
    plan = OptimizeJoinOrder(plan, model);
  }
  return OpenPlan(std::make_shared<const ExecPlan>(std::move(plan)),
                  options.engine, options);
}

Result<ResultCursor> BlasSystem::OpenPlan(std::shared_ptr<const ExecPlan> plan,
                                          Engine engine,
                                          const QueryOptions& options,
                                          const StreamPlanInfo* stream_info)
    const {
  if (engine == Engine::kAuto && plan != nullptr) {
    CostModel model(summary_.get(), dict_.get());
    engine = ChooseEngine(*plan, model);
  }
  return ResultCursor::Open(cursor_env(), std::move(plan), engine, options,
                            stream_info);
}

StreamPlanInfo BlasSystem::AnalyzeStreamability(const ExecPlan& plan) const {
  return ResultCursor::AnalyzePlan(plan, cursor_env());
}

Result<QueryResult> BlasSystem::Execute(std::string_view xpath,
                                        const QueryOptions& options) const {
  BLAS_ASSIGN_OR_RETURN(ResultCursor cursor, Open(xpath, options));
  return cursor.Drain();
}

Result<QueryResult> BlasSystem::Execute(const Query& query,
                                        const QueryOptions& options) const {
  BLAS_ASSIGN_OR_RETURN(ResultCursor cursor, Open(query, options));
  return cursor.Drain();
}

Result<QueryResult> BlasSystem::Execute(std::string_view xpath,
                                        Translator translator, Engine engine,
                                        const ExecOptions& options) const {
  QueryOptions unified;
  unified.translator = translator;
  unified.engine = engine;
  unified.exec = options;
  return Execute(xpath, unified);
}

Result<QueryResult> BlasSystem::Execute(const Query& query,
                                        Translator translator, Engine engine,
                                        const ExecOptions& options) const {
  QueryOptions unified;
  unified.translator = translator;
  unified.engine = engine;
  unified.exec = options;
  return Execute(query, unified);
}

Result<QueryResult> BlasSystem::ExecutePlan(const ExecPlan& plan,
                                            Engine engine) const {
  // The cursor only borrows the plan for the duration of the drain.
  std::shared_ptr<const ExecPlan> borrowed(&plan, [](const ExecPlan*) {});
  BLAS_ASSIGN_OR_RETURN(ResultCursor cursor,
                        OpenPlan(std::move(borrowed), engine, {}));
  return cursor.Drain();
}

Result<std::string> BlasSystem::ExplainSql(std::string_view xpath,
                                           Translator translator) const {
  BLAS_ASSIGN_OR_RETURN(ExecPlan plan, Plan(xpath, translator));
  return RenderSql(plan, *tags_);
}

Result<std::string> BlasSystem::ExplainAlgebra(std::string_view xpath,
                                               Translator translator) const {
  BLAS_ASSIGN_OR_RETURN(ExecPlan plan, Plan(xpath, translator));
  return RenderAlgebra(plan, *tags_);
}

BlasSystem::DocStats BlasSystem::doc_stats() const {
  DocStats stats;
  stats.nodes = node_count_;
  stats.tags = tags_->size();
  stats.depth = max_depth_;
  stats.distinct_paths = summary_->path_count();
  stats.pages = store_->page_count();
  stats.distinct_values = dict_->size();
  return stats;
}

void BlasSystem::ResetCounters() {
  store_->ResetStats();
  store_->DropCache();
}

bool BlasSystem::DeferUnlinkToMapping(const std::string& path) const {
  if (store_ == nullptr) return false;
  return store_->pool().DeferUnlinkToMapping(path);
}

}  // namespace blas

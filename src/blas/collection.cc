#include "blas/collection.h"

#include <utility>

#include "xpath/parser.h"

namespace blas {

namespace {

Status DuplicateName(const std::string& name) {
  return Status::InvalidArgument("document already in collection: " + name);
}

}  // namespace

Status BlasCollection::AddXml(const std::string& name, std::string_view xml,
                              const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys, BlasSystem::FromXml(xml, options));
  docs_.emplace(name, std::make_unique<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::AddEvents(
    const std::string& name, const std::function<void(SaxHandler*)>& emit,
    const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys,
                        BlasSystem::FromEvents(emit, options));
  docs_.emplace(name, std::make_unique<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::AddIndexFile(const std::string& name,
                                    const std::string& path,
                                    const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys,
                        BlasSystem::FromIndexFile(path, options));
  docs_.emplace(name, std::make_unique<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::Remove(const std::string& name) {
  if (docs_.erase(name) == 0) {
    return Status::NotFound("no such document: " + name);
  }
  return Status::OK();
}

std::vector<std::string> BlasCollection::names() const {
  std::vector<std::string> out;
  out.reserve(docs_.size());
  for (const auto& [name, _] : docs_) out.push_back(name);
  return out;
}

const BlasSystem* BlasCollection::Find(const std::string& name) const {
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second.get();
}

Result<BlasCollection::CollectionResult> BlasCollection::Execute(
    std::string_view xpath, Translator translator, Engine engine) const {
  // Parse once; translation is per document (codecs differ).
  BLAS_ASSIGN_OR_RETURN(Query query, ParseXPath(xpath));
  CollectionResult result;
  for (const auto& [name, sys] : docs_) {
    BLAS_ASSIGN_OR_RETURN(QueryResult r,
                          sys->Execute(query, translator, engine));
    result.stats += r.stats;
    result.total_matches += r.starts.size();
    if (!r.starts.empty()) {
      result.docs.push_back(DocMatches{name, std::move(r.starts)});
    }
  }
  return result;
}

}  // namespace blas

#include "blas/collection.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/thread_annotations.h"

#include "service/thread_pool.h"
#include "xpath/parser.h"

namespace blas {

namespace {

Status DuplicateName(const std::string& name) {
  return Status::InvalidArgument("document already in collection: " + name);
}

}  // namespace

Status BlasCollection::AddXml(const std::string& name, std::string_view xml,
                              const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys, BlasSystem::FromXml(xml, options));
  docs_.emplace(name, std::make_shared<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::AddEvents(
    const std::string& name, const std::function<void(SaxHandler*)>& emit,
    const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys,
                        BlasSystem::FromEvents(emit, options));
  docs_.emplace(name, std::make_shared<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::AddIndexFile(const std::string& name,
                                    const std::string& path,
                                    const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys,
                        BlasSystem::FromIndexFile(path, options));
  docs_.emplace(name, std::make_shared<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::AddPagedIndexFile(const std::string& name,
                                         const std::string& path,
                                         const StorageOptions& storage) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys, BlasSystem::OpenPaged(path, storage));
  docs_.emplace(name, std::make_shared<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::AddSystem(const std::string& name,
                                 std::shared_ptr<const BlasSystem> system) {
  if (system == nullptr) {
    return Status::InvalidArgument("null system for document: " + name);
  }
  if (docs_.count(name) != 0) return DuplicateName(name);
  docs_.emplace(name, std::move(system));
  return Status::OK();
}

std::shared_ptr<const BlasSystem> BlasCollection::PutSystem(
    const std::string& name, std::shared_ptr<const BlasSystem> system) {
  std::shared_ptr<const BlasSystem>& slot = docs_[name];
  std::shared_ptr<const BlasSystem> previous = std::move(slot);
  slot = std::move(system);
  return previous;
}

Status BlasCollection::Remove(const std::string& name) {
  if (docs_.erase(name) == 0) {
    return Status::NotFound("no such document: " + name);
  }
  return Status::OK();
}

std::vector<std::string> BlasCollection::names() const {
  std::vector<std::string> out;
  out.reserve(docs_.size());
  for (const auto& [name, _] : docs_) out.push_back(name);
  return out;
}

const BlasSystem* BlasCollection::Find(const std::string& name) const {
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const BlasSystem> BlasCollection::FindShared(
    const std::string& name) const {
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second;
}

// ------------------------------------------------- scatter-gather state ---

/// Everything the merge side and the per-document producers share. Kept
/// alive by shared_ptr: producer tasks still queued on the pool when the
/// cursor dies hold their own reference and exit via the cancel flag.
struct CollectionCursor::Shared {
  enum class DocState {
    kPending,    // not started; a pool task may be queued for it
    kRunning,    // a producer (worker or inline claim) is executing it
    kDone,       // finished: status/stats are final, queue may hold matches
    kCancelled,  // cancelled before execution started
  };

  struct Doc {
    std::string name;
    /// Pinned at open time: the cursor keeps draining this exact document
    /// generation even if the collection is copied-and-republished (live
    /// ingestion) or the document removed meanwhile.
    std::shared_ptr<const BlasSystem> sys;
    DocState state = DocState::kPending;
    /// Bounded producer -> merge queue (capacity `queue_capacity`).
    std::deque<Match> queue;
    /// A per-document cursor was opened (the early-termination counters).
    bool executed = false;
    Status status = Status::OK();
    ExecStats stats;
  };

  // The five setup fields below are populated once at OpenCursor time,
  // before any producer task exists, and read-only afterwards.
  // blas-analyze: allow(guarded-coverage) -- set before producers exist
  Query query;  // parsed once; translated per document
  // blas-analyze: allow(guarded-coverage) -- set before producers exist
  QueryOptions base;
  // blas-analyze: allow(guarded-coverage) -- set before producers exist
  BlasCollection::DocCursorOpener opener;
  // blas-analyze: allow(guarded-coverage) -- set before producers exist
  size_t queue_capacity = 256;
  // blas-analyze: allow(guarded-coverage) -- set before producers exist
  bool parallel = false;

  Mutex mu;
  CondVar items;  // merge waits: matches or completion
  CondVar space;  // producers wait: queue space or cancel
  bool cancelled BLAS_GUARDED_BY(mu) = false;
  /// Populated once at OpenCursor time, before any producer exists; name
  /// order == merge order. The analysis cannot express "each Doc's mutable
  /// fields are guarded by the enclosing Shared's mu", so the vector itself
  /// is the guarded unit: take a Doc* under the lock and touch only the
  /// setup-immutable identity fields (name, sys) after release.
  std::vector<Doc> docs BLAS_GUARDED_BY(mu);
  /// == docs.size(); immutable after OpenCursor, readable without mu.
  // blas-analyze: allow(guarded-coverage) -- set before producers exist
  size_t doc_count = 0;

  /// Producer body: claims the document, opens its cursor with the
  /// per-document budget, and streams matches into the bounded queue.
  /// `bounded` is false when the merge runs a document inline on its own
  /// thread (nobody would drain the queue meanwhile).
  void RunDoc(size_t index, bool bounded) BLAS_EXCLUDES(mu);
};

void CollectionCursor::Shared::RunDoc(size_t index, bool bounded) {
  Doc* doc;
  {
    MutexLock lock(mu);
    doc = &docs[index];
    if (cancelled || doc->state != DocState::kPending) {
      if (doc->state == DocState::kPending) {
        doc->state = DocState::kCancelled;
        items.NotifyAll();
      }
      return;
    }
    doc->state = DocState::kRunning;
  }

  QueryOptions doc_options = base;
  doc_options.offset = 0;
  doc_options.limit = 0;
  if (base.limit > 0) {
    // Whatever earlier documents produce, no single document contributes
    // more than offset + limit answers to the merged window — so each
    // document runs with that cap and the per-document limit-k machinery
    // terminates its scans early.
    doc_options.limit = base.offset > UINT64_MAX - base.limit
                            ? UINT64_MAX
                            : base.offset + base.limit;
  }

  Result<ResultCursor> cursor =
      opener(doc->name, *doc->sys, query, doc_options);
  {
    MutexLock lock(mu);
    doc->executed = true;
    if (!cursor.ok()) {
      doc->status = std::move(cursor).status();
      doc->state = DocState::kDone;
      items.NotifyAll();
      return;
    }
  }

  // Matches move through the queue a batch at a time: one lock per
  // kPushBatch answers instead of per answer. The queue may overshoot
  // its capacity by one batch (the wait is on `size < capacity` before
  // appending a whole batch) — capacity bounds memory softly, exactness
  // is not needed.
  constexpr size_t kPushBatch = 64;
  std::vector<Match> batch;
  batch.reserve(kPushBatch);
  bool stop = false;
  auto flush = [&]() -> bool {  // false = cancelled
    if (batch.empty()) return true;
    MutexLock lock(mu);
    while (!cancelled && bounded && doc->queue.size() >= queue_capacity) {
      space.Wait(lock);
    }
    if (cancelled) return false;
    for (Match& m : batch) doc->queue.push_back(std::move(m));
    batch.clear();
    items.NotifyOne();
    return true;
  };
  while (!stop) {
    std::optional<Match> match = cursor->Next();
    if (!match.has_value()) break;
    batch.push_back(std::move(*match));
    if (batch.size() >= kPushBatch && !flush()) stop = true;
  }
  if (!stop) flush();

  MutexLock lock(mu);
  doc->stats = cursor->stats();
  doc->state = DocState::kDone;
  items.NotifyAll();
}

// ------------------------------------------------------ collection API ---

Result<CollectionCursor> BlasCollection::OpenCursor(
    std::string_view xpath, const QueryOptions& options,
    const ScatterOptions& scatter) const {
  BLAS_ASSIGN_OR_RETURN(Query query, ParseXPath(xpath));
  return OpenCursor(query, options, scatter, nullptr);
}

Result<CollectionCursor> BlasCollection::OpenCursor(
    const Query& query, const QueryOptions& options,
    const ScatterOptions& scatter, DocCursorOpener opener) const {
  auto shared = std::make_shared<CollectionCursor::Shared>();
  shared->query = query.Clone();
  shared->base = options;
  shared->opener =
      opener != nullptr
          ? std::move(opener)
          : [](const std::string&, const BlasSystem& sys, const Query& q,
               const QueryOptions& doc_options) {
              return sys.Open(q, doc_options);
            };
  shared->queue_capacity =
      scatter.queue_capacity == 0 ? 1 : scatter.queue_capacity;
  shared->parallel = scatter.pool != nullptr;
  {
    // No producer exists yet, but docs is publish-guarded; the lock is
    // uncontended by construction.
    MutexLock lock(shared->mu);
    shared->docs.reserve(docs_.size());
    for (const auto& [name, sys] : docs_) {
      CollectionCursor::Shared::Doc doc;
      doc.name = name;
      doc.sys = sys;
      shared->docs.push_back(std::move(doc));
    }
  }
  shared->doc_count = docs_.size();

  CollectionCursor cursor(shared);
  if (shared->parallel) {
    for (size_t i = 0; i < shared->doc_count; ++i) {
      // Never block the opener on a full pool: a rejected document stays
      // kPending and the merge claims it inline when reached.
      (void)scatter.pool->TrySubmit(
          [shared, i] { shared->RunDoc(i, /*bounded=*/true); });
    }
  }
  return cursor;
}

Result<BlasCollection::CollectionResult> BlasCollection::Execute(
    std::string_view xpath, const QueryOptions& options) const {
  BLAS_ASSIGN_OR_RETURN(CollectionCursor cursor, OpenCursor(xpath, options));
  return cursor.Drain();
}

Result<BlasCollection::CollectionResult> BlasCollection::Execute(
    std::string_view xpath, Translator translator, Engine engine) const {
  QueryOptions options;
  options.translator = translator;
  options.engine = engine;
  return Execute(xpath, options);
}

// --------------------------------------------------- collection cursor ---

CollectionCursor::CollectionCursor(std::shared_ptr<Shared> shared)
    : shared_(std::move(shared)),
      seq_to_skip_(shared_->base.offset),
      seq_remaining_(shared_->base.limit) {}

CollectionCursor& CollectionCursor::operator=(CollectionCursor&& other) {
  if (this != &other) {
    if (shared_ != nullptr) Cancel();
    shared_ = std::move(other.shared_);
    status_ = std::move(other.status_);
    exhausted_ = other.exhausted_;
    doc_index_ = other.doc_index_;
    local_ = std::move(other.local_);
    delivered_ = other.delivered_;
    skipped_ = other.skipped_;
    seq_cursor_ = std::move(other.seq_cursor_);
    seq_to_skip_ = other.seq_to_skip_;
    seq_remaining_ = other.seq_remaining_;
    seq_skipped_ = other.seq_skipped_;
    other.shared_.reset();
    other.seq_cursor_.reset();
  }
  return *this;
}

CollectionCursor::~CollectionCursor() {
  if (shared_ != nullptr) Cancel();
}

void CollectionCursor::Cancel() {
  if (shared_ == nullptr) return;
  Shared& s = *shared_;
  MutexLock lock(s.mu);
  s.cancelled = true;
  for (Shared::Doc& doc : s.docs) {
    if (doc.state == Shared::DocState::kPending) {
      doc.state = Shared::DocState::kCancelled;
    }
  }
  s.space.NotifyAll();
  s.items.NotifyAll();
}

std::optional<CollectionMatch> CollectionCursor::Next() {
  if (exhausted_ || shared_ == nullptr) return std::nullopt;
  return shared_->parallel ? NextParallel() : NextSequential();
}

void CollectionCursor::CloseSequentialDoc() {
  Shared& s = *shared_;
  {
    MutexLock lock(s.mu);
    Shared::Doc& doc = s.docs[doc_index_];
    doc.stats = seq_cursor_->stats();
    doc.state = Shared::DocState::kDone;
  }
  // Legacy offset/limit carry: the document consumed part of the
  // collection-wide offset inside its own cursor.
  seq_to_skip_ -= seq_cursor_->offset_skipped();
  seq_skipped_ += seq_cursor_->offset_skipped();
  if (s.base.limit > 0) seq_remaining_ -= seq_cursor_->delivered();
  seq_cursor_.reset();
}

std::optional<CollectionMatch> CollectionCursor::NextSequential() {
  Shared& s = *shared_;
  while (true) {
    if (seq_cursor_.has_value()) {
      if (std::optional<Match> match = seq_cursor_->Next()) {
        ++delivered_;
        const std::string* name;
        {
          MutexLock lock(s.mu);
          name = &s.docs[doc_index_].name;  // identity field: stable
        }
        return CollectionMatch{*name, std::move(*match)};
      }
      CloseSequentialDoc();
      ++doc_index_;
    }
    if (doc_index_ >= s.doc_count) {
      exhausted_ = true;
      return std::nullopt;
    }
    if (s.base.limit > 0 && seq_remaining_ == 0) {
      exhausted_ = true;
      Cancel();  // unvisited documents were never opened
      return std::nullopt;
    }
    Shared::Doc* doc;
    {
      MutexLock lock(s.mu);
      doc = &s.docs[doc_index_];
      doc->state = Shared::DocState::kRunning;
    }
    QueryOptions doc_options = s.base;
    doc_options.offset = seq_to_skip_;
    doc_options.limit = s.base.limit > 0 ? seq_remaining_ : 0;
    Result<ResultCursor> cursor =
        s.opener(doc->name, *doc->sys, s.query, doc_options);
    {
      MutexLock lock(s.mu);
      doc->executed = true;
      if (!cursor.ok()) {
        doc->status = cursor.status();
        doc->state = Shared::DocState::kDone;
      }
    }
    if (!cursor.ok()) {
      status_ = std::move(cursor).status();
      exhausted_ = true;
      Cancel();
      return std::nullopt;
    }
    seq_cursor_.emplace(std::move(cursor).value());
  }
}

std::optional<CollectionMatch> CollectionCursor::NextParallel() {
  Shared& s = *shared_;
  while (true) {
    if (s.base.limit > 0 && delivered_ >= s.base.limit) {
      // Budget spent: cancel still-queued documents and stop producers.
      Cancel();
      exhausted_ = true;
      return std::nullopt;
    }
    if (!local_.empty()) {
      Match match = std::move(local_.front());
      local_.pop_front();
      if (skipped_ < s.base.offset) {
        ++skipped_;  // merge-side collection-wide offset
        continue;
      }
      ++delivered_;
      const std::string* name;
      {
        MutexLock lock(s.mu);
        name = &s.docs[doc_index_].name;  // identity field: stable
      }
      return CollectionMatch{*name, std::move(match)};
    }
    if (doc_index_ >= s.doc_count) {
      exhausted_ = true;
      return std::nullopt;
    }
    bool run_inline = false;
    bool failed = false;
    {
      MutexLock lock(s.mu);
      Shared::Doc& doc = s.docs[doc_index_];
      if (!doc.queue.empty()) {
        // Grab everything queued in one lock acquisition; serve from
        // local_ without further locking. One cv serves every producer,
        // so wake them all: notify_one could pick a producer whose own
        // queue is still full and strand the one this grab freed.
        local_.swap(doc.queue);
        s.space.NotifyAll();
        continue;
      }
      switch (doc.state) {
        case Shared::DocState::kDone:
          if (!doc.status.ok()) {
            // Same abort semantics as the sequential path: the error
            // surfaces when the merge reaches the failing document.
            // Cancel re-acquires mu, so leave the critical section first
            // and cancel outside (no relockable-lock tricks: the scoped
            // lock covers exactly this block).
            status_ = doc.status;
            exhausted_ = true;
            failed = true;
            break;
          }
          ++doc_index_;
          continue;
        case Shared::DocState::kCancelled:
          ++doc_index_;  // only reachable after Cancel; nothing queued
          continue;
        case Shared::DocState::kPending:
          // The pool has not started this document (rejected submission
          // or still queued behind other work): claim it and run inline
          // so a saturated pool degrades to sequential, never deadlock.
          run_inline = true;
          break;
        case Shared::DocState::kRunning:
          s.items.Wait(lock);
          continue;
      }
    }
    if (failed) {
      Cancel();
      return std::nullopt;
    }
    if (run_inline) s.RunDoc(doc_index_, /*bounded=*/false);
  }
}

void CollectionCursor::WaitSettled() {
  Shared& s = *shared_;
  MutexLock lock(s.mu);
  for (;;) {
    bool settled = true;
    for (const Shared::Doc& d : s.docs) {
      if (d.state != Shared::DocState::kDone &&
          d.state != Shared::DocState::kCancelled) {
        settled = false;
        break;
      }
    }
    if (settled) return;
    s.items.Wait(lock);
  }
}

Result<BlasCollection::CollectionResult> CollectionCursor::Drain() {
  BlasCollection::CollectionResult result;
  BlasCollection::DocMatches* bucket = nullptr;
  const bool project = shared_->base.projection != Projection::kDLabel;
  while (std::optional<CollectionMatch> cm = Next()) {
    if (bucket == nullptr || bucket->name != cm->document) {
      result.docs.push_back(
          BlasCollection::DocMatches{std::string(cm->document), {}, {}});
      bucket = &result.docs.back();
    }
    bucket->starts.push_back(cm->match.start);
    if (project) bucket->matches.push_back(std::move(cm->match));
    ++result.total_matches;
  }
  if (!status_.ok()) return status_;
  // Producers cancelled mid-stream still hold partial stats until they
  // unwind; wait for every document to settle before summing.
  WaitSettled();
  {
    MutexLock lock(shared_->mu);
    for (const Shared::Doc& doc : shared_->docs) {
      if (doc.executed) result.stats += doc.stats;
    }
  }
  result.offset_skipped = offset_skipped();
  return result;
}

ExecStats CollectionCursor::SettledStats() {
  ExecStats out;
  if (shared_ == nullptr) return out;
  if (!exhausted_) {
    // Sequential mode keeps the current document's cursor on this
    // thread; fold its stats in before waiting (nobody else will).
    if (seq_cursor_.has_value()) CloseSequentialDoc();
    Cancel();
    exhausted_ = true;
  }
  WaitSettled();
  MutexLock lock(shared_->mu);
  for (const Shared::Doc& doc : shared_->docs) {
    if (doc.executed) out += doc.stats;
  }
  return out;
}

uint64_t CollectionCursor::offset_skipped() const {
  if (shared_ == nullptr) return 0;
  return shared_->parallel ? skipped_ : seq_skipped_;
}

CollectionCursor::ScatterStats CollectionCursor::scatter_stats() const {
  ScatterStats out;
  if (shared_ == nullptr) return out;
  MutexLock lock(shared_->mu);
  out.docs_total = shared_->docs.size();
  for (const Shared::Doc& doc : shared_->docs) {
    if (doc.executed) {
      ++out.docs_executed;
    } else if (doc.state == Shared::DocState::kCancelled) {
      ++out.docs_cancelled;
    }
  }
  return out;
}

}  // namespace blas

#include "blas/collection.h"

#include <algorithm>
#include <utility>

#include "xpath/parser.h"

namespace blas {

namespace {

Status DuplicateName(const std::string& name) {
  return Status::InvalidArgument("document already in collection: " + name);
}

}  // namespace

Status BlasCollection::AddXml(const std::string& name, std::string_view xml,
                              const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys, BlasSystem::FromXml(xml, options));
  docs_.emplace(name, std::make_unique<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::AddEvents(
    const std::string& name, const std::function<void(SaxHandler*)>& emit,
    const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys,
                        BlasSystem::FromEvents(emit, options));
  docs_.emplace(name, std::make_unique<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::AddIndexFile(const std::string& name,
                                    const std::string& path,
                                    const BlasOptions& options) {
  if (docs_.count(name) != 0) return DuplicateName(name);
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys,
                        BlasSystem::FromIndexFile(path, options));
  docs_.emplace(name, std::make_unique<BlasSystem>(std::move(sys)));
  return Status::OK();
}

Status BlasCollection::Remove(const std::string& name) {
  if (docs_.erase(name) == 0) {
    return Status::NotFound("no such document: " + name);
  }
  return Status::OK();
}

std::vector<std::string> BlasCollection::names() const {
  std::vector<std::string> out;
  out.reserve(docs_.size());
  for (const auto& [name, _] : docs_) out.push_back(name);
  return out;
}

const BlasSystem* BlasCollection::Find(const std::string& name) const {
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second.get();
}

Result<BlasCollection::CollectionResult> BlasCollection::Execute(
    std::string_view xpath, const QueryOptions& options) const {
  // Parse once; translation is per document (codecs differ).
  BLAS_ASSIGN_OR_RETURN(Query query, ParseXPath(xpath));
  CollectionResult result;
  // Collection-wide offset/limit over the name-ordered concatenation;
  // each document sees only the budget still outstanding. The per-
  // document cursor does the skipping itself (before projecting, so
  // offset matches never pay for content materialization) and reports how
  // much of the offset it consumed.
  uint64_t to_skip = options.offset;
  uint64_t remaining = options.limit;  // 0 = unlimited
  for (const auto& [name, sys] : docs_) {
    if (options.limit > 0 && remaining == 0) break;
    QueryOptions doc_options = options;
    doc_options.offset = to_skip;
    doc_options.limit = remaining;
    BLAS_ASSIGN_OR_RETURN(QueryResult r, sys->Execute(query, doc_options));
    result.stats += r.stats;
    to_skip -= r.offset_skipped;
    if (options.limit > 0) remaining -= r.starts.size();
    result.total_matches += r.starts.size();
    if (!r.starts.empty()) {
      result.docs.push_back(
          DocMatches{name, std::move(r.starts), std::move(r.matches)});
    }
  }
  return result;
}

Result<BlasCollection::CollectionResult> BlasCollection::Execute(
    std::string_view xpath, Translator translator, Engine engine) const {
  QueryOptions options;
  options.translator = translator;
  options.engine = engine;
  return Execute(xpath, options);
}

}  // namespace blas

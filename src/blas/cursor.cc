#include "blas/cursor.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "exec/optimizer.h"
#include "labeling/plabel.h"
#include "twig/twig.h"

namespace blas {

namespace {

/// Streaming gate: the limit-k producer needs the return part to be a leaf
/// of the part tree (nothing anchors into it) whose matches all carry one
/// known tag, so they can be pulled from the tag-clustered SD index in
/// document order. Returns the tag, or nullopt for the materialized
/// fallback.
std::optional<TagId> StreamableReturnTag(const ExecPlan& plan,
                                         const PLabelCodec& codec) {
  const int r = plan.return_part;
  for (size_t i = 0; i < plan.parts.size(); ++i) {
    if (static_cast<int>(i) != r && plan.parts[i].anchor == r) {
      return std::nullopt;
    }
  }
  const PlanPart& part = plan.parts[r];
  switch (part.scan) {
    case PlanPart::Scan::kTag:
      return part.tag;
    case PlanPart::Scan::kAllTags:
      return std::nullopt;  // wildcard: no single SD run to stream
    case PlanPart::Scan::kPlabelAlts:
      break;
  }
  if (part.alts.empty()) return std::nullopt;  // provably-empty scan
  std::optional<TagId> leaf;
  for (const PlanAlt& alt : part.alts) {
    // Every label in a suffix interval shares its most significant digit —
    // the node's own tag — so the lower bound decodes it.
    std::vector<TagId> path = codec.DecodePath(alt.range.lo);
    if (path.empty()) return std::nullopt;
    if (leaf.has_value() && *leaf != path.back()) return std::nullopt;
    leaf = path.back();
  }
  return leaf;
}

}  // namespace

StreamPlanInfo ResultCursor::AnalyzePlan(const ExecPlan& plan,
                                         const Env& env) {
  StreamPlanInfo info;
  info.tag = StreamableReturnTag(plan, *env.codec);
  if (info.tag.has_value() && env.summary != nullptr) {
    CostModel model(env.summary, env.dict);
    info.cardinality =
        model.EstimateCardinality(plan.parts[plan.return_part]);
    PlanPart run;
    run.scan = PlanPart::Scan::kTag;
    run.tag = *info.tag;
    info.run_size = model.EstimateCardinality(run);
  }
  return info;
}

ResultCursor::ResultCursor(const Env& env, std::shared_ptr<const ExecPlan> plan,
                           Engine engine, const QueryOptions& options)
    : env_(env),
      plan_(std::move(plan)),
      engine_(engine),
      options_(options),
      projector_(env.store, env.dict, env.tags, env.codec) {}

Result<ResultCursor> ResultCursor::Open(const Env& env,
                                        std::shared_ptr<const ExecPlan> plan,
                                        Engine engine,
                                        const QueryOptions& options,
                                        const StreamPlanInfo* stream_info) {
  if (engine == Engine::kAuto) {
    return Status::Internal("Engine::kAuto not resolved");
  }
  if (plan == nullptr || plan->parts.empty()) {
    return Status::InvalidArgument("empty plan");
  }

  Stopwatch watch;
  ResultCursor cursor(env, std::move(plan), engine, options);
  if (stream_info != nullptr) cursor.plan_info_ = *stream_info;
  cursor.shape_ = cursor.plan_->AnalyzeShape();
  ReadCounters counters;
  Status status;
  {
    // Attribute setup-phase accesses outside the engines' own scopes
    // (scan positioning, dictionary probes) to this cursor too.
    ReadCounterScope scope(&counters);
    status = cursor.Init();
  }
  cursor.stats_.elements += counters.elements;
  cursor.stats_.page_fetches += counters.fetches;
  cursor.stats_.page_misses += counters.misses;
  cursor.stats_.io_reads += counters.io_reads;
  cursor.millis_ = watch.ElapsedMillis();
  if (!status.ok()) return status;
  return cursor;
}

Status ResultCursor::Init() {
  const ExecPlan& p = *plan_;
  std::optional<TagId> stream_tag;
  if (options_.limit > 0) {
    const StreamPlanInfo info =
        plan_info_.has_value() ? *plan_info_ : AnalyzePlan(p, env_);
    stream_tag = info.tag;
    // Cost gate: streaming scans the tag's SD run at a match rate of
    // (cardinality / run size) and stops after `wanted` matches, so it
    // expects to visit ~wanted * run / card elements; the materialized
    // path's return-part scan visits ~card. Stream only when the former
    // is smaller — otherwise a selective absolute path (e.g.
    // /PLAYS/PLAY/TITLE, whose SP range touches only matches) would be
    // pessimized by filtering the much larger tag run.
    if (stream_tag.has_value() && env_.summary != nullptr) {
      const uint64_t wanted =
          options_.limit > UINT64_MAX - options_.offset
              ? UINT64_MAX
              : options_.offset + options_.limit;
      const double card = static_cast<double>(info.cardinality);
      if (card <= 0 || static_cast<double>(wanted) *
                               static_cast<double>(info.run_size) >=
                           card * card) {
        stream_tag.reset();
      }
    }
  }

  if (!stream_tag.has_value()) {
    // Materialized: run the full engine once, serve from the binding
    // list. Unbounded cursors always take this path, so Drain() matches
    // the legacy Execute results and measurements exactly.
    Result<std::vector<DLabel>> bindings =
        engine_ == Engine::kRelational
            ? RelationalExecutor(env_.store, env_.dict)
                  .ExecuteBindings(p, &stats_)
            : TwigEngine(env_.store, env_.dict).ExecuteBindings(p, &stats_);
    if (!bindings.ok()) return std::move(bindings).status();
    bindings_ = std::move(bindings).value();
    if (options_.limit > 0 || options_.offset > 0) {
      // A truncating cursor reports matches delivered, like the streaming
      // producer, not the engine's untruncated count.
      stats_.output_rows = 0;
    }
    return Status::OK();
  }

  // Streaming: evaluate the pattern minus the return part, then pull
  // return candidates incrementally from the SD index.
  const PlanPart& ret = p.parts[p.return_part];
  std::vector<DLabel> anchors;
  const bool need_anchor = p.parts.size() > 1;
  if (need_anchor) {
    Result<std::vector<DLabel>> matched =
        engine_ == Engine::kRelational
            ? RelationalExecutor(env_.store, env_.dict)
                  .MatchedAnchors(p, p.return_part, &stats_)
            : TwigEngine(env_.store, env_.dict)
                  .MatchedAnchors(p, p.return_part, &stats_);
    if (!matched.ok()) return std::move(matched).status();
    anchors = std::move(matched).value();
    // The pipelined final D-join counts as executed once streaming begins.
    ++stats_.d_joins;
    if (anchors.empty()) {
      exhausted_ = true;  // nothing to stream against
      return Status::OK();
    }
  }

  std::optional<uint32_t> data_eq;
  bool value_residual = false;
  if (ret.value.has_value()) {
    if (ret.value->op == ValueOp::kEq && !ret.value->literal.empty()) {
      data_eq = env_.dict->Find(ret.value->literal);
      if (!data_eq.has_value()) {
        // The literal never occurs: the scan would be empty.
        exhausted_ = true;
        return Status::OK();
      }
    } else {
      value_residual = true;
    }
  }

  StreamState state(NodeStore::TagScan(env_.store, *stream_tag));
  state.sweep = AnchorSweep(std::move(anchors));
  state.need_anchor = need_anchor;
  state.pred.kind = ret.join;
  state.pred.delta = ret.delta;
  if (ret.join == PlanPart::Join::kContainPerAlt) {
    state.per_alt = BuildPerAltDeltas(ret);
  }
  state.part = &ret;
  state.data_eq = data_eq;
  state.value_residual = value_residual;
  stream_.emplace(std::move(state));
  return Status::OK();
}

bool ResultCursor::StreamCandidatePasses(const NodeRecord& rec) {
  const PlanPart& part = *stream_->part;
  if (part.scan == PlanPart::Scan::kPlabelAlts) {
    bool in_range = false;
    for (const PlanAlt& alt : part.alts) {
      if (alt.range.Contains(rec.plabel)) {
        in_range = true;
        break;
      }
    }
    if (!in_range) return false;
  }
  if (part.level_eq.has_value() && rec.level != *part.level_eq) return false;
  if (stream_->data_eq.has_value() && rec.data != *stream_->data_eq) {
    return false;
  }
  if (stream_->value_residual) {
    std::string_view text =
        rec.data == kNullData ? std::string_view() : env_.dict->Get(rec.data);
    if (!part.value->Matches(text)) return false;
  }
  return true;
}

std::optional<NodeRecord> ResultCursor::NextStreamMatch() {
  StreamState& s = *stream_;
  if (s.pred.kind == PlanPart::Join::kContainPerAlt) {
    s.pred.per_alt = &s.per_alt;  // rebind: the cursor may have moved
  }
  while (const NodeRecord* rec = s.scan.Next()) {
    if (!StreamCandidatePasses(*rec)) continue;
    // SD scans candidates in ascending start order — the sweep's input
    // contract.
    if (s.need_anchor && !s.sweep.Matches(*rec, s.pred)) continue;
    return *rec;
  }
  return std::nullopt;
}

std::optional<Match> ResultCursor::Next() {
  if (exhausted_) return std::nullopt;
  Stopwatch watch;
  ReadCounters counters;
  std::optional<Match> out;

  {
    ReadCounterScope scope(&counters);
    if (stream_.has_value()) {
      while (std::optional<NodeRecord> rec = NextStreamMatch()) {
        if (skipped_ < options_.offset) {
          ++skipped_;
          continue;
        }
        ++delivered_;
        ++stats_.output_rows;
        out = projector_.Project(*rec, options_.projection);
        break;
      }
      if (!out.has_value()) exhausted_ = true;
    } else {
      while (pos_ < bindings_.size()) {
        const DLabel& binding = bindings_[pos_++];
        if (skipped_ < options_.offset) {
          ++skipped_;
          continue;
        }
        ++delivered_;
        if (options_.limit > 0 || options_.offset > 0) {
          ++stats_.output_rows;  // see Init: truncating cursors count
                                 // deliveries
        }
        if (options_.projection == Projection::kDLabel) {
          // The binding already carries the full D-label: no lookup.
          Match match;
          match.start = binding.start;
          match.end = binding.end;
          match.level = binding.level;
          out = std::move(match);
        } else {
          out = projector_.ProjectStart(binding.start, options_.projection);
        }
        break;
      }
      if (!out.has_value()) exhausted_ = true;
    }
  }

  if (options_.limit > 0 && delivered_ >= options_.limit) exhausted_ = true;
  stats_.elements += counters.elements;
  stats_.page_fetches += counters.fetches;
  stats_.page_misses += counters.misses;
  stats_.io_reads += counters.io_reads;
  millis_ += watch.ElapsedMillis();
  return out;
}

QueryResult ResultCursor::Drain() {
  QueryResult result;

  if (stream_.has_value()) {
    // One delivery loop: Next() owns the offset/limit/projection and
    // accounting semantics.
    while (std::optional<Match> match = Next()) {
      result.starts.push_back(match->start);
      if (options_.projection != Projection::kDLabel) {
        result.matches.push_back(std::move(*match));
      }
    }
  } else if (!exhausted_) {
    // Materialized bulk path: consume any remaining offset, then take up
    // to the limit. With the default kDLabel projection no per-match
    // lookups happen (the legacy Execute path).
    Stopwatch watch;
    ReadCounters counters;
    {
      ReadCounterScope scope(&counters);
      uint64_t skip = options_.offset - skipped_;
      uint64_t advance =
          std::min<uint64_t>(skip, bindings_.size() - pos_);
      pos_ += advance;
      skipped_ += advance;
      size_t end = bindings_.size();
      if (options_.limit > 0) {
        end = pos_ + std::min<uint64_t>(options_.limit - delivered_,
                                        end - pos_);
      }
      result.starts.reserve(end - pos_);
      for (size_t i = pos_; i < end; ++i) {
        result.starts.push_back(bindings_[i].start);
      }
      if (options_.projection != Projection::kDLabel) {
        result.matches.reserve(end - pos_);
        for (size_t i = pos_; i < end; ++i) {
          result.matches.push_back(projector_.ProjectStart(
              bindings_[i].start, options_.projection));
        }
      }
      delivered_ += end - pos_;
      pos_ = end;
    }
    if (options_.limit > 0 || options_.offset > 0) {
      // See Next(): delivered count, not the engine's untruncated count.
      stats_.output_rows = delivered_;
    }
    stats_.elements += counters.elements;
    stats_.page_fetches += counters.fetches;
    stats_.page_misses += counters.misses;
    stats_.io_reads += counters.io_reads;
    millis_ += watch.ElapsedMillis();
  }

  exhausted_ = true;
  result.stats = stats_;
  result.shape = shape_;
  result.millis = millis_;
  result.offset_skipped = skipped_;
  return result;
}

}  // namespace blas

#ifndef BLAS_EXEC_PLAN_H_
#define BLAS_EXEC_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "labeling/plabel.h"
#include "labeling/tag_registry.h"
#include "xpath/ast.h"

namespace blas {

/// One access-path alternative of a plan part: a P-label interval
/// (equality when lo == hi) plus, for Unfold parts, the set of valid level
/// distances to the anchor binding (one per way the anchor pattern can
/// align inside this alternative's absolute path; see DESIGN.md).
struct PlanAlt {
  PLabelRange range;
  std::vector<int32_t> anchor_deltas;
};

/// \brief One subquery of a translated plan: an access path plus the
/// structural join predicate connecting it to its anchor part.
///
/// Every translator (D-labeling baseline, Split, Push-up, Unfold) produces
/// the same shape: a tree of parts (anchor < own index), each with a scan
/// over the node relation and a D-join to the anchor's leaf binding. The
/// relational executor and the holistic twig engine both consume this.
struct PlanPart {
  /// Access path.
  enum class Scan {
    kPlabelAlts,  // union of P-label intervals over SP (BLAS translators)
    kTag,         // tag scan over SD (D-labeling baseline)
    kAllTags,     // full scan over SD (wildcard under D-labeling)
  };
  Scan scan = Scan::kPlabelAlts;

  /// For kPlabelAlts. An empty vector is a provably-empty scan (e.g. a tag
  /// absent from the document).
  std::vector<PlanAlt> alts;
  /// For kTag.
  TagId tag = 0;

  /// Residual predicate on the data column (equality predicates use the
  /// dictionary fast path; other operators compare decoded strings).
  std::optional<ValuePred> value;
  /// Residual exact-level predicate (e.g. the document root under the
  /// D-labeling baseline with a leading '/').
  std::optional<int32_t> level_eq;

  /// D-join with the anchor part's binding.
  enum class Join {
    kNone,           // root part, no join
    kContain,        // anc.start < start && anc.end > end
    kContainMin,     // containment && level >= anc.level + delta
    kContainExact,   // containment && level == anc.level + delta
    kContainPerAlt,  // containment && (level - anc.level) in the matched
                     // alternative's anchor_deltas (Unfold)
  };
  Join join = Join::kNone;
  int anchor = -1;  // index of the anchor part
  int delta = 0;    // level distance used by kContainMin / kContainExact

  /// Human-readable path expression for EXPLAIN / SQL rendering.
  std::string label;
};

/// \brief Complete translated query plan: a part tree evaluated left to
/// right, projecting the distinct starts of the return part.
struct ExecPlan {
  std::vector<PlanPart> parts;
  int return_part = 0;

  /// Plan-shape counters backing the paper's section 4.2/5.2.2 analysis.
  struct Shape {
    int d_joins = 0;
    int equality_selections = 0;   // P-label equality alternatives
    int range_selections = 0;      // P-label range scans
    int tag_scans = 0;             // D-labeling tag accesses
    int union_arms = 0;            // Unfold alternatives beyond 1 per part
  };
  Shape AnalyzeShape() const;
};

}  // namespace blas

#endif  // BLAS_EXEC_PLAN_H_

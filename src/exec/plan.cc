#include "exec/plan.h"

namespace blas {

ExecPlan::Shape ExecPlan::AnalyzeShape() const {
  Shape shape;
  for (const PlanPart& part : parts) {
    if (part.join != PlanPart::Join::kNone) ++shape.d_joins;
    switch (part.scan) {
      case PlanPart::Scan::kPlabelAlts: {
        for (const PlanAlt& alt : part.alts) {
          if (alt.range.lo == alt.range.hi) {
            ++shape.equality_selections;
          } else {
            ++shape.range_selections;
          }
        }
        if (part.alts.size() > 1) {
          shape.union_arms += static_cast<int>(part.alts.size()) - 1;
        }
        break;
      }
      case PlanPart::Scan::kTag:
      case PlanPart::Scan::kAllTags:
        ++shape.tag_scans;
        break;
    }
  }
  return shape;
}

}  // namespace blas

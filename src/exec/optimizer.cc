#include "exec/optimizer.h"

#include <algorithm>
#include <vector>

namespace blas {

namespace {

void SumCounts(const SummaryNode* node, const PlanPart& part,
               uint64_t* plabel_hits, uint64_t* tag_hits, uint64_t* total) {
  for (const auto& child : node->children) {
    *total += child->count;
    if (child->tag == part.tag) *tag_hits += child->count;
    for (const PlanAlt& alt : part.alts) {
      if (alt.range.Contains(child->plabel)) {
        *plabel_hits += child->count;
        break;
      }
    }
    SumCounts(child.get(), part, plabel_hits, tag_hits, total);
  }
}

}  // namespace

uint64_t CostModel::EstimateCardinality(const PlanPart& part) const {
  uint64_t plabel_hits = 0;
  uint64_t tag_hits = 0;
  uint64_t total = 0;
  SumCounts(summary_->root(), part, &plabel_hits, &tag_hits, &total);

  uint64_t base = 0;
  switch (part.scan) {
    case PlanPart::Scan::kPlabelAlts:
      base = plabel_hits;
      break;
    case PlanPart::Scan::kTag:
      base = tag_hits;
      break;
    case PlanPart::Scan::kAllTags:
      base = total;
      break;
  }
  if (part.value.has_value()) {
    if (part.value->op == ValueOp::kEq &&
        !dict_->Find(part.value->literal).has_value()) {
      return 0;  // equality against a literal that never occurs
    }
    base = static_cast<uint64_t>(static_cast<double>(base) *
                                 kValueSelectivity) +
           1;
  }
  return base;
}

ExecPlan OptimizeJoinOrder(const ExecPlan& plan, const CostModel& model) {
  const size_t n = plan.parts.size();
  if (n <= 2) return plan;

  std::vector<uint64_t> cost(n);
  for (size_t i = 0; i < n; ++i) {
    cost[i] = model.EstimateCardinality(plan.parts[i]);
  }

  // Greedy topological order: next = cheapest part whose anchor is placed.
  std::vector<int> order;
  std::vector<char> placed(n, 0);
  order.reserve(n);
  order.push_back(0);
  placed[0] = 1;
  while (order.size() < n) {
    int best = -1;
    for (size_t i = 1; i < n; ++i) {
      if (placed[i]) continue;
      int anchor = plan.parts[i].anchor;
      if (anchor >= 0 && !placed[anchor]) continue;
      if (best < 0 || cost[i] < cost[best]) best = static_cast<int>(i);
    }
    order.push_back(best);
    placed[best] = 1;
  }

  std::vector<int> new_index(n);
  for (size_t pos = 0; pos < n; ++pos) {
    new_index[order[pos]] = static_cast<int>(pos);
  }

  ExecPlan out;
  out.parts.reserve(n);
  for (size_t pos = 0; pos < n; ++pos) {
    PlanPart part = plan.parts[order[pos]];
    if (part.anchor >= 0) part.anchor = new_index[part.anchor];
    out.parts.push_back(std::move(part));
  }
  out.return_part = new_index[plan.return_part];
  return out;
}

}  // namespace blas

#ifndef BLAS_EXEC_EXECUTOR_H_
#define BLAS_EXEC_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/plan.h"
#include "storage/node_store.h"
#include "storage/string_dict.h"

namespace blas {

/// Per-query execution counters (the paper's evaluation metrics).
struct ExecStats {
  /// Elements fetched from storage ("visited elements", figures 14-18).
  uint64_t elements = 0;
  /// Logical page reads / simulated disk accesses.
  uint64_t page_fetches = 0;
  uint64_t page_misses = 0;
  /// Misses that performed a real disk read (demand-paged stores opened
  /// via BlasSystem::OpenPaged; 0 for in-memory stores).
  uint64_t io_reads = 0;
  /// Number of D-joins actually executed. Wide enough to aggregate over a
  /// service lifetime, not just one query.
  uint64_t d_joins = 0;
  /// Total tuples materialized in intermediate join results.
  uint64_t intermediate_rows = 0;
  /// Distinct return bindings produced.
  uint64_t output_rows = 0;

  ExecStats& operator+=(const ExecStats& o) {
    elements += o.elements;
    page_fetches += o.page_fetches;
    page_misses += o.page_misses;
    io_reads += o.io_reads;
    d_joins += o.d_joins;
    intermediate_rows += o.intermediate_rows;
    output_rows += o.output_rows;
    return *this;
  }
};

/// \brief The RDBMS-style query engine (section 5.2).
///
/// Evaluates a translated plan with index selections and structural merge
/// D-joins over the NodeStore relations, materializing intermediate result
/// tuples like a relational engine would.
class RelationalExecutor {
 public:
  RelationalExecutor(const NodeStore* store, const StringDict* dict)
      : store_(store), dict_(dict) {}

  /// Returns the distinct, sorted start positions of the return part.
  Result<std::vector<uint32_t>> Execute(const ExecPlan& plan,
                                        ExecStats* stats) const;

  /// Same execution, but returns the return part's full D-label bindings
  /// (distinct by start, sorted) — cursors enumerate these without
  /// per-match point lookups.
  Result<std::vector<DLabel>> ExecuteBindings(const ExecPlan& plan,
                                              ExecStats* stats) const;

  /// \brief The prefix of a pipelined execution: evaluates the plan with
  /// part `skip` (a leaf of the part tree) left out and returns the
  /// distinct D-label bindings of `skip`'s anchor part that participate in
  /// a match of the remaining pattern, sorted by start.
  ///
  /// The final D-join (anchor contains `skip`-part element) is then
  /// streamed by the caller against these bindings — the cursor's limit-k
  /// early-termination path. Requires plan.parts.size() >= 2, skip >= 1,
  /// and that no other part anchors into `skip`.
  Result<std::vector<DLabel>> MatchedAnchors(const ExecPlan& plan,
                                             size_t skip,
                                             ExecStats* stats) const;

 private:
  const NodeStore* store_;
  const StringDict* dict_;
};

/// Fetches one plan part's tuples from storage, sorted by start. Shared by
/// both engines; counts storage accesses in the store's counters.
std::vector<NodeRecord> FetchPartTuples(const PlanPart& part,
                                        const NodeStore& store,
                                        const StringDict& dict);

}  // namespace blas

#endif  // BLAS_EXEC_EXECUTOR_H_

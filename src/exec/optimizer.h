#ifndef BLAS_EXEC_OPTIMIZER_H_
#define BLAS_EXEC_OPTIMIZER_H_

#include <cstdint>

#include "exec/plan.h"
#include "schema/path_summary.h"
#include "storage/string_dict.h"

namespace blas {

/// \brief Cardinality estimation from the path summary.
///
/// The path summary records the exact number of instances of every simple
/// path, so P-label selections have exact input-cardinality estimates;
/// tag scans sum the counts of all paths ending in the tag. An equality
/// value predicate applies a fixed reduction factor (kValueSelectivity) —
/// zero when the literal does not occur in the document at all.
class CostModel {
 public:
  CostModel(const PathSummary* summary, const StringDict* dict)
      : summary_(summary), dict_(dict) {}

  /// Estimated number of tuples the part's scan produces.
  uint64_t EstimateCardinality(const PlanPart& part) const;

  static constexpr double kValueSelectivity = 0.05;

 private:
  const PathSummary* summary_;
  const StringDict* dict_;
};

/// \brief Join-order optimization.
///
/// Translators emit parts in decomposition order. Any topological order of
/// the part tree (anchors before children) is executable; joining the most
/// selective parts first shrinks the intermediate results the relational
/// engine materializes. This pass greedily picks, among parts whose anchor
/// is already placed, the one with the smallest estimated cardinality.
/// Part 0 (the unanchored root) always stays first; all join predicates
/// are preserved (anchor indices are remapped).
ExecPlan OptimizeJoinOrder(const ExecPlan& plan, const CostModel& model);

}  // namespace blas

#endif  // BLAS_EXEC_OPTIMIZER_H_
